(* The lightweb command line.

     lightweb serve --sites DIR --port 9000     host a universe over TCP
     lightweb browse PATH --port 9000           browse a page privately
     lightweb get KEY --port 9000               raw private-GET on the data store
     lightweb estimate [--gib N --pages N ...]  the paper's cost model
     lightweb modes                             ZLTP modes and assumptions

   `serve` binds four ports: code servers on PORT and PORT+1, data
   servers on PORT+2 and PORT+3 — the two logical non-colluding ZLTP
   servers for each session kind. *)

module Json = Lw_json.Json
open Lightweb
open Cmdliner

(* Both endpoints either end up owned by the client (which closes them
   on [close]/failover) or are closed here when the second dial or the
   handshake fails — a half-connected pair never leaks a socket. *)
let connect_pair ~host ~port =
  let e0 = Lw_net.Tcp.connect ~host ~port () in
  let e1 =
    try Lw_net.Tcp.connect ~host ~port:(port + 1) ()
    with e ->
      e0.Lw_net.Endpoint.close ();
      raise e
  in
  match Zltp_client.connect [ e0; e1 ] with
  | Ok _ as ok -> ok
  | Error _ as err ->
      e0.Lw_net.Endpoint.close ();
      e1.Lw_net.Endpoint.close ();
      err
  | exception e ->
      e0.Lw_net.Endpoint.close ();
      e1.Lw_net.Endpoint.close ();
      raise e

(* ---------------- universe assembly ---------------- *)

let universe_of_sites sites_dir =
  match Site_loader.load_all sites_dir with
  | Error e -> Error e
  | Ok sites ->
      let universe = Universe.create ~name:"cli-universe" Universe.default_geometry in
      let rec push_all = function
        | [] -> Ok universe
        | site :: rest -> (
            match Publisher.push universe ~publisher:("cli:" ^ site.Publisher.domain) site with
            | Ok r ->
                Printf.printf "loaded %s (%d data blobs%s)\n%!" site.Publisher.domain
                  r.Publisher.data_pushed
                  (match r.Publisher.renamed with
                  | [] -> ""
                  | rs -> Printf.sprintf ", %d renamed on collision" (List.length rs));
                push_all rest
            | Error e -> Error (Printf.sprintf "loading %s: %s" site.Publisher.domain e))
      in
      push_all sites

let assemble ~sites_dir ~snapshot =
  match (sites_dir, snapshot) with
  | Some dir, None -> universe_of_sites dir
  | None, Some file ->
      Result.map
        (fun u ->
          Printf.printf "loaded snapshot %s: %d domains, %d data blobs\n%!" file
            (List.length (Universe.domains u))
            (Universe.page_count u);
          u)
        (Universe_store.load ~path:file)
  | Some _, Some _ -> Error "pass either --sites or --snapshot, not both"
  | None, None -> Error "pass --sites DIR or --snapshot FILE"

(* ---------------- serve ---------------- *)

let do_serve sites_dir snapshot port shard_bits verbose =
  match assemble ~sites_dir ~snapshot with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok universe ->
      begin
        let c0, c1 = Universe.code_servers universe in
        let d0, d1 =
          match shard_bits with
          | None -> Universe.data_servers universe
          | Some sb ->
              Printf.printf "data plane sharded across %d shards per logical server\n" (1 lsl sb);
              Universe.sharded_data_servers universe ~shard_bits:sb
        in
        let spawn p server =
          Lw_net.Tcp.serve ~host:"127.0.0.1" ~port:p (fun ep ->
              if verbose then Printf.printf "connection on port %d\n%!" p;
              Zltp_server.serve server ep)
        in
        let servers =
          [ spawn port c0; spawn (port + 1) c1; spawn (port + 2) d0; spawn (port + 3) d1 ]
        in
        List.iter (fun (k, v) -> Printf.printf "  %-18s %d\n" k v) (Universe.stats universe);
        Printf.printf
          "serving: code servers on %d,%d; data servers on %d,%d (ctrl-c to stop)\n%!" port
          (port + 1) (port + 2) (port + 3);
        (* block forever *)
        let forever = Mutex.create () and never = Condition.create () in
        Mutex.lock forever;
        (try
           while true do
             Condition.wait never forever
           done
         with Sys.Break -> ());
        List.iter Lw_net.Tcp.shutdown servers;
        0
      end

(* ---------------- browse ---------------- *)

let do_browse path host port =
  match connect_pair ~host ~port with
  | Error e ->
      Printf.eprintf "code session: %s\n" e;
      1
  | Ok code_client -> (
      match connect_pair ~host ~port:(port + 2) with
      | Error e ->
          Printf.eprintf "data session: %s\n" e;
          1
      | Ok data_client -> (
          let browser = Browser.create ~code:code_client ~data:data_client () in
          match Browser.browse browser path with
          | Ok page ->
              print_endline page.Browser.text;
              Printf.eprintf "[%d private data fetches, fixed; code cache %s]\n"
                page.Browser.fetched
                (if page.Browser.code_cache_hit then "hit" else "miss");
              Zltp_client.close code_client;
              Zltp_client.close data_client;
              0
          | Error e ->
              Printf.eprintf "error: %s\n" e;
              1))

(* ---------------- get ---------------- *)

let do_get key host port =
  match connect_pair ~host ~port:(port + 2) with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok client -> (
      match Zltp_client.get client key with
      | Ok (Some v) ->
          print_endline v;
          0
      | Ok None ->
          Printf.eprintf "no record under %s\n" key;
          2
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          1)

(* ---------------- estimate ---------------- *)

let do_estimate gib pages avg_kib domain_driven =
  let open Lw_sim in
  let datasets =
    match (gib, pages) with
    | None, None ->
        [
          (Cost_model.of_profile Corpus.c4, Cost_model.Storage_driven);
          (Cost_model.of_profile Corpus.wikipedia, Cost_model.Domain_driven);
        ]
    | _ ->
        let gib = Option.value gib ~default:305. in
        let pages = Option.value pages ~default:360e6 in
        [
          ( {
              Cost_model.name = "custom";
              total_bytes = gib *. Corpus.gib;
              pages;
              avg_page_bytes = avg_kib *. 1024.;
            },
            if domain_driven then Cost_model.Domain_driven else Cost_model.Storage_driven );
        ]
  in
  Printf.printf "per-shard model: %.0f ms/request (%.0f ms DPF + %.0f ms scan) on %s\n\n"
    (1000. *. Cost_model.paper_shard.Cost_model.request_seconds)
    (1000. *. Cost_model.paper_shard.Cost_model.dpf_seconds)
    (1000. *. Cost_model.paper_shard.Cost_model.scan_seconds)
    Cost_model.c5_large.Cost_model.name;
  List.iter
    (fun (ds, policy) ->
      let e = Cost_model.estimate ~policy ds Cost_model.paper_shard Cost_model.c5_large in
      Format.printf "%a@." Cost_model.pp_estimate e;
      Printf.printf "  monthly user cost (50 pages/day x 5 GETs): $%.2f\n"
        (Cost_model.monthly_user_cost Cost_model.paper_user
           ~request_cost_usd:e.Cost_model.request_cost_usd);
      Printf.printf "  projected request cost in 5 years: $%.5f\n\n"
        (Cost_model.projected_cost ~years:5. e.Cost_model.request_cost_usd))
    datasets;
  0

(* ---------------- modes ---------------- *)

let do_modes () =
  List.iter
    (fun mode ->
      Printf.printf "%s\n" (Zltp_mode.name mode);
      List.iter (fun a -> Printf.printf "  - %s\n" a) (Zltp_mode.assumptions mode))
    Zltp_mode.all;
  0

(* ---------------- cmdliner wiring ---------------- *)

(* --metrics: after the command finishes, dump the process-wide lw_obs
   registry (retry/failover counters, per-shard answer histograms, fault
   injection totals, ...) to stderr so stdout stays the page/record. *)
let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"On exit, dump the observability registry (Prometheus text) to stderr.")

let finish ~metrics code =
  if metrics then begin
    prerr_string (Lw_obs.Export.to_prometheus ());
    flush stderr
  end;
  code

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port_arg =
  Arg.(value & opt int 9000 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Base port (4 are used).")

let sites_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "sites" ] ~docv:"DIR" ~doc:"Directory of <domain>/code.ls + pages/.")

let snapshot_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "snapshot" ] ~docv:"FILE" ~doc:"Universe snapshot produced by $(b,snapshot).")

let serve_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log connections.") in
  let shard_bits =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-bits" ] ~docv:"N"
          ~doc:"Shard the data plane across $(docv) levels (2^N shards per logical server).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Host a lightweb universe over TCP ZLTP.")
    Term.(
      const (fun sites snap port sb v metrics ->
          finish ~metrics (do_serve sites snap port sb v))
      $ sites_arg $ snapshot_arg $ port_arg $ shard_bits $ verbose $ metrics_arg)

let do_snapshot sites_dir out =
  match universe_of_sites sites_dir with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
  | Ok u -> (
      match Universe_store.save u ~path:out with
      | Ok () ->
          Printf.printf "wrote %s (%d domains, %d data blobs)\n" out
            (List.length (Universe.domains u))
            (Universe.page_count u);
          0
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          1)

let snapshot_cmd =
  let sites =
    Arg.(
      required
      & opt (some dir) None
      & info [ "sites" ] ~docv:"DIR" ~doc:"Directory of <domain>/code.ls + pages/.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Build a universe from a site tree and save it to one file.")
    Term.(const do_snapshot $ sites $ out)

let browse_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH") in
  Cmd.v
    (Cmd.info "browse" ~doc:"Privately browse a lightweb path.")
    Term.(
      const (fun path host port metrics -> finish ~metrics (do_browse path host port))
      $ path $ host_arg $ port_arg $ metrics_arg)

let get_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v
    (Cmd.info "get" ~doc:"Raw private-GET against the data universe.")
    Term.(
      const (fun key host port metrics -> finish ~metrics (do_get key host port))
      $ key $ host_arg $ port_arg $ metrics_arg)

let estimate_cmd =
  let gib = Arg.(value & opt (some float) None & info [ "gib" ] ~docv:"GIB" ~doc:"Dataset size.") in
  let pages =
    Arg.(value & opt (some float) None & info [ "pages" ] ~docv:"N" ~doc:"Page count.")
  in
  let avg = Arg.(value & opt float 0.9 & info [ "avg-kib" ] ~docv:"KIB" ~doc:"Average page KiB.") in
  let dd = Arg.(value & flag & info [ "domain-driven" ] ~doc:"Shard by key domain, not storage.") in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Reproduce the paper's deployment cost estimates (Table 2, §4).")
    Term.(const do_estimate $ gib $ pages $ avg $ dd)

let modes_cmd =
  Cmd.v
    (Cmd.info "modes" ~doc:"List ZLTP modes of operation and their assumptions.")
    Term.(const do_modes $ const ())

let () =
  let info =
    Cmd.info "lightweb" ~version:"0.1.0"
      ~doc:"Private web browsing without all the baggage (HotNets '23), in OCaml."
  in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd; snapshot_cmd; browse_cmd; get_cmd; estimate_cmd; modes_cmd ]))
