(* lw_lint [--json] [paths...]
   Side-channel & hygiene lint over OCaml sources (default: lib/).
   Exit status: 0 clean, 1 findings, 2 usage/IO error. *)

let usage () =
  prerr_endline "usage: lw_lint [--json] [paths...]";
  prerr_endline "  --json   emit the report as JSON instead of human-readable text";
  prerr_endline "  paths    .ml files or directories to scan (default: lib)";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (fun a -> a = "--help" || a = "-help") args then usage ();
  let json = List.mem "--json" args in
  let paths = List.filter (fun a -> a <> "--json") args in
  (match List.find_opt (fun a -> String.length a > 0 && a.[0] = '-') paths with
  | Some flag ->
      Printf.eprintf "lw_lint: unknown option %s\n" flag;
      usage ()
  | None -> ());
  let paths =
    match paths with
    | [] -> (
        match Lw_analysis.Analyzer.resolve_dir "lib" with
        | Some lib -> [ lib ]
        | None ->
            prerr_endline "lw_lint: no paths given and no lib/ directory found";
            exit 2)
    | ps -> ps
  in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing ->
      Printf.eprintf "lw_lint: no such file or directory: %s\n" missing;
      exit 2
  | None -> ());
  let report = Lw_analysis.Analyzer.scan_paths paths in
  if json then print_endline (Lw_json.Json.to_string (Lw_analysis.Report.to_json report))
  else print_string (Lw_analysis.Report.to_human report);
  exit (if Lw_analysis.Report.clean report then 0 else 1)
