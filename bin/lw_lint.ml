(* lw_lint [--json] [--rules r1,r2] [--baseline FILE | --no-baseline]
           [--write-baseline] [paths...]

   Side-channel & hygiene lint over OCaml sources: the token-lexer
   rules plus the AST analyses (taint, race, balance). Default scope is
   lib/ bin/ bench/. Findings present in the checked-in baseline
   (lint_baseline.txt at the repo root) are accepted and do not affect
   the exit status; everything else must be fixed or waived with an
   in-source pragma. Exit status: 0 clean, 1 fresh findings, 2
   usage/IO error. *)

module Analyzer = Lw_analysis.Analyzer
module Report = Lw_analysis.Report
module Baseline = Lw_analysis.Baseline

let default_roots = [ "lib"; "bin"; "bench" ]
let default_baseline = "lint_baseline.txt"

let usage () =
  prerr_endline
    "usage: lw_lint [--json] [--rules r1,r2] [--baseline FILE | \
     --no-baseline] [--write-baseline] [paths...]";
  prerr_endline "  --json            emit the report as JSON";
  prerr_endline
    "  --rules LIST      comma-separated rule/analysis names to run \
     (default: all)";
  prerr_endline
    "  --baseline FILE   accepted-findings file (default: \
     lint_baseline.txt if present)";
  prerr_endline "  --no-baseline     ignore any baseline file";
  prerr_endline
    "  --write-baseline  write current findings to the baseline file and \
     exit";
  prerr_endline
    "  paths             .ml files or directories (default: lib bin bench)";
  exit 2

type opts = {
  mutable json : bool;
  mutable rules : string list option;
  mutable baseline : string option;
  mutable no_baseline : bool;
  mutable write_baseline : bool;
  mutable paths : string list;
}

let parse_args args =
  let o =
    {
      json = false;
      rules = None;
      baseline = None;
      no_baseline = false;
      write_baseline = false;
      paths = [];
    }
  in
  let rec go = function
    | [] -> o
    | ("--help" | "-help") :: _ -> usage ()
    | "--json" :: rest ->
        o.json <- true;
        go rest
    | "--no-baseline" :: rest ->
        o.no_baseline <- true;
        go rest
    | "--write-baseline" :: rest ->
        o.write_baseline <- true;
        go rest
    | "--rules" :: spec :: rest ->
        o.rules <-
          Some
            (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""));
        go rest
    | "--baseline" :: file :: rest ->
        o.baseline <- Some file;
        go rest
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        Printf.eprintf "lw_lint: unknown option %s\n" flag;
        usage ()
    | p :: rest ->
        o.paths <- o.paths @ [ p ];
        go rest
  in
  go args

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let paths =
    match o.paths with
    | [] -> (
        match List.filter_map Analyzer.resolve_dir default_roots with
        | [] ->
            prerr_endline
              "lw_lint: no paths given and none of lib/ bin/ bench/ found";
            exit 2
        | roots -> roots)
    | ps -> ps
  in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing ->
      Printf.eprintf "lw_lint: no such file or directory: %s\n" missing;
      exit 2
  | None -> ());
  let rules, analyses =
    match o.rules with
    | None -> (None, None)
    | Some names ->
        let r, a = Analyzer.select_names names in
        (Some r, Some a)
  in
  let report = Analyzer.scan_paths ?rules ?analyses paths in
  let baseline_path =
    if o.no_baseline then None
    else
      match o.baseline with
      | Some f -> Some f
      | None -> Analyzer.resolve_file default_baseline
  in
  if o.write_baseline then begin
    let target = Option.value baseline_path ~default:default_baseline in
    Baseline.save target report.Report.findings;
    Printf.printf "lw_lint: wrote %d finding(s) to %s\n"
      (List.length report.Report.findings)
      target;
    exit 0
  end;
  let fresh, accepted =
    match baseline_path with
    | None -> (report.Report.findings, 0)
    | Some f -> Baseline.apply (Baseline.load f) report.Report.findings
  in
  let report =
    Report.make ~baselined:accepted
      ~files_scanned:report.Report.files_scanned ~findings:fresh
      ~suppressed:report.Report.suppressed ~elapsed_s:report.Report.elapsed_s
      ()
  in
  if o.json then
    print_endline (Lw_json.Json.to_string (Report.to_json report))
  else print_string (Report.to_human report);
  exit (if Report.clean report then 0 else 1)
