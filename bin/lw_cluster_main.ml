(* lw_cluster — run a supervised multi-process ZLTP fleet on loopback.

     lw_cluster run [--shards N] [--domain-bits B] [--bucket-size S]
                    [--rollouts K] [--churn N] [--chaos] [--state-dir DIR]

   Spawns the fleet (this same executable re-execed per shard), seeds a
   deterministic corpus, drives K live epoch rollouts while a PIR client
   keeps reading, optionally SIGKILLs a shard mid-run to show recovery,
   and prints the merged fleet metrics before shutting down. *)

let () = Lw_cluster.Worker.run_if_worker ()

module Sup = Lw_cluster.Supervisor

let usage () =
  prerr_endline
    "usage: lw_cluster run [--shards N] [--domain-bits B] [--bucket-size S]\n\
    \                      [--rollouts K] [--churn N] [--chaos] [--state-dir DIR]";
  exit 64

let int_flag argv name default =
  let v = ref default in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length argv then v := int_of_string argv.(i + 1))
    argv;
  !v

let str_flag argv name default =
  let v = ref default in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length argv then v := argv.(i + 1))
    argv;
  !v

let has_flag argv name = Array.exists (( = ) name) argv

let bucket_value rng size =
  (* printable deterministic payloads so wire captures stay readable *)
  String.init size (fun _ -> Char.chr (97 + Lw_util.Det_rng.int rng 26))

let print_fleet sup =
  List.iter
    (fun (i : Sup.shard_info) ->
      Printf.printf "  shard %d: %-8s pid=%-6s port=%-5s epoch=%d advertised=%d restarts=%d\n"
        i.id (Sup.state_name i.state)
        (match i.pid with Some p -> string_of_int p | None -> "-")
        (match i.zltp_port with Some p -> string_of_int p | None -> "-")
        i.epoch i.advertised i.restarts)
    (Sup.info sup)

let run argv =
  let shards = int_flag argv "--shards" 4 in
  let domain_bits = int_flag argv "--domain-bits" 8 in
  let bucket_size = int_flag argv "--bucket-size" 512 in
  let rollouts = int_flag argv "--rollouts" 3 in
  let churn = int_flag argv "--churn" 16 in
  let chaos = has_flag argv "--chaos" in
  let state_dir =
    str_flag argv "--state-dir"
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "lw_cluster-%d" (Unix.getpid ())))
  in
  let cfg =
    { (Sup.default_config ~state_dir ()) with shards; domain_bits; bucket_size }
  in
  Printf.printf "lw_cluster: %d shards, 2^%d buckets x %dB, state in %s\n%!" shards
    domain_bits bucket_size state_dir;
  let sup = Sup.start cfg in
  print_fleet sup;
  let rng = Lw_util.Det_rng.of_string_seed "lw_cluster/cli" in
  let n = 1 lsl domain_bits in
  (* seed: fill a third of the domain *)
  let seed = List.init (n / 3) (fun k -> (3 * k, bucket_value rng bucket_size)) in
  (match Sup.publish sup seed with
  | Sup.Rolled_out { epoch; refreshed } ->
      Printf.printf "seeded epoch %d across %d shards\n%!" epoch refreshed
  | Sup.Rolled_back { reason; _ } -> Printf.printf "seed rolled back: %s\n%!" reason);
  let client =
    if shards >= 2 then
      match Lightweb.Zltp_client.connect_replicated (Sup.replicas sup) with
      | Ok c -> Some c
      | Error e ->
          Printf.printf "client connect failed: %s\n%!" e;
          None
    else None
  in
  for k = 1 to rollouts do
    if chaos && k = (rollouts / 2) + 1 then begin
      Printf.printf "chaos: SIGKILL shard 0\n%!";
      Sup.kill sup 0
    end;
    let muts =
      List.init (max 1 (n * churn / 100)) (fun _ ->
          (Lw_util.Det_rng.int rng n, bucket_value rng bucket_size))
    in
    (match Sup.publish sup muts with
    | Sup.Rolled_out { epoch; refreshed } ->
        Printf.printf "rollout %d -> epoch %d (%d shards)\n%!" k epoch refreshed
    | Sup.Rolled_back { epoch; reason } ->
        Printf.printf "rollout %d rolled back (still at %d): %s\n%!" k epoch reason);
    match client with
    | None -> ()
    | Some c -> (
        match Lightweb.Zltp_client.get_raw_index c (Lw_util.Det_rng.int rng n) with
        | Ok _ -> ()
        | Error e -> Printf.printf "client read failed: %s\n%!" e)
  done;
  ignore (Sup.await_fleet ~deadline_s:10. sup ~epoch:(Sup.activated_epoch sup));
  print_fleet sup;
  let view = Sup.scrape sup in
  Printf.printf "fleet metrics (%d sources):\n" (Lw_cluster.Fleet_view.sources view);
  List.iter
    (fun name ->
      Printf.printf "  %-32s %d\n" name (Lw_cluster.Fleet_view.counter view name))
    [
      "lw_cluster.restarts_total"; "lw_cluster.rollouts_total";
      "lw_cluster.rollbacks_total"; "lw_cluster.deaths_total";
      "lw_cluster.shard.refreshes_total"; "lw_cluster.shard.warm_restarts_total";
    ];
  (match Lw_cluster.Fleet_view.histogram view "lw_cluster.mttr_seconds" with
  | Some h when h.Lw_obs.Metrics.count > 0 ->
      Printf.printf "  mttr: count=%d p50=%.3fs max=%.3fs\n" h.count h.p50 h.max
  | _ -> ());
  (match client with Some c -> Lightweb.Zltp_client.close c | None -> ());
  Sup.shutdown sup;
  Printf.printf "done.\n%!"

let () =
  match Array.to_list Sys.argv with
  | _ :: "run" :: _ -> run Sys.argv
  | _ -> usage ()
