let marker = "__lw_cluster_worker__"

let argv_for ~self spec = [| self; marker; Spec.encode spec |]

let run_if_worker () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = marker then
    match Spec.decode Sys.argv.(2) with
    | Error e ->
        prerr_endline ("lw_cluster worker: " ^ e);
        exit 64
    | Ok spec -> Shard_proc.main spec
