(* Parse Lw_obs.Export.to_prometheus text back into metrics and fold
   per-process series into fleet totals. The exposition's cumulative
   _bucket{le="%.17g"} samples de-cumulate to exact per-bucket counts;
   observing each inclusive upper edge le (bucket_upper round-trips
   through %.17g) lands the reconstructed samples in exactly the bucket
   they came from, so merge_into yields the same bucket counts as one
   process observing every sample. *)

module Metrics = Lw_obs.Metrics

type hist_acc = {
  merged : Metrics.histogram;  (* scratch: fleet-wide bucket counts *)
  mutable sum : float;  (* exact, from the scraped _sum samples *)
  mutable max : float;  (* exact, from the scraped _max samples *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist_acc) Hashtbl.t;
  mutable sources : int;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 16;
    sources = 0;
  }

let sanitize name =
  String.map
    (fun ch ->
      match ch with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch | _ -> '_')
    name

(* one histogram being rebuilt from a single scrape *)
type scrape_hist = {
  mutable buckets : (float * int) list;  (* (le, de-cumulated count), reversed *)
  mutable prev_cum : int;
  mutable total : int;  (* from the +Inf bucket *)
  mutable s_sum : float;
  mutable s_max : float;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ingest t text =
  let cur = ref None in
  let scrape : (string, scrape_hist) Hashtbl.t = Hashtbl.create 8 in
  let scrape_of name =
    match Hashtbl.find_opt scrape name with
    | Some h -> h
    | None ->
        let h = { buckets = []; prev_cum = 0; total = 0; s_sum = 0.; s_max = 0. } in
        Hashtbl.add scrape name h;
        h
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if starts_with ~prefix:"# TYPE " line then begin
           match
             String.split_on_char ' '
               (String.sub line 7 (String.length line - 7))
           with
           | [ name; kind ] -> cur := Some (name, kind)
           | _ -> failwith ("Fleet_view.ingest: bad TYPE line: " ^ line)
         end
         else if line.[0] = '#' then ()
         else
           match !cur with
           | None -> ()  (* sample outside any TYPE block: not ours, skip *)
           | Some (name, kind) -> (
               let sp =
                 try String.rindex line ' '
                 with Not_found ->
                   failwith ("Fleet_view.ingest: bad sample line: " ^ line)
               in
               let lhs = String.sub line 0 sp in
               let v =
                 try float_of_string (String.sub line (sp + 1) (String.length line - sp - 1))
                 with Failure _ ->
                   failwith ("Fleet_view.ingest: bad sample value: " ^ line)
               in
               match kind with
               | "counter" when lhs = name ->
                   let r =
                     match Hashtbl.find_opt t.counters name with
                     | Some r -> r
                     | None ->
                         let r = ref 0 in
                         Hashtbl.add t.counters name r;
                         r
                   in
                   r := !r + int_of_float v
               | "gauge" when lhs = name ->
                   let r =
                     match Hashtbl.find_opt t.gauges name with
                     | Some r -> r
                     | None ->
                         let r = ref 0. in
                         Hashtbl.add t.gauges name r;
                         r
                   in
                   r := v
               | "summary" ->
                   if starts_with ~prefix:(name ^ "{quantile=") lhs then ()
                   else if starts_with ~prefix:(name ^ "_bucket{le=\"") lhs then begin
                     let pre = String.length (name ^ "_bucket{le=\"") in
                     let le_str = String.sub lhs pre (String.length lhs - pre - 2) in
                     let h = scrape_of name in
                     if le_str = "+Inf" then h.total <- int_of_float v
                     else begin
                       let cum = int_of_float v in
                       let le = float_of_string le_str in
                       h.buckets <- (le, cum - h.prev_cum) :: h.buckets;
                       h.prev_cum <- cum
                     end
                   end
                   else if lhs = name ^ "_max" then (scrape_of name).s_max <- v
                   else if lhs = name ^ "_sum" then (scrape_of name).s_sum <- v
                   else if lhs = name ^ "_count" then ()
                   else failwith ("Fleet_view.ingest: bad summary sample: " ^ line)
               | _ -> failwith ("Fleet_view.ingest: unknown kind " ^ kind)))
  ;
  Hashtbl.iter
    (fun name (h : scrape_hist) ->
      let scratch = Metrics.scratch_histogram () in
      List.iter
        (fun (le, c) ->
          for _ = 1 to c do
            Metrics.observe scratch le
          done)
        (List.rev h.buckets);
      (* samples past the largest finite edge: the process max is one of
         them, and by construction the largest, so it lands in the same
         overflow bucket every one of them occupied *)
      for _ = 1 to h.total - h.prev_cum do
        Metrics.observe scratch h.s_max
      done;
      let acc =
        match Hashtbl.find_opt t.hists name with
        | Some acc -> acc
        | None ->
            let acc = { merged = Metrics.scratch_histogram (); sum = 0.; max = 0. } in
            Hashtbl.add t.hists name acc;
            acc
      in
      Metrics.merge_into ~into:acc.merged scratch;
      acc.sum <- acc.sum +. h.s_sum;
      acc.max <- Float.max acc.max h.s_max)
    scrape;
  t.sources <- t.sources + 1

let sources t = t.sources

let counter t name =
  match Hashtbl.find_opt t.counters (sanitize name) with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauge t name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges (sanitize name))

let histogram t name =
  Hashtbl.find_opt t.hists (sanitize name)
  |> Option.map (fun acc ->
         let snap = Metrics.snapshot_hist acc.merged in
         (* quantiles are bucket-granular (estimated at reconstructed
            edges); clamp them to the exact scraped max like
            Metrics.quantile clamps to its own observed max *)
         let q v = Float.min v acc.max in
         {
           snap with
           Metrics.sum = acc.sum;
           max = acc.max;
           p50 = q snap.Metrics.p50;
           p95 = q snap.Metrics.p95;
           p99 = q snap.Metrics.p99;
         })
