(** The shard-process launch spec: everything a worker process needs to
    become shard [shard_id], serialized as JSON into its argv by the
    supervisor (see {!Worker}). *)

type sabotage = {
  die_after_register : bool;
      (** crash (exit 70) right after registering — drives the
          crash-loop circuit breaker deterministically in tests *)
  die_on_refresh : int option;
      (** [Some n]: crash upon receiving the [n]-th [Refresh] (1-based),
          {e before} applying it — a publisher push that dies mid-rollout *)
}

val no_sabotage : sabotage

type t = {
  shard_id : int;
  ctl_host : string;
  ctl_port : int;  (** supervisor's control-plane listener *)
  domain_bits : int;
  bucket_size : int;
  keep : int;  (** store keep-window for the shard's engine *)
  state_dir : string;  (** where the warm-restart manifest lives *)
  sabotage : sabotage;
}

val encode : t -> string
val decode : string -> (t, string) result
