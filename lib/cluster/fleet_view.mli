(** Fleet-wide metric aggregation from Prometheus text expositions.

    The supervisor scrapes every shard process over the control channel
    ([Ctl.Scrape]) and {!ingest}s each exposition here. Counters and
    histogram bucket counts add exactly across processes — histograms
    are reconstructed from the full-precision cumulative
    [_bucket{le="..."}] samples {!Lw_obs.Export.to_prometheus} emits and
    folded together with {!Lw_obs.Metrics.merge_into}, so the fleet view
    has exactly the bucket counts a single process observing every
    sample would have. Histogram [sum]/[max] are carried exactly from
    the scraped [_sum]/[_max] samples (the reconstruction alone would
    only bound them to a bucket). Gauges are last-ingest-wins.

    Lookup names may be dotted ([lw_cluster.shard.refreshes_total]) or
    already sanitized — both resolve to the same series. *)

type t

val create : unit -> t

val ingest : t -> string -> unit
(** Fold one process's exposition text into the view. Unrecognized lines
    are skipped; a malformed sample line raises [Failure]. *)

val sources : t -> int
(** Number of successful {!ingest}s. *)

val counter : t -> string -> int
(** Summed across every ingest; [0] when the series was never seen. *)

val counters : t -> (string * int) list
(** All counters, sorted by (sanitized) name. *)

val gauge : t -> string -> float option

val histogram : t -> string -> Lw_obs.Metrics.hist_snapshot option
(** The merged fleet histogram: exact bucket counts/count/sum/max,
    quantiles at {!Lw_obs.Metrics.quantile}'s bucket granularity. *)
