(** Worker self-exec: how the supervisor turns {e this} executable into
    shard processes.

    There is no separate shard binary. The supervisor re-execs its own
    executable with a marker argv ([Sys.argv.(1) = marker]) and a JSON
    {!Spec.t}; any binary that links [lw_cluster] must call
    {!run_if_worker} as the very first thing in [main]. When the marker
    is present the call never returns — it runs the shard process
    ({!Shard_proc.main}) and exits; otherwise it is a no-op and the
    binary proceeds as the supervisor / CLI it normally is. *)

val marker : string
(** The argv sentinel ([Sys.argv.(1)]) that marks a worker invocation. *)

val argv_for : self:string -> Spec.t -> string array
(** The argv the supervisor passes to [Unix.create_process] to launch
    the spec as a child of executable [self]. *)

val run_if_worker : unit -> unit
(** Must be the first call in the [main] of every binary linking this
    library. No-op unless {!marker} is present; otherwise runs the shard
    and exits (never returns). A malformed spec exits 64. *)
