(** The body of one shard process.

    [main spec] never returns (it ends in [exit]). It:

    - recovers warm-restart state from the {!Manifest} (if any),
      rebuilding its store {e at the manifest's epoch number};
    - serves ZLTP over TCP on an ephemeral port
      ([Zltp_server.Pir_versioned]);
    - dials the supervisor's control port, sends [Register], and then
      executes control commands ([Refresh] / [Activate] / [Status] /
      [Scrape] / [Quit]) until the channel closes or [Quit] arrives.

    Every sealed epoch and every advertisement flip is persisted to the
    manifest before it is acknowledged, so a [kill -9] at any point
    leaves state the next incarnation can rejoin from. The advertised
    epoch is {e always} overridden explicitly
    ([Zltp_server.set_advertised_epoch]): sealing a refreshed epoch
    never announces it — only [Activate] does (rollout phase two). *)

val main : Spec.t -> 'a
