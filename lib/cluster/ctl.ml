(* Control-plane codec: JSON over the shared Frame transport. Bucket
   data travels hex-encoded; everything else is small scalars. The
   control plane moves publisher churn, not query traffic, so the 2x
   hex overhead buys printable wire captures at no cost that matters. *)

module Json = Lw_json.Json

type range = { base : int; count : int; data : string }

type msg =
  | Register of {
      shard_id : int;
      pid : int;
      zltp_port : int;
      epoch : int;
      advertised : int;
    }
  | Ack of { epoch : int }
  | Ctl_err of { message : string }
  | Status_reply of { epoch : int; advertised : int; queries : int }
  | Scrape_reply of { text : string }
  | Refresh of { base_epoch : int; target_epoch : int; ranges : range list }
  | Activate of { epoch : int }
  | Status
  | Scrape
  | Quit

let num i = Json.Number (float_of_int i)

let json_of_range r =
  Json.Obj
    [
      ("base", num r.base);
      ("count", num r.count);
      ("data", Json.String (Lw_util.Hex.encode r.data));
    ]

let to_json = function
  | Register { shard_id; pid; zltp_port; epoch; advertised } ->
      Json.Obj
        [
          ("t", Json.String "register");
          ("shard_id", num shard_id);
          ("pid", num pid);
          ("zltp_port", num zltp_port);
          ("epoch", num epoch);
          ("advertised", num advertised);
        ]
  | Ack { epoch } -> Json.Obj [ ("t", Json.String "ack"); ("epoch", num epoch) ]
  | Ctl_err { message } ->
      Json.Obj [ ("t", Json.String "err"); ("message", Json.String message) ]
  | Status_reply { epoch; advertised; queries } ->
      Json.Obj
        [
          ("t", Json.String "status_reply");
          ("epoch", num epoch);
          ("advertised", num advertised);
          ("queries", num queries);
        ]
  | Scrape_reply { text } ->
      Json.Obj [ ("t", Json.String "scrape_reply"); ("text", Json.String text) ]
  | Refresh { base_epoch; target_epoch; ranges } ->
      Json.Obj
        [
          ("t", Json.String "refresh");
          ("base_epoch", num base_epoch);
          ("target_epoch", num target_epoch);
          ("ranges", Json.List (List.map json_of_range ranges));
        ]
  | Activate { epoch } -> Json.Obj [ ("t", Json.String "activate"); ("epoch", num epoch) ]
  | Status -> Json.Obj [ ("t", Json.String "status") ]
  | Scrape -> Json.Obj [ ("t", Json.String "scrape") ]
  | Quit -> Json.Obj [ ("t", Json.String "quit") ]

let range_of_json j =
  let data_hex = Json.get_string (Json.member "data" j) in
  match Lw_util.Hex.decode_opt data_hex with
  | None -> failwith "range data is not hex"
  | Some data ->
      let base = Json.get_int (Json.member "base" j) in
      let count = Json.get_int (Json.member "count" j) in
      if base < 0 || count < 0 then failwith "negative range bounds";
      { base; count; data }

let of_json j =
  let int k = Json.get_int (Json.member k j) in
  match Json.get_string (Json.member "t" j) with
  | "register" ->
      Register
        {
          shard_id = int "shard_id";
          pid = int "pid";
          zltp_port = int "zltp_port";
          epoch = int "epoch";
          advertised = int "advertised";
        }
  | "ack" -> Ack { epoch = int "epoch" }
  | "err" -> Ctl_err { message = Json.get_string (Json.member "message" j) }
  | "status_reply" ->
      Status_reply
        { epoch = int "epoch"; advertised = int "advertised"; queries = int "queries" }
  | "scrape_reply" -> Scrape_reply { text = Json.get_string (Json.member "text" j) }
  | "refresh" ->
      Refresh
        {
          base_epoch = int "base_epoch";
          target_epoch = int "target_epoch";
          ranges = List.map range_of_json (Json.get_list (Json.member "ranges" j));
        }
  | "activate" -> Activate { epoch = int "epoch" }
  | "status" -> Status
  | "scrape" -> Scrape
  | "quit" -> Quit
  | tag -> failwith ("unknown control message: " ^ tag)

let encode m = Json.to_string (to_json m)

let decode s =
  match Json.of_string s with
  | exception Json.Parse_error e -> Error ("control frame is not JSON: " ^ e)
  | j -> (
      match of_json j with
      | m -> Ok m
      | exception (Failure e | Invalid_argument e) -> Error ("bad control frame: " ^ e))

let send ep m = ep.Lw_net.Endpoint.send (encode m)
let recv ep = decode (ep.Lw_net.Endpoint.recv ())
