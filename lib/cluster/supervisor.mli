(** The fleet supervisor: real shard processes, restart-with-backoff,
    coordinated live epoch rollout, fleet metrics.

    One supervisor owns:

    - a {e master store} ([Lw_store.t]) — the publisher-facing database
      of record; every shard is a replica of it;
    - [cfg.shards] shard {e processes}, spawned by re-execing this very
      executable ({!Worker}), each serving ZLTP on an ephemeral port and
      dialing back into the supervisor's control listener;
    - the control plane: liveness (a [waitpid] reaper + ZLTP [Health]
      probes against the data port), restart with capped jittered
      backoff, a crash-loop circuit breaker, epoch rollout, metric
      scraping, and chaos hooks for the tests.

    {b Rollout is two-phase.} {!publish} seals the next epoch on the
    master, pushes the [diff_ranges] delta to every [Up] shard
    ([Refresh] — sealed but {e not} announced), and only when every
    shard acked flips the advertisement everywhere ([Activate]). A
    failure in phase one simply never activates: every shard still
    advertises (and can still answer) the pinned old epoch, so a client
    can never assemble a mixed-epoch answer — the epoch-tagged wire
    protocol makes that structural rather than probabilistic. A failure
    in phase two re-activates the old epoch on any shard that already
    flipped. Either way {!publish} reports {!Rolled_back} and the fleet
    converges again on the next rollout or shard catch-up.

    {b Warm restart.} A restarted shard re-registers carrying the epoch
    from its persisted manifest; the supervisor catches it up with an
    incremental diff when that epoch is still live in the master's keep
    window (a full push otherwise) and re-activates it at the fleet's
    advertised epoch. Mean time to recovery (process death →
    caught-up-and-activated) lands in the [lw_cluster.mttr_seconds]
    histogram. *)

type config = {
  shards : int;  (** shard processes (>= 1; >= 2 for a PIR client) *)
  domain_bits : int;
  bucket_size : int;
  keep : int;  (** per-shard store keep window *)
  master_keep : int;  (** master keep window — bounds incremental catch-up depth *)
  state_dir : string;  (** manifests live here; created if missing *)
  host : string;
  self : string;  (** executable to re-exec as workers *)
  ctl_timeout_s : float;  (** control-RPC reply deadline *)
  health_period_s : float;  (** data-port Health probe cadence; [<= 0.] disables *)
  health_timeout_s : float;  (** probe dial/reply deadline *)
  restart_backoff_s : float;  (** base restart delay (doubles per recent crash) *)
  restart_backoff_max_s : float;
  crash_loop_window_s : float;
  crash_loop_max : int;
      (** crashes within the window that trip the breaker: the shard is
          marked {!Degraded} and never restarted again *)
  start_deadline_s : float;  (** how long {!start} waits for the fleet to settle *)
  sabotage : int -> Spec.sabotage;  (** per-shard fault injection (tests) *)
}

val default_config : state_dir:string -> unit -> config
(** 4 shards, [2^8] buckets of 1 KiB, [self = Sys.executable_name],
    loopback host, 5 s control timeout, 0.5 s health probes with 1 s
    deadline, 0.1 s base backoff capped at 1 s, breaker at 5 crashes in
    10 s, no sabotage. *)

type state =
  | Starting  (** spawned, not yet registered + caught up *)
  | Up
  | Stalled  (** process alive but failing Health probes (e.g. SIGSTOP) *)
  | Down  (** dead, restart pending *)
  | Degraded  (** crash-loop breaker tripped; permanently out *)

val state_name : state -> string

type shard_info = {
  id : int;
  state : state;
  pid : int option;
  zltp_port : int option;
  epoch : int;  (** last sealed epoch the supervisor knows of *)
  advertised : int;
  restarts : int;
}

type t

val start : config -> t
(** Spawn the fleet and wait (up to [start_deadline_s]) for every shard
    to reach {!Up} or {!Degraded}. Raises [Invalid_argument] on a bad
    config; never raises on shard failure — that is what the states are
    for. *)

val info : t -> shard_info list
val fleet_epoch : t -> int  (** master store's sealed epoch *)

val activated_epoch : t -> int
(** The epoch the fleet currently advertises (trails {!fleet_epoch}
    after a rolled-back publish). *)

type rollout_result =
  | Rolled_out of { epoch : int; refreshed : int }
  | Rolled_back of { epoch : int; reason : string }
      (** [epoch] is the still-advertised old epoch *)

val publish : t -> (int * string) list -> rollout_result
(** Apply [(bucket, bytes)] mutations (empty bytes clears the bucket),
    seal the next master epoch, and run the two-phase rollout described
    above. Serialized with shard catch-up; never raises on shard
    failure. *)

val replicas : ?roles:int -> t -> Lightweb.Zltp_client.replica list list
(** Replica lists for [Zltp_client.connect_replicated]: shard [i] backs
    role [i mod roles] (default 2 — the two non-colluding PIR roles).
    Dials read the shard's current port at call time, so a replica
    re-dialed after a restart finds the new process. *)

val scrape : t -> Fleet_view.t
(** Scrape every reachable shard's Prometheus exposition over the
    control channel, plus this process's own, merged per
    {!Fleet_view}. *)

(** {2 Chaos hooks} — aimed at shard [id]; no-ops when it has no pid. *)

val kill : t -> int -> unit  (** [SIGKILL] — the reaper restarts it *)

val sigstop : t -> int -> unit
(** Freeze the process: liveness probes start failing ({!Stalled}) but
    [waitpid] sees nothing — exactly the gray-failure case clients must
    fail over around. *)

val sigcont : t -> int -> unit

(** {2 Test synchronization} *)

val await : ?deadline_s:float -> t -> (unit -> bool) -> bool
(** Poll [pred] (under the supervisor's state lock) until it holds or
    the deadline (default 10 s) passes. *)

val await_states : ?deadline_s:float -> t -> int -> state list -> bool
(** Wait for shard [id] to be in one of [states]. *)

val await_fleet : ?deadline_s:float -> t -> epoch:int -> bool
(** Wait until every non-[Degraded] shard is {!Up} with [advertised =
    epoch]. *)

val shard_state : t -> int -> state

val shutdown : t -> unit
(** Quit every shard (escalating to [SIGKILL]), reap them, stop the
    reaper/prober threads, close the control listener. Idempotent. *)
