(* Warm-restart persistence: tiny JSON manifest + raw data file, both
   written to a temp name and renamed into place so a crash mid-write
   can only ever lose the update, not corrupt the previous state. *)

module Json = Lw_json.Json

type t = {
  shard_id : int;
  domain_bits : int;
  bucket_size : int;
  epoch : int;
  advertised : int;
}

let manifest_path dir id = Filename.concat dir (Printf.sprintf "shard-%d.manifest.json" id)
let data_path dir id = Filename.concat dir (Printf.sprintf "shard-%d.data" id)

let to_json m =
  let num i = Json.Number (float_of_int i) in
  Json.Obj
    [
      ("shard_id", num m.shard_id);
      ("domain_bits", num m.domain_bits);
      ("bucket_size", num m.bucket_size);
      ("epoch", num m.epoch);
      ("advertised", num m.advertised);
    ]

let of_json j =
  let int k = Json.get_int (Json.member k j) in
  {
    shard_id = int "shard_id";
    domain_bits = int "domain_bits";
    bucket_size = int "bucket_size";
    epoch = int "epoch";
    advertised = int "advertised";
  }

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let save ~dir m ~data =
  let expect = (1 lsl m.domain_bits) * m.bucket_size in
  if String.length data <> expect then
    invalid_arg
      (Printf.sprintf "Manifest.save: data is %d bytes, geometry says %d"
         (String.length data) expect);
  (* data first: a crash between the two renames leaves a manifest that
     still describes the previous (also complete) data file or a data
     file one epoch ahead of its manifest — [load] rejects only size
     mismatches, and the epoch in the manifest is the one the shard will
     claim, so claiming one epoch older than the data holds is safe
     (catch-up re-sends a superset of what changed) *)
  write_atomic (data_path dir m.shard_id) data;
  write_atomic (manifest_path dir m.shard_id) (Json.to_string (to_json m))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir ~shard_id =
  match read_file (manifest_path dir shard_id) with
  | exception Sys_error _ -> None
  | raw -> (
      match Json.of_string_opt raw with
      | None -> None
      | Some j -> (
          match of_json j with
          | exception (Invalid_argument _ | Failure _) -> None
          | m -> (
              if m.shard_id <> shard_id then None
              else
                match read_file (data_path dir shard_id) with
                | exception Sys_error _ -> None
                | data ->
                    if String.length data = (1 lsl m.domain_bits) * m.bucket_size then
                      Some (m, data)
                    else None)))

let wipe ~dir ~shard_id =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ manifest_path dir shard_id; data_path dir shard_id ]
