module Json = Lw_json.Json

type sabotage = { die_after_register : bool; die_on_refresh : int option }

let no_sabotage = { die_after_register = false; die_on_refresh = None }

type t = {
  shard_id : int;
  ctl_host : string;
  ctl_port : int;
  domain_bits : int;
  bucket_size : int;
  keep : int;
  state_dir : string;
  sabotage : sabotage;
}

let encode s =
  let num i = Json.Number (float_of_int i) in
  Json.to_string
    (Json.Obj
       [
         ("shard_id", num s.shard_id);
         ("ctl_host", Json.String s.ctl_host);
         ("ctl_port", num s.ctl_port);
         ("domain_bits", num s.domain_bits);
         ("bucket_size", num s.bucket_size);
         ("keep", num s.keep);
         ("state_dir", Json.String s.state_dir);
         ("die_after_register", Json.Bool s.sabotage.die_after_register);
         ( "die_on_refresh",
           match s.sabotage.die_on_refresh with None -> Json.Null | Some n -> num n );
       ])

let decode raw =
  match Json.of_string raw with
  | exception Json.Parse_error e -> Error ("worker spec is not JSON: " ^ e)
  | j -> (
      let int k = Json.get_int (Json.member k j) in
      let str k = Json.get_string (Json.member k j) in
      match
        {
          shard_id = int "shard_id";
          ctl_host = str "ctl_host";
          ctl_port = int "ctl_port";
          domain_bits = int "domain_bits";
          bucket_size = int "bucket_size";
          keep = int "keep";
          state_dir = str "state_dir";
          sabotage =
            {
              die_after_register = Json.get_bool (Json.member "die_after_register" j);
              die_on_refresh =
                (match Json.member "die_on_refresh" j with
                | Json.Null -> None
                | v -> Some (Json.get_int v));
            };
        }
      with
      | s -> Ok s
      | exception (Failure e | Invalid_argument e) -> Error ("bad worker spec: " ^ e))
