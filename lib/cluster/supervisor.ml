(* The fleet supervisor. Concurrency layout:

   - ctl server handler threads (one per shard connection, owned by
     Tcp.serve): read the Register, run catch-up, then park on
     [state_cv] holding the connection open — all later traffic on the
     connection is strict request/reply driven by other threads through
     [rpc], serialized per shard by [rpc_mu].
   - the reaper thread polls waitpid(WNOHANG) and turns process deaths
     into Down/Degraded transitions + restarter threads;
   - the prober thread dials each Up shard's data port and exchanges a
     real ZLTP Health frame — catching the process that is alive for
     waitpid but frozen for clients (SIGSTOP, the gray failure);
   - publish/catch-up both hold [rollout_mu], so a registering shard can
     never interleave with a rollout half-way.

   Locks nest rpc_mu -> state_mu; rollout_mu is taken outermost only. *)

module Metrics = Lw_obs.Metrics
module Clock = Lw_obs.Clock
module Endpoint = Lw_net.Endpoint
module Tcp = Lw_net.Tcp
module Det_rng = Lw_util.Det_rng

let m_restarts = Metrics.counter "lw_cluster.restarts_total"
let m_rollouts = Metrics.counter "lw_cluster.rollouts_total"
let m_rollbacks = Metrics.counter "lw_cluster.rollbacks_total"
let m_degraded = Metrics.counter "lw_cluster.degraded_total"
let m_catchup_diff = Metrics.counter "lw_cluster.catchup_diff_total"
let m_catchup_full = Metrics.counter "lw_cluster.catchup_full_total"
let m_deaths = Metrics.counter "lw_cluster.deaths_total"
let m_mttr = Metrics.histogram "lw_cluster.mttr_seconds"
let m_rollout_time = Metrics.histogram "lw_cluster.rollout_seconds"

type config = {
  shards : int;
  domain_bits : int;
  bucket_size : int;
  keep : int;
  master_keep : int;
  state_dir : string;
  host : string;
  self : string;
  ctl_timeout_s : float;
  health_period_s : float;
  health_timeout_s : float;
  restart_backoff_s : float;
  restart_backoff_max_s : float;
  crash_loop_window_s : float;
  crash_loop_max : int;
  start_deadline_s : float;
  sabotage : int -> Spec.sabotage;
}

let default_config ~state_dir () =
  {
    shards = 4;
    domain_bits = 8;
    bucket_size = 1024;
    keep = 3;
    master_keep = 8;
    state_dir;
    host = "127.0.0.1";
    self = Sys.executable_name;
    ctl_timeout_s = 5.;
    health_period_s = 0.5;
    health_timeout_s = 1.;
    restart_backoff_s = 0.1;
    restart_backoff_max_s = 1.;
    crash_loop_window_s = 10.;
    crash_loop_max = 5;
    start_deadline_s = 15.;
    sabotage = (fun _ -> Spec.no_sabotage);
  }

type state = Starting | Up | Stalled | Down | Degraded

let state_name = function
  | Starting -> "starting"
  | Up -> "up"
  | Stalled -> "stalled"
  | Down -> "down"
  | Degraded -> "degraded"

type shard_info = {
  id : int;
  state : state;
  pid : int option;
  zltp_port : int option;
  epoch : int;
  advertised : int;
  restarts : int;
}

type shard = {
  sid : int;
  mutable st : state;
  mutable spid : int;  (* -1 = no process *)
  mutable port : int;  (* -1 = unknown *)
  mutable sepoch : int;
  mutable sadvertised : int;
  mutable ctl : Endpoint.t option;
  mutable srestarts : int;
  mutable crash_times : float list;  (* clock times of recent deaths *)
  mutable down_since : float option;  (* MTTR stopwatch *)
  rpc_mu : Mutex.t;
}

type t = {
  cfg : config;
  master : Lw_store.t;
  fleet : shard array;
  ctl_srv : Tcp.server;
  clock : Clock.t;
  rng : Det_rng.t;  (* backoff jitter; guarded by state_mu *)
  rollout_mu : Mutex.t;
  state_mu : Mutex.t;
  state_cv : Condition.t;
  mutable activated : int;
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let now t = Clock.now t.clock

let locked t f = with_lock t.state_mu f

(* ------------------------------------------------------------------ *)
(* Control RPC                                                         *)
(* ------------------------------------------------------------------ *)

let rpc t s msg =
  with_lock s.rpc_mu (fun () ->
      match locked t (fun () -> s.ctl) with
      | None -> Error "no control channel"
      | Some ep -> (
          match
            Ctl.send ep msg;
            Ctl.recv ep
          with
          | Ok reply -> Ok reply
          | Error e -> Error e
          | exception Endpoint.Closed -> Error "control channel closed"
          | exception Endpoint.Timeout -> Error "control reply timed out"))

(* ------------------------------------------------------------------ *)
(* Pushing epochs to shards                                            *)
(* ------------------------------------------------------------------ *)

(* Bound each wire range: hex-encoded bucket runs stay far under the
   frame cap and the shard applies them incrementally. *)
let max_range_buckets = 512

let chunk_ranges snap ranges =
  let bs = Lw_store.Snapshot.bucket_size snap in
  List.concat_map
    (fun (base, count) ->
      let rec split base count acc =
        if count = 0 then List.rev acc
        else
          let n = min count max_range_buckets in
          let buf = Buffer.create (n * bs) in
          for i = base to base + n - 1 do
            Buffer.add_string buf (Lw_store.Snapshot.get snap i)
          done;
          split (base + n) (count - n)
            ({ Ctl.base; count = n; data = Buffer.contents buf } :: acc)
      in
      split base count [])
    ranges

let send_refresh t s ~base_epoch ~target_epoch ~ranges =
  match rpc t s (Ctl.Refresh { base_epoch; target_epoch; ranges }) with
  | Ok (Ctl.Ack { epoch }) ->
      locked t (fun () -> s.sepoch <- epoch);
      Ok epoch
  | Ok (Ctl.Ctl_err { message }) -> Error message
  | Ok _ -> Error "unexpected refresh reply"
  | Error e -> Error e

let full_push t s target =
  Metrics.incr m_catchup_full;
  send_refresh t s ~base_epoch:(-1)
    ~target_epoch:(Lw_store.Snapshot.epoch target)
    ~ranges:(chunk_ranges target [ (0, Lw_store.Snapshot.size target) ])

(* Incremental when the shard's epoch is still live on the master (its
   pin succeeds), falling back to an unconditional full replacement —
   so a shard that diverged in any way still converges. *)
let refresh_shard t s ~base_epoch target =
  let diff =
    if base_epoch < 0 then None
    else
      match Lw_store.pin t.master ~epoch:base_epoch with
      | Error _ -> None
      | Ok old ->
          Fun.protect
            ~finally:(fun () -> Lw_store.unpin t.master old)
            (fun () -> Some (Lw_store.Snapshot.diff_ranges old target))
  in
  match diff with
  | None -> full_push t s target
  | Some ranges -> (
      Metrics.incr m_catchup_diff;
      match
        send_refresh t s ~base_epoch
          ~target_epoch:(Lw_store.Snapshot.epoch target)
          ~ranges:(chunk_ranges target ranges)
      with
      | Ok e -> Ok e
      | Error _ -> full_push t s target)

let activate_shard t s epoch =
  match rpc t s (Ctl.Activate { epoch }) with
  | Ok (Ctl.Ack _) ->
      locked t (fun () -> s.sadvertised <- epoch);
      true
  | Ok _ | Error _ -> false

(* Bring a (re)registered shard to the master's sealed epoch and the
   fleet's advertised epoch. Caller holds [rollout_mu]. *)
let catch_up t s =
  let target = Lw_store.current t.master in
  let base = locked t (fun () -> s.sepoch) in
  let sealed =
    if base = Lw_store.Snapshot.epoch target then true
    else match refresh_shard t s ~base_epoch:base target with Ok _ -> true | Error _ -> false
  in
  sealed && activate_shard t s t.activated

(* ------------------------------------------------------------------ *)
(* Process lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let spawn t id =
  let spec =
    {
      Spec.shard_id = id;
      ctl_host = t.cfg.host;
      ctl_port = Tcp.port t.ctl_srv;
      domain_bits = t.cfg.domain_bits;
      bucket_size = t.cfg.bucket_size;
      keep = t.cfg.keep;
      state_dir = t.cfg.state_dir;
      sabotage = t.cfg.sabotage id;
    }
  in
  Unix.create_process t.cfg.self
    (Worker.argv_for ~self:t.cfg.self spec)
    Unix.stdin Unix.stdout Unix.stderr

(* under state_mu *)
let close_ctl s =
  match s.ctl with
  | None -> ()
  | Some ep ->
      (try ep.Endpoint.close () with Endpoint.Closed -> ());
      s.ctl <- None

let rec respawn t s =
  let spawned =
    locked t (fun () ->
        if t.stopping || s.st <> Down then false
        else begin
          s.spid <- spawn t s.sid;
          s.st <- Starting;
          s.srestarts <- s.srestarts + 1;
          Metrics.incr m_restarts;
          true
        end)
  in
  if spawned then Condition.broadcast t.state_cv

and handle_death t s =
  let tdead = now t in
  Metrics.incr m_deaths;
  let delay =
    locked t (fun () ->
        s.spid <- -1;
        s.port <- -1;
        close_ctl s;
        if s.down_since = None then s.down_since <- Some tdead;
        if s.st = Degraded || t.stopping then None
        else begin
          s.crash_times <-
            tdead
            :: List.filter
                 (fun tc -> tdead -. tc <= t.cfg.crash_loop_window_s)
                 s.crash_times;
          let recent = List.length s.crash_times in
          if recent >= t.cfg.crash_loop_max then begin
            s.st <- Degraded;
            Metrics.incr m_degraded;
            None
          end
          else begin
            s.st <- Down;
            let backoff =
              Float.min
                (t.cfg.restart_backoff_s *. (2. ** float_of_int (recent - 1)))
                t.cfg.restart_backoff_max_s
            in
            Some (backoff +. Det_rng.float t.rng (0.5 *. t.cfg.restart_backoff_s))
          end
        end)
  in
  Condition.broadcast t.state_cv;
  match delay with
  | None -> ()
  | Some d ->
      ignore
        (Thread.create
           (fun () ->
             Clock.sleep t.clock d;
             respawn t s)
           ())

let reaper t =
  while not (locked t (fun () -> t.stopping)) do
    let deaths =
      locked t (fun () ->
          Array.to_list t.fleet
          |> List.filter (fun s ->
                 s.spid > 0
                 &&
                 match Unix.waitpid [ Unix.WNOHANG ] s.spid with
                 | 0, _ -> false
                 | _ -> true
                 | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true))
    in
    List.iter (handle_death t) deaths;
    Clock.sleep t.clock 0.02
  done

(* ------------------------------------------------------------------ *)
(* Liveness probing (data plane)                                       *)
(* ------------------------------------------------------------------ *)

module Wire = Lightweb.Zltp_wire

let probe_shard t s port =
  match
    Tcp.connect ~connect_timeout_s:t.cfg.health_timeout_s
      ~recv_timeout_s:t.cfg.health_timeout_s ~host:t.cfg.host ~port ()
  with
  | exception (Endpoint.Timeout | Unix.Unix_error _) -> false
  | ep ->
      Fun.protect
        ~finally:(fun () -> try ep.Endpoint.close () with Endpoint.Closed -> ())
        (fun () ->
          match
            ep.Endpoint.send (Wire.encode_client (Wire.Health { qid = s.sid }));
            Wire.decode_server (ep.Endpoint.recv ())
          with
          | Ok (Wire.Health_reply { epoch; _ }) ->
              locked t (fun () -> s.sadvertised <- epoch);
              true
          | Ok _ | Error _ -> false
          | exception (Endpoint.Closed | Endpoint.Timeout | Lw_net.Frame.Malformed _) ->
              false)

let prober t =
  while not (locked t (fun () -> t.stopping)) do
    Array.iter
      (fun s ->
        let target =
          locked t (fun () ->
              match s.st with (Up | Stalled) when s.port > 0 -> Some s.port | _ -> None)
        in
        match target with
        | None -> ()
        | Some port ->
            let alive = probe_shard t s port in
            let changed =
              locked t (fun () ->
                  match (s.st, alive) with
                  | Up, false ->
                      s.st <- Stalled;
                      `Stalled
                  | Stalled, true ->
                      s.st <- Up;
                      `Revived
                  | _ -> `Same)
            in
            (match changed with
            | `Same -> ()
            | `Stalled -> Condition.broadcast t.state_cv
            | `Revived ->
                (* Rollouts skip Stalled shards, so a revived shard may
                   have slept through epochs: catch it up off-thread (a
                   publish may hold rollout_mu right now) before anyone
                   trusts its advertisement again. *)
                ignore
                  (Thread.create
                     (fun () ->
                       ignore (with_lock t.rollout_mu (fun () -> catch_up t s));
                       Condition.broadcast t.state_cv)
                     ());
                Condition.broadcast t.state_cv))
      t.fleet;
    Clock.sleep t.clock t.cfg.health_period_s
  done

(* ------------------------------------------------------------------ *)
(* Control-plane server                                                *)
(* ------------------------------------------------------------------ *)

let same_ctl s ep = match s.ctl with Some e -> e == ep | None -> false

let park t s ep =
  locked t (fun () ->
      while (not t.stopping) && same_ctl s ep do
        Condition.wait t.state_cv t.state_mu
      done)

let handle_register t ep ~shard_id ~pid ~zltp_port ~epoch ~advertised =
  let s = t.fleet.(shard_id) in
  let down_since =
    locked t (fun () ->
        (match s.ctl with
        | Some old when old != ep -> close_ctl s
        | _ -> ());
        s.ctl <- Some ep;
        if s.spid <= 0 then s.spid <- pid;
        s.port <- zltp_port;
        s.sepoch <- epoch;
        s.sadvertised <- advertised;
        s.down_since)
  in
  let ok = with_lock t.rollout_mu (fun () -> catch_up t s) in
  let keep =
    locked t (fun () ->
        if ok && same_ctl s ep then begin
          s.st <- Up;
          (match down_since with
          | Some td ->
              Metrics.observe m_mttr (now t -. td);
              s.down_since <- None
          | None -> ());
          true
        end
        else same_ctl s ep)
  in
  Condition.broadcast t.state_cv;
  (* hold the connection open for RPCs until replaced or shutdown; a
     failed catch-up drops it instead, which fails the shard's next
     recv and sends it through the restart path *)
  if ok && keep then park t s ep
  else locked t (fun () -> if same_ctl s ep then s.ctl <- None)

let ctl_handler t ep =
  match Ctl.recv ep with
  | exception (Endpoint.Closed | Endpoint.Timeout) -> ()
  | Error _ -> ()
  | Ok (Ctl.Register { shard_id; pid; zltp_port; epoch; advertised })
    when shard_id >= 0 && shard_id < Array.length t.fleet ->
      handle_register t ep ~shard_id ~pid ~zltp_port ~epoch ~advertised
  | Ok _ -> ()

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let info t =
  locked t (fun () ->
      Array.to_list t.fleet
      |> List.map (fun s ->
             {
               id = s.sid;
               state = s.st;
               pid = (if s.spid > 0 then Some s.spid else None);
               zltp_port = (if s.port > 0 then Some s.port else None);
               epoch = s.sepoch;
               advertised = s.sadvertised;
               restarts = s.srestarts;
             }))

let fleet_epoch t = Lw_store.current_epoch t.master
let activated_epoch t = t.activated
let shard_state t id = locked t (fun () -> t.fleet.(id).st)

type rollout_result =
  | Rolled_out of { epoch : int; refreshed : int }
  | Rolled_back of { epoch : int; reason : string }

let publish t muts =
  with_lock t.rollout_mu @@ fun () ->
  let t0 = now t in
  let prev = Lw_store.pin_latest t.master in
  Fun.protect ~finally:(fun () -> Lw_store.unpin t.master prev) @@ fun () ->
  let w = Lw_store.writer t.master in
  List.iter
    (fun (i, bytes) ->
      if bytes = "" then Lw_store.Writer.clear w i else Lw_store.Writer.set w i bytes)
    muts;
  let next = Lw_store.Writer.seal w in
  let target_epoch = Lw_store.Snapshot.epoch next in
  Metrics.incr m_rollouts;
  let old_epoch = t.activated in
  let eligible =
    locked t (fun () -> Array.to_list t.fleet |> List.filter (fun s -> s.st = Up))
  in
  (* phase one: seal the new epoch everywhere, announcing nothing *)
  let refresh_failures =
    List.filter_map
      (fun s ->
        let base = locked t (fun () -> s.sepoch) in
        match refresh_shard t s ~base_epoch:base next with
        | Ok _ -> None
        | Error e -> Some (s.sid, e))
      eligible
  in
  match refresh_failures with
  | (sid, reason) :: _ ->
      (* rollback by omission: no shard was told to advertise
         [target_epoch], so every answer the fleet gives still names
         [old_epoch] — there is nothing to un-publish *)
      Metrics.incr m_rollbacks;
      Rolled_back
        { epoch = old_epoch; reason = Printf.sprintf "shard %d refresh: %s" sid reason }
  | [] -> (
      (* phase two: flip the advertisement *)
      let flipped, flip_failed =
        List.partition (fun s -> activate_shard t s target_epoch) eligible
      in
      match flip_failed with
      | [] ->
          t.activated <- target_epoch;
          Metrics.observe m_rollout_time (now t -. t0);
          Rolled_out { epoch = target_epoch; refreshed = List.length eligible }
      | s :: _ ->
          (* un-flip whoever already advertised the new epoch *)
          List.iter (fun s -> ignore (activate_shard t s old_epoch)) flipped;
          Metrics.incr m_rollbacks;
          Rolled_back
            {
              epoch = old_epoch;
              reason = Printf.sprintf "shard %d failed to activate %d" s.sid target_epoch;
            })

let replicas ?(roles = 2) t =
  if roles < 1 then invalid_arg "Supervisor.replicas: roles must be >= 1";
  List.init roles (fun r ->
      Array.to_list t.fleet
      |> List.filter (fun s -> s.sid mod roles = r)
      |> List.map (fun s ->
             Lightweb.Zltp_client.replica
               ~name:(Printf.sprintf "shard-%d" s.sid)
               (fun () ->
                 let port = locked t (fun () -> s.port) in
                 if port <= 0 then Error (Printf.sprintf "shard %d is down" s.sid)
                 else
                   try
                     let ep =
                       Tcp.connect ~connect_timeout_s:t.cfg.health_timeout_s
                         ~recv_timeout_s:t.cfg.ctl_timeout_s ~host:t.cfg.host ~port ()
                     in
                     Ok ep
                   with
                   | Endpoint.Timeout -> Error (Printf.sprintf "shard %d dial timeout" s.sid)
                   | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))))

let scrape t =
  let view = Fleet_view.create () in
  Fleet_view.ingest view (Lw_obs.Export.to_prometheus ());
  Array.iter
    (fun s ->
      match rpc t s Ctl.Scrape with
      | Ok (Ctl.Scrape_reply { text }) -> (
          try Fleet_view.ingest view text with Failure _ -> ())
      | Ok _ | Error _ -> ())
    t.fleet;
  view

let send_signal t id sg =
  match locked t (fun () -> t.fleet.(id).spid) with
  | p when p > 0 -> ( try Unix.kill p sg with Unix.Unix_error _ -> ())
  | _ -> ()

let kill t id = send_signal t id Sys.sigkill
let sigstop t id = send_signal t id Sys.sigstop
let sigcont t id = send_signal t id Sys.sigcont

let await ?(deadline_s = 10.) t pred =
  let deadline = now t +. deadline_s in
  let rec go () =
    if locked t pred then true
    else if now t >= deadline then false
    else begin
      Clock.sleep t.clock 0.02;
      go ()
    end
  in
  go ()

let await_states ?deadline_s t id states =
  await ?deadline_s t (fun () -> List.mem t.fleet.(id).st states)

let await_fleet ?deadline_s t ~epoch =
  await ?deadline_s t (fun () ->
      Array.for_all
        (fun s -> s.st = Degraded || (s.st = Up && s.sadvertised = epoch))
        t.fleet)

let shutdown t =
  let already = locked t (fun () ->
      let was = t.stopping in
      t.stopping <- true;
      was)
  in
  if not already then begin
    Condition.broadcast t.state_cv;
    (* polite first: Quit drains each shard's control loop *)
    Array.iter (fun s -> ignore (rpc t s Ctl.Quit)) t.fleet;
    (* then force: SIGKILL and reap whatever is left (SIGSTOPped
       children included — SIGKILL overrides the stop) *)
    let deadline = now t +. 2. in
    Array.iter
      (fun s ->
        let pid = locked t (fun () -> s.spid) in
        if pid > 0 then begin
          let rec reap polite =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ ->
                if now t >= deadline || not polite then begin
                  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                  ()
                end
                else begin
                  Clock.sleep t.clock 0.02;
                  reap (now t < deadline)
                end
            | _ -> ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          in
          reap true;
          locked t (fun () ->
              s.spid <- -1;
              s.port <- -1;
              close_ctl s;
              if s.st <> Degraded then s.st <- Down)
        end)
      t.fleet;
    Condition.broadcast t.state_cv;
    Tcp.shutdown t.ctl_srv;
    List.iter Thread.join t.threads
  end

let start cfg =
  if cfg.shards < 1 then invalid_arg "Supervisor.start: shards must be >= 1";
  if cfg.crash_loop_max < 1 then invalid_arg "Supervisor.start: crash_loop_max >= 1";
  (* a write into a SIGKILLed shard's socket must surface as EPIPE ->
     Endpoint.Closed, not take the supervisor down with SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.mkdir cfg.state_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let master =
    Lw_store.create ~keep:(max cfg.master_keep 2) ~domain_bits:cfg.domain_bits
      ~bucket_size:cfg.bucket_size ()
  in
  let fleet =
    Array.init cfg.shards (fun sid ->
        {
          sid;
          st = Down;
          spid = -1;
          port = -1;
          sepoch = 0;
          sadvertised = 0;
          ctl = None;
          srestarts = 0;
          crash_times = [];
          down_since = None;
          rpc_mu = Mutex.create ();
        })
  in
  let t_ref = ref None in
  let ctl_srv =
    Tcp.serve ~recv_timeout_s:cfg.ctl_timeout_s ~host:cfg.host ~port:0 (fun ep ->
        match !t_ref with Some t -> ctl_handler t ep | None -> ())
  in
  let t =
    {
      cfg;
      master;
      fleet;
      ctl_srv;
      clock = Clock.real ();
      rng = Det_rng.of_string_seed "lw_cluster/backoff";
      rollout_mu = Mutex.create ();
      state_mu = Mutex.create ();
      state_cv = Condition.create ();
      activated = 0;
      stopping = false;
      threads = [];
    }
  in
  t_ref := Some t;
  Array.iter
    (fun s ->
      locked t (fun () ->
          s.spid <- spawn t s.sid;
          s.st <- Starting))
    fleet;
  t.threads <- [ Thread.create reaper t ];
  if cfg.health_period_s > 0. then t.threads <- Thread.create prober t :: t.threads;
  ignore
    (await ~deadline_s:cfg.start_deadline_s t (fun () ->
         Array.for_all (fun s -> s.st = Up || s.st = Degraded) t.fleet));
  t
