(* One shard process: versioned ZLTP server on the data plane, command
   loop on the control plane, manifest persistence between the two. *)

module Metrics = Lw_obs.Metrics

let m_refreshes = Metrics.counter "lw_cluster.shard.refreshes_total"
let m_activations = Metrics.counter "lw_cluster.shard.activations_total"
let m_warm_restarts = Metrics.counter "lw_cluster.shard.warm_restarts_total"
let m_refresh_buckets = Metrics.counter "lw_cluster.shard.refresh_buckets_total"

let snapshot_bytes snap =
  let n = Lw_store.Snapshot.size snap in
  let buf = Buffer.create (Lw_store.Snapshot.total_bytes snap) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Lw_store.Snapshot.get snap i)
  done;
  Buffer.contents buf

let all_zero s = String.for_all (fun c -> c = '\000') s

(* Rebuild the store from the manifest when one exists for this geometry:
   [create ~initial_epoch:(e-1)] + one seal lands the epoch counter
   exactly where the dead incarnation left it, so supervisor catch-up is
   an incremental diff, not a full push. *)
let build_store (spec : Spec.t) =
  match Manifest.load ~dir:spec.state_dir ~shard_id:spec.shard_id with
  | Some (m, data)
    when m.Manifest.domain_bits = spec.domain_bits
         && m.Manifest.bucket_size = spec.bucket_size
         && m.Manifest.epoch > 0 ->
      let store =
        Lw_store.create ~keep:spec.keep ~initial_epoch:(m.Manifest.epoch - 1)
          ~domain_bits:spec.domain_bits ~bucket_size:spec.bucket_size ()
      in
      let w = Lw_store.writer store in
      let bs = spec.bucket_size in
      for i = 0 to (1 lsl spec.domain_bits) - 1 do
        let bucket = String.sub data (i * bs) bs in
        if not (all_zero bucket) then Lw_store.Writer.set w i bucket
      done;
      ignore (Lw_store.Writer.seal w);
      Metrics.incr m_warm_restarts;
      (store, min m.Manifest.advertised m.Manifest.epoch)
  | _ ->
      ( Lw_store.create ~keep:spec.keep ~domain_bits:spec.domain_bits
          ~bucket_size:spec.bucket_size (),
        0 )

let persist (spec : Spec.t) store ~advertised =
  let snap = Lw_store.current store in
  Manifest.save ~dir:spec.state_dir
    {
      Manifest.shard_id = spec.shard_id;
      domain_bits = spec.domain_bits;
      bucket_size = spec.bucket_size;
      epoch = Lw_store.Snapshot.epoch snap;
      advertised;
    }
    ~data:(snapshot_bytes snap)

(* Seal the pushed ranges as [target_epoch]. Idempotent on replay
   (target already sealed); [base_epoch = -1] is an unconditional full
   push, otherwise the shard must sit exactly at [base_epoch]. *)
let apply_refresh (spec : Spec.t) store ~base_epoch ~target_epoch ~ranges =
  let cur = Lw_store.current_epoch store in
  if target_epoch <= cur then Ok cur
  else if base_epoch >= 0 && base_epoch <> cur then
    Error (Printf.sprintf "refresh diffs against epoch %d but shard holds %d" base_epoch cur)
  else
    match
      let w = Lw_store.writer store in
      let bs = spec.bucket_size in
      List.iter
        (fun { Ctl.base; count; data } ->
          if String.length data <> count * bs then
            failwith
              (Printf.sprintf "range [%d,+%d) carries %d bytes, want %d" base count
                 (String.length data) (count * bs));
          if base + count > Lw_store.size store then failwith "range exceeds domain";
          for k = 0 to count - 1 do
            let bucket = String.sub data (k * bs) bs in
            if all_zero bucket then Lw_store.Writer.clear w (base + k)
            else Lw_store.Writer.set w (base + k) bucket
          done;
          Metrics.add m_refresh_buckets count)
        ranges;
      ignore (Lw_store.Writer.seal ~epoch:target_epoch w)
    with
    | () -> Ok target_epoch
    | exception (Failure e | Invalid_argument e) -> Error e

let main (spec : Spec.t) =
  (* peers (supervisor, clients) can vanish at any moment; their death
     must read as Endpoint.Closed, not a fatal SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.mkdir spec.state_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let store, advertised0 = build_store spec in
  let advertised = ref advertised0 in
  let server =
    Lightweb.Zltp_server.create
      ~server_id:(Printf.sprintf "shard-%d" spec.shard_id)
      ~hash_key:(Lw_store.hash_key store) ~blob_size:spec.bucket_size
      (Lightweb.Zltp_backend.versioned store)
  in
  (* the advertised epoch is always an explicit override: catch-up seals
     epochs ahead of the announcement, and only Activate moves it *)
  Lightweb.Zltp_server.set_advertised_epoch server (Some !advertised);
  let data_srv =
    Lw_net.Tcp.serve ~host:spec.ctl_host ~port:0 (fun ep ->
        Lightweb.Zltp_server.serve server ep)
  in
  let refreshes_seen = ref 0 in
  let ctl =
    Lw_net.Tcp.connect ~connect_timeout_s:10. ~host:spec.ctl_host ~port:spec.ctl_port ()
  in
  Fun.protect
    ~finally:(fun () -> ctl.Lw_net.Endpoint.close ())
    (fun () ->
      let reply m = Ctl.send ctl m in
      reply
        (Ctl.Register
           {
             shard_id = spec.shard_id;
             pid = Unix.getpid ();
             zltp_port = Lw_net.Tcp.port data_srv;
             epoch = Lw_store.current_epoch store;
             advertised = !advertised;
           });
      if spec.sabotage.Spec.die_after_register then exit 70;
      let running = ref true in
      while !running do
        match Ctl.recv ctl with
        | exception (Lw_net.Endpoint.Closed | Lw_net.Endpoint.Timeout) ->
            (* supervisor gone; die quietly and let the next one respawn us *)
            running := false
        | Error e -> reply (Ctl.Ctl_err { message = e })
        | Ok (Ctl.Refresh { base_epoch; target_epoch; ranges }) -> (
            incr refreshes_seen;
            (match spec.sabotage.Spec.die_on_refresh with
            | Some n when n = !refreshes_seen -> exit 70
            | _ -> ());
            match apply_refresh spec store ~base_epoch ~target_epoch ~ranges with
            | Error message -> reply (Ctl.Ctl_err { message })
            | Ok epoch ->
                Metrics.incr m_refreshes;
                persist spec store ~advertised:!advertised;
                reply (Ctl.Ack { epoch }))
        | Ok (Ctl.Activate { epoch }) ->
            if epoch > Lw_store.current_epoch store then
              reply
                (Ctl.Ctl_err
                   {
                     message =
                       Printf.sprintf "cannot advertise unsealed epoch %d (at %d)" epoch
                         (Lw_store.current_epoch store);
                   })
            else begin
              advertised := epoch;
              Lightweb.Zltp_server.set_advertised_epoch server (Some epoch);
              Metrics.incr m_activations;
              persist spec store ~advertised:epoch;
              reply (Ctl.Ack { epoch = Lw_store.current_epoch store })
            end
        | Ok Ctl.Status ->
            reply
              (Ctl.Status_reply
                 {
                   epoch = Lw_store.current_epoch store;
                   advertised = !advertised;
                   queries = Lightweb.Zltp_server.queries_served server;
                 })
        | Ok Ctl.Scrape ->
            reply (Ctl.Scrape_reply { text = Lw_obs.Export.to_prometheus () })
        | Ok Ctl.Quit ->
            reply (Ctl.Ack { epoch = Lw_store.current_epoch store });
            running := false
        | Ok (Ctl.Register _ | Ctl.Ack _ | Ctl.Ctl_err _ | Ctl.Status_reply _ | Ctl.Scrape_reply _)
          ->
            reply (Ctl.Ctl_err { message = "unexpected control message" })
      done);
  Lw_net.Tcp.shutdown data_srv;
  exit 0
