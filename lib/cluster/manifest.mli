(** Per-shard warm-restart state.

    Every time a shard seals an epoch it persists two files into the
    cluster state directory, atomically (write-to-temp + rename):

    - [shard-<id>.manifest.json] — the {e small epoch manifest}: shard
      id, geometry, the sealed epoch and the epoch currently advertised
      to clients;
    - [shard-<id>.data] — the raw bucket bytes of that epoch.

    A restarted process (crash, [kill -9], host reboot) loads both,
    rebuilds its store {e at the manifest's epoch number}
    ([Lw_store.create ~initial_epoch] + one seal), and registers with
    the supervisor carrying that epoch — so catch-up is the incremental
    [diff_ranges] delta from the manifest epoch to the fleet's current
    epoch, not a full database push. A manifest whose geometry does not
    match the spec (operator reconfigured the fleet) is ignored and the
    shard rejoins cold. *)

type t = {
  shard_id : int;
  domain_bits : int;
  bucket_size : int;
  epoch : int;  (** sealed epoch the data file reflects *)
  advertised : int;  (** epoch announced to clients when the shard died *)
}

val save : dir:string -> t -> data:string -> unit
(** Persist manifest + bucket bytes atomically. [data] must be exactly
    [2^domain_bits * bucket_size] bytes. Raises [Sys_error] on I/O
    failure — the caller (shard control loop) reports it as a control
    error rather than dying. *)

val load : dir:string -> shard_id:int -> (t * string) option
(** Read back manifest + data; [None] when either file is missing,
    unparsable, or the data size contradicts the manifest (a torn write
    loses warm restart, never correctness). *)

val wipe : dir:string -> shard_id:int -> unit
(** Delete both files (best-effort) — chaos tests use this to force a
    cold rejoin. *)
