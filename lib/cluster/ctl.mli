(** The cluster control-channel protocol.

    A shard process dials the supervisor's control port right after it
    binds its ZLTP data port, sends one [Register], and then serves
    supervisor-issued commands over the same connection for its whole
    life — the supervisor is the TCP {e server} of the control plane, so
    shards can bind their data port to 0 and never need a pre-agreed
    port map.

    The channel is deliberately narrow (see SECURITY.md): everything it
    carries is public operational state — epoch numbers, liveness,
    bucket ranges of a publisher diff, metric aggregates. No message
    ever depends on any client query, so a control-plane observer learns
    nothing a ZLTP traffic observer would not already know.

    Framing rides the same {!Lw_net.Frame} transport as ZLTP; payloads
    are JSON (bucket data hex-encoded), so the control plane favours
    debuggability over throughput — the data it moves is bounded by
    publisher churn, not query traffic. *)

type range = {
  base : int;  (** first bucket index of the run *)
  count : int;  (** buckets in the run *)
  data : string;  (** [count * bucket_size] raw bytes *)
}

type msg =
  (* shard -> supervisor *)
  | Register of {
      shard_id : int;
      pid : int;
      zltp_port : int;
      epoch : int;  (** sealed epoch after warm-restart recovery (0 = cold) *)
      advertised : int;  (** epoch the shard currently announces to clients *)
    }
  | Ack of { epoch : int }  (** command done; [epoch] = shard's sealed epoch *)
  | Ctl_err of { message : string }
  | Status_reply of { epoch : int; advertised : int; queries : int }
  | Scrape_reply of { text : string }  (** Prometheus text exposition *)
  (* supervisor -> shard *)
  | Refresh of {
      base_epoch : int;
          (** epoch the ranges diff against; [-1] = unconditional full
              replacement (the ranges cover the whole domain) *)
      target_epoch : int;  (** epoch to seal as; must exceed the shard's *)
      ranges : range list;
    }
  | Activate of { epoch : int }  (** announce [epoch] to clients from now on *)
  | Status
  | Scrape
  | Quit

val encode : msg -> string
val decode : string -> (msg, string) result

val send : Lw_net.Endpoint.t -> msg -> unit
(** [send ep m] — {!encode} + [ep.send]; raises like [Endpoint.send]. *)

val recv : Lw_net.Endpoint.t -> (msg, string) result
(** [recv ep] — [ep.recv] + {!decode}; transport exceptions propagate,
    an undecodable frame is [Error]. *)
