(** A database of [2^domain_bits] fixed-size buckets in one contiguous
    buffer — the object the ZLTP server's per-request linear scan walks.

    Fixed bucket size is load-bearing for privacy: every response has the
    same length no matter which record was fetched. *)

type t

val create : domain_bits:int -> bucket_size:int -> t
(** All buckets start zeroed (= empty). [domain_bits] in [1..26] keeps the
    buffer under [2^26 * bucket_size] bytes; [bucket_size] must be
    positive. *)

val domain_bits : t -> int
val size : t -> int
(** Number of buckets, [2^domain_bits]. *)

val bucket_size : t -> int
val total_bytes : t -> int

val set : t -> int -> string -> unit
(** [set db i data] writes [data] into bucket [i]; [data] shorter than the
    bucket is zero-padded, longer raises [Invalid_argument]. *)

val get : t -> int -> string
(** [get db i] is the full [bucket_size] contents of bucket [i]. *)

val is_empty : t -> int -> bool
(** [is_empty db i] is true when bucket [i] is all zeros. *)

val clear : t -> int -> unit

val xor_bucket_into : t -> int -> dst:Bytes.t -> unit
(** [xor_bucket_into db i ~dst] XORs bucket [i] into [dst] (which must be
    at least [bucket_size] long) — the scan's inner step. *)

val xor_bucket_into_masked : t -> int -> mask:int -> dst:Bytes.t -> unit
(** Like [xor_bucket_into], but each source byte is ANDed with
    [mask land 0xff] first. With mask [0x00] the bucket is still read and
    [dst] rewritten unchanged, so a scan that visits every bucket with a
    mask derived from its selection bit has an access trace independent of
    the selection — the constant-trace scan step. *)

val xor_block_into_masked :
  t -> base:int -> count:int -> bits:Bytes.t -> bits_pos:int -> dst:Bytes.t -> unit
(** [xor_block_into_masked db ~base ~count ~bits ~bits_pos ~dst] XORs the
    [count] consecutive buckets starting at [base] into [dst], bucket
    [base + j] masked by the selection byte [bits.[bits_pos + j]] — the
    fused scan's block step ({!Lw_util.Xorbuf.xor_buckets_masked} under
    one bounds gate). Tracing records every bucket individually, exactly
    as the scalar path would. *)

val xor_block_into_masked2 :
  t ->
  base:int ->
  count:int ->
  bits0:Bytes.t ->
  bits0_pos:int ->
  bits1:Bytes.t ->
  bits1_pos:int ->
  dst0:Bytes.t ->
  dst1:Bytes.t ->
  unit
(** Width-2 fused block step ({!Lw_util.Xorbuf.xor_buckets_masked2}): one
    streamed pass over the block feeds both accumulators — the two-probe
    keyword scan. Each bucket is traced once, like a packed pass. *)

val xor_bucket_into_packed : t -> int -> pack:int -> dsts:Bytes.t array -> unit
(** [xor_bucket_into_packed db i ~pack ~dsts] streams bucket [i] once into
    the 1–8 accumulators of [dsts], lane [q] masked by bit [q] of [pack] —
    the bit-packed batch scan's step. The bucket is recorded once in the
    access trace regardless of how many lanes ride the pass. *)

val set_tracing : t -> bool -> unit
(** Enable/disable access tracing; either way the trace is reset. Tracing
    is for the obliviousness checker — leave it off on hot paths. *)

val access_trace : t -> int list
(** Bucket indices touched by [get] / [xor_bucket_into]{[_masked]} since
    tracing was enabled, in access order. *)

val fill_random : t -> Lw_util.Det_rng.t -> unit
(** Fill every bucket with deterministic pseudorandom bytes; used by the
    benchmarks, which only care about scan geometry, not contents. *)

val occupied : t -> int
(** Number of non-empty buckets (linear scan; for tests and stats). *)
