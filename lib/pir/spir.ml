(* LWE-style single-server PIR over the epoch engine's sealed snapshots
   (SimplePIR/ZipPIR shape; see spir.mli for the construction and the
   noise-bound arithmetic). All ring arithmetic is mod 2^32 on native
   ints: a 63-bit int holds any 8-bit x 32-bit product plus a 32-bit
   accumulator without overflow, and [mul32] splits the one genuinely
   32x32 product (A·s, H·s) so no intermediate exceeds 2^49. *)

type params = { n : int }

let default_params = { n = 64 }
let max_domain_bits = 14
let log_delta = 24
let delta = 1 lsl log_delta
let mask32 = 0xFFFFFFFF

(* (a * b) mod 2^32 for a, b < 2^32 without leaving 63-bit range: the
   high half of [a] only contributes its low 16 bits after the shift. *)
let mul32 a b =
  ((a land 0xFFFF) * b + ((a lsr 16) * b land 0xFFFF) lsl 16) land mask32

let a_seed ~hash_key ~epoch =
  Lw_crypto.Sha256.digest (Printf.sprintf "lw-spir-A/%s/%d" hash_key epoch)

let seed_len = 32 (* Sha256.digest_len *)
let header_bytes = 16 + seed_len
let hint_bytes p ~bucket_size = header_bytes + (bucket_size * p.n * 4)
let query_bytes ~domain_bits = 12 + ((1 lsl domain_bits) * 4)

(* ---- u32 (de)serialization helpers ---- *)

let u32_at s pos = Int32.to_int (String.get_int32_be s pos) land mask32

let check_magic s magic =
  if String.length s < 4 || not (String.equal (String.sub s 0 4) magic) then
    Error (Printf.sprintf "bad %s header" magic)
  else Ok ()

(* The public query matrix A is never materialized: both sides stream its
   rows (n u32s per column, columns in index order) out of a DRBG keyed
   by the epoch seed, so hint computation and query generation walk the
   identical sequence. *)
let a_row_stream ~seed ~n =
  let rng = Lw_crypto.Drbg.create ~seed in
  let row = Array.make n 0 in
  fun () ->
    let bytes = Lw_crypto.Drbg.generate rng (4 * n) in
    for i = 0 to n - 1 do
      row.(i) <- u32_at bytes (4 * i)
    done;
    row

(* ---- hints ---- *)

type hint = {
  h_epoch : int;
  h_rows : int;
  h_n : int;
  h_seed : string; (* the public A seed, carried so clients need nothing else *)
  h : int array; (* rows*n *)
}

let hint_epoch h = h.h_epoch
let hint_n h = h.h_n
let hint_rows h = h.h_rows

let hint_of_snapshot p snap =
  let rows = Lw_store.Snapshot.bucket_size snap in
  let cols = Lw_store.Snapshot.size snap in
  let n = p.n in
  let epoch = Lw_store.Snapshot.epoch snap in
  let seed = a_seed ~hash_key:(Lw_store.Snapshot.hash_key snap) ~epoch in
  let next_row = a_row_stream ~seed ~n in
  let h = Array.make (rows * n) 0 in
  for j = 0 to cols - 1 do
    let a_row = next_row () in
    let bucket = Lw_store.Snapshot.get snap j in
    for r = 0 to rows - 1 do
      let d = Char.code (String.unsafe_get bucket r) in
      (* skipping zero DATA bytes depends only on the (public, sealed)
         database, never on any query — the hint is the same for every
         client *)
      if d <> 0 then begin
        let base = r * n in
        for i = 0 to n - 1 do
          Array.unsafe_set h (base + i)
            ((Array.unsafe_get h (base + i) + (d * Array.unsafe_get a_row i)) land mask32)
        done
      end
    done
  done;
  let b = Bytes.create (header_bytes + (rows * n * 4)) in
  Bytes.blit_string "SPH1" 0 b 0 4;
  Bytes.set_int32_be b 4 (Int32.of_int epoch);
  Bytes.set_int32_be b 8 (Int32.of_int rows);
  Bytes.set_int32_be b 12 (Int32.of_int n);
  Bytes.blit_string seed 0 b 16 seed_len;
  Array.iteri (fun k v -> Bytes.set_int32_be b (header_bytes + (4 * k)) (Int32.of_int v)) h;
  Bytes.unsafe_to_string b

let decode_hint s =
  match check_magic s "SPH1" with
  | Error _ as e -> e
  | Ok () ->
      if String.length s < header_bytes then Error "hint truncated"
      else begin
        let h_epoch = u32_at s 4 in
        let h_rows = u32_at s 8 in
        let h_n = u32_at s 12 in
        let cells = h_rows * h_n in
        if h_rows < 1 || h_rows > 1 lsl 24 || h_n < 1 || h_n > 1 lsl 16 then
          Error "hint dimensions out of range"
        else if String.length s <> header_bytes + (4 * cells) then
          Error "hint length does not match its dimensions"
        else begin
          let h_seed = String.sub s 16 seed_len in
          let h = Array.init cells (fun k -> u32_at s (header_bytes + (4 * k))) in
          Ok { h_epoch; h_rows; h_n; h_seed; h }
        end
      end

(* ---- client ---- *)

module Client = struct
  type secret = { s : int array; s_epoch : int; s_rows : int }

  let query hint ~domain_bits ~index rng =
    if domain_bits < 1 || domain_bits > max_domain_bits then
      invalid_arg
        (Printf.sprintf "Spir.Client.query: domain_bits must be in [1,%d] (noise bound)"
           max_domain_bits);
    let cols = 1 lsl domain_bits in
    if index < 0 || index >= cols then invalid_arg "Spir.Client.query: index out of domain";
    let n = hint.h_n in
    let s = Array.make n 0 in
    let sb = Lw_crypto.Drbg.generate rng (4 * n) in
    for i = 0 to n - 1 do
      s.(i) <- u32_at sb (4 * i)
    done;
    let next_row = a_row_stream ~seed:hint.h_seed ~n in
    let b = Bytes.create (12 + (4 * cols)) in
    Bytes.blit_string "SPQ1" 0 b 0 4;
    Bytes.set_int32_be b 4 (Int32.of_int hint.h_epoch);
    Bytes.set_int32_be b 8 (Int32.of_int cols);
    for j = 0 to cols - 1 do
      let a_row = next_row () in
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := (!acc + mul32 (Array.unsafe_get a_row i) (Array.unsafe_get s i)) land mask32
      done;
      (* fold the target column in branch-free: an arithmetic equality
         mask, never a secret-indexed write or a secret branch — the
         generation trace is the same full walk for every index *)
      let d = j lxor index in
      let nonzero = (d lor (-d)) lsr 62 land 1 in
      let e = Lw_crypto.Drbg.uniform_int rng 3 - 1 in
      Bytes.set_int32_be b (12 + (4 * j))
        (Int32.of_int ((!acc + e + (delta * (1 - nonzero))) land mask32))
    done;
    ({ s; s_epoch = hint.h_epoch; s_rows = hint.h_rows }, Bytes.unsafe_to_string b)

  let recover hint secret answer =
    match check_magic answer "SPA1" with
    | Error _ as e -> e
    | Ok () ->
        if String.length answer < 8 then Error "answer truncated"
        else begin
          let rows = u32_at answer 4 in
          if rows <> hint.h_rows || rows <> secret.s_rows then Error "answer row-count mismatch"
          else if secret.s_epoch <> hint.h_epoch then Error "secret/hint epoch mismatch"
          else if String.length answer <> 8 + (4 * rows) then Error "answer length mismatch"
          else begin
            let n = hint.h_n in
            let out = Bytes.create rows in
            for r = 0 to rows - 1 do
              let hs = ref 0 in
              let base = r * n in
              for i = 0 to n - 1 do
                hs :=
                  (!hs
                  + mul32 (Array.unsafe_get hint.h (base + i)) (Array.unsafe_get secret.s i))
                  land mask32
              done;
              let t = (u32_at answer (8 + (4 * r)) - !hs) land mask32 in
              Bytes.unsafe_set out r (Char.unsafe_chr ((t + (delta / 2)) lsr log_delta land 0xff))
            done;
            Ok (Bytes.unsafe_to_string out)
          end
        end
end

(* ---- server ---- *)

let answer snap query =
  match check_magic query "SPQ1" with
  | Error _ as e -> e
  | Ok () ->
      if String.length query < 12 then Error "query truncated"
      else begin
        let q_epoch = u32_at query 4 in
        let cols = u32_at query 8 in
        if cols <> Lw_store.Snapshot.size snap then Error "query column-count/domain mismatch"
        else if q_epoch <> Lw_store.Snapshot.epoch snap then Error "query/snapshot epoch mismatch"
        else if String.length query <> 12 + (4 * cols) then Error "query length mismatch"
        else begin
          let rows = Lw_store.Snapshot.bucket_size snap in
          let ans = Array.make rows 0 in
          (* one pass over every bucket in index order, whatever the
             query: the access trace is the same full walk as the
             two-server XOR scan's (Trace_check.check_spir_scan) *)
          for j = 0 to cols - 1 do
            let qu_j = u32_at query (12 + (4 * j)) in
            let bucket = Lw_store.Snapshot.get snap j in
            for r = 0 to rows - 1 do
              let d = Char.code (String.unsafe_get bucket r) in
              (* zero-byte skip depends on public data only, never the query *)
              if d <> 0 then
                Array.unsafe_set ans r ((Array.unsafe_get ans r + (d * qu_j)) land mask32)
            done
          done;
          let b = Bytes.create (8 + (4 * rows)) in
          Bytes.blit_string "SPA1" 0 b 0 4;
          Bytes.set_int32_be b 4 (Int32.of_int rows);
          Array.iteri (fun r v -> Bytes.set_int32_be b (8 + (4 * r)) (Int32.of_int v)) ans;
          Ok (Bytes.unsafe_to_string b)
        end
      end

(* ---- hint cache ---- *)

module Hint_cache = struct
  type t = {
    p : params;
    capacity : int;
    mu : Mutex.t;
    mutable entries : (int * string) list; (* newest first *)
  }

  let create ?(capacity = 4) p =
    if capacity < 1 then invalid_arg "Spir.Hint_cache.create: capacity must be >= 1";
    { p; capacity; mu = Mutex.create (); entries = [] }

  let params t = t.p

  let get t store ~epoch =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        match List.assoc_opt epoch t.entries with
        | Some h -> Ok h
        | None -> (
            match Lw_store.pin store ~epoch with
            | Error _ as e -> e
            | Ok snap ->
                let h =
                  Fun.protect
                    ~finally:(fun () -> Lw_store.unpin store snap)
                    (fun () -> hint_of_snapshot t.p snap)
                in
                t.entries <-
                  (epoch, h) :: (if List.length t.entries >= t.capacity then
                                   List.filteri (fun i _ -> i < t.capacity - 1) t.entries
                                 else t.entries);
                Ok h))

  let warm t store = ignore (get t store ~epoch:(Lw_store.current_epoch store))
  let cached_epochs t = List.map fst t.entries
end
