(** The two-server PIR server side: per-request DPF evaluation plus the
    linear data scan (the two cost components the paper's §5.1
    microbenchmark separates: 64 ms DPF evaluation + 103 ms scan per GiB).

    The production path is the fused, blocked kernel: {!answer} consumes
    DPF leaf bits block-by-block against the matching database block as
    the traversal produces them, and {!answer_batch} packs up to 8
    queries' selection bits into one byte per bucket so a batch pays one
    streamed pass over the data ({!Lw_util.Xorbuf.xor_into_packed}).

    {!eval_bits} and {!scan} remain the seed's two-pass reference
    implementation: benchmarks (E1, E19) time its phases separately and
    the property tests assert the fused and batched kernels agree with it
    byte-for-byte. *)

type t

val create : Bucket_db.t -> t
(** Serve a flat mutable database — tests, microbenchmarks, and worlds
    that never change epoch. *)

val of_snapshot : Lw_store.Snapshot.t -> t
(** Serve one pinned epoch of the versioned engine — the production
    path. The caller owns the pin: keep the snapshot pinned for as long
    as the server answers from it. *)

val db : t -> Bucket_db.t
(** Raises [Invalid_argument] on a snapshot-backed server. *)

val epoch : t -> int option
(** The served epoch; [None] for a flat (unversioned) server. *)

val domain_bits : t -> int
val size : t -> int
val bucket_size : t -> int
val total_bytes : t -> int

val eval_bits : t -> Lw_dpf.Dpf.key -> Bytes.t
(** [eval_bits t k] is one byte (0/1) per bucket, in index order — the
    first pass of the reference path. Raises [Invalid_argument] if the
    key's domain differs from the database's. *)

val scan : t -> Bytes.t -> string
(** [scan t bits] XORs every bucket whose bit is set into a fresh
    accumulator of [bucket_size] bytes — the second pass of the reference
    path (scalar per-bucket masked kernel). *)

val answer : t -> Lw_dpf.Dpf.key -> string
(** One private-GET response share, via the fused single-pass kernel. *)

val answer_pair : t -> Lw_dpf.Dpf.key -> Lw_dpf.Dpf.key -> string * string
(** Both responses from ONE streamed pass over the data — the width-2
    fused kernel the keyword verb's two cuckoo probes ride: two DPF
    evaluations, a single memory traversal, each source word loaded once
    and masked into both accumulators. *)

val answer_batch : t -> Lw_dpf.Dpf.key array -> string array
(** All responses from one streamed pass over the data, selection bits
    bit-packed 8 queries to the byte; a partial final pack (batch size
    not a multiple of 8) runs the same kernel on fewer lanes. A batch of
    exactly two rides {!answer_pair}. *)

(** {2 Domain-partitioned parallel scan}

    The bucket domain splits into [2^levels] aligned sub-ranges; each
    worker rebases the client key at its sub-range's internal tree node
    ({!Lw_dpf.Dpf.make_subkey}) and runs the same fused kernel over the
    remaining bits, so no worker pays a full-domain DPF evaluation. The
    partial accumulators XOR-reduce to exactly the serial answer. Every
    partition is still walked in full with mask-selected XORs, so the
    union of the per-worker memory traces is the serial scan's trace —
    parallelism changes who touches a bucket, never whether. *)

val parallel_cutoff_bytes : int
(** Default work-size cutoff (1 MiB): below this the [_domains] entry
    points fall back to the serial fused kernel, since a parallel answer
    would be all spawn/join overhead. *)

val answer_domains : ?cutoff_bytes:int -> ?domains:int -> t -> Lw_dpf.Dpf.key -> string
(** {!answer} computed by [domains] workers (default
    [Domain.recommended_domain_count ()]) on OCaml domains, each scanning
    claimed partitions into its own accumulator; byte-identical to
    {!answer}. Falls back to the serial kernel when [domains <= 1] or the
    database is smaller than [cutoff_bytes] (tests pass [~cutoff_bytes:0]
    to force the parallel path on small databases). All domains are
    joined before any worker failure is re-raised. *)

val answer_batch_domains :
  ?cutoff_bytes:int -> ?domains:int -> t -> Lw_dpf.Dpf.key array -> string array
(** {!answer_batch} (bit-packed lanes) with the partition-claiming worker
    scheme of {!answer_domains}; byte-identical to {!answer_batch}. *)

val answer_partitioned : ?partitions:int -> t -> Lw_dpf.Dpf.key -> string
(** The partitioned kernels on a serial schedule (ascending partition
    order, no domains): the deterministic twin of {!answer_domains} that
    the obliviousness trace checker drives. [partitions] (default 2)
    rounds up to a power of two, clamped below the domain size. *)

val answer_partitioned_timed : ?partitions:int -> t -> Lw_dpf.Dpf.key -> string * float array
(** {!answer_partitioned} plus per-partition elapsed seconds (span
    clock). [max times] is the critical path an idle [partitions]-core
    machine would pay for the parallel answer — what bench E24 reports as
    the achievable speedup independent of this machine's core count. *)

val answer_serialized : t -> string -> (string, string) result
(** Wire-level entry point: deserialises the key, validates the domain,
    answers. *)
