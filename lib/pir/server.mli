(** The two-server PIR server side: per-request DPF evaluation plus the
    linear data scan (the two cost components the paper's §5.1
    microbenchmark separates: 64 ms DPF evaluation + 103 ms scan per GiB).

    The production path is the fused, blocked kernel: {!answer} consumes
    DPF leaf bits block-by-block against the matching database block as
    the traversal produces them, and {!answer_batch} packs up to 8
    queries' selection bits into one byte per bucket so a batch pays one
    streamed pass over the data ({!Lw_util.Xorbuf.xor_into_packed}).

    {!eval_bits} and {!scan} remain the seed's two-pass reference
    implementation: benchmarks (E1, E19) time its phases separately and
    the property tests assert the fused and batched kernels agree with it
    byte-for-byte. *)

type t

val create : Bucket_db.t -> t
(** Serve a flat mutable database — tests, microbenchmarks, and worlds
    that never change epoch. *)

val of_snapshot : Lw_store.Snapshot.t -> t
(** Serve one pinned epoch of the versioned engine — the production
    path. The caller owns the pin: keep the snapshot pinned for as long
    as the server answers from it. *)

val db : t -> Bucket_db.t
(** Raises [Invalid_argument] on a snapshot-backed server. *)

val epoch : t -> int option
(** The served epoch; [None] for a flat (unversioned) server. *)

val domain_bits : t -> int
val size : t -> int
val bucket_size : t -> int
val total_bytes : t -> int

val eval_bits : t -> Lw_dpf.Dpf.key -> Bytes.t
(** [eval_bits t k] is one byte (0/1) per bucket, in index order — the
    first pass of the reference path. Raises [Invalid_argument] if the
    key's domain differs from the database's. *)

val scan : t -> Bytes.t -> string
(** [scan t bits] XORs every bucket whose bit is set into a fresh
    accumulator of [bucket_size] bytes — the second pass of the reference
    path (scalar per-bucket masked kernel). *)

val answer : t -> Lw_dpf.Dpf.key -> string
(** One private-GET response share, via the fused single-pass kernel. *)

val answer_batch : t -> Lw_dpf.Dpf.key array -> string array
(** All responses from one streamed pass over the data, selection bits
    bit-packed 8 queries to the byte; a partial final pack (batch size
    not a multiple of 8) runs the same kernel on fewer lanes. *)

val answer_serialized : t -> string -> (string, string) result
(** Wire-level entry point: deserialises the key, validates the domain,
    answers. *)
