type t = {
  domain_bits : int;
  bucket_size : int;
  data : Bytes.t;
  mutable tracing : bool;
  mutable trace_rev : int list; (* bucket indices touched, newest first *)
}

let max_domain_bits = 26

let create ~domain_bits ~bucket_size =
  if domain_bits < 1 || domain_bits > max_domain_bits then
    invalid_arg "Bucket_db.create: domain_bits out of range";
  if bucket_size <= 0 then invalid_arg "Bucket_db.create: bucket_size must be positive";
  {
    domain_bits;
    bucket_size;
    data = Bytes.make ((1 lsl domain_bits) * bucket_size) '\x00';
    tracing = false;
    trace_rev = [];
  }

let domain_bits t = t.domain_bits
let size t = 1 lsl t.domain_bits
let bucket_size t = t.bucket_size
let total_bytes t = Bytes.length t.data

let check_index t i =
  if i < 0 || i >= size t then invalid_arg "Bucket_db: index out of range"

(* Access tracing: off by default (a per-access cons would pollute the
   scan benchmarks), switched on by the obliviousness checker to observe
   which buckets a query touches. *)
let set_tracing t on =
  t.tracing <- on;
  t.trace_rev <- []

let access_trace t = List.rev t.trace_rev
let record t i = if t.tracing then t.trace_rev <- i :: t.trace_rev

let set t i data =
  check_index t i;
  if String.length data > t.bucket_size then invalid_arg "Bucket_db.set: data exceeds bucket";
  let off = i * t.bucket_size in
  Bytes.fill t.data off t.bucket_size '\x00';
  Bytes.blit_string data 0 t.data off (String.length data)

let get t i =
  check_index t i;
  record t i;
  Bytes.sub_string t.data (i * t.bucket_size) t.bucket_size

let is_empty t i =
  check_index t i;
  Lw_util.Xorbuf.is_zero_range t.data ~pos:(i * t.bucket_size) ~len:t.bucket_size

let clear t i =
  check_index t i;
  Bytes.fill t.data (i * t.bucket_size) t.bucket_size '\x00'

let xor_bucket_into t i ~dst =
  check_index t i;
  record t i;
  Lw_util.Xorbuf.xor_into ~src:t.data ~src_pos:(i * t.bucket_size) ~dst ~dst_pos:0
    ~len:t.bucket_size

let xor_bucket_into_masked t i ~mask ~dst =
  check_index t i;
  record t i;
  Lw_util.Xorbuf.xor_into_masked ~mask ~src:t.data ~src_pos:(i * t.bucket_size) ~dst
    ~dst_pos:0 ~len:t.bucket_size

(* The fused and batched kernels enter here at block/pack granularity,
   but tracing stays bucket-granular: every bucket the kernel streams is
   recorded individually, so [Lw_analysis.Trace_check] observes exactly
   the per-bucket access sequence the scalar path would produce. *)

let xor_block_into_masked t ~base ~count ~bits ~bits_pos ~dst =
  if count < 0 || base < 0 || base > size t - count then
    invalid_arg "Bucket_db: block out of range";
  if t.tracing then
    for j = 0 to count - 1 do
      t.trace_rev <- (base + j) :: t.trace_rev
    done;
  Lw_util.Xorbuf.xor_buckets_masked ~bits ~bits_pos ~count ~src:t.data
    ~src_pos:(base * t.bucket_size) ~bucket:t.bucket_size ~dst

let xor_block_into_masked2 t ~base ~count ~bits0 ~bits0_pos ~bits1 ~bits1_pos ~dst0 ~dst1 =
  if count < 0 || base < 0 || base > size t - count then
    invalid_arg "Bucket_db: block out of range";
  if t.tracing then
    for j = 0 to count - 1 do
      t.trace_rev <- (base + j) :: t.trace_rev
    done;
  Lw_util.Xorbuf.xor_buckets_masked2 ~bits0 ~bits0_pos ~bits1 ~bits1_pos ~count ~src:t.data
    ~src_pos:(base * t.bucket_size) ~bucket:t.bucket_size ~dst0 ~dst1

let xor_bucket_into_packed t i ~pack ~dsts =
  check_index t i;
  record t i;
  Lw_util.Xorbuf.xor_into_packed ~pack ~src:t.data ~src_pos:(i * t.bucket_size) ~dsts
    ~dst_pos:0 ~len:t.bucket_size

let fill_random t rng =
  let n = Bytes.length t.data in
  let chunk = 65536 in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Bytes.blit_string (Lw_util.Det_rng.bytes rng len) 0 t.data !pos len;
    pos := !pos + len
  done

let occupied t =
  let n = ref 0 in
  for i = 0 to size t - 1 do
    if not (is_empty t i) then incr n
  done;
  !n
