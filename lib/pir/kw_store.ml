(* Cuckoo-backed keyword store on the epoch-versioned engine. The live
   [Cuckoo.t] is the publisher's working table (displacement chains mutate
   buckets freely); every bucket it dirties is recorded via the cuckoo's
   [on_change] hook, and [publish] copies exactly that dirty set through a
   copy-on-write [Lw_store.Writer] batch and seals it as the next epoch.
   PIR servers answer from sealed snapshots only, so a keyword query never
   observes a half-finished eviction chain. *)

type t = {
  engine : Lw_store.t;
  table : Cuckoo.t;
  dirty : (int, unit) Hashtbl.t;
}

let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-kw-store-default") 0 16

let create ?(hash_key = default_hash_key) ?max_kicks ~domain_bits ~bucket_size () =
  let dirty = Hashtbl.create 64 in
  let table =
    Cuckoo.create ~hash_key ?max_kicks
      ~on_change:(fun i -> Hashtbl.replace dirty i ())
      ~domain_bits ~bucket_size ()
  in
  { engine = Lw_store.create ~hash_key ~domain_bits ~bucket_size (); table; dirty }

let engine t = t.engine
let table t = t.table
let count t = Cuckoo.count t.table
let stash_size t = Cuckoo.stash_size t.table
let load_factor t = Cuckoo.load_factor t.table
let candidates t key = Cuckoo.candidates t.table key
let bucket_size t = Lw_store.bucket_size t.engine
let pending_mutations t = Hashtbl.length t.dirty

let insert t ~key ~value = Cuckoo.insert t.table ~key ~value
let remove t key = Cuckoo.remove t.table key
let find t key = Cuckoo.find t.table key

let publish t =
  if Hashtbl.length t.dirty = 0 then Lw_store.current t.engine
  else begin
    let w = Lw_store.writer t.engine in
    let db = Cuckoo.db t.table in
    Hashtbl.iter (fun i () -> Lw_store.Writer.set w i (Bucket_db.get db i)) t.dirty;
    Hashtbl.reset t.dirty;
    Lw_store.Writer.seal w
  end

let snapshot t = publish t
