(* The keyword store now sits on the epoch-versioned engine: every
   insert/remove lands in a lazily-opened copy-on-write [Lw_store.Writer]
   batch, and [publish] seals the batch as the next epoch. Readers of the
   store's own API ([find], [insert]'s collision check) read through the
   pending batch so publishers see their own uncommitted writes; PIR
   servers never see the batch — they answer from sealed snapshots only. *)

type t = {
  engine : Lw_store.t;
  keymap : Keymap.t;
  mutable count : int;
  mutable pending : Lw_store.Writer.t option;
}

type insert_error = Collision of string | Too_large

let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-store-default") 0 16

let create ?(hash_key = default_hash_key) ~domain_bits ~bucket_size () =
  {
    engine = Lw_store.create ~hash_key ~domain_bits ~bucket_size ();
    keymap = Keymap.create ~hash_key ~domain_bits;
    count = 0;
    pending = None;
  }

let engine t = t.engine
let keymap t = t.keymap
let count t = t.count
let index_of t key = Keymap.index_of_key t.keymap key
let bucket_size t = Lw_store.bucket_size t.engine
let pending_mutations t = match t.pending with None -> 0 | Some w -> Lw_store.Writer.mutations w

let writer t =
  match t.pending with
  | Some w -> w
  | None ->
      let w = Lw_store.writer t.engine in
      t.pending <- Some w;
      w

(* Read through the uncommitted batch when there is one, else through the
   current epoch. *)
let read_bucket t i =
  match t.pending with
  | Some w -> Lw_store.Writer.get w i
  | None -> Lw_store.Snapshot.get (Lw_store.current t.engine) i

let publish t =
  match t.pending with
  | None -> Lw_store.current t.engine
  | Some w ->
      t.pending <- None;
      Lw_store.Writer.seal w

let snapshot t = publish t

let insert t ~key ~value =
  let i = index_of t key in
  let fits = Record.overhead + String.length key + String.length value <= bucket_size t in
  if not fits then Error Too_large
  else begin
    match Record.decode (read_bucket t i) with
    | Some (existing, _) when not (String.equal existing key) -> Error (Collision existing)
    | (Some _ | None) as prior ->
        Lw_store.Writer.set (writer t) i (Record.encode ~bucket_size:(bucket_size t) ~key ~value);
        if Option.is_none prior then t.count <- t.count + 1;
        Ok ()
  end

let remove t key =
  let i = index_of t key in
  match Record.decode_for_key ~key (read_bucket t i) with
  | Some _ ->
      Lw_store.Writer.clear (writer t) i;
      t.count <- t.count - 1;
      true
  | None -> false

let find t key = Record.decode_for_key ~key (read_bucket t (index_of t key))
let load_factor t = float_of_int t.count /. float_of_int (Lw_store.size t.engine)
