(** Cuckoo-backed keyword store sealed per epoch: the publisher mutates a
    live {!Cuckoo} table (two candidate buckets per key, displacement on
    insert), and {!publish} copies the dirtied buckets into the
    epoch-versioned engine ({!Lw_store}) as the next sealed epoch. A
    keyword client privately probes {e both} candidate buckets of a sealed
    snapshot, so servers never observe a half-finished eviction chain and
    both probes are guaranteed to land on the same epoch.

    Stashed records (eviction chains past [max_kicks]) live outside the
    bucket array and are therefore {e invisible to PIR clients} until a
    removal lets the stash drain back into a bucket; deployments size the
    table so the stash stays at 0 (the invariant E6/E26 report). *)

type t

val create :
  ?hash_key:string -> ?max_kicks:int -> domain_bits:int -> bucket_size:int -> unit -> t
(** Empty store at epoch 0. [hash_key] seeds the SipHash keymap the
    cuckoo's two bucket hashes derive from (salts 0 and 1) — clients
    recompute candidates from the same key via [Keymap.derive]. *)

val engine : t -> Lw_store.t
(** The epoch engine versioned ZLTP servers serve keyword queries from. *)

val table : t -> Cuckoo.t
(** The live publisher-side table (uncommitted mutations included). *)

val insert : t -> key:string -> value:string -> (unit, [ `Too_large ]) result
val remove : t -> string -> bool

val find : t -> string -> string option
(** Direct (non-private) lookup through the live table — publishers and
    tests; clients go through PIR against a sealed epoch. *)

val candidates : t -> string -> int * int
(** The two buckets a client must probe for a key (may coincide). *)

val count : t -> int
val stash_size : t -> int
val load_factor : t -> float
val bucket_size : t -> int

val publish : t -> Lw_store.Snapshot.t
(** Seal every bucket dirtied since the last publish as the next epoch
    and return its (unpinned) snapshot; if nothing is dirty, returns the
    current snapshot without minting an epoch. *)

val snapshot : t -> Lw_store.Snapshot.t
(** Alias of {!publish}. *)

val pending_mutations : t -> int
(** Distinct buckets dirtied since the last {!publish}. *)
