(** Single-server PIR (ZipPIR direction): LWE-style construction with a
    per-epoch packed hint and no persistent client-side state.

    The third deployment model beside two-server DPF and enclave+ORAM.
    One server holds the database; privacy rests on a single
    cryptographic assumption (decision-LWE) instead of non-collusion or
    hardware trust. The shape follows the SimplePIR/ZipPIR lineage:

    - The sealed {!Lw_store.Snapshot} at epoch [e] is viewed as a matrix
      [D] of [bucket_size] rows by [2^domain_bits] columns of bytes
      (column [j] = bucket [j]).
    - Per epoch the server publishes a {e hint} [H = D · A (mod 2^32)],
      where [A] is a public [cols x n] matrix expanded from a seed
      derived from the (public) universe hash key and the epoch. The
      hint depends only on the sealed snapshot — it is sealed alongside
      the epoch and is identical for every client.
    - A query for column [c] is the masked selection vector
      [qu = A·s + e + Δ·u_c (mod 2^32)] with fresh secret [s], small
      error [e], and [Δ = 2^24] (plaintext bytes, [p = 256]). Under LWE,
      [qu] is indistinguishable from uniform — the server learns nothing
      about [c].
    - The server's answer is one constant-trace matrix-vector scan
      [ans = D · qu (mod 2^32)]: every bucket is streamed in index
      order whatever the query, the property
      {!Lw_analysis.Trace_check.check_spir_scan} proves dynamically.
    - The client recovers column [c] as [round((ans - H·s) / Δ)]. The
      hint is cached per epoch and dropped on re-sync: the client keeps
      {e no} long-lived state, only the per-epoch public hint any client
      could re-fetch.

    Correctness bound: worst-case accumulated noise is
    [255 · 2^domain_bits · |e|] with ternary errors ([|e| <= 1]), which
    must stay under [Δ/2 = 2^23] — hence the [domain_bits <= 14] guard.
    Throughput is modest by design (one multiply-accumulate per database
    byte); correctness, obliviousness and epoch pinning are the bar. *)

type params = { n : int  (** LWE secret dimension *) }

val default_params : params
(** [n = 64]: a demonstration dimension sized for tests and benches. A
    production deployment of this construction needs [n >= 1024] (and a
    hardened error distribution) for a real LWE security margin — see
    SECURITY.md. *)

val max_domain_bits : int
(** 14: largest domain for which the worst-case noise bound stays under
    [Δ/2] with ternary errors. *)

val delta : int
(** The plaintext scaling factor [2^24] ([q = 2^32], [p = 256]). *)

val a_seed : hash_key:string -> epoch:int -> string
(** The public seed both sides expand the query matrix [A] from. Derived
    from the universe's (public) keyword hash key and the epoch, so a
    client needs nothing beyond the [Welcome] parameters. *)

val hint_bytes : params -> bucket_size:int -> int
(** Serialized hint size for a geometry: [48 + bucket_size * n * 4] (the
    48-byte header carries the epoch, dimensions and the public [A]
    seed, so a client needs nothing beyond the fetched hint). *)

val query_bytes : domain_bits:int -> int
(** Serialized query size: [12 + 2^domain_bits * 4]. *)

(** {2 Hints} *)

type hint
(** The per-epoch packed hint matrix [H = D·A], client-side decoded. *)

val hint_of_snapshot : params -> Lw_store.Snapshot.t -> string
(** Compute and serialize the hint for one sealed epoch. Cost: one
    multiply-accumulate per database byte per secret dimension — paid
    once per epoch, amortized over every client and query. *)

val hint_epoch : hint -> int
val hint_n : hint -> int
val hint_rows : hint -> int

val decode_hint : string -> (hint, string) result
(** Parse a serialized hint (header + [rows x n] u32 matrix). *)

(** {2 Client} *)

module Client : sig
  type secret
  (** The per-query LWE secret [s] — taint-tracked as a secret source
      (lib/analysis): it must never reach a branch, memory index or
      allocation size. It lives only for the round trip; nothing about
      it persists. *)

  val query :
    hint -> domain_bits:int -> index:int -> Lw_crypto.Drbg.t -> secret * string
  (** Build the masked selection vector for [index]. The target column
      is folded in branch-free (arithmetic equality mask, no
      secret-indexed write), so the generation trace is independent of
      [index]. Returns the ephemeral secret and the serialized query.
      Raises [Invalid_argument] if [domain_bits] exceeds
      {!max_domain_bits}. *)

  val recover : hint -> secret -> string -> (string, string) result
  (** [recover hint secret answer] subtracts [H·s] and rounds each row
      back to a byte: the queried bucket's contents ([bucket_size]
      bytes). Fails on a malformed or mis-sized answer. *)
end

(** {2 Server} *)

val answer : Lw_store.Snapshot.t -> string -> (string, string) result
(** [answer snap query] is the serialized [D · qu] response: one
    constant-trace pass over every bucket of the snapshot in index
    order (each bucket is recorded in the access trace exactly once,
    exactly as the two-server XOR scan's trace). Fails on a malformed
    query or a column-count/domain mismatch. *)

(** {2 Hint cache}

    One hint per live epoch, computed on first request and memoized —
    what a [Single]-mode server serves the per-epoch hint fetch verb
    from, and what {!Universe.publish_updates} warms so the hint is
    sealed alongside each epoch. *)

module Hint_cache : sig
  type t

  val create : ?capacity:int -> params -> t
  (** [capacity] (default 4) bounds retained epochs; older entries are
      evicted oldest-first — mirroring the store's keep window. *)

  val params : t -> params

  val get : t -> Lw_store.t -> epoch:int -> (string, Lw_store.pin_error) result
  (** The serialized hint for [epoch], computing (under the epoch's pin)
      and caching it on first request. *)

  val warm : t -> Lw_store.t -> unit
  (** Precompute the current epoch's hint (ignores pin races). *)

  val cached_epochs : t -> int list
end
