(** Single-hash keyword store: each key owns the one bucket its hash picks
    (the paper's default; on collision the publisher renames, §5.1).

    Backed by the epoch-versioned engine ({!Lw_store}): mutations
    accumulate in a copy-on-write batch and become visible to PIR
    servers only when {!publish} seals them as the next epoch. The
    store's own read API ({!find}, collision checks) reads through the
    pending batch, so a publisher always sees its own writes. *)

type t

type insert_error =
  | Collision of string (** the existing key occupying the slot *)
  | Too_large

val create : ?hash_key:string -> domain_bits:int -> bucket_size:int -> unit -> t
(** [create ~domain_bits ~bucket_size ()] makes an empty store at epoch 0.
    The SipHash key defaults to a fixed test key; deployments pass a
    secret per-universe key. *)

val engine : t -> Lw_store.t
(** The underlying epoch engine — what versioned ZLTP servers serve. *)

val keymap : t -> Keymap.t
val count : t -> int
(** Number of stored keys (including uncommitted inserts). *)

val insert : t -> key:string -> value:string -> (unit, insert_error) result
(** Rejects a key whose slot is taken by a {e different} key; re-inserting
    the same key overwrites. The write is buffered until {!publish}. *)

val remove : t -> string -> bool
(** [remove t key] clears the key's bucket if it holds that key (buffered
    until {!publish}). *)

val find : t -> string -> string option
(** Direct (non-private) lookup — publishers and tests use this; clients
    go through PIR. Sees uncommitted writes. *)

val index_of : t -> string -> int

val publish : t -> Lw_store.Snapshot.t
(** Seal the pending mutation batch as the next epoch and return the
    resulting (unpinned) snapshot; if nothing is pending, returns the
    current snapshot without minting an epoch. *)

val snapshot : t -> Lw_store.Snapshot.t
(** Alias of {!publish}: a snapshot reflecting everything inserted so
    far. Mints a new epoch only if mutations are pending. *)

val pending_mutations : t -> int
(** Mutations buffered since the last {!publish}. *)

val load_factor : t -> float
