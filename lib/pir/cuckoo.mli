(** Cuckoo-hashed keyword store: two candidate buckets per key with
    displacement on insert — the paper's suggested alternative to renaming
    ("using cuckoo hashing and probing several locations per request",
    §5.1). A client privately probes both candidate locations, so a page
    costs two private-GETs here versus one for {!Store}, in exchange for
    near-zero publish failures at much higher load factors.

    Records whose eviction chain exceeds [max_kicks] land in a small
    stash, so no record is ever dropped; a healthy table keeps the stash
    at (or very near) zero. *)

type t

val create :
  ?hash_key:string ->
  ?max_kicks:int ->
  ?on_change:(int -> unit) ->
  domain_bits:int ->
  bucket_size:int ->
  unit ->
  t
(** [max_kicks] bounds the eviction chain (default 512). [on_change i]
    fires after every mutation of bucket [i] (set or clear, including
    displacement writes and stash re-placement) — how {!Kw_store} tracks
    the dirty set it must copy into the next sealed epoch. *)

val db : t -> Bucket_db.t
val count : t -> int

val candidates : t -> string -> int * int
(** The two buckets a key may live in (distinct hash functions; may
    coincide by chance). *)

val insert : t -> key:string -> value:string -> (unit, [ `Too_large ]) result
val find : t -> string -> string option
val remove : t -> string -> bool
(** Removing a bucket-resident key also opportunistically re-places any
    stashed record whose candidate bucket is now empty, so the stash
    drains back toward 0 as capacity frees up instead of ratcheting. *)

val load_factor : t -> float

val stash_size : t -> int
(** Records displaced past [max_kicks]. A deployment sizes the table so
    this stays ~0; the tests and the E6 bench report it. *)

val probes_per_query : int
(** 2: privacy requires clients to always probe both candidates. *)
