(* A server answers over one immutable view of the database: either a
   flat [Bucket_db] (tests, microbenchmarks, single-epoch worlds) or a
   pinned [Lw_store] snapshot (the production path, where the database
   keeps moving underneath and each answer must come from exactly the
   epoch the client queried). The scan kernels are identical either way
   — the snapshot exposes the same masked/packed/blocked XOR entry
   points as the flat database, with the same per-bucket tracing. *)

type source = Flat of Bucket_db.t | Snapshot of Lw_store.Snapshot.t
type t = { src : source }

let create db = { src = Flat db }
let of_snapshot snap = { src = Snapshot snap }

let db t =
  match t.src with
  | Flat db -> db
  | Snapshot _ -> invalid_arg "Server.db: snapshot-backed server has no flat database"

let epoch t =
  match t.src with
  | Flat _ -> None
  | Snapshot s -> Some (Lw_store.Snapshot.epoch s)

let domain_bits t =
  match t.src with
  | Flat db -> Bucket_db.domain_bits db
  | Snapshot s -> Lw_store.Snapshot.domain_bits s

let size t =
  match t.src with
  | Flat db -> Bucket_db.size db
  | Snapshot s -> Lw_store.Snapshot.size s

let bucket_size t =
  match t.src with
  | Flat db -> Bucket_db.bucket_size db
  | Snapshot s -> Lw_store.Snapshot.bucket_size s

let total_bytes t =
  match t.src with
  | Flat db -> Bucket_db.total_bytes db
  | Snapshot s -> Lw_store.Snapshot.total_bytes s

let xor_bucket_into_masked t i ~mask ~dst =
  match t.src with
  | Flat db -> Bucket_db.xor_bucket_into_masked db i ~mask ~dst
  | Snapshot s -> Lw_store.Snapshot.xor_bucket_into_masked s i ~mask ~dst

let xor_bucket_into_packed t i ~pack ~dsts =
  match t.src with
  | Flat db -> Bucket_db.xor_bucket_into_packed db i ~pack ~dsts
  | Snapshot s -> Lw_store.Snapshot.xor_bucket_into_packed s i ~pack ~dsts

let xor_block_into_masked t ~base ~count ~bits ~bits_pos ~dst =
  match t.src with
  | Flat db -> Bucket_db.xor_block_into_masked db ~base ~count ~bits ~bits_pos ~dst
  | Snapshot s -> Lw_store.Snapshot.xor_block_into_masked s ~base ~count ~bits ~bits_pos ~dst

let check_domain t k =
  if Lw_dpf.Dpf.domain_bits k <> domain_bits t then
    invalid_arg "Server: key domain does not match database"

(* Reference two-pass path: materialise one selection byte per bucket,
   then walk the database a second time. Kept (unchanged from the seed,
   checked-word kernel included) as the baseline the fused and batched
   kernels are benchmarked (E19) and property-tested against, and so E1
   can time the DPF and scan phases separately. *)

let eval_bits t k =
  check_domain t k;
  let bits = Bytes.create (size t) in
  Lw_dpf.Dpf.eval_all_bits k (fun i b -> Bytes.unsafe_set bits i (Char.unsafe_chr b));
  bits

(* Every bucket is visited with identical work: the selection bit becomes
   a byte mask (0x00/0xff) arithmetically, never a branch, so the scan's
   memory trace is the full [0..size) walk no matter which key share the
   query carries. Lint rule [secret-branch] and the dynamic checker in
   [Lw_analysis.Trace_check] both watch this property. *)
let mask_of_bit b = (0 - (b land 1)) land 0xff

let scan t bits =
  let acc = Bytes.make (bucket_size t) '\x00' in
  for i = 0 to size t - 1 do
    let mask = mask_of_bit (Char.code (Bytes.unsafe_get bits i)) in
    xor_bucket_into_masked t i ~mask ~dst:acc
  done;
  Bytes.unsafe_to_string acc

(* ------------------------------------------------------------------ *)
(* The fused, blocked kernel — the only production scan path           *)
(* ------------------------------------------------------------------ *)

(* Cache budget for one streamed block of database: big enough to
   amortise per-block overheads, small enough that a block and the
   accumulators it feeds stay resident while a batch's packs revisit it.
   Matches [Lw_store]'s CoW block budget, so a fused-scan block never
   spans more than two CoW blocks of a snapshot. *)
let block_bytes = 1 lsl 18

let block_bits_for t =
  let bucket = bucket_size t in
  let d = domain_bits t in
  let rec fit b = if b >= d || (1 lsl (b + 1)) * bucket > block_bytes then b else fit (b + 1) in
  fit 0

(* Registry counters: one increment + one add per answer, so the fused
   scan stays within the E21 overhead budget (<2%). *)
let m_answers = Lw_obs.Metrics.counter "pir.server.answers"
let m_batches = Lw_obs.Metrics.counter "pir.server.batch_answers"
let m_scan_bytes = Lw_obs.Metrics.counter "pir.server.scan_bytes"

(* Eval↔scan fusion: each block of DPF leaf bits is XOR-consumed against
   the matching database block the moment the traversal produces it — no
   full-domain bits buffer, one pass over the data, per-block bounds
   checks instead of per-bucket ones. *)
let answer t k =
  check_domain t k;
  let acc = Bytes.make (bucket_size t) '\x00' in
  Lw_dpf.Dpf.eval_bits_blocked k ~block_bits:(block_bits_for t) (fun base bits count ->
      xor_block_into_masked t ~base ~count ~bits ~bits_pos:0 ~dst:acc);
  Lw_obs.Metrics.incr m_answers;
  Lw_obs.Metrics.add m_scan_bytes (total_bytes t);
  Bytes.unsafe_to_string acc

(* Bit-packed batching: up to 8 queries' selection bits share one byte
   per bucket, and the scan streams each database block once per pack,
   feeding all of the pack's accumulators from the same resident bytes.
   A batch therefore costs one DB traversal (plus register-masked XOR
   work per lane) instead of [n] re-entries of the scalar scan. *)
let answer_batch t keys =
  Array.iter (check_domain t) keys;
  let n = Array.length keys in
  if n = 0 then [||]
  else if n = 1 then [| answer t keys.(0) |]
  else begin
    let size = size t in
    let bucket = bucket_size t in
    let n_packs = (n + 7) / 8 in
    (* pack p's byte for bucket i carries query [8p+q]'s bit at bit q *)
    let packed = Array.init n_packs (fun _ -> Bytes.make size '\x00') in
    Array.iteri
      (fun q k ->
        let p = packed.(q lsr 3) and bit = q land 7 in
        Lw_dpf.Dpf.eval_all_bits k (fun i b ->
            let cur = Char.code (Bytes.unsafe_get p i) in
            Bytes.unsafe_set p i (Char.unsafe_chr (cur lor ((b land 1) lsl bit)))))
      keys;
    let accs = Array.init n (fun _ -> Bytes.make bucket '\x00') in
    let lanes = Array.init n_packs (fun p -> Array.sub accs (8 * p) (min 8 (n - (8 * p)))) in
    let block = max 1 (block_bytes / bucket) in
    let base = ref 0 in
    while !base < size do
      let stop = min size (!base + block) in
      for p = 0 to n_packs - 1 do
        let bits = packed.(p) and dsts = lanes.(p) in
        for i = !base to stop - 1 do
          xor_bucket_into_packed t i ~pack:(Char.code (Bytes.unsafe_get bits i)) ~dsts
        done
      done;
      base := stop
    done;
    Lw_obs.Metrics.incr m_batches;
    Lw_obs.Metrics.add m_answers n;
    (* the batch streams the database once per pack, not once per query *)
    Lw_obs.Metrics.add m_scan_bytes (n_packs * total_bytes t);
    Array.map Bytes.unsafe_to_string accs
  end

let answer_serialized t key_bytes =
  match Lw_dpf.Dpf.deserialize key_bytes with
  | Error e -> Error (Printf.sprintf "bad DPF key: %s" e)
  | Ok k ->
      if Lw_dpf.Dpf.domain_bits k <> domain_bits t then Error "domain mismatch"
      else Ok (answer t k)
