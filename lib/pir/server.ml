type t = { db : Bucket_db.t }

let create db = { db }
let db t = t.db

let check_domain t k =
  if Lw_dpf.Dpf.domain_bits k <> Bucket_db.domain_bits t.db then
    invalid_arg "Server: key domain does not match database"

let eval_bits t k =
  check_domain t k;
  let bits = Bytes.create (Bucket_db.size t.db) in
  Lw_dpf.Dpf.eval_all_bits k (fun i b -> Bytes.unsafe_set bits i (Char.unsafe_chr b));
  bits

(* Every bucket is visited with identical work: the selection bit becomes
   a byte mask (0x00/0xff) arithmetically, never a branch, so the scan's
   memory trace is the full [0..size) walk no matter which key share the
   query carries. Lint rule [secret-branch] and the dynamic checker in
   [Lw_analysis.Trace_check] both watch this property. *)
let mask_of_bit b = (0 - (b land 1)) land 0xff

let scan t bits =
  let acc = Bytes.make (Bucket_db.bucket_size t.db) '\x00' in
  for i = 0 to Bucket_db.size t.db - 1 do
    let mask = mask_of_bit (Char.code (Bytes.unsafe_get bits i)) in
    Bucket_db.xor_bucket_into_masked t.db i ~mask ~dst:acc
  done;
  Bytes.unsafe_to_string acc

let answer t k = scan t (eval_bits t k)

let answer_batch t keys =
  Array.iter (check_domain t) keys;
  let n = Array.length keys in
  let all_bits = Array.map (eval_bits t) keys in
  let accs = Array.init n (fun _ -> Bytes.make (Bucket_db.bucket_size t.db) '\x00') in
  (* one pass over the data: every accumulator is fed from the same
     streamed bucket, so the scan cost is paid once per batch; masked like
     [scan] so per-query work is independent of the share bits *)
  for i = 0 to Bucket_db.size t.db - 1 do
    for q = 0 to n - 1 do
      let mask = mask_of_bit (Char.code (Bytes.unsafe_get all_bits.(q) i)) in
      Bucket_db.xor_bucket_into_masked t.db i ~mask ~dst:accs.(q)
    done
  done;
  Array.map Bytes.unsafe_to_string accs

let answer_serialized t key_bytes =
  match Lw_dpf.Dpf.deserialize key_bytes with
  | Error e -> Error (Printf.sprintf "bad DPF key: %s" e)
  | Ok k ->
      if Lw_dpf.Dpf.domain_bits k <> Bucket_db.domain_bits t.db then Error "domain mismatch"
      else Ok (answer t k)
