(* A server answers over one immutable view of the database: either a
   flat [Bucket_db] (tests, microbenchmarks, single-epoch worlds) or a
   pinned [Lw_store] snapshot (the production path, where the database
   keeps moving underneath and each answer must come from exactly the
   epoch the client queried). The scan kernels are identical either way
   — the snapshot exposes the same masked/packed/blocked XOR entry
   points as the flat database, with the same per-bucket tracing. *)

type source = Flat of Bucket_db.t | Snapshot of Lw_store.Snapshot.t
type t = { src : source }

let create db = { src = Flat db }
let of_snapshot snap = { src = Snapshot snap }

let db t =
  match t.src with
  | Flat db -> db
  | Snapshot _ -> invalid_arg "Server.db: snapshot-backed server has no flat database"

let epoch t =
  match t.src with
  | Flat _ -> None
  | Snapshot s -> Some (Lw_store.Snapshot.epoch s)

let domain_bits t =
  match t.src with
  | Flat db -> Bucket_db.domain_bits db
  | Snapshot s -> Lw_store.Snapshot.domain_bits s

let size t =
  match t.src with
  | Flat db -> Bucket_db.size db
  | Snapshot s -> Lw_store.Snapshot.size s

let bucket_size t =
  match t.src with
  | Flat db -> Bucket_db.bucket_size db
  | Snapshot s -> Lw_store.Snapshot.bucket_size s

let total_bytes t =
  match t.src with
  | Flat db -> Bucket_db.total_bytes db
  | Snapshot s -> Lw_store.Snapshot.total_bytes s

let xor_bucket_into_masked t i ~mask ~dst =
  match t.src with
  | Flat db -> Bucket_db.xor_bucket_into_masked db i ~mask ~dst
  | Snapshot s -> Lw_store.Snapshot.xor_bucket_into_masked s i ~mask ~dst

let xor_bucket_into_packed t i ~pack ~dsts =
  match t.src with
  | Flat db -> Bucket_db.xor_bucket_into_packed db i ~pack ~dsts
  | Snapshot s -> Lw_store.Snapshot.xor_bucket_into_packed s i ~pack ~dsts

let xor_block_into_masked t ~base ~count ~bits ~bits_pos ~dst =
  match t.src with
  | Flat db -> Bucket_db.xor_block_into_masked db ~base ~count ~bits ~bits_pos ~dst
  | Snapshot s -> Lw_store.Snapshot.xor_block_into_masked s ~base ~count ~bits ~bits_pos ~dst

let xor_block_into_masked2 t ~base ~count ~bits0 ~bits0_pos ~bits1 ~bits1_pos ~dst0 ~dst1 =
  match t.src with
  | Flat db ->
      Bucket_db.xor_block_into_masked2 db ~base ~count ~bits0 ~bits0_pos ~bits1 ~bits1_pos ~dst0
        ~dst1
  | Snapshot s ->
      Lw_store.Snapshot.xor_block_into_masked2 s ~base ~count ~bits0 ~bits0_pos ~bits1 ~bits1_pos
        ~dst0 ~dst1

let check_domain t k =
  if Lw_dpf.Dpf.domain_bits k <> domain_bits t then
    invalid_arg "Server: key domain does not match database"

(* Reference two-pass path: materialise one selection byte per bucket,
   then walk the database a second time. Kept (unchanged from the seed,
   checked-word kernel included) as the baseline the fused and batched
   kernels are benchmarked (E19) and property-tested against, and so E1
   can time the DPF and scan phases separately. *)

let eval_bits t k =
  check_domain t k;
  let bits = Bytes.create (size t) in
  Lw_dpf.Dpf.eval_all_bits k (fun i b -> Bytes.unsafe_set bits i (Char.unsafe_chr b));
  bits

(* Every bucket is visited with identical work: the selection bit becomes
   a byte mask (0x00/0xff) arithmetically, never a branch, so the scan's
   memory trace is the full [0..size) walk no matter which key share the
   query carries. Lint rule [secret-branch] and the dynamic checker in
   [Lw_analysis.Trace_check] both watch this property. *)
let mask_of_bit b = (0 - (b land 1)) land 0xff

let scan t bits =
  let acc = Bytes.make (bucket_size t) '\x00' in
  for i = 0 to size t - 1 do
    let mask = mask_of_bit (Char.code (Bytes.unsafe_get bits i)) in
    xor_bucket_into_masked t i ~mask ~dst:acc
  done;
  Bytes.unsafe_to_string acc

(* ------------------------------------------------------------------ *)
(* The fused, blocked kernel — the only production scan path           *)
(* ------------------------------------------------------------------ *)

(* Cache budget for one streamed block of database: big enough to
   amortise per-block overheads, small enough that a block and the
   accumulators it feeds stay resident while a batch's packs revisit it.
   Matches [Lw_store]'s CoW block budget, so a fused-scan block never
   spans more than two CoW blocks of a snapshot. *)
let block_bytes = 1 lsl 18

let block_bits_for t =
  let bucket = bucket_size t in
  let d = domain_bits t in
  let rec fit b = if b >= d || (1 lsl (b + 1)) * bucket > block_bytes then b else fit (b + 1) in
  fit 0

(* Registry counters: one increment + one add per answer, so the fused
   scan stays within the E21 overhead budget (<2%). *)
let m_answers = Lw_obs.Metrics.counter "pir.server.answers"
let m_batches = Lw_obs.Metrics.counter "pir.server.batch_answers"
let m_scan_bytes = Lw_obs.Metrics.counter "pir.server.scan_bytes"

(* Eval↔scan fusion: each block of DPF leaf bits is XOR-consumed against
   the matching database block the moment the traversal produces it — no
   full-domain bits buffer, one pass over the data, per-block bounds
   checks instead of per-bucket ones. *)
let answer t k =
  check_domain t k;
  let acc = Bytes.make (bucket_size t) '\x00' in
  Lw_dpf.Dpf.eval_bits_blocked k ~block_bits:(block_bits_for t) (fun base bits count ->
      xor_block_into_masked t ~base ~count ~bits ~bits_pos:0 ~dst:acc);
  Lw_obs.Metrics.incr m_answers;
  Lw_obs.Metrics.add m_scan_bytes (total_bytes t);
  Bytes.unsafe_to_string acc

(* Width-2 fusion — the keyword verb's two-probe shape and every batch of
   exactly two queries: key 1's bits are materialised blockwise into a
   full-domain buffer (blit, no per-leaf closure), then key 0's blocked
   traversal drives ONE pass over the data feeding both accumulators
   ([xor_block_into_masked2] loads each source word once). The pair costs
   two DPF evaluations plus a single memory traversal, instead of the
   generic packed kernel's per-bucket, per-lane dispatch. *)
let answer_pair t k0 k1 =
  check_domain t k0;
  check_domain t k1;
  let block_bits = block_bits_for t in
  let bits1 = Bytes.create (size t) in
  Lw_dpf.Dpf.eval_bits_blocked k1 ~block_bits (fun base buf count ->
      Bytes.blit buf 0 bits1 base count);
  let acc0 = Bytes.make (bucket_size t) '\x00' in
  let acc1 = Bytes.make (bucket_size t) '\x00' in
  Lw_dpf.Dpf.eval_bits_blocked k0 ~block_bits (fun base bits count ->
      xor_block_into_masked2 t ~base ~count ~bits0:bits ~bits0_pos:0 ~bits1 ~bits1_pos:base
        ~dst0:acc0 ~dst1:acc1);
  Lw_obs.Metrics.incr m_batches;
  Lw_obs.Metrics.add m_answers 2;
  Lw_obs.Metrics.add m_scan_bytes (total_bytes t);
  (Bytes.unsafe_to_string acc0, Bytes.unsafe_to_string acc1)

(* Bit-packed batching: up to 8 queries' selection bits share one byte
   per bucket, and the scan streams each database block once per pack,
   feeding all of the pack's accumulators from the same resident bytes.
   A batch therefore costs one DB traversal (plus register-masked XOR
   work per lane) instead of [n] re-entries of the scalar scan. *)
let answer_batch t keys =
  Array.iter (check_domain t) keys;
  let n = Array.length keys in
  if n = 0 then [||]
  else if n = 1 then [| answer t keys.(0) |]
  else if n = 2 then begin
    let a0, a1 = answer_pair t keys.(0) keys.(1) in
    [| a0; a1 |]
  end
  else begin
    let size = size t in
    let bucket = bucket_size t in
    let n_packs = (n + 7) / 8 in
    (* pack p's byte for bucket i carries query [8p+q]'s bit at bit q *)
    let packed = Array.init n_packs (fun _ -> Bytes.make size '\x00') in
    Array.iteri
      (fun q k ->
        let p = packed.(q lsr 3) and bit = q land 7 in
        Lw_dpf.Dpf.eval_all_bits k (fun i b ->
            let cur = Char.code (Bytes.unsafe_get p i) in
            Bytes.unsafe_set p i (Char.unsafe_chr (cur lor ((b land 1) lsl bit)))))
      keys;
    let accs = Array.init n (fun _ -> Bytes.make bucket '\x00') in
    let lanes = Array.init n_packs (fun p -> Array.sub accs (8 * p) (min 8 (n - (8 * p)))) in
    let block = max 1 (block_bytes / bucket) in
    let base = ref 0 in
    while !base < size do
      let stop = min size (!base + block) in
      for p = 0 to n_packs - 1 do
        let bits = packed.(p) and dsts = lanes.(p) in
        for i = !base to stop - 1 do
          xor_bucket_into_packed t i ~pack:(Char.code (Bytes.unsafe_get bits i)) ~dsts
        done
      done;
      base := stop
    done;
    Lw_obs.Metrics.incr m_batches;
    Lw_obs.Metrics.add m_answers n;
    (* the batch streams the database once per pack, not once per query *)
    Lw_obs.Metrics.add m_scan_bytes (n_packs * total_bytes t);
    Array.map Bytes.unsafe_to_string accs
  end

(* ------------------------------------------------------------------ *)
(* Domain-partitioned parallel scan                                    *)
(* ------------------------------------------------------------------ *)

(* The bucket domain splits into 2^levels aligned sub-ranges; each worker
   rebases the client key at its sub-range's internal tree node
   ([Dpf.make_subkey] via [Distributed.split]) and runs the *same* fused
   kernel over the remaining bits, so no worker pays the full-domain DPF
   evaluation and the per-partition memory trace is the partition's full
   contiguous walk — the leakage profile of the serial scan, cut into
   aligned pieces (see SECURITY.md). *)

(* Below this a parallel answer is all spawn/join overhead: the fused
   serial kernel finishes a 1 MiB scan in well under a millisecond. *)
let parallel_cutoff_bytes = 1 lsl 20

let m_parallel = Lw_obs.Metrics.counter "pir.server.parallel_answers"

(* Smallest power-of-two partition count >= [requested], clamped so the
   split stays a strict prefix of the key's tree ([levels < domain_bits]). *)
let partition_levels t requested =
  let d = domain_bits t in
  let rec up l = if 1 lsl l >= requested then l else up (l + 1) in
  min (d - 1) (max 1 (up 0))

(* XOR partition [prefix]'s contribution into [acc]. [sub] is the key
   rebased at the partition's root; its domain is the bottom [rem] bits. *)
let scan_partition t ~sub ~prefix ~rem ~acc =
  let base = prefix lsl rem in
  Lw_dpf.Dpf.eval_bits_blocked sub
    ~block_bits:(min rem (block_bits_for t))
    (fun b bits count -> xor_block_into_masked t ~base:(base + b) ~count ~bits ~bits_pos:0 ~dst:acc)

(* Serial schedule over the exact per-partition kernels the parallel path
   runs: the deterministic twin [Trace_check.check_partitioned_scan]
   drives, and the per-partition timer the bench uses to report the
   critical path (max partition time) a multi-core machine would pay. *)
let answer_partitioned_timed ?(partitions = 2) t k =
  check_domain t k;
  let levels = partition_levels t partitions in
  let subs = Lw_dpf.Distributed.split k ~shard_bits:levels in
  let rem = domain_bits t - levels in
  let acc = Bytes.make (bucket_size t) '\x00' in
  let clock = Lw_obs.Span.clock () in
  let times =
    Array.mapi
      (fun prefix sub ->
        let t0 = Lw_obs.Clock.now clock in
        scan_partition t ~sub ~prefix ~rem ~acc;
        Lw_obs.Clock.now clock -. t0)
      subs
  in
  Lw_obs.Metrics.incr m_answers;
  Lw_obs.Metrics.add m_scan_bytes (total_bytes t);
  (Bytes.unsafe_to_string acc, times)

let answer_partitioned ?partitions t k = fst (answer_partitioned_timed ?partitions t k)

let join_all_reraise doms =
  (* Join every domain before acting on any failure, so a raising worker
     can neither leak the other domains nor let a partially-reduced
     accumulator escape. *)
  let first_failure =
    List.fold_left
      (fun acc d ->
        match Domain.join d with
        | () -> acc
        | exception e -> ( match acc with None -> Some e | Some _ -> acc))
      None doms
  in
  match first_failure with Some e -> raise e | None -> ()

let worker_count domains =
  match domains with Some n -> max 1 n | None -> Domain.recommended_domain_count ()

let answer_domains ?(cutoff_bytes = parallel_cutoff_bytes) ?domains t k =
  check_domain t k;
  let workers = worker_count domains in
  if workers <= 1 || domain_bits t < 2 || total_bytes t < cutoff_bytes then answer t k
  else begin
    let levels = partition_levels t workers in
    let subs = Lw_dpf.Distributed.split k ~shard_bits:levels in
    let parts = Array.length subs in
    let rem = domain_bits t - levels in
    let nw = min workers parts in
    let accs = Array.init nw (fun _ -> Bytes.make (bucket_size t) '\x00') in
    let next = Atomic.make 0 in
    (* Workers claim partitions through [Atomic.fetch_and_add] and worker
       [w] only ever writes its own [accs.(w)]; the joins below give this
       domain the happens-before edge back before the XOR reduce. *)
    (* lw-lint: allow race lines=11 *)
    let worker w () =
      let acc = accs.(w) in
      let rec go () =
        let prefix = Atomic.fetch_and_add next 1 in
        if prefix < parts then begin
          scan_partition t ~sub:subs.(prefix) ~prefix ~rem ~acc;
          go ()
        end
      in
      go ()
    in
    join_all_reraise (List.init nw (fun w -> Domain.spawn (worker w)));
    let out = accs.(0) in
    for w = 1 to nw - 1 do
      Lw_util.Xorbuf.xor_into ~src:accs.(w) ~src_pos:0 ~dst:out ~dst_pos:0 ~len:(bucket_size t)
    done;
    Lw_obs.Metrics.incr m_answers;
    Lw_obs.Metrics.incr m_parallel;
    Lw_obs.Metrics.add m_scan_bytes (total_bytes t);
    Bytes.unsafe_to_string out
  end

(* One partition of the bit-packed batch kernel: [subs] are the batch's
   keys rebased at this partition, [lane_accs] groups the caller's
   accumulators into packs of <= 8, [bits] is a reusable partition-sized
   scratch of packed selection bytes. *)
let scan_partition_packed t ~subs ~lane_accs ~prefix ~rem ~bits =
  let part = 1 lsl rem in
  let base = prefix lsl rem in
  let n = Array.length subs in
  let n_packs = (n + 7) / 8 in
  for p = 0 to n_packs - 1 do
    Bytes.fill bits 0 part '\x00';
    let lane_lo = 8 * p in
    let lanes = min 8 (n - lane_lo) in
    for q = 0 to lanes - 1 do
      Lw_dpf.Dpf.eval_all_bits subs.(lane_lo + q) (fun j b ->
          let cur = Char.code (Bytes.unsafe_get bits j) in
          Bytes.unsafe_set bits j (Char.unsafe_chr (cur lor ((b land 1) lsl q))))
    done;
    let dsts = lane_accs.(p) in
    for j = 0 to part - 1 do
      xor_bucket_into_packed t (base + j) ~pack:(Char.code (Bytes.unsafe_get bits j)) ~dsts
    done
  done

let answer_batch_domains ?(cutoff_bytes = parallel_cutoff_bytes) ?domains t keys =
  Array.iter (check_domain t) keys;
  let n = Array.length keys in
  let workers = worker_count domains in
  if n = 0 then [||]
  else if workers <= 1 || domain_bits t < 2 || total_bytes t < cutoff_bytes then
    answer_batch t keys
  else if n = 1 then [| answer_domains ~cutoff_bytes ?domains t keys.(0) |]
  else begin
    let levels = partition_levels t workers in
    let rem = domain_bits t - levels in
    let parts = 1 lsl levels in
    let subs = Array.map (fun k -> Lw_dpf.Distributed.split k ~shard_bits:levels) keys in
    let by_part = Array.init parts (fun p -> Array.map (fun s -> s.(p)) subs) in
    let nw = min workers parts in
    let bucket = bucket_size t in
    let n_packs = (n + 7) / 8 in
    let accs = Array.init nw (fun _ -> Array.init n (fun _ -> Bytes.make bucket '\x00')) in
    let lane_groups =
      Array.init nw (fun w ->
          Array.init n_packs (fun p -> Array.sub accs.(w) (8 * p) (min 8 (n - (8 * p)))))
    in
    let next = Atomic.make 0 in
    (* Same discipline as [answer_domains]: claimed partitions, per-worker
       accumulators, join-then-reduce. *)
    (* lw-lint: allow race lines=12 *)
    let worker w () =
      let bits = Bytes.create (1 lsl rem) in
      let lane_accs = lane_groups.(w) in
      let rec go () =
        let prefix = Atomic.fetch_and_add next 1 in
        if prefix < parts then begin
          scan_partition_packed t ~subs:by_part.(prefix) ~lane_accs ~prefix ~rem ~bits;
          go ()
        end
      in
      go ()
    in
    join_all_reraise (List.init nw (fun w -> Domain.spawn (worker w)));
    let out = accs.(0) in
    for w = 1 to nw - 1 do
      for q = 0 to n - 1 do
        Lw_util.Xorbuf.xor_into ~src:accs.(w).(q) ~src_pos:0 ~dst:out.(q) ~dst_pos:0 ~len:bucket
      done
    done;
    Lw_obs.Metrics.incr m_batches;
    Lw_obs.Metrics.incr m_parallel;
    Lw_obs.Metrics.add m_answers n;
    Lw_obs.Metrics.add m_scan_bytes (n_packs * total_bytes t);
    Array.map Bytes.unsafe_to_string out
  end

let answer_serialized t key_bytes =
  match Lw_dpf.Dpf.deserialize key_bytes with
  | Error e -> Error (Printf.sprintf "bad DPF key: %s" e)
  | Ok k ->
      if Lw_dpf.Dpf.domain_bits k <> domain_bits t then Error "domain mismatch"
      else Ok (answer t k)
