type t = {
  db : Bucket_db.t;
  h0 : Keymap.t;
  h1 : Keymap.t;
  max_kicks : int;
  stash : (string, string) Hashtbl.t;
  mutable count : int;
}

let probes_per_query = 2

let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-cuckoo-default") 0 16

let create ?(hash_key = default_hash_key) ?(max_kicks = 512) ~domain_bits ~bucket_size () =
  let base = Keymap.create ~hash_key ~domain_bits in
  {
    db = Bucket_db.create ~domain_bits ~bucket_size;
    h0 = Keymap.derive base ~salt:0;
    h1 = Keymap.derive base ~salt:1;
    max_kicks;
    stash = Hashtbl.create 8;
    count = 0;
  }

let db t = t.db
let count t = t.count
let stash_size t = Hashtbl.length t.stash

let candidates t key = (Keymap.index_of_key t.h0 key, Keymap.index_of_key t.h1 key)

let slot_of t key =
  let i0, i1 = candidates t key in
  let check i = Record.decode_for_key ~key (Bucket_db.get t.db i) |> Option.map (fun v -> (i, v)) in
  match check i0 with Some r -> Some r | None -> check i1

let find t key =
  match slot_of t key with
  | Some (_, v) -> Some v
  | None -> Hashtbl.find_opt t.stash key

let remove t key =
  match slot_of t key with
  | Some (i, _) ->
      Bucket_db.clear t.db i;
      t.count <- t.count - 1;
      true
  | None ->
      if Hashtbl.mem t.stash key then begin
        Hashtbl.remove t.stash key;
        t.count <- t.count - 1;
        true
      end
      else false

let other_candidate t key current =
  let i0, i1 = candidates t key in
  if current = i0 then i1 else i0

let insert t ~key ~value =
  let bucket_size = Bucket_db.bucket_size t.db in
  if Record.overhead + String.length key + String.length value > bucket_size then Error `Too_large
  else begin
    let fresh = Option.is_none (find t key) in
    (match slot_of t key with
    | Some (i, _) -> Bucket_db.set t.db i (Record.encode ~bucket_size ~key ~value)
    | None when Hashtbl.mem t.stash key -> Hashtbl.replace t.stash key value
    | None ->
        (* displacement loop: place the pending record at [target]; a full
           slot evicts its occupant to that occupant's alternate bucket.
           After max_kicks the pending record goes to the stash, so nothing
           is ever dropped. *)
        let rec place key value target kicks =
          if kicks > t.max_kicks then Hashtbl.replace t.stash key value
          else begin
            match Record.decode (Bucket_db.get t.db target) with
            | None -> Bucket_db.set t.db target (Record.encode ~bucket_size ~key ~value)
            | Some (victim_key, victim_value) ->
                Bucket_db.set t.db target (Record.encode ~bucket_size ~key ~value);
                place victim_key victim_value (other_candidate t victim_key target) (kicks + 1)
          end
        in
        let i0, i1 = candidates t key in
        let start =
          if Option.is_none (Record.decode (Bucket_db.get t.db i0)) then i0 else i1
        in
        place key value start 0);
    if fresh then t.count <- t.count + 1;
    Ok ()
  end

let load_factor t = float_of_int t.count /. float_of_int (Bucket_db.size t.db)
