type t = {
  db : Bucket_db.t;
  h0 : Keymap.t;
  h1 : Keymap.t;
  max_kicks : int;
  stash : (string, string) Hashtbl.t;
  on_change : int -> unit;
  mutable count : int;
}

let probes_per_query = 2

let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-cuckoo-default") 0 16

let create ?(hash_key = default_hash_key) ?(max_kicks = 512) ?(on_change = fun _ -> ())
    ~domain_bits ~bucket_size () =
  let base = Keymap.create ~hash_key ~domain_bits in
  {
    db = Bucket_db.create ~domain_bits ~bucket_size;
    h0 = Keymap.derive base ~salt:0;
    h1 = Keymap.derive base ~salt:1;
    max_kicks;
    stash = Hashtbl.create 8;
    on_change;
    count = 0;
  }

let db t = t.db
let count t = t.count
let stash_size t = Hashtbl.length t.stash

let candidates t key = (Keymap.index_of_key t.h0 key, Keymap.index_of_key t.h1 key)

(* All bucket mutations funnel through these two so [on_change] sees every
   dirtied bucket exactly when it changes. *)
let set_bucket t i bytes =
  Bucket_db.set t.db i bytes;
  t.on_change i

let clear_bucket t i =
  Bucket_db.clear t.db i;
  t.on_change i

let slot_of t key =
  let i0, i1 = candidates t key in
  let check i = Record.decode_for_key ~key (Bucket_db.get t.db i) |> Option.map (fun v -> (i, v)) in
  match check i0 with Some r -> Some r | None -> if i1 = i0 then None else check i1

let find t key =
  match slot_of t key with
  | Some (_, v) -> Some v
  | None -> Hashtbl.find_opt t.stash key

let bucket_empty t i = Option.is_none (Record.decode (Bucket_db.get t.db i))

(* Opportunistically re-place stashed records whose candidate bucket is
   now empty — called after a removal frees a bucket, so the stash drains
   back to ~0 instead of ratcheting up for the table's lifetime. *)
let drain_stash t =
  if Hashtbl.length t.stash > 0 then begin
    let bucket_size = Bucket_db.bucket_size t.db in
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stash [] in
    List.iter
      (fun (key, value) ->
        let i0, i1 = candidates t key in
        let target = if bucket_empty t i0 then Some i0 else if bucket_empty t i1 then Some i1 else None in
        match target with
        | Some i ->
            set_bucket t i (Record.encode ~bucket_size ~key ~value);
            Hashtbl.remove t.stash key
        | None -> ())
      entries
  end

let remove t key =
  match slot_of t key with
  | Some (i, _) ->
      clear_bucket t i;
      t.count <- t.count - 1;
      drain_stash t;
      true
  | None ->
      if Hashtbl.mem t.stash key then begin
        Hashtbl.remove t.stash key;
        t.count <- t.count - 1;
        true
      end
      else false

let other_candidate t key current =
  let i0, i1 = candidates t key in
  if current = i0 then i1 else i0

let insert t ~key ~value =
  let bucket_size = Bucket_db.bucket_size t.db in
  if Record.overhead + String.length key + String.length value > bucket_size then Error `Too_large
  else begin
    (* One probe of the two candidate buckets yields both the occupied
       slot (if any) and freshness — the old code paid [find] and then
       [slot_of], hashing and decoding every key twice. *)
    let i0, i1 = candidates t key in
    let held i = Option.is_some (Record.decode_for_key ~key (Bucket_db.get t.db i)) in
    let slot = if held i0 then Some i0 else if i1 <> i0 && held i1 then Some i1 else None in
    (match slot with
    | Some i -> set_bucket t i (Record.encode ~bucket_size ~key ~value)
    | None when Hashtbl.mem t.stash key -> Hashtbl.replace t.stash key value
    | None ->
        t.count <- t.count + 1;
        (* displacement loop: place the pending record at [target]; a full
           slot evicts its occupant to that occupant's alternate bucket.
           A victim whose two candidates coincide cannot move anywhere —
           evicting it would swap the slot with itself until max_kicks —
           so the pending record goes straight to the stash instead.
           After max_kicks the pending record goes to the stash too, so
           nothing is ever dropped. *)
        let rec place key value target kicks =
          if kicks > t.max_kicks then Hashtbl.replace t.stash key value
          else begin
            match Record.decode (Bucket_db.get t.db target) with
            | None -> set_bucket t target (Record.encode ~bucket_size ~key ~value)
            | Some (victim_key, victim_value) ->
                let alt = other_candidate t victim_key target in
                if alt = target then Hashtbl.replace t.stash key value
                else begin
                  set_bucket t target (Record.encode ~bucket_size ~key ~value);
                  place victim_key victim_value alt (kicks + 1)
                end
          end
        in
        let start = if bucket_empty t i0 then i0 else i1 in
        place key value start 0);
    Ok ()
  end

let load_factor t = float_of_int t.count /. float_of_int (Bucket_db.size t.db)
