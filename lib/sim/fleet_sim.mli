(** Closed-loop fleet simulation over the {e real} serving stack (bench
    E24): a sharded {!Zltp_frontend} of [2^shard_bits] data shards
    answers a Zipf page mix ({!Workload}/{!Zipf}) arriving as a Poisson
    stream through {!Queue_sim}'s batch-service discipline — but where
    {!Queue_sim} plugs an analytic service law into the event loop, this
    driver {e measures} each batch's service time by running the scan
    kernels (fused, bit-packed, optionally domain-parallel, optionally
    through the fan-out tree). Arrivals and waits live on a virtual
    timeline; service durations are wall-clock truth; Little's law
    (L = λW) is reported per operating point as a bookkeeping
    cross-check.

    The result also carries the three models this repo already has —
    {!Queue_sim} with a fitted service law, {!Latency_model}'s straggler
    tail, and {!Cost_model}'s Table-2 arithmetic seeded from a 1-shard
    microbenchmark — so the bench can put measurement and estimate side
    by side (the "validate or falsify Table 2" row of EXPERIMENTS.md). *)

type params = {
  shard_bits : int;  (** fleet = [2^shard_bits] data shards *)
  domain_bits : int;  (** global bucket domain *)
  bucket_size : int;
  batch_size : int;
  calib_batches : int;  (** batches timed to calibrate the service law *)
  queries_per_point : int;
  load_fractions : float list;  (** offered load as fraction of measured capacity *)
  batch_window_s : float option;  (** [None]: one calibrated batch service time *)
  page_exponent : float;
  scan_domains : int;  (** per-shard {!Lw_pir.Server.answer_domains} knob *)
  tree_fanout_bits : int option;  (** fan-out tree for the single-key probe *)
  key_pool : int;  (** distinct pre-generated queries, cycled *)
  burst_k : int;
      (** [1]: independent Zipf visits (the historical mix). [> 1]: the
          pool is built from {!Workload.search_bursts} — runs of [burst_k]
          correlated, possibly-repeated indices per visited site, the
          traffic shape of a cluster retrieval served as keyword GETs *)
  straggler_sigma : float;  (** {!Latency_model} tail dispersion *)
  seed : string;
}

val default : params
(** 64 shards over a 4 MiB database, batch 16, load 0.5 and 0.9. *)

val smoke : params
(** Tiny deterministic-geometry variant for the [@fleet] CI alias:
    16 shards, 32 KiB database, 24 queries per point (one point past
    saturation to exercise the queue-growth path). *)

type point = {
  fraction : float;  (** of measured capacity *)
  offered_rps : float;
  offered : int;
  served : int;
  mean_sojourn_s : float;
  p50_s : float;
  p99_s : float;
  mean_batch_fill : float;
  utilization : float;
  mean_in_system : float;  (** time-average N(t) from the event log *)
  littles_lambda_w : float;  (** λ_eff · W̄ — equals [mean_in_system] up to float error *)
  queue_model_p50_s : float;  (** {!Queue_sim} at the same point, fitted service law *)
  queue_model_p95_s : float;
}

type model_line = {
  model_shards : int;  (** {!Cost_model}'s shard count for this dataset *)
  model_request_s : float;  (** 1-shard microbench: dpf + scan seconds *)
  model_latency_floor_s : float;  (** batch × request — the Table-2 floor *)
  model_vcpu_s : float;
  model_request_cost_usd : float;
  measured_batch_service_s : float;
  measured_capacity_rps : float;
  floor_ratio : float;
      (** measured batch service / model floor: < 1 means the bit-packed
          batch kernel beats the naive batch × request arithmetic (scan
          amortization the Table-2 floor does not credit) *)
}

type result = {
  shards : int;
  domains : int;
  db_bytes : int;
  service_batch_mean_s : float;
  service_batch_p99_s : float;
  fitted_scan_s : float;  (** service(B) = scan + B·per_request fit *)
  fitted_per_request_s : float;
  capacity_rps : float;
  direct_single_s : float;  (** one key, flat fan-out *)
  tree_single_s : float;  (** one key through the fan-out tree *)
  tree_depth : int;
  tree_nodes : int;
  points : point list;
  fleet_hist : Lw_obs.Metrics.hist_snapshot;
      (** every shard's answer-latency histogram folded into one view via
          {!Lw_obs.Metrics.merge_into} *)
  tail_model : Latency_model.distribution;
  model : model_line;
  spir_hint_s : float;
      (** per-epoch {!Lw_pir.Spir} hint over a sealed shard-sized snapshot *)
  spir_answer_s : float;  (** one masked-scan single-server answer *)
  spir_scan_ratio : float;
      (** per-byte SPIR multiply-accumulate vs XOR-scan slowdown — the
          measured number that seeds the three-way table's Single column *)
  three_way : Cost_model.mode_cost list;
      (** {!Cost_model.three_way} at the fleet geometry, [single_slowdown]
          seeded from [spir_scan_ratio] *)
}

val run : ?progress:(string -> unit) -> params -> result
(** Build the fleet, spot-check share reconstruction end to end, calibrate
    the service law, run every operating point, and assemble the models.
    Raises [Invalid_argument] on nonsensical parameters and [Failure] if
    the two parties' shares stop reconstructing database buckets. *)
