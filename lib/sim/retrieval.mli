(** Retrieval universe over the synthetic corpus (the PIR-RAG shape of
    PAPERS.md, built on the wire-v4 keyword verb): pages are clustered
    into embedding-like buckets by a {e deterministic feature hash} of
    their path tokens — every '/'-segment but the leaf, sub-split on '.'
    and '-' — so pages of one site/section share a cluster, and
    "retrieve the nearest cluster of a query" is answered as [k]
    correlated keyword lookups ({!Zltp_client.keyword_get_batch}).

    Determinism is the point: no RNG and no float embeddings means
    tests, the bench, and separate processes agree on cluster
    membership from the path bytes alone. *)

type t

val build : clusters:int -> Corpus.t -> t
(** Assign every corpus page to one of [clusters] buckets. Raises
    [Invalid_argument] when [clusters < 1]. *)

val clusters : t -> int

val cluster_of : t -> string -> int
(** The cluster a query lands in: a stored path uses its recorded
    assignment; any other string is feature-hashed the same way. *)

val members : t -> int -> string list
(** The stored paths of one cluster, sorted (may be empty). *)

val non_empty : t -> int
(** Clusters holding at least one page. *)

val retrieve : t -> query:string -> k:int -> string list
(** Up to [k] nearest stored pages of [query] — the keyword keys a
    client then fetches privately in one batched round trip. *)
