(* The first retrieval-universe layer: cluster the synthetic corpus into
   embedding-like buckets with a deterministic feature hash of path
   tokens, so "retrieve the nearest cluster of a query" becomes k
   correlated keyword lookups against the universe's keyword store —
   the PIR-RAG shape (PAPERS.md) on top of the keyword verb.

   The feature hash plays the role of an embedding-plus-ANN index: two
   pages whose paths share every non-leaf token (same site, same
   section) land in the same cluster, so a cluster is a plausible
   "semantically nearby" set without shipping a real embedding model.
   Everything is deterministic in the path bytes — no RNG, no floats —
   which is what lets tests and the bench agree on cluster membership
   across processes. *)

type t = {
  clusters : int;
  assignment : (string, int) Hashtbl.t; (* path -> cluster *)
  members : string list array; (* cluster -> member paths, sorted *)
}

(* Feature tokens of a path: every '/'-segment except the last (the leaf
   is the per-page id — exactly the part that must NOT separate pages of
   one section), sub-split on '.' and '-'. A query that is not a path
   (no '/') keeps all its tokens. *)
let tokens_of s =
  let segs = String.split_on_char '/' s in
  let prefix =
    match List.rev segs with
    | _leaf :: (_ :: _ as rest) -> List.rev rest
    | _ -> segs
  in
  prefix
  |> List.concat_map (String.split_on_char '.')
  |> List.concat_map (String.split_on_char '-')
  |> List.filter (fun tok -> tok <> "")

(* FNV-style accumulation, masked to stay in positive OCaml int range. *)
let mask = 0x3FFFFFFFFFFF

let feature_hash tokens =
  List.fold_left
    (fun h tok ->
      let h = String.fold_left (fun h c -> (h lxor Char.code c) * 16777619 land mask) h tok in
      ((h * 31) + 7) land mask)
    0x811C9DC5 tokens

let cluster_of_tokens ~clusters tokens = feature_hash tokens mod clusters

let build ~clusters (corpus : Corpus.t) =
  if clusters < 1 then invalid_arg "Retrieval.build: clusters must be >= 1";
  let assignment = Hashtbl.create (Array.length corpus.Corpus.pages) in
  let buckets = Array.make clusters [] in
  Array.iter
    (fun (p : Corpus.page) ->
      let c = cluster_of_tokens ~clusters (tokens_of p.Corpus.path) in
      Hashtbl.replace assignment p.Corpus.path c;
      buckets.(c) <- p.Corpus.path :: buckets.(c))
    corpus.Corpus.pages;
  { clusters; assignment; members = Array.map (List.sort String.compare) buckets }

let clusters t = t.clusters

let cluster_of t query =
  match Hashtbl.find_opt t.assignment query with
  | Some c -> c (* exact member: its recorded cluster, renames included *)
  | None -> cluster_of_tokens ~clusters:t.clusters (tokens_of query)

let members t c =
  if c < 0 || c >= t.clusters then invalid_arg "Retrieval.members: cluster out of range";
  t.members.(c)

let non_empty t =
  Array.fold_left (fun n ms -> if ms = [] then n else n + 1) 0 t.members

let rec take k = function [] -> [] | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

(* The retrieval primitive: the k nearest stored pages of [query] = the
   first k members of its cluster. The fetch itself is the caller's k
   correlated keyword GETs (Zltp_client.keyword_get_batch). *)
let retrieve t ~query ~k =
  if k < 1 then invalid_arg "Retrieval.retrieve: k must be >= 1";
  take k (members t (cluster_of t query))
