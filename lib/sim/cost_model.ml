type instance = { name : string; vcpus : int; price_per_hour : float }

let c5_large = { name = "c5.large"; vcpus = 2; price_per_hour = 0.085 }

type shard = {
  shard_bytes : float;
  domain_bits : int;
  request_seconds : float;
  dpf_seconds : float;
  scan_seconds : float;
}

let gib = 1073741824.

let paper_shard =
  {
    shard_bytes = gib;
    domain_bits = 22;
    request_seconds = 0.167;
    dpf_seconds = 0.064;
    scan_seconds = 0.103;
  }

let shard_of_measurement ?(shard_bytes = gib) ?(domain_bits = 22) ~dpf_seconds ~scan_seconds () =
  {
    shard_bytes;
    domain_bits;
    request_seconds = dpf_seconds +. scan_seconds;
    dpf_seconds;
    scan_seconds;
  }

type dataset = { name : string; total_bytes : float; pages : float; avg_page_bytes : float }

let of_profile (p : Corpus.profile) =
  {
    name = p.Corpus.name;
    total_bytes = p.Corpus.total_bytes;
    pages = p.Corpus.pages;
    avg_page_bytes = p.Corpus.avg_page_bytes;
  }

type policy = Storage_driven | Domain_driven

let shard_count policy ds shard =
  let count =
    match policy with
    | Storage_driven -> ds.total_bytes /. shard.shard_bytes
    | Domain_driven -> ds.pages /. float_of_int (1 lsl shard.domain_bits)
  in
  max 1 (int_of_float (Float.ceil count))

type estimate = {
  dataset : string;
  shards : int;
  vcpu_seconds : float;
  request_cost_usd : float;
  upload_kib : float;
  download_kib : float;
  total_comm_kib : float;
  latency_floor_s : float;
}

let lambda_bits = 128
let servers = 2 (* two-server PIR: every request is answered twice *)

let paper_key_bytes ~d_total = float_of_int ((lambda_bits + 2) * d_total)

let estimate ?(policy = Storage_driven) ?(bucket_bytes = 4096) ?(batch = 16) ds shard inst =
  let shards = shard_count policy ds shard in
  (* instance-seconds on one logical server, all shards working one request *)
  let instance_seconds = float_of_int shards *. shard.request_seconds in
  let vcpu_seconds = instance_seconds *. float_of_int inst.vcpus *. float_of_int servers in
  let request_cost_usd =
    instance_seconds /. 3600. *. inst.price_per_hour *. float_of_int servers
  in
  let d_total = shard.domain_bits + Lw_util.Bitops.log2_ceil shards in
  let upload = float_of_int servers *. paper_key_bytes ~d_total in
  let download = float_of_int (servers * bucket_bytes) in
  {
    dataset = ds.name;
    shards;
    vcpu_seconds;
    request_cost_usd;
    upload_kib = upload /. 1024.;
    download_kib = download /. 1024.;
    total_comm_kib = (upload +. download) /. 1024.;
    latency_floor_s = float_of_int batch *. shard.request_seconds;
  }

type keyword_estimate = {
  base : estimate; (* the single-probe index GET at the same point *)
  kw_vcpu_seconds : float;
  kw_request_cost_usd : float;
  kw_upload_kib : float;
  kw_download_kib : float;
  kw_total_comm_kib : float;
  compute_overhead : float; (* kw vCPU-s / base vCPU-s *)
}

let keyword_estimate ?policy ?bucket_bytes ?batch ds shard inst =
  let base = estimate ?policy ?bucket_bytes ?batch ds shard inst in
  (* A keyword GET is two DPF probes riding ONE batched scan pass
     (Server.answer_batch packs both as a width-2 entry): per shard it
     costs 2×dpf_seconds of key evaluation but only 1×scan_seconds of
     memory traffic, versus dpf + scan for the plain index GET. *)
  let kw_request_seconds = (2. *. shard.dpf_seconds) +. shard.scan_seconds in
  let instance_seconds = float_of_int base.shards *. kw_request_seconds in
  let kw_vcpu_seconds = instance_seconds *. float_of_int inst.vcpus *. float_of_int servers in
  let kw_request_cost_usd =
    instance_seconds /. 3600. *. inst.price_per_hour *. float_of_int servers
  in
  (* Communication doubles exactly: two keys up, two bucket shares down,
     per logical server — the shape is fixed even when the cuckoo
     candidates coincide, so the factor is query-independent. *)
  let kw_upload_kib = 2. *. base.upload_kib in
  let kw_download_kib = 2. *. base.download_kib in
  {
    base;
    kw_vcpu_seconds;
    kw_request_cost_usd;
    kw_upload_kib;
    kw_download_kib;
    kw_total_comm_kib = kw_upload_kib +. kw_download_kib;
    compute_overhead =
      (if base.vcpu_seconds > 0. then kw_vcpu_seconds /. base.vcpu_seconds else 0.);
  }

(* ------------------------------------------------------------------ *)
(* Three-way mode comparison: the same Table-2 columns (C1 compute,
   C2 dollars, C3 communication, C4 latency floor) for each deployment
   model in Zltp_mode.all, at one dataset/instance operating point.   *)

type mode_cost = {
  mode : Lightweb.Zltp_mode.t;
  mc_servers : int;
  mc_shards : int;
  mc_vcpu_seconds : float;
  mc_request_cost_usd : float;
  mc_upload_kib : float;
  mc_download_kib : float;
  mc_total_comm_kib : float;
  mc_latency_floor_s : float;
  mc_hint_mib_per_epoch : float;
}

let three_way ?(policy = Storage_driven) ?(bucket_bytes = 4096) ?(batch = 16)
    ?(single_slowdown = 8.) ?(spir_n = Lw_pir.Spir.default_params.Lw_pir.Spir.n) ?(oram_z = 4) ds
    shard inst =
  (* Bytes/second the measured shard streams its data at (XOR scan). *)
  let scan_rate = shard.shard_bytes /. Float.max 1e-9 shard.scan_seconds in
  let fleet_cost ~servers ~shards ~request_seconds ~upload_bytes ~download_bytes
      ~hint_bytes_per_epoch mode =
    let instance_seconds = float_of_int shards *. request_seconds in
    {
      mode;
      mc_servers = servers;
      mc_shards = shards;
      mc_vcpu_seconds = instance_seconds *. float_of_int inst.vcpus *. float_of_int servers;
      mc_request_cost_usd =
        instance_seconds /. 3600. *. inst.price_per_hour *. float_of_int servers;
      mc_upload_kib = upload_bytes /. 1024.;
      mc_download_kib = download_bytes /. 1024.;
      mc_total_comm_kib = (upload_bytes +. download_bytes) /. 1024.;
      mc_latency_floor_s = float_of_int batch *. request_seconds;
      mc_hint_mib_per_epoch = hint_bytes_per_epoch /. (1024. *. 1024.);
    }
  in
  let pir2 =
    let e = estimate ~policy ~bucket_bytes ~batch ds shard inst in
    fleet_cost ~servers ~shards:e.shards ~request_seconds:shard.request_seconds
      ~upload_bytes:(e.upload_kib *. 1024.)
      ~download_bytes:(e.download_kib *. 1024.)
      ~hint_bytes_per_epoch:0. Lightweb.Zltp_mode.Pir2
  in
  let single =
    (* The LWE noise budget caps a Single shard at max_domain_bits, so the
       same dataset fragments into more, smaller shards; obliviousness
       means every shard answers every query (selection vector up, one
       u32-per-row answer down, from each). One server, no DPF eval: a
       request is one multiply-accumulate pass over the shard, modeled as
       the measured XOR scan slowed by [single_slowdown]. The per-epoch
       hint is amortized over all queries and reported beside C3, not in
       it. *)
    let db = min shard.domain_bits Lw_pir.Spir.max_domain_bits in
    let pages_per_shard = float_of_int (1 lsl db) in
    let shard_bytes = pages_per_shard *. float_of_int bucket_bytes in
    let shards =
      let count =
        match policy with
        | Storage_driven -> ds.total_bytes /. shard_bytes
        | Domain_driven -> ds.pages /. pages_per_shard
      in
      max 1 (int_of_float (Float.ceil count))
    in
    let request_seconds = shard_bytes /. scan_rate *. single_slowdown in
    let fshards = float_of_int shards in
    let upload_bytes = fshards *. float_of_int (Lw_pir.Spir.query_bytes ~domain_bits:db) in
    let download_bytes = fshards *. float_of_int (12 + (4 * bucket_bytes)) in
    let hint_bytes_per_epoch =
      fshards
      *. float_of_int
           (Lw_pir.Spir.hint_bytes { Lw_pir.Spir.n = spir_n } ~bucket_size:bucket_bytes)
    in
    fleet_cost ~servers:1 ~shards ~request_seconds ~upload_bytes ~download_bytes
      ~hint_bytes_per_epoch Lightweb.Zltp_mode.Single
  in
  let enclave =
    (* One trusted machine per shard; a GET is a tree-ORAM path — about
       2·⌈log2 pages⌉ node reads of Z buckets each — at the measured scan
       rate, on the one shard holding the index (the enclave hides which
       bucket within the shard; shard routing rides the same frontend
       fan-out as the other modes). Communication is a fixed-size
       encrypted request up and one encrypted bucket down. *)
    let shards = shard_count policy ds shard in
    let path_nodes = 2 * max 1 shard.domain_bits * oram_z in
    let path_bytes = float_of_int (path_nodes * bucket_bytes) in
    let request_seconds = path_bytes /. scan_rate in
    let mc =
      fleet_cost ~servers:1 ~shards:1 ~request_seconds ~upload_bytes:64.
        ~download_bytes:(float_of_int (bucket_bytes + 32))
        ~hint_bytes_per_epoch:0. Lightweb.Zltp_mode.Enclave
    in
    { mc with mc_shards = shards }
  in
  List.map
    (function
      | Lightweb.Zltp_mode.Single -> single
      | Lightweb.Zltp_mode.Pir2 -> pir2
      | Lightweb.Zltp_mode.Enclave -> enclave)
    Lightweb.Zltp_mode.all

let pp_mode_cost fmt m =
  Format.fprintf fmt
    "%-7s servers=%d shards=%-5d vCPU-s=%-9.4f cost=$%-9.6f up=%.1fKiB down=%.1fKiB comm=%.1fKiB latency>=%.3fs%s"
    (Lightweb.Zltp_mode.name m.mode)
    m.mc_servers m.mc_shards m.mc_vcpu_seconds m.mc_request_cost_usd m.mc_upload_kib
    m.mc_download_kib m.mc_total_comm_kib m.mc_latency_floor_s
    (if m.mc_hint_mib_per_epoch > 0. then
       Printf.sprintf " hint=%.1fMiB/epoch" m.mc_hint_mib_per_epoch
     else "")

type update_estimate = {
  churn : float;
  dirty_buckets : float;
  expected_dirty_blocks : float;
  cow_bytes : float;
  naive_bytes : float;
  cow_ratio : float;
}

let update_estimate ?(bucket_bytes = 4096) ?(block_bytes = 262144) ~churn ds =
  if churn < 0. || churn > 1. then invalid_arg "update_estimate: churn must be in [0,1]";
  let n_buckets = Float.max 1. (Float.ceil (ds.total_bytes /. float_of_int bucket_bytes)) in
  let buckets_per_block =
    float_of_int (max 1 (block_bytes / max 1 bucket_bytes))
  in
  let n_blocks = Float.max 1. (Float.ceil (n_buckets /. buckets_per_block)) in
  (* a block is copied iff at least one of its buckets churned; with
     uniform independent churn that is 1 - (1-churn)^buckets_per_block *)
  let p_block_dirty = 1. -. Float.pow (1. -. churn) buckets_per_block in
  let expected_dirty_blocks = n_blocks *. p_block_dirty in
  let per_replica_cow = expected_dirty_blocks *. float_of_int block_bytes in
  let cow_bytes = per_replica_cow *. float_of_int servers in
  let naive_bytes = ds.total_bytes *. float_of_int servers in
  {
    churn;
    dirty_buckets = n_buckets *. churn;
    expected_dirty_blocks;
    cow_bytes;
    naive_bytes;
    cow_ratio = (if naive_bytes > 0. then cow_bytes /. naive_bytes else 0.);
  }

let pp_update fmt u =
  Format.fprintf fmt
    "churn=%.4f dirty-buckets=%.0f dirty-blocks=%.1f cow=%.1fMiB naive=%.1fMiB ratio=%.4f"
    u.churn u.dirty_buckets u.expected_dirty_blocks
    (u.cow_bytes /. (1024. *. 1024.))
    (u.naive_bytes /. (1024. *. 1024.))
    u.cow_ratio

type user_profile = { pages_per_day : float; gets_per_page : int }

let paper_user = { pages_per_day = 50.; gets_per_page = 5 }

let monthly_user_cost u ~request_cost_usd =
  u.pages_per_day *. float_of_int u.gets_per_page *. 30. *. request_cost_usd

let google_fi_usd_per_gib = 10.
let fi_cost ~bytes = bytes /. gib *. google_fi_usd_per_gib
let nytimes_homepage_bytes = 22.4 *. 1024. *. 1024.

let projected_cost ~years c = c /. Float.pow 16. (years /. 5.)

let pp_keyword fmt k =
  Format.fprintf fmt
    "%-10s keyword: vCPU-s=%-7.1f cost=$%.4f up=%.1fKiB down=%.1fKiB comm=%.1fKiB compute-overhead=%.2fx"
    k.base.dataset k.kw_vcpu_seconds k.kw_request_cost_usd k.kw_upload_kib k.kw_download_kib
    k.kw_total_comm_kib k.compute_overhead

let pp_estimate fmt e =
  Format.fprintf fmt
    "%-10s shards=%-4d vCPU-s=%-7.1f cost=$%.4f up=%.1fKiB down=%.1fKiB comm=%.1fKiB latency>=%.2fs"
    e.dataset e.shards e.vcpu_seconds e.request_cost_usd e.upload_kib e.download_kib
    e.total_comm_kib e.latency_floor_s
