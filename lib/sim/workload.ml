type visit = { time_s : float; site : int; page : int }

type params = {
  sites : int;
  pages_per_site : int;
  visits : int;
  mean_dwell_s : float;
  site_exponent : float;
  page_exponent : float;
}

let default_params =
  {
    sites = 20;
    pages_per_site = 200;
    visits = 250;
    mean_dwell_s = 90.;
    site_exponent = 1.0;
    page_exponent = 1.1;
  }

let generate p rng =
  if p.sites < 1 || p.pages_per_site < 1 || p.visits < 0 then
    invalid_arg "Workload.generate: bad params";
  let site_dist = Zipf.create ~exponent:p.site_exponent ~n:p.sites () in
  let page_dist = Zipf.create ~exponent:p.page_exponent ~n:p.pages_per_site () in
  let time = ref 0. in
  List.init p.visits (fun _ ->
      let dwell =
        -.p.mean_dwell_s *. log (max 1e-12 (Lw_util.Det_rng.float rng 1.0))
      in
      time := !time +. dwell;
      { time_s = !time; site = Zipf.sample site_dist rng; page = Zipf.sample page_dist rng })

type burst = { burst_time_s : float; burst_site : int; burst_pages : int list }

let search_bursts ~burst_k p rng =
  if burst_k < 1 then invalid_arg "Workload.search_bursts: burst_k must be >= 1";
  let visits = generate p rng in
  (* One burst per visit: the visited site is the "query", and the k
     member fetches are fresh draws from the same site's page Zipf —
     correlated (one hot site) and possibly duplicated (two draws may
     hit the same page), which is exactly the non-independent index mix
     a cluster retrieval puts into a single batch. *)
  let page_dist = Zipf.create ~exponent:p.page_exponent ~n:p.pages_per_site () in
  List.map
    (fun v ->
      {
        burst_time_s = v.time_s;
        burst_site = v.site;
        burst_pages = v.page :: List.init (burst_k - 1) (fun _ -> Zipf.sample page_dist rng);
      })
    visits

let gets_per_day (u : Cost_model.user_profile) =
  u.Cost_model.pages_per_day *. float_of_int u.Cost_model.gets_per_page

let gets_per_month u = 30. *. gets_per_day u

let unique_sites visits =
  let seen = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace seen v.site ()) visits;
  Hashtbl.length seen

let code_fetches visits =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc v ->
      if Hashtbl.mem seen v.site then acc
      else begin
        Hashtbl.replace seen v.site ();
        acc + 1
      end)
    0 visits
