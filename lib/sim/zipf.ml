(* Walker/Vose alias method: the normalized pmf is preprocessed once into
   [prob]/[alias] tables, after which every sample costs one table row —
   one uniform index draw plus one biased coin — instead of the O(log n)
   CDF binary search of the previous implementation. The fleet simulation
   draws millions of ranks, so sampling must not scale with the catalog. *)

type t = { n : int; pmf : float array; prob : float array; alias : int array }

let create ?(exponent = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) exponent) in
  let total = Array.fold_left ( +. ) 0. weights in
  let pmf = Array.map (fun w -> w /. total) weights in
  (* Vose preprocessing: split ranks into under- and over-full relative to
     the uniform 1/n, then pair each under-full rank with an over-full
     donor. Every rank ends with prob in [0,1] and a donor alias. *)
  let nf = float_of_int n in
  let scaled = Array.map (fun p -> p *. nf) pmf in
  let prob = Array.make n 1. in
  let alias = Array.init n Fun.id in
  let small = ref [] and large = ref [] in
  Array.iteri (fun i s -> if s < 1. then small := i :: !small else large := i :: !large) scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        small := srest;
        (* donor [l] gave away [1 - scaled.(s)] of its mass *)
        scaled.(l) <- scaled.(l) -. (1. -. scaled.(s));
        if scaled.(l) < 1. then begin
          large := lrest;
          small := l :: !small
        end;
        pair ()
    | rest, [] | [], rest ->
        (* leftover ranks are exactly full up to rounding: keep prob = 1 *)
        List.iter (fun i -> prob.(i) <- 1.) rest
  in
  pair ();
  { n; pmf; prob; alias }

let n t = t.n

let sample t rng =
  let i = Lw_util.Det_rng.int rng t.n in
  if Lw_util.Det_rng.float rng 1.0 < t.prob.(i) then i else t.alias.(i)

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: rank out of range";
  t.pmf.(k)
