(** Zipfian sampling for synthetic workloads: page and site popularity on
    the web is famously heavy-tailed, and the paper's economics (§4)
    hinge on the fact that PIR cost is popularity-{e independent}. *)

type t

val create : ?exponent:float -> n:int -> unit -> t
(** Ranks [0..n-1] with P(rank k) ∝ 1/(k+1)^exponent (default 1.0). *)

val n : t -> int

val sample : t -> Lw_util.Det_rng.t -> int
(** O(1) per draw via a Walker/Vose alias table built once at {!create}:
    one uniform index plus one biased coin, independent of [n] — the
    fleet simulation draws millions of ranks. *)

val probability : t -> int -> float
