(** The paper's cost arithmetic (§4, §5.2): scale a measured per-shard
    request time up to a fleet serving a full dataset, price it against
    AWS, and derive the per-user monthly bill.

    All the constants the paper uses are exposed so E4 can regenerate
    Table 2 exactly from the paper's measurements, and regenerate it again
    from {e our} measured OCaml rates to compare shapes. *)

(** {2 Machines and pricing} *)

type instance = { name : string; vcpus : int; price_per_hour : float }

val c5_large : instance
(** 2 vCPU, $0.085/h — the paper's machine. *)

(** {2 Per-shard microbenchmark numbers} *)

type shard = {
  shard_bytes : float; (** data served per shard; 1 GiB in the paper *)
  domain_bits : int; (** DPF output domain per shard; 22 in the paper *)
  request_seconds : float; (** one request's compute on one shard *)
  dpf_seconds : float; (** portion spent in DPF evaluation *)
  scan_seconds : float; (** portion spent scanning the data *)
}

val paper_shard : shard
(** 167 ms = 64 ms DPF + 103 ms scan over 1 GiB (§5.1). *)

val shard_of_measurement :
  ?shard_bytes:float -> ?domain_bits:int -> dpf_seconds:float -> scan_seconds:float -> unit -> shard
(** Build a shard model from measured rates (already scaled to the shard
    geometry). *)

(** {2 Datasets} *)

type dataset = { name : string; total_bytes : float; pages : float; avg_page_bytes : float }

val of_profile : Corpus.profile -> dataset

(** {2 Sharding policies} *)

type policy =
  | Storage_driven (** shards = ⌈bytes / shard_bytes⌉ — matches Table 2's C4 row *)
  | Domain_driven (** shards = ⌈pages / 2^domain_bits⌉ — matches Table 2's Wikipedia row *)

val shard_count : policy -> dataset -> shard -> int

(** {2 The estimate} *)

type estimate = {
  dataset : string;
  shards : int;
  vcpu_seconds : float; (** system-wide (both logical servers, both vCPUs) *)
  request_cost_usd : float;
  upload_kib : float; (** client→servers, both DPF keys, paper formula *)
  download_kib : float; (** servers→client, two bucket shares *)
  total_comm_kib : float;
  latency_floor_s : float; (** batch-16 data-server latency lower bound *)
}

val estimate :
  ?policy:policy -> ?bucket_bytes:int -> ?batch:int -> dataset -> shard -> instance -> estimate
(** Defaults: [Storage_driven], 4 KiB buckets, batch 16 (latency floor =
    batch × request_seconds, the paper's 2.6 s). The communication model
    is the paper's: upload = 2 keys of [(λ+2)·d_total] bytes with λ = 128
    and [d_total = domain_bits + ⌈log2 shards⌉]; download = 2 buckets. *)

(** {2 The keyword column} *)

type keyword_estimate = {
  base : estimate; (** the single-probe index GET at the same point *)
  kw_vcpu_seconds : float;
  kw_request_cost_usd : float;
  kw_upload_kib : float; (** exactly 2× base: two DPF keys per server *)
  kw_download_kib : float; (** exactly 2× base: two bucket shares *)
  kw_total_comm_kib : float;
  compute_overhead : float;
      (** kw vCPU-s / base vCPU-s = (2·dpf + scan)/(dpf + scan) — strictly
          below 2 because the width-2 probe shares one batched scan pass *)
}

val keyword_estimate :
  ?policy:policy ->
  ?bucket_bytes:int ->
  ?batch:int ->
  dataset ->
  shard ->
  instance ->
  keyword_estimate
(** Cost of a wire-v4 keyword GET at the same operating point as
    {!estimate}: both cuckoo candidate buckets are probed as one width-2
    entry in a single batched scan, so compute pays 2× DPF evaluation but
    only 1× memory scan, while communication doubles exactly (the
    two-probe shape is fixed and query-independent). *)

val pp_keyword : Format.formatter -> keyword_estimate -> unit

(** {2 The three-way mode comparison}

    The same Table-2 columns — C1 compute (vCPU-s), C2 dollars per
    request, C3 communication, C4 latency floor — for each deployment
    model in {!Lightweb.Zltp_mode.all}, at one dataset / instance
    operating point. This is what makes the cost model three-way
    comparable: the trade-off the paper argues (non-collusion vs
    hardware trust vs a single cryptographic assumption) priced in one
    table. *)

type mode_cost = {
  mode : Lightweb.Zltp_mode.t;
  mc_servers : int;  (** logical servers a request touches (2, 1, 1) *)
  mc_shards : int;
  mc_vcpu_seconds : float;  (** C1: system-wide compute per request *)
  mc_request_cost_usd : float;  (** C2 *)
  mc_upload_kib : float;
  mc_download_kib : float;
  mc_total_comm_kib : float;  (** C3 *)
  mc_latency_floor_s : float;  (** C4: batch × per-shard request time *)
  mc_hint_mib_per_epoch : float;
      (** [Single] only: the per-epoch public hint, amortized over every
          client and query — reported beside C3, not folded into it *)
}

val three_way :
  ?policy:policy ->
  ?bucket_bytes:int ->
  ?batch:int ->
  ?single_slowdown:float ->
  ?spir_n:int ->
  ?oram_z:int ->
  dataset ->
  shard ->
  instance ->
  mode_cost list
(** One {!mode_cost} per mode, in {!Lightweb.Zltp_mode.all} order.
    [Pir2] reproduces {!estimate} exactly. [Single] re-shards the
    dataset at the LWE noise cap ({!Lw_pir.Spir.max_domain_bits});
    every shard answers every query (selection vector up, u32-per-row
    answer down), and a request is one multiply-accumulate pass modeled
    as the measured XOR scan slowed by [single_slowdown] (default 8;
    {!Fleet_sim} seeds it from the measured SPIR/XOR ratio). [Enclave]
    pays a tree-ORAM path — [2·domain_bits·oram_z] bucket reads at the
    scan rate — on the one shard holding the index, with fixed-size
    encrypted communication. *)

val pp_mode_cost : Format.formatter -> mode_cost -> unit

(** {2 Update bandwidth (epoch-versioned storage)} *)

type update_estimate = {
  churn : float; (** fraction of buckets mutated per epoch *)
  dirty_buckets : float;
  expected_dirty_blocks : float;
  cow_bytes : float; (** copy-on-write publish cost, both replicas *)
  naive_bytes : float; (** full re-push of the database, both replicas *)
  cow_ratio : float; (** cow_bytes / naive_bytes *)
}

val update_estimate :
  ?bucket_bytes:int -> ?block_bytes:int -> churn:float -> dataset -> update_estimate
(** Bandwidth a publisher epoch costs under the CoW engine versus naively
    re-pushing the whole database to both PIR replicas. Blocks hold
    [block_bytes / bucket_bytes] buckets (defaults 4 KiB buckets, 256 KiB
    blocks, matching [Lw_store]); with uniform independent churn [c], a
    block is copied with probability [1 - (1-c)^buckets_per_block], so
    [expected_dirty_blocks = n_blocks · (1 - (1-c)^bpb)]. Bench E22
    measures the same ratio on the real engine. Raises [Invalid_argument]
    unless [0 <= churn <= 1]. *)

val pp_update : Format.formatter -> update_estimate -> unit

(** {2 §4 economics} *)

type user_profile = { pages_per_day : float; gets_per_page : int }

val paper_user : user_profile
(** 50 page requests/day, 5 data GETs each. *)

val monthly_user_cost : user_profile -> request_cost_usd:float -> float
(** 30-day month: pages/day × GETs/page × 30 × system-wide request cost.
    At the paper's C4 point: 50 · 5 · 30 · $0.002 = $15/month. *)

val google_fi_usd_per_gib : float
(** $10/GiB (§5.2's willingness-to-pay comparison). *)

val fi_cost : bytes:float -> float
val nytimes_homepage_bytes : float
(** 22.4 MiB. *)

(** {2 §5.2 "Looking forward"} *)

val projected_cost : years:float -> float -> float
(** [projected_cost ~years c] applies the historical 16×-per-5-years
    compute-cost decline to [c]. *)

val pp_estimate : Format.formatter -> estimate -> unit
