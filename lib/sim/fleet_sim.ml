(* Closed-loop fleet simulation over the real serving stack: stand up a
   sharded front-end (Zltp_frontend over 2^shard_bits Lw_pir servers),
   replay a Zipf page mix (Workload/Zipf) as Poisson arrivals through the
   batch-service queueing discipline of Queue_sim, and *measure* every
   batch's service time by actually running the scan kernels — the
   arrivals and waits live on a virtual timeline, the service durations
   are wall-clock truth. Little's law (L = λW) ties the two together and
   is reported per operating point as a bookkeeping cross-check.

   Alongside the measurement the driver runs the two models this repo
   already has — Queue_sim with a service law fitted to the calibration,
   and Latency_model's straggler tail — plus Cost_model's Table-2
   arithmetic seeded from a 1-shard microbenchmark, so E24 can put
   measured numbers and the §4/§5.2 estimates side by side. *)

type params = {
  shard_bits : int; (* fleet = 2^shard_bits data shards *)
  domain_bits : int; (* global bucket domain *)
  bucket_size : int;
  batch_size : int;
  calib_batches : int; (* batches timed to calibrate the service law *)
  queries_per_point : int;
  load_fractions : float list; (* offered load as fraction of capacity *)
  batch_window_s : float option; (* None: one calibrated batch service *)
  page_exponent : float;
  scan_domains : int; (* per-shard Server.answer_domains knob *)
  tree_fanout_bits : int option; (* fan-out tree for single-key answers *)
  key_pool : int; (* distinct pre-generated queries, cycled *)
  burst_k : int; (* 1 = independent visits; >1 = correlated search bursts *)
  straggler_sigma : float; (* Latency_model tail dispersion *)
  seed : string;
}

let default =
  {
    shard_bits = 6;
    domain_bits = 12;
    bucket_size = 1024;
    batch_size = 16;
    calib_batches = 6;
    queries_per_point = 192;
    load_fractions = [ 0.5; 0.9 ];
    batch_window_s = None;
    page_exponent = 1.0;
    scan_domains = 1;
    tree_fanout_bits = Some 2;
    key_pool = 96;
    burst_k = 1;
    straggler_sigma = 0.25;
    seed = "fleet-sim";
  }

let smoke =
  {
    default with
    shard_bits = 4;
    domain_bits = 9;
    bucket_size = 64;
    batch_size = 4;
    calib_batches = 2;
    queries_per_point = 24;
    load_fractions = [ 0.5; 1.2 ];
    key_pool = 16;
    seed = "fleet-smoke";
  }

type point = {
  fraction : float; (* of measured capacity *)
  offered_rps : float;
  offered : int;
  served : int;
  mean_sojourn_s : float;
  p50_s : float;
  p99_s : float;
  mean_batch_fill : float;
  utilization : float;
  mean_in_system : float; (* time-average N(t) from the event log *)
  littles_lambda_w : float; (* λ_eff · W̄ — must equal mean_in_system *)
  queue_model_p50_s : float; (* Queue_sim with the fitted service law *)
  queue_model_p95_s : float;
}

type model_line = {
  model_shards : int; (* Cost_model's shard count for this dataset *)
  model_request_s : float; (* 1-shard microbench: dpf + scan *)
  model_latency_floor_s : float; (* batch × request (Table 2 arithmetic) *)
  model_vcpu_s : float;
  model_request_cost_usd : float;
  measured_batch_service_s : float;
  measured_capacity_rps : float;
  floor_ratio : float; (* measured batch service / model floor *)
}

type result = {
  shards : int;
  domains : int;
  db_bytes : int;
  service_batch_mean_s : float;
  service_batch_p99_s : float;
  fitted_scan_s : float; (* service(B) = scan + B·per_request fit *)
  fitted_per_request_s : float;
  capacity_rps : float;
  direct_single_s : float; (* one key, flat fan-out *)
  tree_single_s : float; (* one key through the fan-out tree *)
  tree_depth : int;
  tree_nodes : int;
  points : point list;
  fleet_hist : Lw_obs.Metrics.hist_snapshot; (* merged per-shard view *)
  tail_model : Latency_model.distribution;
  model : model_line;
  spir_hint_s : float; (* per-epoch hint over a shard-sized snapshot *)
  spir_answer_s : float; (* one masked-scan single-server answer *)
  spir_scan_ratio : float; (* per-byte SPIR mul-acc vs XOR scan *)
  three_way : Cost_model.mode_cost list; (* seeded from the ratio above *)
}

let time clock f =
  let t0 = Lw_obs.Clock.now clock in
  let r = f () in
  (r, Lw_obs.Clock.now clock -. t0)

(* The Zipf page mix: Workload's two-level (site, page) popularity model
   flattened onto the global bucket domain. With burst_k > 1 each visit
   becomes a correlated search burst (one site, burst_k possibly-repeated
   pages) laid out contiguously in the pool, so consecutive batch slots
   carry the non-independent index mix a cluster retrieval produces. *)
let pool_indices p rng =
  let domain = 1 lsl p.domain_bits in
  let sites = min 16 domain in
  let pages_per_site = max 1 (domain / sites) in
  let wl =
    {
      Workload.sites;
      pages_per_site;
      visits = (if p.burst_k <= 1 then p.key_pool else max 1 (p.key_pool / p.burst_k));
      mean_dwell_s = 1.0;
      site_exponent = 1.0;
      page_exponent = p.page_exponent;
    }
  in
  let flatten site page = ((site * pages_per_site) + page) mod domain in
  (if p.burst_k <= 1 then
     Workload.generate wl rng
     |> List.map (fun v -> flatten v.Workload.site v.Workload.page)
   else
     Workload.search_bursts ~burst_k:p.burst_k wl rng
     |> List.concat_map (fun b ->
            List.map (flatten b.Workload.burst_site) b.Workload.burst_pages))
  |> Array.of_list

(* One operating point: Poisson arrivals at [lambda], Queue_sim's
   batch-service discipline, service times measured on the live stack. *)
let run_point ~clock ~fe ~keys ~batch_size ~window_s ~lambda ~queries rng =
  let arrivals = Array.make queries 0. in
  let t = ref 0. in
  let draw () = -.log (max 1e-12 (Lw_util.Det_rng.float rng 1.0)) /. lambda in
  for i = 0 to queries - 1 do
    t := !t +. draw ();
    arrivals.(i) <- !t
  done;
  let i = ref 0 in
  let pending = Queue.create () in
  let server_free = ref 0. in
  let busy = ref 0. in
  let sojourns = ref [] in
  let departures = ref [] in
  let served = ref 0 and batches = ref 0 in
  let next_key = ref 0 in
  while !i < queries || not (Queue.is_empty pending) do
    if Queue.is_empty pending then begin
      Queue.push arrivals.(!i) pending;
      incr i
    end
    else begin
      let first = Queue.peek pending in
      let rec settle () =
        let start_candidate =
          if Queue.length pending >= batch_size then Float.max !server_free first
          else Float.max !server_free (first +. window_s)
        in
        if !i < queries && arrivals.(!i) <= start_candidate then begin
          Queue.push arrivals.(!i) pending;
          incr i;
          settle ()
        end
        else start_candidate
      in
      let t_start = settle () in
      let take = min batch_size (Queue.length pending) in
      let batch = Array.init take (fun j -> keys.((!next_key + j) mod Array.length keys)) in
      next_key := (!next_key + take) mod Array.length keys;
      let _shares, service = time clock (fun () -> Lightweb.Zltp_frontend.answer_batch fe batch) in
      let t_done = t_start +. service in
      for _ = 1 to take do
        let a = Queue.pop pending in
        sojourns := (t_done -. a) :: !sojourns;
        departures := t_done :: !departures;
        incr served
      done;
      incr batches;
      busy := !busy +. service;
      server_free := t_done
    end
  done;
  let sojourns = Array.of_list !sojourns in
  let horizon = List.fold_left Float.max 0. !departures in
  (* time-average number in system from the arrival/departure event log *)
  let events =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (Array.to_list (Array.map (fun a -> (a, 1)) arrivals)
      @ List.map (fun d -> (d, -1)) !departures)
  in
  let area = ref 0. and level = ref 0 and last_t = ref 0. in
  List.iter
    (fun (te, delta) ->
      area := !area +. (float_of_int !level *. (te -. !last_t));
      last_t := te;
      level := !level + delta)
    events;
  let s = Lw_util.Stats.summarize sojourns in
  let mean_in_system = if horizon > 0. then !area /. horizon else 0. in
  let lambda_eff = if horizon > 0. then float_of_int !served /. horizon else 0. in
  ( {
      fraction = 0.;
      offered_rps = lambda;
      offered = queries;
      served = !served;
      mean_sojourn_s = s.Lw_util.Stats.mean;
      p50_s = s.Lw_util.Stats.p50;
      p99_s = s.Lw_util.Stats.p99;
      mean_batch_fill =
        (if !batches = 0 then 0. else float_of_int !served /. float_of_int !batches);
      utilization = (if !server_free > 0. then !busy /. !server_free else 0.);
      mean_in_system;
      littles_lambda_w = lambda_eff *. s.Lw_util.Stats.mean;
      queue_model_p50_s = 0.;
      queue_model_p95_s = 0.;
    },
    horizon )

let median3 clock f =
  let run () = snd (time clock f) in
  let a = run () and b = run () and c = run () in
  let xs = [| a; b; c |] in
  Array.sort Float.compare xs;
  xs.(1)

let run ?(progress = fun (_ : string) -> ()) p =
  if p.batch_size < 1 then invalid_arg "Fleet_sim.run: batch_size must be >= 1";
  if p.queries_per_point < 1 then invalid_arg "Fleet_sim.run: queries_per_point must be >= 1";
  if p.load_fractions = [] then invalid_arg "Fleet_sim.run: need at least one load fraction";
  let clock = Lw_obs.Span.clock () in
  let rng = Lw_util.Det_rng.of_string_seed p.seed in
  let drbg = Lw_crypto.Drbg.create ~seed:("fleet-sim-keys:" ^ p.seed) in
  (* the fleet: a real sharded front-end over a randomized database *)
  let db = Lw_pir.Bucket_db.create ~domain_bits:p.domain_bits ~bucket_size:p.bucket_size in
  Lw_pir.Bucket_db.fill_random db rng;
  let fe = Lightweb.Zltp_frontend.of_db db ~shard_bits:p.shard_bits in
  Lightweb.Zltp_frontend.set_scan_domains fe p.scan_domains;
  let shards = Lightweb.Zltp_frontend.shard_count fe in
  let db_bytes = (1 lsl p.domain_bits) * p.bucket_size in
  progress (Printf.sprintf "fleet: %d shards, %d KiB database" shards (db_bytes / 1024));
  (* the query mix: Zipf page popularity over the bucket domain *)
  let indices = pool_indices p rng in
  let pairs =
    Array.map (fun alpha -> Lw_dpf.Dpf.gen ~domain_bits:p.domain_bits ~alpha drbg) indices
  in
  let keys = Array.map fst pairs in
  (* The taint pragmas below acknowledge the same interprocedural
     over-approximation [test_analysis] pins down for the frontend entry
     points: a DPF key flowing into [answer]/[answer_batch] "feeds a
     branch" only because those route on PUBLIC config (scan_domains,
     tree fan-out) — and this driver is a measurement harness holding
     both parties' keys by design. *)
  (* correctness spot-check: both parties' shares must XOR to the bucket,
     through the full sharded (and possibly parallel/tree) stack *)
  let check_at i =
    let k0, k1 = pairs.(i) in
    (* lw-lint: allow taint lines=3 *)
    let share0 = Lightweb.Zltp_frontend.answer fe k0 in
    let share1 = Lightweb.Zltp_frontend.answer fe k1 in
    let got = Lw_util.Xorbuf.xor share0 share1 in
    if got <> Lightweb.Zltp_frontend.get_bucket fe indices.(i) then
      failwith "Fleet_sim: share XOR does not reconstruct the bucket"
  in
  check_at 0;
  check_at (Array.length pairs - 1);
  (* calibrate the batch service law *)
  let calib_batch n =
    Array.init n (fun j -> keys.(j mod Array.length keys))
  in
  (* lw-lint: allow taint lines=3 *)
  let batch_times =
    Array.init (max 1 p.calib_batches) (fun _ ->
        snd (time clock (fun () -> Lightweb.Zltp_frontend.answer_batch fe (calib_batch p.batch_size))))
  in
  let bstats = Lw_util.Stats.summarize batch_times in
  let service_batch_mean_s = bstats.Lw_util.Stats.mean in
  let single_batch_s =
    let ts =
      (* lw-lint: allow taint lines=2 *)
      Array.init (max 1 p.calib_batches) (fun _ ->
          snd (time clock (fun () -> Lightweb.Zltp_frontend.answer_batch fe (calib_batch 1))))
    in
    (Lw_util.Stats.summarize ts).Lw_util.Stats.mean
  in
  (* fit service(B) = scan + B·per_request to the two calibrated sizes *)
  let fitted_per_request_s =
    if p.batch_size > 1 then
      Float.max 1e-9 ((service_batch_mean_s -. single_batch_s) /. float_of_int (p.batch_size - 1))
    else Float.max 1e-9 single_batch_s
  in
  let fitted_scan_s = Float.max 0. (single_batch_s -. fitted_per_request_s) in
  let capacity_rps = float_of_int p.batch_size /. service_batch_mean_s in
  let window_s = Option.value p.batch_window_s ~default:service_batch_mean_s in
  progress
    (Printf.sprintf "calibrated: batch-%d service %.3f ms, capacity %.1f req/s" p.batch_size
       (service_batch_mean_s *. 1e3) capacity_rps);
  (* single-query latency, flat vs tree fan-out *)
  let probe = keys.(0) in
  (* lw-lint: allow taint lines=1 *)
  let direct_single_s = median3 clock (fun () -> ignore (Lightweb.Zltp_frontend.answer fe probe)) in
  Lightweb.Zltp_frontend.set_tree_fanout fe p.tree_fanout_bits;
  let tree_single_s =
    match p.tree_fanout_bits with
    | None -> direct_single_s
    (* lw-lint: allow taint lines=1 *)
    | Some _ -> median3 clock (fun () -> ignore (Lightweb.Zltp_frontend.answer fe probe))
  in
  let tree_depth = Lightweb.Zltp_frontend.tree_depth fe in
  let tree_nodes = Lightweb.Zltp_frontend.tree_nodes fe in
  Lightweb.Zltp_frontend.set_tree_fanout fe None;
  (* the operating points *)
  let points =
    List.map
      (fun fraction ->
        let lambda = Float.max 1e-6 (fraction *. capacity_rps) in
        progress (Printf.sprintf "load %.2f: %.1f req/s offered" fraction lambda);
        (* lw-lint: allow taint lines=3 *)
        let pt, _horizon =
          run_point ~clock ~fe ~keys ~batch_size:p.batch_size ~window_s ~lambda
            ~queries:p.queries_per_point rng
        in
        (* the same operating point through Queue_sim's analytic-fit model *)
        let qp =
          {
            Queue_sim.arrival_rps = lambda;
            batch_size = p.batch_size;
            batch_window_s = window_s;
            scan_s = fitted_scan_s;
            per_request_s = fitted_per_request_s;
            duration_s = float_of_int p.queries_per_point /. lambda;
          }
        in
        let qr = Queue_sim.run qp (Lw_util.Det_rng.of_string_seed (p.seed ^ "-queue-model")) in
        {
          pt with
          fraction;
          queue_model_p50_s = qr.Queue_sim.p50_latency_s;
          queue_model_p95_s = qr.Queue_sim.p95_latency_s;
        })
      p.load_fractions
  in
  (* merged per-shard latency view (Histogram merge satellite) *)
  let fleet = Lw_obs.Metrics.scratch_histogram () in
  Array.iter
    (fun h -> Lw_obs.Metrics.merge_into ~into:fleet h)
    (Lightweb.Zltp_frontend.shard_histograms fe);
  let fleet_hist = Lw_obs.Metrics.snapshot_hist fleet in
  (* straggler-tail model for the same fleet shape *)
  let tail_model =
    Latency_model.simulate ~samples:500
      {
        Latency_model.shards;
        base_shard_s = Float.max 1e-9 (direct_single_s /. float_of_int shards);
        straggler_sigma = p.straggler_sigma;
        batch_window_s = window_s;
        rtt_s = 0.;
        frontend_s = 0.;
        gets_per_page = 1;
        parallel_gets = true;
      }
      ~code_fetch:false rng
  in
  (* Cost_model Table-2 arithmetic seeded from a 1-shard microbenchmark *)
  let rem = p.domain_bits - p.shard_bits in
  let shard0_alpha = indices.(0) land ((1 lsl rem) - 1) in
  let sk, _ = Lw_dpf.Dpf.gen ~domain_bits:rem ~alpha:shard0_alpha drbg in
  (* time eval and scan phases separately on one shard-sized server *)
  let shard0 =
    let sdb = Lw_pir.Bucket_db.create ~domain_bits:rem ~bucket_size:p.bucket_size in
    Lw_pir.Bucket_db.fill_random sdb rng;
    Lw_pir.Server.create sdb
  in
  let bits, dpf_seconds = time clock (fun () -> Lw_pir.Server.eval_bits shard0 sk) in
  let _, scan_seconds = time clock (fun () -> Lw_pir.Server.scan shard0 bits) in
  let per_shard_bytes = float_of_int ((1 lsl rem) * p.bucket_size) in
  let mshard =
    Cost_model.shard_of_measurement ~shard_bytes:per_shard_bytes ~domain_bits:rem
      ~dpf_seconds:(Float.max 1e-9 dpf_seconds) ~scan_seconds:(Float.max 1e-9 scan_seconds) ()
  in
  let ds =
    {
      Cost_model.name = "fleet-sim";
      total_bytes = float_of_int db_bytes;
      pages = float_of_int (1 lsl p.domain_bits);
      avg_page_bytes = float_of_int p.bucket_size;
    }
  in
  let est =
    Cost_model.estimate ~policy:Cost_model.Storage_driven ~bucket_bytes:p.bucket_size
      ~batch:p.batch_size ds mshard Cost_model.c5_large
  in
  (* SPIR probe: the same shard data served by the single-server backend.
     Time the per-epoch hint and one masked-scan answer over a sealed
     shard-sized snapshot, and turn the answer into a per-byte
     multiply-accumulate vs XOR-scan slowdown — the measured number that
     seeds the three-way cost table's Single column. *)
  let spir_bits = min rem Lw_pir.Spir.max_domain_bits in
  let spir_snap =
    let st =
      Lw_store.create
        ~hash_key:(p.seed ^ "-spir")
        ~block_bytes:(8 * p.bucket_size) ~domain_bits:spir_bits ~bucket_size:p.bucket_size ()
    in
    let w = Lw_store.writer st in
    for i = 0 to (1 lsl spir_bits) - 1 do
      Lw_store.Writer.set w i (Printf.sprintf "spir-probe-%d" i)
    done;
    Lw_store.Writer.seal w
  in
  let hint_ser, spir_hint_s =
    time clock (fun () -> Lw_pir.Spir.hint_of_snapshot Lw_pir.Spir.default_params spir_snap)
  in
  let spir_hint =
    match Lw_pir.Spir.decode_hint hint_ser with
    | Ok h -> h
    | Error e -> failwith ("fleet-sim: SPIR hint failed to decode: " ^ e)
  in
  (* lw-lint: allow taint lines=5 *)
  let _secret, spir_query =
    Lw_pir.Spir.Client.query spir_hint ~domain_bits:spir_bits ~index:shard0_alpha drbg
  in
  let spir_answer_s =
    median3 clock (fun () -> ignore (Lw_pir.Spir.answer spir_snap spir_query))
  in
  let spir_scan_ratio =
    let spir_bytes = float_of_int ((1 lsl spir_bits) * p.bucket_size) in
    let xor_per_byte = Float.max 1e-12 (scan_seconds /. per_shard_bytes) in
    spir_answer_s /. spir_bytes /. xor_per_byte
  in
  let three_way =
    Cost_model.three_way ~policy:Cost_model.Storage_driven ~bucket_bytes:p.bucket_size
      ~batch:p.batch_size
      ~single_slowdown:(Float.max 1. spir_scan_ratio)
      ds mshard Cost_model.c5_large
  in
  let model =
    {
      model_shards = est.Cost_model.shards;
      model_request_s = mshard.Cost_model.request_seconds;
      model_latency_floor_s = est.Cost_model.latency_floor_s;
      model_vcpu_s = est.Cost_model.vcpu_seconds;
      model_request_cost_usd = est.Cost_model.request_cost_usd;
      measured_batch_service_s = service_batch_mean_s;
      measured_capacity_rps = capacity_rps;
      floor_ratio =
        (if est.Cost_model.latency_floor_s > 0. then
           service_batch_mean_s /. est.Cost_model.latency_floor_s
         else 0.);
    }
  in
  {
    shards;
    domains = p.scan_domains;
    db_bytes;
    service_batch_mean_s;
    service_batch_p99_s = bstats.Lw_util.Stats.p99;
    fitted_scan_s;
    fitted_per_request_s;
    capacity_rps;
    direct_single_s;
    tree_single_s;
    tree_depth;
    tree_nodes;
    points;
    fleet_hist;
    tail_model;
    model;
    spir_hint_s;
    spir_answer_s;
    spir_scan_ratio;
    three_way;
  }
