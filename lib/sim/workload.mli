(** Browsing-session workload generator (§3.2's leakage analysis and the
    §4 user economics): a stream of timestamped page visits with Zipf site
    popularity and per-site Zipf page popularity. *)

type visit = {
  time_s : float; (** seconds since the session start *)
  site : int;
  page : int; (** page rank within the site *)
}

type params = {
  sites : int;
  pages_per_site : int;
  visits : int;
  mean_dwell_s : float; (** mean think time between page views *)
  site_exponent : float;
  page_exponent : float;
}

val default_params : params
(** 20 sites × 200 pages, 250 visits, 90 s dwell. *)

val generate : params -> Lw_util.Det_rng.t -> visit list
(** Deterministic given the RNG; inter-arrival times are exponential with
    the given mean. *)

type burst = {
  burst_time_s : float;
  burst_site : int; (** the site whose cluster the "search" hit *)
  burst_pages : int list; (** [burst_k] page ranks, duplicates allowed *)
}
(** A correlated search burst: one cluster retrieval served as [burst_k]
    keyword fetches against a single site (see {!Retrieval}). *)

val search_bursts : burst_k:int -> params -> Lw_util.Det_rng.t -> burst list
(** One burst per visit of {!generate}: the visit's page plus
    [burst_k - 1] further draws from the same page Zipf. The resulting
    per-burst indices are correlated (one site) and may repeat —
    deliberately non-independent batch traffic. *)

val gets_per_day : Cost_model.user_profile -> float
val gets_per_month : Cost_model.user_profile -> float

val unique_sites : visit list -> int
val code_fetches : visit list -> int
(** Number of first-visits to a domain = code-blob fetches a fresh client
    would make over the session. *)
