(* A comment/string-aware token scanner for OCaml sources.

   This is not a full OCaml lexer: it produces just enough structure for
   lint rules to work on — dotted identifiers joined into one token
   ("String.equal"), keywords classified, string/char/number literals
   opaque, comments preserved (they carry the lint pragmas), and a line
   number on every token. The cursor-over-string shape follows the
   recursive-descent style used by [Lw_json.Json]; the token-stream
   organisation (base scanner + literal sub-lexers) mirrors the lexer
   split in the sdc compiler sources. *)

type kind =
  | Ident of string (* possibly dotted: "Lw_crypto.Ct.equal" *)
  | Keyword of string
  | Str (* string literal, "..." or {|...|} *)
  | Chr (* character literal *)
  | Num (* numeric literal *)
  | Op of string (* maximal run of symbol characters: "=", "<>", "->" *)
  | Comment of string (* body between (* and *), nested comments inlined *)

type token = { kind : kind; line : int }

let keywords =
  [
    "and"; "as"; "assert"; "asr"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "land"; "lazy"; "let"; "lor"; "lsl"; "lsr"; "lxor"; "match"; "method";
    "mod"; "module"; "mutable"; "new"; "nonrec"; "object"; "of"; "open"; "or";
    "private"; "rec"; "sig"; "struct"; "then"; "to"; "true"; "try"; "type";
    "val"; "virtual"; "when"; "while"; "with";
  ]

let keyword_set : (string, unit) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

let is_keyword s = Hashtbl.mem keyword_set s

type cursor = { src : string; mutable pos : int; mutable line : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let peek_at cur off =
  if cur.pos + off < String.length cur.src then Some cur.src.[cur.pos + off] else None

let advance cur =
  (match peek cur with Some '\n' -> cur.line <- cur.line + 1 | _ -> ());
  cur.pos <- cur.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let is_op_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '=' | '>'
  | '?' | '@' | '^' | '|' | '~' | ';' | ',' | '#' ->
      true
  | _ -> false

(* Consume a double-quoted string body; the opening quote has been
   consumed. An escape consumes the backslash and the next character,
   which is enough to step over escaped quotes and escaped backslashes
   (multi-character escapes lex as escape + plain characters). *)
let skip_string_body cur =
  let rec go () =
    match peek cur with
    | None -> () (* unterminated: tolerate, we are a linter *)
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with Some _ -> advance cur | None -> ());
        go ()
    | Some _ ->
        advance cur;
        go ()
  in
  go ()

(* {id|...|id} quoted string; cursor is on '{'. Returns true when it
   really was a quoted string (and consumes it), false otherwise. *)
let try_quoted_string cur =
  let n = String.length cur.src in
  let j = ref (cur.pos + 1) in
  while
    !j < n && ((cur.src.[!j] >= 'a' && cur.src.[!j] <= 'z') || cur.src.[!j] = '_')
  do
    incr j
  done;
  if !j < n && cur.src.[!j] = '|' then begin
    let delim = String.sub cur.src (cur.pos + 1) (!j - cur.pos - 1) in
    let closing = "|" ^ delim ^ "}" in
    let clen = String.length closing in
    (* move past the opening brace, delimiter, and pipe *)
    while cur.pos <= !j do
      advance cur
    done;
    let rec find () =
      if cur.pos + clen > n then () (* unterminated *)
      else if String.sub cur.src cur.pos clen = closing then
        for _ = 1 to clen do
          advance cur
        done
      else begin
        advance cur;
        find ()
      end
    in
    find ();
    true
  end
  else false

(* Character literal vs. type variable, cursor on the opening quote.
   'a' / '\n' / '\xff' are literals; 'a in [type 'a t] is not. *)
let is_char_literal cur =
  match peek_at cur 1 with
  | Some '\\' -> true
  | Some _ -> peek_at cur 2 = Some '\''
  | None -> false

let skip_char_literal cur =
  advance cur;
  (* opening ' *)
  (match peek cur with
  | Some '\\' ->
      advance cur;
      (* escape lead character *)
      (match peek cur with Some _ -> advance cur | None -> ());
      (* numeric escapes: consume up to the closing quote *)
      let rec close n =
        if n > 0 then
          match peek cur with
          | Some '\'' | None -> ()
          | Some _ ->
              advance cur;
              close (n - 1)
      in
      close 3
  | Some _ -> advance cur
  | None -> ());
  match peek cur with Some '\'' -> advance cur | _ -> ()

(* Comment body with nesting; cursor is just past the opening "(*".
   Literals inside comments are skipped exactly as the real OCaml lexer
   skips them: a "*)" inside a double-quoted string, a {|quoted|}
   string, or a character literal ('"' being the nasty case — its quote
   must not start string-skipping) never closes the comment, and an
   unbalanced quote inside a char literal cannot swallow code after the
   comment. The skipped literal text is kept in the body verbatim so
   pragma parsing still sees the whole comment. *)
let read_comment_body cur =
  let buf = Buffer.create 32 in
  let depth = ref 1 in
  let add_span start = Buffer.add_string buf (String.sub cur.src start (cur.pos - start)) in
  let rec go () =
    match peek cur with
    | None -> ()
    | Some '(' when peek_at cur 1 = Some '*' ->
        incr depth;
        Buffer.add_string buf "(*";
        advance cur;
        advance cur;
        go ()
    | Some '*' when peek_at cur 1 = Some ')' ->
        advance cur;
        advance cur;
        decr depth;
        if !depth > 0 then begin
          Buffer.add_string buf "*)";
          go ()
        end
    | Some '"' ->
        Buffer.add_char buf '"';
        advance cur;
        let start = cur.pos in
        skip_string_body cur;
        add_span start;
        go ()
    | Some '\'' when is_char_literal cur ->
        let start = cur.pos in
        skip_char_literal cur;
        add_span start;
        go ()
    | Some '{' ->
        let start = cur.pos in
        if try_quoted_string cur then add_span start
        else begin
          Buffer.add_char buf '{';
          advance cur
        end;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let read_ident cur =
  let start = cur.pos in
  while match peek cur with Some c when is_ident_char c -> true | _ -> false do
    advance cur
  done;
  let buf = Buffer.create 16 in
  Buffer.add_string buf (String.sub cur.src start (cur.pos - start));
  (* join dotted paths: Module.sub.field — but not Module.( or s.[i] *)
  let rec join () =
    match (peek cur, peek_at cur 1) with
    | Some '.', Some c when is_ident_start c ->
        advance cur;
        Buffer.add_char buf '.';
        let s = cur.pos in
        while match peek cur with Some c when is_ident_char c -> true | _ -> false do
          advance cur
        done;
        Buffer.add_string buf (String.sub cur.src s (cur.pos - s));
        join ()
    | _ -> ()
  in
  join ();
  Buffer.contents buf

let skip_number cur =
  let consume () =
    match peek cur with
    | Some c
      when is_digit c || is_ident_start c || c = '.'
           || ((c = '+' || c = '-')
              && match peek_at cur (-1) with Some ('e' | 'E') -> true | _ -> false) ->
        advance cur;
        true
    | _ -> false
  in
  while consume () do
    ()
  done

let read_op cur =
  let start = cur.pos in
  while match peek cur with Some c when is_op_char c -> true | _ -> false do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let tokenize src =
  let cur = { src; pos = 0; line = 1 } in
  let out = ref [] in
  let emit line kind = out := { kind; line } :: !out in
  let rec go () =
    match peek cur with
    | None -> ()
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance cur;
        go ()
    | Some '(' when peek_at cur 1 = Some '*' ->
        let line = cur.line in
        advance cur;
        advance cur;
        emit line (Comment (read_comment_body cur));
        go ()
    | Some '"' ->
        let line = cur.line in
        advance cur;
        skip_string_body cur;
        emit line Str;
        go ()
    | Some '{' ->
        let line = cur.line in
        if try_quoted_string cur then emit line Str
        else begin
          advance cur;
          emit line (Op "{")
        end;
        go ()
    | Some '\'' when is_char_literal cur ->
        let line = cur.line in
        skip_char_literal cur;
        emit line Chr;
        go ()
    | Some '\'' ->
        (* type variable: skip the quote and the identifier *)
        advance cur;
        while match peek cur with Some c when is_ident_char c -> true | _ -> false do
          advance cur
        done;
        go ()
    | Some c when is_digit c ->
        let line = cur.line in
        skip_number cur;
        emit line Num;
        go ()
    | Some c when is_ident_start c ->
        let line = cur.line in
        let name = read_ident cur in
        emit line (if is_keyword name then Keyword name else Ident name);
        go ()
    | Some c when is_op_char c ->
        let line = cur.line in
        emit line (Op (read_op cur));
        go ()
    | Some ('(' | ')' | '[' | ']' | '}') ->
        let line = cur.line in
        let c = cur.src.[cur.pos] in
        advance cur;
        emit line (Op (String.make 1 c));
        go ()
    | Some _ ->
        advance cur;
        go ()
  in
  go ();
  Array.of_list (List.rev !out)

(* [segments "A.B.c"] is ["A"; "B"; "c"] — rules match secret flags
   against whole names or any component (so [k.cond] still trips a rule
   on [cond]). *)
let segments name = String.split_on_char '.' name
