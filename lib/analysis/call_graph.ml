(* Per-scan function table: every top-level (or nested-module) function
   definition across the parsed files, keyed so call sites can resolve
   through the two qualification styles the repo uses — same-file bare
   names ([scan t bits] inside server.ml) and dotted paths whose last
   two segments name the defining module ([Lw_store.Snapshot.pin] or
   [Bucket_db.xor_bucket_into_masked]). Ambiguous keys resolve to
   nothing: the taint analysis treats unknown callees conservatively,
   so a collision costs precision, never soundness of the report. *)

type def = {
  d_name : string;  (* bare function name *)
  d_file : string;
  d_line : int;
  d_params : string list list;  (* one entry per parameter; tuple params bind several vars *)
  d_body : Parsetree.expression;  (* innermost body after the fun chain *)
}

type t = {
  defs : def list;
  by_qual : (string, def option) Hashtbl.t;  (* "Module.fn" -> def; None = ambiguous *)
  by_file_bare : (string * string, def option) Hashtbl.t;
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let register tbl key def =
  match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.replace tbl key (Some def)
  | Some _ -> Hashtbl.replace tbl key None

let build (files : (string * Parsetree.structure) list) =
  let defs = ref [] in
  let by_qual = Hashtbl.create 256 in
  let by_file_bare = Hashtbl.create 256 in
  let add_binding path mods (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ } ->
        let params, body = Syntax.uncurry vb.pvb_expr in
        if params <> [] then begin
          let d =
            {
              d_name = name;
              d_file = path;
              d_line = Syntax.line vb.pvb_loc;
              d_params = params;
              d_body = body;
            }
          in
          defs := d :: !defs;
          let owner =
            match mods with m :: _ -> m | [] -> module_of_path path
          in
          register by_qual (owner ^ "." ^ name) d;
          register by_file_bare (path, name) d
        end
    | _ -> ()
  in
  let rec walk path mods (items : Parsetree.structure) =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (add_binding path mods) vbs
        | Pstr_module mb -> walk_module path mods mb
        | Pstr_recmodule mbs -> List.iter (walk_module path mods) mbs
        | _ -> ())
      items
  and walk_module path mods (mb : Parsetree.module_binding) =
    match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some m, Pmod_structure s -> walk path (m :: mods) s
    | Some m, Pmod_constraint ({ pmod_desc = Pmod_structure s; _ }, _) ->
        walk path (m :: mods) s
    | _ -> ()
  in
  List.iter (fun (path, ast) -> walk path [] ast) files;
  { defs = List.rev !defs; by_qual; by_file_bare }

(* Resolve a call-site name seen in [file]. Bare names only resolve
   within the same file; dotted names resolve by their last two
   segments. *)
let resolve t ~file name =
  let find tbl key = Option.join (Hashtbl.find_opt tbl key) in
  if String.contains name '.' then find t.by_qual (Syntax.last2 name)
  else
    match find t.by_file_bare (file, name) with
    | Some d -> Some d
    | None -> find t.by_qual (module_of_path file ^ "." ^ name)
