(* Thin front-end over compiler-libs: parse a source file into a
   Parsetree and expose the handful of AST helpers the analyses share.
   The token [Lexer] stays responsible for pragmas and comments; this
   module is only about structure. Everything here targets the 5.1
   Parsetree (notably [Pexp_fun] with an explicit pattern and
   [Pexp_function] carrying a case list). *)

module SS = Set.Make (String)

let parse ~path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception e -> Error (Printexc.to_string e)

let line (l : Location.t) = l.loc_start.pos_lnum

(* [Longident.flatten] raises on functor applications; fold them away
   instead, keeping the path part we can name. *)
let name_of_lid lid =
  let rec flat acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> flat (s :: acc) l
    | Longident.Lapply (_, l) -> flat acc l
  in
  String.concat "." (flat [] lid)

let last_seg name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* "A.B.C.f" -> "C.f": call sites qualify through library aliases
   ([Lw_store.Snapshot.pin]) while definitions register under their
   innermost module, so suffix matching is done on the last two
   segments. *)
let last2 name =
  match List.rev (String.split_on_char '.' name) with
  | a :: b :: _ -> b ^ "." ^ a
  | [ a ] -> a
  | [] -> name

let rec pattern_vars (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var s -> [ s.txt ]
  | Ppat_alias (p, s) -> s.txt :: pattern_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_construct (_, Some (_, p)) -> pattern_vars p
  | Ppat_variant (_, Some p) -> pattern_vars p
  | Ppat_record (fs, _) -> List.concat_map (fun (_, p) -> pattern_vars p) fs
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p)
    ->
      pattern_vars p
  | _ -> []

(* Split a [fun a b -> body] chain into its parameter patterns (each
   parameter may bind several variables via tuples) and the innermost
   body. *)
let rec uncurry (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let ps, b = uncurry body in
      (pattern_vars pat :: ps, b)
  | Pexp_newtype (_, body) -> uncurry body
  | Pexp_constraint (e, _) -> uncurry e
  | _ -> ([], e)

let head_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident l -> Some (name_of_lid l.txt)
  | _ -> None

(* Direct sub-expressions of [e], one level deep — the default case for
   walkers that handle binding constructs explicitly. *)
let shallow_children (e : Parsetree.expression) =
  let acc = ref [] in
  let collect =
    { Ast_iterator.default_iterator with expr = (fun _ c -> acc := c :: !acc) }
  in
  Ast_iterator.default_iterator.expr collect e;
  List.rev !acc

(* Depth-first visit of every expression under [e] (including [e]). *)
let iter_exprs f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e

(* Every expression in a structure, including module-level bindings and
   nested modules. *)
let iter_structure_exprs f (str : Parsetree.structure) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

let all_idents e =
  let out = ref SS.empty in
  iter_exprs
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident l -> out := SS.add (name_of_lid l.txt) !out
      | _ -> ())
    e;
  !out

(* Simple (unqualified) identifiers of [e] that are not bound inside
   [e] itself — i.e. the names a closure captures from its environment.
   Qualified names are module-level and never a local capture. The
   default case walks children under the same bound set, which can only
   over-approximate the free set for exotic binders. *)
let free_idents (expr : Parsetree.expression) =
  let out = ref SS.empty in
  let add_vars bound p = List.fold_left (fun b v -> SS.add v b) bound (pattern_vars p) in
  let rec go bound (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } ->
        if not (SS.mem x bound) then out := SS.add x !out
    | Pexp_ident _ -> ()
    | Pexp_let (rf, vbs, body) ->
        let bound' =
          List.fold_left (fun b vb -> add_vars b vb.Parsetree.pvb_pat) bound vbs
        in
        let rhs_bound = if rf = Asttypes.Recursive then bound' else bound in
        List.iter (fun vb -> go rhs_bound vb.Parsetree.pvb_expr) vbs;
        go bound' body
    | Pexp_fun (_, dflt, pat, body) ->
        Option.iter (go bound) dflt;
        go (add_vars bound pat) body
    | Pexp_function cases -> List.iter (go_case bound) cases
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
        go bound s;
        List.iter (go_case bound) cases
    | Pexp_for (pat, lo, hi, _, body) ->
        go bound lo;
        go bound hi;
        go (add_vars bound pat) body
    | _ -> List.iter (go bound) (shallow_children e)
  and go_case bound (c : Parsetree.case) =
    let b = add_vars bound c.pc_lhs in
    Option.iter (go b) c.pc_guard;
    go b c.pc_rhs
  in
  go SS.empty expr;
  !out
