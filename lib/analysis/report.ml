(* Findings and the analyzer's report: human-readable for terminals,
   JSON (via [Lw_json]) for tooling and the bench harness. *)

type finding = { rule : string; file : string; line : int; message : string }

type t = {
  files_scanned : int;
  findings : finding list; (* unsuppressed, in file/line order *)
  suppressed : int; (* findings silenced by lw-lint pragmas *)
  baselined : int; (* findings accepted by the checked-in baseline *)
  elapsed_s : float;
}

let make ?(baselined = 0) ~files_scanned ~findings ~suppressed ~elapsed_s () =
  let ordered =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with 0 -> compare a.line b.line | c -> c)
      findings
  in
  { files_scanned; findings = ordered; suppressed; baselined; elapsed_s }

let clean t = t.findings = []

module Json = Lw_json.Json

let finding_to_json f =
  Json.Obj
    [
      ("rule", Json.String f.rule);
      ("file", Json.String f.file);
      ("line", Json.Number (float_of_int f.line));
      ("message", Json.String f.message);
    ]

let to_json t =
  Json.Obj
    [
      ("files_scanned", Json.Number (float_of_int t.files_scanned));
      ("findings", Json.List (List.map finding_to_json t.findings));
      ("finding_count", Json.Number (float_of_int (List.length t.findings)));
      ("suppressed", Json.Number (float_of_int t.suppressed));
      ("baselined", Json.Number (float_of_int t.baselined));
      ("elapsed_ms", Json.Number (t.elapsed_s *. 1000.));
    ]

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line f.rule f.message

let to_human t =
  let buf = Buffer.create 256 in
  List.iter
    (fun f -> Buffer.add_string buf (Format.asprintf "%a\n" pp_finding f))
    t.findings;
  Buffer.add_string buf
    (Printf.sprintf
       "%d file%s scanned, %d finding%s (%d suppressed, %d baselined), %.1f ms\n"
       t.files_scanned
       (if t.files_scanned = 1 then "" else "s")
       (List.length t.findings)
       (if List.length t.findings = 1 then "" else "s")
       t.suppressed t.baselined (t.elapsed_s *. 1000.));
  Buffer.contents buf
