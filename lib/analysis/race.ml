(* Race lint: mutable state captured by a closure passed to
   [Domain.spawn] must be guarded. The ROADMAP's next frontier is
   Domain-parallel shard scans; this analysis stands guard so shared
   scan state grown for that work is either [Atomic], under a [Mutex],
   or flagged.

   Shape: collect the file's let-bound mutable carriers (refs, arrays,
   bytes, hash tables, buffers — classified by the RHS constructor) and
   the file's let-bound closures, then for every [Domain.spawn f]
   resolve [f] to a body and walk it. Any read/write of a captured
   mutable binding that is not under a [Mutex.protect]/[with_lock]
   region (or between [Mutex.lock]/[unlock] in a sequence) is a
   finding. [Atomic.t] and [Mutex.t] bindings are safe by
   construction. Reads of array/bytes contents are treated like writes:
   under domains an unsynchronised read racing a write is still a data
   race in the OCaml memory model. *)

module SS = Set.Make (String)

(* RHS constructor -> what kind of mutable carrier the binding is.
   [None] = not mutable (or safely shareable). *)
let classify_rhs (e : Parsetree.expression) =
  let named n =
    let l2 = Syntax.last2 n in
    match l2 with
    | "ref" -> Some "ref cell"
    | "Array.make" | "Array.init" | "Array.create_float" | "Array.copy"
    | "Array.sub" | "Array.of_list" | "Array.append" ->
        Some "array"
    | "Bytes.create" | "Bytes.make" | "Bytes.of_string" | "Bytes.copy"
    | "Bytes.sub" ->
        Some "bytes buffer"
    | "Hashtbl.create" -> Some "hash table"
    | "Buffer.create" -> Some "buffer"
    | "Queue.create" | "Stack.create" -> Some "queue/stack"
    | "Atomic.make" | "Mutex.create" | "Semaphore.make" | "Domain.spawn" ->
        None
    | _ -> None
  in
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Syntax.head_name f with Some n -> named n | None -> None)
  | Pexp_array _ -> Some "array"
  | _ -> None

let is_safe_rhs (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Syntax.head_name f with
      | Some n -> (
          match Syntax.last2 n with
          | "Atomic.make" | "Mutex.create" | "Semaphore.make" -> true
          | _ -> false)
      | None -> false)
  | _ -> false

(* Calls that mutate (or read mutable contents of) their container
   argument: last2 name -> container position. *)
let access_calls =
  [
    ("Array.get", 0); ("Array.unsafe_get", 0); ("Array.set", 0);
    ("Array.unsafe_set", 0); ("Bytes.get", 0); ("Bytes.unsafe_get", 0);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.blit", 0);
    ("Bytes.blit", 2); ("Bytes.blit_string", 2); ("Bytes.fill", 0);
    ("Array.blit", 0); ("Array.blit", 2); ("Hashtbl.add", 0);
    ("Hashtbl.replace", 0); ("Hashtbl.remove", 0); ("Hashtbl.find", 0);
    ("Hashtbl.find_opt", 0); ("Hashtbl.mem", 0); ("Hashtbl.clear", 0);
    ("Hashtbl.reset", 0); ("Buffer.add_string", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_char", 0); ("Buffer.contents", 0); ("Buffer.clear", 0);
    ("Queue.push", 1); ("Queue.add", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Stack.push", 1); ("Stack.pop", 0);
  ]

let guard_calls = [ "Mutex.protect"; "Mutex.with_lock" ]

type binding_info = { b_desc : string; b_line : int }

let analyze_file ~path (ast : Parsetree.structure) : Report.finding list =
  let mutables : (string, binding_info) Hashtbl.t = Hashtbl.create 32 in
  let safe : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let closures : (string, Parsetree.expression) Hashtbl.t = Hashtbl.create 32 in
  (* Pass 1: index every let binding in the file (any scope — name
     collisions across scopes can only over-approximate). *)
  let index_binding (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = x; _ } -> (
        if is_safe_rhs vb.pvb_expr then Hashtbl.replace safe x ()
        else
          match classify_rhs vb.pvb_expr with
          | Some desc ->
              Hashtbl.replace mutables x
                { b_desc = desc; b_line = Syntax.line vb.pvb_loc }
          | None -> (
              match Syntax.uncurry vb.pvb_expr with
              | params, _ when params <> [] ->
                  Hashtbl.replace closures x vb.pvb_expr
              | _ -> ()))
    | _ -> ()
  in
  let index_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_let (_, vbs, _) -> List.iter index_binding vbs
    | _ -> ()
  in
  Syntax.iter_structure_exprs index_expr ast;
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter index_binding vbs
      | _ -> ())
    ast;
  (* Pass 2: find Domain.spawn call sites and walk the spawned body. *)
  let findings = ref [] in
  let report var info line =
    findings :=
      {
        Report.rule = "race";
        file = path;
        line;
        message =
          Printf.sprintf
            "mutable %s `%s` is accessed from a Domain.spawn closure without \
             an Atomic/Mutex guard"
            info.b_desc var;
      }
      :: !findings
  in
  let check_spawned_body body =
    (* names the closure captures (not rebound inside it) that alias a
       known mutable binding *)
    let captured = Syntax.free_idents body in
    let candidate x =
      (not (Hashtbl.mem safe x)) && Hashtbl.mem mutables x && SS.mem x captured
    in
    let hit x line =
      if candidate x then report x (Hashtbl.find mutables x) line
    in
    let rec walk guarded (e : Parsetree.expression) =
      let line = Syntax.line e.pexp_loc in
      match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          let arg_exprs = List.map snd args in
          match Syntax.head_name f with
          | Some n when List.mem (Syntax.last2 n) guard_calls ->
              (* everything under Mutex.protect/with_lock is guarded *)
              List.iter (walk true) arg_exprs
          | Some n -> (
              let l2 = Syntax.last2 n in
              (if not guarded then
                 match n with
                 | "!" | ":=" | "incr" | "decr" -> (
                     match arg_exprs with
                     | lhs :: _ -> (
                         match Syntax.head_name lhs with
                         | Some x when not (String.contains x '.') ->
                             hit x line
                         | _ -> ())
                     | [] -> ())
                 | _ ->
                     List.iter
                       (fun (name, pos) ->
                         if name = l2 then
                           match List.nth_opt arg_exprs pos with
                           | Some ce -> (
                               match Syntax.head_name ce with
                               | Some x when not (String.contains x '.') ->
                                   hit x line
                               | _ -> ())
                           | None -> ())
                       access_calls);
              List.iter (walk guarded) arg_exprs)
          | None ->
              walk guarded f;
              List.iter (walk guarded) arg_exprs)
      | Pexp_sequence _ ->
          (* scan the sequence spine for Mutex.lock/unlock bracketing *)
          let rec spine g (e : Parsetree.expression) =
            match e.pexp_desc with
            | Pexp_sequence (a, b) ->
                let g' = step g a in
                spine g' b
            | _ -> ignore (step g e)
          and step g (a : Parsetree.expression) =
            match a.pexp_desc with
            | Pexp_apply (f, _) -> (
                match Syntax.head_name f with
                | Some n when Syntax.last2 n = "Mutex.lock" ->
                    walk g a;
                    true
                | Some n when Syntax.last2 n = "Mutex.unlock" ->
                    walk g a;
                    false
                | _ ->
                    walk (guarded || g) a;
                    g)
            | _ ->
                walk (guarded || g) a;
                g
          in
          spine false e
      | _ -> List.iter (walk guarded) (Syntax.shallow_children e)
    in
    walk false body
  in
  Syntax.iter_structure_exprs
    (fun (e : Parsetree.expression) ->
      match e.pexp_desc with
      | Pexp_apply (f, (_, arg) :: _) -> (
          match Syntax.head_name f with
          | Some n when Syntax.last2 n = "Domain.spawn" -> (
              match Syntax.uncurry arg with
              | _ :: _, body -> check_spawned_body body
              | [], _ -> (
                  (* spawn of a named closure defined in this file *)
                  match Syntax.head_name arg with
                  | Some x -> (
                      match Hashtbl.find_opt closures x with
                      | Some fn ->
                          let _, body = Syntax.uncurry fn in
                          check_spawned_body body
                      | None -> ())
                  | None -> ()))
          | _ -> ())
      | _ -> ())
    ast;
  List.sort_uniq compare !findings
