(* Interprocedural secret-taint analysis over the Parsetree.

   Taint values are int bitsets: bits 0..15 identify "depends on
   parameter i" while summarising a function, bits 16..47 do the same
   for nested local functions, and [secret_bit] marks "derived from a
   secret" — a pragma-named identifier, a DPF key, or a per-bucket
   selection bit. Join is [lor], so everything is monotone and the
   cross-file summary fixpoint terminates.

   One evaluator serves both modes. In summary mode the emit callback
   records which parameter bits reach a sink (branch condition, memory
   index, loop bound, allocation size); in report mode it turns
   secret-bit sinks into findings. Call sites consult summaries, so
   taint survives refactors that move a branch into a helper — the
   exact blind spot of the v1 token rules. *)

module SS = Set.Make (String)

let secret_bit = 1 lsl 60
let param_mask = 0xffff

type sink = Branch | Index | Loop | Alloc

let sink_name = function
  | Branch -> "branch condition"
  | Index -> "memory index"
  | Loop -> "loop bound"
  | Alloc -> "allocation size"

type summary = {
  mutable s_ret : int;  (* bit i: param i flows into the result *)
  mutable s_const : int;  (* secret_bit if the result is secret regardless of args *)
  mutable s_sink : int;  (* bit i: param i reaches a sink in the body *)
  mutable s_kinds : (int * sink) list;  (* example sink kind per param *)
}

type local_fn = {
  l_params : string list list;
  l_ret : int;  (* 0-based param mask flowing to the result *)
  l_sink : int;
  l_kinds : (int * sink) list;
  l_cap : int;  (* taint captured from the definition environment *)
}

type entry = Val of int | Fn of local_fn

type ctx = {
  graph : Call_graph.t;
  summaries : (string, summary) Hashtbl.t;
  secret_names : SS.t;  (* per-file [lw-lint: secret] pragma names *)
  file : string;
  emit : sink -> int -> line:int -> string -> unit;
  depth : int;  (* local-fn nesting level, for param-bit allocation *)
  mutated : int ref;  (* counts [:=]-style upgrades, driving loop re-evaluation *)
}

let summary_key (d : Call_graph.def) =
  Printf.sprintf "%s:%d:%s" d.d_file d.d_line d.d_name

let find_summary ctx d =
  let key = summary_key d in
  match Hashtbl.find_opt ctx.summaries key with
  | Some s -> s
  | None ->
      let s = { s_ret = 0; s_const = 0; s_sink = 0; s_kinds = [] } in
      Hashtbl.replace ctx.summaries key s;
      s

(* ------------------------------------------------------------------ *)
(* Name tables                                                         *)
(* ------------------------------------------------------------------ *)

(* Calls whose result is public geometry even when computed from secret
   carriers: lengths, domain sizes, party indices, epochs. Matching is
   on the last segment so it covers every module's [length].
   [recover] (Spir.Client.recover) is the deliberate declassification
   boundary of the single-server PIR round trip: its output is the page
   the caller asked for, no longer the LWE secret. *)
let declassified_calls =
  SS.of_list
    [
      "length"; "domain_bits"; "value_len"; "party"; "bucket_size"; "size";
      "epoch"; "serialized_size"; "paper_key_size"; "total_bytes";
      "compare_lengths"; "ignore"; "recover";
    ]

(* Record fields that expose public geometry of an otherwise-secret
   value (a DPF key's domain, a query's party index). *)
let public_fields = declassified_calls

(* Built-in secret sources: DPF keys, per-bucket selection bits, and the
   single-server PIR client's per-query LWE secret (Spir.Client.query
   returns both the secret and the masked query vector derived from it —
   neither may reach a branch, index, loop bound or allocation size). *)
let source_calls =
  SS.of_list
    [
      "Dpf.gen"; "Dpf.eval_bit"; "Dpf.eval_value"; "Dpf.make_subkey";
      "Server.eval_bits"; "Client.query";
    ]

(* Higher-order DPF traversals: the callback's listed parameter
   positions receive secret leaf data. *)
let hof_seeds =
  [
    ("Dpf.eval_all_bits", [ 1 ]);
    ("Dpf.eval_bits_blocked", [ 1 ]);
    ("Dpf.eval_all_seeds", [ 1; 2 ]);
    ("Dpf.eval_prefixes", [ 1; 2 ]);
  ]

(* last2 name -> positions whose taint flows into a memory index. *)
let index_sinks =
  [
    ("Array.get", [ 1 ]); ("Array.unsafe_get", [ 1 ]);
    ("Array.set", [ 1 ]); ("Array.unsafe_set", [ 1 ]);
    ("Bytes.get", [ 1 ]); ("Bytes.unsafe_get", [ 1 ]);
    ("Bytes.set", [ 1 ]); ("Bytes.unsafe_set", [ 1 ]);
    ("String.get", [ 1 ]); ("String.unsafe_get", [ 1 ]);
    ("Array.sub", [ 1; 2 ]); ("Bytes.sub", [ 1; 2 ]);
    ("String.sub", [ 1; 2 ]); ("Bytes.sub_string", [ 1; 2 ]);
    ("Bytes.blit", [ 1; 3; 4 ]); ("Bytes.blit_string", [ 1; 3; 4 ]);
    ("Array.blit", [ 1; 3; 4 ]); ("Bytes.fill", [ 1; 2 ]);
  ]

(* last2 name -> positions whose taint sizes an allocation. *)
let alloc_sinks =
  [
    ("Array.make", [ 0 ]); ("Array.init", [ 0 ]);
    ("Array.create_float", [ 0 ]); ("Bytes.create", [ 0 ]);
    ("Bytes.make", [ 0 ]); ("String.make", [ 0 ]);
    ("Buffer.create", [ 0 ]); ("Hashtbl.create", [ 0 ]);
  ]

(* Writer calls: taint flowing into the container upgrades the
   container's binding, so later reads see it. fst = container arg. *)
let writer_calls =
  [
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Array.set", 0);
    ("Array.unsafe_set", 0); ("Bytes.blit", 2); ("Bytes.blit_string", 2);
    ("Array.blit", 2); ("Bytes.fill", 0); ("Hashtbl.replace", 0);
    ("Hashtbl.add", 0); ("Buffer.add_string", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_char", 0); ("Queue.push", 1); ("Queue.add", 1);
  ]

let propagate_ops =
  SS.of_list
    [
      "!"; "ref"; "&&"; "||"; "not"; "+"; "-"; "*"; "/"; "mod"; "land";
      "lor"; "lxor"; "lsl"; "lsr"; "asr"; "lnot"; "="; "<>"; "<"; ">";
      "<="; ">="; "=="; "!="; "^"; "@"; "~-"; "abs"; "min"; "max"; "succ";
      "pred"; "fst"; "snd"; "compare";
    ]

(* ------------------------------------------------------------------ *)
(* Environment: mutable table with save/restore scoping                *)
(* ------------------------------------------------------------------ *)

type env = (string, entry) Hashtbl.t

let bind (env : env) x v =
  let old = Hashtbl.find_opt env x in
  Hashtbl.replace env x v;
  (x, old)

let restore (env : env) (x, old) =
  match old with Some v -> Hashtbl.replace env x v | None -> Hashtbl.remove env x

let with_binds env pairs f =
  let saved = List.map (fun (x, v) -> bind env x v) pairs in
  Fun.protect ~finally:(fun () -> List.iter (restore env) (List.rev saved)) f

let lookup_val (env : env) x =
  match Hashtbl.find_opt env x with
  | Some (Val t) -> t
  | Some (Fn f) -> f.l_cap
  | None -> 0

(* Raise the taint of an already-bound mutable carrier (ref cell,
   Bytes/Array buffer) in place; the enclosing binding's scope restore
   still applies, so the upgrade stays local to the defining scope. *)
let upgrade ctx (env : env) x extra =
  if extra <> 0 then
    match Hashtbl.find_opt env x with
    | Some (Val old) when old lor extra <> old ->
        Hashtbl.replace env x (Val (old lor extra));
        incr ctx.mutated
    | _ -> ()

let ident_of (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | _ -> None

let secret_of_name ctx n =
  if SS.mem (Syntax.last_seg n) ctx.secret_names then secret_bit else 0

let nth_opt l n = try List.nth_opt l n with _ -> None

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

let rec eval ctx (env : env) (e : Parsetree.expression) : int =
  let sink kind t detail =
    if t <> 0 then ctx.emit kind t ~line:(Syntax.line e.pexp_loc) detail
  in
  match e.pexp_desc with
  | Pexp_ident lid ->
      let n = Syntax.name_of_lid lid.txt in
      let local =
        match lid.txt with Longident.Lident x -> lookup_val env x | _ -> 0
      in
      local lor secret_of_name ctx n
  | Pexp_constant _ -> 0
  | Pexp_let (rf, vbs, body) -> eval_let ctx env rf vbs body
  | Pexp_fun _ | Pexp_newtype _ ->
      (* A bare closure value: its taint is what it captures; the body
         is still walked so captured-secret sinks inside it report. *)
      let lf = eval_fn ctx env e in
      lf.l_cap
  | Pexp_function cases ->
      (* [function] is a one-parameter fun whose body matches on it. *)
      let lf = eval_function ctx env cases in
      lf.l_cap
  | Pexp_apply (f, args) -> eval_apply ctx env e f args
  | Pexp_match (scrut, cases) ->
      let ts = eval ctx env scrut in
      if List.length cases > 1 then sink Branch ts "match scrutinee";
      eval_cases ctx env ts cases
  | Pexp_try (b, cases) ->
      let t = eval ctx env b in
      t lor eval_cases ctx env 0 cases
  | Pexp_ifthenelse (c, t, f) ->
      let tc = eval ctx env c in
      sink Branch tc "if condition";
      (* the chosen value depends on the condition: implicit flow *)
      tc lor eval ctx env t
      lor (match f with Some f -> eval ctx env f | None -> 0)
  | Pexp_while (c, b) ->
      let tc = eval ctx env c in
      sink Loop tc "while condition";
      eval_loop_body ctx env b;
      ignore (eval ctx env c);
      0
  | Pexp_for (pat, lo, hi, _, b) ->
      let t = eval ctx env lo lor eval ctx env hi in
      sink Loop t "for-loop bound";
      let binds = List.map (fun v -> (v, Val t)) (Syntax.pattern_vars pat) in
      with_binds env binds (fun () -> eval_loop_body ctx env b);
      0
  | Pexp_sequence (a, b) ->
      ignore (eval ctx env a);
      eval ctx env b
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun acc e -> acc lor eval ctx env e) 0 es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      (match arg with Some a -> eval ctx env a | None -> 0)
  | Pexp_record (fs, base) ->
      let t = List.fold_left (fun acc (_, e) -> acc lor eval ctx env e) 0 fs in
      t lor (match base with Some b -> eval ctx env b | None -> 0)
  | Pexp_field (b, lid) ->
      let seg = Syntax.last_seg (Syntax.name_of_lid lid.txt) in
      let base = if SS.mem seg public_fields then 0 else eval ctx env b in
      base lor (if SS.mem seg ctx.secret_names then secret_bit else 0)
  | Pexp_setfield (r, _, v) ->
      ignore (eval ctx env r);
      ignore (eval ctx env v);
      0
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_poly (e, _)
  | Pexp_open (_, e) | Pexp_lazy e | Pexp_send (e, _) ->
      eval ctx env e
  | Pexp_assert e ->
      let t = eval ctx env e in
      sink Branch t "assert condition";
      0
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
      eval ctx env body
  | Pexp_letop { let_; ands; body } ->
      let t0 = eval ctx env let_.pbop_exp in
      let t =
        List.fold_left (fun acc a -> acc lor eval ctx env a.Parsetree.pbop_exp) t0 ands
      in
      let vars =
        List.concat_map
          (fun p -> Syntax.pattern_vars p)
          (let_.pbop_pat :: List.map (fun a -> a.Parsetree.pbop_pat) ands)
      in
      with_binds env (List.map (fun v -> (v, Val t)) vars) (fun () ->
          eval ctx env body)
  | Pexp_extension _ -> 0
  | _ ->
      List.fold_left
        (fun acc c -> acc lor eval ctx env c)
        0 (Syntax.shallow_children e)

and eval_cases ctx env scrut_taint cases =
  List.fold_left
    (fun acc (c : Parsetree.case) ->
      let binds =
        List.map (fun v -> (v, Val scrut_taint)) (Syntax.pattern_vars c.pc_lhs)
      in
      with_binds env binds (fun () ->
          (match c.pc_guard with
          | Some g ->
              let tg = eval ctx env g in
              if tg <> 0 then
                ctx.emit Branch tg ~line:(Syntax.line g.pexp_loc) "match guard"
          | None -> ());
          acc lor eval ctx env c.pc_rhs))
    0 cases

(* Summarise a closure: pass 1 walks the body under the definition
   environment (parameters bound to nothing) to report captured-secret
   sinks and compute the captured result taint; pass 2 re-walks it with
   fresh per-parameter bits, recording only which parameters reach
   sinks or the result — its emit forwards nothing, so nothing is
   double-reported. *)
and eval_loop_body ctx env b =
  (* Loop bodies run more than once: a [:=] late in the body can feed a
     read earlier in the next iteration.  Re-evaluate once whenever the
     first pass upgraded a mutable binding, so loop-carried taint
     reaches every use on the second pass. *)
  let before = !(ctx.mutated) in
  ignore (eval ctx env b);
  if !(ctx.mutated) <> before then ignore (eval ctx env b)

and eval_fn ctx env e =
  let params, body = Syntax.uncurry e in
  if params = [] then
    (* constraint/newtype chain with no actual fun: treat as value *)
    { l_params = []; l_ret = 0; l_sink = 0; l_kinds = []; l_cap = eval ctx env body }
  else summarize_fn ctx env params body

and eval_function ctx env cases =
  (* one implicit parameter, matched immediately *)
  let param = [ "*match*" ] in
  let body_of bit =
    (* evaluate the cases with the implicit param's taint as scrutinee *)
    fun ctx env -> eval_cases ctx env bit cases
  in
  summarize_body ctx env [ param ]
    ~n_cases:(List.length cases)
    (fun ctx env bit -> (body_of bit) ctx env)

and summarize_fn ctx env params body =
  summarize_body ctx env params ~n_cases:1 (fun ctx env _bit ->
      eval ctx env body)

and summarize_body ctx env params ~n_cases run =
  let zero_binds =
    List.concat_map (fun vars -> List.map (fun v -> (v, Val 0)) vars) params
  in
  (* pass 1: captured-taint report under the outer environment *)
  let l_cap = with_binds env zero_binds (fun () -> run ctx env 0) in
  (* pass 2: per-parameter bits, recording summaries only *)
  let depth = ctx.depth + 1 in
  if depth > 3 then { l_params = params; l_ret = 0; l_sink = 0; l_kinds = []; l_cap }
  else begin
    let base = 16 * depth in
    let sink_bits = ref 0 and kinds = ref [] in
    let emit kind bits ~line:_ _detail =
      let local = (bits lsr base) land param_mask in
      if local <> 0 then begin
        sink_bits := !sink_bits lor local;
        for i = 0 to 15 do
          if local land (1 lsl i) <> 0 && not (List.mem_assoc i !kinds) then
            kinds := (i, kind) :: !kinds
        done
      end
    in
    let ctx' = { ctx with emit; depth } in
    let bit_binds =
      List.concat_map
        (fun (i, vars) ->
          List.map (fun v -> (v, Val (if i < 16 then 1 lsl (base + i) else 0))) vars)
        (List.mapi (fun i vars -> (i, vars)) params)
    in
    let ret =
      with_binds env bit_binds (fun () ->
          run ctx' env (if n_cases > 1 then 1 lsl base else 0))
    in
    (* a [function] with several cases branches on its own parameter *)
    let sinks =
      if n_cases > 1 then begin
        if not (List.mem_assoc 0 !kinds) then kinds := (0, Branch) :: !kinds;
        !sink_bits lor 1
      end
      else !sink_bits
    in
    {
      l_params = params;
      l_ret = (ret lsr base) land param_mask;
      l_sink = sinks;
      l_kinds = !kinds;
      l_cap;
    }
  end

and eval_let ctx env rf vbs body =
  (* let-bound functions get an on-the-fly summary (recursive ones see
     a provisional empty summary, then one refinement round); other
     bindings give every bound variable the RHS taint *)
  let pairs =
    List.concat_map
      (fun (vb : Parsetree.value_binding) ->
        match (vb.pvb_pat.ppat_desc, Syntax.uncurry vb.pvb_expr) with
        | Ppat_var { txt = x; _ }, (params, _) when params <> [] ->
            let lf =
              if rf = Asttypes.Recursive then begin
                let provisional =
                  Fn { l_params = params; l_ret = 0; l_sink = 0; l_kinds = []; l_cap = 0 }
                in
                let saved = bind env x provisional in
                let lf1 = eval_fn ctx env vb.pvb_expr in
                Hashtbl.replace env x (Fn lf1);
                let lf2 = eval_fn ctx env vb.pvb_expr in
                restore env saved;
                lf2
              end
              else eval_fn ctx env vb.pvb_expr
            in
            [ (x, Fn lf) ]
        | _ ->
            let t = eval ctx env vb.pvb_expr in
            List.map (fun v -> (v, Val t)) (Syntax.pattern_vars vb.pvb_pat))
      vbs
  in
  with_binds env pairs (fun () -> eval ctx env body)

and eval_apply ctx env e f args =
  let line = Syntax.line e.pexp_loc in
  let arg_exprs = List.map snd args in
  match Syntax.head_name f with
  | Some "@@" -> (
      match arg_exprs with
      | [ g; x ] -> eval_apply ctx env e g [ (Asttypes.Nolabel, x) ]
      | _ -> eval_unknown ctx env f args)
  | Some "|>" -> (
      match arg_exprs with
      | [ x; g ] -> eval_apply ctx env e g [ (Asttypes.Nolabel, x) ]
      | _ -> eval_unknown ctx env f args)
  | Some ":=" -> (
      match arg_exprs with
      | [ lhs; rhs ] ->
          let t = eval ctx env rhs lor eval ctx env lhs in
          (match ident_of lhs with
          | Some x -> upgrade ctx env x t
          | None -> ());
          0
      | _ -> eval_unknown ctx env f args)
  | Some name -> (
      let seg = Syntax.last_seg name and l2 = Syntax.last2 name in
      (* a bare call inside the defining module (e.g. [eval_all_bits]
         within dpf.ml) also matches its qualified table entry *)
      let keys =
        if String.contains name '.' then [ l2 ]
        else [ l2; Call_graph.module_of_path ctx.file ^ "." ^ name ]
      in
      if SS.mem seg declassified_calls then begin
        List.iter (fun a -> ignore (eval ctx env a)) arg_exprs;
        0
      end
      else if List.exists (fun k -> SS.mem k source_calls) keys then begin
        let t = List.fold_left (fun acc a -> acc lor eval ctx env a) 0 arg_exprs in
        t lor secret_bit
      end
      else
        match List.find_map (fun k -> List.assoc_opt k hof_seeds) keys with
        | Some positions -> eval_hof ctx env ~line name positions args
        | None -> (
            let taints = List.map (eval ctx env) arg_exprs in
            let all = List.fold_left ( lor ) 0 taints in
            (* sink tables *)
            let check table kind what =
              match List.assoc_opt l2 table with
              | None -> false
              | Some ps ->
                  List.iter
                    (fun p ->
                      match nth_opt taints p with
                      | Some t when t <> 0 ->
                          ctx.emit kind t ~line
                            (Printf.sprintf "%s argument %d of %s" what p name)
                      | _ -> ())
                    ps;
                  true
            in
            let is_index = check index_sinks Index "index" in
            let is_alloc = check alloc_sinks Alloc "size" in
            (* container writes upgrade the written binding *)
            (match List.assoc_opt l2 writer_calls with
            | Some cpos -> (
                match nth_opt arg_exprs cpos with
                | Some ce -> (
                    match ident_of ce with
                    | Some x -> upgrade ctx env x all
                    | None -> ())
                | None -> ())
            | None -> ());
            if is_index || is_alloc then all
            else if SS.mem seg propagate_ops then all
            else
              (* summary-based call *)
              match resolve_callee ctx env name with
              | Some (params_n, ret_mask, const, sink_mask, kinds, cap, label) ->
                  List.iteri
                    (fun i t ->
                      if i < params_n && t <> 0 && sink_mask land (1 lsl i) <> 0
                      then
                        let kind =
                          match List.assoc_opt i kinds with
                          | Some k -> k
                          | None -> Branch
                        in
                        ctx.emit kind t ~line
                          (Printf.sprintf
                             "argument %d of %s, which feeds a %s inside it" i
                             label (sink_name kind)))
                    taints;
                  let ret =
                    List.fold_left
                      (fun acc (i, t) ->
                        if i < params_n && ret_mask land (1 lsl i) <> 0 then
                          acc lor t
                        else acc)
                      0
                      (List.mapi (fun i t -> (i, t)) taints)
                  in
                  ret lor const lor cap
              | None -> all))
  | None ->
      (* computed callee: evaluate it (walking closure bodies), then
         propagate everything *)
      eval_unknown ctx env f args

and eval_unknown ctx env f args =
  let tf = eval ctx env f in
  List.fold_left (fun acc (_, a) -> acc lor eval ctx env a) tf args

(* A DPF traversal: the trailing callback receives secret leaf data in
   the listed positions. Literal closures are evaluated with those
   parameters seeded; named callbacks are checked via their summary. *)
and eval_hof ctx env ~line _name positions args =
  let arg_exprs = List.map snd args in
  match List.rev arg_exprs with
  | [] -> 0
  | cb :: rest ->
      List.iter (fun a -> ignore (eval ctx env a)) (List.rev rest);
      (match Syntax.uncurry cb with
      | params, body when params <> [] ->
          let binds =
            List.concat_map
              (fun (i, vars) ->
                let t = if List.mem i positions then secret_bit else 0 in
                List.map (fun v -> (v, Val t)) vars)
              (List.mapi (fun i vars -> (i, vars)) params)
          in
          with_binds env binds (fun () -> ignore (eval ctx env body))
      | _ -> (
          (* named callback: consult its summary *)
          match Syntax.head_name cb with
          | Some cb_name -> (
              match resolve_callee ctx env cb_name with
              | Some (params_n, _, _, sink_mask, kinds, _, label) ->
                  List.iter
                    (fun p ->
                      if p < params_n && sink_mask land (1 lsl p) <> 0 then
                        let kind =
                          match List.assoc_opt p kinds with
                          | Some k -> k
                          | None -> Branch
                        in
                        ctx.emit kind secret_bit ~line
                          (Printf.sprintf
                             "DPF leaf data reaches a %s inside callback %s"
                             (sink_name kind) label))
                    positions
              | None -> ())
          | None -> ignore (eval ctx env cb)));
      0

(* Resolve a callee to (n_params, ret_mask, const, sink_mask, kinds,
   captured, label): local let-bound functions first, then the global
   table. *)
and resolve_callee ctx env name :
    (int * int * int * int * (int * sink) list * int * string) option =
  let local =
    if String.contains name '.' then None
    else
      match Hashtbl.find_opt env name with
      | Some (Fn lf) ->
          Some
            ( List.length lf.l_params,
              lf.l_ret,
              0,
              lf.l_sink,
              lf.l_kinds,
              lf.l_cap,
              name )
      | _ -> None
  in
  match local with
  | Some _ -> local
  | None -> (
      match Call_graph.resolve ctx.graph ~file:ctx.file name with
      | Some d ->
          let s = find_summary ctx d in
          Some
            ( List.length d.d_params,
              s.s_ret,
              s.s_const,
              s.s_sink,
              s.s_kinds,
              0,
              d.d_name )
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

type input = { i_path : string; i_ast : Parsetree.structure; i_secrets : SS.t }

let null_emit _ _ ~line:_ _ = ()

(* Cross-file summary fixpoint: recompute every definition's summary
   until nothing grows. All updates are [lor]-monotone over a finite
   bit domain, so this terminates; the round cap is a safety net. *)
let compute_summaries graph (inputs : input list) =
  let summaries = Hashtbl.create 256 in
  let secrets_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace tbl i.i_path i.i_secrets) inputs;
    fun path -> Option.value (Hashtbl.find_opt tbl path) ~default:SS.empty
  in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (d : Call_graph.def) ->
        let s =
          match Hashtbl.find_opt summaries (summary_key d) with
          | Some s -> s
          | None ->
              let s = { s_ret = 0; s_const = 0; s_sink = 0; s_kinds = [] } in
              Hashtbl.replace summaries (summary_key d) s;
              s
        in
        let sink_bits = ref 0 and kinds = ref [] in
        let emit kind bits ~line:_ _ =
          let p = bits land param_mask in
          if p <> 0 then begin
            sink_bits := !sink_bits lor p;
            for i = 0 to 15 do
              if p land (1 lsl i) <> 0 && not (List.mem_assoc i !kinds) then
                kinds := (i, kind) :: !kinds
            done
          end
        in
        let ctx =
          {
            graph;
            summaries;
            secret_names = secrets_of d.d_file;
            file = d.d_file;
            emit;
            depth = 0;
            mutated = ref 0;
          }
        in
        let env = Hashtbl.create 16 in
        List.iteri
          (fun i vars ->
            List.iter
              (fun v ->
                Hashtbl.replace env v (Val (if i < 16 then 1 lsl i else 0)))
              vars)
          d.d_params;
        let ret = ref (eval ctx env d.d_body) in
        let new_ret = s.s_ret lor (!ret land param_mask) in
        let new_const = s.s_const lor (!ret land secret_bit) in
        let new_sink = s.s_sink lor !sink_bits in
        if new_ret <> s.s_ret || new_const <> s.s_const || new_sink <> s.s_sink
        then begin
          s.s_ret <- new_ret;
          s.s_const <- new_const;
          s.s_sink <- new_sink;
          changed := true
        end;
        List.iter
          (fun (i, k) ->
            if not (List.mem_assoc i s.s_kinds) then
              s.s_kinds <- (i, k) :: s.s_kinds)
          !kinds)
      graph.Call_graph.defs
  done;
  summaries

(* Report mode: walk each file's module-level bindings in order with a
   persistent environment, turning secret-bit sink events into
   findings. *)
let analyze (inputs : input list) : Report.finding list =
  let graph = Call_graph.build (List.map (fun i -> (i.i_path, i.i_ast)) inputs) in
  let summaries = compute_summaries graph inputs in
  let findings = ref [] in
  let analyze_file (i : input) =
    let emit kind bits ~line detail =
      if bits land secret_bit <> 0 then
        findings :=
          {
            Report.rule = "taint";
            file = i.i_path;
            line;
            message =
              Printf.sprintf "secret-tainted value reaches %s (%s)"
                (sink_name kind) detail;
          }
          :: !findings
    in
    let ctx =
      {
        graph;
        summaries;
        secret_names = i.i_secrets;
        file = i.i_path;
        emit;
        depth = 0;
        mutated = ref 0;
      }
    in
    let env = Hashtbl.create 64 in
    let rec walk_items items =
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (rf, vbs) ->
              (* persist module-level bindings: later items see them *)
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  match (vb.pvb_pat.ppat_desc, Syntax.uncurry vb.pvb_expr) with
                  | Ppat_var { txt = x; _ }, (params, _) when params <> [] ->
                      let lf =
                        if rf = Asttypes.Recursive then begin
                          let saved =
                            bind env x
                              (Fn
                                 {
                                   l_params = params;
                                   l_ret = 0;
                                   l_sink = 0;
                                   l_kinds = [];
                                   l_cap = 0;
                                 })
                          in
                          let lf1 = eval_fn ctx env vb.pvb_expr in
                          Hashtbl.replace env x (Fn lf1);
                          let lf2 = eval_fn ctx env vb.pvb_expr in
                          ignore saved;
                          lf2
                        end
                        else eval_fn ctx env vb.pvb_expr
                      in
                      Hashtbl.replace env x (Fn lf)
                  | _ ->
                      let t = eval ctx env vb.pvb_expr in
                      List.iter
                        (fun v -> Hashtbl.replace env v (Val t))
                        (Syntax.pattern_vars vb.pvb_pat))
                vbs
          | Pstr_eval (e, _) -> ignore (eval ctx env e)
          | Pstr_module mb -> (
              match mb.pmb_expr.pmod_desc with
              | Pmod_structure s -> walk_items s
              | Pmod_constraint ({ pmod_desc = Pmod_structure s; _ }, _) ->
                  walk_items s
              | _ -> ())
          | Pstr_recmodule mbs ->
              List.iter
                (fun (mb : Parsetree.module_binding) ->
                  match mb.pmb_expr.pmod_desc with
                  | Pmod_structure s -> walk_items s
                  | _ -> ())
                mbs
          | _ -> ())
        items
    in
    walk_items i.i_ast
  in
  List.iter analyze_file inputs;
  List.sort_uniq compare !findings
