(* The dynamic half of the analysis pass: drive the two ZLTP backends
   with pairs of distinct secret keys and assert that the observable
   access traces have identical shape. This turns the obliviousness
   spot-checks scattered through test_oram.ml into a reusable checker
   any test (or future PR) can call with its own keys.

   "Shape" means what an adversary watching memory can count: trace
   length and, for the enclave, that every entry is a valid leaf of the
   same tree. The concrete leaves/buckets are expected to differ — they
   are (pseudo)random — so equality of the values themselves is exactly
   what we must NOT require.

   [check_retry] extends the same discipline to the network: a retried
   private-GET must look like a brand-new query on the wire (fresh DPF
   keys, fresh correlation id, identical frame shape). *)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Enclave ORAM                                                        *)
(* ------------------------------------------------------------------ *)

(* One enclave per probe key, identically populated, so each trace is
   the trace of a fresh deployment serving only that key's workload. *)
let enclave_trace ~capacity ~value_size ~fill ~gets key =
  let e = Lw_oram.Enclave.create ~seed:"trace-check" ~capacity ~value_size () in
  for i = 0 to fill - 1 do
    match Lw_oram.Enclave.put e ~key:(Printf.sprintf "page-%d" i) ~value:"v" with
    | Ok () -> ()
    | Error _ -> invalid_arg "Trace_check: fill exceeds enclave capacity"
  done;
  Lw_oram.Enclave.clear_trace e;
  for _ = 1 to gets do
    ignore (Lw_oram.Enclave.get e key)
  done;
  (Lw_oram.Enclave.observed_trace e, Lw_oram.Enclave.accesses_per_get e)

let check_enclave ?(capacity = 32) ?(value_size = 64) ?(fill = 10) ?(gets = 6)
    ?(keys = [ "page-1"; "page-7"; "no-such-key.example" ]) () =
  if List.length keys < 2 then err "check_enclave: need at least 2 distinct keys"
  else begin
    let traces = List.map (enclave_trace ~capacity ~value_size ~fill ~gets) keys in
    let lengths = List.map (fun (t, _) -> List.length t) traces in
    match lengths with
    | [] -> err "check_enclave: no traces"
    | first :: rest ->
        if List.exists (fun l -> l <> first) rest then
          err "enclave trace lengths differ across keys: [%s]"
            (String.concat "; " (List.map string_of_int lengths))
        else if first <> gets then
          err "enclave trace has %d accesses for %d gets: op count leaks" first gets
        else begin
          (* every logged entry must be a leaf of the same tree: a trace
             that wandered outside the leaf range would be distinguishable *)
          let leaf_bound =
            match traces with (_, per_get) :: _ -> 1 lsl (per_get - 1) | [] -> 0
          in
          let bad =
            List.concat_map
              (fun ((t, _), key) ->
                List.filter_map
                  (fun leaf ->
                    if leaf < 0 || leaf >= leaf_bound then Some (key, leaf) else None)
                  t)
              (List.combine traces keys)
          in
          match bad with
          | [] -> Ok ()
          | (key, leaf) :: _ -> err "enclave trace for %S left the leaf range: %d" key leaf
        end
  end

(* ------------------------------------------------------------------ *)
(* Bucket_db linear scan (PIR mode)                                    *)
(* ------------------------------------------------------------------ *)

(* For each secret index, generate the DPF share pair and run both
   servers' scans with tracing on. The masked scan must touch buckets
   [0..size) in order for every key and both parties. *)
let scan_traces ~domain_bits ~bucket_size alpha =
  let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (Lw_util.Det_rng.of_string_seed "trace-check-db");
  let server = Lw_pir.Server.create db in
  let rng = Lw_crypto.Drbg.create ~seed:"trace-check-dpf" in
  let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits ~alpha rng in
  List.map
    (fun k ->
      Lw_pir.Bucket_db.set_tracing db true;
      ignore (Lw_pir.Server.answer server k);
      let t = Lw_pir.Bucket_db.access_trace db in
      Lw_pir.Bucket_db.set_tracing db false;
      t)
    [ k0; k1 ]

let check_bucket_scan ?(domain_bits = 6) ?(bucket_size = 32) ?(alphas = [ 3; 47 ]) () =
  if List.length alphas < 2 then err "check_bucket_scan: need at least 2 distinct keys"
  else begin
    let expected = List.init (1 lsl domain_bits) Fun.id in
    let failures =
      List.concat_map
        (fun alpha ->
          List.concat_map
            (* the checker's whole job is to branch on whether the
               key-derived trace matches the public full walk; this runs
               in tests, never on an answer path *)
            (* lw-lint: allow taint lines=2 *)
            (fun trace -> if trace = expected then [] else [ alpha ])
            (scan_traces ~domain_bits ~bucket_size alpha))
        alphas
    in
    (* lw-lint: allow taint *)
    match failures with
    | [] -> Ok ()
    | alpha :: _ ->
        err "bucket scan trace for alpha=%d is not the full in-order walk" alpha
  end

(* ------------------------------------------------------------------ *)
(* Bit-packed batch scan (PIR mode)                                    *)
(* ------------------------------------------------------------------ *)

(* The batched kernel streams the database in blocks, revisiting each
   block once per 8-query pack; the observable per-bucket trace is the
   same deterministic block walk whatever the secret indices are. Drive
   [answer_batch] with several distinct batches of secrets (both key
   shares of each) and assert (1) the traces are identical across
   batches and parties, and (2) every bucket appears exactly once per
   pack — i.e. coverage is full and no bucket's visit count correlates
   with any query's target. *)
let batch_scan_traces ~domain_bits ~bucket_size alphas =
  let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (Lw_util.Det_rng.of_string_seed "trace-check-db");
  let server = Lw_pir.Server.create db in
  let rng = Lw_crypto.Drbg.create ~seed:"trace-check-dpf" in
  let pairs = List.map (fun alpha -> Lw_dpf.Dpf.gen ~domain_bits ~alpha rng) alphas in
  List.map
    (fun party ->
      let keys =
        Array.of_list (List.map (fun (k0, k1) -> if party = 0 then k0 else k1) pairs)
      in
      Lw_pir.Bucket_db.set_tracing db true;
      ignore (Lw_pir.Server.answer_batch server keys);
      let t = Lw_pir.Bucket_db.access_trace db in
      Lw_pir.Bucket_db.set_tracing db false;
      t)
    [ 0; 1 ]

let check_batch_scan ?(domain_bits = 5) ?(bucket_size = 24)
    ?(batches = [ [ 3; 9; 17; 28; 5 ]; [ 1; 2; 30; 31; 16 ] ]) () =
  let widths = List.sort_uniq compare (List.map List.length batches) in
  match widths with
  | [] -> err "check_batch_scan: need at least one batch"
  | _ :: _ :: _ ->
      (* trace shape legitimately depends on the (public) batch width, so
         probing obliviousness requires same-width batches *)
      err "check_batch_scan: batches must share one width"
  | [ width ] when width < 2 || List.length batches < 2 ->
      err "check_batch_scan: need >= 2 batches of >= 2 queries"
  | [ width ] -> (
      let n_packs = (width + 7) / 8 in
      let size = 1 lsl domain_bits in
      let traces =
        List.concat_map (batch_scan_traces ~domain_bits ~bucket_size) batches
      in
      match traces with
      | [] -> err "check_batch_scan: no traces"
      | first :: rest ->
          if List.exists (fun t -> t <> first) rest then
            err "batch scan trace depends on the secret indices"
          else begin
            let counts = Array.make size 0 in
            let oob = ref None in
            List.iter
              (fun i ->
                if i < 0 || i >= size then oob := Some i else counts.(i) <- counts.(i) + 1)
              first;
            match !oob with
            | Some i -> err "batch scan trace left the bucket range: %d" i
            | None ->
                let bad = ref None in
                Array.iteri (fun i c -> if c <> n_packs && !bad = None then bad := Some (i, c)) counts;
                (match !bad with
                | Some (i, c) ->
                    err
                      "batch scan visited bucket %d %d times (expected once per pack, %d)"
                      i c n_packs
                | None -> Ok ())
          end)

(* ------------------------------------------------------------------ *)
(* Domain-partitioned scan (PIR mode)                                  *)
(* ------------------------------------------------------------------ *)

(* The parallel scan splits the bucket range into 2^levels aligned
   partitions and rebases the key per partition. Each partition's kernel
   still walks its sub-range front to back, so on the deterministic
   serial schedule ([answer_partitioned], ascending partition order) the
   observable trace must be exactly the full in-order walk — the same
   shape the single-threaded scan leaves. Anything else (a skipped
   bucket, a partition whose walk depends on the secret index) would
   hand a memory adversary a distinguisher; the real multi-domain path
   runs the identical per-partition kernels, only interleaved by the
   scheduler, so per-worker traces inherit this shape. The answer must
   also stay bit-identical to the serial scan. *)
let partitioned_scan_traces ~domain_bits ~bucket_size ~partitions alpha =
  let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (Lw_util.Det_rng.of_string_seed "trace-check-db");
  let server = Lw_pir.Server.create db in
  let rng = Lw_crypto.Drbg.create ~seed:"trace-check-dpf" in
  let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits ~alpha rng in
  List.map
    (fun k ->
      let serial = Lw_pir.Server.answer server k in
      Lw_pir.Bucket_db.set_tracing db true;
      let share = Lw_pir.Server.answer_partitioned ~partitions server k in
      let t = Lw_pir.Bucket_db.access_trace db in
      Lw_pir.Bucket_db.set_tracing db false;
      (t, String.equal share serial))
    [ k0; k1 ]

let check_partitioned_scan ?(domain_bits = 6) ?(bucket_size = 32)
    ?(partition_counts = [ 2; 4; 8 ]) ?(alphas = [ 3; 47 ]) () =
  if List.length alphas < 2 then err "check_partitioned_scan: need >= 2 distinct keys"
  else begin
    let expected = List.init (1 lsl domain_bits) Fun.id in
    let rec check = function
      | [] -> Ok ()
      | (partitions, alpha) :: rest ->
          let probes =
            partitioned_scan_traces ~domain_bits ~bucket_size ~partitions alpha
          in
          (* same taint-lint situation as [check_bucket_scan]: comparing a
             key-derived trace against the public walk is this checker's
             entire purpose *)
          (* lw-lint: allow taint lines=10 *)
          let bad_trace = List.exists (fun (t, _) -> t <> expected) probes in
          let bad_share = List.exists (fun (_, ok) -> not ok) probes in
          if bad_trace then
            err
              "partitioned scan trace (partitions=%d, alpha=%d) is not the full \
               in-order walk"
              partitions alpha
          else if bad_share then
            err "partitioned answer (partitions=%d, alpha=%d) differs from serial"
              partitions alpha
          else check rest
    in
    check
      (List.concat_map (fun p -> List.map (fun a -> (p, a)) alphas) partition_counts)
  end

(* ------------------------------------------------------------------ *)
(* CoW snapshot scan vs. flat Bucket_db                                *)
(* ------------------------------------------------------------------ *)

(* The epoch engine must be invisible to a trace adversary: a scan over
   a snapshot assembled from several copy-on-write epochs (some blocks
   freshly copied, some shared with older epochs) has to touch exactly
   the same buckets in exactly the same order as a scan over a flat
   database with the same bytes — and return the same share. Build both
   representations of one logical database, mutating across two sealed
   epochs so the snapshot genuinely mixes shared and copied blocks, and
   compare traces and answers for both DPF parties. *)
let check_snapshot_scan ?(domain_bits = 6) ?(bucket_size = 32) ?(alphas = [ 5; 42 ]) () =
  let size = 1 lsl domain_bits in
  let bucket i gen = Printf.sprintf "bucket-%d-gen%d" i gen in
  (* flat reference *)
  let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
  for i = 0 to size - 1 do
    Lw_pir.Bucket_db.set db i (bucket i 0)
  done;
  (* epoch 1: same full fill; small blocks so the domain spans many CoW
     blocks and the second epoch leaves most of them shared *)
  let st =
    Lw_store.create ~block_bytes:(8 * bucket_size) ~domain_bits ~bucket_size ()
  in
  let w1 = Lw_store.writer st in
  for i = 0 to size - 1 do
    Lw_store.Writer.set w1 i (bucket i 0)
  done;
  ignore (Lw_store.Writer.seal w1);
  (* epoch 2: sparse churn, mirrored into the flat db *)
  let w2 = Lw_store.writer st in
  let rec churn i =
    if i < size then begin
      Lw_pir.Bucket_db.set db i (bucket i 1);
      Lw_store.Writer.set w2 i (bucket i 1);
      churn (i + 9)
    end
  in
  churn 3;
  let snap = Lw_store.Writer.seal w2 in
  let flat_server = Lw_pir.Server.create db in
  let snap_server = Lw_pir.Server.of_snapshot snap in
  let rng = Lw_crypto.Drbg.create ~seed:"trace-check-snapshot" in
  let expected_trace = List.init size Fun.id in
  let rec check_alphas = function
    | [] -> Ok ()
    | alpha :: rest ->
        let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits ~alpha rng in
        let rec check_keys = function
          | [] -> check_alphas rest
          | k :: more ->
              Lw_pir.Bucket_db.set_tracing db true;
              let flat_share = Lw_pir.Server.answer flat_server k in
              let flat_trace = Lw_pir.Bucket_db.access_trace db in
              Lw_pir.Bucket_db.set_tracing db false;
              Lw_store.Snapshot.set_tracing snap true;
              let snap_share = Lw_pir.Server.answer snap_server k in
              let snap_trace = Lw_store.Snapshot.access_trace snap in
              Lw_store.Snapshot.set_tracing snap false;
              if not (String.equal flat_share snap_share) then
                err "snapshot share differs from flat share for alpha=%d" alpha
              else if flat_trace <> expected_trace then
                err "flat scan trace for alpha=%d is not the full in-order walk" alpha
              else if snap_trace <> expected_trace then
                err
                  "CoW snapshot scan trace for alpha=%d differs from the flat walk: \
                   the epoch engine leaks"
                  alpha
              else check_keys more
        in
        check_keys [ k0; k1 ]
  in
  check_alphas alphas

(* ------------------------------------------------------------------ *)
(* Single-server PIR scan (Single mode)                                *)
(* ------------------------------------------------------------------ *)

(* The LWE answer path promises the same observable shape as the
   two-server XOR scan: one pass over every bucket in index order,
   whatever column the masked query selects. Build a two-epoch CoW
   store (so the snapshot mixes shared and copied blocks, like
   [check_snapshot_scan]), issue queries for several distinct secret
   indices, and assert that every scan trace is exactly the public
   full walk — and that each query still recovers its bucket's bytes,
   so the checker can't pass vacuously on a broken scan. *)
let check_spir_scan ?(domain_bits = 6) ?(bucket_size = 32) ?(indices = [ 5; 42 ]) () =
  let size = 1 lsl domain_bits in
  let bucket i gen = Printf.sprintf "bucket-%d-gen%d" i gen in
  let st =
    Lw_store.create ~hash_key:"trace-check-spir" ~block_bytes:(8 * bucket_size)
      ~domain_bits ~bucket_size ()
  in
  let w1 = Lw_store.writer st in
  for i = 0 to size - 1 do
    Lw_store.Writer.set w1 i (bucket i 0)
  done;
  ignore (Lw_store.Writer.seal w1);
  let w2 = Lw_store.writer st in
  let rec churn i =
    if i < size then begin
      Lw_store.Writer.set w2 i (bucket i 1);
      churn (i + 9)
    end
  in
  churn 3;
  let snap = Lw_store.Writer.seal w2 in
  match Lw_pir.Spir.decode_hint (Lw_pir.Spir.hint_of_snapshot Lw_pir.Spir.default_params snap) with
  | Error e -> err "spir hint round trip failed: %s" e
  | Ok hint ->
      let rng = Lw_crypto.Drbg.create ~seed:"trace-check-spir-query" in
      let expected_trace = List.init size Fun.id in
      let rec check_indices = function
        | [] -> Ok ()
        | index :: rest -> (
            let expected_page = Lw_store.Snapshot.get snap index in
            let secret, query = Lw_pir.Spir.Client.query hint ~domain_bits ~index rng in
            Lw_store.Snapshot.set_tracing snap true;
            (* feeding a secret-derived query into the server path (and
               branching on what comes back) is this checker's entire
               purpose, like every probe above *)
            (* lw-lint: allow taint lines=14 *)
            let answered = Lw_pir.Spir.answer snap query in
            let trace = Lw_store.Snapshot.access_trace snap in
            Lw_store.Snapshot.set_tracing snap false;
            match answered with
            | Error e -> err "spir answer failed for index=%d: %s" index e
            | Ok answer ->
                if trace <> expected_trace then
                  err
                    "SPIR scan trace for index=%d is not the full in-order walk: \
                     the masked query leaks"
                    index
                else (
                  match Lw_pir.Spir.Client.recover hint secret answer with
                  | Error e -> err "spir recovery failed for index=%d: %s" index e
                  | Ok page ->
                      if not (String.equal page expected_page) then
                        err "spir recovered wrong bytes for index=%d" index
                      else check_indices rest))
      in
      check_indices indices

(* ------------------------------------------------------------------ *)
(* Privacy-preserving retry (ZLTP client)                              *)
(* ------------------------------------------------------------------ *)

(* The self-healing client promises that a retried private-GET is
   indistinguishable on the wire from a brand-new query: fresh DPF keys,
   fresh correlation id, identical frame shape. Check it dynamically:
   run the same GET against a replica set where the preferred replica of
   one role swallows its first answer (forcing a timeout, failover and
   retry), record every frame the client sends, and compare against a
   fault-free control run. *)

let tap log (ep : Lw_net.Endpoint.t) =
  {
    Lw_net.Endpoint.send =
      (fun m ->
        log := `Send m :: !log;
        ep.Lw_net.Endpoint.send m);
    recv =
      (fun () ->
        let m = ep.Lw_net.Endpoint.recv () in
        log := `Recv m :: !log;
        m);
    close = ep.Lw_net.Endpoint.close;
  }

let sent_pir_queries log =
  List.rev !log
  |> List.filter_map (function
       | `Recv _ -> None
       | `Send frame -> (
           match Lightweb.Zltp_wire.decode_client frame with
           | Ok (Lightweb.Zltp_wire.Pir_query { qid; epoch = _; dpf_key }) ->
               Some (qid, dpf_key, String.length frame)
           | _ -> None))

let check_retry ?(domain_bits = 6) ?(bucket_size = 32) ?(alpha = 13) () =
  let open Lightweb in
  let seed_db = "trace-check-retry-db" in
  let make_db () =
    let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
    Lw_pir.Bucket_db.fill_random db (Lw_util.Det_rng.of_string_seed seed_db);
    db
  in
  let expected = Lw_pir.Bucket_db.get (make_db ()) alpha in
  let run ~faulted =
    let log0 = ref [] and log1 = ref [] in
    let clock = Lw_obs.Clock.virtual_ () in
    let replica_of ~log ~schedule name =
      Zltp_client.replica ~name (fun () ->
          let srv =
            Zltp_server.create ~server_id:name ~blob_size:bucket_size
              (Zltp_backend.flat (Lw_pir.Server.create (make_db ())))
          in
          let ep, _ = Lw_net.Faulty.wrap ~clock schedule (Zltp_server.endpoint srv) in
          Ok (tap log ep))
    in
    (* on the faulted run, replica a0 swallows its first Answer (recv
       ordinal 2: after Health_reply and Welcome), so the client times
       out, fails over to a1 and retries *)
    let a0_schedule =
      if faulted then Lw_net.Faulty.of_plan ~recv:[ (2, Lw_net.Faulty.Drop) ] ()
      else Lw_net.Faulty.none
    in
    let roles =
      [
        [
          replica_of ~log:log0 ~schedule:a0_schedule "a0";
          replica_of ~log:log0 ~schedule:Lw_net.Faulty.none "a1";
        ];
        [ replica_of ~log:log1 ~schedule:Lw_net.Faulty.none "b0" ];
      ]
    in
    let rng =
      Lw_crypto.Drbg.create ~seed:(if faulted then "retry-faulted" else "retry-control")
    in
    match Zltp_client.connect_replicated ~rng ~clock roles with
    | Error e -> Error (Printf.sprintf "connect failed: %s" e)
    | Ok client ->
        let result = Zltp_client.get_raw_index client alpha in
        let stats = (Zltp_client.retries client, Zltp_client.failovers client) in
        Zltp_client.close client;
        Ok (result, sent_pir_queries log0, sent_pir_queries log1, stats)
  in
  match (run ~faulted:false, run ~faulted:true) with
  | Error e, _ -> err "control run: %s" e
  | _, Error e -> err "faulted run: %s" e
  | Ok (res_c, q0_c, q1_c, (retries_c, _)), Ok (res_f, q0_f, q1_f, (retries_f, failovers_f))
    -> (
      let check_value label = function
        | Error e -> err "%s run failed: %s" label e
        | Ok v when not (String.equal v expected) -> err "%s run returned wrong bytes" label
        | Ok _ -> Ok ()
      in
      match (check_value "control" res_c, check_value "faulted" res_f) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok (), Ok () ->
          if retries_c <> 0 then err "control run retried %d times" retries_c
          else if retries_f <> 1 then err "faulted run retried %d times, wanted 1" retries_f
          else if failovers_f <> 1 then
            err "faulted run failed over %d times, wanted 1" failovers_f
          else if List.length q0_c <> 1 || List.length q1_c <> 1 then
            err "control run sent %d+%d queries, wanted 1+1" (List.length q0_c)
              (List.length q1_c)
          else if List.length q0_f <> 2 || List.length q1_f <> 2 then
            err "faulted run sent %d+%d queries, wanted 2+2 (retry on both roles)"
              (List.length q0_f) (List.length q1_f)
          else begin
            let all = q0_c @ q1_c @ q0_f @ q1_f in
            let sizes = List.sort_uniq compare (List.map (fun (_, _, n) -> n) all) in
            let keys = List.map (fun (_, k, _) -> k) all in
            let distinct_keys = List.sort_uniq compare keys in
            let qids run = List.sort_uniq compare (List.map (fun (q, _, _) -> q) run) in
            if List.length sizes <> 1 then
              err "retried query frames differ in size: a retry is distinguishable"
            else if List.length distinct_keys <> List.length keys then
              err "a DPF key was reused across attempts: retries must use fresh keys"
            else if List.length (qids q0_f) <> 2 then
              err "faulted run reused a correlation id across attempts"
            else Ok ()
          end)

let check_all () =
  match check_enclave () with
  | Error _ as e -> e
  | Ok () -> (
      match check_bucket_scan () with
      | Error _ as e -> e
      | Ok () -> (
          match check_batch_scan () with
          | Error _ as e -> e
          | Ok () -> (
              match check_partitioned_scan () with
              | Error _ as e -> e
              | Ok () -> (
                  match check_snapshot_scan () with
                  | Error _ as e -> e
                  | Ok () -> (
                      match check_spir_scan () with
                      | Error _ as e -> e
                      | Ok () -> check_retry ())))))
