(* The dynamic half of the analysis pass: drive the two ZLTP backends
   with pairs of distinct secret keys and assert that the observable
   access traces have identical shape. This turns the obliviousness
   spot-checks scattered through test_oram.ml into a reusable checker
   any test (or future PR) can call with its own keys.

   "Shape" means what an adversary watching memory can count: trace
   length and, for the enclave, that every entry is a valid leaf of the
   same tree. The concrete leaves/buckets are expected to differ — they
   are (pseudo)random — so equality of the values themselves is exactly
   what we must NOT require. *)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Enclave ORAM                                                        *)
(* ------------------------------------------------------------------ *)

(* One enclave per probe key, identically populated, so each trace is
   the trace of a fresh deployment serving only that key's workload. *)
let enclave_trace ~capacity ~value_size ~fill ~gets key =
  let e = Lw_oram.Enclave.create ~seed:"trace-check" ~capacity ~value_size () in
  for i = 0 to fill - 1 do
    match Lw_oram.Enclave.put e ~key:(Printf.sprintf "page-%d" i) ~value:"v" with
    | Ok () -> ()
    | Error _ -> invalid_arg "Trace_check: fill exceeds enclave capacity"
  done;
  Lw_oram.Enclave.clear_trace e;
  for _ = 1 to gets do
    ignore (Lw_oram.Enclave.get e key)
  done;
  (Lw_oram.Enclave.observed_trace e, Lw_oram.Enclave.accesses_per_get e)

let check_enclave ?(capacity = 32) ?(value_size = 64) ?(fill = 10) ?(gets = 6)
    ?(keys = [ "page-1"; "page-7"; "no-such-key.example" ]) () =
  if List.length keys < 2 then err "check_enclave: need at least 2 distinct keys"
  else begin
    let traces = List.map (enclave_trace ~capacity ~value_size ~fill ~gets) keys in
    let lengths = List.map (fun (t, _) -> List.length t) traces in
    match lengths with
    | [] -> err "check_enclave: no traces"
    | first :: rest ->
        if List.exists (fun l -> l <> first) rest then
          err "enclave trace lengths differ across keys: [%s]"
            (String.concat "; " (List.map string_of_int lengths))
        else if first <> gets then
          err "enclave trace has %d accesses for %d gets: op count leaks" first gets
        else begin
          (* every logged entry must be a leaf of the same tree: a trace
             that wandered outside the leaf range would be distinguishable *)
          let leaf_bound =
            match traces with (_, per_get) :: _ -> 1 lsl (per_get - 1) | [] -> 0
          in
          let bad =
            List.concat_map
              (fun ((t, _), key) ->
                List.filter_map
                  (fun leaf ->
                    if leaf < 0 || leaf >= leaf_bound then Some (key, leaf) else None)
                  t)
              (List.combine traces keys)
          in
          match bad with
          | [] -> Ok ()
          | (key, leaf) :: _ -> err "enclave trace for %S left the leaf range: %d" key leaf
        end
  end

(* ------------------------------------------------------------------ *)
(* Bucket_db linear scan (PIR mode)                                    *)
(* ------------------------------------------------------------------ *)

(* For each secret index, generate the DPF share pair and run both
   servers' scans with tracing on. The masked scan must touch buckets
   [0..size) in order for every key and both parties. *)
let scan_traces ~domain_bits ~bucket_size alpha =
  let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (Lw_util.Det_rng.of_string_seed "trace-check-db");
  let server = Lw_pir.Server.create db in
  let rng = Lw_crypto.Drbg.create ~seed:"trace-check-dpf" in
  let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits ~alpha rng in
  List.map
    (fun k ->
      Lw_pir.Bucket_db.set_tracing db true;
      ignore (Lw_pir.Server.answer server k);
      let t = Lw_pir.Bucket_db.access_trace db in
      Lw_pir.Bucket_db.set_tracing db false;
      t)
    [ k0; k1 ]

let check_bucket_scan ?(domain_bits = 6) ?(bucket_size = 32) ?(alphas = [ 3; 47 ]) () =
  if List.length alphas < 2 then err "check_bucket_scan: need at least 2 distinct keys"
  else begin
    let expected = List.init (1 lsl domain_bits) Fun.id in
    let failures =
      List.concat_map
        (fun alpha ->
          List.concat_map
            (fun trace -> if trace = expected then [] else [ alpha ])
            (scan_traces ~domain_bits ~bucket_size alpha))
        alphas
    in
    match failures with
    | [] -> Ok ()
    | alpha :: _ ->
        err "bucket scan trace for alpha=%d is not the full in-order walk" alpha
  end

(* ------------------------------------------------------------------ *)

let check_all () =
  match check_enclave () with
  | Error _ as e -> e
  | Ok () -> check_bucket_scan ()
