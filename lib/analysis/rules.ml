(* The lint rule set. Each rule is keyed to a claim row in SECURITY.md:
   the analyzer enforces mechanically what the threat model promises in
   prose. Rules work on the token stream from [Lexer]; none of them
   parse types, so secret-value rules are driven by explicit per-file
   flags: [(* lw-lint: secret name ... *)] marks identifiers whose
   timing must not depend on control flow. *)

type context = {
  path : string; (* as given on the command line / in tests *)
  path_segments : string list;
  basename : string;
  secrets : (string, unit) Hashtbl.t; (* from "lw-lint: secret" pragmas *)
}

type t = {
  name : string;
  doc : string;
  applies : context -> bool;
  check : context -> Lexer.token array -> Report.finding list;
}

let has_segment ctx s = List.mem s ctx.path_segments
let in_lib ctx = has_segment ctx "lib"

let in_sensitive ctx =
  in_lib ctx && (has_segment ctx "crypto" || has_segment ctx "dpf" || has_segment ctx "oram")

(* An identifier is secret-flagged when its full dotted name or any
   component is flagged, so [k.cond] trips a flag on [cond]. *)
let is_secret ctx name =
  Hashtbl.mem ctx.secrets name
  || List.exists (Hashtbl.mem ctx.secrets) (Lexer.segments name)

let finding ctx rule line message = { Report.rule; file = ctx.path; line; message }

let matches_any name ~exact ~prefixes =
  List.mem name exact || List.exists (fun p -> String.starts_with ~prefix:p name) prefixes

(* Generic "these identifiers are banned here" scan. *)
let banned_ident_check ~exact ~prefixes ~msg rule_name ctx tokens =
  Array.to_list tokens
  |> List.filter_map (fun { Lexer.kind; line } ->
         match kind with
         | Lexer.Ident name when matches_any name ~exact ~prefixes ->
             Some (finding ctx rule_name line (msg name))
         | _ -> None)

(* [let x = ...] and record fields ([{ f = ...; g = ... }], [{ r with
   f = ... }]) are binders, not comparisons — walk back over the binding
   head (identifiers, literals, label punctuation) to tell an [=] used
   for binding from one used as an operator. *)
let is_binder tokens i =
  let rec back j =
    if j < 0 || i - j > 40 then false
    else
      match tokens.(j).Lexer.kind with
      | Lexer.Keyword ("let" | "and" | "rec" | "val" | "external" | "method"
                      | "type" | "module" | "with") ->
          true
      | Lexer.Op ("{" | ";") -> true
      | Lexer.Ident _ | Lexer.Num | Lexer.Str | Lexer.Chr | Lexer.Comment _
      | Lexer.Op (":" | "," | "~" | "?" | "." | "*") ->
          back (j - 1)
      | _ -> false
  in
  back (i - 1)

(* ------------------------------------------------------------------ *)
(* Rule 1: constant-time comparisons in crypto/dpf/oram.               *)
(* ------------------------------------------------------------------ *)

let variable_time_compares =
  [
    "String.equal"; "Bytes.equal"; "String.compare"; "Bytes.compare";
    "Stdlib.compare"; "compare"; "Digest.equal"; "Digest.compare";
  ]

let ct_equality =
  {
    name = "ct-equality";
    doc =
      "lib/{crypto,dpf,oram} must compare with Ct.equal: library equality \
       short-circuits on the first differing byte";
    applies = in_sensitive;
    check =
      (fun ctx tokens ->
        let named =
          banned_ident_check ~exact:variable_time_compares ~prefixes:[]
            ~msg:(fun name ->
              Printf.sprintf
                "variable-time comparison %s in a constant-time module; use Ct.equal"
                name)
            "ct-equality" ctx tokens
        in
        (* polymorphic =/<> on a secret-flagged identifier: a token-level
           scanner cannot type arbitrary operands, but it can see a flagged
           name right next to the operator. *)
        let ops = ref [] in
        Array.iteri
          (fun i { Lexer.kind; line } ->
            match kind with
            | Lexer.Op ("=" | "<>") when not (is_binder tokens i) ->
                let neighbor j =
                  if j >= 0 && j < Array.length tokens then
                    match tokens.(j).Lexer.kind with
                    | Lexer.Ident n when is_secret ctx n -> Some n
                    | _ -> None
                  else None
                in
                (match (neighbor (i - 1), neighbor (i + 1)) with
                | Some n, _ | None, Some n ->
                    ops :=
                      finding ctx "ct-equality" line
                        (Printf.sprintf
                           "polymorphic comparison on secret-flagged %S; use Ct.equal" n)
                      :: !ops
                | None, None -> ())
            | _ -> ())
          tokens;
        named @ List.rev !ops);
  }

(* ------------------------------------------------------------------ *)
(* Rule 1b: no polymorphic compare on structured data in the stores.   *)
(* ------------------------------------------------------------------ *)

(* Born from a real bug: [Lw_pir.Store.insert] tested a lookup result
   with [prior = None], i.e. polymorphic equality on an option. That
   works until the payload type grows something incomparable (a closure,
   an abstract block) or gets expensive to deep-compare — exactly what
   happened when buckets moved behind the epoch engine. In lib/pir and
   lib/store the rule is: [Option.is_none]/[Option.is_some] for option
   tests, typed [equal] functions otherwise. A token scanner cannot see
   types, so it flags the two shapes that cover the bug class: a bare
   polymorphic [compare], and [=]/[<>] with a [None]/[Some] constructor
   on either side. *)
let poly_compare =
  {
    name = "poly-compare";
    doc =
      "lib/{pir,store} must not use polymorphic compare or =/<> against \
       None/Some: use Option.is_none/is_some or a typed equal";
    applies = (fun ctx -> in_lib ctx && (has_segment ctx "pir" || has_segment ctx "store"));
    check =
      (fun ctx tokens ->
        let named =
          banned_ident_check ~exact:[ "compare"; "Stdlib.compare" ] ~prefixes:[]
            ~msg:(fun name ->
              Printf.sprintf
                "polymorphic %s in a store module; use a typed compare function" name)
            "poly-compare" ctx tokens
        in
        let out = ref [] in
        Array.iteri
          (fun i { Lexer.kind; line } ->
            match kind with
            | Lexer.Op ("=" | "<>") when not (is_binder tokens i) ->
                let constructor j =
                  if j >= 0 && j < Array.length tokens then
                    match tokens.(j).Lexer.kind with
                    | Lexer.Ident (("None" | "Some") as n) -> Some n
                    | _ -> None
                  else None
                in
                (match (constructor (i - 1), constructor (i + 1)) with
                | Some n, _ | None, Some n ->
                    out :=
                      finding ctx "poly-compare" line
                        (Printf.sprintf
                           "polymorphic comparison against %s; use \
                            Option.is_none/Option.is_some"
                           n)
                      :: !out
                | None, None -> ())
            | _ -> ())
          tokens;
        named @ List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* Rule 2: no secret-dependent branching.                              *)
(* ------------------------------------------------------------------ *)

(* Collect the condition span of an [if]/[match] starting at index [i]:
   tokens up to the matching [then]/[with], counting nested openers so an
   inner if consumes its own closer. *)
let condition_span tokens i opener closer =
  let n = Array.length tokens in
  let stop = min n (i + 2000) in
  let rec go j pending acc =
    if j >= stop then List.rev acc
    else
      match tokens.(j).Lexer.kind with
      | Lexer.Keyword k when k = opener -> go (j + 1) (pending + 1) acc
      | Lexer.Keyword k when k = closer ->
          if pending = 1 then List.rev acc else go (j + 1) (pending - 1) acc
      | _ -> go (j + 1) pending (tokens.(j) :: acc)
  in
  go (i + 1) 1 []

let secret_branch =
  {
    name = "secret-branch";
    doc =
      "no if/match on secret-flagged values: branch direction is visible to a \
       timing/trace adversary";
    (* fires only where a file flags secrets, so it costs nothing elsewhere *)
    applies = (fun ctx -> Hashtbl.length ctx.secrets > 0);
    check =
      (fun ctx tokens ->
        let out = ref [] in
        Array.iteri
          (fun i { Lexer.kind; line } ->
            let scan opener closer construct =
              let span = condition_span tokens i opener closer in
              let hits =
                List.filter_map
                  (fun t ->
                    match t.Lexer.kind with
                    | Lexer.Ident n when is_secret ctx n -> Some n
                    | _ -> None)
                  span
              in
              match hits with
              | [] -> ()
              | n :: _ ->
                  out :=
                    finding ctx "secret-branch" line
                      (Printf.sprintf "%s scrutinises secret-flagged %S" construct n)
                    :: !out
            in
            match kind with
            | Lexer.Keyword "if" -> scan "if" "then" "if-condition"
            | Lexer.Keyword "match" -> scan "match" "with" "match-scrutinee"
            | _ -> ())
          tokens;
        List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* Rule 3: determinism in lib/.                                        *)
(* ------------------------------------------------------------------ *)

let nondeterminism =
  {
    name = "nondeterminism";
    doc =
      "lib/ code must draw randomness/time through Det_rng or Drbg so behaviour \
       is reproducible and auditable";
    applies =
      (fun ctx ->
        in_lib ctx && ctx.basename <> "det_rng.ml" && ctx.basename <> "drbg.ml");
    check =
      banned_ident_check
        ~exact:
          [
            "Random"; "Unix.time"; "Unix.gettimeofday"; "Sys.time"; "Unix.gmtime";
            "Unix.localtime";
          ]
        ~prefixes:[ "Random."; "Stdlib.Random." ]
        ~msg:(fun name ->
          Printf.sprintf "nondeterministic source %s; route through Det_rng/Drbg" name)
        "nondeterminism";
  }

(* ------------------------------------------------------------------ *)
(* Rule 3b: all wall-clock reads go through the observability clock.   *)
(* ------------------------------------------------------------------ *)

(* Stricter cousin of [nondeterminism], born with lw_obs: inside lib/
   the only legitimate wall-clock reader is [Lw_obs.Clock.real] (plus
   the system-entropy seeding in drbg.ml and the deterministic RNG),
   so telemetry cannot fork timing behaviour away from the virtual
   clocks that tests and the chaos harness install. Unlike the pragma
   sprinkle this replaced, an exemption here is structural (the obs
   layer itself), not per-call-site. *)
let raw_timestamp =
  {
    name = "raw-timestamp";
    doc =
      "lib/ code must read time via Lw_obs.Clock (Span.clock ()); raw \
       Unix.gettimeofday is reserved to lib/obs so virtual clocks stay in \
       charge everywhere else";
    applies =
      (fun ctx ->
        in_lib ctx && not (has_segment ctx "obs")
        && ctx.basename <> "det_rng.ml" && ctx.basename <> "drbg.ml");
    check =
      banned_ident_check
        ~exact:[ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]
        ~prefixes:[]
        ~msg:(fun name ->
          Printf.sprintf
            "raw timestamp %s; use Lw_obs.Clock.now (Lw_obs.Span.clock ()) so \
             virtual clocks drive it in tests"
            name)
        "raw-timestamp";
  }

(* ------------------------------------------------------------------ *)
(* Rule 4: no printing from crypto modules.                            *)
(* ------------------------------------------------------------------ *)

let key_print =
  {
    name = "key-print";
    doc =
      "crypto modules must not write to the console: the only strings they hold \
       are keys and plaintext (pure sprintf is fine)";
    applies = (fun ctx -> in_lib ctx && has_segment ctx "crypto");
    check =
      banned_ident_check
        ~exact:
          [
            "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
            "print_string"; "print_endline"; "print_newline"; "print_char";
            "print_bytes"; "print_int"; "print_float"; "prerr_string";
            "prerr_endline"; "prerr_newline";
          ]
        ~prefixes:[]
        ~msg:(fun name -> Printf.sprintf "console output %s from a crypto module" name)
        "key-print";
  }

(* ------------------------------------------------------------------ *)
(* Rule 5: graceful degradation on server request paths.               *)
(* ------------------------------------------------------------------ *)

let server_request_files =
  [ "server.ml"; "zltp_server.ml"; "zltp_frontend.ml"; "zltp_batch.ml"; "endpoint.ml" ]

let server_abort =
  {
    name = "server-abort";
    doc =
      "server request paths answer bad input with typed errors, never failwith/exit: \
       one hostile query must not take the process down";
    applies = (fun ctx -> List.mem ctx.basename server_request_files);
    check =
      banned_ident_check
        ~exact:[ "failwith"; "Stdlib.failwith"; "exit"; "Stdlib.exit" ]
        ~prefixes:[]
        ~msg:(fun name ->
          Printf.sprintf "%s on a server request path; return a typed error" name)
        "server-abort";
  }

(* ------------------------------------------------------------------ *)
(* Rule 6: no unbounded waits on protocol request paths.               *)
(* ------------------------------------------------------------------ *)

(* A request path that can block forever turns one lost message into a
   hung client (or a leaked server thread). Sleeps must go through the
   Clock abstraction (virtual in tests, jittered-backoff in the client)
   and every endpoint [recv] must either run under a transport deadline
   or carry an explicit [lw-lint: allow unbounded-wait] waiver stating
   why blocking is correct there. *)
let unbounded_wait =
  {
    name = "unbounded-wait";
    doc =
      "lib/core request paths must not block forever: no bare \
       Unix.sleep/Thread.delay, and every endpoint recv needs a deadline \
       or an explicit waiver";
    applies = (fun ctx -> in_lib ctx && has_segment ctx "core");
    check =
      (fun ctx tokens ->
        Array.to_list tokens
        |> List.filter_map (fun { Lexer.kind; line } ->
               match kind with
               | Lexer.Ident name
                 when matches_any name
                        ~exact:
                          [ "Unix.sleep"; "Unix.sleepf"; "Thread.delay"; "Unix.select" ]
                        ~prefixes:[] ->
                   Some
                     (finding ctx "unbounded-wait" line
                        (Printf.sprintf
                           "bare wait %s on a request path; route sleeps through Clock"
                           name))
               | Lexer.Ident name
                 when (match List.rev (Lexer.segments name) with
                      | "recv" :: _ :: _ -> true
                      | _ -> false) ->
                   Some
                     (finding ctx "unbounded-wait" line
                        (Printf.sprintf
                           "endpoint receive %s without a visible deadline; ensure the \
                            transport enforces one or waive explicitly"
                           name))
               | _ -> None));
  }

(* ------------------------------------------------------------------ *)
(* Rule 7: process management is the cluster supervisor's monopoly.    *)
(* ------------------------------------------------------------------ *)

(* Spawning, reaping and signalling OS processes carries the same
   footgun profile as raw timestamps: done ad hoc it forks zombies,
   races waitpid against other reapers, and bypasses the restart /
   circuit-breaker bookkeeping the supervisor maintains. So, mirroring
   [raw-timestamp]'s "only lib/obs reads the wall clock", only
   lib/cluster may touch the process API — everything else asks the
   supervisor. *)
let process_hygiene =
  {
    name = "process-hygiene";
    doc =
      "process lifecycle calls (create_process/fork/waitpid/kill/...) are \
       reserved to lib/cluster: the supervisor owns spawning, reaping and \
       signalling so restarts and crash-loop accounting stay coherent";
    applies = (fun ctx -> not (has_segment ctx "cluster"));
    check =
      banned_ident_check
        ~exact:
          [
            "Unix.fork"; "Unix.wait"; "Unix.waitpid"; "Unix.kill"; "Unix.system";
            "Sys.command";
          ]
        ~prefixes:[ "Unix.create_process"; "Unix.execv"; "Unix.open_process" ]
        ~msg:(fun name ->
          Printf.sprintf
            "process management call %s outside lib/cluster; route process \
             lifecycle through the cluster supervisor"
            name)
        "process-hygiene";
  }

let all =
  [
    ct_equality; poly_compare; secret_branch; nondeterminism; raw_timestamp; key_print;
    server_abort; unbounded_wait; process_hygiene;
  ]

let by_name name = List.find_opt (fun r -> r.name = name) all
