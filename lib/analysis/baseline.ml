(* Checked-in lint baseline: accepted findings that must not block CI,
   stored one per line as `rule<TAB>path<TAB>message`. Entries carry no
   line numbers — the key is (rule, normalized path, message) — so the
   baseline survives unrelated line churn; a finding whose message
   changes is a new finding and must be fixed or re-accepted
   deliberately.

   Paths are normalized to start at a known repo root (lib/, bin/,
   bench/, test/) so the same baseline matches scans run from the
   source tree, from dune's _build sandbox, or with ../-style
   prefixes. *)

let roots = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let normalize_path p =
  let segs =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' p)
  in
  let rec find = function
    | [] -> None
    | s :: _ as l when List.mem s roots -> Some l
    | _ :: rest -> find rest
  in
  match find segs with
  | Some l -> String.concat "/" l
  | None -> String.concat "/" (List.filter (fun s -> s <> "..") segs)

type entry = { b_rule : string; b_file : string; b_message : string }

let key_of_finding (f : Report.finding) =
  (f.rule, normalize_path f.file, f.message)

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char '\t' line with
    | rule :: file :: rest when rest <> [] ->
        Some
          {
            b_rule = rule;
            b_file = normalize_path file;
            b_message = String.concat "\t" rest;
          }
    | _ -> None

let load path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let entries = ref [] in
          (try
             while true do
               match parse_line (input_line ic) with
               | Some e -> entries := e :: !entries
               | None -> ()
             done
           with End_of_file -> ());
          List.rev !entries)

(* Split findings into (fresh, accepted-count) against the baseline. *)
let apply entries findings =
  let set = Hashtbl.create (List.length entries * 2 + 1) in
  List.iter
    (fun e -> Hashtbl.replace set (e.b_rule, e.b_file, e.b_message) ())
    entries;
  let fresh, accepted =
    List.partition
      (fun f -> not (Hashtbl.mem set (key_of_finding f)))
      findings
  in
  (fresh, List.length accepted)

let save path findings =
  let lines =
    List.sort_uniq compare
      (List.map
         (fun (f : Report.finding) ->
           Printf.sprintf "%s\t%s\t%s" f.rule (normalize_path f.file) f.message)
         findings)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "# lw_lint baseline: accepted findings (rule<TAB>file<TAB>message).\n\
         # Regenerate with `dune exec bin/lw_lint.exe -- --write-baseline`;\n\
         # review the diff — a new entry is a deliberate acceptance.\n";
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines)
