(* The lint driver: walks OCaml sources, runs the token-lexer rules and
   the AST analyses (taint, race, balance), and honours the in-source
   pragmas:

     (* lw-lint: allow <rule> ... *)          suppress the named rules on
                                              the pragma's line and the
                                              next line
     (* lw-lint: allow <rule> ... lines=N *)  widen the reach to the
                                              pragma's line plus the next
                                              N lines, for multi-line
                                              expressions
     (* lw-lint: secret <name> ... *)         flag identifiers as secret
                                              for this file (lexer rules
                                              and the taint analysis)

   The default one-line reach of [allow] keeps suppressions next to the
   code they excuse; [lines=N] exists so a single waiver can cover one
   multi-line expression without a pragma per line, and N is capped so a
   pragma can never silently waive a whole file. *)

let pragma_prefix = "lw-lint:"
let max_allow_lines = 100

type pragmas = {
  allows : (int * string, unit) Hashtbl.t; (* (line, rule) -> suppressed *)
  secrets : (string, unit) Hashtbl.t;
}

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

let collect_pragmas tokens =
  let p = { allows = Hashtbl.create 8; secrets = Hashtbl.create 8 } in
  Array.iter
    (fun { Lexer.kind; line } ->
      match kind with
      | Lexer.Comment body -> (
          match words (String.trim body) with
          | first :: rest when first = pragma_prefix -> (
              match rest with
              | "allow" :: args ->
                  let rules, span =
                    List.fold_left
                      (fun (rules, span) w ->
                        match String.index_opt w '=' with
                        | Some i when String.sub w 0 i = "lines" -> (
                            let v =
                              String.sub w (i + 1) (String.length w - i - 1)
                            in
                            match int_of_string_opt v with
                            | Some n when n >= 0 ->
                                (rules, min n max_allow_lines)
                            | _ -> (rules, span))
                        | _ -> (w :: rules, span))
                      ([], 1) args
                  in
                  List.iter
                    (fun r ->
                      for l = line to line + span do
                        Hashtbl.replace p.allows (l, r) ()
                      done)
                    rules
              | "secret" :: names ->
                  List.iter (fun n -> Hashtbl.replace p.secrets n ()) names
              | _ -> ())
          | _ -> ())
      | _ -> ())
    tokens;
  p

let path_segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

let basename path =
  match List.rev (path_segments path) with [] -> path | b :: _ -> b

type file_result = {
  findings : Report.finding list;
  suppressed : int;
}

let all_analyses = [ "taint"; "race"; "balance"; "parse-error" ]
let analysis_names = all_analyses

(* Split a combined rule/analysis selection into (lexer rules, analyses).
   Unknown names select nothing, matching the CLI's strict filtering. *)
let select_names names =
  let rules =
    List.filter (fun r -> List.mem r.Rules.name names) Rules.all
  in
  let analyses = List.filter (fun a -> List.mem a names) all_analyses in
  (rules, analyses)

(* ------------------------------------------------------------------ *)
(* The combined scan over already-loaded sources                       *)
(* ------------------------------------------------------------------ *)

(* Lint a batch of sources together: lexer rules are per-file, but the
   taint analysis builds one call graph over the whole batch so
   summaries cross file (and library) boundaries. *)
let scan_sources ?(rules = Rules.all) ?(analyses = all_analyses)
    (files : (string * string) list) : (string * file_result) list =
  let module SS = Set.Make (String) in
  let enabled a = List.mem a analyses in
  let per_file =
    List.map
      (fun (path, src) ->
        let tokens = Lexer.tokenize src in
        let pragmas = collect_pragmas tokens in
        (path, src, tokens, pragmas))
      files
  in
  (* lexer-rule findings *)
  let lexer_findings =
    List.concat_map
      (fun (path, _, tokens, pragmas) ->
        let ctx =
          {
            Rules.path;
            path_segments = path_segments path;
            basename = basename path;
            secrets = pragmas.secrets;
          }
        in
        List.concat_map
          (fun r -> if r.Rules.applies ctx then r.Rules.check ctx tokens else [])
          rules)
      per_file
  in
  (* AST analyses *)
  let want_ast = List.exists enabled [ "taint"; "race"; "balance" ] in
  let parsed, parse_failures =
    if not (want_ast || enabled "parse-error") then ([], [])
    else
      List.fold_left
        (fun (ok, bad) (path, src, _, pragmas) ->
          match Syntax.parse ~path src with
          | Ok ast -> ((path, ast, pragmas) :: ok, bad)
          | Error msg ->
              ( ok,
                {
                  Report.rule = "parse-error";
                  file = path;
                  line = 1;
                  message = "source does not parse: " ^ msg;
                }
                :: bad ))
        ([], []) (List.rev per_file)
      |> fun (ok, bad) -> (List.rev ok, List.rev bad)
  in
  let taint_findings =
    if not (enabled "taint") then []
    else
      Taint.analyze
        (List.map
           (fun (path, ast, pragmas) ->
             {
               Taint.i_path = path;
               i_ast = ast;
               i_secrets =
                 Hashtbl.fold (fun k () s -> SS.add k s) pragmas.secrets
                   SS.empty;
             })
           parsed)
  in
  let race_findings =
    if not (enabled "race") then []
    else
      List.concat_map (fun (path, ast, _) -> Race.analyze_file ~path ast) parsed
  in
  let balance_findings =
    if not (enabled "balance") then []
    else
      List.concat_map
        (fun (path, ast, _) -> Balance.analyze_file ~path ast)
        parsed
  in
  let all =
    lexer_findings
    @ (if enabled "parse-error" then parse_failures else [])
    @ taint_findings @ race_findings @ balance_findings
  in
  (* per-file pragma suppression *)
  List.map
    (fun (path, _, _, pragmas) ->
      let mine = List.filter (fun f -> f.Report.file = path) all in
      let kept, dropped =
        List.partition
          (fun f -> not (Hashtbl.mem pragmas.allows (f.Report.line, f.Report.rule)))
          mine
      in
      (path, { findings = kept; suppressed = List.length dropped }))
    per_file

(* Lint one already-loaded source. [path] decides which rules apply, so
   tests can hand in fixture snippets under virtual paths like
   "lib/crypto/fixture.ml". *)
let scan_source ?rules ?analyses ~path src =
  match scan_sources ?rules ?analyses [ (path, src) ] with
  | [ (_, r) ] -> r
  | _ -> { findings = []; suppressed = 0 }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if List.mem entry skip_dirs then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* Lint every .ml file under [paths] (files or directories). *)
let scan_paths ?rules ?analyses paths =
  let clock = Lw_obs.Span.clock () in
  let t0 = Lw_obs.Clock.now clock in
  let files = List.concat_map ml_files_under paths in
  let results =
    scan_sources ?rules ?analyses (List.map (fun f -> (f, read_file f)) files)
  in
  let elapsed = Lw_obs.Clock.now clock -. t0 in
  Report.make ~files_scanned:(List.length files)
    ~findings:(List.concat_map (fun (_, r) -> r.findings) results)
    ~suppressed:(List.fold_left (fun a (_, r) -> a + r.suppressed) 0 results)
    ~elapsed_s:elapsed ()

(* Resolve a repo-relative directory such as "lib" from wherever the
   process happens to run: the source root, test/ inside _build, or the
   _build context root itself. *)
let resolve_dir name =
  let candidates = [ name; Filename.concat ".." name; Filename.concat "../.." name ] in
  List.find_opt (fun p -> Sys.file_exists p && Sys.is_directory p) candidates

(* Same, for a plain file such as the checked-in lint baseline. *)
let resolve_file name =
  let candidates = [ name; Filename.concat ".." name; Filename.concat "../.." name ] in
  List.find_opt
    (fun p -> Sys.file_exists p && not (Sys.is_directory p))
    candidates
