(* The lint driver: walks OCaml sources, runs every applicable rule, and
   honours the two in-source pragmas:

     (* lw-lint: allow <rule> ... *)   suppress the named rules on the
                                       pragma's line and the next line
     (* lw-lint: secret <name> ... *)  flag identifiers as secret for
                                       this file (rules 1 and 2)

   The one-line reach of [allow] keeps suppressions next to the code they
   excuse — a file-wide waiver has to be spelled per-line, on purpose. *)

let pragma_prefix = "lw-lint:"

type pragmas = {
  allows : (int * string, unit) Hashtbl.t; (* (line, rule) -> suppressed *)
  secrets : (string, unit) Hashtbl.t;
}

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

let collect_pragmas tokens =
  let p = { allows = Hashtbl.create 8; secrets = Hashtbl.create 8 } in
  Array.iter
    (fun { Lexer.kind; line } ->
      match kind with
      | Lexer.Comment body -> (
          match words (String.trim body) with
          | first :: rest when first = pragma_prefix -> (
              match rest with
              | "allow" :: rules ->
                  List.iter
                    (fun r ->
                      Hashtbl.replace p.allows (line, r) ();
                      Hashtbl.replace p.allows (line + 1, r) ())
                    rules
              | "secret" :: names ->
                  List.iter (fun n -> Hashtbl.replace p.secrets n ()) names
              | _ -> ())
          | _ -> ())
      | _ -> ())
    tokens;
  p

let path_segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> "." && s <> "..")

let basename path =
  match List.rev (path_segments path) with [] -> path | b :: _ -> b

type file_result = {
  findings : Report.finding list;
  suppressed : int;
}

(* Lint one already-loaded source. [path] decides which rules apply, so
   tests can hand in fixture snippets under virtual paths like
   "lib/crypto/fixture.ml". *)
let scan_source ?(rules = Rules.all) ~path src =
  let tokens = Lexer.tokenize src in
  let pragmas = collect_pragmas tokens in
  let ctx =
    {
      Rules.path;
      path_segments = path_segments path;
      basename = basename path;
      secrets = pragmas.secrets;
    }
  in
  let raw =
    List.concat_map
      (fun r -> if r.Rules.applies ctx then r.Rules.check ctx tokens else [])
      rules
  in
  let kept, dropped =
    List.partition
      (fun f -> not (Hashtbl.mem pragmas.allows (f.Report.line, f.Report.rule)))
      raw
  in
  { findings = kept; suppressed = List.length dropped }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if List.mem entry skip_dirs then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* Lint every .ml file under [paths] (files or directories). *)
let scan_paths ?(rules = Rules.all) paths =
  let clock = Lw_obs.Span.clock () in
  let t0 = Lw_obs.Clock.now clock in
  let files = List.concat_map ml_files_under paths in
  let results =
    List.concat_map
      (fun f ->
        let r = scan_source ~rules ~path:f (read_file f) in
        [ r ])
      files
  in
  let elapsed = Lw_obs.Clock.now clock -. t0 in
  Report.make ~files_scanned:(List.length files)
    ~findings:(List.concat_map (fun r -> r.findings) results)
    ~suppressed:(List.fold_left (fun a r -> a + r.suppressed) 0 results)
    ~elapsed_s:elapsed

(* Resolve a repo-relative directory such as "lib" from wherever the
   process happens to run: the source root, test/ inside _build, or the
   _build context root itself. *)
let resolve_dir name =
  let candidates = [ name; Filename.concat ".." name; Filename.concat "../.." name ] in
  List.find_opt (fun p -> Sys.file_exists p && Sys.is_directory p) candidates
