(* Effect/resource balance: an epoch pin ([Lw_store.pin] /
   [pin_latest]) or a TCP connection ([Tcp.connect]) acquired in a
   function must, on every path, be released, handed off into a longer-
   lived structure, or protected against exceptions until it is.

   The checker linearizes the continuation after each acquire into a
   syntactic event stream: Release (unpin / .close on the bound
   variable), Handoff (the variable escapes into a constructor, record,
   tuple, mutable field, or the function's result — pure constructor
   contexts only, so passing it to an arbitrary call does not count),
   and Raiser (any other call, which may raise). Events under a
   [try]/[Fun.protect ~finally:release] cover are marked protected.

   Findings: no Release and no Handoff at all -> "never released";
   otherwise any unprotected Raiser strictly before the first
   Release/Handoff -> "may leak on raise". Path-sensitivity (a branch
   that releases on one arm only) is out of scope and documented as
   such in DESIGN.md. The resource home modules (lw_store.ml, tcp.ml)
   are exempt — they implement the lifecycle they'd otherwise trip. *)

module SS = Set.Make (String)

let acquire_calls =
  [
    ("Lw_store.pin", "epoch pin"); ("Lw_store.pin_latest", "epoch pin");
    ("Snapshot.pin", "epoch pin"); ("Tcp.connect", "TCP connection");
  ]

let release_names = SS.of_list [ "Lw_store.unpin"; "Snapshot.unpin" ]
let close_segs = SS.of_list [ "close"; "shutdown"; "disconnect" ]
let exempt_basenames = [ "lw_store.ml"; "tcp.ml" ]

type event = Release | Handoff | Raiser of string

let rec acquire_of (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Syntax.head_name f with
      | Some n -> List.assoc_opt (Syntax.last2 n) acquire_calls
      | None -> None)
  (* [let c = try Tcp.connect ... with ...] still binds the resource *)
  | Pexp_try (b, _) | Pexp_constraint (b, _) | Pexp_open (_, b) ->
      acquire_of b
  | _ -> None

let mentions x e = SS.mem x (Syntax.all_idents e)

(* [x] escapes through pure constructor context only: the variable
   itself, or tuples/constructs/records/arrays built from such. *)
let rec escapes_into x (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident y; _ } -> y = x
  | Pexp_tuple es | Pexp_array es -> List.exists (escapes_into x) es
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> escapes_into x a
  | Pexp_record (fs, base) ->
      List.exists (fun (_, e) -> escapes_into x e) fs
      || (match base with Some b -> escapes_into x b | None -> false)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> escapes_into x e
  | Pexp_lazy e -> escapes_into x e
  | _ -> false

let is_release_of x (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      let arg_exprs = List.map snd args in
      match Syntax.head_name f with
      | Some n ->
          (SS.mem (Syntax.last2 n) release_names
          || Syntax.last_seg n = "unpin"
          || SS.mem (Syntax.last_seg n) close_segs)
          && List.exists (mentions x) arg_exprs
      | None -> (
          (* method-style record close: [c.close ()] *)
          match f.pexp_desc with
          | Pexp_field (b, lid) ->
              SS.mem (Syntax.last_seg (Syntax.name_of_lid lid.txt)) close_segs
              && mentions x b
          | _ -> false))
  | _ -> false

(* Tail expressions of a continuation: the values the function returns
   along each path. *)
let rec tails (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_sequence (_, b) | Pexp_let (_, _, b) -> tails b
  | Pexp_ifthenelse (_, t, f) -> (
      tails t @ match f with Some f -> tails f | None -> [])
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.concat_map (fun (c : Parsetree.case) -> tails c.pc_rhs) cases
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> tails e
  | _ -> [ e ]

(* Linearize the continuation after an acquire into events, in
   syntactic order. [protected] marks regions where a raise cannot leak
   the resource (inside try-with whose body releases are still counted,
   and inside Fun.protect whose ~finally releases x). *)
let linearize x cont =
  let events = ref [] in
  let tail_set = List.map (fun (t : Parsetree.expression) -> t.pexp_loc) (tails cont) in
  let push ev prot line = events := (ev, prot, line) :: !events in
  let rec walk prot (e : Parsetree.expression) =
    let line = Syntax.line e.pexp_loc in
    if is_release_of x e then push Release prot line
    else if List.mem e.pexp_loc tail_set && escapes_into x e then
      push Handoff prot line
    else
      match e.pexp_desc with
      | Pexp_setfield (_, _, v) when escapes_into x v -> push Handoff prot line
      | Pexp_try (b, cases) ->
          walk true b;
          List.iter (fun (c : Parsetree.case) -> walk prot c.pc_rhs) cases
      | Pexp_match (scrut, cases)
        when List.exists
               (fun (c : Parsetree.case) ->
                 match c.pc_lhs.ppat_desc with
                 | Ppat_exception _ -> true
                 | _ -> false)
               cases ->
          (* [match e with ... | exception _ -> ...] shields [e] *)
          walk true scrut;
          List.iter (fun (c : Parsetree.case) -> walk prot c.pc_rhs) cases
      | Pexp_apply (f, args) -> (
          let arg_exprs = List.map snd args in
          match Syntax.head_name f with
          | Some n when Syntax.last2 n = "Fun.protect" ->
              let finally_releases =
                List.exists
                  (fun (lbl, a) ->
                    (match lbl with
                    | Asttypes.Labelled "finally" -> true
                    | _ -> false)
                    &&
                    let rel = ref false in
                    Syntax.iter_exprs
                      (fun e -> if is_release_of x e then rel := true)
                      a;
                    !rel)
                  args
              in
              if finally_releases then push Release prot line;
              List.iter (walk (prot || finally_releases)) arg_exprs
          | Some n ->
              List.iter (walk prot) arg_exprs;
              let seg = Syntax.last_seg n in
              (* pure projections can't raise in a way that matters, and
                 cleanup calls on sibling resources (close/unpin of some
                 other handle) are assumed non-raising *)
              if
                not
                  (SS.mem seg
                     (SS.of_list
                        [ "ignore"; "ref"; "!"; "fst"; "snd"; "not" ])
                  || SS.mem seg close_segs || seg = "unpin")
              then push (Raiser n) prot line
          | None -> (
              walk prot f;
              List.iter (walk prot) arg_exprs;
              match f.pexp_desc with
              | Pexp_field (_, lid)
                when SS.mem
                       (Syntax.last_seg (Syntax.name_of_lid lid.txt))
                       close_segs ->
                  (* [other.close ()]: sibling cleanup, assumed non-raising *)
                  ()
              | _ -> push (Raiser "<computed>") prot line))
      | Pexp_fun _ | Pexp_function _ ->
          (* a closure mentioning x defers the work; if it releases x it
             was already caught by is_release_of at the Fun.protect
             site. Walk it for releases so `~finally:(fun () -> unpin)`
             style code outside Fun.protect still counts. *)
          let _, body = Syntax.uncurry e in
          walk prot body
      | _ -> List.iter (walk prot) (Syntax.shallow_children e)
  in
  walk false cont;
  List.rev !events

let check_acquire ~path ~what ~line x cont findings =
  let events = linearize x cont in
  let has_safe =
    List.exists (fun (ev, _, _) -> ev = Release || ev = Handoff) events
  in
  if not has_safe then
    findings :=
      {
        Report.rule = "balance";
        file = path;
        line;
        message =
          Printf.sprintf "%s `%s` is acquired but never released or handed off"
            what x;
      }
      :: !findings
  else begin
    let rec scan = function
      | (Release, _, _) :: _ | (Handoff, _, _) :: _ -> ()
      | (Raiser fn, false, _) :: _ ->
          findings :=
            {
              Report.rule = "balance";
              file = path;
              line;
              message =
                Printf.sprintf
                  "%s `%s` may leak if `%s` raises before the release/handoff \
                   (no Fun.protect or try cover)"
                  what x fn;
            }
            :: !findings
      | _ :: rest -> scan rest
      | [] -> ()
    in
    scan events
  end

let analyze_file ~path (ast : Parsetree.structure) : Report.finding list =
  if List.mem (Filename.basename path) exempt_basenames then []
  else begin
    let findings = ref [] in
    let seen = Hashtbl.create 16 in
    let handle_let (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_let (_, vbs, cont) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match (vb.pvb_pat.ppat_desc, acquire_of vb.pvb_expr) with
              | Ppat_var { txt = x; _ }, Some what ->
                  let line = Syntax.line vb.pvb_loc in
                  if not (Hashtbl.mem seen (x, line)) then begin
                    Hashtbl.replace seen (x, line) ();
                    check_acquire ~path ~what ~line x cont findings
                  end
              | _ -> ())
            vbs
      | Pexp_match (scrut, cases) when acquire_of scrut <> None ->
          (* [match pin ... with Ok snap -> ... | Error _ -> ...] *)
          let what = Option.get (acquire_of scrut) in
          let line = Syntax.line scrut.pexp_loc in
          List.iter
            (fun (c : Parsetree.case) ->
              match c.pc_lhs.ppat_desc with
              | Ppat_construct (_, Some (_, { ppat_desc = Ppat_var v; _ })) ->
                  let x = v.txt in
                  if not (Hashtbl.mem seen (x, line)) then begin
                    Hashtbl.replace seen (x, line) ();
                    check_acquire ~path ~what ~line x c.pc_rhs findings
                  end
              | _ -> ())
            cases
      | _ -> ()
    in
    Syntax.iter_structure_exprs handle_let ast;
    List.sort_uniq compare !findings
  end
