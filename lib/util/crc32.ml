(* Standard reflected CRC-32 (IEEE 802.3 polynomial 0xEDB88320), table
   driven. Not a cryptographic primitive: it guarantees detection of any
   single-bit error and all short burst errors, which is exactly the
   failure class an integrity trailer on a simulated lossy link must
   catch deterministically. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s ~pos ~len =
  let table = Lazy.force table in
  let crc = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xffl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.lognot !crc

let digest s = update 0l s ~pos:0 ~len:(String.length s)
