type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.stddev: empty sample";
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: NaN breaks the latter's order *)
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  let mn = Array.fold_left min xs.(0) xs and mx = Array.fold_left max xs.(0) xs in
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    p50 = percentile xs 50.;
    p95 = percentile xs 95.;
    p99 = percentile xs 99.;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.6g sd=%.6g min=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

type histogram = { lo : float; hi : float; counts : int array; mutable total : int }

let histogram ~buckets ~lo ~hi =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.histogram";
  { lo; hi; counts = Array.make buckets 0; total = 0 }

let hist_add h x =
  let buckets = Array.length h.counts in
  let idx =
    if x <= h.lo then 0
    else if x >= h.hi then buckets - 1
    else int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. float_of_int buckets)
  in
  let idx = min (buckets - 1) (max 0 idx) in
  h.counts.(idx) <- h.counts.(idx) + 1;
  h.total <- h.total + 1

let hist_counts h = Array.copy h.counts
let hist_total h = h.total
