let check_bounds name pos len total =
  if pos < 0 || len < 0 || pos + len > total then
    invalid_arg (Printf.sprintf "Xorbuf.%s: range out of bounds" name)

(* The 64-bit inner loop reads/writes unaligned native-endian words; the
   scalar tail handles the last [len mod 8] bytes. *)
let xor_into ~src ~src_pos ~dst ~dst_pos ~len =
  check_bounds "xor_into(src)" src_pos len (Bytes.length src);
  check_bounds "xor_into(dst)" dst_pos len (Bytes.length dst);
  let words = len / 8 in
  for i = 0 to words - 1 do
    let s = Bytes.get_int64_ne src (src_pos + (8 * i)) in
    let d = Bytes.get_int64_ne dst (dst_pos + (8 * i)) in
    Bytes.set_int64_ne dst (dst_pos + (8 * i)) (Int64.logxor s d)
  done;
  for i = 8 * words to len - 1 do
    let s = Char.code (Bytes.unsafe_get src (src_pos + i)) in
    let d = Char.code (Bytes.unsafe_get dst (dst_pos + i)) in
    Bytes.unsafe_set dst (dst_pos + i) (Char.unsafe_chr (s lxor d))
  done

(* Like [xor_into], but every source byte is ANDed with [mask] first.
   With mask 0xff this is a plain XOR; with mask 0x00 it degenerates to a
   read-modify-write of [dst] with itself — same memory traffic, no data
   change. That makes a selective XOR scan constant-trace: the caller
   derives the mask arithmetically from a selection bit and touches every
   bucket identically whether or not it is selected. *)
let xor_into_masked ~mask ~src ~src_pos ~dst ~dst_pos ~len =
  check_bounds "xor_into_masked(src)" src_pos len (Bytes.length src);
  check_bounds "xor_into_masked(dst)" dst_pos len (Bytes.length dst);
  let mask = mask land 0xff in
  let m64 = Int64.mul (Int64.of_int mask) 0x0101010101010101L in
  let words = len / 8 in
  for i = 0 to words - 1 do
    let s = Bytes.get_int64_ne src (src_pos + (8 * i)) in
    let d = Bytes.get_int64_ne dst (dst_pos + (8 * i)) in
    Bytes.set_int64_ne dst (dst_pos + (8 * i)) (Int64.logxor (Int64.logand s m64) d)
  done;
  for i = 8 * words to len - 1 do
    let s = Char.code (Bytes.unsafe_get src (src_pos + i)) in
    let d = Char.code (Bytes.unsafe_get dst (dst_pos + i)) in
    Bytes.unsafe_set dst (dst_pos + i) (Char.unsafe_chr ((s land mask) lxor d))
  done

let xor_string_into ~src ~src_pos ~dst ~dst_pos ~len =
  xor_into ~src:(Bytes.unsafe_of_string src) ~src_pos ~dst ~dst_pos ~len

let xor a b =
  let n = String.length a in
  if String.length b <> n then invalid_arg "Xorbuf.xor: length mismatch";
  let out = Bytes.of_string a in
  xor_string_into ~src:b ~src_pos:0 ~dst:out ~dst_pos:0 ~len:n;
  Bytes.unsafe_to_string out

let is_zero s =
  let acc = ref 0 in
  String.iter (fun c -> acc := !acc lor Char.code c) s;
  !acc = 0
