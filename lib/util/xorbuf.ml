(* Unchecked native-endian word access. Every exported function validates
   its ranges once with [check_bounds] before entering a word loop, so the
   per-word bounds checks the safe accessors would pay (three per XOR'd
   word) are hoisted out of the scan kernels entirely. *)
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let check_bounds name pos len total =
  (* [pos > total - len] rather than [pos + len > total]: the sum can wrap
     negative for huge [len] and slip past the check, and every unsafe
     word access below relies on this gate. *)
  if pos < 0 || len < 0 || pos > total - len then
    invalid_arg (Printf.sprintf "Xorbuf.%s: range out of bounds" name)

(* The 64-bit inner loop reads/writes unaligned native-endian words; the
   scalar tail handles the last [len mod 8] bytes. *)
let xor_into ~src ~src_pos ~dst ~dst_pos ~len =
  check_bounds "xor_into(src)" src_pos len (Bytes.length src);
  check_bounds "xor_into(dst)" dst_pos len (Bytes.length dst);
  let words = len / 8 in
  for i = 0 to words - 1 do
    let s = unsafe_get64 src (src_pos + (8 * i)) in
    let d = unsafe_get64 dst (dst_pos + (8 * i)) in
    unsafe_set64 dst (dst_pos + (8 * i)) (Int64.logxor s d)
  done;
  for i = 8 * words to len - 1 do
    let s = Char.code (Bytes.unsafe_get src (src_pos + i)) in
    let d = Char.code (Bytes.unsafe_get dst (dst_pos + i)) in
    Bytes.unsafe_set dst (dst_pos + i) (Char.unsafe_chr (s lxor d))
  done

(* Like [xor_into], but every source byte is ANDed with [mask] first.
   With mask 0xff this is a plain XOR; with mask 0x00 it degenerates to a
   read-modify-write of [dst] with itself — same memory traffic, no data
   change. That makes a selective XOR scan constant-trace: the caller
   derives the mask arithmetically from a selection bit and touches every
   bucket identically whether or not it is selected. *)
let xor_into_masked ~mask ~src ~src_pos ~dst ~dst_pos ~len =
  check_bounds "xor_into_masked(src)" src_pos len (Bytes.length src);
  check_bounds "xor_into_masked(dst)" dst_pos len (Bytes.length dst);
  let mask = mask land 0xff in
  let m64 = Int64.mul (Int64.of_int mask) 0x0101010101010101L in
  let words = len / 8 in
  for i = 0 to words - 1 do
    let s = Bytes.get_int64_ne src (src_pos + (8 * i)) in
    let d = Bytes.get_int64_ne dst (dst_pos + (8 * i)) in
    Bytes.set_int64_ne dst (dst_pos + (8 * i)) (Int64.logxor (Int64.logand s m64) d)
  done;
  for i = 8 * words to len - 1 do
    let s = Char.code (Bytes.unsafe_get src (src_pos + i)) in
    let d = Char.code (Bytes.unsafe_get dst (dst_pos + i)) in
    Bytes.unsafe_set dst (dst_pos + i) (Char.unsafe_chr ((s land mask) lxor d))
  done

(* Fused-scan block kernel: XOR [count] consecutive [bucket]-byte records
   of [src] into [dst], record [j] masked by the selection byte
   [bits.[bits_pos + j]] (0 or 1). One bounds gate for the whole block,
   then unchecked words; every record costs the same read-modify-write of
   [dst] whether selected or not, preserving the constant-trace
   discipline of [xor_into_masked] at block granularity. *)
let xor_buckets_masked ~bits ~bits_pos ~count ~src ~src_pos ~bucket ~dst =
  if bucket <= 0 || count < 0 then invalid_arg "Xorbuf.xor_buckets_masked: bad geometry";
  check_bounds "xor_buckets_masked(bits)" bits_pos count (Bytes.length bits);
  check_bounds "xor_buckets_masked(src)" src_pos (count * bucket) (Bytes.length src);
  check_bounds "xor_buckets_masked(dst)" 0 bucket (Bytes.length dst);
  let words = bucket / 8 in
  let words4 = words land lnot 3 in
  let tail = 8 * words in
  for j = 0 to count - 1 do
    let b = Char.code (Bytes.unsafe_get bits (bits_pos + j)) land 1 in
    (* splat the selection bit to a full word: 0x00..00 or 0xff..ff *)
    let m64 = Int64.neg (Int64.of_int b) in
    let m = (0 - b) land 0xff in
    let base = src_pos + (j * bucket) in
    (* 4-way unrolled: buckets are word-multiples in practice, and the
       loop-carried overhead is what separates this kernel from memory
       bandwidth once the bounds checks are gone *)
    let o = ref 0 in
    while !o < 8 * words4 do
      let o0 = !o in
      let s0 = unsafe_get64 src (base + o0) and d0 = unsafe_get64 dst o0 in
      let s1 = unsafe_get64 src (base + o0 + 8) and d1 = unsafe_get64 dst (o0 + 8) in
      let s2 = unsafe_get64 src (base + o0 + 16) and d2 = unsafe_get64 dst (o0 + 16) in
      let s3 = unsafe_get64 src (base + o0 + 24) and d3 = unsafe_get64 dst (o0 + 24) in
      unsafe_set64 dst o0 (Int64.logxor (Int64.logand s0 m64) d0);
      unsafe_set64 dst (o0 + 8) (Int64.logxor (Int64.logand s1 m64) d1);
      unsafe_set64 dst (o0 + 16) (Int64.logxor (Int64.logand s2 m64) d2);
      unsafe_set64 dst (o0 + 24) (Int64.logxor (Int64.logand s3 m64) d3);
      o := o0 + 32
    done;
    for w = words4 to words - 1 do
      let s = unsafe_get64 src (base + (8 * w)) in
      let d = unsafe_get64 dst (8 * w) in
      unsafe_set64 dst (8 * w) (Int64.logxor (Int64.logand s m64) d)
    done;
    for i = tail to bucket - 1 do
      let s = Char.code (Bytes.unsafe_get src (base + i)) in
      let d = Char.code (Bytes.unsafe_get dst i) in
      Bytes.unsafe_set dst i (Char.unsafe_chr ((s land m) lxor d))
    done
  done

(* Width-2 fused-scan block kernel: the two-probe keyword shape. One
   streamed pass over [count] records feeds BOTH accumulators — each
   source word is loaded once and masked-XORed into [dst0] and [dst1],
   so the pair pays one memory traversal plus a second register-masked
   accumulation instead of two scans (or the per-lane indexing of the
   generic packed kernel). Both lanes do identical memory work whatever
   their bits. *)
let xor_buckets_masked2 ~bits0 ~bits0_pos ~bits1 ~bits1_pos ~count ~src ~src_pos ~bucket ~dst0
    ~dst1 =
  if bucket <= 0 || count < 0 then invalid_arg "Xorbuf.xor_buckets_masked2: bad geometry";
  check_bounds "xor_buckets_masked2(bits0)" bits0_pos count (Bytes.length bits0);
  check_bounds "xor_buckets_masked2(bits1)" bits1_pos count (Bytes.length bits1);
  check_bounds "xor_buckets_masked2(src)" src_pos (count * bucket) (Bytes.length src);
  check_bounds "xor_buckets_masked2(dst0)" 0 bucket (Bytes.length dst0);
  check_bounds "xor_buckets_masked2(dst1)" 0 bucket (Bytes.length dst1);
  let words = bucket / 8 in
  let words4 = words land lnot 3 in
  let tail = 8 * words in
  for j = 0 to count - 1 do
    let b0 = Char.code (Bytes.unsafe_get bits0 (bits0_pos + j)) land 1 in
    let b1 = Char.code (Bytes.unsafe_get bits1 (bits1_pos + j)) land 1 in
    let ma = Int64.neg (Int64.of_int b0) and mb = Int64.neg (Int64.of_int b1) in
    let m0 = (0 - b0) land 0xff and m1 = (0 - b1) land 0xff in
    let base = src_pos + (j * bucket) in
    (* 4-way unrolled: four source loads feed eight masked accumulations
       per iteration without spilling the two masks *)
    let o = ref 0 in
    while !o < 8 * words4 do
      let o0 = !o in
      let s0 = unsafe_get64 src (base + o0) in
      let s1 = unsafe_get64 src (base + o0 + 8) in
      let s2 = unsafe_get64 src (base + o0 + 16) in
      let s3 = unsafe_get64 src (base + o0 + 24) in
      unsafe_set64 dst0 o0 (Int64.logxor (Int64.logand s0 ma) (unsafe_get64 dst0 o0));
      unsafe_set64 dst0 (o0 + 8) (Int64.logxor (Int64.logand s1 ma) (unsafe_get64 dst0 (o0 + 8)));
      unsafe_set64 dst0 (o0 + 16) (Int64.logxor (Int64.logand s2 ma) (unsafe_get64 dst0 (o0 + 16)));
      unsafe_set64 dst0 (o0 + 24) (Int64.logxor (Int64.logand s3 ma) (unsafe_get64 dst0 (o0 + 24)));
      unsafe_set64 dst1 o0 (Int64.logxor (Int64.logand s0 mb) (unsafe_get64 dst1 o0));
      unsafe_set64 dst1 (o0 + 8) (Int64.logxor (Int64.logand s1 mb) (unsafe_get64 dst1 (o0 + 8)));
      unsafe_set64 dst1 (o0 + 16) (Int64.logxor (Int64.logand s2 mb) (unsafe_get64 dst1 (o0 + 16)));
      unsafe_set64 dst1 (o0 + 24) (Int64.logxor (Int64.logand s3 mb) (unsafe_get64 dst1 (o0 + 24)));
      o := o0 + 32
    done;
    for w = words4 to words - 1 do
      let s = unsafe_get64 src (base + (8 * w)) in
      unsafe_set64 dst0 (8 * w) (Int64.logxor (Int64.logand s ma) (unsafe_get64 dst0 (8 * w)));
      unsafe_set64 dst1 (8 * w) (Int64.logxor (Int64.logand s mb) (unsafe_get64 dst1 (8 * w)))
    done;
    for i = tail to bucket - 1 do
      let s = Char.code (Bytes.unsafe_get src (base + i)) in
      let d0 = Char.code (Bytes.unsafe_get dst0 i) in
      Bytes.unsafe_set dst0 i (Char.unsafe_chr ((s land m0) lxor d0));
      let d1 = Char.code (Bytes.unsafe_get dst1 i) in
      Bytes.unsafe_set dst1 i (Char.unsafe_chr ((s land m1) lxor d1))
    done
  done

(* Bit-packed batch kernel: one streamed pass over the source feeds up to
   8 accumulators. [pack] carries lane q's selection bit at bit q; each
   source word is loaded once and XORed into every lane under that lane's
   splatted mask, so a batch of 8 queries costs one traversal of the data
   plus 8 register-masked accumulations instead of 8 separate scans. All
   lanes perform identical memory work regardless of their bits. *)
let xor_into_packed ~pack ~src ~src_pos ~dsts ~dst_pos ~len =
  let lanes = Array.length dsts in
  if lanes < 1 || lanes > 8 then invalid_arg "Xorbuf.xor_into_packed: need 1..8 lanes";
  check_bounds "xor_into_packed(src)" src_pos len (Bytes.length src);
  Array.iter
    (fun dst -> check_bounds "xor_into_packed(dst)" dst_pos len (Bytes.length dst))
    dsts;
  let pack = pack land 0xff in
  let words = len / 8 in
  let tail = 8 * words in
  if lanes = 8 then begin
    (* the full-pack fast path: lanes and masks pinned in locals, the
       inner loop is straight-line with no per-lane indexing *)
    let d0 = Array.unsafe_get dsts 0 and d1 = Array.unsafe_get dsts 1 in
    let d2 = Array.unsafe_get dsts 2 and d3 = Array.unsafe_get dsts 3 in
    let d4 = Array.unsafe_get dsts 4 and d5 = Array.unsafe_get dsts 5 in
    let d6 = Array.unsafe_get dsts 6 and d7 = Array.unsafe_get dsts 7 in
    let m q = Int64.neg (Int64.of_int ((pack lsr q) land 1)) in
    let m0 = m 0 and m1 = m 1 and m2 = m 2 and m3 = m 3 in
    let m4 = m 4 and m5 = m 5 and m6 = m 6 and m7 = m 7 in
    for w = 0 to words - 1 do
      let o = dst_pos + (8 * w) in
      let s = unsafe_get64 src (src_pos + (8 * w)) in
      unsafe_set64 d0 o (Int64.logxor (Int64.logand s m0) (unsafe_get64 d0 o));
      unsafe_set64 d1 o (Int64.logxor (Int64.logand s m1) (unsafe_get64 d1 o));
      unsafe_set64 d2 o (Int64.logxor (Int64.logand s m2) (unsafe_get64 d2 o));
      unsafe_set64 d3 o (Int64.logxor (Int64.logand s m3) (unsafe_get64 d3 o));
      unsafe_set64 d4 o (Int64.logxor (Int64.logand s m4) (unsafe_get64 d4 o));
      unsafe_set64 d5 o (Int64.logxor (Int64.logand s m5) (unsafe_get64 d5 o));
      unsafe_set64 d6 o (Int64.logxor (Int64.logand s m6) (unsafe_get64 d6 o));
      unsafe_set64 d7 o (Int64.logxor (Int64.logand s m7) (unsafe_get64 d7 o))
    done
  end
  else
    for w = 0 to words - 1 do
      let o = dst_pos + (8 * w) in
      let s = unsafe_get64 src (src_pos + (8 * w)) in
      for q = 0 to lanes - 1 do
        let m64 = Int64.neg (Int64.of_int ((pack lsr q) land 1)) in
        let dst = Array.unsafe_get dsts q in
        unsafe_set64 dst o (Int64.logxor (Int64.logand s m64) (unsafe_get64 dst o))
      done
    done;
  for i = tail to len - 1 do
    let s = Char.code (Bytes.unsafe_get src (src_pos + i)) in
    for q = 0 to lanes - 1 do
      let mask = (0 - ((pack lsr q) land 1)) land 0xff in
      let dst = Array.unsafe_get dsts q in
      let d = Char.code (Bytes.unsafe_get dst (dst_pos + i)) in
      Bytes.unsafe_set dst (dst_pos + i) (Char.unsafe_chr ((s land mask) lxor d))
    done
  done

let xor_string_into ~src ~src_pos ~dst ~dst_pos ~len =
  xor_into ~src:(Bytes.unsafe_of_string src) ~src_pos ~dst ~dst_pos ~len

let xor a b =
  let n = String.length a in
  if String.length b <> n then invalid_arg "Xorbuf.xor: length mismatch";
  let out = Bytes.of_string a in
  xor_string_into ~src:b ~src_pos:0 ~dst:out ~dst_pos:0 ~len:n;
  Bytes.unsafe_to_string out

(* Word-at-a-time OR-accumulate with a byte tail: this sits on the
   [Bucket_db.is_empty]/[occupied] path, where the seed's [String.iter]
   cost a closure call per byte. *)
let is_zero_range b ~pos ~len =
  check_bounds "is_zero_range" pos len (Bytes.length b);
  let words = len / 8 in
  let acc64 = ref 0L in
  for w = 0 to words - 1 do
    acc64 := Int64.logor !acc64 (unsafe_get64 b (pos + (8 * w)))
  done;
  let acc = ref 0 in
  for i = 8 * words to len - 1 do
    acc := !acc lor Char.code (Bytes.unsafe_get b (pos + i))
  done;
  Int64.equal !acc64 0L && !acc = 0

let is_zero s = is_zero_range (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
