(** Fast XOR over byte buffers.

    The PIR data scan is dominated by XOR-accumulating fixed-size buckets
    into a response buffer, so these loops work 64 bits at a time. All
    functions validate their ranges once up front and then run unchecked
    word loops; [xor_into_masked] deliberately keeps the checked accessors
    of the seed implementation — it is the reference kernel the fused and
    packed scan paths are benchmarked (E19) and property-tested against. *)

val xor_into : src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** [xor_into ~src ~src_pos ~dst ~dst_pos ~len] XORs [len] bytes of [src]
    (from [src_pos]) into [dst] (at [dst_pos]). Bounds are checked once up
    front; raises [Invalid_argument] when a range is out of bounds
    (including [pos + len] overflowing the integer range). *)

val xor_into_masked :
  mask:int -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** Like {!xor_into}, but each source byte is ANDed with [mask land 0xff]
    first. Mask [0x00] still performs the full read-modify-write of [dst],
    so selecting buckets by mask (instead of skipping them with a branch)
    keeps a scan's memory trace independent of the selection bits. *)

val xor_buckets_masked :
  bits:Bytes.t ->
  bits_pos:int ->
  count:int ->
  src:Bytes.t ->
  src_pos:int ->
  bucket:int ->
  dst:Bytes.t ->
  unit
(** [xor_buckets_masked ~bits ~bits_pos ~count ~src ~src_pos ~bucket ~dst]
    is the fused-scan block kernel: for each [j < count], XOR the
    [bucket]-byte record at [src_pos + j*bucket] into [dst] under the mask
    splatted from selection byte [bits.[bits_pos + j]] (low bit used). One
    bounds gate covers the whole block; every record performs the identical
    read-modify-write of [dst] whether its bit is set or not. *)

val xor_buckets_masked2 :
  bits0:Bytes.t ->
  bits0_pos:int ->
  bits1:Bytes.t ->
  bits1_pos:int ->
  count:int ->
  src:Bytes.t ->
  src_pos:int ->
  bucket:int ->
  dst0:Bytes.t ->
  dst1:Bytes.t ->
  unit
(** Width-2 variant of {!xor_buckets_masked} — the two-probe keyword
    shape: one streamed pass over the block feeds both accumulators,
    record [j] masked into [dst0] by [bits0.[bits0_pos + j]] and into
    [dst1] by [bits1.[bits1_pos + j]]. Each source word is loaded once;
    both lanes perform identical memory work whatever their bits. *)

val xor_into_packed :
  pack:int -> src:Bytes.t -> src_pos:int -> dsts:Bytes.t array -> dst_pos:int -> len:int -> unit
(** [xor_into_packed ~pack ~src ~src_pos ~dsts ~dst_pos ~len] is the
    bit-packed batch kernel: each source word is loaded once and XORed into
    every accumulator in [dsts] under that lane's mask, lane [q]'s
    selection bit taken from bit [q] of [pack]. [dsts] must hold 1–8
    buffers (a partial final pack uses fewer than 8); all lanes do
    identical memory work regardless of their bits. Raises
    [Invalid_argument] on an empty or oversized [dsts] or any
    out-of-bounds range. *)

val xor_string_into : src:string -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** Same as {!xor_into} with an immutable source. *)

val xor : string -> string -> string
(** [xor a b] is the bytewise XOR of two equal-length strings. Raises
    [Invalid_argument] if lengths differ. *)

val is_zero_range : Bytes.t -> pos:int -> len:int -> bool
(** [is_zero_range b ~pos ~len] is true iff bytes [pos..pos+len) of [b]
    are all ['\x00']. Scans 64-bit words with a byte tail. *)

val is_zero : string -> bool
(** [is_zero s] is true iff every byte of [s] is ['\x00']. Scans 64-bit
    words with a byte tail. *)
