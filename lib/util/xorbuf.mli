(** Fast XOR over byte buffers.

    The PIR data scan is dominated by XOR-accumulating fixed-size buckets
    into a response buffer, so these loops work 64 bits at a time. *)

val xor_into : src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** [xor_into ~src ~src_pos ~dst ~dst_pos ~len] XORs [len] bytes of [src]
    (from [src_pos]) into [dst] (at [dst_pos]). Bounds are checked once up
    front; raises [Invalid_argument] when a range is out of bounds. *)

val xor_into_masked :
  mask:int -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** Like {!xor_into}, but each source byte is ANDed with [mask land 0xff]
    first. Mask [0x00] still performs the full read-modify-write of [dst],
    so selecting buckets by mask (instead of skipping them with a branch)
    keeps a scan's memory trace independent of the selection bits. *)

val xor_string_into : src:string -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit
(** Same as {!xor_into} with an immutable source. *)

val xor : string -> string -> string
(** [xor a b] is the bytewise XOR of two equal-length strings. Raises
    [Invalid_argument] if lengths differ. *)

val is_zero : string -> bool
(** [is_zero s] is true iff every byte of [s] is ['\x00']. *)
