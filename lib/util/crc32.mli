(** CRC-32 (IEEE 802.3). Detects {e every} single-bit error and short
    bursts — the guarantee the wire-integrity trailer relies on. Not a
    MAC: no adversarial collision resistance. *)

val digest : string -> int32

val update : int32 -> string -> pos:int -> len:int -> int32
(** Incremental: [update 0l s ~pos:0 ~len] = [digest (String.sub s pos len)]. *)
