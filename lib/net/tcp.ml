type server = {
  sock : Unix.file_descr;
  port : int;
  mutable running : bool;
  mutable conns : Endpoint.t list;
  lock : Mutex.t;
}

(* Frame IO straight over the descriptor (no channels): [Unix.read]
   surfaces EAGAIN from a SO_RCVTIMEO socket, which is how a receive
   deadline reaches the caller as [Endpoint.Timeout]. *)
let endpoint_of_fd ?recv_timeout_s fd =
  (match recv_timeout_s with
  | Some t when t > 0. -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO t
  | _ -> ());
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  {
    Endpoint.send =
      (fun msg ->
        if !closed then raise Endpoint.Closed;
        try Frame.write_fd fd msg
        with Unix.Unix_error _ | Sys_error _ -> raise Endpoint.Closed);
    recv =
      (fun () ->
        if !closed then raise Endpoint.Closed;
        try Frame.read_fd fd with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* the deadline fired mid-frame: the stream cannot resync *)
            raise Endpoint.Timeout
        | End_of_file | Frame.Malformed _ | Unix.Unix_error _ | Sys_error _ ->
            raise Endpoint.Closed);
    close;
  }

let register server ep =
  Mutex.lock server.lock;
  server.conns <- ep :: server.conns;
  Mutex.unlock server.lock

let unregister server ep =
  Mutex.lock server.lock;
  server.conns <- List.filter (fun e -> e != ep) server.conns;
  Mutex.unlock server.lock

let serve ?(backlog = 16) ?recv_timeout_s ~host ~port handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock backlog;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let server =
    { sock; port = actual_port; running = true; conns = []; lock = Mutex.create () }
  in
  let accept_loop () =
    while server.running do
      match Unix.accept sock with
      | fd, _peer ->
          let conn_main () =
            let ep = endpoint_of_fd ?recv_timeout_s fd in
            register server ep;
            (try handler ep with _ -> ());
            unregister server ep;
            ep.Endpoint.close ()
          in
          ignore (Thread.create conn_main ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> server.running <- false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  ignore (Thread.create accept_loop ());
  server

let port s = s.port

let shutdown s =
  if s.running then begin
    s.running <- false;
    (try Unix.close s.sock with Unix.Unix_error _ -> ());
    (* also tear down every live per-connection endpoint, so handler
       threads blocked in recv wake with [Closed] and exit instead of
       leaking past the server's lifetime *)
    Mutex.lock s.lock;
    let conns = s.conns in
    s.conns <- [];
    Mutex.unlock s.lock;
    List.iter (fun ep -> ep.Endpoint.close ()) conns
  end

(* Bounded dial: a non-blocking [connect] turns the kernel's SYN
   retransmission loop (minutes against a blackholed or backlog-saturated
   host) into an [EINPROGRESS] we can poll with a deadline. Without the
   bound, a supervisor restart loop that dials a dead shard would hang
   with it. *)
let connect_bounded sock addr timeout_s =
  Unix.set_nonblock sock;
  (match Unix.connect sock addr with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      (* a real-time deadline over a real socket: the virtual clocks the
         raw-timestamp rule protects cannot drive kernel connect timing *)
      let now () = Unix.gettimeofday () (* lw-lint: allow raw-timestamp nondeterminism *) in
      let deadline = now () +. timeout_s in
      let rec await () =
        let remaining = deadline -. now () in
        if remaining <= 0. then raise Endpoint.Timeout
        else
          match Unix.select [] [ sock ] [] remaining with
          | _, [], _ -> raise Endpoint.Timeout
          | _, _ :: _, _ -> (
              (* writable: either connected or failed — SO_ERROR tells *)
              match Unix.getsockopt_error sock with
              | None -> ()
              | Some err -> raise (Unix.Unix_error (err, "connect", "")))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
      in
      await ());
  Unix.clear_nonblock sock

let connect ?connect_timeout_s ?recv_timeout_s ~host ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try
     match connect_timeout_s with
     | Some t when t > 0. -> connect_bounded sock addr t
     | _ -> Unix.connect sock addr
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  endpoint_of_fd ?recv_timeout_s sock
