type server = {
  sock : Unix.file_descr;
  port : int;
  mutable running : bool;
  mutable listener_closed : bool;
  mutable conns : (Endpoint.t * (unit -> unit)) list; (* endpoint, interrupt *)
  lock : Mutex.t;
}

(* Frame IO straight over the descriptor (no channels): [Unix.read]
   surfaces EAGAIN from a SO_RCVTIMEO socket, which is how a receive
   deadline reaches the caller as [Endpoint.Timeout].

   Only the owning thread may [Unix.close] the descriptor. A cross-thread
   close races the owner's in-flight [read]/[write]: once the fd number is
   reused by a later [socket]/[accept], the stale IO lands on an unrelated
   connection and silently desyncs its frame stream. Cross-thread teardown
   goes through [interrupt], which only [Unix.shutdown]s — the blocked IO
   wakes with EOF, the owner unwinds and closes the fd itself. *)
let endpoint_pair_of_fd ?recv_timeout_s fd =
  (match recv_timeout_s with
  | Some t when t > 0. -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO t
  | _ -> ());
  let lock = Mutex.create () in
  let closed = ref false in
  let interrupt () =
    Mutex.lock lock;
    if not !closed then
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Mutex.unlock lock
  in
  let close () =
    Mutex.lock lock;
    if not !closed then begin
      closed := true;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    end;
    Mutex.unlock lock
  in
  let ep =
    {
      Endpoint.send =
        (fun msg ->
          if !closed then raise Endpoint.Closed;
          try Frame.write_fd fd msg
          with Unix.Unix_error _ | Sys_error _ -> raise Endpoint.Closed);
      recv =
        (fun () ->
          if !closed then raise Endpoint.Closed;
          try Frame.read_fd fd with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              (* the deadline fired mid-frame: the stream cannot resync *)
              raise Endpoint.Timeout
          | End_of_file | Frame.Malformed _ | Unix.Unix_error _ | Sys_error _ ->
              raise Endpoint.Closed);
      close;
    }
  in
  (ep, interrupt)

let endpoint_of_fd ?recv_timeout_s fd = fst (endpoint_pair_of_fd ?recv_timeout_s fd)

let register server ep interrupt =
  Mutex.lock server.lock;
  server.conns <- (ep, interrupt) :: server.conns;
  Mutex.unlock server.lock

let unregister server ep =
  Mutex.lock server.lock;
  server.conns <- List.filter (fun (e, _) -> e != ep) server.conns;
  Mutex.unlock server.lock

let serve ?(backlog = 16) ?recv_timeout_s ~host ~port handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock backlog;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let server =
    {
      sock;
      port = actual_port;
      running = true;
      listener_closed = false;
      conns = [];
      lock = Mutex.create ();
    }
  in
  let accept_loop () =
    (while server.running do
       match Unix.accept sock with
       | fd, _peer ->
           let conn_main () =
             let ep, interrupt = endpoint_pair_of_fd ?recv_timeout_s fd in
             register server ep interrupt;
             (try handler ep with _ -> ());
             unregister server ep;
             ep.Endpoint.close ()
           in
           ignore (Thread.create conn_main ())
       | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
           server.running <- false
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done);
    (* the accept thread owns the listening fd: closing it from [shutdown]
       while [accept] is blocked would free the fd number for reuse with
       this loop still poised to accept on it — a reused listener would
       have its connections stolen *)
    Mutex.lock server.lock;
    (try Unix.close sock with Unix.Unix_error _ -> ());
    server.listener_closed <- true;
    Mutex.unlock server.lock
  in
  ignore (Thread.create accept_loop ());
  server

let port s = s.port

let shutdown s =
  if s.running then begin
    s.running <- false;
    (* wake the accept thread with EINVAL; it closes the listening fd
       itself (see accept_loop) *)
    Mutex.lock s.lock;
    if not s.listener_closed then
      (try Unix.shutdown s.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    let conns = s.conns in
    s.conns <- [];
    Mutex.unlock s.lock;
    (* also interrupt every live per-connection endpoint, so handler
       threads blocked in recv wake with [Closed] and exit instead of
       leaking past the server's lifetime; each handler thread closes its
       own fd on the way out *)
    List.iter (fun (_, interrupt) -> interrupt ()) conns
  end

(* Bounded dial: a non-blocking [connect] turns the kernel's SYN
   retransmission loop (minutes against a blackholed or backlog-saturated
   host) into an [EINPROGRESS] we can poll with a deadline. Without the
   bound, a supervisor restart loop that dials a dead shard would hang
   with it. *)
let connect_bounded sock addr timeout_s =
  Unix.set_nonblock sock;
  (match Unix.connect sock addr with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      (* a real-time deadline over a real socket: the virtual clocks the
         raw-timestamp rule protects cannot drive kernel connect timing *)
      let now () = Unix.gettimeofday () (* lw-lint: allow raw-timestamp nondeterminism *) in
      let deadline = now () +. timeout_s in
      let rec await () =
        let remaining = deadline -. now () in
        if remaining <= 0. then raise Endpoint.Timeout
        else
          match Unix.select [] [ sock ] [] remaining with
          | _, [], _ -> raise Endpoint.Timeout
          | _, _ :: _, _ -> (
              (* writable: either connected or failed — SO_ERROR tells *)
              match Unix.getsockopt_error sock with
              | None -> ()
              | Some err -> raise (Unix.Unix_error (err, "connect", "")))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
      in
      await ());
  Unix.clear_nonblock sock

let connect ?connect_timeout_s ?recv_timeout_s ~host ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try
     match connect_timeout_s with
     | Some t when t > 0. -> connect_bounded sock addr t
     | _ -> Unix.connect sock addr
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  endpoint_of_fd ?recv_timeout_s sock
