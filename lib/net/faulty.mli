(** Deterministic fault injection for {!Endpoint}s.

    [wrap] turns any endpoint into a hostile network path driven by a
    seeded, replayable fault {!schedule}: messages can be dropped,
    duplicated, delayed, truncated, bit-corrupted, or the connection
    stalled/closed — the failure classes a CDN-scale deployment (§5) sees
    daily. Any existing test or bench runs over a hostile network simply by
    wrapping its endpoints.

    The wrapper assumes the strict request/response pattern all ZLTP
    traffic follows, which is what makes fault injection hang-free: a
    fault that swallows a message makes the corresponding [recv] raise
    {!Endpoint.Timeout} immediately (a virtual deadline expiry) instead of
    blocking forever. Delays advance the supplied {!Lw_obs.Clock} (virtual by
    default), so chaos runs are fast and bit-for-bit reproducible. *)

type fault =
  | Drop  (** message vanishes; the awaited reply times out *)
  | Duplicate  (** message delivered twice *)
  | Delay of float  (** delivered after [d] clock-seconds *)
  | Truncate of int  (** only the first [n] bytes survive *)
  | Corrupt of int  (** one bit flipped at byte [offset mod length] *)
  | Stall_close  (** peer goes silent, then the connection dies *)
  | Close_now  (** connection closes in the caller's face *)

val fault_name : fault -> string

type direction = Send | Recv

type schedule = direction -> int -> fault option
(** [schedule dir i] is the fault (if any) for the [i]-th message (0-based,
    counted per direction) crossing the wrapper. Must be pure: asking twice
    must give the same answer. *)

val none : schedule

val of_plan :
  ?send:(int * fault) list -> ?recv:(int * fault) list -> unit -> schedule
(** Canned schedule: explicit per-ordinal faults, everything else clean. *)

val bernoulli : seed:string -> rate:float -> schedule
(** Each message independently faulted with probability [rate], the fault
    kind drawn uniformly — all derived by pure seeded hashing, so the same
    seed always replays the same run. *)

type counters = {
  mutable passed : int;
  mutable drops : int;
  mutable duplicates : int;
  mutable delays : int;
  mutable truncates : int;
  mutable corrupts : int;
  mutable stalls : int;
  mutable closes : int;
}

val fresh_counters : unit -> counters
val total_faults : counters -> int

val wrap :
  ?clock:Lw_obs.Clock.t -> ?counters:counters -> schedule -> Endpoint.t -> Endpoint.t * counters
(** [wrap schedule ep] interposes the schedule on [ep]. Returns the faulty
    endpoint and its per-fault counters (the supplied [counters] if given,
    so several connections can share one tally). *)
