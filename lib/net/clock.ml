(* The clock moved to lib/obs (the observability layer owns time); this
   shim keeps the historical [Lw_net.Clock] path compiling unchanged. *)
include Lw_obs.Clock
