type t = { send : string -> unit; recv : unit -> string; close : unit -> unit }

exception Closed
exception Timeout

(* Thread-safe unbounded message queue; [None] marks closure. *)
module Mailbox = struct
  type 'a t = {
    q : 'a Queue.t;
    mutex : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); mutex = Mutex.create (); nonempty = Condition.create (); closed = false }

  let push t x =
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      raise Closed
    end;
    Queue.push x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let pop t =
    Mutex.lock t.mutex;
    let rec wait () =
      if not (Queue.is_empty t.q) then begin
        let x = Queue.pop t.q in
        Mutex.unlock t.mutex;
        x
      end
      else if t.closed then begin
        Mutex.unlock t.mutex;
        raise Closed
      end
      else begin
        Condition.wait t.nonempty t.mutex;
        wait ()
      end
    in
    wait ()

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex
end

let pipe () =
  let a_to_b = Mailbox.create () and b_to_a = Mailbox.create () in
  let close () =
    Mailbox.close a_to_b;
    Mailbox.close b_to_a
  in
  ( { send = Mailbox.push a_to_b; recv = (fun () -> Mailbox.pop b_to_a); close },
    { send = Mailbox.push b_to_a; recv = (fun () -> Mailbox.pop a_to_b); close } )

let loopback handler =
  let inbox = Mailbox.create () in
  {
    send = (fun req -> Mailbox.push inbox (handler req));
    recv = (fun () -> Mailbox.pop inbox);
    close = (fun () -> Mailbox.close inbox);
  }

type counters = { mutable sent_bytes : int; mutable recv_bytes : int; mutable messages : int }

let with_counters ep =
  let c = { sent_bytes = 0; recv_bytes = 0; messages = 0 } in
  ( {
      send =
        (fun msg ->
          c.sent_bytes <- c.sent_bytes + String.length msg;
          c.messages <- c.messages + 1;
          ep.send msg);
      recv =
        (fun () ->
          let msg = ep.recv () in
          c.recv_bytes <- c.recv_bytes + String.length msg;
          msg);
      close = ep.close;
    },
    c )
