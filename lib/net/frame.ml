let max_frame_size = 64 * 1024 * 1024
let header_size = 4

exception Malformed of string

let encode payload =
  let n = String.length payload in
  if n > max_frame_size then invalid_arg "Frame.encode: frame too large";
  let b = Bytes.create (header_size + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_size n;
  Bytes.unsafe_to_string b

let decode_header h =
  if String.length h <> header_size then raise (Malformed "short header");
  let n = Int32.to_int (String.get_int32_be h 0) in
  if n < 0 || n > max_frame_size then raise (Malformed "bad frame length");
  n

let write oc payload =
  output_string oc (encode payload);
  flush oc

(* Loop until [n] bytes arrive. A short read is not an error — TCP
   delivers frames in arbitrary pieces — but EOF is: at the very start of
   a frame it is a clean close ([End_of_file]); anywhere past the first
   byte it means the peer died mid-frame and the stream can never resync,
   so it is [Malformed], not a silent truncation. *)
let really_read_channel ic buf ~len ~at_frame_start =
  let rec go off =
    if off < len then begin
      let k = input ic buf off (len - off) in
      if k = 0 then
        if off = 0 && at_frame_start then raise End_of_file
        else raise (Malformed "EOF mid-frame")
      else go (off + k)
    end
  in
  go 0

let read ic =
  let header = Bytes.create header_size in
  really_read_channel ic header ~len:header_size ~at_frame_start:true;
  let n = decode_header (Bytes.unsafe_to_string header) in
  let payload = Bytes.create n in
  really_read_channel ic payload ~len:n ~at_frame_start:false;
  Bytes.unsafe_to_string payload

(* Same discipline over a raw file descriptor. [Unix.read] (unlike
   channel [input]) surfaces [EAGAIN]/[EWOULDBLOCK] when the socket has a
   receive timeout configured — the caller maps that to a deadline
   expiry — so the fd path is what deadline-carrying TCP endpoints use. *)
let really_read_fd fd buf ~len ~at_frame_start =
  let rec go off =
    if off < len then begin
      let k = Unix.read fd buf off (len - off) in
      if k = 0 then
        if off = 0 && at_frame_start then raise End_of_file
        else raise (Malformed "EOF mid-frame")
      else go (off + k)
    end
  in
  go 0

let read_fd fd =
  let header = Bytes.create header_size in
  really_read_fd fd header ~len:header_size ~at_frame_start:true;
  let n = decode_header (Bytes.unsafe_to_string header) in
  let payload = Bytes.create n in
  really_read_fd fd payload ~len:n ~at_frame_start:false;
  Bytes.unsafe_to_string payload

let write_fd fd payload =
  let framed = Bytes.unsafe_of_string (encode payload) in
  let len = Bytes.length framed in
  let rec go off =
    if off < len then go (off + Unix.write fd framed off (len - off))
  in
  go 0
