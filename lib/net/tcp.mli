(** Real TCP transport (loopback-tested): thread-per-connection server and
    blocking client, both speaking {!Frame}-framed messages and exposed as
    {!Endpoint.t}s so the whole ZLTP stack runs unchanged over sockets. *)

type server

val serve :
  ?backlog:int ->
  ?recv_timeout_s:float ->
  host:string ->
  port:int ->
  (Endpoint.t -> unit) ->
  server
(** [serve ~host ~port handler] binds and starts accepting in a background
    thread; [handler] runs in its own thread per connection and owns the
    endpoint (the socket closes when it returns or raises). Port 0 picks a
    free port — read it back with {!port}. [recv_timeout_s] gives every
    per-connection endpoint a receive deadline (see {!connect}). *)

val port : server -> int

val shutdown : server -> unit
(** Stop accepting, {e and} interrupt every live per-connection endpoint,
    so handler threads blocked in [recv] wake with [Endpoint.Closed] and
    terminate promptly instead of leaking. Descriptors are closed by the
    threads that own them (the accept thread for the listener, each
    handler thread for its connection) — never cross-thread, which would
    race in-flight IO against fd-number reuse and could desync an
    unrelated connection's frame stream. *)

val connect :
  ?connect_timeout_s:float ->
  ?recv_timeout_s:float ->
  host:string ->
  port:int ->
  unit ->
  Endpoint.t
(** Blocking client connection. With [recv_timeout_s] set, [recv] raises
    {!Endpoint.Timeout} when no complete frame arrives within the deadline
    (via [SO_RCVTIMEO]); the connection should be abandoned afterwards —
    a frame may have been half-read.

    With [connect_timeout_s] set, the dial itself is bounded: the socket
    connects non-blocking and is polled for at most that long, so a dial
    to a dead or blackholed host (SYN never answered — e.g. a
    [SIGSTOP]ped process behind a saturated accept backlog) raises
    {!Endpoint.Timeout} instead of blocking for the kernel's
    minutes-long retransmission schedule. A refused connection still
    fails fast with [Unix.Unix_error] either way; on any failure the
    socket is closed before the exception escapes. *)
