(** Length-prefixed message framing shared by every ZLTP transport:
    4-byte big-endian length followed by the payload. *)

val max_frame_size : int
(** 64 MiB — larger than any code blob; a corrupt length prefix fails fast
    instead of allocating wildly. *)

val encode : string -> string
(** [encode payload] prepends the length header. Raises [Invalid_argument]
    beyond {!max_frame_size}. *)

exception Malformed of string

val decode_header : string -> int
(** [decode_header h] parses a 4-byte header. Raises {!Malformed}. *)

val header_size : int

val write : out_channel -> string -> unit
(** Write one frame and flush. *)

val read : in_channel -> string
(** Read one frame, looping over short reads until the full header and
    payload arrive. Raises [End_of_file] only on a cleanly closed channel
    (EOF exactly at a frame boundary); an EOF {e inside} a frame — header
    or payload — raises {!Malformed}, because the stream can never resync. *)

val read_fd : Unix.file_descr -> string
(** {!read} over a raw descriptor via [Unix.read]. Same EOF discipline;
    additionally lets [Unix.Unix_error (EAGAIN | EWOULDBLOCK, _, _)] from a
    receive-timeout socket propagate to the caller (the {!Tcp} endpoint
    maps it to {!Endpoint.Timeout}). *)

val write_fd : Unix.file_descr -> string -> unit
(** Write one frame via [Unix.write], looping over partial writes. *)
