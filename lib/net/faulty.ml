type fault =
  | Drop
  | Duplicate
  | Delay of float
  | Truncate of int
  | Corrupt of int
  | Stall_close
  | Close_now

let fault_name = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Delay _ -> "delay"
  | Truncate _ -> "truncate"
  | Corrupt _ -> "corrupt"
  | Stall_close -> "stall-close"
  | Close_now -> "close"

type direction = Send | Recv

type schedule = direction -> int -> fault option

let none : schedule = fun _ _ -> None

let of_plan ?(send = []) ?(recv = []) () : schedule =
 fun dir i -> List.assoc_opt i (match dir with Send -> send | Recv -> recv)

(* Stateless derivation: the fault for message [i] in direction [dir] is a
   pure function of (seed, dir, i), so replaying a schedule — or asking it
   twice — always yields the same answer. *)
let bernoulli ~seed ~rate : schedule =
  if rate < 0. || rate > 1. then invalid_arg "Faulty.bernoulli: rate must be in [0,1]";
  fun dir i ->
    let tag = match dir with Send -> 's' | Recv -> 'r' in
    let r = Lw_util.Det_rng.of_string_seed (Printf.sprintf "%s/%c%d" seed tag i) in
    if Lw_util.Det_rng.float r 1.0 >= rate then None
    else
      Some
        (match Lw_util.Det_rng.int r 7 with
        | 0 -> Drop
        | 1 -> Duplicate
        | 2 -> Delay (0.001 +. Lw_util.Det_rng.float r 0.2)
        | 3 -> Truncate (Lw_util.Det_rng.int r 64)
        | 4 -> Corrupt (Lw_util.Det_rng.int r 4096)
        | 5 -> Stall_close
        | _ -> Close_now)

type counters = {
  mutable passed : int;
  mutable drops : int;
  mutable duplicates : int;
  mutable delays : int;
  mutable truncates : int;
  mutable corrupts : int;
  mutable stalls : int;
  mutable closes : int;
}

let fresh_counters () =
  {
    passed = 0;
    drops = 0;
    duplicates = 0;
    delays = 0;
    truncates = 0;
    corrupts = 0;
    stalls = 0;
    closes = 0;
  }

let total_faults c =
  c.drops + c.duplicates + c.delays + c.truncates + c.corrupts + c.stalls + c.closes

(* Per-wrapper [counters] stay the precise, replayable record a test
   asserts on; these registry counters mirror them process-wide so a
   [--metrics] dump shows injected-fault totals across every wrapped
   endpoint. *)
let m_passed = Lw_obs.Metrics.counter "net.faulty.passed"
let m_drop = Lw_obs.Metrics.counter "net.faulty.drop"
let m_duplicate = Lw_obs.Metrics.counter "net.faulty.duplicate"
let m_delay = Lw_obs.Metrics.counter "net.faulty.delay"
let m_truncate = Lw_obs.Metrics.counter "net.faulty.truncate"
let m_corrupt = Lw_obs.Metrics.counter "net.faulty.corrupt"
let m_stall = Lw_obs.Metrics.counter "net.faulty.stall"
let m_close = Lw_obs.Metrics.counter "net.faulty.close"

let note_passed c = c.passed <- c.passed + 1; Lw_obs.Metrics.incr m_passed
let note_drop c = c.drops <- c.drops + 1; Lw_obs.Metrics.incr m_drop
let note_duplicate c = c.duplicates <- c.duplicates + 1; Lw_obs.Metrics.incr m_duplicate
let note_delay c = c.delays <- c.delays + 1; Lw_obs.Metrics.incr m_delay
let note_truncate c = c.truncates <- c.truncates + 1; Lw_obs.Metrics.incr m_truncate
let note_corrupt c = c.corrupts <- c.corrupts + 1; Lw_obs.Metrics.incr m_corrupt
let note_stall c = c.stalls <- c.stalls + 1; Lw_obs.Metrics.incr m_stall
let note_close c = c.closes <- c.closes + 1; Lw_obs.Metrics.incr m_close

let truncate_msg n msg = String.sub msg 0 (min (max 0 n) (String.length msg))

let corrupt_msg off msg =
  if String.length msg = 0 then msg
  else begin
    let b = Bytes.of_string msg in
    let i = off mod Bytes.length b in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    Bytes.unsafe_to_string b
  end

(* The wrapper assumes the strict request/response discipline every ZLTP
   endpoint follows (one recv per send, in order), which lets a fault that
   swallows a message surface deterministically: the recv that would have
   blocked forever raises [Endpoint.Timeout] instead — a virtual deadline
   expiry — so no test or bench over a faulty endpoint can ever hang. *)
let wrap ?(clock = Lw_obs.Clock.virtual_ ()) ?counters schedule (ep : Endpoint.t) =
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let send_i = ref 0 and recv_i = ref 0 in
  let lost_replies = ref 0 in
  (* replies that will never arrive: timeout *)
  let close_after_stall = ref false in
  let dup_queue = Queue.create () in
  let closed = ref false in
  let do_close () =
    if not !closed then begin
      closed := true;
      ep.Endpoint.close ()
    end
  in
  let send msg =
    if !closed then raise Endpoint.Closed;
    let f = schedule Send !send_i in
    incr send_i;
    match f with
    | None ->
        note_passed c;
        ep.Endpoint.send msg
    | Some Drop ->
        note_drop c;
        incr lost_replies
    | Some Duplicate ->
        note_duplicate c;
        ep.Endpoint.send msg;
        ep.Endpoint.send msg
    | Some (Delay d) ->
        note_delay c;
        Lw_obs.Clock.sleep clock d;
        ep.Endpoint.send msg
    | Some (Truncate n) ->
        note_truncate c;
        ep.Endpoint.send (truncate_msg n msg)
    | Some (Corrupt off) ->
        note_corrupt c;
        ep.Endpoint.send (corrupt_msg off msg)
    | Some Stall_close ->
        note_stall c;
        incr lost_replies;
        close_after_stall := true
    | Some Close_now ->
        note_close c;
        do_close ();
        raise Endpoint.Closed
  in
  let recv () =
    if !closed then raise Endpoint.Closed;
    if !lost_replies > 0 then begin
      decr lost_replies;
      if !close_after_stall then begin
        close_after_stall := false;
        do_close ()
      end;
      raise Endpoint.Timeout
    end
    else if not (Queue.is_empty dup_queue) then Queue.pop dup_queue
    else begin
      let msg = ep.Endpoint.recv () in
      let f = schedule Recv !recv_i in
      incr recv_i;
      match f with
      | None ->
          note_passed c;
          msg
      | Some Drop ->
          note_drop c;
          raise Endpoint.Timeout
      | Some Duplicate ->
          note_duplicate c;
          Queue.push msg dup_queue;
          msg
      | Some (Delay d) ->
          note_delay c;
          Lw_obs.Clock.sleep clock d;
          msg
      | Some (Truncate n) ->
          note_truncate c;
          truncate_msg n msg
      | Some (Corrupt off) ->
          note_corrupt c;
          corrupt_msg off msg
      | Some Stall_close ->
          note_stall c;
          do_close ();
          raise Endpoint.Timeout
      | Some Close_now ->
          note_close c;
          do_close ();
          raise Endpoint.Closed
    end
  in
  ({ Endpoint.send; recv; close = do_close }, c)
