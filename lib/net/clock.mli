(** Re-export of {!Lw_obs.Clock}, which now owns the clock abstraction —
    kept here so existing [Lw_net.Clock] users (retry/backoff, Faulty,
    the chaos suite) compile unchanged. See [lib/obs/clock.mli] for the
    full documentation. *)

include module type of struct
  include Lw_obs.Clock
end
