(** A bidirectional, message-oriented connection end.

    ZLTP's client and server speak through this interface, so the same
    protocol code runs over an in-memory pipe (unit/integration tests), a
    request handler (in-process CDN simulation), a byte-counting or
    simulated-WAN wrapper (cost experiments), or a real TCP socket. *)

type t = {
  send : string -> unit; (** enqueue one message; raises [Closed] after close *)
  recv : unit -> string; (** block for the next message; raises [Closed] *)
  close : unit -> unit; (** idempotent *)
}

exception Closed

exception Timeout
(** Raised by [recv] when a receive deadline expires before a message
    arrives: by {!Tcp} endpoints configured with a receive timeout, and by
    {!Faulty} wrappers when an injected fault swallows the message a
    request/response peer is waiting for. The connection should be
    considered out of sync afterwards — self-healing clients close it and
    re-dial. *)

val pipe : unit -> t * t
(** [pipe ()] is a thread-safe in-memory duplex: messages sent on one end
    arrive at the other, in order. *)

val loopback : (string -> string) -> t
(** [loopback handler] is the client end of a connection to an in-process
    server: every [send req] makes [handler req]'s reply available to the
    next [recv]. *)

type counters = { mutable sent_bytes : int; mutable recv_bytes : int; mutable messages : int }

val with_counters : t -> t * counters
(** Wrap an endpoint, accounting every message (payload bytes, both
    directions). *)
