(** Epoch-versioned storage engine: immutable snapshots + copy-on-write
    writers over the PIR bucket array.

    Two-server PIR reconstruction is XOR over two servers' shares, so it
    is only correct when both servers scanned {e bit-identical}
    databases. Publishers, however, push updates continuously. This
    engine makes the two compatible by construction:

    - readers {!pin} an immutable {!Snapshot.t} of some epoch [e] and
      scan it for as long as they like — a snapshot's bytes never change;
    - a {!Writer.t} batches publisher mutations copy-on-write against the
      current epoch and publishes them atomically as epoch [e+1] via
      {!Writer.seal}.

    Storage is an array of fixed-size blocks (power-of-two runs of
    buckets sized to the [Xorbuf] streaming-block budget, 256 KiB by
    default). Sealing shares every untouched block with the previous
    epoch, so a 1%-churn epoch costs ~1% of a full database copy — the
    property bench E22 measures.

    Epoch lifetime is refcounted: an epoch is retired once no reader
    pins it {e and} it has aged out of the [keep] most recent epochs.
    The keep window (default 2: current + previous) is what lets a
    client that pinned an epoch for a multi-fetch page visit still be
    answered while the publisher seals the next epoch underneath it. *)

type t
(** The engine: a totally-ordered sequence of epochs over one logical
    bucket database. Publishing ([Writer.seal]) and pin bookkeeping are
    mutex-protected; reads of snapshot bytes are lock-free. *)

type store = t

type snapshot
type writer

val create :
  ?hash_key:string ->
  ?keep:int ->
  ?block_bytes:int ->
  ?initial_epoch:int ->
  domain_bits:int ->
  bucket_size:int ->
  unit ->
  t
(** Epoch 0 is the empty (all-zero) database. [hash_key] is the 16-byte
    SipHash keyword key ({!index_of_key}); [keep] (default 2, min 1) is
    how many most-recent epochs survive without pins; [block_bytes]
    (default [2^18]) bounds the CoW block size.

    [initial_epoch] (default 0, must be [>= 0]) numbers the initial
    empty epoch: a restarted fleet member that persisted a manifest at
    epoch [e] rebuilds as [create ~initial_epoch:(e - 1)] plus one seal,
    so its epoch counter rejoins the cluster's instead of restarting
    from zero. *)

val domain_bits : t -> int
val size : t -> int
val bucket_size : t -> int
val total_bytes : t -> int
val hash_key : t -> string

val index_of_key : t -> string -> int
(** Keyword-to-bucket placement, identical to [Lw_pir.Keymap] with the
    same [hash_key] — the snapshot carries its keymap with it. *)

val block_buckets : t -> int
(** Buckets per CoW block (a power of two that tiles the domain). *)

val block_bytes : t -> int
val n_blocks : t -> int

(** {2 Epoch lifecycle} *)

val current : t -> snapshot
(** Latest published snapshot, without taking a pin: safe to read (its
    bytes are immutable) but it may be retired under you once newer
    epochs publish — use {!pin_latest} for anything longer-lived than a
    single borrow. *)

val current_epoch : t -> int

val oldest_epoch : t -> int
(** Oldest still-live (pinned or kept) epoch. *)

val live_epochs : t -> int list
(** Live epochs, oldest first. *)

val pin_latest : t -> snapshot
(** Pin and return the current epoch. Pair with {!unpin}. *)

type pin_error =
  | Retired  (** the epoch aged out of the keep window with no pins *)
  | Ahead  (** the epoch has not been published here yet *)

val pin : t -> epoch:int -> (snapshot, pin_error) result
(** Pin a specific epoch — how a server answers "the queried epoch":
    [Error Retired] / [Error Ahead] map onto the wire's structured
    [err_epoch_retired] / [err_epoch_ahead]. *)

val unpin : t -> snapshot -> unit
(** Release one pin. Dropping the last pin of an epoch outside the keep
    window retires it. Unpinning an already-retired snapshot is a no-op. *)

val writer : t -> writer
(** Open a copy-on-write mutation batch against the current epoch. *)

(** {2 Tracing} (obliviousness-checker hook, mirrors [Bucket_db]) *)

val set_tracing : t -> bool -> unit
val access_trace : t -> int list

(** {2 Snapshots} *)

module Snapshot : sig
  type t = snapshot
  (** A frozen database at one epoch: bucket bytes + keyword placement.
      All accessors are lock-free and safe from any domain. *)

  val epoch : t -> int
  val store : t -> store
  val domain_bits : t -> int
  val size : t -> int
  val bucket_size : t -> int
  val total_bytes : t -> int
  val hash_key : t -> string
  val index_of_key : t -> string -> int

  val get : t -> int -> string
  (** Bucket [i]'s bytes (zero-padded to [bucket_size]). Recorded in the
      access trace when tracing is on. *)

  val is_empty : t -> int -> bool
  val occupied : t -> int

  (** Scan kernels, mirroring [Bucket_db]: every bucket the kernel
      streams is traced individually, so the obliviousness checker sees
      the same per-bucket sequence over a snapshot as over a flat
      database. *)

  val xor_bucket_into_masked : t -> int -> mask:int -> dst:Bytes.t -> unit
  val xor_bucket_into_packed : t -> int -> pack:int -> dsts:Bytes.t array -> unit

  val xor_block_into_masked :
    t -> base:int -> count:int -> bits:Bytes.t -> bits_pos:int -> dst:Bytes.t -> unit
  (** Fused-scan block entry; the run may span CoW block boundaries and
      is split internally. *)

  val xor_block_into_masked2 :
    t ->
    base:int ->
    count:int ->
    bits0:Bytes.t ->
    bits0_pos:int ->
    bits1:Bytes.t ->
    bits1_pos:int ->
    dst0:Bytes.t ->
    dst1:Bytes.t ->
    unit
  (** Width-2 fused block entry (the two-probe keyword scan): one pass
      over the run feeds both accumulators; spans CoW blocks like
      {!xor_block_into_masked}. Each bucket is traced once. *)

  val set_tracing : t -> bool -> unit
  val access_trace : t -> int list

  val diff_ranges : t -> t -> (int * int) list
  (** [diff_ranges a b] is the [(base, count)] bucket ranges (ascending,
      coalesced) where the two epochs' block pointers differ — the exact
      set of buckets an incremental consumer (sharded-frontend refresh,
      replica push) must re-copy. Physical comparison, so it is correct
      across any number of intervening epochs. Raises [Invalid_argument]
      if the snapshots belong to different stores. *)
end

(** {2 Writers} *)

module Writer : sig
  type t = writer
  (** A copy-on-write mutation batch against one base epoch. Writers are
      single-owner and not thread-safe; when several race, the first to
      seal wins and the others' [seal] raises. *)

  val base_epoch : t -> int

  val set : t -> int -> string -> unit
  (** Write bucket [i] (zero-padding to [bucket_size]); the first write
      into a CoW block pays that block's copy, later writes to the same
      block are free. Raises once the writer is sealed. *)

  val clear : t -> int -> unit

  val get : t -> int -> string
  (** Read-your-writes view of the batch (uncommitted). *)

  val is_empty : t -> int -> bool

  val mutations : t -> int
  val dirty_blocks : t -> int

  val cow_bytes : t -> int
  (** Bytes copied so far — the real cost of this epoch vs. the naive
      full-database rewrite ([total_bytes]). *)

  val seal : ?epoch:int -> t -> snapshot
  (** Atomically publish the batch as the next epoch and return its
      snapshot (unpinned). Raises [Invalid_argument] if another writer
      sealed since this one was opened (stale writer), or on double
      seal.

      [?epoch] publishes under an explicit epoch number (must exceed the
      base epoch) instead of [base + 1] — how a cluster shard that was
      offline for several epochs applies one combined catch-up diff and
      lands exactly on the fleet's current epoch. Epoch numbers in one
      store may therefore have gaps; pins and [diff_ranges] are
      unaffected (both work on live snapshots, not arithmetic). *)
end
