(* The epoch-versioned storage engine.

   Two-server PIR is only correct when both servers scan bit-identical
   databases, yet publishers keep pushing updates. The engine resolves
   the tension by never mutating a published database: readers pin an
   immutable [Snapshot] of some epoch [e] and scan it for as long as
   they like, while a [Writer] batches mutations copy-on-write and
   publishes them as epoch [e+1] with one atomic [seal].

   Storage is an array of fixed-size blocks (a power-of-two run of
   buckets sized to the Xorbuf streaming-block budget). Sealing shares
   every block the writer did not touch with the previous epoch, so an
   epoch that changed 1% of the buckets costs ~1% of a full copy — the
   block arrays differ only where publishers actually wrote.

   Epoch lifetime is refcounted: [pin]/[pin_latest] take a reference,
   [unpin] releases it, and an epoch is retired (its private blocks
   dropped) once nobody pins it and it has aged out of the small keep
   window that lets briefly-behind clients still be answered. *)

(* Block budget mirrors the fused scan kernel's streaming block
   ([Lw_pir.Server.block_bytes]): CoW granularity and scan granularity
   describe the same slice of the database. *)
let default_block_bytes = 1 lsl 18
let max_domain_bits = 26
let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-store-default") 0 16

type trace = { mutable on : bool; mutable rev : int list }

type snapshot = { epoch : int; blocks : Bytes.t array; store : t }

and entry = { snap : snapshot; mutable pins : int }

and t = {
  domain_bits : int;
  bucket_size : int;
  hash_key : string;
  block_bits : int; (* log2 of buckets per block *)
  keep : int;
  lock : Mutex.t;
  mutable entries : entry list; (* newest epoch first; head is current *)
  trace : trace;
}

type store = t

let m_sealed = Lw_obs.Metrics.counter "store.epochs_sealed"
let m_cow_bytes = Lw_obs.Metrics.counter "store.cow_bytes"
let g_live = Lw_obs.Metrics.gauge "store.live_epochs"
let g_pins = Lw_obs.Metrics.gauge "store.pinned_readers"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let domain_bits t = t.domain_bits
let size t = 1 lsl t.domain_bits
let bucket_size t = t.bucket_size
let hash_key t = t.hash_key
let total_bytes t = size t * t.bucket_size
let block_buckets t = 1 lsl t.block_bits
let n_blocks t = size t lsr t.block_bits
let block_bytes t = block_buckets t * t.bucket_size

let index_of_key t key =
  Lw_crypto.Siphash.to_domain ~key:t.hash_key ~domain_bits:t.domain_bits key

let create ?(hash_key = default_hash_key) ?(keep = 2) ?(block_bytes = default_block_bytes)
    ?(initial_epoch = 0) ~domain_bits ~bucket_size () =
  if domain_bits < 1 || domain_bits > max_domain_bits then
    invalid_arg "Lw_store.create: domain_bits out of range";
  if bucket_size <= 0 then invalid_arg "Lw_store.create: bucket_size must be positive";
  if String.length hash_key <> 16 then invalid_arg "Lw_store.create: hash_key must be 16 bytes";
  if keep < 1 then invalid_arg "Lw_store.create: keep must be >= 1";
  if block_bytes < 1 then invalid_arg "Lw_store.create: block_bytes must be positive";
  if initial_epoch < 0 then invalid_arg "Lw_store.create: initial_epoch must be >= 0";
  let size = 1 lsl domain_bits in
  (* largest power-of-two bucket run that fits the block budget, clamped
     to [1, size] so blocks always tile the domain exactly *)
  let rec fit b =
    if 1 lsl (b + 1) > size then b
    else if (1 lsl (b + 1)) * bucket_size > block_bytes then b
    else fit (b + 1)
  in
  let block_bits = fit 0 in
  let t =
    {
      domain_bits;
      bucket_size;
      hash_key;
      block_bits;
      keep;
      lock = Mutex.create ();
      entries = [];
      trace = { on = false; rev = [] };
    }
  in
  let blocks =
    Array.init (size lsr block_bits) (fun _ ->
        Bytes.make ((1 lsl block_bits) * bucket_size) '\x00')
  in
  t.entries <- [ { snap = { epoch = initial_epoch; blocks; store = t }; pins = 0 } ];
  t

let current_entry t = match t.entries with e :: _ -> e | [] -> assert false

(* Retirement, under the lock: an epoch survives while someone pins it
   or while it is within the [keep] most recent epochs (current
   included) — the window that lets a client one epoch behind still be
   answered instead of bounced straight to a re-sync. *)
let retire_locked t =
  let cur = (current_entry t).snap.epoch in
  t.entries <- List.filter (fun e -> e.pins > 0 || e.snap.epoch > cur - t.keep) t.entries;
  Lw_obs.Metrics.set g_live (float_of_int (List.length t.entries))

let current t = with_lock t (fun () -> (current_entry t).snap)
let current_epoch t = (current t).epoch

let oldest_epoch t =
  with_lock t (fun () ->
      List.fold_left (fun acc e -> min acc e.snap.epoch) max_int t.entries)

let live_epochs t =
  with_lock t (fun () -> List.rev_map (fun e -> e.snap.epoch) t.entries)

let total_pins_locked t = List.fold_left (fun acc e -> acc + e.pins) 0 t.entries

let pin_latest t =
  with_lock t (fun () ->
      let e = current_entry t in
      e.pins <- e.pins + 1;
      Lw_obs.Metrics.set g_pins (float_of_int (total_pins_locked t));
      e.snap)

type pin_error = Retired | Ahead

let pin t ~epoch =
  with_lock t (fun () ->
      match List.find_opt (fun e -> e.snap.epoch = epoch) t.entries with
      | Some e ->
          e.pins <- e.pins + 1;
          Lw_obs.Metrics.set g_pins (float_of_int (total_pins_locked t));
          Ok e.snap
      | None -> if epoch > (current_entry t).snap.epoch then Error Ahead else Error Retired)

let unpin t snap =
  with_lock t (fun () ->
      match List.find_opt (fun e -> e.snap.epoch = snap.epoch) t.entries with
      | None -> () (* epoch already retired; double-unpin is harmless *)
      | Some e ->
          if e.pins > 0 then e.pins <- e.pins - 1;
          Lw_obs.Metrics.set g_pins (float_of_int (total_pins_locked t));
          if e.pins = 0 then retire_locked t)

let set_tracing t on =
  t.trace.on <- on;
  t.trace.rev <- []

let access_trace t = List.rev t.trace.rev

module Snapshot = struct
  type nonrec t = snapshot

  let epoch s = s.epoch
  let store s = s.store
  let domain_bits s = s.store.domain_bits
  let size s = 1 lsl s.store.domain_bits
  let bucket_size s = s.store.bucket_size
  let total_bytes s = size s * bucket_size s
  let hash_key s = s.store.hash_key
  let index_of_key s key = index_of_key s.store key

  let check_index s i =
    if i < 0 || i >= size s then invalid_arg "Lw_store.Snapshot: index out of range"

  let record s i = if s.store.trace.on then s.store.trace.rev <- i :: s.store.trace.rev
  let locate s i = (i lsr s.store.block_bits, i land ((1 lsl s.store.block_bits) - 1))

  let get s i =
    check_index s i;
    record s i;
    let b, local = locate s i in
    Bytes.sub_string s.blocks.(b) (local * s.store.bucket_size) s.store.bucket_size

  let is_empty s i =
    check_index s i;
    let b, local = locate s i in
    Lw_util.Xorbuf.is_zero_range s.blocks.(b) ~pos:(local * s.store.bucket_size)
      ~len:s.store.bucket_size

  let xor_bucket_into_masked s i ~mask ~dst =
    check_index s i;
    record s i;
    let b, local = locate s i in
    Lw_util.Xorbuf.xor_into_masked ~mask ~src:s.blocks.(b)
      ~src_pos:(local * s.store.bucket_size) ~dst ~dst_pos:0 ~len:s.store.bucket_size

  let xor_bucket_into_packed s i ~pack ~dsts =
    check_index s i;
    record s i;
    let b, local = locate s i in
    Lw_util.Xorbuf.xor_into_packed ~pack ~src:s.blocks.(b)
      ~src_pos:(local * s.store.bucket_size) ~dsts ~dst_pos:0 ~len:s.store.bucket_size

  (* Fused-scan block entry: the requested [base, base+count) run may
     span several CoW blocks; split it into per-block runs and hand each
     to the Xorbuf block kernel. Tracing stays bucket-granular, exactly
     as in [Bucket_db], so the obliviousness checker observes the same
     access sequence over a snapshot as over a flat database. *)
  let xor_block_into_masked s ~base ~count ~bits ~bits_pos ~dst =
    if count < 0 || base < 0 || base > size s - count then
      invalid_arg "Lw_store.Snapshot: block out of range";
    if s.store.trace.on then
      for j = 0 to count - 1 do
        s.store.trace.rev <- (base + j) :: s.store.trace.rev
      done;
    let bb = 1 lsl s.store.block_bits in
    let bsz = s.store.bucket_size in
    let off = ref 0 in
    while !off < count do
      let i = base + !off in
      let b = i lsr s.store.block_bits and local = i land (bb - 1) in
      let run = min (count - !off) (bb - local) in
      Lw_util.Xorbuf.xor_buckets_masked ~bits ~bits_pos:(bits_pos + !off) ~count:run
        ~src:s.blocks.(b) ~src_pos:(local * bsz) ~bucket:bsz ~dst;
      off := !off + run
    done

  let xor_block_into_masked2 s ~base ~count ~bits0 ~bits0_pos ~bits1 ~bits1_pos ~dst0 ~dst1 =
    if count < 0 || base < 0 || base > size s - count then
      invalid_arg "Lw_store.Snapshot: block out of range";
    if s.store.trace.on then
      for j = 0 to count - 1 do
        s.store.trace.rev <- (base + j) :: s.store.trace.rev
      done;
    let bb = 1 lsl s.store.block_bits in
    let bsz = s.store.bucket_size in
    let off = ref 0 in
    while !off < count do
      let i = base + !off in
      let b = i lsr s.store.block_bits and local = i land (bb - 1) in
      let run = min (count - !off) (bb - local) in
      Lw_util.Xorbuf.xor_buckets_masked2 ~bits0 ~bits0_pos:(bits0_pos + !off) ~bits1
        ~bits1_pos:(bits1_pos + !off) ~count:run ~src:s.blocks.(b) ~src_pos:(local * bsz)
        ~bucket:bsz ~dst0 ~dst1;
      off := !off + run
    done

  let set_tracing s on = set_tracing s.store on
  let access_trace s = access_trace s.store

  (* Physical block diff: snapshots of one engine share untouched blocks,
     so two epochs differ exactly where the block pointers differ. Always
     correct regardless of how many epochs (retired or not) lie between
     the two — retirement never resurrects a shared block. *)
  let diff_ranges a b =
    if a.store != b.store then invalid_arg "Lw_store.Snapshot.diff_ranges: different stores";
    let bb = 1 lsl a.store.block_bits in
    let ranges = ref [] in
    Array.iteri
      (fun blk ab ->
        if ab != b.blocks.(blk) then begin
          let base = blk * bb in
          match !ranges with
          | (rb, rc) :: rest when rb + rc = base -> ranges := (rb, rc + bb) :: rest
          | _ -> ranges := (base, bb) :: !ranges
        end)
      a.blocks;
    List.rev !ranges

  let occupied s =
    let n = ref 0 in
    for i = 0 to size s - 1 do
      if not (is_empty s i) then incr n
    done;
    !n
end

module Writer = struct
  type writer = {
    store : t;
    base_epoch : int;
    blocks : Bytes.t array;
    dirty : bool array;
    mutable cow_bytes : int;
    mutable mutations : int;
    mutable sealed : bool;
  }

  type nonrec t = writer

  let base_epoch w = w.base_epoch
  let cow_bytes w = w.cow_bytes
  let mutations w = w.mutations

  let dirty_blocks w =
    let n = ref 0 in
    Array.iter (fun d -> if d then incr n) w.dirty;
    !n

  let check_open w =
    if w.sealed then invalid_arg "Lw_store.Writer: writer already sealed"

  let check_index w i =
    if i < 0 || i >= size w.store then invalid_arg "Lw_store.Writer: index out of range"

  (* First touch of a block pays the copy; every later write to the same
     block is free. This is the entire CoW cost of an epoch. *)
  let touch w b =
    if not w.dirty.(b) then begin
      w.blocks.(b) <- Bytes.copy w.blocks.(b);
      w.dirty.(b) <- true;
      w.cow_bytes <- w.cow_bytes + Bytes.length w.blocks.(b)
    end

  let locate w i = (i lsr w.store.block_bits, i land ((1 lsl w.store.block_bits) - 1))

  let set w i data =
    check_open w;
    check_index w i;
    if String.length data > w.store.bucket_size then
      invalid_arg "Lw_store.Writer.set: data exceeds bucket";
    let b, local = locate w i in
    touch w b;
    let off = local * w.store.bucket_size in
    Bytes.fill w.blocks.(b) off w.store.bucket_size '\x00';
    Bytes.blit_string data 0 w.blocks.(b) off (String.length data);
    w.mutations <- w.mutations + 1

  let clear w i =
    check_open w;
    check_index w i;
    let b, local = locate w i in
    touch w b;
    Bytes.fill w.blocks.(b) (local * w.store.bucket_size) w.store.bucket_size '\x00';
    w.mutations <- w.mutations + 1

  (* Read-your-writes: publisher code validates against the in-progress
     batch (collision checks, overwrite detection) before sealing. *)
  let get w i =
    check_index w i;
    let b, local = locate w i in
    Bytes.sub_string w.blocks.(b) (local * w.store.bucket_size) w.store.bucket_size

  let is_empty w i =
    check_index w i;
    let b, local = locate w i in
    Lw_util.Xorbuf.is_zero_range w.blocks.(b) ~pos:(local * w.store.bucket_size)
      ~len:w.store.bucket_size

  let seal ?epoch w =
    check_open w;
    let t = w.store in
    let next = match epoch with None -> w.base_epoch + 1 | Some e -> e in
    if next <= w.base_epoch then
      invalid_arg "Lw_store.Writer.seal: epoch must exceed the base epoch";
    with_lock t (fun () ->
        let cur = current_entry t in
        if cur.snap.epoch <> w.base_epoch then
          invalid_arg "Lw_store.Writer.seal: stale writer (another epoch was sealed)";
        w.sealed <- true;
        (* the writer's block array becomes the new epoch verbatim:
           untouched slots still point at the previous epoch's blocks *)
        let snap = { epoch = next; blocks = w.blocks; store = t } in
        t.entries <- { snap; pins = 0 } :: t.entries;
        retire_locked t;
        Lw_obs.Metrics.incr m_sealed;
        Lw_obs.Metrics.add m_cow_bytes w.cow_bytes;
        snap)
end

type writer = Writer.t

let writer t =
  with_lock t (fun () ->
      let cur = current_entry t in
      {
        Writer.store = t;
        base_epoch = cur.snap.epoch;
        blocks = Array.copy cur.snap.blocks;
        dirty = Array.make (n_blocks t) false;
        cow_bytes = 0;
        mutations = 0;
        sealed = false;
      })
