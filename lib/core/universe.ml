type geometry = {
  code_blob_size : int;
  data_blob_size : int;
  fetches_per_page : int;
  code_domain_bits : int;
  data_domain_bits : int;
}

let default_geometry =
  {
    code_blob_size = 16 * 1024;
    data_blob_size = 1024;
    fetches_per_page = 5;
    code_domain_bits = 10;
    data_domain_bits = 12;
  }

let paper_geometry =
  {
    code_blob_size = 1024 * 1024;
    data_blob_size = 4096;
    fetches_per_page = 5;
    code_domain_bits = 16;
    data_domain_bits = 22;
  }

type t = {
  name : string;
  seed : string;
  geometry : geometry;
  code_store : Lw_pir.Store.t;
  data_store : Lw_pir.Store.t;
  kw_store : Lw_pir.Kw_store.t;
      (* cuckoo-backed keyword index over the same paths as the data
         store: same geometry, separate hash key, sealed per epoch *)
  code_hash_key : string;
  data_hash_key : string;
  kw_hash_key : string;
  owners : (string, string) Hashtbl.t; (* domain -> publisher *)
  data_paths : (string, unit) Hashtbl.t;
  (* single-server PIR: one hint cache per store, shared by every server
     built over it, so the per-epoch hint is computed once and then
     served to any number of clients. Publishing warms the data hint
     (seals it "alongside the epoch") once single serving is in use. *)
  spir_data_cache : Lw_pir.Spir.Hint_cache.t;
  spir_code_cache : Lw_pir.Spir.Hint_cache.t;
  mutable spir_serving : bool;
}

let derive_key seed label = String.sub (Lw_crypto.Sha256.digest (seed ^ "/" ^ label)) 0 16

let create ?(seed = "lightweb-universe") ~name geometry =
  if geometry.fetches_per_page < 1 then invalid_arg "Universe.create: fetches_per_page < 1";
  let code_hash_key = derive_key seed (name ^ "/code") in
  let data_hash_key = derive_key seed (name ^ "/data") in
  let kw_hash_key = derive_key seed (name ^ "/keyword") in
  {
    name;
    seed;
    geometry;
    code_store =
      Lw_pir.Store.create ~hash_key:code_hash_key ~domain_bits:geometry.code_domain_bits
        ~bucket_size:geometry.code_blob_size ();
    data_store =
      Lw_pir.Store.create ~hash_key:data_hash_key ~domain_bits:geometry.data_domain_bits
        ~bucket_size:geometry.data_blob_size ();
    kw_store =
      Lw_pir.Kw_store.create ~hash_key:kw_hash_key ~domain_bits:geometry.data_domain_bits
        ~bucket_size:geometry.data_blob_size ();
    code_hash_key;
    data_hash_key;
    kw_hash_key;
    owners = Hashtbl.create 64;
    data_paths = Hashtbl.create 1024;
    spir_data_cache = Lw_pir.Spir.Hint_cache.create Lw_pir.Spir.default_params;
    spir_code_cache = Lw_pir.Spir.Hint_cache.create Lw_pir.Spir.default_params;
    spir_serving = false;
  }

let name t = t.name
let geometry t = t.geometry
let seed t = t.seed
let owner_of t domain = Hashtbl.find_opt t.owners domain

let domains t =
  Hashtbl.fold (fun d p acc -> (d, p) :: acc) t.owners []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let data_paths t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.data_paths [] |> List.sort String.compare

let claim_domain t ~publisher ~domain =
  if not (Lw_path.valid_domain domain) then Error (Printf.sprintf "invalid domain %S" domain)
  else begin
    match Hashtbl.find_opt t.owners domain with
    | Some existing when not (String.equal existing publisher) ->
        Error (Printf.sprintf "domain %s is owned by %s" domain existing)
    | Some _ -> Ok ()
    | None ->
        Hashtbl.replace t.owners domain publisher;
        Ok ()
  end

let check_owner t ~publisher ~domain =
  match Hashtbl.find_opt t.owners domain with
  | Some owner when String.equal owner publisher -> Ok ()
  | Some owner -> Error (Printf.sprintf "domain %s is owned by %s" domain owner)
  | None -> Error (Printf.sprintf "domain %s is unclaimed; claim it first" domain)

let push_code t ~publisher ~domain ~source =
  match check_owner t ~publisher ~domain with
  | Error _ as e -> e
  | Ok () -> (
      match Lightscript.parse source with
      | Error e -> Error (Format.asprintf "code does not parse: %a" Lightscript.pp_error e)
      | Ok program ->
          if not (Lightscript.has_function program "plan") then Error "code must define fn plan"
          else if not (Lightscript.has_function program "render") then
            Error "code must define fn render"
          else begin
            match Lw_pir.Store.insert t.code_store ~key:domain ~value:source with
            | Ok () -> Ok ()
            | Error Lw_pir.Store.Too_large ->
                Error
                  (Printf.sprintf "code blob of %d bytes exceeds universe code size %d"
                     (String.length source) t.geometry.code_blob_size)
            | Error (Lw_pir.Store.Collision other) ->
                Error (Printf.sprintf "code slot collides with domain %s" other)
          end)

let push_data t ~publisher ~path ~value =
  match Lw_path.parse path with
  | Error e -> Error e
  | Ok p -> (
      match check_owner t ~publisher ~domain:(Lw_path.domain p) with
      | Error _ as e -> e
      | Ok () -> (
          let text = Lw_json.Json.to_string value in
          match Lw_pir.Store.insert t.data_store ~key:path ~value:text with
          | Ok () -> (
              (* mirror the page into the keyword index under its final
                 (post-rename) path, so keyword GET and path GET resolve
                 to byte-identical values *)
              match Lw_pir.Kw_store.insert t.kw_store ~key:path ~value:text with
              | Ok () ->
                  Hashtbl.replace t.data_paths path ();
                  Ok ()
              | Error `Too_large ->
                  (* unreachable: the keyword store shares the data
                     store's bucket geometry, so anything the data insert
                     accepted fits here too *)
                  Error (Printf.sprintf "keyword blob for %s exceeds universe data size" path))
          | Error Lw_pir.Store.Too_large ->
              Error
                (Printf.sprintf "data blob of %d bytes exceeds universe data size %d"
                   (String.length text) t.geometry.data_blob_size)
          | Error (Lw_pir.Store.Collision other) ->
              Error
                (Printf.sprintf
                   "path %s hash-collides with existing path %s; pick another name" path other)))

let remove_data t ~publisher ~path =
  match Lw_path.parse path with
  | Error e -> Error e
  | Ok p -> (
      match check_owner t ~publisher ~domain:(Lw_path.domain p) with
      | Error _ as e -> e
      | Ok () ->
          Hashtbl.remove t.data_paths path;
          ignore (Lw_pir.Kw_store.remove t.kw_store path);
          Ok (Lw_pir.Store.remove t.data_store path))

let page_count t = Lw_pir.Store.count t.data_store
let code_count t = Lw_pir.Store.count t.code_store
let code_source t domain = Lw_pir.Store.find t.code_store domain
let data_value t path = Lw_pir.Store.find t.data_store path

(* Seal whatever the publishers have pushed so far, so both logical
   servers of a pair serve from the same published epoch; returns the
   (code, data) epochs now current. *)
let publish_updates t =
  ignore (Lw_pir.Kw_store.publish t.kw_store);
  let epochs =
    ( Lw_store.Snapshot.epoch (Lw_pir.Store.publish t.code_store),
      Lw_store.Snapshot.epoch (Lw_pir.Store.publish t.data_store) )
  in
  (* once a single-server deployment exists, every new epoch's hint is
     sealed with it, so no client ever pays the hint computation *)
  if t.spir_serving then begin
    Lw_pir.Spir.Hint_cache.warm t.spir_data_cache (Lw_pir.Store.engine t.data_store);
    Lw_pir.Spir.Hint_cache.warm t.spir_code_cache (Lw_pir.Store.engine t.code_store)
  end;
  epochs

let keyword_epoch t = Lw_store.current_epoch (Lw_pir.Kw_store.engine t.kw_store)
let keyword_store t = t.kw_store

let pir_server t ~which store hash_key blob_size =
  (* publish pending mutations first: a server must never see the
     uncommitted batch, only sealed epochs *)
  ignore (Lw_pir.Store.publish store);
  Zltp_server.create
    ~server_id:(Printf.sprintf "%s/%s" t.name which)
    ~hash_key ~blob_size
    (Zltp_backend.versioned (Lw_pir.Store.engine store))

let code_servers t =
  ( pir_server t ~which:"code-0" t.code_store t.code_hash_key t.geometry.code_blob_size,
    pir_server t ~which:"code-1" t.code_store t.code_hash_key t.geometry.code_blob_size )

let data_servers t =
  ( pir_server t ~which:"data-0" t.data_store t.data_hash_key t.geometry.data_blob_size,
    pir_server t ~which:"data-1" t.data_store t.data_hash_key t.geometry.data_blob_size )

let keyword_servers t =
  (* seal pending keyword mutations first, like pir_server: servers only
     ever see sealed epochs *)
  ignore (Lw_pir.Kw_store.publish t.kw_store);
  let mk which =
    Zltp_server.create
      ~server_id:(Printf.sprintf "%s/%s" t.name which)
      ~hash_key:t.kw_hash_key ~blob_size:t.geometry.data_blob_size
      (Zltp_backend.versioned (Lw_pir.Kw_store.engine t.kw_store))
  in
  (mk "keyword-0", mk "keyword-1")

let sharded_keyword_servers t ~shard_bits =
  ignore (Lw_pir.Kw_store.publish t.kw_store);
  let mk which =
    Zltp_server.create
      ~server_id:(Printf.sprintf "%s/%s" t.name which)
      ~hash_key:t.kw_hash_key ~blob_size:t.geometry.data_blob_size
      (Zltp_backend.sharded
         (Zltp_frontend.of_store (Lw_pir.Kw_store.engine t.kw_store) ~shard_bits))
  in
  (mk "keyword-sharded-0", mk "keyword-sharded-1")

let sharded_data_servers t ~shard_bits =
  ignore (Lw_pir.Store.publish t.data_store);
  let mk which =
    Zltp_server.create
      ~server_id:(Printf.sprintf "%s/%s" t.name which)
      ~hash_key:t.data_hash_key ~blob_size:t.geometry.data_blob_size
      (Zltp_backend.sharded
         (Zltp_frontend.of_store (Lw_pir.Store.engine t.data_store) ~shard_bits))
  in
  (mk "data-sharded-0", mk "data-sharded-1")

let enclave_data_server t =
  let capacity = max 64 (2 * page_count t) in
  let enclave =
    Lw_oram.Enclave.create
      ~seed:(t.name ^ "/enclave")
      ~capacity ~value_size:t.geometry.data_blob_size ()
  in
  Hashtbl.iter
    (fun path () ->
      match data_value t path with
      | Some v -> (
          match Lw_oram.Enclave.put enclave ~key:path ~value:v with
          | Ok () -> ()
          | Error _ -> failwith "enclave_data_server: capacity exhausted")
      | None -> ())
    t.data_paths;
  Zltp_server.create
    ~server_id:(t.name ^ "/enclave")
    ~hash_key:t.data_hash_key ~blob_size:t.geometry.data_blob_size
    (Zltp_backend.enclave enclave)

(* The third deployment model: ONE server, no non-collusion partner and
   no enclave — privacy from LWE alone. The store is the same sealed
   epoch engine the two-server pair scans; only the verb family differs. *)
let single_data_server t =
  ignore (Lw_pir.Store.publish t.data_store);
  t.spir_serving <- true;
  let engine = Lw_pir.Store.engine t.data_store in
  Lw_pir.Spir.Hint_cache.warm t.spir_data_cache engine;
  Zltp_server.create
    ~server_id:(t.name ^ "/data-single")
    ~hash_key:t.data_hash_key ~blob_size:t.geometry.data_blob_size
    (Zltp_backend.single ~cache:t.spir_data_cache engine)

let single_code_server t =
  ignore (Lw_pir.Store.publish t.code_store);
  t.spir_serving <- true;
  let engine = Lw_pir.Store.engine t.code_store in
  Lw_pir.Spir.Hint_cache.warm t.spir_code_cache engine;
  Zltp_server.create
    ~server_id:(t.name ^ "/code-single")
    ~hash_key:t.code_hash_key ~blob_size:t.geometry.code_blob_size
    (Zltp_backend.single ~cache:t.spir_code_cache engine)

let spir_data_hint_cache t = t.spir_data_cache

let stats t =
  [
    ("domains", Hashtbl.length t.owners);
    ("code blobs", code_count t);
    ("data blobs", page_count t);
    ("keyword entries", Lw_pir.Kw_store.count t.kw_store);
    ("keyword stash", Lw_pir.Kw_store.stash_size t.kw_store);
    ("code blob size", t.geometry.code_blob_size);
    ("data blob size", t.geometry.data_blob_size);
    ("fetches per page", t.geometry.fetches_per_page);
    ("data domain", 1 lsl t.geometry.data_domain_bits);
  ]
