module type S = sig
  type view

  val kind : string
  val modes : Zltp_mode.t list
  val domain_bits : int
  val health : unit -> int * int
  val current_epoch : unit -> int
  val oldest_epoch : unit -> int
  val set_advertised_epoch : int option -> unit
  val advertised_epoch : unit -> int option
  val set_scan_domains : int -> unit
  val pin : epoch:int -> (view, int * string) result
  val unpin : view -> unit
  val answer : view -> Lw_dpf.Dpf.key -> (string, int * string) result
  val answer_batch : view -> Lw_dpf.Dpf.key array -> (string array, int * string) result
  val spir_hint : view -> (string, int * string) result
  val spir_answer : view -> string -> (string, int * string) result
  val enclave_get : string -> (string option, int * string) result
end

type t = (module S)

let wrong_mode verb kind =
  Error (Zltp_wire.err_wrong_mode, Printf.sprintf "%s not supported by %s backend" verb kind)

let check_epoch_exact ~have ~queried =
  if queried = have then Ok ()
  else if queried > have then
    Error (Zltp_wire.err_epoch_ahead, Printf.sprintf "epoch %d not yet published" queried)
  else Error (Zltp_wire.err_epoch_retired, Printf.sprintf "epoch %d retired" queried)

let pin_error_wire ~epoch = function
  | Lw_store.Retired ->
      (Zltp_wire.err_epoch_retired, Printf.sprintf "epoch %d retired" epoch)
  | Lw_store.Ahead ->
      (Zltp_wire.err_epoch_ahead, Printf.sprintf "epoch %d not yet published" epoch)

(* The single/batch scan entry points, through the parallel kernel when
   the knob asks for it (the kernel's own work-size cutoff keeps small
   databases serial either way). *)
let scan_one ~domains s k =
  if domains > 1 then Lw_pir.Server.answer_domains ~domains s k else Lw_pir.Server.answer s k

let scan_many ~domains s keys =
  if domains > 1 then Lw_pir.Server.answer_batch_domains ~domains s keys
  else Lw_pir.Server.answer_batch s keys

(* Advertised-epoch override, shared by every constructor: a mutable cell
   the control plane flips; [current] falls back to the backend's own
   epoch when unset. *)
let advertised () =
  let cell = ref None in
  let set v = cell := v in
  let get () = !cell in
  let current own = match !cell with Some e -> e | None -> own () in
  (set, get, current)

let flat server : t =
  let set_adv, get_adv, current = advertised () in
  let domains = ref 1 in
  (module struct
    type view = unit

    let kind = "flat"
    let modes = [ Zltp_mode.Pir2 ]
    let domain_bits = Lw_pir.Server.domain_bits server
    let health () = (1, 0)
    let current_epoch () = current (fun () -> 0)
    let oldest_epoch () = 0
    let set_advertised_epoch = set_adv
    let advertised_epoch = get_adv
    let set_scan_domains d = domains := d

    let pin ~epoch =
      match check_epoch_exact ~have:0 ~queried:epoch with Ok () -> Ok () | Error _ as e -> e

    let unpin () = ()
    let answer () k = Ok (scan_one ~domains:!domains server k)
    let answer_batch () keys = Ok (scan_many ~domains:!domains server keys)
    let spir_hint () = wrong_mode "spir_hint" kind
    let spir_answer () _ = wrong_mode "spir_answer" kind
    let enclave_get _ = wrong_mode "enclave_get" kind
  end)

let versioned store : t =
  let set_adv, get_adv, current = advertised () in
  let domains = ref 1 in
  (module struct
    type view = Lw_store.snapshot

    let kind = "versioned"
    let modes = [ Zltp_mode.Pir2 ]
    let domain_bits = Lw_store.domain_bits store
    let health () = (1, 0)
    let current_epoch () = current (fun () -> Lw_store.current_epoch store)
    let oldest_epoch () = Lw_store.oldest_epoch store
    let set_advertised_epoch = set_adv
    let advertised_epoch = get_adv
    let set_scan_domains d = domains := d

    let pin ~epoch =
      match Lw_store.pin store ~epoch with
      | Ok snap -> Ok snap
      | Error Lw_store.Retired ->
          Error (Zltp_wire.err_epoch_retired, Printf.sprintf "epoch %d retired" epoch)
      | Error Lw_store.Ahead ->
          Error (Zltp_wire.err_epoch_ahead, Printf.sprintf "epoch %d not yet published" epoch)

    let unpin snap = Lw_store.unpin store snap
    let answer snap k = Ok (scan_one ~domains:!domains (Lw_pir.Server.of_snapshot snap) k)

    let answer_batch snap keys =
      Ok (scan_many ~domains:!domains (Lw_pir.Server.of_snapshot snap) keys)

    let spir_hint _ = wrong_mode "spir_hint" kind
    let spir_answer _ _ = wrong_mode "spir_answer" kind
    let enclave_get _ = wrong_mode "enclave_get" kind
  end)

let sharded fe : t =
  let set_adv, get_adv, current = advertised () in
  (module struct
    type view = unit

    let kind = "sharded"
    let modes = [ Zltp_mode.Pir2 ]
    let domain_bits = Zltp_frontend.domain_bits fe
    let health () = (Zltp_frontend.shard_count fe, Zltp_frontend.shards_down fe)
    let current_epoch () = current (fun () -> Zltp_frontend.announced_epoch fe)
    let oldest_epoch () = Zltp_frontend.announced_epoch fe
    let set_advertised_epoch = set_adv
    let advertised_epoch = get_adv
    let set_scan_domains _ = () (* the front-end carries its own knob *)

    let pin ~epoch =
      match Zltp_frontend.epoch_agreed fe with
      | None -> Error (Zltp_wire.err_degraded, "epoch mismatch across shards")
      | Some have -> (
          match check_epoch_exact ~have ~queried:epoch with Ok () -> Ok () | Error _ as e -> e)

    let unpin () = ()

    let answer () k =
      match Zltp_frontend.answer_result fe k with
      | Ok share -> Ok share
      | Error e -> Error (Zltp_wire.err_degraded, e)

    let answer_batch () keys =
      match Zltp_frontend.answer_batch_result fe keys with
      | Ok shares -> Ok shares
      | Error e -> Error (Zltp_wire.err_degraded, e)

    let spir_hint () = wrong_mode "spir_hint" kind
    let spir_answer () _ = wrong_mode "spir_answer" kind
    let enclave_get _ = wrong_mode "enclave_get" kind
  end)

let enclave e : t =
  let set_adv, get_adv, current = advertised () in
  (module struct
    type view = unit

    let kind = "enclave"
    let modes = [ Zltp_mode.Enclave ]
    let domain_bits = 0
    let health () = (1, 0)
    let current_epoch () = current (fun () -> 0)
    let oldest_epoch () = 0
    let set_advertised_epoch = set_adv
    let advertised_epoch = get_adv
    let set_scan_domains _ = ()

    let pin ~epoch =
      match check_epoch_exact ~have:0 ~queried:epoch with Ok () -> Ok () | Error _ as er -> er

    let unpin () = ()
    let answer () _ = wrong_mode "answer" kind
    let answer_batch () _ = wrong_mode "answer_batch" kind
    let spir_hint () = wrong_mode "spir_hint" kind
    let spir_answer () _ = wrong_mode "spir_answer" kind
    let enclave_get key = Ok (Lw_oram.Enclave.get e key)
  end)

let single ?cache store : t =
  let cache =
    match cache with Some c -> c | None -> Lw_pir.Spir.Hint_cache.create Lw_pir.Spir.default_params
  in
  let set_adv, get_adv, current = advertised () in
  (module struct
    type view = Lw_store.snapshot

    let kind = "single"
    let modes = [ Zltp_mode.Single ]
    let domain_bits = Lw_store.domain_bits store
    let health () = (1, 0)
    let current_epoch () = current (fun () -> Lw_store.current_epoch store)
    let oldest_epoch () = Lw_store.oldest_epoch store
    let set_advertised_epoch = set_adv
    let advertised_epoch = get_adv
    let set_scan_domains _ = () (* the SPIR scan kernel is serial by design *)

    let pin ~epoch =
      match Lw_store.pin store ~epoch with
      | Ok snap -> Ok snap
      | Error Lw_store.Retired ->
          Error (Zltp_wire.err_epoch_retired, Printf.sprintf "epoch %d retired" epoch)
      | Error Lw_store.Ahead ->
          Error (Zltp_wire.err_epoch_ahead, Printf.sprintf "epoch %d not yet published" epoch)

    let unpin snap = Lw_store.unpin store snap
    let answer _ _ = wrong_mode "answer" kind
    let answer_batch _ _ = wrong_mode "answer_batch" kind

    let spir_hint snap =
      (* served from the shared cache so the hint is computed once per
         epoch, not once per client; the epoch is pinned by the caller,
         so the cache's own pin cannot race a retire *)
      match Lw_pir.Spir.Hint_cache.get cache store ~epoch:(Lw_store.Snapshot.epoch snap) with
      | Ok hint -> Ok hint
      | Error e -> Error (pin_error_wire ~epoch:(Lw_store.Snapshot.epoch snap) e)

    let spir_answer snap query =
      match Lw_pir.Spir.answer snap query with
      | Ok answer -> Ok answer
      | Error e -> Error (Zltp_wire.err_bad_request, e)

    let enclave_get _ = wrong_mode "enclave_get" kind
  end)
