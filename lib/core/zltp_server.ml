let log_src = Logs.Src.create "lightweb.zltp" ~doc:"ZLTP server events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type backend =
  | Pir_flat of Lw_pir.Server.t
  | Pir_versioned of Lw_store.t
  | Pir_sharded of Zltp_frontend.t
  | Enclave_backend of Lw_oram.Enclave.t

type t = {
  backend : backend;
  blob_size : int;
  hash_key : string;
  server_id : string;
  scan_domains : int;
      (* workers the flat/versioned backends' scan kernels may use
         (Server.answer_domains); a sharded backend carries its own knob
         on the front-end *)
  mutable queries : int;
  mutable advertised_epoch : int option;
      (* control-plane override of the epoch announced in
         Welcome/Health_reply/Sync_reply; answers still serve whatever
         live epoch a query names *)
}

let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-store-default") 0 16

let create ?(server_id = "zltp-server") ?(hash_key = default_hash_key) ?(scan_domains = 1)
    ~blob_size backend =
  if blob_size < 1 then invalid_arg "Zltp_server.create: blob_size must be positive";
  if scan_domains < 1 then invalid_arg "Zltp_server.create: scan_domains must be >= 1";
  { backend; blob_size; hash_key; server_id; scan_domains; queries = 0; advertised_epoch = None }

(* The single/batch scan entry points, through the parallel kernel when
   the knob asks for it (the kernel's own work-size cutoff keeps small
   databases serial either way). *)
let scan_one t s k =
  if t.scan_domains > 1 then Lw_pir.Server.answer_domains ~domains:t.scan_domains s k
  else Lw_pir.Server.answer s k

let scan_many t s keys =
  if t.scan_domains > 1 then Lw_pir.Server.answer_batch_domains ~domains:t.scan_domains s keys
  else Lw_pir.Server.answer_batch s keys

let backend t = t.backend
let blob_size t = t.blob_size
let queries_served t = t.queries

let modes t =
  match t.backend with
  | Pir_flat _ | Pir_versioned _ | Pir_sharded _ -> [ Zltp_mode.Pir2 ]
  | Enclave_backend _ -> [ Zltp_mode.Enclave ]

let domain_bits t =
  match t.backend with
  | Pir_flat s -> Lw_pir.Server.domain_bits s
  | Pir_versioned st -> Lw_store.domain_bits st
  | Pir_sharded fe -> Zltp_frontend.domain_bits fe
  | Enclave_backend _ -> 0

let health t =
  match t.backend with
  | Pir_flat _ | Pir_versioned _ | Enclave_backend _ -> (1, 0)
  | Pir_sharded fe -> (Zltp_frontend.shard_count fe, Zltp_frontend.shards_down fe)

(* The epoch this replica announces (Welcome/Health/Sync). Unversioned
   backends are forever at epoch 0 — a degenerate engine that never
   seals. A cluster control plane may override the announcement
   ([set_advertised_epoch]) so a two-phase rollout can seal the next
   epoch on every replica first and flip what clients learn second;
   queries still serve whatever live epoch they name. *)
let current_epoch t =
  match t.advertised_epoch with
  | Some e -> e
  | None -> (
      match t.backend with
      | Pir_versioned st -> Lw_store.current_epoch st
      | Pir_sharded fe -> Zltp_frontend.announced_epoch fe
      | Pir_flat _ | Enclave_backend _ -> 0)

let set_advertised_epoch t e = t.advertised_epoch <- e
let advertised_epoch t = t.advertised_epoch

let oldest_epoch t =
  match t.backend with
  | Pir_versioned st -> Lw_store.oldest_epoch st
  | Pir_sharded fe -> Zltp_frontend.announced_epoch fe
  | Pir_flat _ | Enclave_backend _ -> 0

type conn = { server : t; mutable mode : Zltp_mode.t option }

let conn server = { server; mode = None }

let err ?(qid = 0) code message = Some (Zltp_wire.Err { qid; code; message })

let deserialize_key t dpf_key =
  match Lw_dpf.Dpf.deserialize dpf_key with
  | Error e -> Error (Zltp_wire.err_bad_request, Printf.sprintf "bad DPF key: %s" e)
  | Ok k ->
      if Lw_dpf.Dpf.domain_bits k <> domain_bits t then
        Error (Zltp_wire.err_bad_request, "domain mismatch")
      else Ok k

(* Answer strictly against the queried epoch. A versioned backend pins
   that epoch for the duration of the scan (so a concurrent seal cannot
   retire it mid-answer) and unpins on every exit path; an epoch the
   replica no longer / does not yet hold becomes the structured
   err_epoch_retired / err_epoch_ahead the client's re-sync understands. *)
let with_pinned st ~epoch f =
  match Lw_store.pin st ~epoch with
  | Error Lw_store.Retired ->
      Error (Zltp_wire.err_epoch_retired, Printf.sprintf "epoch %d retired" epoch)
  | Error Lw_store.Ahead ->
      Error (Zltp_wire.err_epoch_ahead, Printf.sprintf "epoch %d not yet published" epoch)
  | Ok snap ->
      Fun.protect
        ~finally:(fun () -> Lw_store.unpin st snap)
        (fun () -> Ok (f (Lw_pir.Server.of_snapshot snap)))

let check_epoch_exact ~have ~queried =
  if queried = have then Ok ()
  else if queried > have then
    Error (Zltp_wire.err_epoch_ahead, Printf.sprintf "epoch %d not yet published" queried)
  else Error (Zltp_wire.err_epoch_retired, Printf.sprintf "epoch %d retired" queried)

let answer_pir t ~epoch dpf_key =
  match deserialize_key t dpf_key with
  | Error _ as e -> e
  | Ok k -> (
      match t.backend with
      | Pir_flat s -> (
          match check_epoch_exact ~have:0 ~queried:epoch with
          | Error _ as e -> e
          | Ok () -> Ok (scan_one t s k))
      | Pir_versioned st -> with_pinned st ~epoch (fun s -> scan_one t s k)
      | Pir_sharded fe -> (
          match Zltp_frontend.epoch_agreed fe with
          | None -> Error (Zltp_wire.err_degraded, "epoch mismatch across shards")
          | Some have -> (
              match check_epoch_exact ~have ~queried:epoch with
              | Error _ as e -> e
              | Ok () -> (
                  match Zltp_frontend.answer_result fe k with
                  | Ok share -> Ok share
                  | Error e -> Error (Zltp_wire.err_degraded, e))))
      | Enclave_backend _ -> Error (Zltp_wire.err_wrong_mode, "wrong mode"))

(* A batch deserialises and validates every key before any evaluation, so
   a malformed key rejects the whole request rather than wasting a
   partial scan; the accepted keys then ride the bit-packed batch kernel
   — one streamed pass over the data per 8 queries — instead of
   re-entering the single-query path per key. *)
let answer_pir_batch t ~epoch dpf_keys =
  let rec deserialize_all acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | key :: rest -> (
        match deserialize_key t key with
        | Ok k -> deserialize_all (k :: acc) rest
        | Error _ as e -> e)
  in
  match deserialize_all [] dpf_keys with
  | Error _ as e -> e
  | Ok keys -> (
      match t.backend with
      | Pir_flat s -> (
          match check_epoch_exact ~have:0 ~queried:epoch with
          | Error _ as e -> e
          | Ok () -> Ok (Array.to_list (scan_many t s keys)))
      | Pir_versioned st -> with_pinned st ~epoch (fun s -> Array.to_list (scan_many t s keys))
      | Pir_sharded fe -> (
          match Zltp_frontend.epoch_agreed fe with
          | None -> Error (Zltp_wire.err_degraded, "epoch mismatch across shards")
          | Some have -> (
              match check_epoch_exact ~have ~queried:epoch with
              | Error _ as e -> e
              | Ok () -> (
                  match Zltp_frontend.answer_batch_result fe keys with
                  | Ok shares -> Ok (Array.to_list shares)
                  | Error e -> Error (Zltp_wire.err_degraded, e))))
      | Enclave_backend _ -> Error (Zltp_wire.err_wrong_mode, "wrong mode"))

let handle c msg =
  let t = c.server in
  match msg with
  | Zltp_wire.Bye -> None
  | Zltp_wire.Health { qid } ->
      (* liveness probe: answerable before Hello, so a failing-over client
         can cheaply rank replicas without a full handshake *)
      let shards_total, shards_down = health t in
      Some (Zltp_wire.Health_reply { qid; shards_total; shards_down; epoch = current_epoch t })
  | Zltp_wire.Sync { qid } ->
      (* epoch probe: like Health, answerable before Hello, so a client
         recovering from an epoch error can re-learn both replicas'
         published range without re-handshaking *)
      Some (Zltp_wire.Sync_reply { qid; epoch = current_epoch t; oldest = oldest_epoch t })
  | Zltp_wire.Hello { version; modes = client_modes } ->
      if version <> Zltp_wire.protocol_version then
        err Zltp_wire.err_bad_request "unsupported protocol version"
      else begin
        match Zltp_mode.negotiate ~client:client_modes ~server:(modes t) with
        | None ->
            Log.info (fun m -> m "%s: hello with no common mode" t.server_id);
            err Zltp_wire.err_bad_request "no common mode of operation"
        | Some mode ->
            Log.debug (fun m -> m "%s: session negotiated %s" t.server_id (Zltp_mode.name mode));
            c.mode <- Some mode;
            Some
              (Zltp_wire.Welcome
                 {
                   version = Zltp_wire.protocol_version;
                   mode;
                   domain_bits = domain_bits t;
                   blob_size = t.blob_size;
                   hash_key = t.hash_key;
                   server_id = t.server_id;
                   epoch = current_epoch t;
                 })
      end
  | Zltp_wire.Pir_query { qid; epoch; dpf_key } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some Zltp_mode.Enclave -> err ~qid Zltp_wire.err_wrong_mode "session is in enclave mode"
      | Some Zltp_mode.Pir2 -> (
          match answer_pir t ~epoch dpf_key with
          | Ok share ->
              t.queries <- t.queries + 1;
              (* note: nothing about the query is loggable beyond its
                 existence — the server never has the request key *)
              Log.debug (fun m -> m "%s: private-GET #%d answered" t.server_id t.queries);
              Some (Zltp_wire.Answer { qid; epoch; share })
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected query: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Pir_batch { qid; epoch; dpf_keys } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some Zltp_mode.Enclave -> err ~qid Zltp_wire.err_wrong_mode "session is in enclave mode"
      | Some Zltp_mode.Pir2 -> (
          match answer_pir_batch t ~epoch dpf_keys with
          | Ok shares ->
              t.queries <- t.queries + List.length shares;
              Log.debug (fun m ->
                  m "%s: private-GET batch of %d answered" t.server_id (List.length shares));
              Some (Zltp_wire.Batch_answer { qid; epoch; shares })
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected batch: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Keyword_query { qid; epoch; dpf_key0; dpf_key1 } -> (
      (* keyword GET = both cuckoo candidate probes as one width-2 entry
         into the bit-packed batch kernel: one streamed scan pass, one
         round trip, and the same epoch pinning / degraded refusal as any
         other PIR batch *)
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some Zltp_mode.Enclave -> err ~qid Zltp_wire.err_wrong_mode "session is in enclave mode"
      | Some Zltp_mode.Pir2 -> (
          match answer_pir_batch t ~epoch [ dpf_key0; dpf_key1 ] with
          | Ok [ share0; share1 ] ->
              t.queries <- t.queries + 1;
              Log.debug (fun m -> m "%s: keyword-GET #%d answered" t.server_id t.queries);
              Some (Zltp_wire.Keyword_answer { qid; epoch; share0; share1 })
          | Ok _ -> err ~qid Zltp_wire.err_internal "keyword answer arity"
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected keyword query: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Enclave_get { qid; key } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some Zltp_mode.Pir2 -> err ~qid Zltp_wire.err_wrong_mode "session is in PIR mode"
      | Some Zltp_mode.Enclave -> (
          match t.backend with
          | Enclave_backend e ->
              t.queries <- t.queries + 1;
              Some (Zltp_wire.Enclave_answer { qid; value = Lw_oram.Enclave.get e key })
          | Pir_flat _ | Pir_versioned _ | Pir_sharded _ ->
              err ~qid Zltp_wire.err_internal "backend/mode mismatch"))

(* The request path must never let an exception escape and tear the whole
   connection (or, under a shared-process server, the process) down: any
   unexpected raise becomes a structured [Err] and the session survives.
   [Invalid_argument]/[Failure] from deep in a backend are internal bugs
   surfaced as err_internal, not protocol violations by the client. *)
let handle_frame c frame =
  match Zltp_wire.decode_client frame with
  | Error e ->
      Some
        (Zltp_wire.encode_server
           (Zltp_wire.Err { qid = 0; code = Zltp_wire.err_bad_request; message = e }))
  | Ok msg -> (
      let qid = Option.value (Zltp_wire.request_qid msg) ~default:0 in
      match handle c msg with
      | reply -> Option.map Zltp_wire.encode_server reply
      | exception exn ->
          let e = Printexc.to_string exn in
          Log.err (fun m -> m "%s: request failed internally: %s" c.server.server_id e);
          Some
            (Zltp_wire.encode_server
               (Zltp_wire.Err { qid; code = Zltp_wire.err_internal; message = "internal error" })))

let serve t ep =
  let c = conn t in
  let rec loop () =
    (* serving loop: blocking on the next request frame is the one place a
       server-side unbounded wait is the correct behaviour *)
    match ep.Lw_net.Endpoint.recv () (* lw-lint: allow unbounded-wait *) with
    | frame -> (
        match handle_frame c frame with
        | Some reply -> (
            match ep.Lw_net.Endpoint.send reply with
            | () -> loop ()
            | exception Lw_net.Endpoint.Closed -> ())
        | None -> ())
    | exception (Lw_net.Endpoint.Closed | Lw_net.Endpoint.Timeout) -> ()
  in
  loop ()

let endpoint t =
  let c = conn t in
  Lw_net.Endpoint.loopback (fun frame ->
      match handle_frame c frame with
      | Some reply -> reply
      | None ->
          Zltp_wire.encode_server
            (Zltp_wire.Err
               { qid = 0; code = Zltp_wire.err_bad_request; message = "connection closed" }))
