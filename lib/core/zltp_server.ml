let log_src = Logs.Src.create "lightweb.zltp" ~doc:"ZLTP server events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  backend : Zltp_backend.t;
  blob_size : int;
  hash_key : string;
  server_id : string;
  mutable queries : int;
}

let default_hash_key = String.sub (Lw_crypto.Sha256.digest "lw-pir-store-default") 0 16

let create ?(server_id = "zltp-server") ?(hash_key = default_hash_key) ?(scan_domains = 1)
    ~blob_size backend =
  if blob_size < 1 then invalid_arg "Zltp_server.create: blob_size must be positive";
  if scan_domains < 1 then invalid_arg "Zltp_server.create: scan_domains must be >= 1";
  let (module B : Zltp_backend.S) = backend in
  B.set_scan_domains scan_domains;
  { backend; blob_size; hash_key; server_id; queries = 0 }

let backend t = t.backend
let blob_size t = t.blob_size
let queries_served t = t.queries

(* Everything below goes through the BACKEND signature: this file knows
   the verb set, never which backend answers it. *)

let modes t =
  let (module B : Zltp_backend.S) = t.backend in
  B.modes

let domain_bits t =
  let (module B : Zltp_backend.S) = t.backend in
  B.domain_bits

let health t =
  let (module B : Zltp_backend.S) = t.backend in
  B.health ()

let current_epoch t =
  let (module B : Zltp_backend.S) = t.backend in
  B.current_epoch ()

let set_advertised_epoch t e =
  let (module B : Zltp_backend.S) = t.backend in
  B.set_advertised_epoch e

let advertised_epoch t =
  let (module B : Zltp_backend.S) = t.backend in
  B.advertised_epoch ()

let oldest_epoch t =
  let (module B : Zltp_backend.S) = t.backend in
  B.oldest_epoch ()

type conn = { server : t; mutable mode : Zltp_mode.t option }

let conn server = { server; mode = None }

let err ?(qid = 0) code message = Some (Zltp_wire.Err { qid; code; message })

let deserialize_key t dpf_key =
  match Lw_dpf.Dpf.deserialize dpf_key with
  | Error e -> Error (Zltp_wire.err_bad_request, Printf.sprintf "bad DPF key: %s" e)
  | Ok k ->
      if Lw_dpf.Dpf.domain_bits k <> domain_bits t then
        Error (Zltp_wire.err_bad_request, "domain mismatch")
      else Ok k

(* Answer strictly against the queried epoch: pin it for the duration of
   the answer (so a concurrent seal cannot retire it mid-scan) and unpin
   on every exit path. What pinning means — store pin, shard epoch
   agreement, the degenerate epoch-0 check — is the backend's business. *)
let answer_pir t ~epoch dpf_key =
  match deserialize_key t dpf_key with
  | Error _ as e -> e
  | Ok k -> (
      let (module B : Zltp_backend.S) = t.backend in
      match B.pin ~epoch with
      | Error _ as e -> e
      | Ok v -> Fun.protect ~finally:(fun () -> B.unpin v) (fun () -> B.answer v k))

(* A batch deserialises and validates every key before any evaluation, so
   a malformed key rejects the whole request rather than wasting a
   partial scan; the accepted keys then ride the backend's batch entry —
   the bit-packed kernel's one streamed pass per 8 queries — instead of
   re-entering the single-query path per key. *)
let answer_pir_batch t ~epoch dpf_keys =
  let rec deserialize_all acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | key :: rest -> (
        match deserialize_key t key with
        | Ok k -> deserialize_all (k :: acc) rest
        | Error _ as e -> e)
  in
  match deserialize_all [] dpf_keys with
  | Error _ as e -> e
  | Ok keys -> (
      let (module B : Zltp_backend.S) = t.backend in
      match B.pin ~epoch with
      | Error _ as e -> e
      | Ok v ->
          Fun.protect
            ~finally:(fun () -> B.unpin v)
            (fun () ->
              match B.answer_batch v keys with
              | Ok shares -> Ok (Array.to_list shares)
              | Error _ as e -> e))

let answer_spir_hint t ~epoch =
  let (module B : Zltp_backend.S) = t.backend in
  match B.pin ~epoch with
  | Error _ as e -> e
  | Ok v -> Fun.protect ~finally:(fun () -> B.unpin v) (fun () -> B.spir_hint v)

let answer_spir t ~epoch query =
  let (module B : Zltp_backend.S) = t.backend in
  match B.pin ~epoch with
  | Error _ as e -> e
  | Ok v -> Fun.protect ~finally:(fun () -> B.unpin v) (fun () -> B.spir_answer v query)

let enclave_get t key =
  let (module B : Zltp_backend.S) = t.backend in
  B.enclave_get key

(* A session speaks exactly one verb family after Hello; a verb from
   another family is the structured wrong-mode error. *)
let wrong_session_mode mode =
  Printf.sprintf "session is in %s mode" (Zltp_mode.name mode)

let handle c msg =
  let t = c.server in
  match msg with
  | Zltp_wire.Bye -> None
  | Zltp_wire.Health { qid } ->
      (* liveness probe: answerable before Hello, so a failing-over client
         can cheaply rank replicas without a full handshake *)
      let shards_total, shards_down = health t in
      Some (Zltp_wire.Health_reply { qid; shards_total; shards_down; epoch = current_epoch t })
  | Zltp_wire.Sync { qid } ->
      (* epoch probe: like Health, answerable before Hello, so a client
         recovering from an epoch error can re-learn both replicas'
         published range without re-handshaking *)
      Some (Zltp_wire.Sync_reply { qid; epoch = current_epoch t; oldest = oldest_epoch t })
  | Zltp_wire.Hello { version; modes = client_modes } ->
      if version <> Zltp_wire.protocol_version then
        err Zltp_wire.err_bad_request "unsupported protocol version"
      else begin
        match Zltp_mode.negotiate ~client:client_modes ~server:(modes t) with
        | None ->
            Log.info (fun m -> m "%s: hello with no common mode" t.server_id);
            err Zltp_wire.err_bad_request "no common mode of operation"
        | Some mode ->
            Log.debug (fun m -> m "%s: session negotiated %s" t.server_id (Zltp_mode.name mode));
            c.mode <- Some mode;
            Some
              (Zltp_wire.Welcome
                 {
                   version = Zltp_wire.protocol_version;
                   mode;
                   domain_bits = domain_bits t;
                   blob_size = t.blob_size;
                   hash_key = t.hash_key;
                   server_id = t.server_id;
                   epoch = current_epoch t;
                 })
      end
  | Zltp_wire.Pir_query { qid; epoch; dpf_key } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some ((Zltp_mode.Enclave | Zltp_mode.Single) as m) ->
          err ~qid Zltp_wire.err_wrong_mode (wrong_session_mode m)
      | Some Zltp_mode.Pir2 -> (
          match answer_pir t ~epoch dpf_key with
          | Ok share ->
              t.queries <- t.queries + 1;
              (* note: nothing about the query is loggable beyond its
                 existence — the server never has the request key *)
              Log.debug (fun m -> m "%s: private-GET #%d answered" t.server_id t.queries);
              Some (Zltp_wire.Answer { qid; epoch; share })
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected query: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Pir_batch { qid; epoch; dpf_keys } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some ((Zltp_mode.Enclave | Zltp_mode.Single) as m) ->
          err ~qid Zltp_wire.err_wrong_mode (wrong_session_mode m)
      | Some Zltp_mode.Pir2 -> (
          match answer_pir_batch t ~epoch dpf_keys with
          | Ok shares ->
              t.queries <- t.queries + List.length shares;
              Log.debug (fun m ->
                  m "%s: private-GET batch of %d answered" t.server_id (List.length shares));
              Some (Zltp_wire.Batch_answer { qid; epoch; shares })
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected batch: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Keyword_query { qid; epoch; dpf_key0; dpf_key1 } -> (
      (* keyword GET = both cuckoo candidate probes as one width-2 entry
         into the bit-packed batch kernel: one streamed scan pass, one
         round trip, and the same epoch pinning / degraded refusal as any
         other PIR batch *)
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some ((Zltp_mode.Enclave | Zltp_mode.Single) as m) ->
          err ~qid Zltp_wire.err_wrong_mode (wrong_session_mode m)
      | Some Zltp_mode.Pir2 -> (
          match answer_pir_batch t ~epoch [ dpf_key0; dpf_key1 ] with
          | Ok [ share0; share1 ] ->
              t.queries <- t.queries + 1;
              Log.debug (fun m -> m "%s: keyword-GET #%d answered" t.server_id t.queries);
              Some (Zltp_wire.Keyword_answer { qid; epoch; share0; share1 })
          | Ok _ -> err ~qid Zltp_wire.err_internal "keyword answer arity"
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected keyword query: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Spir_hint_req { qid; epoch } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some ((Zltp_mode.Pir2 | Zltp_mode.Enclave) as m) ->
          err ~qid Zltp_wire.err_wrong_mode (wrong_session_mode m)
      | Some Zltp_mode.Single -> (
          match answer_spir_hint t ~epoch with
          | Ok hint ->
              Log.debug (fun m -> m "%s: SPIR hint for epoch %d served" t.server_id epoch);
              Some (Zltp_wire.Spir_hint { qid; epoch; hint })
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected hint request: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Spir_query { qid; epoch; query } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some ((Zltp_mode.Pir2 | Zltp_mode.Enclave) as m) ->
          err ~qid Zltp_wire.err_wrong_mode (wrong_session_mode m)
      | Some Zltp_mode.Single -> (
          match answer_spir t ~epoch query with
          | Ok answer ->
              t.queries <- t.queries + 1;
              Log.debug (fun m -> m "%s: private-GET #%d answered" t.server_id t.queries);
              Some (Zltp_wire.Spir_answer { qid; epoch; answer })
          | Error (code, e) ->
              Log.info (fun m -> m "%s: rejected SPIR query: %s" t.server_id e);
              err ~qid code e))
  | Zltp_wire.Enclave_get { qid; key } -> (
      match c.mode with
      | None -> err ~qid Zltp_wire.err_not_negotiated "hello first"
      | Some ((Zltp_mode.Pir2 | Zltp_mode.Single) as m) ->
          err ~qid Zltp_wire.err_wrong_mode (wrong_session_mode m)
      | Some Zltp_mode.Enclave -> (
          match enclave_get t key with
          | Ok value ->
              t.queries <- t.queries + 1;
              Some (Zltp_wire.Enclave_answer { qid; value })
          | Error (code, e) -> err ~qid code e))

(* The request path must never let an exception escape and tear the whole
   connection (or, under a shared-process server, the process) down: any
   unexpected raise becomes a structured [Err] and the session survives.
   [Invalid_argument]/[Failure] from deep in a backend are internal bugs
   surfaced as err_internal, not protocol violations by the client. *)
let handle_frame c frame =
  match Zltp_wire.decode_client frame with
  | Error e ->
      Some
        (Zltp_wire.encode_server
           (Zltp_wire.Err { qid = 0; code = Zltp_wire.err_bad_request; message = e }))
  | Ok msg -> (
      let qid = Option.value (Zltp_wire.request_qid msg) ~default:0 in
      match handle c msg with
      | reply -> Option.map Zltp_wire.encode_server reply
      | exception exn ->
          let e = Printexc.to_string exn in
          Log.err (fun m -> m "%s: request failed internally: %s" c.server.server_id e);
          Some
            (Zltp_wire.encode_server
               (Zltp_wire.Err { qid; code = Zltp_wire.err_internal; message = "internal error" })))

let serve t ep =
  let c = conn t in
  let rec loop () =
    (* serving loop: blocking on the next request frame is the one place a
       server-side unbounded wait is the correct behaviour *)
    match ep.Lw_net.Endpoint.recv () (* lw-lint: allow unbounded-wait *) with
    | frame -> (
        match handle_frame c frame with
        | Some reply -> (
            match ep.Lw_net.Endpoint.send reply with
            | () -> loop ()
            | exception Lw_net.Endpoint.Closed -> ())
        | None -> ())
    | exception (Lw_net.Endpoint.Closed | Lw_net.Endpoint.Timeout) -> ()
  in
  loop ()

let endpoint t =
  let c = conn t in
  Lw_net.Endpoint.loopback (fun frame ->
      match handle_frame c frame with
      | Some reply -> reply
      | None ->
          Zltp_wire.encode_server
            (Zltp_wire.Err
               { qid = 0; code = Zltp_wire.err_bad_request; message = "connection closed" }))
