(** A lightweb content universe (§3.1): the collection of pages a single
    CDN serves through one logical ZLTP deployment.

    A universe fixes the blob geometry — one size for all code blobs, one
    for all data blobs, and the number of data fetches per page view —
    and tracks which publisher owns each top-level domain. Code and data
    live in separate keyword stores served over separate ZLTP sessions
    (§3.2: "one for fetching the large code blobs and one for the small
    data blobs"). *)

type geometry = {
  code_blob_size : int;
  data_blob_size : int;
  fetches_per_page : int; (** fixed data-GET count per page view *)
  code_domain_bits : int;
  data_domain_bits : int;
}

val default_geometry : geometry
(** Test-scale defaults: 16 KiB code blobs, 1 KiB data blobs, 5 fetches,
    2^10 / 2^12 domains. *)

val paper_geometry : geometry
(** The paper's deployment point: 1 MiB code blobs, 4 KiB data blobs, 5
    fetches, 2^22 data domain. Too big to instantiate in tests; used by
    the cost model. *)

type t

val create : ?seed:string -> name:string -> geometry -> t
(** [seed] derives the universe's keyword-hash keys deterministically. *)

val name : t -> string
val geometry : t -> geometry
val seed : t -> string

val domains : t -> (string * string) list
(** All (domain, owner) registrations, sorted by domain. *)

val data_paths : t -> string list
(** Every stored data-blob path (post any collision renames), sorted. *)

(** {2 Domain ownership} *)

val claim_domain : t -> publisher:string -> domain:string -> (unit, string) result
(** First-come registration; re-claiming your own domain is a no-op. *)

val owner_of : t -> string -> string option

(** {2 Publishing} *)

val push_code : t -> publisher:string -> domain:string -> source:string -> (unit, string) result
(** Install the domain's (single, §3.2) code blob: [source] must parse as
    Lightscript, define [plan] and [render], and fit the code blob size. *)

val push_data :
  t -> publisher:string -> path:string -> value:Lw_json.Json.t -> (unit, string) result
(** Store a data blob at [path] (full path including domain). Fails on
    ownership mismatch, size overflow, or an index collision with a
    different key (the publisher must then rename, §5.1). *)

val remove_data : t -> publisher:string -> path:string -> (bool, string) result
(** Removes the page from both the data store and the keyword index. *)

val publish_updates : t -> int * int
(** Seal every pending code/data/keyword mutation as new storage epochs —
    the atomic point at which pushed updates become visible to PIR
    servers — and return the now-current [(code_epoch, data_epoch)] (see
    {!keyword_epoch} for the keyword store's). A no-op pair of current
    epochs when nothing is pending. Queries pinned to earlier epochs keep
    being answered from those epochs' snapshots. *)

val keyword_epoch : t -> int
(** The keyword store's current sealed epoch. *)

val keyword_store : t -> Lw_pir.Kw_store.t
(** The cuckoo-backed keyword index itself (tests, stash accounting). *)

val page_count : t -> int
val code_count : t -> int

(** {2 Direct (publisher-side) reads} *)

val code_source : t -> string -> string option
val data_value : t -> string -> string option

(** {2 Serving} *)

val code_servers : t -> Zltp_server.t * Zltp_server.t
(** The two non-colluding logical PIR servers for the code store. In this
    in-process simulation both wrap the same underlying database, which is
    faithful: the deployments replicate identical data. *)

val data_servers : t -> Zltp_server.t * Zltp_server.t

val keyword_servers : t -> Zltp_server.t * Zltp_server.t
(** The two logical PIR servers for the cuckoo keyword index: every page
    pushed to the universe is retrievable by path through the wire-v4
    [Keyword_query] verb, byte-identical to the data store's path GET.
    Pending keyword mutations are sealed first, like every server
    constructor. *)

val sharded_keyword_servers : t -> shard_bits:int -> Zltp_server.t * Zltp_server.t
(** Keyword servers deployed as front-ends over [2^shard_bits] shards —
    the keyword verb's width-2 batch rides the shard (or fan-out tree)
    batching unchanged. *)

val sharded_data_servers : t -> shard_bits:int -> Zltp_server.t * Zltp_server.t
(** The same two logical data servers, each deployed as a front-end over
    [2^shard_bits] data shards (§5.2) — answers are byte-identical to the
    flat deployment; the shards split the scan. *)

val enclave_data_server : t -> Zltp_server.t
(** Build an enclave-mode server over a copy of the data store (E8 and the
    mode-negotiation tests). *)

val single_data_server : t -> Zltp_server.t
(** The third deployment model: ONE single-server-PIR data server over
    the same sealed epoch engine the two-server pair scans. Marks the
    universe as single-serving, so every subsequent {!publish_updates}
    warms (seals) the new epoch's SPIR hint alongside the epoch itself —
    clients only ever download hints, never wait on their computation. *)

val single_code_server : t -> Zltp_server.t

val spir_data_hint_cache : t -> Lw_pir.Spir.Hint_cache.t
(** The shared per-epoch hint cache behind {!single_data_server}
    (tests/benches: hint sizes, cached epochs). *)

val stats : t -> (string * int) list
(** Human-readable counters for the CLI. *)
