type t = {
  server : Lw_pir.Server.t;
  batch_size : int;
  mutable queue : (Lw_dpf.Dpf.key * (string -> unit)) list; (* reversed *)
  mutable batches : int;
  mutable answered : int;
}

let create ?(batch_size = 16) server =
  if batch_size < 1 then invalid_arg "Zltp_batch.create: batch_size must be positive";
  { server; batch_size; queue = []; batches = 0; answered = 0 }

let batch_size t = t.batch_size
let pending t = List.length t.queue
let batches_executed t = t.batches
let queries_answered t = t.answered

let m_batches = Lw_obs.Metrics.counter "zltp.batch.batches"
let m_answered = Lw_obs.Metrics.counter "zltp.batch.queries_answered"

let run_batch t entries =
  Lw_obs.Span.with_ ~name:"zltp.batch.run" (fun () ->
      let entries = Array.of_list entries in
      let keys = Array.map fst entries in
      let shares = Lw_pir.Server.answer_batch t.server keys in
      Array.iteri (fun i (_, deliver) -> deliver shares.(i)) entries;
      t.batches <- t.batches + 1;
      t.answered <- t.answered + Array.length entries;
      Lw_obs.Metrics.incr m_batches;
      Lw_obs.Metrics.add m_answered (Array.length entries))

let flush t =
  match t.queue with
  | [] -> ()
  | entries ->
      t.queue <- [];
      run_batch t (List.rev entries)

let submit t key deliver =
  t.queue <- (key, deliver) :: t.queue;
  if List.length t.queue >= t.batch_size then flush t

type measurement = {
  batch_size : int;
  total_s : float;
  latency_s : float;
  per_request_s : float;
  throughput_rps : float;
}

let measure server keys =
  let n = Array.length keys in
  if n = 0 then invalid_arg "Zltp_batch.measure: empty batch";
  let clock = Lw_obs.Span.clock () in
  let t0 = Lw_obs.Clock.now clock in
  let shares = Lw_pir.Server.answer_batch server keys in
  let t1 = Lw_obs.Clock.now clock in
  ignore shares;
  let total = t1 -. t0 in
  {
    batch_size = n;
    total_s = total;
    latency_s = total;
    per_request_s = total /. float_of_int n;
    throughput_rps = float_of_int n /. total;
  }
