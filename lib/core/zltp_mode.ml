type t = Pir2 | Enclave | Single

let name = function Pir2 -> "pir2" | Enclave -> "enclave" | Single -> "single"
let to_tag = function Pir2 -> 1 | Enclave -> 2 | Single -> 3
let of_tag = function 1 -> Some Pir2 | 2 -> Some Enclave | 3 -> Some Single | _ -> None
let all = [ Single; Pir2; Enclave ]

(* Strongest-assumption-last: a mode's rank counts how much beyond pure
   cryptography its security leans on. Single rests on one cryptographic
   assumption (decision-LWE) and nothing else; Pir2 adds non-collusion
   between operators; Enclave rests entirely on hardware vendor trust. *)
let rank = function Single -> 0 | Pir2 -> 1 | Enclave -> 2

let negotiate ~client ~server =
  let common = List.filter (fun m -> List.mem m server) client in
  match common with
  | [] -> None
  | ms -> Some (List.fold_left (fun best m -> if rank m < rank best then m else best) (List.hd ms) ms)

let assumptions = function
  | Pir2 ->
      [
        "cryptographic: a length-doubling PRG is secure";
        "non-collusion: at most 1 of the 2 servers is compromised";
      ]
  | Enclave -> [ "hardware: the enclave protects its private memory" ]
  | Single -> [ "cryptographic: decision-LWE is hard (single server, no collusion or hardware trust)" ]
