module Json = Lw_json.Json

let format_version = 1

let geometry_json (g : Universe.geometry) =
  Json.Obj
    [
      ("code_blob_size", Json.Number (float_of_int g.Universe.code_blob_size));
      ("data_blob_size", Json.Number (float_of_int g.Universe.data_blob_size));
      ("fetches_per_page", Json.Number (float_of_int g.Universe.fetches_per_page));
      ("code_domain_bits", Json.Number (float_of_int g.Universe.code_domain_bits));
      ("data_domain_bits", Json.Number (float_of_int g.Universe.data_domain_bits));
    ]

let geometry_of_json v =
  try
    Ok
      {
        Universe.code_blob_size = Json.get_int (Json.member "code_blob_size" v);
        data_blob_size = Json.get_int (Json.member "data_blob_size" v);
        fetches_per_page = Json.get_int (Json.member "fetches_per_page" v);
        code_domain_bits = Json.get_int (Json.member "code_domain_bits" v);
        data_domain_bits = Json.get_int (Json.member "data_domain_bits" v);
      }
  with Invalid_argument m -> Error ("bad geometry: " ^ m)

let export u =
  let owners =
    Json.List
      (List.map
         (fun (domain, publisher) ->
           Json.Obj [ ("domain", Json.String domain); ("publisher", Json.String publisher) ])
         (Universe.domains u))
  in
  let code =
    Json.List
      (List.filter_map
         (fun (domain, _) ->
           Universe.code_source u domain
           |> Option.map (fun source ->
                  Json.Obj [ ("domain", Json.String domain); ("source", Json.String source) ]))
         (Universe.domains u))
  in
  let data =
    Json.List
      (List.filter_map
         (fun path ->
           Universe.data_value u path
           |> Option.map (fun value ->
                  Json.Obj [ ("path", Json.String path); ("value", Json.String value) ]))
         (Universe.data_paths u))
  in
  Json.Obj
    [
      ("format", Json.Number (float_of_int format_version));
      ("name", Json.String (Universe.name u));
      ("seed", Json.String (Universe.seed u));
      ("geometry", geometry_json (Universe.geometry u));
      ("owners", owners);
      ("code", code);
      ("data", data);
    ]

let ( let* ) = Result.bind

let list_field name v =
  match Json.member_opt name v with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing list field %S" name)

let string_member name v =
  match Json.member_opt name v with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let fold_all f xs =
  List.fold_left
    (fun acc x ->
      let* () = acc in
      f x)
    (Ok ()) xs

let import v =
  let* format =
    match Json.member_opt "format" v with
    | Some (Json.Number f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error "missing format version"
  in
  if format <> format_version then Error (Printf.sprintf "unsupported format %d" format)
  else begin
    let* name = string_member "name" v in
    let* seed = string_member "seed" v in
    let* geometry = geometry_of_json (Json.member "geometry" v) in
    let u = Universe.create ~seed ~name geometry in
    let* owners = list_field "owners" v in
    let* () =
      fold_all
        (fun o ->
          let* domain = string_member "domain" o in
          let* publisher = string_member "publisher" o in
          Universe.claim_domain u ~publisher ~domain)
        owners
    in
    let* code = list_field "code" v in
    let* () =
      fold_all
        (fun c ->
          let* domain = string_member "domain" c in
          let* source = string_member "source" c in
          match Universe.owner_of u domain with
          | None -> Error (Printf.sprintf "code for unregistered domain %s" domain)
          | Some publisher -> Universe.push_code u ~publisher ~domain ~source)
        code
    in
    let* data = list_field "data" v in
    let* () =
      fold_all
        (fun d ->
          let* path = string_member "path" d in
          let* text = string_member "value" d in
          let* value =
            match Json.of_string_opt text with
            | Some j -> Ok j
            | None -> Error (Printf.sprintf "data at %s is not JSON" path)
          in
          match Lw_path.parse path with
          | Error e -> Error e
          | Ok p -> (
              match Universe.owner_of u (Lw_path.domain p) with
              | None -> Error (Printf.sprintf "data for unregistered domain at %s" path)
              | Some publisher -> Universe.push_data u ~publisher ~path ~value))
        data
    in
    (* the whole import is one mutation batch: seal it as a single epoch
       rather than leaving it pending *)
    ignore (Universe.publish_updates u);
    Ok u
  end

let save u ~path =
  try
    let oc = open_out_bin path in
    output_string oc (Json.to_string ~pretty:true (export u));
    close_out oc;
    Ok ()
  with Sys_error e -> Error e

let load ~path =
  try
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string_opt text with
    | Some v -> import v
    | None -> Error (Printf.sprintf "%s is not valid JSON" path)
  with Sys_error e -> Error e
