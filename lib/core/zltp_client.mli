(** The ZLTP client session (§2, §3.2), with self-healing.

    In PIR mode the client holds connections to the {e two} non-colluding
    logical servers, generates a fresh DPF key pair per private-GET, and
    XORs the two response shares. In enclave mode a single connection
    carries the request key (inside the simulated attested channel).

    Either way the application-facing operation is the paper's single
    primitive: [GET(key) -> value] — now with the failure handling a real
    deployment needs. Every operation runs under a {!policy}: a bounded
    number of attempts with jittered exponential backoff under an overall
    deadline. Each logical server {e role} can be backed by several
    replicas; when a connection fails (timeout, close, corrupted reply,
    degraded backend) the client tears it down and fails over to the
    role's next replica, probing it with the cheap [Health] message before
    the handshake.

    {b Privacy of retries.} A retried private-GET never reuses DPF keys:
    every attempt generates a fresh key pair (and a fresh correlation id),
    and both queries of an attempt are sent before either reply is
    awaited. A server comparing a retry against the original therefore
    learns nothing about whether the two attempts target the same index —
    retransmission leaks no more than a brand-new query. Failover itself
    is {e not} hidden (and cannot protect against the two replicas of one
    role colluding; see SECURITY.md). *)

type t

(** {2 Retry policy} *)

type policy = {
  attempts : int;  (** max attempts per operation (>= 1) *)
  base_backoff_s : float;  (** backoff before the 2nd attempt *)
  max_backoff_s : float;  (** exponential growth cap *)
  deadline_s : float;  (** overall per-operation budget *)
}

val default_policy : policy
(** 4 attempts, 50 ms base backoff doubling up to 1 s, 30 s deadline. *)

(** {2 Replicas and connection} *)

type replica

val replica : name:string -> (unit -> (Lw_net.Endpoint.t, string) result) -> replica
(** A dialable replica of one logical server: [dial] is called for the
    initial connection and again on every failover back to this replica. *)

val of_endpoint : name:string -> Lw_net.Endpoint.t -> replica
(** A pre-established connection as a one-shot replica: once its
    connection fails there is nothing to re-dial, so it counts as
    permanently down. *)

val connect_replicated :
  ?prefer:Zltp_mode.t list ->
  ?rng:Lw_crypto.Drbg.t ->
  ?policy:policy ->
  ?clock:Lw_obs.Clock.t ->
  replica list list ->
  (t, string) result
(** [connect_replicated roles] — one replica list per logical server role
    (two roles for PIR, one for enclave mode). Dials one replica per role
    (Health probe, then Hello/Welcome), checks all servers agree on
    session parameters, and fails over across each role's replicas on
    later connection failures. [clock] drives backoff sleeps and deadline
    accounting (virtual clock ⇒ deterministic, instant chaos tests). *)

val connect :
  ?prefer:Zltp_mode.t list ->
  ?rng:Lw_crypto.Drbg.t ->
  ?policy:policy ->
  ?clock:Lw_obs.Clock.t ->
  Lw_net.Endpoint.t list ->
  (t, string) result
(** [connect endpoints] — each endpoint becomes a single-replica role
    ({!of_endpoint}). PIR mode needs exactly two endpoints, enclave mode
    one; a mismatch is an [Error]. *)

val mode : t -> Zltp_mode.t
val blob_size : t -> int
val domain_bits : t -> int

(** {2 Operations} *)

val get : t -> string -> (string option, string) result
(** [get t key] is the private-GET: [Ok None] when no record exists under
    [key] (or a hash collision handed back someone else's record).
    [Error] only after the retry policy is exhausted (or a fatal,
    non-retryable refusal). *)

val get_raw_index : t -> int -> (string, string) result
(** PIR mode only: fetch bucket [index] without keyword hashing (cuckoo
    probing and tests use this). *)

val get_batch : t -> string list -> (string option list, string) result
(** Batched private-GETs (one round trip, server-side fused scan). A
    retried batch regenerates {e all} its DPF keys. *)

(** {2 Keyword search} (PIR mode, against a cuckoo-backed keyword store)

    A keyword GET privately probes {e both} cuckoo candidate buckets of
    the key (salts 0/1 of the Welcome hash key) as one wire-v4
    [Keyword_query]: two fresh DPF key shares per server, answered as a
    single width-2 entry into the server's bit-packed batch scan — one
    round trip, ~one scan pass. The shape is fixed and query-independent
    (always two probes, even when the candidates coincide), so the verb
    leaks nothing about the key; retries regenerate all DPF keys as
    usual. *)

val keyword_get : t -> string -> (string option, string) result
(** [keyword_get t key] resolves [key] against the keyword store this
    session is connected to. [Ok None] when the key is unpublished (or
    stash-resident on the publisher, which a sized deployment avoids). *)

val keyword_get_batch : t -> string list -> (string option list, string) result
(** k correlated keyword lookups in one round trip: the 2k candidate
    probes ride a single [Pir_batch] (bit-packed, one scan pass per 8
    probes) and are re-paired per keyword on decode — how a cluster
    retrieval fetches its members. *)

val keyword_candidates : t -> string -> int * int
(** The two buckets a keyword GET would probe (tests / cost accounting;
    may coincide). *)

(** {2 Epochs and page visits}

    Since wire v3, every PIR query names the database epoch it must be
    answered against (learned from [Welcome], re-learned via [Sync]),
    and the client refuses to XOR shares tagged with any other epoch —
    so two-server reconstruction is consistent {e by construction} even
    while publishers seal new epochs. Epoch trouble (a reply from the
    wrong epoch, [err_epoch_retired], [err_epoch_ahead]) triggers a
    re-sync on both roles — failing over whichever role's replica lags —
    and rides the normal retry loop. *)

val begin_visit : t -> unit
(** Pin the epoch for a multi-fetch page visit: from the next query to
    {!end_visit}, every fetch names the same epoch. One page therefore
    never mixes record versions, and a mid-visit publisher update cannot
    make the page's fetch pattern diverge between the two servers (a
    fingerprinting channel; see SECURITY.md). *)

val end_visit : t -> unit
(** Release the visit pin; the next operation re-learns the freshest
    common epoch. *)

val current_epoch : t -> int option
(** The epoch the next query would name, if one is currently pinned. *)

(** {2 Introspection} *)

val queries_sent : t -> int

val retries : t -> int
(** Attempts beyond the first, summed over all operations. *)

val failovers : t -> int
(** Times a role's preferred replica was abandoned for the next one. *)

val epoch_resyncs : t -> int
(** Times an epoch error forced a [Sync] round. *)

val current_replicas : t -> string option list
(** Per role, the name of the replica currently connected (if any). *)

val close : t -> unit
(** Sends [Bye] best-effort and closes all live connections. *)
