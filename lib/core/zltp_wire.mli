(** The ZLTP wire protocol: message types and binary codec.

    A session opens with [Hello]/[Welcome] (parameter discovery + mode
    negotiation, §2), then carries private-GET exchanges. PIR-mode queries
    carry a serialised DPF key share; enclave-mode queries carry the
    request key itself, which in a real deployment travels inside the
    attested TLS channel that terminates {e inside} the enclave — the
    untrusted host never sees it.

    Since protocol version 2 every query carries a correlation id [qid]
    echoed by its reply. The id is public session metadata (never derived
    from the request key) and is what makes recovery safe on a flaky
    network: a client that timed out and retried can discard the late or
    duplicated reply of an earlier attempt instead of silently XOR-ing
    mismatched shares into a wrong value. [Health] is a cheap liveness and
    degradation probe — valid even before [Hello] — used by clients to
    pick a healthy replica when failing over. *)

type client_msg =
  | Hello of { version : int; modes : Zltp_mode.t list }
  | Pir_query of { qid : int; dpf_key : string }
  | Pir_batch of { qid : int; dpf_keys : string list }
  | Enclave_get of { qid : int; key : string }
  | Health of { qid : int }
  | Bye

type server_msg =
  | Welcome of {
      version : int;
      mode : Zltp_mode.t;
      domain_bits : int;
      blob_size : int;
      hash_key : string; (** keyword→index SipHash key (public) *)
      server_id : string;
    }
  | Answer of { qid : int; share : string }
  | Batch_answer of { qid : int; shares : string list }
  | Enclave_answer of { qid : int; value : string option }
  | Health_reply of { qid : int; shards_total : int; shards_down : int }
  | Err of { qid : int; code : int; message : string }
      (** [qid] 0 when the error is not about a specific query *)

val protocol_version : int

val reply_qid : server_msg -> int option
(** The correlation id a reply carries; [None] for [Welcome]. *)

val request_qid : client_msg -> int option

(** Error codes carried by [Err]. *)

val err_not_negotiated : int
val err_bad_request : int
val err_wrong_mode : int
val err_internal : int

val err_degraded : int
(** The backend is partially down (e.g. a data shard unreachable) and the
    answer would be wrong; the client should fail over to a replica. *)

val trailer_size : int
(** Every encoded message ends in a [trailer_size]-byte CRC-32 over its
    body — a stand-in for the record MAC of the TLS channel ZLTP rides in.
    Decoding rejects a failed check as a structured error, so in-flight
    corruption becomes a clean retry, never silently wrong bytes. *)

val encode_client : client_msg -> string
val decode_client : string -> (client_msg, string) result
val encode_server : server_msg -> string
val decode_server : string -> (server_msg, string) result
