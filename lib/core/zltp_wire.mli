(** The ZLTP wire protocol: message types and binary codec.

    A session opens with [Hello]/[Welcome] (parameter discovery + mode
    negotiation, §2), then carries private-GET exchanges. PIR-mode queries
    carry a serialised DPF key share; enclave-mode queries carry the
    request key itself, which in a real deployment travels inside the
    attested TLS channel that terminates {e inside} the enclave — the
    untrusted host never sees it.

    Since protocol version 2 every query carries a correlation id [qid]
    echoed by its reply. The id is public session metadata (never derived
    from the request key) and is what makes recovery safe on a flaky
    network: a client that timed out and retried can discard the late or
    duplicated reply of an earlier attempt instead of silently XOR-ing
    mismatched shares into a wrong value. [Health] is a cheap liveness and
    degradation probe — valid even before [Hello] — used by clients to
    pick a healthy replica when failing over.

    Protocol version 3 makes database {e epochs} first-class: PIR queries
    name the epoch they must be answered against, and every PIR reply
    echoes the epoch it was computed from. Two-server reconstruction is
    XOR over two shares, which is correct only when both servers scanned
    bit-identical databases — with versioned storage underneath, "same
    epoch" is exactly that guarantee, checked structurally instead of
    hoped for. A server that no longer holds (or does not yet hold) the
    named epoch answers [Err] with {!err_epoch_retired} /
    {!err_epoch_ahead}, and the [Sync]/[Sync_reply] pair — valid before
    [Hello], like [Health] — lets a client cheaply re-learn a replica's
    published epoch range before retrying.

    Protocol version 4 makes keyword search a first-class verb:
    [Keyword_query] carries {e two} DPF key shares — one per cuckoo
    candidate bucket of the (hidden) search key — that the server answers
    as a single width-2 entry into its bit-packed batch scan, so a
    keyword GET costs ~one scan pass, not two round trips. The two-probe
    shape is fixed and query-independent: every keyword query ships
    exactly two keys and receives exactly two shares, whether or not the
    key's candidates coincide, so the verb leaks nothing about the key
    beyond "a keyword lookup happened".

    Protocol version 5 adds the single-server PIR mode ([Zltp_mode.Single])
    as first-class verbs: [Spir_hint_req]/[Spir_hint] fetch the per-epoch
    public hint (the packed [H = D·A] matrix any client could recompute —
    it carries no per-client state), and [Spir_query]/[Spir_answer] carry
    the LWE-masked selection vector and the server's matrix-vector scan
    over the pinned epoch. Both verbs are epoch-addressed exactly like
    [Pir_query]: a stale epoch answers [Err {err_epoch_retired}] /
    [err_epoch_ahead], and the hint a client holds is only ever valid for
    the epoch stamped inside it. The [Welcome] mode tag (present since
    v2) is what tells the client which verb family the session speaks. *)

type client_msg =
  | Hello of { version : int; modes : Zltp_mode.t list }
  | Pir_query of { qid : int; epoch : int; dpf_key : string }
  | Pir_batch of { qid : int; epoch : int; dpf_keys : string list }
  | Keyword_query of { qid : int; epoch : int; dpf_key0 : string; dpf_key1 : string }
      (** one DPF key share per cuckoo candidate bucket (salts 0/1 of the
          Welcome [hash_key]); always two, even when candidates coincide *)
  | Enclave_get of { qid : int; key : string }
  | Spir_hint_req of { qid : int; epoch : int }
      (** fetch the per-epoch public SPIR hint ([Single] mode only) *)
  | Spir_query of { qid : int; epoch : int; query : string }
      (** the serialized LWE-masked selection vector ({!Lw_pir.Spir}) *)
  | Health of { qid : int }
  | Sync of { qid : int }  (** ask for the replica's current/oldest epoch *)
  | Bye

type server_msg =
  | Welcome of {
      version : int;
      mode : Zltp_mode.t;
      domain_bits : int;
      blob_size : int;
      hash_key : string; (** keyword→index SipHash key (public) *)
      server_id : string;
      epoch : int; (** the replica's current epoch at handshake time *)
    }
  | Answer of { qid : int; epoch : int; share : string }
  | Batch_answer of { qid : int; epoch : int; shares : string list }
  | Keyword_answer of { qid : int; epoch : int; share0 : string; share1 : string }
      (** one share per candidate probe, same order as the query's keys *)
  | Enclave_answer of { qid : int; value : string option }
  | Spir_hint of { qid : int; epoch : int; hint : string }
  | Spir_answer of { qid : int; epoch : int; answer : string }
  | Health_reply of { qid : int; shards_total : int; shards_down : int; epoch : int }
  | Sync_reply of { qid : int; epoch : int; oldest : int }
      (** current and oldest still-answerable epochs *)
  | Err of { qid : int; code : int; message : string }
      (** [qid] 0 when the error is not about a specific query *)

val protocol_version : int

val reply_qid : server_msg -> int option
(** The correlation id a reply carries; [None] for [Welcome]. *)

val request_qid : client_msg -> int option

(** Error codes carried by [Err]. *)

val err_not_negotiated : int
val err_bad_request : int
val err_wrong_mode : int
val err_internal : int

val err_degraded : int
(** The backend is partially down (e.g. a data shard unreachable) and the
    answer would be wrong; the client should fail over to a replica. *)

val err_epoch_retired : int
(** The queried epoch has been retired here; re-sync and retry at a
    current epoch. *)

val err_epoch_ahead : int
(** The queried epoch has not been published here yet (this replica is
    behind); re-sync, and prefer the other replica. *)

val trailer_size : int
(** Every encoded message ends in a [trailer_size]-byte CRC-32 over its
    body — a stand-in for the record MAC of the TLS channel ZLTP rides in.
    Decoding rejects a failed check as a structured error, so in-flight
    corruption becomes a clean retry, never silently wrong bytes. *)

val encode_client : client_msg -> string
val decode_client : string -> (client_msg, string) result
val encode_server : server_msg -> string
val decode_server : string -> (server_msg, string) result
