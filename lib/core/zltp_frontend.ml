(* Interior node of the hierarchical fan-out tree: an [Inner] node owns
   [levels] bits of the shard index and splits an incoming key once into
   [2^levels] sub-keys ([Distributed.split], i.e. [Dpf.eval_prefixes] +
   [make_subkey]); a [Leaf] hands its sub-key to one data shard. Re-basing
   composes, so the key a leaf receives is bit-identical to the one the
   flat [Distributed.split] fan-out would have produced. *)
type tree_node = Leaf of int | Inner of { levels : int; children : tree_node array }

type tree_rep = { root : tree_node; tdepth : int; tnodes : int }

type t = {
  domain_bits : int;
  shard_bits : int;
  bucket_size : int;
  shards : Lw_pir.Server.t array;
  down : bool array;
  epochs : int array;
      (* which store epoch each shard's copy reflects: answers may only be
         combined while every shard sits at the same epoch *)
  mutable pinned : (Lw_store.t * Lw_store.Snapshot.t) option;
      (* the engine snapshot the shard copies were refreshed from last *)
  shard_hist : Lw_obs.Metrics.histogram array;
      (* per-shard answer latency; shared by name across front-ends of the
         same width, which is what an operator wants from a process dump *)
  mutable scan_domains : int;
      (* workers each shard's scan kernel may use (Server.answer_domains);
         1 = the serial fused kernel *)
  mutable tree : (int * tree_rep) option;
      (* (fanout_bits, tree): when set, single-key answers route through
         the hierarchical fan-out instead of the flat split *)
}

let m_answers = Lw_obs.Metrics.counter "zltp.frontend.answers"
let m_tree_answers = Lw_obs.Metrics.counter "zltp.frontend.tree_answers"
let m_batch_queries = Lw_obs.Metrics.counter "zltp.frontend.batch_queries"
let m_refusals = Lw_obs.Metrics.counter "zltp.frontend.degraded_refusals"
let m_epoch_refusals = Lw_obs.Metrics.counter "zltp.frontend.epoch_refusals"
let g_shards_down = Lw_obs.Metrics.gauge "zltp.frontend.shards_down"
let g_epoch = Lw_obs.Metrics.gauge "zltp.frontend.epoch"

let shard_histogram i =
  Lw_obs.Metrics.histogram (Printf.sprintf "zltp.frontend.shard%02d.answer_seconds" i)

let create ~domain_bits ~shard_bits ~bucket_size =
  if shard_bits <= 0 || shard_bits >= domain_bits then
    invalid_arg "Zltp_frontend.create: shard_bits must be in (0, domain_bits)";
  let rem = domain_bits - shard_bits in
  let shards =
    Array.init (1 lsl shard_bits) (fun _ ->
        Lw_pir.Server.create (Lw_pir.Bucket_db.create ~domain_bits:rem ~bucket_size))
  in
  {
    domain_bits;
    shard_bits;
    bucket_size;
    shards;
    down = Array.make (1 lsl shard_bits) false;
    epochs = Array.make (1 lsl shard_bits) 0;
    pinned = None;
    shard_hist = Array.init (1 lsl shard_bits) shard_histogram;
    scan_domains = 1;
    tree = None;
  }

let of_db db ~shard_bits =
  let domain_bits = Lw_pir.Bucket_db.domain_bits db in
  let t = create ~domain_bits ~shard_bits ~bucket_size:(Lw_pir.Bucket_db.bucket_size db) in
  let rem = domain_bits - shard_bits in
  for i = 0 to Lw_pir.Bucket_db.size db - 1 do
    if not (Lw_pir.Bucket_db.is_empty db i) then begin
      let shard = i lsr rem and local = i land ((1 lsl rem) - 1) in
      Lw_pir.Bucket_db.set (Lw_pir.Server.db t.shards.(shard)) local (Lw_pir.Bucket_db.get db i)
    end
  done;
  t

let domain_bits t = t.domain_bits
let shard_bits t = t.shard_bits
let shard_count t = Array.length t.shards
let bucket_size t = t.bucket_size
let shard_histograms t = Array.copy t.shard_hist

(* ---- epoch bookkeeping over the versioned engine ---- *)

let announced_epoch t = Array.fold_left max 0 t.epochs

let epoch_agreed t =
  let e = t.epochs.(0) in
  if Array.for_all (fun x -> x = e) t.epochs then Some e else None

let set_shard_epoch t i epoch =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Zltp_frontend.set_shard_epoch";
  t.epochs.(i) <- epoch;
  Lw_obs.Metrics.set g_epoch (float_of_int (announced_epoch t))

(* Copy one shard's slice of a snapshot into the shard's flat database:
   either the whole slice, or only the [ranges] (global bucket runs)
   intersecting it. *)
let copy_slice t snap shard ranges =
  let rem = t.domain_bits - t.shard_bits in
  let db = Lw_pir.Server.db t.shards.(shard) in
  let lo = shard lsl rem and hi = (shard + 1) lsl rem in
  let copy_range base count =
    let from = max base lo and upto = min (base + count) hi in
    for global = from to upto - 1 do
      let local = global land ((1 lsl rem) - 1) in
      if Lw_store.Snapshot.is_empty snap global then Lw_pir.Bucket_db.clear db local
      else Lw_pir.Bucket_db.set db local (Lw_store.Snapshot.get snap global)
    done
  in
  (match ranges with
  | None -> copy_range lo (hi - lo)
  | Some rs -> List.iter (fun (base, count) -> copy_range base count) rs);
  t.epochs.(shard) <- Lw_store.Snapshot.epoch snap

let of_store st ~shard_bits =
  let snap = Lw_store.pin_latest st in
  (* the pin is only recorded in [t.pinned] once the copies are done; if
     anything in between raises, release it instead of leaking the epoch *)
  let t =
    try
      let t =
        create ~domain_bits:(Lw_store.domain_bits st) ~shard_bits
          ~bucket_size:(Lw_store.bucket_size st)
      in
      for shard = 0 to Array.length t.shards - 1 do
        copy_slice t snap shard None
      done;
      t
    with e ->
      Lw_store.unpin st snap;
      raise e
  in
  t.pinned <- Some (st, snap);
  Lw_obs.Metrics.set g_epoch (float_of_int (announced_epoch t));
  t

(* Bring every shard up to the engine's current epoch, copying only the
   bucket ranges whose CoW blocks actually changed since the epoch the
   shard last copied ([Snapshot.diff_ranges]); a shard at any other epoch
   (operator intervention, aborted refresh) is re-copied in full.

   [?abort_after] is a test/chaos hook: stop after updating that many
   shards, leaving the rest at their old epoch — the mixed-epoch state
   the answer paths must refuse. The new snapshot replaces the pin either
   way, so a later refresh full-copies the stragglers (their recorded
   epoch no longer matches the pinned one). *)
let refresh ?abort_after t =
  let st, old_snap =
    match t.pinned with
    | Some p -> p
    | None -> invalid_arg "Zltp_frontend.refresh: front-end not backed by a store"
  in
  let snap = Lw_store.pin_latest st in
  (* the new pin replaces the old one only after the copies; if a copy
     raises, release the new pin and leave the old state in place *)
  let updated =
    try
      let new_epoch = Lw_store.Snapshot.epoch snap in
      let old_epoch = Lw_store.Snapshot.epoch old_snap in
      let diff = lazy (Lw_store.Snapshot.diff_ranges old_snap snap) in
      let updated = ref 0 in
      let budget = Option.value abort_after ~default:max_int in
      for shard = 0 to Array.length t.shards - 1 do
        if t.epochs.(shard) <> new_epoch && !updated < budget then begin
          if t.epochs.(shard) = old_epoch then
            copy_slice t snap shard (Some (Lazy.force diff))
          else copy_slice t snap shard None;
          incr updated
        end
      done;
      !updated
    with e ->
      Lw_store.unpin st snap;
      raise e
  in
  t.pinned <- Some (st, snap);
  Lw_obs.Metrics.set g_epoch (float_of_int (announced_epoch t));
  Lw_store.unpin st old_snap;
  updated

let shards_down t =
  Array.fold_left (fun n d -> if d then n + 1 else n) 0 t.down

let set_shard_down t i down =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Zltp_frontend.set_shard_down";
  t.down.(i) <- down;
  Lw_obs.Metrics.set g_shards_down (float_of_int (shards_down t))

let shard_down t i = t.down.(i)

(* An answer share is the XOR over every shard's contribution, so a single
   unreachable shard makes the whole share wrong — the only safe reaction
   is a structured refusal the client can act on (fail over), never a
   partial XOR. *)
let check_down t =
  if shards_down t = 0 then Ok ()
  else begin
    let downs = ref [] in
    Array.iteri (fun i d -> if d then downs := i :: !downs) t.down;
    Error
      (Printf.sprintf "shards down: %s"
         (String.concat "," (List.rev_map string_of_int !downs)))
  end

(* The never-partial-XOR invariant, extended to epochs: shares computed
   against different epochs XOR into silent garbage exactly like shares
   with a shard missing, so a mixed-epoch shard fleet refuses with a
   structured error instead of combining. *)
let check_epochs t =
  match epoch_agreed t with
  | Some _ -> Ok ()
  | None ->
      let l =
        String.concat ","
          (Array.to_list (Array.mapi (fun i e -> Printf.sprintf "%d:%d" i e) t.epochs))
      in
      Error (Printf.sprintf "epoch mismatch across shards: %s" l)

let route t global =
  if global < 0 || global >= 1 lsl t.domain_bits then
    invalid_arg "Zltp_frontend: index out of domain";
  let rem = t.domain_bits - t.shard_bits in
  (global lsr rem, global land ((1 lsl rem) - 1))

let set_bucket t global data =
  let shard, local = route t global in
  Lw_pir.Bucket_db.set (Lw_pir.Server.db t.shards.(shard)) local data

let get_bucket t global =
  let shard, local = route t global in
  Lw_pir.Bucket_db.get (Lw_pir.Server.db t.shards.(shard)) local

let check_key t k =
  if Lw_dpf.Dpf.domain_bits k <> t.domain_bits then
    invalid_arg "Zltp_frontend.answer: key domain mismatch"

let combine_shares t shares =
  let acc = Bytes.make t.bucket_size '\x00' in
  Array.iter
    (fun share -> Lw_util.Xorbuf.xor_string_into ~src:share ~src_pos:0 ~dst:acc ~dst_pos:0
        ~len:t.bucket_size)
    shares;
  Bytes.unsafe_to_string acc

(* Time one shard's contribution against the span clock and feed the
   per-shard histogram; with metrics disabled this is the bare call. *)
let timed_shard t i f =
  if Lw_obs.Metrics.is_enabled () then begin
    let c = Lw_obs.Span.clock () in
    let t0 = Lw_obs.Clock.now c in
    let share = f () in
    Lw_obs.Metrics.observe t.shard_hist.(i) (Lw_obs.Clock.now c -. t0);
    share
  end
  else f ()

(* ---- shard-level scan parallelism knob ---- *)

let set_scan_domains t n =
  if n < 1 then invalid_arg "Zltp_frontend.set_scan_domains: need at least one domain";
  t.scan_domains <- n

let scan_domains t = t.scan_domains

(* One shard's contribution, through the parallel scan kernel when the
   knob asks for it (Server.answer_domains applies its own work-size
   cutoff, so small shards stay on the serial kernel either way). *)
let answer_shard t i sub =
  if t.scan_domains > 1 then
    Lw_pir.Server.answer_domains ~domains:t.scan_domains t.shards.(i) sub
  else Lw_pir.Server.answer t.shards.(i) sub

let answer_batch_shard t i subs =
  if t.scan_domains > 1 then
    Lw_pir.Server.answer_batch_domains ~domains:t.scan_domains t.shards.(i) subs
  else Lw_pir.Server.answer_batch t.shards.(i) subs

(* ---- hierarchical fan-out tree ---- *)

let build_tree t fanout_bits =
  if fanout_bits < 1 then invalid_arg "Zltp_frontend.set_tree_fanout: fanout_bits must be >= 1";
  let nodes = ref 0 and depth = ref 0 in
  let rec mk level levels_left base =
    incr nodes;
    if level > !depth then depth := level;
    if levels_left = 0 then Leaf base
    else begin
      let b = min fanout_bits levels_left in
      let rem = levels_left - b in
      Inner
        {
          levels = b;
          children = Array.init (1 lsl b) (fun i -> mk (level + 1) rem (base lor (i lsl rem)));
        }
    end
  in
  let root = mk 0 t.shard_bits 0 in
  { root; tdepth = !depth; tnodes = !nodes }

let set_tree_fanout t fanout =
  match fanout with
  | None -> t.tree <- None
  | Some b -> t.tree <- Some (b, build_tree t b)

let tree_fanout t = Option.map fst t.tree
let tree_depth t = match t.tree with Some (_, r) -> r.tdepth | None -> 0
let tree_nodes t = match t.tree with Some (_, r) -> r.tnodes | None -> 0

(* Walk the tree: an interior node pays one [2^levels]-way key split —
   O(2^fanout) small-prefix DPF expansions — and each leaf pays only its
   shard's small-domain evaluation, so one query reaches N shards with
   O(N) interior splits of depth O(log N) instead of N full-domain
   evaluations at the root. Sub-key re-basing composes (the child key of
   a child key shares the original correction words), so the shares this
   walk XORs are bit-identical to the flat fan-out's. *)
let answer_via_tree t rep k =
  let rec go node key =
    match node with
    | Leaf s -> timed_shard t s (fun () -> answer_shard t s key)
    | Inner { levels; children } ->
        let subs = Lw_dpf.Distributed.split key ~shard_bits:levels in
        let acc = Bytes.make t.bucket_size '\x00' in
        Array.iteri
          (fun i child ->
            (* the branches [go] takes are on the PUBLIC tree shape
               (Leaf/Inner) and scan config, never on key bits — the
               interprocedural taint over-approximates here *)
            (* lw-lint: allow taint lines=1 *)
            let share = go child subs.(i) in
            Lw_util.Xorbuf.xor_string_into ~src:share ~src_pos:0 ~dst:acc ~dst_pos:0
              ~len:t.bucket_size)
          children;
        Bytes.unsafe_to_string acc
  in
  Lw_obs.Metrics.incr m_tree_answers;
  go rep.root k

(* The batched tree walk: one pass over the tree per key, collecting the
   sub-key each leaf would have received into a shard-indexed array.
   Re-basing composes exactly as in [answer_via_tree], so [out.(s)] is
   bit-identical to the flat [Distributed.split] sub-key for shard [s] —
   which is what lets batches (and the keyword verb riding them) use the
   hierarchical fan-out and still feed the bit-packed shard kernel. *)
let leaf_subkeys t rep k =
  let out = Array.make (Array.length t.shards) k in
  let rec go node key =
    match node with
    | Leaf s -> out.(s) <- key
    | Inner { levels; children } ->
        let subs = Lw_dpf.Distributed.split key ~shard_bits:levels in
        (* [go] branches on the PUBLIC tree shape (Leaf/Inner), never on
           key bits — the interprocedural taint over-approximates here *)
        (* lw-lint: allow taint lines=1 *)
        Array.iteri (fun i child -> go child subs.(i)) children
  in
  go rep.root k;
  out

let answer t k =
  check_key t k;
  Lw_obs.Span.with_ ~name:"zltp.frontend.answer" (fun () ->
      let share =
        match t.tree with
        | Some (_, rep) -> answer_via_tree t rep k
        | None ->
            let subs = Lw_dpf.Distributed.split k ~shard_bits:t.shard_bits in
            let shares =
              Array.mapi (fun i sub -> timed_shard t i (fun () -> answer_shard t i sub)) subs
            in
            combine_shares t shares
      in
      Lw_obs.Metrics.incr m_answers;
      share)

let answer_result t k =
  match check_down t with
  | Error _ as e ->
      Lw_obs.Metrics.incr m_refusals;
      e
  | Ok () -> (
      match check_epochs t with
      | Error _ as e ->
          Lw_obs.Metrics.incr m_epoch_refusals;
          e
      | Ok () -> Ok (answer t k))

(* Batched private-GET across the shard fleet: split every query's key
   once, then hand each shard the whole batch of its sub-keys so it runs
   the bit-packed scan kernel ([Lw_pir.Server.answer_batch]) — one
   streamed pass over the shard's slice per 8 queries instead of one per
   query. Query [q]'s answer is the XOR of its per-shard shares, exactly
   as in [answer]. *)
let answer_batch t keys =
  Array.iter (check_key t) keys;
  let n = Array.length keys in
  if n = 0 then [||]
  else
    Lw_obs.Span.with_ ~name:"zltp.frontend.answer_batch" (fun () ->
        let subs =
          match t.tree with
          | Some (_, rep) ->
              Lw_obs.Metrics.add m_tree_answers n;
              Array.map (fun k -> leaf_subkeys t rep k) keys
          | None -> Array.map (fun k -> Lw_dpf.Distributed.split k ~shard_bits:t.shard_bits) keys
        in
        let by_shard =
          Array.mapi
            (fun s _shard ->
              (* [answer_batch_shard] branches only on [t.scan_domains],
                 public serving config — not on the sub-keys *)
              (* lw-lint: allow taint lines=2 *)
              timed_shard t s (fun () ->
                  answer_batch_shard t s (Array.map (fun sub -> sub.(s)) subs)))
            t.shards
        in
        Lw_obs.Metrics.add m_batch_queries n;
        Array.init n (fun q -> combine_shares t (Array.map (fun shares -> shares.(q)) by_shard)))

let answer_batch_result t keys =
  match check_down t with
  | Error _ as e ->
      Lw_obs.Metrics.incr m_refusals;
      e
  | Ok () -> (
      match check_epochs t with
      | Error _ as e ->
          Lw_obs.Metrics.incr m_epoch_refusals;
          e
      | Ok () -> Ok (answer_batch t keys))

type shard_timing = { shard : int; eval_s : float; scan_s : float }

let answer_timed t k =
  check_key t k;
  let subs = Lw_dpf.Distributed.split k ~shard_bits:t.shard_bits in
  let clock = Lw_obs.Span.clock () in
  let timings = ref [] in
  let shares =
    Array.mapi
      (fun i sub ->
        let t0 = Lw_obs.Clock.now clock in
        let bits = Lw_pir.Server.eval_bits t.shards.(i) sub in
        let t1 = Lw_obs.Clock.now clock in
        let share = Lw_pir.Server.scan t.shards.(i) bits in
        let t2 = Lw_obs.Clock.now clock in
        timings := { shard = i; eval_s = t1 -. t0; scan_s = t2 -. t1 } :: !timings;
        Lw_obs.Metrics.observe t.shard_hist.(i) (t2 -. t0);
        share)
      subs
  in
  (combine_shares t shares, List.rev !timings)

type shard_span = { span_shard : int; elapsed_s : float }

let answer_parallel_timed ?num_domains ?fault t k =
  check_key t k;
  let workers =
    match num_domains with
    | Some n -> max 1 n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let subs = Lw_dpf.Distributed.split k ~shard_bits:t.shard_bits in
  let n = Array.length subs in
  let shares = Array.make n None in
  let elapsed = Array.make n 0. in
  let next = Atomic.make 0 in
  let clock = Lw_obs.Span.clock () in
  (* Each worker claims distinct indices through [Atomic.fetch_and_add],
     so the [shares] and [elapsed] writes below are disjoint by
     construction, and the joins before the combine give this domain the
     happens-before edge back; no lock is needed. *)
  (* lw-lint: allow race lines=16 *)
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match fault with Some f -> f i | None -> ());
        let t0 = Lw_obs.Clock.now clock in
        let share = Lw_pir.Server.answer t.shards.(i) subs.(i) in
        elapsed.(i) <- Lw_obs.Clock.now clock -. t0;
        Lw_obs.Metrics.observe t.shard_hist.(i) elapsed.(i);
        shares.(i) <- Some share;
        go ()
      end
    in
    go ()
  in
  let domains = List.init (min workers n) (fun _ -> Domain.spawn worker) in
  (* Join every domain before acting on any failure, so a raising worker
     can neither leak the other domains nor let a partially-filled share
     array reach the XOR combine below. *)
  let first_failure =
    List.fold_left
      (fun acc d ->
        match Domain.join d with
        | () -> acc
        | exception e -> ( match acc with None -> Some e | Some _ -> acc))
      None domains
  in
  (match first_failure with Some e -> raise e | None -> ());
  (* unreachable when no worker raised: fetch_and_add hands out each
     index exactly once and a non-raising worker always stores it *)
  let all = Array.map (fun s -> Option.get s) shares in
  Lw_obs.Metrics.incr m_answers;
  ( combine_shares t all,
    Array.mapi (fun i e -> { span_shard = i; elapsed_s = e }) elapsed )

let answer_parallel ?num_domains ?fault t k =
  fst (answer_parallel_timed ?num_domains ?fault t k)
