type client_msg =
  | Hello of { version : int; modes : Zltp_mode.t list }
  | Pir_query of { qid : int; epoch : int; dpf_key : string }
  | Pir_batch of { qid : int; epoch : int; dpf_keys : string list }
  | Keyword_query of { qid : int; epoch : int; dpf_key0 : string; dpf_key1 : string }
  | Enclave_get of { qid : int; key : string }
  | Spir_hint_req of { qid : int; epoch : int }
  | Spir_query of { qid : int; epoch : int; query : string }
  | Health of { qid : int }
  | Sync of { qid : int }
  | Bye

type server_msg =
  | Welcome of {
      version : int;
      mode : Zltp_mode.t;
      domain_bits : int;
      blob_size : int;
      hash_key : string;
      server_id : string;
      epoch : int;
    }
  | Answer of { qid : int; epoch : int; share : string }
  | Batch_answer of { qid : int; epoch : int; shares : string list }
  | Keyword_answer of { qid : int; epoch : int; share0 : string; share1 : string }
  | Enclave_answer of { qid : int; value : string option }
  | Spir_hint of { qid : int; epoch : int; hint : string }
  | Spir_answer of { qid : int; epoch : int; answer : string }
  | Health_reply of { qid : int; shards_total : int; shards_down : int; epoch : int }
  | Sync_reply of { qid : int; epoch : int; oldest : int }
  | Err of { qid : int; code : int; message : string }

let protocol_version = 5
let err_not_negotiated = 1
let err_bad_request = 2
let err_wrong_mode = 3
let err_internal = 4
let err_degraded = 5
let err_epoch_retired = 6
let err_epoch_ahead = 7

(* The correlation id of a reply, when it carries one. [Welcome] does not
   (the handshake is strictly alternating); an [Err] about something other
   than a specific query uses qid 0. *)
let reply_qid = function
  | Welcome _ -> None
  | Answer { qid; _ } | Batch_answer { qid; _ } | Keyword_answer { qid; _ }
  | Enclave_answer { qid; _ } | Spir_hint { qid; _ } | Spir_answer { qid; _ }
  | Health_reply { qid; _ } | Sync_reply { qid; _ } | Err { qid; _ } ->
      Some qid

let request_qid = function
  | Hello _ | Bye -> None
  | Pir_query { qid; _ } | Pir_batch { qid; _ } | Keyword_query { qid; _ }
  | Enclave_get { qid; _ } | Spir_hint_req { qid; _ } | Spir_query { qid; _ }
  | Health { qid } | Sync { qid } ->
      Some qid

(* ---- primitive writers/readers: tag byte, u8, u32-be, length-prefixed
   strings and lists ---- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_list buf xs add =
  add_u32 buf (List.length xs);
  List.iter (add buf) xs

type reader = { src : string; mutable pos : int }

exception Decode of string

let need r n = if r.pos + n > String.length r.src then raise (Decode "truncated message")

let u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u32 r =
  need r 4;
  (* unsigned: a qid legitimately uses the full 32-bit range *)
  let v = Int32.to_int (String.get_int32_be r.src r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let str r =
  let n = u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let list r elt =
  let n = u32 r in
  if n > 1 lsl 20 then raise (Decode "list too long");
  List.init n (fun _ -> elt r)

let finish r v =
  if r.pos <> String.length r.src then raise (Decode "trailing bytes");
  v

(* Every encoded message carries a 4-byte CRC-32 trailer over its body —
   the stand-in for the record MAC of the TLS channel ZLTP rides in. It
   is what turns a corrupted-in-flight message into a structured decode
   [Error] (→ client retry) instead of silently wrong reassembled bytes:
   CRC-32 detects every single-bit flip deterministically. *)
let trailer_size = 4

let seal body =
  let n = String.length body in
  let b = Bytes.create (n + trailer_size) in
  Bytes.blit_string body 0 b 0 n;
  Bytes.set_int32_be b n (Lw_util.Crc32.digest body);
  Bytes.unsafe_to_string b

let unseal s =
  let n = String.length s - trailer_size in
  if n < 0 then raise (Decode "message shorter than integrity trailer");
  if not (Int32.equal (String.get_int32_be s n) (Lw_util.Crc32.update 0l s ~pos:0 ~len:n)) then
    raise (Decode "integrity check failed");
  n

let run_decoder f s =
  try
    let body_len = unseal s in
    Ok (f { src = String.sub s 0 body_len; pos = 0 })
  with Decode e -> Error e

(* ---- client messages ---- *)

let encode_client msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Hello { version; modes } ->
      add_u8 buf 1;
      add_u8 buf version;
      add_list buf modes (fun b m -> add_u8 b (Zltp_mode.to_tag m))
  | Pir_query { qid; epoch; dpf_key } ->
      add_u8 buf 2;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf dpf_key
  | Pir_batch { qid; epoch; dpf_keys } ->
      add_u8 buf 3;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_list buf dpf_keys add_str
  | Enclave_get { qid; key } ->
      add_u8 buf 4;
      add_u32 buf qid;
      add_str buf key
  | Bye -> add_u8 buf 5
  | Health { qid } ->
      add_u8 buf 6;
      add_u32 buf qid
  | Sync { qid } ->
      add_u8 buf 7;
      add_u32 buf qid
  | Keyword_query { qid; epoch; dpf_key0; dpf_key1 } ->
      add_u8 buf 8;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf dpf_key0;
      add_str buf dpf_key1
  | Spir_hint_req { qid; epoch } ->
      add_u8 buf 9;
      add_u32 buf qid;
      add_u32 buf epoch
  | Spir_query { qid; epoch; query } ->
      add_u8 buf 10;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf query);
  seal (Buffer.contents buf)

let mode_of_tag r =
  match Zltp_mode.of_tag (u8 r) with
  | Some m -> m
  | None -> raise (Decode "unknown mode tag")

let decode_client s =
  run_decoder
    (fun r ->
      match u8 r with
      | 1 ->
          let version = u8 r in
          let modes = list r mode_of_tag in
          finish r (Hello { version; modes })
      | 2 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Pir_query { qid; epoch; dpf_key = str r })
      | 3 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Pir_batch { qid; epoch; dpf_keys = list r str })
      | 4 ->
          let qid = u32 r in
          finish r (Enclave_get { qid; key = str r })
      | 5 -> finish r Bye
      | 6 -> finish r (Health { qid = u32 r })
      | 7 -> finish r (Sync { qid = u32 r })
      | 8 ->
          let qid = u32 r in
          let epoch = u32 r in
          let dpf_key0 = str r in
          let dpf_key1 = str r in
          finish r (Keyword_query { qid; epoch; dpf_key0; dpf_key1 })
      | 9 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Spir_hint_req { qid; epoch })
      | 10 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Spir_query { qid; epoch; query = str r })
      | t -> raise (Decode (Printf.sprintf "unknown client tag %d" t)))
    s

(* ---- server messages ---- *)

let encode_server msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Welcome { version; mode; domain_bits; blob_size; hash_key; server_id; epoch } ->
      add_u8 buf 1;
      add_u8 buf version;
      add_u8 buf (Zltp_mode.to_tag mode);
      add_u8 buf domain_bits;
      add_u32 buf blob_size;
      add_str buf hash_key;
      add_str buf server_id;
      add_u32 buf epoch
  | Answer { qid; epoch; share } ->
      add_u8 buf 2;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf share
  | Batch_answer { qid; epoch; shares } ->
      add_u8 buf 3;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_list buf shares add_str
  | Enclave_answer { qid; value } -> (
      add_u8 buf 4;
      add_u32 buf qid;
      match value with
      | None -> add_u8 buf 0
      | Some v ->
          add_u8 buf 1;
          add_str buf v)
  | Err { qid; code; message } ->
      add_u8 buf 5;
      add_u32 buf qid;
      add_u8 buf code;
      add_str buf message
  | Health_reply { qid; shards_total; shards_down; epoch } ->
      add_u8 buf 6;
      add_u32 buf qid;
      add_u32 buf shards_total;
      add_u32 buf shards_down;
      add_u32 buf epoch
  | Sync_reply { qid; epoch; oldest } ->
      add_u8 buf 7;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_u32 buf oldest
  | Keyword_answer { qid; epoch; share0; share1 } ->
      add_u8 buf 8;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf share0;
      add_str buf share1
  | Spir_hint { qid; epoch; hint } ->
      add_u8 buf 9;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf hint
  | Spir_answer { qid; epoch; answer } ->
      add_u8 buf 10;
      add_u32 buf qid;
      add_u32 buf epoch;
      add_str buf answer);
  seal (Buffer.contents buf)

let decode_server s =
  run_decoder
    (fun r ->
      match u8 r with
      | 1 ->
          let version = u8 r in
          let mode = mode_of_tag r in
          let domain_bits = u8 r in
          let blob_size = u32 r in
          let hash_key = str r in
          let server_id = str r in
          let epoch = u32 r in
          finish r (Welcome { version; mode; domain_bits; blob_size; hash_key; server_id; epoch })
      | 2 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Answer { qid; epoch; share = str r })
      | 3 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Batch_answer { qid; epoch; shares = list r str })
      | 4 -> (
          let qid = u32 r in
          match u8 r with
          | 0 -> finish r (Enclave_answer { qid; value = None })
          | 1 -> finish r (Enclave_answer { qid; value = Some (str r) })
          | _ -> raise (Decode "bad option tag"))
      | 5 ->
          let qid = u32 r in
          let code = u8 r in
          let message = str r in
          finish r (Err { qid; code; message })
      | 6 ->
          let qid = u32 r in
          let shards_total = u32 r in
          let shards_down = u32 r in
          let epoch = u32 r in
          finish r (Health_reply { qid; shards_total; shards_down; epoch })
      | 7 ->
          let qid = u32 r in
          let epoch = u32 r in
          let oldest = u32 r in
          finish r (Sync_reply { qid; epoch; oldest })
      | 8 ->
          let qid = u32 r in
          let epoch = u32 r in
          let share0 = str r in
          let share1 = str r in
          finish r (Keyword_answer { qid; epoch; share0; share1 })
      | 9 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Spir_hint { qid; epoch; hint = str r })
      | 10 ->
          let qid = u32 r in
          let epoch = u32 r in
          finish r (Spir_answer { qid; epoch; answer = str r })
      | t -> raise (Decode (Printf.sprintf "unknown server tag %d" t)))
    s
