(** Sharded ZLTP data plane (§5.2): a front-end owns [2^shard_bits] data
    shards, each holding the slice of the bucket domain whose top bits
    equal its shard index. Per query, the front-end expands the top of the
    client's DPF tree, hands every shard its sub-tree root, and XORs the
    shard answers — so each shard pays only the small-domain evaluation
    cost, exactly the distribution argument the paper's Table 2 scale-up
    rests on. *)

type t

val create : domain_bits:int -> shard_bits:int -> bucket_size:int -> t
(** Empty sharded store over a [2^domain_bits] global bucket domain. *)

val of_db : Lw_pir.Bucket_db.t -> shard_bits:int -> t
(** Split an existing monolithic database into shards (copies buckets). *)

val of_store : Lw_store.t -> shard_bits:int -> t
(** Shard the current epoch of the versioned engine. The front-end keeps
    the copied snapshot pinned so {!refresh} can later diff against it. *)

val refresh : ?abort_after:int -> t -> int
(** Bring every shard up to the engine's current epoch and return how
    many shards were updated. A shard still at the previously copied
    epoch pays only the changed bucket ranges
    ({!Lw_store.Snapshot.diff_ranges}); a shard at any other epoch is
    re-copied in full. [?abort_after n] (test/chaos hook) stops after
    updating [n] shards, leaving the rest behind — the mixed-epoch state
    the [_result] answer paths refuse; the following [refresh] catches
    the stragglers up. Raises [Invalid_argument] when the front-end was
    not built by {!of_store}. *)

val domain_bits : t -> int
val shard_bits : t -> int
val shard_count : t -> int
val bucket_size : t -> int

val shard_histograms : t -> Lw_obs.Metrics.histogram array
(** The per-shard answer-latency histograms
    ([zltp.frontend.shardNN.answer_seconds]), indexed by shard — what
    {!Lw_obs.Metrics.merge_into} folds into one fleet-wide view. *)

(** {2 Scan parallelism}

    Per-shard scans can run on OCaml domains
    ({!Lw_pir.Server.answer_domains}); the knob applies to every answer
    path, and {!Lw_pir.Server.parallel_cutoff_bytes} keeps small shards
    on the serial kernel regardless. *)

val set_scan_domains : t -> int -> unit
(** Workers each shard's scan may use; 1 (the default) is the serial
    fused kernel. Raises [Invalid_argument] when [< 1]. *)

val scan_domains : t -> int

(** {2 Hierarchical fan-out tree}

    With a fanout set, single-key answers route through a tree of
    interior nodes, each splitting its incoming key once into
    [2^fanout_bits] sub-keys ({!Lw_dpf.Dpf.eval_prefixes} +
    {!Lw_dpf.Dpf.make_subkey}); leaves hand their sub-key to one data
    shard. A query thus reaches [N] shards with [O(log N)]-deep splits
    plus per-shard small-domain work instead of [N] full-domain
    evaluations, and the XOR of the leaf shares is bit-identical to the
    flat fan-out. Down-shard and mixed-epoch refusals are checked in the
    [_result] entry points before any walk, so they survive the tree
    unchanged. *)

val set_tree_fanout : t -> int option -> unit
(** [Some fanout_bits] builds (and routes answers through) the tree;
    [None] restores the flat split. Raises [Invalid_argument] when
    [fanout_bits < 1]. *)

val tree_fanout : t -> int option

val tree_depth : t -> int
(** Interior levels of the active tree ([ceil (shard_bits /
    fanout_bits)]); 0 without a tree. *)

val tree_nodes : t -> int
(** Total tree nodes including leaves; 0 without a tree. *)

(** {2 Shard epochs}

    Shares computed against different epochs XOR into silent garbage
    exactly like shares with a shard missing, so the [_result] answer
    paths refuse (structured error, [zltp.frontend.epoch_refusals]
    counter) unless every shard sits at the same epoch. *)

val epoch_agreed : t -> int option
(** [Some e] iff every shard's copy reflects epoch [e]. *)

val announced_epoch : t -> int
(** The highest shard epoch — what the server announces in [Welcome] /
    [Health_reply] (also the [zltp.frontend.epoch] gauge). *)

val set_shard_epoch : t -> int -> int -> unit
(** [set_shard_epoch t i e] overrides shard [i]'s recorded epoch — a
    test/chaos hook for forcing the mixed-epoch refusal path. *)

val set_bucket : t -> int -> string -> unit
(** [set_bucket t global_index data] routes to the owning shard. *)

val get_bucket : t -> int -> string

(** {2 Shard health}

    An answer share is the XOR over {e every} shard's contribution, so a
    single unreachable shard makes the whole share silently wrong. The
    front-end therefore tracks per-shard availability and the
    [_result] answer paths refuse — with a structured error naming the
    down shards — rather than return a partial XOR. *)

val set_shard_down : t -> int -> bool -> unit
(** Mark shard [i] unreachable (or back up). Used operationally and by the
    chaos harness to inject backend degradation. *)

val shard_down : t -> int -> bool

val shards_down : t -> int
(** Number of shards currently marked down. *)

val answer_result : t -> Lw_dpf.Dpf.key -> (string, string) result
(** Like {!answer} but refuses with [Error] naming the down shards when
    any shard is unavailable. *)

val answer_batch_result :
  t -> Lw_dpf.Dpf.key array -> (string array, string) result

val answer : t -> Lw_dpf.Dpf.key -> string
(** Full private-GET answer share for a full-domain DPF key. *)

val answer_batch : t -> Lw_dpf.Dpf.key array -> string array
(** Batched private-GET: each shard receives the whole batch of its
    sub-keys and answers them through the bit-packed scan kernel
    ({!Lw_pir.Server.answer_batch}), so a batch pays one streamed pass
    over each shard's slice per 8 queries. When a fan-out tree is active
    ({!set_tree_fanout}), each key's sub-keys are derived through the
    hierarchical walk instead of the flat split — bit-identical leaves,
    so the shard batches are unchanged. [answer_batch t [|k|]] and
    [[|answer t k|]] agree byte-for-byte. *)

type shard_timing = { shard : int; eval_s : float; scan_s : float }

val answer_timed : t -> Lw_dpf.Dpf.key -> string * shard_timing list
(** Same, with per-shard eval/scan timings (read off the span clock, so
    virtual clocks make them deterministic) for E7. The sequential
    answer paths also feed the per-shard
    [zltp.frontend.shardNN.answer_seconds] histograms in {!Lw_obs}. *)

type shard_span = { span_shard : int; elapsed_s : float }
(** One shard's total answer time inside a parallel answer. *)

val answer_parallel :
  ?num_domains:int -> ?fault:(int -> unit) -> t -> Lw_dpf.Dpf.key -> string
(** Shard answers computed on OCaml domains ([num_domains] defaults to
    [Domain.recommended_domain_count ()]), modelling the paper's fleet of
    data servers working one request concurrently. All domains are
    joined before any worker failure is re-raised — a raising shard can
    neither leak domains nor let a partial share array be XOR-combined.

    [?fault] is a fault-injection hook for tests and the chaos harness:
    it runs in the worker just before shard [i] computes, so a rigged
    shard can raise exactly where a real backend would fail. *)

val answer_parallel_timed :
  ?num_domains:int ->
  ?fault:(int -> unit) ->
  t ->
  Lw_dpf.Dpf.key ->
  string * shard_span array
(** {!answer_parallel} plus per-shard elapsed times (span clock), the
    parallel counterpart of {!answer_timed} — which the parallel path
    used to silently lack. *)
