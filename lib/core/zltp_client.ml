type policy = {
  attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  deadline_s : float;
}

let default_policy =
  { attempts = 4; base_backoff_s = 0.05; max_backoff_s = 1.0; deadline_s = 30.0 }

type replica = { name : string; dial : unit -> (Lw_net.Endpoint.t, string) result }

let replica ~name dial = { name; dial }

(* A pre-established endpoint as a replica: usable for exactly one dial.
   If its connection later fails there is nothing to re-dial, so the
   replica counts as permanently down — the legacy [connect] behaviour. *)
let of_endpoint ~name ep =
  let used = ref false in
  {
    name;
    dial =
      (fun () ->
        if !used then Error "static endpoint already consumed"
        else begin
          used := true;
          Ok ep
        end);
  }

type params = {
  mode : Zltp_mode.t;
  domain_bits : int;
  blob_size : int;
  hash_key : string;
}

type session = { ep : Lw_net.Endpoint.t; replica_name : string; mutable epoch : int }

type role = {
  replicas : replica array;
  mutable cursor : int; (* currently preferred replica *)
  mutable session : session option;
}

type t = {
  roles : role array;
  prefer : Zltp_mode.t list;
  rng : Lw_crypto.Drbg.t;
  policy : policy;
  clock : Lw_obs.Clock.t;
  mutable params : params option;
  mutable keymap : Lw_pir.Keymap.t option;
  (* the two cuckoo candidate hashes (salts 0/1 of the Welcome hash_key)
     a keyword GET probes — derived once at handshake *)
  mutable kw_maps : (Lw_pir.Keymap.t * Lw_pir.Keymap.t) option;
  mutable next_qid : int;
  mutable queries : int;
  mutable retries : int;
  mutable failovers : int;
  (* epoch the next PIR query names; pinned for the whole of a page visit
     ([begin_visit]/[end_visit]) so one page never mixes epochs *)
  mutable epoch : int option;
  mutable visit : bool;
  mutable resync_needed : bool;
  mutable resyncs : int;
  (* single-server PIR: decoded per-epoch public hints. The ONLY client
     state the mode keeps, and it is epoch-keyed public data any client
     could re-fetch — dropped wholesale on re-sync, so a client that
     fell behind holds nothing stale. *)
  mutable spir_hints : (int * Lw_pir.Spir.hint) list;
}

let spir_hint_keep = 4

let params_exn t =
  match t.params with Some p -> p | None -> invalid_arg "Zltp_client: not connected"

let mode t = (params_exn t).mode
let blob_size t = (params_exn t).blob_size
let domain_bits t = (params_exn t).domain_bits
let queries_sent t = t.queries
let retries t = t.retries
let failovers t = t.failovers
let epoch_resyncs t = t.resyncs
let current_epoch t = t.epoch

(* Page-visit epoch pinning: every fetch of one page (document, then
   subresources) names the same epoch, so a page can neither mix record
   versions nor — the side channel — have a mid-visit publisher update
   make its fetch pattern diverge across the two servers. *)
let begin_visit t =
  t.visit <- true;
  t.epoch <- None

let end_visit t =
  t.visit <- false;
  t.epoch <- None

(* qids are plain session-local sequence numbers: public metadata, never
   derived from request contents. 0 is reserved for "no specific query". *)
let fresh_qid t =
  let q = t.next_qid in
  t.next_qid <- (if q >= 0xFFFFFFFF then 1 else q + 1);
  q

(* Operation failures split into the two classes the retry loop cares
   about: [`Transient] (the network or this replica misbehaved — worth a
   fresh attempt, likely after failing over) and [`Fatal] (the request
   itself is unacceptable; retrying is useless). *)
let transient e = Error (`Transient e)
let fatal e = Error (`Fatal e)

let send_msg ep msg =
  match ep.Lw_net.Endpoint.send (Zltp_wire.encode_client msg) with
  | () -> Ok ()
  | exception Lw_net.Endpoint.Closed -> transient "connection closed on send"
  | exception Lw_net.Endpoint.Timeout -> transient "send timed out"

(* Receive the reply correlated with [qid], skipping a bounded number of
   stale replies (late or duplicated answers to earlier attempts that are
   still sitting in the pipe). Without the qid check a duplicated reply
   would be XOR-combined into silently wrong bytes. *)
let recv_matching ep ~qid =
  let rec go skipped =
    if skipped > 8 then transient "too many stale replies"
    else
      (* deadline enforced by the transport (SO_RCVTIMEO / fault-schedule
         virtual deadline), surfaced as Endpoint.Timeout below *)
      match Zltp_wire.decode_server (ep.Lw_net.Endpoint.recv () (* lw-lint: allow unbounded-wait *)) with
      | Error e -> transient (Printf.sprintf "undecodable server reply: %s" e)
      | exception Lw_net.Endpoint.Closed -> transient "connection closed"
      | exception Lw_net.Endpoint.Timeout -> transient "receive timed out"
      | Ok reply -> (
          match Zltp_wire.reply_qid reply with
          | Some q when q = qid -> Ok reply
          | Some 0 -> (
              (* session-level error: about us, not a stale query *)
              match reply with Zltp_wire.Err _ -> Ok reply | _ -> go (skipped + 1))
          | Some _ -> go (skipped + 1)
          | None -> go (skipped + 1))
  in
  go 0

(* ---- dialing ---- *)

(* Returns the replica's announced epoch on success. The epoch is
   deliberately NOT part of the parameter-agreement check: replicas of a
   live universe legitimately sit at different epochs for a while — the
   per-query epoch match (and re-sync) handles that, not the handshake. *)
let check_params t (w : Zltp_wire.server_msg) =
  match w with
  | Zltp_wire.Welcome { mode; domain_bits; blob_size; hash_key; epoch; _ } -> (
      match t.params with
      | None ->
          t.params <- Some { mode; domain_bits; blob_size; hash_key };
          (* both PIR flavours address by index, so both need the
             key→index map; the two keyword candidate hashes are only
             probed by the two-server keyword verb *)
          if mode = Zltp_mode.Pir2 || mode = Zltp_mode.Single then begin
            let base = Lw_pir.Keymap.create ~hash_key ~domain_bits in
            t.keymap <- Some base;
            if mode = Zltp_mode.Pir2 then
              t.kw_maps <-
                Some (Lw_pir.Keymap.derive base ~salt:0, Lw_pir.Keymap.derive base ~salt:1)
          end;
          Ok epoch
      | Some p ->
          if
            p.mode = mode && p.domain_bits = domain_bits && p.blob_size = blob_size
            && String.equal p.hash_key hash_key
          then Ok epoch
          else Error "replica disagrees on session parameters")
  | _ -> Error "protocol violation: expected Welcome"

(* Dial one replica: Health probe, then Hello. The probe is sent to every
   replica we try — healthy or not — so the dial trace is uniform and a
   network observer learns nothing from which replica we settled on beyond
   what the (public) replica health already reveals. *)
let dial_replica t (r : replica) =
  match r.dial () with
  | Error e -> Error e
  | Ok ep -> (
      let give_up e =
        ep.Lw_net.Endpoint.close ();
        Error e
      in
      let qid = fresh_qid t in
      match send_msg ep (Zltp_wire.Health { qid }) with
      | Error (`Transient e | `Fatal e) -> give_up e
      | Ok () -> (
          match recv_matching ep ~qid with
          | Error (`Transient e | `Fatal e) -> give_up e
          | Ok (Zltp_wire.Health_reply { shards_down; _ }) when shards_down > 0 ->
              give_up (Printf.sprintf "replica degraded: %d shard(s) down" shards_down)
          | Ok (Zltp_wire.Err { message; _ }) -> give_up ("health probe refused: " ^ message)
          | Ok (Zltp_wire.Health_reply _) -> (
              match
                send_msg ep
                  (Zltp_wire.Hello { version = Zltp_wire.protocol_version; modes = t.prefer })
              with
              | Error (`Transient e | `Fatal e) -> give_up e
              | Ok () -> (
                  (* transport-enforced deadline, as in recv_matching *)
                  match
                    Zltp_wire.decode_server
                      (ep.Lw_net.Endpoint.recv () (* lw-lint: allow unbounded-wait *))
                  with
                  | exception Lw_net.Endpoint.Closed -> give_up "connection closed"
                  | exception Lw_net.Endpoint.Timeout -> give_up "handshake timed out"
                  | Error e -> give_up ("undecodable server reply: " ^ e)
                  | Ok (Zltp_wire.Err { message; _ }) -> give_up ("server refused: " ^ message)
                  | Ok w -> (
                      match check_params t w with
                      | Ok epoch -> Ok { ep; replica_name = r.name; epoch }
                      | Error e -> give_up e)))
          | Ok _ -> give_up "protocol violation: expected Health_reply"))

(* Current session for a role, dialing if needed; tries every replica
   once, starting from the preferred cursor. *)
let role_session t role =
  match role.session with
  | Some s -> Ok s
  | None ->
      let n = Array.length role.replicas in
      let rec try_from k errs =
        if k >= n then
          Error
            (Printf.sprintf "all replicas failed (%s)" (String.concat "; " (List.rev errs)))
        else begin
          let idx = (role.cursor + k) mod n in
          let r = role.replicas.(idx) in
          match dial_replica t r with
          | Ok s ->
              role.cursor <- idx;
              role.session <- Some s;
              Ok s
          | Error e -> try_from (k + 1) ((r.name ^ ": " ^ e) :: errs)
        end
      in
      try_from 0 []

(* Registry mirrors of the per-client telemetry fields, so retry storms
   and failovers show up in a process [--metrics] dump across every
   client instance. *)
let m_queries = Lw_obs.Metrics.counter "zltp.client.queries"
let m_retries = Lw_obs.Metrics.counter "zltp.client.retries"
let m_failovers = Lw_obs.Metrics.counter "zltp.client.failovers"
let m_resyncs = Lw_obs.Metrics.counter "zltp.client.epoch_resyncs"
let m_backoff = Lw_obs.Metrics.histogram "zltp.client.backoff_seconds"

(* Tear down a role's connection after a failure and point its cursor at
   the next replica, so the re-dial inside the next attempt fails over. *)
let fail_role t role =
  (match role.session with
  | Some s -> s.ep.Lw_net.Endpoint.close ()
  | None -> ());
  role.session <- None;
  let n = Array.length role.replicas in
  if n > 1 then begin
    role.cursor <- (role.cursor + 1) mod n;
    t.failovers <- t.failovers + 1;
    Lw_obs.Metrics.incr m_failovers
  end

(* ---- retry loop ---- *)

let backoff_duration t ~attempt =
  let b = t.policy.base_backoff_s *. (2. ** float_of_int attempt) in
  let b = Float.min b t.policy.max_backoff_s in
  (* jitter in [b/2, b]: decorrelates retry storms across clients *)
  b *. (0.5 +. 0.5 *. (float_of_int (Lw_crypto.Drbg.uniform_int t.rng 1024) /. 1024.))

let with_retry t op =
  let start = Lw_obs.Clock.now t.clock in
  let rec go attempt =
    match op () with
    | Ok v -> Ok v
    | Error (`Fatal e) -> Error e
    | Error (`Transient e) ->
        if attempt + 1 >= t.policy.attempts then
          Error (Printf.sprintf "%s (after %d attempts)" e (attempt + 1))
        else begin
          let pause = backoff_duration t ~attempt in
          let elapsed = Lw_obs.Clock.now t.clock -. start in
          if elapsed +. pause >= t.policy.deadline_s then
            Error (Printf.sprintf "%s (deadline exceeded)" e)
          else begin
            t.retries <- t.retries + 1;
            Lw_obs.Metrics.incr m_retries;
            Lw_obs.Metrics.observe m_backoff pause;
            Lw_obs.Clock.sleep t.clock pause;
            go (attempt + 1)
          end
        end
  in
  go 0

(* ---- connection ---- *)

let connect_replicated ?(prefer = [ Zltp_mode.Pir2; Zltp_mode.Enclave; Zltp_mode.Single ]) ?rng
    ?(policy = default_policy) ?clock role_replicas =
  let rng = match rng with Some r -> r | None -> Lw_crypto.Drbg.system () in
  let clock = match clock with Some c -> c | None -> Lw_obs.Clock.real () in
  if policy.attempts < 1 then Error "policy.attempts must be >= 1"
  else if List.exists (fun rs -> rs = []) role_replicas then
    Error "every role needs at least one replica"
  else begin
    let roles =
      Array.of_list
        (List.map
           (fun rs -> { replicas = Array.of_list rs; cursor = 0; session = None })
           role_replicas)
    in
    let t =
      {
        roles;
        prefer;
        rng;
        policy;
        clock;
        params = None;
        keymap = None;
        kw_maps = None;
        next_qid = 1;
        queries = 0;
        retries = 0;
        failovers = 0;
        epoch = None;
        visit = false;
        resync_needed = false;
        resyncs = 0;
        spir_hints = [];
      }
    in
    let rec dial_all i =
      if i >= Array.length t.roles then Ok ()
      else
        match role_session t t.roles.(i) with
        | Ok _ -> dial_all (i + 1)
        | Error e -> Error (Printf.sprintf "role %d: %s" i e)
    in
    match dial_all 0 with
    | Error e -> Error e
    | Ok () -> (
        let p = params_exn t in
        match (p.mode, Array.length t.roles) with
        | Zltp_mode.Pir2, 2 -> Ok t
        | Zltp_mode.Pir2, n ->
            Error
              (Printf.sprintf "PIR mode requires exactly 2 non-colluding servers, got %d" n)
        | Zltp_mode.Enclave, 1 -> Ok t
        | Zltp_mode.Enclave, n ->
            Error (Printf.sprintf "enclave mode uses exactly 1 server, got %d" n)
        | Zltp_mode.Single, 1 -> Ok t
        | Zltp_mode.Single, n ->
            Error (Printf.sprintf "single-server PIR mode uses exactly 1 server, got %d" n))
  end

let connect ?prefer ?rng ?policy ?clock endpoints =
  match endpoints with
  | [] -> Error "no endpoints given"
  | _ ->
      connect_replicated ?prefer ?rng ?policy ?clock
        (List.mapi
           (fun i ep -> [ of_endpoint ~name:(Printf.sprintf "static-%d" i) ep ])
           endpoints)

(* ---- private-GET ----

   Each attempt generates a completely fresh DPF key pair (and a fresh
   qid), so a retried query is cryptographically indistinguishable from a
   new one: a server comparing a retry against the original learns nothing
   about whether they target the same index. Sends to both roles complete
   before either receive starts, keeping the per-server trace shape
   independent of which server is slow or failing. *)

let role_err t role = function
  | Error (`Transient _ as e) ->
      fail_role t role;
      Error e
  | (Error (`Fatal _) | Ok _) as r -> r

(* ---- epoch re-sync ----

   An epoch error (or a reply tagged with an unexpected epoch) means the
   client's idea of the common epoch is stale — not that the connection
   is broken. The reaction is a [Sync] round on both roles to re-learn
   each replica's published epoch; if they diverge, the role on the
   lower (stale) epoch is failed over, so the retry can land on an
   up-to-date replica of that role. The stale attempt itself is
   [`Transient], riding the existing retry/backoff loop. *)

let note_epoch_trouble t =
  t.epoch <- None;
  t.resync_needed <- true

let sync_session t role (s : session) =
  let qid = fresh_qid t in
  match send_msg s.ep (Zltp_wire.Sync { qid }) with
  | Error _ ->
      fail_role t role;
      None
  | Ok () -> (
      match recv_matching s.ep ~qid with
      | Ok (Zltp_wire.Sync_reply { epoch; _ }) ->
          s.epoch <- epoch;
          Some epoch
      | Ok _ | Error _ ->
          fail_role t role;
          None)

let resync t =
  t.resync_needed <- false;
  t.epoch <- None;
  (* single-server PIR keeps no state past its per-epoch hints, and a
     re-sync is exactly the "my epoch view is stale" signal — drop them
     all; the next query re-fetches the (public) hint for whatever epoch
     it lands on *)
  t.spir_hints <- [];
  t.resyncs <- t.resyncs + 1;
  Lw_obs.Metrics.incr m_resyncs;
  let probe role = Option.bind role.session (fun s -> sync_session t role s) in
  match t.roles with
  | [| r0; r1 |] -> (
      (* if the replicas diverge, fail over the stale side so the retry
         can land on an up-to-date replica of that role *)
      match (probe r0, probe r1) with
      | Some a, Some b when a < b -> fail_role t r0
      | Some a, Some b when b < a -> fail_role t r1
      | _ -> ())
  | roles -> Array.iter (fun r -> ignore (probe r)) roles

let epoch_error code =
  code = Zltp_wire.err_epoch_retired || code = Zltp_wire.err_epoch_ahead

(* [err_bad_request] covers both a genuinely malformed request (a client
   bug) and a frame corrupted or desynced in flight — the CRC trailer
   turns the latter into a structured decode failure on the server, and
   the two are indistinguishable from here. The connection is suspect
   either way: fail the role so a replicated session re-dials, and let
   the bounded retry loop decide whether to give up. *)
let conn_scoped_error code =
  code = Zltp_wire.err_degraded || code = Zltp_wire.err_internal
  || code = Zltp_wire.err_bad_request

let expect_share t role ~epoch = function
  | Ok (Zltp_wire.Answer { epoch = e; share; _ }) ->
      if e <> epoch then begin
        (* never XOR a share from the wrong epoch — not even with a
           matching qid: drop it and re-sync *)
        note_epoch_trouble t;
        transient (Printf.sprintf "answer epoch %d, queried %d" e epoch)
      end
      else Ok share
  | Ok (Zltp_wire.Err { code; message; _ }) ->
      if epoch_error code then begin
        (* the session is healthy, the epoch was just stale/early: no
           fail_role — re-sync decides which side (if any) to abandon *)
        note_epoch_trouble t;
        transient message
      end
      else if conn_scoped_error code then
        role_err t role (transient message)
      else fatal message
  | Ok _ -> role_err t role (transient "protocol violation: expected Answer")
  | Error _ as e -> role_err t role e

let first_error rs =
  let fatal_first =
    List.find_opt (function Error (`Fatal _) -> true | _ -> false) rs
  in
  match fatal_first with
  | Some (Error (`Fatal e)) -> fatal e
  | _ -> (
      match List.find_opt (function Error _ -> true | _ -> false) rs with
      | Some (Error (`Transient e)) -> transient e
      | _ -> transient "internal: no error found")

let pir_sessions t =
  match t.roles with
  | [| r0; r1 |] -> (
      match (role_session t r0, role_session t r1) with
      | Ok s0, Ok s1 -> Ok ((r0, s0), (r1, s1))
      | Error e, _ | _, Error e -> transient e)
  | _ -> fatal "not a PIR session"

(* The epoch the next query names: the pinned one if a visit (or an
   earlier query of this operation) pinned it, else the highest epoch
   both sessions can serve — their minimum, since a freshly sealed epoch
   reaches the replicas at different times. *)
let query_epoch t (s0 : session) (s1 : session) =
  match t.epoch with
  | Some e -> e
  | None ->
      let e = min s0.epoch s1.epoch in
      t.epoch <- Some e;
      e

let pir_attempt t index =
  if t.resync_needed then resync t;
  match pir_sessions t with
  | Error _ as e -> e
  | Ok ((role0, s0), (role1, s1)) -> (
      let qid = fresh_qid t in
      let epoch = query_epoch t s0 s1 in
      let key0, key1 =
        Lw_dpf.Dpf.gen ~domain_bits:(params_exn t).domain_bits ~alpha:index t.rng
      in
      let q k = Zltp_wire.Pir_query { qid; epoch; dpf_key = Lw_dpf.Dpf.serialize k } in
      let sent0 = role_err t role0 (send_msg s0.ep (q key0)) in
      let sent1 = role_err t role1 (send_msg s1.ep (q key1)) in
      match (sent0, sent1) with
      | Ok (), Ok () -> (
          let r0 = expect_share t role0 ~epoch (recv_matching s0.ep ~qid) in
          let r1 = expect_share t role1 ~epoch (recv_matching s1.ep ~qid) in
          match (r0, r1) with
          | Ok share0, Ok share1 ->
              (* both shares verified to carry the queried epoch, so the
                 XOR below is over bit-identical databases by construction *)
              t.queries <- t.queries + 1;
              Lw_obs.Metrics.incr m_queries;
              Ok (Lw_pir.Client.combine ~resp0:share0 ~resp1:share1)
          | _ -> first_error [ r0; r1 ])
      | _ -> first_error [ sent0; sent1 ])

(* Outside a visit each operation re-learns the freshest common epoch;
   inside one the first query pins it until [end_visit]. *)
let fresh_op_epoch t = if not t.visit then t.epoch <- None

let pir_fetch_index t index =
  fresh_op_epoch t;
  with_retry t (fun () -> pir_attempt t index)

(* ---- single-server private-GET ----

   One role, one server. The per-epoch public hint is fetched once and
   cached by epoch; every query then sends a freshly masked selection
   vector — under LWE the server's view is uniform whatever the index,
   and its answer scan walks every bucket in index order regardless
   ([Trace_check.check_spir_scan]). A retried query re-masks with a
   fresh secret and a fresh qid, so — like a regenerated DPF pair — a
   retry is cryptographically indistinguishable from a new query. *)

let single_role t =
  match t.roles with [| role |] -> Ok role | _ -> fatal "not a single-server session"

(* Epoch for the next query: the pinned one inside a visit, else the
   session's announced epoch (there is only one server to agree with). *)
let spir_query_epoch t (s : session) =
  match t.epoch with
  | Some e -> e
  | None ->
      t.epoch <- Some s.epoch;
      s.epoch

let cache_hint t ~epoch hint =
  t.spir_hints <-
    (epoch, hint)
    :: List.filteri (fun i _ -> i < spir_hint_keep - 1) (List.remove_assoc epoch t.spir_hints)

let spir_hint_for t role (s : session) ~epoch =
  match List.assoc_opt epoch t.spir_hints with
  | Some h -> Ok h
  | None -> (
      let qid = fresh_qid t in
      match role_err t role (send_msg s.ep (Zltp_wire.Spir_hint_req { qid; epoch })) with
      | Error _ as e -> e
      | Ok () -> (
          match recv_matching s.ep ~qid with
          | Ok (Zltp_wire.Spir_hint { epoch = e; hint; _ }) ->
              if e <> epoch then begin
                note_epoch_trouble t;
                transient (Printf.sprintf "hint epoch %d, requested %d" e epoch)
              end
              else (
                match Lw_pir.Spir.decode_hint hint with
                | Error e -> role_err t role (transient ("undecodable hint: " ^ e))
                | Ok h ->
                    if Lw_pir.Spir.hint_epoch h <> epoch then
                      role_err t role (transient "hint stamped with wrong epoch")
                    else begin
                      cache_hint t ~epoch h;
                      Ok h
                    end)
          | Ok (Zltp_wire.Err { code; message; _ }) ->
              if epoch_error code then begin
                note_epoch_trouble t;
                transient message
              end
              else if conn_scoped_error code then
                role_err t role (transient message)
              else fatal message
          | Ok _ -> role_err t role (transient "protocol violation: expected Spir_hint")
          | Error _ as e -> role_err t role e))

let expect_spir_answer t role ~epoch = function
  | Ok (Zltp_wire.Spir_answer { epoch = e; answer; _ }) ->
      if e <> epoch then begin
        (* never decode against the wrong epoch's hint: drop and re-sync *)
        note_epoch_trouble t;
        transient (Printf.sprintf "answer epoch %d, queried %d" e epoch)
      end
      else Ok answer
  | Ok (Zltp_wire.Err { code; message; _ }) ->
      if epoch_error code then begin
        note_epoch_trouble t;
        transient message
      end
      else if conn_scoped_error code then
        role_err t role (transient message)
      else fatal message
  | Ok _ -> role_err t role (transient "protocol violation: expected Spir_answer")
  | Error _ as e -> role_err t role e

(* One masked query → one constant-trace scan → one recovered bucket. *)
let spir_roundtrip t role (s : session) ~epoch hint index =
  let db = (params_exn t).domain_bits in
  try
    let secret, query = Lw_pir.Spir.Client.query hint ~domain_bits:db ~index t.rng in
    let qid = fresh_qid t in
    match role_err t role (send_msg s.ep (Zltp_wire.Spir_query { qid; epoch; query })) with
    | Error _ as e -> e
    | Ok () -> (
        match expect_spir_answer t role ~epoch (recv_matching s.ep ~qid) with
        | Error _ as e -> e
        | Ok answer -> (
            match Lw_pir.Spir.Client.recover hint secret answer with
            | Error e -> role_err t role (transient ("unrecoverable answer: " ^ e))
            | Ok bucket ->
                t.queries <- t.queries + 1;
                Lw_obs.Metrics.incr m_queries;
                Ok bucket))
  with Invalid_argument e -> fatal e

let spir_attempt t index =
  if t.resync_needed then resync t;
  match single_role t with
  | Error _ as e -> e
  | Ok role -> (
      match role_session t role with
      | Error e -> transient e
      | Ok s -> (
          let epoch = spir_query_epoch t s in
          match spir_hint_for t role s ~epoch with
          | Error _ as e -> e
          | Ok hint -> spir_roundtrip t role s ~epoch hint index))

(* Sequential single-server batch: there is no server-side batch verb (a
   SPIR answer is already a whole-database scan per query), but the
   whole batch still names ONE epoch, so a mid-batch seal cannot mix
   record versions — same guarantee as the two-server [Pir_batch]. *)
let spir_batch_attempt t indexed_keys =
  if t.resync_needed then resync t;
  match single_role t with
  | Error _ as e -> e
  | Ok role -> (
      match role_session t role with
      | Error e -> transient e
      | Ok s -> (
          let epoch = spir_query_epoch t s in
          match spir_hint_for t role s ~epoch with
          | Error _ as e -> e
          | Ok hint ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | (key, index) :: rest -> (
                    match spir_roundtrip t role s ~epoch hint index with
                    | Error _ as e -> e
                    | Ok bucket -> go (Lw_pir.Record.decode_for_key ~key bucket :: acc) rest)
              in
              go [] indexed_keys))

let spir_fetch_index t index =
  fresh_op_epoch t;
  with_retry t (fun () -> spir_attempt t index)

let get_raw_index t index =
  match (params_exn t).mode with
  | Zltp_mode.Enclave -> Error "raw index fetch is PIR-only"
  | (Zltp_mode.Pir2 | Zltp_mode.Single) as m ->
      if index < 0 || index >= 1 lsl (params_exn t).domain_bits then Error "index out of domain"
      else if m = Zltp_mode.Pir2 then pir_fetch_index t index
      else spir_fetch_index t index

let enclave_attempt t key =
  match t.roles with
  | [| role |] -> (
      match role_session t role with
      | Error e -> transient e
      | Ok s -> (
          let qid = fresh_qid t in
          match role_err t role (send_msg s.ep (Zltp_wire.Enclave_get { qid; key })) with
          | (Error _) as e -> e
          | Ok () -> (
              match recv_matching s.ep ~qid with
              | Ok (Zltp_wire.Enclave_answer { value; _ }) ->
                  t.queries <- t.queries + 1;
              Lw_obs.Metrics.incr m_queries;
                  Ok value
              | Ok (Zltp_wire.Err { code; message; _ }) ->
                  if conn_scoped_error code then
                    role_err t role (transient message)
                  else fatal message
              | Ok _ -> role_err t role (transient "protocol violation: expected Enclave_answer")
              | Error _ as e -> role_err t role e)))
  | _ -> fatal "not an enclave session"

let get t key =
  match (params_exn t).mode with
  | (Zltp_mode.Pir2 | Zltp_mode.Single) as m -> (
      let keymap = Option.get t.keymap in
      let index = Lw_pir.Keymap.index_of_key keymap key in
      let fetch = if m = Zltp_mode.Pir2 then pir_fetch_index else spir_fetch_index in
      match fetch t index with
      | Ok bucket -> Ok (Lw_pir.Record.decode_for_key ~key bucket)
      | Error e -> Error e)
  | Zltp_mode.Enclave -> with_retry t (fun () -> enclave_attempt t key)

let expect_batch t role ~epoch n = function
  | Ok (Zltp_wire.Batch_answer { epoch = e; shares; _ }) ->
      if e <> epoch then begin
        note_epoch_trouble t;
        transient (Printf.sprintf "batch answer epoch %d, queried %d" e epoch)
      end
      else if List.length shares <> n then
        role_err t role (transient "batch answer length mismatch")
      else Ok shares
  | Ok (Zltp_wire.Err { code; message; _ }) ->
      if epoch_error code then begin
        note_epoch_trouble t;
        transient message
      end
      else if conn_scoped_error code then
        role_err t role (transient message)
      else fatal message
  | Ok _ -> role_err t role (transient "protocol violation: expected Batch_answer")
  | Error _ as e -> role_err t role e

let pir_batch_attempt t indexed_keys =
  if t.resync_needed then resync t;
  match pir_sessions t with
  | Error _ as e -> e
  | Ok ((role0, s0), (role1, s1)) -> (
      let qid = fresh_qid t in
      let epoch = query_epoch t s0 s1 in
      let db = (params_exn t).domain_bits in
      let pairs =
        List.map (fun (key, index) -> (key, Lw_dpf.Dpf.gen ~domain_bits:db ~alpha:index t.rng))
          indexed_keys
      in
      let batch which =
        Zltp_wire.Pir_batch
          { qid; epoch; dpf_keys = List.map (fun (_, ks) -> Lw_dpf.Dpf.serialize (which ks)) pairs }
      in
      let n = List.length indexed_keys in
      let sent0 = role_err t role0 (send_msg s0.ep (batch fst)) in
      let sent1 = role_err t role1 (send_msg s1.ep (batch snd)) in
      match (sent0, sent1) with
      | Ok (), Ok () -> (
          let r0 = expect_batch t role0 ~epoch n (recv_matching s0.ep ~qid) in
          let r1 = expect_batch t role1 ~epoch n (recv_matching s1.ep ~qid) in
          match (r0, r1) with
          | Ok shares0, Ok shares1 ->
              t.queries <- t.queries + n;
              Lw_obs.Metrics.add m_queries n;
              Ok
                (List.map2
                   (fun (key, _) (resp0, resp1) ->
                     Lw_pir.Record.decode_for_key ~key (Lw_pir.Client.combine ~resp0 ~resp1))
                   pairs
                   (List.combine shares0 shares1))
          | _ -> first_error [ r0; r1 ])
      | _ -> first_error [ sent0; sent1 ])

(* ---- keyword GET ----

   A keyword lookup privately probes BOTH cuckoo candidate buckets of the
   key as one [Keyword_query] — two DPF key shares per server, answered as
   a single width-2 entry into the bit-packed batch scan, so the whole
   lookup is one round trip and ~one scan pass. The wire shape is fixed
   and query-independent: always two keys out, always two shares back,
   even when the candidates coincide (a second real probe of the same
   bucket), so the verb leaks nothing about the key. *)

let keyword_candidates t key =
  match t.kw_maps with
  | Some (h0, h1) -> (Lw_pir.Keymap.index_of_key h0 key, Lw_pir.Keymap.index_of_key h1 key)
  | None -> invalid_arg "Zltp_client: not connected"

let expect_keyword t role ~epoch = function
  | Ok (Zltp_wire.Keyword_answer { epoch = e; share0; share1; _ }) ->
      if e <> epoch then begin
        note_epoch_trouble t;
        transient (Printf.sprintf "keyword answer epoch %d, queried %d" e epoch)
      end
      else Ok (share0, share1)
  | Ok (Zltp_wire.Err { code; message; _ }) ->
      if epoch_error code then begin
        note_epoch_trouble t;
        transient message
      end
      else if conn_scoped_error code then
        role_err t role (transient message)
      else fatal message
  | Ok _ -> role_err t role (transient "protocol violation: expected Keyword_answer")
  | Error _ as e -> role_err t role e

let keyword_attempt t key =
  if t.resync_needed then resync t;
  match pir_sessions t with
  | Error _ as e -> e
  | Ok ((role0, s0), (role1, s1)) -> (
      let qid = fresh_qid t in
      let epoch = query_epoch t s0 s1 in
      let db = (params_exn t).domain_bits in
      let i0, i1 = keyword_candidates t key in
      (* fresh DPF key pair per candidate per attempt, like every retry:
         a retried keyword query is indistinguishable from a new one *)
      let p0 = Lw_dpf.Dpf.gen ~domain_bits:db ~alpha:i0 t.rng in
      let p1 = Lw_dpf.Dpf.gen ~domain_bits:db ~alpha:i1 t.rng in
      let q which =
        Zltp_wire.Keyword_query
          {
            qid;
            epoch;
            dpf_key0 = Lw_dpf.Dpf.serialize (which p0);
            dpf_key1 = Lw_dpf.Dpf.serialize (which p1);
          }
      in
      let sent0 = role_err t role0 (send_msg s0.ep (q fst)) in
      let sent1 = role_err t role1 (send_msg s1.ep (q snd)) in
      match (sent0, sent1) with
      | Ok (), Ok () -> (
          let r0 = expect_keyword t role0 ~epoch (recv_matching s0.ep ~qid) in
          let r1 = expect_keyword t role1 ~epoch (recv_matching s1.ep ~qid) in
          match (r0, r1) with
          | Ok (a0, a1), Ok (b0, b1) ->
              t.queries <- t.queries + 1;
              Lw_obs.Metrics.incr m_queries;
              let bucket0 = Lw_pir.Client.combine ~resp0:a0 ~resp1:b0 in
              let bucket1 = Lw_pir.Client.combine ~resp0:a1 ~resp1:b1 in
              Ok
                (match Lw_pir.Record.decode_for_key ~key bucket0 with
                | Some _ as v -> v
                | None -> Lw_pir.Record.decode_for_key ~key bucket1)
          | _ -> first_error [ r0; r1 ])
      | _ -> first_error [ sent0; sent1 ])

let keyword_get t key =
  match (params_exn t).mode with
  | Zltp_mode.Enclave -> Error "keyword GET is PIR-only; enclave mode fetches by key directly"
  | Zltp_mode.Single ->
      Error "keyword GET is two-server PIR-only; single-server mode fetches by key via get"
  | Zltp_mode.Pir2 ->
      fresh_op_epoch t;
      with_retry t (fun () -> keyword_attempt t key)

(* Correlated multi-keyword fetch: 2k DPF keys ride one [Pir_batch] (the
   servers' bit-packed kernel scans once per 8 probes), and the shares
   are re-paired per keyword on decode — how a cluster retrieval fetches
   its k members in one round trip. *)
let keyword_batch_attempt t keyed =
  if t.resync_needed then resync t;
  match pir_sessions t with
  | Error _ as e -> e
  | Ok ((role0, s0), (role1, s1)) -> (
      let qid = fresh_qid t in
      let epoch = query_epoch t s0 s1 in
      let db = (params_exn t).domain_bits in
      let gens =
        List.concat_map
          (fun (_, (i0, i1)) ->
            [
              Lw_dpf.Dpf.gen ~domain_bits:db ~alpha:i0 t.rng;
              Lw_dpf.Dpf.gen ~domain_bits:db ~alpha:i1 t.rng;
            ])
          keyed
      in
      let batch which =
        Zltp_wire.Pir_batch
          { qid; epoch; dpf_keys = List.map (fun ks -> Lw_dpf.Dpf.serialize (which ks)) gens }
      in
      let n = List.length gens in
      let sent0 = role_err t role0 (send_msg s0.ep (batch fst)) in
      let sent1 = role_err t role1 (send_msg s1.ep (batch snd)) in
      match (sent0, sent1) with
      | Ok (), Ok () -> (
          let r0 = expect_batch t role0 ~epoch n (recv_matching s0.ep ~qid) in
          let r1 = expect_batch t role1 ~epoch n (recv_matching s1.ep ~qid) in
          match (r0, r1) with
          | Ok shares0, Ok shares1 ->
              t.queries <- t.queries + List.length keyed;
              Lw_obs.Metrics.add m_queries (List.length keyed);
              let buckets =
                List.map2 (fun resp0 resp1 -> Lw_pir.Client.combine ~resp0 ~resp1) shares0
                  shares1
              in
              let rec pair_up keyed buckets acc =
                match (keyed, buckets) with
                | [], [] -> Ok (List.rev acc)
                | (key, _) :: krest, b0 :: b1 :: brest ->
                    let v =
                      match Lw_pir.Record.decode_for_key ~key b0 with
                      | Some _ as v -> v
                      | None -> Lw_pir.Record.decode_for_key ~key b1
                    in
                    pair_up krest brest (v :: acc)
                | _ -> fatal "internal: keyword batch arity"
              in
              pair_up keyed buckets []
          | _ -> first_error [ r0; r1 ])
      | _ -> first_error [ sent0; sent1 ])

let keyword_get_batch t keys =
  match (params_exn t).mode with
  | Zltp_mode.Enclave -> Error "keyword GET is PIR-only; enclave mode fetches by key directly"
  | Zltp_mode.Single ->
      Error "keyword GET is two-server PIR-only; single-server mode fetches by key via get"
  | Zltp_mode.Pir2 ->
      let keyed = List.map (fun k -> (k, keyword_candidates t k)) keys in
      fresh_op_epoch t;
      with_retry t (fun () -> keyword_batch_attempt t keyed)

let get_batch t keys =
  match (params_exn t).mode with
  | Zltp_mode.Enclave ->
      (* no server-side batch primitive needed: polylog per-op cost *)
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | k :: rest -> ( match get t k with Ok v -> go (v :: acc) rest | Error e -> Error e)
      in
      go [] keys
  | (Zltp_mode.Pir2 | Zltp_mode.Single) as m ->
      let keymap = Option.get t.keymap in
      let indexed = List.map (fun k -> (k, Lw_pir.Keymap.index_of_key keymap k)) keys in
      let attempt = if m = Zltp_mode.Pir2 then pir_batch_attempt else spir_batch_attempt in
      fresh_op_epoch t;
      with_retry t (fun () -> attempt t indexed)

let close t =
  Array.iter
    (fun role ->
      (match role.session with
      | Some s ->
          (try s.ep.Lw_net.Endpoint.send (Zltp_wire.encode_client Zltp_wire.Bye)
           with Lw_net.Endpoint.Closed | Lw_net.Endpoint.Timeout -> ());
          s.ep.Lw_net.Endpoint.close ()
      | None -> ());
      role.session <- None)
    t.roles

let current_replicas t =
  Array.to_list
    (Array.map
       (fun role -> match role.session with Some s -> Some s.replica_name | None -> None)
       t.roles)
