type action = Real of string | Dummy

type slot = { time_s : float; action : action }

let sort_visits visits =
  List.sort (fun (a, _) (b, _) -> Float.compare a b) visits

let pace ?(drain = false) ~slot_s ~horizon_s visits =
  if slot_s <= 0. || horizon_s <= 0. then invalid_arg "Pacer.pace: slot and horizon must be positive";
  let queue = Queue.create () in
  let pending = ref (sort_visits visits) in
  let n_slots = int_of_float (Float.ceil (horizon_s /. slot_s)) in
  let slots = ref [] in
  let emit i =
    let time_s = float_of_int i *. slot_s in
    (* admit every request that has arrived by this slot *)
    let rec admit () =
      match !pending with
      | (t, page) :: rest when t <= time_s ->
          Queue.push (t, page) queue;
          pending := rest;
          admit ()
      | _ -> ()
    in
    admit ();
    let action =
      if Queue.is_empty queue then Dummy
      else begin
        let _, page = Queue.pop queue in
        Real page
      end
    in
    slots := { time_s; action } :: !slots
  in
  let i = ref 0 in
  while !i < n_slots do
    emit !i;
    incr i
  done;
  (* [drain]: keep the cadence going past the horizon until the backlog —
     and every not-yet-arrived visit — has been served, so no visit is
     silently dropped. The slot count then depends on the visits; the
     default keeps it input-independent (see the .mli). *)
  if drain then
    while !pending <> [] || not (Queue.is_empty queue) do
      emit !i;
      incr i
    done;
  List.rev !slots

type stats = {
  slots : int;
  real : int;
  dummies : int;
  dropped : int;
  max_delay_s : float;
  mean_delay_s : float;
  overhead : float;
}

(* Replay the exact admission/FIFO discipline [pace] uses, pairing each
   [Real] slot with the visit it actually served. The old positional
   pairing (i-th sorted arrival with i-th real slot) miscounted as soon
   as the schedule dropped anything; the replay is exact by
   construction and surfaces the dropped visits it finds. *)
let stats ~slot_s:_ visits schedule =
  let queue = Queue.create () in
  let pending = ref (sort_visits visits) in
  let delays = ref [] and real = ref 0 and dummies = ref 0 in
  List.iter
    (fun s ->
      let rec admit () =
        match !pending with
        | (t, page) :: rest when t <= s.time_s ->
            Queue.push (t, page) queue;
            pending := rest;
            admit ()
        | _ -> ()
      in
      admit ();
      match s.action with
      | Dummy -> incr dummies
      | Real _ ->
          incr real;
          if not (Queue.is_empty queue) then begin
            let t, _ = Queue.pop queue in
            delays := (s.time_s -. t) :: !delays
          end)
    schedule;
  let dropped = Queue.length queue + List.length !pending in
  let served = List.length !delays in
  {
    slots = List.length schedule;
    real = !real;
    dummies = !dummies;
    dropped;
    max_delay_s = (if served = 0 then 0. else List.fold_left Float.max 0. !delays);
    mean_delay_s =
      (if served = 0 then 0.
       else List.fold_left ( +. ) 0. !delays /. float_of_int served);
    overhead = float_of_int !dummies /. float_of_int (max 1 !real);
  }
