(** The publisher toolchain (§3.1): a site is one code blob plus many data
    blobs; [push] validates it and uploads everything to a universe. *)

type site = {
  domain : string;
  code : string; (** Lightscript source for the domain's code blob *)
  pages : (string * Lw_json.Json.t) list;
      (** path suffixes (each starting with ['/']) to data values *)
}

val validate : site -> (unit, string) result
(** Static checks before any upload: domain validity, code parses and
    defines [plan]/[render], suffix shape, duplicate suffixes. *)

type push_report = {
  code_pushed : bool;
  data_pushed : int;
  renamed : (string * string) list;
  code_epoch : int;
  data_epoch : int;
  keyword_epoch : int;
}
(** [renamed] records pages that hit an index collision and were stored
    under an alternative name ([old_path, new_path]) — the paper's
    "publisher can simply select another key name" recovery.
    [code_epoch]/[data_epoch]/[keyword_epoch] are the storage epochs this
    push sealed: a push is one atomic mutation batch, and these are the
    epochs at which its content became visible to PIR servers (pages land
    in the keyword index under their final, post-rename path). *)

val push :
  ?rename_on_collision:bool ->
  Universe.t ->
  publisher:string ->
  site ->
  (push_report, string) result
(** Claims the domain, pushes code, pushes every page. With
    [rename_on_collision] (default true), a colliding path is retried as
    [path ^ "~N"]. *)

val page_path : site -> string -> string
(** [page_path site suffix] is the full lightweb path. *)
