(** ZLTP modes of operation (§2.2) and session negotiation.

    - [Pir2]: two-server private information retrieval. Cryptographic +
      non-collusion assumptions, linear-scan cost.
    - [Enclave]: hardware enclave + oblivious RAM. Polylog cost, but the
      client must trust the enclave vendor.
    - [Single]: single-server LWE-based PIR (ZipPIR direction) with a
      per-epoch public hint and no persistent client state. One
      cryptographic assumption, no non-collusion and no hardware trust;
      the heaviest per-query compute of the three. *)

type t = Pir2 | Enclave | Single

val name : t -> string
val to_tag : t -> int
val of_tag : int -> t option

val all : t list
(** All modes in assumption order, weakest-assumption first:
    [[Single; Pir2; Enclave]]. *)

val rank : t -> int
(** Position in the documented assumption ordering: [Single] = 0 (one
    cryptographic assumption), [Pir2] = 1 (adds non-collusion),
    [Enclave] = 2 (hardware vendor trust). Lower rank = fewer/weaker
    trust assumptions required of the user. *)

val negotiate : client:t list -> server:t list -> t option
(** The common mode with the lowest {!rank} — i.e. of everything both
    sides offer, the mode whose security leans on the fewest
    assumptions wins, regardless of list order on either side (§2: "the
    client and server negotiate which cryptographic mode of operation
    they will use"). [None] when the offers do not intersect. *)

val assumptions : t -> string list
(** The trust assumptions the mode's security rests on, for docs and the
    CLI's [info] output. *)
