(** Constant-rate cover traffic — closing the paper's residual leak.

    ZLTP hides {e which} pages a client fetches but not {e when} or
    {e how many} (§2.1 non-goals, §3.2 leakage list). A pacer removes that
    channel too: the client emits exactly one page-shaped fetch burst per
    time slot, serving a queued real page view if one is waiting and a
    dummy otherwise. The resulting request stream is a deterministic
    function of the clock alone, so an on-path attacker learns literally
    nothing — at the price of bounded extra latency and a fixed dummy
    budget, which {!simulate} quantifies (bench ablation E11b). *)

type action = Real of string | Dummy

type slot = { time_s : float; action : action }

val pace :
  ?drain:bool -> slot_s:float -> horizon_s:float -> (float * string) list -> slot list
(** [pace ~slot_s ~horizon_s visits] turns timestamped page requests into
    the slotted schedule over [[0, horizon_s)]. Requests are served FIFO at
    the first slot at-or-after their arrival; slots with an empty queue
    emit [Dummy]. By default the slot count — the attacker's whole view —
    is [ceil (horizon_s / slot_s)] regardless of [visits], and visits that
    arrive after the last slot, or are still queued when the horizon ends,
    are dropped (they show up as {!stats}[.dropped]).

    [~drain:true] instead keeps emitting slots at the same cadence past
    the horizon until every visit has been admitted and served, so
    nothing is dropped — at the price of a schedule length that now
    depends on the visits, which is the operator's trade to make.
    [slot_s] and [horizon_s] must be positive. *)

type stats = {
  slots : int;
  real : int;
  dummies : int;
  dropped : int;
      (** visits never served by the schedule (arrived after its last
          slot, or still queued when it ended) *)
  max_delay_s : float; (** worst queueing delay of a served request *)
  mean_delay_s : float;
  overhead : float; (** dummies / max real 1 — the cover-traffic cost factor *)
}

val stats : slot_s:float -> (float * string) list -> slot list -> stats
(** [stats ~slot_s visits schedule] summarises a {!pace} run by replaying
    its admission/FIFO discipline, so each [Real] slot is paired with the
    exact visit it served; delay is measured from a visit's arrival to
    that slot. *)
