(** A logical ZLTP server: holds one key-value universe shard set and
    answers private-GETs in its configured modes.

    The server is backend-agnostic: it is constructed over any
    {!Zltp_backend.t} (flat, versioned, sharded, enclave, single-server
    PIR — or anything else implementing the signature) and drives every
    request through the [BACKEND] contract: pin the queried epoch, call
    the verb, unpin on every exit path. It never pattern-matches on what
    it hosts.

    In two-server PIR mode this object is one of the two non-colluding
    logical servers; a deployment instantiates it twice over replicas of
    the same data. In enclave or single-server PIR mode a single
    instance suffices. *)

type t

val create :
  ?server_id:string ->
  ?hash_key:string ->
  ?scan_domains:int ->
  blob_size:int ->
  Zltp_backend.t ->
  t
(** [hash_key] is the public keyword-hash key announced in [Welcome]; it
    must match the store the backend was populated from.

    [scan_domains] (default 1) is forwarded to the backend
    ({!Zltp_backend.S.set_scan_domains}): flat/versioned backends answer
    through the domain-partitioned scan kernel
    ({!Lw_pir.Server.answer_domains}); backends with their own knob (the
    sharded front-end) or no scan kernel ignore it. *)

val backend : t -> Zltp_backend.t
val blob_size : t -> int
val modes : t -> Zltp_mode.t list
val queries_served : t -> int

val health : t -> int * int
(** [(shards_total, shards_down)] — what a [Health] probe reports. A flat
    or enclave backend counts as a single always-up shard. *)

val current_epoch : t -> int
(** The epoch announced in [Welcome]/[Health_reply]/[Sync_reply].
    Unversioned backends are forever at epoch 0. *)

val oldest_epoch : t -> int
(** Oldest epoch still answerable here (equals {!current_epoch} for
    unversioned backends). *)

val set_advertised_epoch : t -> int option -> unit
(** Control-plane override of the {e announced} epoch (delegated to the
    backend). [Some e] makes [Welcome]/[Health_reply]/[Sync_reply]
    report [e] as current — queries still serve whatever live epoch they
    name, so a versioned backend can hold the next epoch sealed but
    invisible until the cluster rollout driver flips every replica's
    announcement at once (rollout phase two), and can be flipped back on
    rollback. [None] restores the backend's own epoch. *)

val advertised_epoch : t -> int option

(** {2 Per-connection protocol state} *)

type conn

val conn : t -> conn

val handle : conn -> Zltp_wire.client_msg -> Zltp_wire.server_msg option
(** State-machine step; [None] for [Bye]. Queries before a successful
    [Hello] yield [Err]s; [Health] is answered even before [Hello]. *)

val handle_frame : conn -> string -> string option
(** Decode, {!handle}, encode. Undecodable input yields an encoded [Err];
    an exception escaping the handler yields [Err] with [err_internal] and
    the connection survives — the request path never raises. *)

val serve : t -> Lw_net.Endpoint.t -> unit
(** Run a connection to completion over an endpoint (used by the TCP
    binary and the pipe-based integration tests). Returns cleanly on
    [Endpoint.Closed] or [Endpoint.Timeout]. *)

val endpoint : t -> Lw_net.Endpoint.t
(** In-process connection: a fresh client-side endpoint served by this
    server via {!Lw_net.Endpoint.loopback}. *)
