(** A logical ZLTP server: holds one key-value universe shard set and
    answers private-GETs in its configured modes.

    In PIR mode this object is one of the two non-colluding logical
    servers; a deployment instantiates it twice over replicas of the same
    data. In enclave mode a single instance suffices. *)

type backend =
  | Pir_flat of Lw_pir.Server.t (** single data server (microbenchmark scale) *)
  | Pir_versioned of Lw_store.t
      (** epoch-versioned engine: each query is answered against the
          epoch it names, pinned for the duration of the scan, so the
          publisher can seal new epochs while queries are in flight *)
  | Pir_sharded of Zltp_frontend.t (** front-end + shards (§5.2) *)
  | Enclave_backend of Lw_oram.Enclave.t

type t

val create :
  ?server_id:string -> ?hash_key:string -> ?scan_domains:int -> blob_size:int -> backend -> t
(** [hash_key] is the public keyword-hash key announced in [Welcome]; it
    must match the store the backend was populated from.

    [scan_domains] (default 1) lets a flat or versioned backend answer
    through the domain-partitioned scan kernel
    ({!Lw_pir.Server.answer_domains}); the kernel's work-size cutoff
    keeps small databases on the serial path regardless. A sharded
    backend carries its own knob on the front-end
    ({!Zltp_frontend.set_scan_domains}). *)

val backend : t -> backend
val blob_size : t -> int
val modes : t -> Zltp_mode.t list
val queries_served : t -> int

val health : t -> int * int
(** [(shards_total, shards_down)] — what a [Health] probe reports. A flat
    or enclave backend counts as a single always-up shard. *)

val current_epoch : t -> int
(** The epoch announced in [Welcome]/[Health_reply]/[Sync_reply].
    Unversioned backends are forever at epoch 0. *)

val oldest_epoch : t -> int
(** Oldest epoch still answerable here (equals {!current_epoch} for
    unversioned backends). *)

val set_advertised_epoch : t -> int option -> unit
(** Control-plane override of the {e announced} epoch. [Some e] makes
    [Welcome]/[Health_reply]/[Sync_reply] report [e] as current —
    queries still serve whatever live epoch they name, so a versioned
    backend can hold the next epoch sealed but invisible until the
    cluster rollout driver flips every replica's announcement at once
    (rollout phase two), and can be flipped back on rollback. [None]
    restores the backend's own epoch. *)

val advertised_epoch : t -> int option

(** {2 Per-connection protocol state} *)

type conn

val conn : t -> conn

val handle : conn -> Zltp_wire.client_msg -> Zltp_wire.server_msg option
(** State-machine step; [None] for [Bye]. Queries before a successful
    [Hello] yield [Err]s; [Health] is answered even before [Hello]. *)

val handle_frame : conn -> string -> string option
(** Decode, {!handle}, encode. Undecodable input yields an encoded [Err];
    an exception escaping the handler yields [Err] with [err_internal] and
    the connection survives — the request path never raises. *)

val serve : t -> Lw_net.Endpoint.t -> unit
(** Run a connection to completion over an endpoint (used by the TCP
    binary and the pipe-based integration tests). Returns cleanly on
    [Endpoint.Closed] or [Endpoint.Timeout]. *)

val endpoint : t -> Lw_net.Endpoint.t
(** In-process connection: a fresh client-side endpoint served by this
    server via {!Lw_net.Endpoint.loopback}. *)
