(** First-class ZLTP backends.

    A backend is a packed module implementing {!S}: the full verb set of
    the protocol (two-server PIR scan, batch, single-server SPIR
    hint/answer, enclave get) behind one signature, with epoch pinning
    and the control-plane advertised-epoch override as part of the
    contract. {!Zltp_server} drives requests through the signature only —
    it never learns which backend it hosts, so adding a backend means
    adding a constructor here, not another arm in every layer.

    Verbs a backend does not speak (e.g. [answer] on an enclave, or
    [spir_answer] on a two-server scan backend) return the structured
    [Zltp_wire.err_wrong_mode] error — the same shape a mode-mismatched
    session sees — so the server's dispatch stays uniform.

    Errors are [(wire error code, message)] pairs ready to become
    [Zltp_wire.Err] frames. *)

module type S = sig
  type view
  (** A pinned, immutable view of one epoch. The server pins the epoch a
      query names, answers against the view, and unpins on every exit
      path — a concurrent seal can never retire an epoch mid-answer. *)

  val kind : string
  (** Short human label for logs ("flat", "versioned", "sharded",
      "enclave", "single"). *)

  val modes : Zltp_mode.t list
  (** The modes this backend can serve — what the server offers during
      [Hello] negotiation. *)

  val domain_bits : int
  (** 0 for backends without an index domain (enclave). *)

  val health : unit -> int * int
  (** [(shards_total, shards_down)]; monolithic backends are one
      always-up shard. *)

  val current_epoch : unit -> int
  (** The epoch announced in [Welcome]/[Health_reply]/[Sync_reply],
      honouring {!set_advertised_epoch}. Unversioned backends are
      forever at epoch 0. *)

  val oldest_epoch : unit -> int

  val set_advertised_epoch : int option -> unit
  (** Control-plane override of the {e announced} epoch only — queries
      still serve whatever live epoch they name, so a rollout driver can
      seal everywhere first and flip announcements second. [None]
      restores the backend's own notion. *)

  val advertised_epoch : unit -> int option

  val set_scan_domains : int -> unit
  (** Workers the scan kernels may use ({!Lw_pir.Server.answer_domains}).
      Backends without a local scan kernel ignore it (the sharded
      front-end carries its own knob). *)

  val pin : epoch:int -> (view, int * string) result
  (** Pin the named epoch. An epoch this replica no longer / does not
      yet hold is the structured [err_epoch_retired] / [err_epoch_ahead]
      the client's re-sync understands; a sharded backend with
      disagreeing shards is [err_degraded]. *)

  val unpin : view -> unit

  val answer : view -> Lw_dpf.Dpf.key -> (string, int * string) result
  (** Two-server PIR: one XOR-share scan for one DPF key. *)

  val answer_batch : view -> Lw_dpf.Dpf.key array -> (string array, int * string) result
  (** Batch entry (also the width-2 keyword probe pair): the bit-packed
      kernel's one-pass-per-8-queries path. *)

  val spir_hint : view -> (string, int * string) result
  (** Single-server PIR: the pinned epoch's serialized public hint. *)

  val spir_answer : view -> string -> (string, int * string) result
  (** Single-server PIR: the constant-trace matrix-vector scan of the
      pinned epoch against a serialized {!Lw_pir.Spir} query. *)

  val enclave_get : string -> (string option, int * string) result
  (** Enclave mode: keyed get inside the (simulated) attested boundary.
      Not epoch-addressed — the enclave hides versioning internally. *)
end

type t = (module S)

(** {2 Constructors} *)

val flat : Lw_pir.Server.t -> t
(** Single unversioned data array (microbenchmark scale); forever at
    epoch 0, [Pir2] only. *)

val versioned : Lw_store.t -> t
(** Epoch-versioned engine: each query answered against the epoch it
    names, pinned for the duration of the scan. [Pir2] only. *)

val sharded : Zltp_frontend.t -> t
(** Front-end + shards (§5.2); epoch agreement across shards checked per
    pin, shard loss surfaces as [err_degraded]. [Pir2] only. *)

val enclave : Lw_oram.Enclave.t -> t
(** Enclave + ORAM; [Enclave] only. *)

val single : ?cache:Lw_pir.Spir.Hint_cache.t -> Lw_store.t -> t
(** Single-server LWE PIR over the same epoch-versioned engine:
    [spir_hint] serves the per-epoch packed hint (memoized in [cache],
    default a fresh 4-epoch cache — pass the universe's shared cache so
    publishing can warm it), [spir_answer] the constant-trace scan.
    [Single] only. *)
