type site = { domain : string; code : string; pages : (string * Lw_json.Json.t) list }

type push_report = {
  code_pushed : bool;
  data_pushed : int;
  renamed : (string * string) list;
  code_epoch : int;
  data_epoch : int;
  keyword_epoch : int;
}

let page_path site suffix = site.domain ^ suffix

let validate site =
  if not (Lw_path.valid_domain site.domain) then
    Error (Printf.sprintf "invalid domain %S" site.domain)
  else begin
    match Lightscript.parse site.code with
    | Error e -> Error (Format.asprintf "code: %a" Lightscript.pp_error e)
    | Ok program ->
        if not (Lightscript.has_function program "plan") then Error "code must define fn plan"
        else if not (Lightscript.has_function program "render") then
          Error "code must define fn render"
        else begin
          let seen = Hashtbl.create 16 in
          let rec check = function
            | [] -> Ok ()
            | (suffix, _) :: rest ->
                if suffix = "" || suffix.[0] <> '/' then
                  Error (Printf.sprintf "page suffix %S must start with '/'" suffix)
                else if Hashtbl.mem seen suffix then
                  Error (Printf.sprintf "duplicate page suffix %S" suffix)
                else begin
                  Hashtbl.replace seen suffix ();
                  check rest
                end
          in
          check site.pages
        end
  end

let push ?(rename_on_collision = true) universe ~publisher site =
  match validate site with
  | Error _ as e -> e
  | Ok () -> (
      match Universe.claim_domain universe ~publisher ~domain:site.domain with
      | Error _ as e -> e
      | Ok () -> (
          match Universe.push_code universe ~publisher ~domain:site.domain ~source:site.code with
          | Error _ as e -> e
          | Ok () ->
              let renamed = ref [] in
              (* Universe.push_data formats index collisions with a "path "
                 prefix; everything else is not retryable *)
              let is_collision_error e = String.length e >= 5 && String.sub e 0 5 = "path " in
              let rec push_page path value attempt =
                match Universe.push_data universe ~publisher ~path ~value with
                | Ok () -> Ok path
                | Error e when rename_on_collision && attempt < 8 && is_collision_error e ->
                    push_page (Printf.sprintf "%s~%d" path (attempt + 1)) value (attempt + 1)
                | Error e -> Error e
              in
              let rec push_all count = function
                | [] ->
                    (* one site push = one mutation batch = one new epoch
                       per store the push touched *)
                    let code_epoch, data_epoch = Universe.publish_updates universe in
                    Ok
                      {
                        code_pushed = true;
                        data_pushed = count;
                        renamed = List.rev !renamed;
                        code_epoch;
                        data_epoch;
                        keyword_epoch = Universe.keyword_epoch universe;
                      }
                | (suffix, value) :: rest -> (
                    let path = page_path site suffix in
                    match push_page path value 0 with
                    | Ok final_path ->
                        if not (String.equal final_path path) then
                          renamed := (path, final_path) :: !renamed;
                        push_all (count + 1) rest
                    | Error e -> Error (Printf.sprintf "page %s: %s" path e))
              in
              push_all 0 site.pages))
