(** Distributed point functions (Boyle–Gilboa–Ishai, CCS'16).

    A DPF for the point function [f_{α,v}] (value [v] at index [α] of a
    [2^d] domain, zero elsewhere) is a pair of keys. Each key alone reveals
    nothing about [α] or [v]; evaluations of the two keys XOR to
    [f_{α,v}]. Two-server PIR evaluates a key over the whole domain and
    XOR-accumulates database buckets where the share bit is set — the
    per-request linear scan the paper measures (§5.1).

    Keys are [O(λ·d)] bytes: per tree level one 16-byte seed correction
    word plus two control bits, and for value-carrying DPFs one leaf
    correction word of [value_len] bytes. *)

type key

(** {2 Key generation} *)

val gen :
  ?prg:Prg.t ->
  ?value:string ->
  domain_bits:int ->
  alpha:int ->
  Lw_crypto.Drbg.t ->
  key * key
(** [gen ~domain_bits ~alpha rng] produces the two key shares for the
    selection-bit point function at [alpha]; with [?value], evaluations
    carry XOR shares of [value] at [alpha]. [domain_bits] must be in
    [1..30] and [alpha] in [[0, 2^domain_bits)]. *)

(** {2 Accessors} *)

val party : key -> int
val domain_bits : key -> int
val value_len : key -> int
val prg : key -> Prg.t

(** {2 Evaluation} *)

val eval_bit : key -> int -> int
(** [eval_bit k x] is this party's share bit at index [x]; the two
    parties' bits XOR to [1] iff [x = alpha]. *)

val eval_value : key -> int -> string
(** [eval_value k x] is this party's [value_len]-byte share at [x].
    Raises [Invalid_argument] for a selection-bit key. *)

val eval_all_bits : key -> (int -> int -> unit) -> unit
(** [eval_all_bits k f] calls [f x bit] for every [x] in domain order.
    Costs ~2 PRG calls per leaf via depth-first tree expansion. *)

val eval_bits_blocked : key -> block_bits:int -> (int -> Bytes.t -> int -> unit) -> unit
(** [eval_bits_blocked k ~block_bits f] streams the full-domain evaluation
    in blocks of [2^block_bits] leaves: [f base buf count] is called once
    per block, in domain order, with [buf.[j]] the selection bit (0/1
    byte) of leaf [base + j] for [j < count]. The same block-sized scratch
    buffer is reused across calls — valid only during the callback — so a
    full-domain pass allocates [2^block_bits] bytes instead of
    [2^domain_bits]. [block_bits] must lie in [0..domain_bits]. *)

val eval_all_seeds : key -> (int -> int -> Bytes.t -> int -> unit) -> unit
(** [eval_all_seeds k f] calls [f x bit seed_buf pos] with the 16-byte leaf
    seed at [pos] in [seed_buf] (valid only during the callback); callers
    convert seeds to value shares with {!Prg.convert} when needed. *)

val selected_indices : key -> int list
(** [selected_indices k] lists the indices where this share's bit is 1 —
    handy in tests; roughly half the domain. *)

(** {2 Serialisation} *)

val serialize : key -> string

val deserialize : string -> (key, string) result
(** Structural validation only: a syntactically valid key that was never
    produced by {!gen} still evaluates (to garbage shares) — privacy, not
    integrity, is the DPF's contract. *)

val serialized_size : domain_bits:int -> value_len:int -> int
(** Exact byte size of {!serialize} output for the given shape. *)

val paper_key_size : domain_bits:int -> int
(** The paper's "(λ+2)·d" key-size arithmetic (§5.1), interpreted — as the
    paper's own totals require — in bytes with λ = 128: used by the
    cost-model reproduction of the communication rows. *)

(** {2 Internal hooks for [Distributed]} *)

val make_subkey : key -> root_seed:Bytes.t -> root_pos:int -> root_t:int -> levels:int -> key
(** [make_subkey k ~root_seed ~root_pos ~root_t ~levels] rebases [k] at an
    internal tree node [levels] deep: the result is a valid key over the
    remaining [domain_bits k - levels] bits. *)

val eval_prefixes : key -> levels:int -> (int -> int -> Bytes.t -> int -> unit) -> unit
(** [eval_prefixes k ~levels f] expands only the top [levels] levels,
    calling [f prefix t seed_buf pos] for each of the [2^levels] internal
    nodes in order. *)
