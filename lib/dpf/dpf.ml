type key = {
  party : int;
  domain_bits : int; (* depth of the remaining tree *)
  value_len : int; (* 0 = selection-bit DPF *)
  prg : Prg.t;
  root_seed : Bytes.t; (* 16 bytes *)
  root_t : int; (* control bit at the root (= party for fresh keys) *)
  cw_seeds : Bytes.t; (* full correction words, 16 bytes per level *)
  cw_bits : Bytes.t; (* 1 byte per level: tl lor (tr lsl 1) *)
  cw_offset : int; (* first level of cw_seeds/cw_bits that applies: sub-keys
                      produced by [make_subkey] share the parent arrays *)
  cw_leaf : string; (* value_len bytes, "" for selection-bit keys *)
}

let party k = k.party
let domain_bits k = k.domain_bits
let value_len k = k.value_len
let prg k = k.prg

let max_domain_bits = 30

let cw_seed_pos k level = 16 * (k.cw_offset + level)
let cw_bit k level = Char.code (Bytes.get k.cw_bits (k.cw_offset + level))

(* ------------------------------------------------------------------ *)
(* Key generation                                                      *)
(* ------------------------------------------------------------------ *)

(* Keygen runs on the client, whose own query index [alpha] is the
   secret; it still must not branch on it, or a co-resident observer
   times the key out of the client. lw-lint's secret-branch rule keeps
   the per-level selects below arithmetic. *)
(* lw-lint: secret alpha alpha_bit *)

(* [pick_int bit a b] is [a] when bit = 0, [b] when bit = 1, branch-free
   for bit in {0,1}. *)
let pick_int bit a b = ((1 - bit) * a) + (bit * b)

let gen ?(prg = Prg.default) ?value ~domain_bits ~alpha rng =
  if domain_bits < 1 || domain_bits > max_domain_bits then
    invalid_arg "Dpf.gen: domain_bits out of range";
  (* domain bound check: public bounds, rejected before any use *)
  if alpha < 0 || alpha >= 1 lsl domain_bits then (* lw-lint: allow secret-branch taint *)
    invalid_arg "Dpf.gen: alpha out of domain";
  let value_len = match value with None -> 0 | Some v -> String.length v in
  let d = domain_bits in
  let s0 = Bytes.of_string (Lw_crypto.Drbg.generate rng 16) in
  let s1 = Bytes.of_string (Lw_crypto.Drbg.generate rng 16) in
  (* seeds keep their low bit of byte 15 clear, matching PRG outputs *)
  let clear_low b = Bytes.set b 15 (Char.chr (Char.code (Bytes.get b 15) land 0xfe)) in
  clear_low s0;
  clear_low s1;
  let root0 = Bytes.copy s0 and root1 = Bytes.copy s1 in
  let t0 = ref 0 and t1 = ref 1 in
  let cw_seeds = Bytes.create (16 * d) in
  let cw_bits = Bytes.create d in
  let c0 = Bytes.create 32 and c1 = Bytes.create 32 in
  for level = 0 to d - 1 do
    let bits0 = Prg.expand_into prg ~src:s0 ~src_pos:0 ~dst:c0 ~dst_pos:0 in
    let bits1 = Prg.expand_into prg ~src:s1 ~src_pos:0 ~dst:c1 ~dst_pos:0 in
    let tl0 = bits0 land 1 and tr0 = bits0 lsr 1 in
    let tl1 = bits1 land 1 and tr1 = bits1 lsr 1 in
    let alpha_bit = Lw_util.Bitops.bit_msb alpha ~width:d level in
    (* keep = the child alpha descends into; lose = the other. Both
       halves of each expansion are read on every level and combined
       through the splatted mask, so neither the offsets touched nor
       the instructions executed follow the secret bit. *)
    let m = (0 - alpha_bit) land 0xff in
    let sel_keep c i =
      (Char.code (Bytes.get c i) land lnot m)
      lor (Char.code (Bytes.get c (16 + i)) land m)
    in
    let sel_lose c i =
      (Char.code (Bytes.get c i) land m)
      lor (Char.code (Bytes.get c (16 + i)) land lnot m)
    in
    for i = 0 to 15 do
      Bytes.set cw_seeds ((16 * level) + i)
        (Char.unsafe_chr (sel_lose c0 i lxor sel_lose c1 i))
    done;
    let tl_cw = tl0 lxor tl1 lxor alpha_bit lxor 1 in
    let tr_cw = tr0 lxor tr1 lxor alpha_bit in
    Bytes.set cw_bits level (Char.chr (tl_cw lor (tr_cw lsl 1)));
    let tkeep_cw = pick_int alpha_bit tl_cw tr_cw in
    let step s c t tkeep =
      for i = 0 to 15 do
        Bytes.set s i (Char.unsafe_chr (sel_keep c i))
      done;
      (* the correction is applied under a mask splatted from the
         control bit: same XOR work whether t is 0 or 1 *)
      Lw_util.Xorbuf.xor_into_masked
        ~mask:((0 - (t land 1)) land 0xff)
        ~src:cw_seeds ~src_pos:(16 * level) ~dst:s ~dst_pos:0 ~len:16;
      tkeep lxor (t land tkeep_cw)
    in
    let tkeep0 = pick_int alpha_bit tl0 tr0 in
    let tkeep1 = pick_int alpha_bit tl1 tr1 in
    let t0' = step s0 c0 !t0 tkeep0 in
    let t1' = step s1 c1 !t1 tkeep1 in
    t0 := t0';
    t1 := t1'
  done;
  let cw_leaf =
    match value with
    | None -> ""
    | Some v ->
        let conv s = Prg.convert prg ~seed:s ~pos:0 ~len:value_len in
        Lw_util.Xorbuf.xor (Lw_util.Xorbuf.xor v (conv s0)) (conv s1)
  in
  let mk party root_seed =
    {
      party;
      domain_bits = d;
      value_len;
      prg;
      root_seed;
      root_t = party;
      cw_seeds;
      cw_bits;
      cw_offset = 0;
      cw_leaf;
    }
  in
  (mk 0 root0, mk 1 root1)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Expand the node at [seed]/[t] one level; children (with corrections
   applied) land in [children]; returns corrected (tl lor (tr lsl 1)). *)
let expand_node k ~level ~seed ~seed_pos ~t ~children =
  let bits = Prg.expand_into k.prg ~src:seed ~src_pos:seed_pos ~dst:children ~dst_pos:0 in
  if t = 1 then begin
    let pos = cw_seed_pos k level in
    Lw_util.Xorbuf.xor_into ~src:k.cw_seeds ~src_pos:pos ~dst:children ~dst_pos:0 ~len:16;
    Lw_util.Xorbuf.xor_into ~src:k.cw_seeds ~src_pos:pos ~dst:children ~dst_pos:16 ~len:16;
    bits lxor cw_bit k level
  end
  else bits

let eval_leaf_state k x =
  if x < 0 || x >= 1 lsl k.domain_bits then invalid_arg "Dpf.eval: index out of domain";
  let seed = Bytes.copy k.root_seed in
  let children = Bytes.create 32 in
  let t = ref k.root_t in
  for level = 0 to k.domain_bits - 1 do
    let bits = expand_node k ~level ~seed ~seed_pos:0 ~t:!t ~children in
    let b = Lw_util.Bitops.bit_msb x ~width:k.domain_bits level in
    Bytes.blit children (16 * b) seed 0 16;
    t := (bits lsr b) land 1
  done;
  (seed, !t)

let eval_bit k x =
  let _, t = eval_leaf_state k x in
  t

let eval_value k x =
  if k.value_len = 0 then invalid_arg "Dpf.eval_value: selection-bit key";
  let seed, t = eval_leaf_state k x in
  let share = Prg.convert k.prg ~seed ~pos:0 ~len:k.value_len in
  if t = 1 then Lw_util.Xorbuf.xor share k.cw_leaf else share

(* Depth-first full expansion. Each recursion level owns a preallocated
   32-byte children buffer, so no allocation happens per node. *)
let eval_depth k ~depth f =
  let bufs = Array.init (depth + 1) (fun _ -> Bytes.create 32) in
  let rec go level seed_buf seed_pos index t =
    if level = depth then f index t seed_buf seed_pos
    else begin
      let children = bufs.(level) in
      let bits = expand_node k ~level ~seed:seed_buf ~seed_pos ~t ~children in
      go (level + 1) children 0 (2 * index) (bits land 1);
      go (level + 1) children 16 ((2 * index) + 1) (bits lsr 1)
    end
  in
  go 0 (Bytes.copy k.root_seed) 0 0 k.root_t

let eval_all_seeds k f = eval_depth k ~depth:k.domain_bits f
let eval_all_bits k f = eval_depth k ~depth:k.domain_bits (fun x t _ _ -> f x t)

(* Blocked leaf-bit streaming: expand the top of the tree depth-first,
   and for each internal node [block_bits] above the leaves fill one
   reusable [2^block_bits]-byte buffer with that sub-tree's selection
   bits. The scratch stays cache-resident instead of the full-domain
   buffer an [eval_all_bits] caller would materialise — the traversal
   half of the PIR server's fused eval↔scan kernel. *)
let eval_bits_blocked k ~block_bits f =
  if block_bits < 0 || block_bits > k.domain_bits then
    invalid_arg "Dpf.eval_bits_blocked: block_bits out of range";
  let top = k.domain_bits - block_bits in
  let block = 1 lsl block_bits in
  let buf = Bytes.create block in
  let bufs = Array.init (max 1 block_bits) (fun _ -> Bytes.create 32) in
  let rec fill level seed_buf seed_pos index t =
    if level = k.domain_bits then Bytes.unsafe_set buf index (Char.unsafe_chr t)
    else begin
      let children = bufs.(level - top) in
      let bits = expand_node k ~level ~seed:seed_buf ~seed_pos ~t ~children in
      fill (level + 1) children 0 (2 * index) (bits land 1);
      fill (level + 1) children 16 ((2 * index) + 1) (bits lsr 1)
    end
  in
  eval_depth k ~depth:top (fun prefix t seed_buf pos ->
      fill top seed_buf pos 0 t;
      f (prefix lsl block_bits) buf block)

(* Diagnostic only: recovering the selected support from the leaf bits
   is inherently selection-dependent control flow, and this helper never
   runs on the server answer path — tests and debugging use it to check
   a key's point function. *)
let selected_indices k =
  let acc = ref [] in
  (* lw-lint: allow taint *)
  eval_all_bits k (fun x t -> if t = 1 then acc := x :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Distributed-evaluation hooks                                        *)
(* ------------------------------------------------------------------ *)

let eval_prefixes k ~levels f =
  if levels < 0 || levels > k.domain_bits then invalid_arg "Dpf.eval_prefixes: bad level count";
  eval_depth k ~depth:levels f

let make_subkey k ~root_seed ~root_pos ~root_t ~levels =
  if levels < 0 || levels >= k.domain_bits then invalid_arg "Dpf.make_subkey: bad level count";
  let seed = Bytes.create 16 in
  Bytes.blit root_seed root_pos seed 0 16;
  {
    k with
    domain_bits = k.domain_bits - levels;
    root_seed = seed;
    root_t;
    cw_offset = k.cw_offset + levels;
  }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let magic = 'D'
let version = 1

let serialized_size ~domain_bits ~value_len = 10 + 16 + (17 * domain_bits) + value_len

let paper_key_size ~domain_bits = (128 + 2) * domain_bits

let serialize k =
  let d = k.domain_bits in
  let buf = Buffer.create (serialized_size ~domain_bits:d ~value_len:k.value_len) in
  Buffer.add_char buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr k.party);
  Buffer.add_char buf (Char.chr k.root_t);
  Buffer.add_char buf (Char.chr (Prg.to_tag k.prg));
  Buffer.add_char buf (Char.chr d);
  Buffer.add_int32_be buf (Int32.of_int k.value_len);
  Buffer.add_subbytes buf k.root_seed 0 16;
  Buffer.add_subbytes buf k.cw_seeds (16 * k.cw_offset) (16 * d);
  Buffer.add_subbytes buf k.cw_bits k.cw_offset d;
  Buffer.add_string buf k.cw_leaf;
  Buffer.contents buf

let deserialize s =
  let err msg = Error msg in
  if String.length s < 10 then err "short header"
  else if s.[0] <> magic then err "bad magic"
  else if Char.code s.[1] <> version then err "unsupported version"
  else begin
    let party = Char.code s.[2] and root_t = Char.code s.[3] in
    let prg_tag = Char.code s.[4] and d = Char.code s.[5] in
    let value_len = Int32.to_int (String.get_int32_be s 6) in
    if party > 1 then err "bad party"
    else if root_t > 1 then err "bad root bit"
    else if d < 1 || d > max_domain_bits then err "bad domain_bits"
    else if value_len < 0 || value_len > 1 lsl 24 then err "bad value_len"
    else begin
      match Prg.of_tag prg_tag with
      | None -> err "unknown prg"
      | Some prg ->
          let expect = serialized_size ~domain_bits:d ~value_len in
          if String.length s <> expect then err "length mismatch"
          else begin
            let pos = ref 10 in
            let take n =
              let sub = String.sub s !pos n in
              pos := !pos + n;
              sub
            in
            let root_seed = Bytes.of_string (take 16) in
            let cw_seeds = Bytes.of_string (take (16 * d)) in
            let cw_bits = Bytes.of_string (take d) in
            let cw_leaf = take value_len in
            let bits_ok = ref true in
            Bytes.iter (fun c -> if Char.code c > 3 then bits_ok := false) cw_bits;
            if not !bits_ok then err "bad control bits"
            else
              Ok
                {
                  party;
                  domain_bits = d;
                  value_len;
                  prg;
                  root_seed;
                  root_t;
                  cw_seeds;
                  cw_bits;
                  cw_offset = 0;
                  cw_leaf;
                }
          end
    end
  end
