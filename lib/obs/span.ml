(* Lightweight span tracing. [with_ ~name f] times [f] against the
   process span clock and records the duration into a histogram named
   after the full span path ("span.<outer>.<inner>"), so nesting gives a
   per-phase breakdown for free. The active path is tracked per-domain
   (Domain.DLS); sys-threads within one domain share a stack, which is
   fine for this codebase (domains are the unit of parallel answer
   work). *)

let clock_cell = Atomic.make (Clock.real ())
let set_clock c = Atomic.set clock_cell c
let clock () = Atomic.get clock_cell

let stack_key : string list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let current () = List.rev (Domain.DLS.get stack_key)

let with_ ~name f =
  if not (Metrics.is_enabled ()) then f ()
  else begin
    let c = Atomic.get clock_cell in
    let outer = Domain.DLS.get stack_key in
    let path = name :: outer in
    Domain.DLS.set stack_key path;
    let label = String.concat "." (List.rev path) in
    let t0 = Clock.now c in
    Fun.protect
      ~finally:(fun () ->
        let dt = Clock.now c -. t0 in
        Metrics.observe (Metrics.histogram ("span." ^ label)) dt;
        Domain.DLS.set stack_key outer)
      f
  end
