(** Exporters for the metrics registry. *)

val to_json : unit -> Lw_json.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count; sum; max; p50; p95; p99; buckets: [{le; count}]}}}] —
    names sorted, empty histogram buckets elided. *)

val to_prometheus : unit -> string
(** Prometheus-style text exposition: counters and gauges as bare
    samples, histograms as summaries (quantile-labelled samples plus
    [_max]/[_sum]/[_count]) {e and} cumulative [_bucket{le="..."}]
    samples with full-precision edges. The bucket samples are what makes
    the text exposition lossless for a fleet scraper: exact per-bucket
    counts can be reconstructed from them and merged across processes
    with {!Metrics.merge_into} ([Lw_cluster.Fleet_view] does exactly
    that). Dots in metric names become underscores. *)
