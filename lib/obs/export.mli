(** Exporters for the metrics registry. *)

val to_json : unit -> Lw_json.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count; sum; max; p50; p95; p99; buckets: [{le; count}]}}}] —
    names sorted, empty histogram buckets elided. *)

val to_prometheus : unit -> string
(** Prometheus-style text exposition: counters and gauges as bare
    samples, histograms as summaries (quantile-labelled samples plus
    [_max]/[_sum]/[_count]). Dots in metric names become
    underscores. *)
