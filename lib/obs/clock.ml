type t = { now : unit -> float; sleep : float -> unit }

let real () =
  {
    (* wall-clock telemetry for backoff pacing, not protocol randomness *)
    now = (fun () -> Unix.gettimeofday () (* lw-lint: allow nondeterminism *));
    sleep = (fun d -> if d > 0. then Thread.delay d);
  }

let virtual_ () =
  let t = ref 0. in
  { now = (fun () -> !t); sleep = (fun d -> if d > 0. then t := !t +. d) }

let now c = c.now ()
let sleep c d = c.sleep d
