(** A clock the retry/backoff machinery and the metrics layer are
    parameterised over.

    Production code uses {!real} (wall clock + [Thread.delay]); tests and
    the chaos/bench harnesses use {!virtual_}, where [sleep] merely
    advances a counter — so a client that backs off for seconds of
    simulated time runs in microseconds of real time, deterministically.
    The same virtual clock doubles as the latency accumulator for the
    fault-injection benchmarks (E20) and drives {!Span} timings in tests.

    This is the only module (besides the entropy seeding in
    [lib/crypto/drbg.ml]) allowed to read the wall clock directly; the
    [raw-timestamp] lint rule makes any other [Unix.gettimeofday] in
    [lib/] a build failure. *)

type t = {
  now : unit -> float; (** seconds; monotonic within one clock *)
  sleep : float -> unit; (** advance time; negative durations are ignored *)
}

val real : unit -> t
(** Wall clock; [sleep] really blocks the calling thread. *)

val virtual_ : unit -> t
(** Starts at 0; [sleep d] adds [d] to [now] and returns immediately. *)

val now : t -> float
val sleep : t -> float -> unit
