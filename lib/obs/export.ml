(* Exporters over Metrics.snapshot: JSON for programmatic consumers and
   a Prometheus-style text exposition for humans / scrapers. *)

module Json = Lw_json.Json

let num f = Json.Number f

let json_of_hist (h : Metrics.hist_snapshot) =
  Json.Obj
    [
      ("count", num (float_of_int h.count));
      ("sum", num h.sum);
      ("max", num h.max);
      ("p50", num h.p50);
      ("p95", num h.p95);
      ("p99", num h.p99);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) ->
               Json.Obj
                 [
                   ( "le",
                     if Float.is_finite le then num le
                     else Json.String "+Inf" );
                   ("count", num (float_of_int c));
                 ])
             h.nonzero_buckets) );
    ]

let to_json () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun item ->
      match item with
      | Metrics.Counter (name, v) ->
          counters := (name, num (float_of_int v)) :: !counters
      | Metrics.Gauge (name, v) -> gauges := (name, num v) :: !gauges
      | Metrics.Histogram (name, h) -> hists := (name, json_of_hist h) :: !hists)
    (Metrics.snapshot ());
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !hists));
    ]

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. We map dots (and
   anything else outside the charset) to underscores. *)
let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
      | _ -> '_')
    name

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun item ->
      match item with
      | Metrics.Counter (name, v) ->
          let n = sanitize name in
          line "# TYPE %s counter" n;
          line "%s %d" n v
      | Metrics.Gauge (name, v) ->
          let n = sanitize name in
          line "# TYPE %s gauge" n;
          line "%s %s" n (fmt_float v)
      | Metrics.Histogram (name, h) ->
          let n = sanitize name in
          line "# TYPE %s summary" n;
          line "%s{quantile=\"0.5\"} %s" n (fmt_float h.p50);
          line "%s{quantile=\"0.95\"} %s" n (fmt_float h.p95);
          line "%s{quantile=\"0.99\"} %s" n (fmt_float h.p99);
          (* cumulative Prometheus-histogram bucket samples, full
             precision on the edges: a fleet scraper can reconstruct the
             exact bucket counts from the text exposition and re-merge
             them with Metrics.merge_into — the quantile samples above
             could never be merged exactly *)
          let cum = ref 0 in
          List.iter
            (fun (le, c) ->
              if Float.is_finite le then begin
                cum := !cum + c;
                line "%s_bucket{le=\"%.17g\"} %d" n le !cum
              end)
            h.nonzero_buckets;
          line "%s_bucket{le=\"+Inf\"} %d" n h.count;
          line "%s_max %s" n (fmt_float h.max);
          line "%s_sum %s" n (fmt_float h.sum);
          line "%s_count %d" n h.count)
    (Metrics.snapshot ());
  Buffer.contents buf
