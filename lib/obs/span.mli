(** Lightweight span tracing on top of {!Metrics} histograms.

    [with_ ~name f] runs [f], timing it against the process span clock,
    and records the elapsed seconds into the histogram
    ["span." ^ path] where [path] is the dot-joined nesting of active
    span names in the current domain — e.g. a [Zltp_batch.run_batch]
    span containing the frontend answer span records both
    ["span.zltp.batch.run"] and ["span.zltp.batch.run.zltp.frontend.answer"].
    Durations are recorded even when [f] raises.

    The clock defaults to {!Clock.real}; tests and the chaos harness
    install a virtual clock with {!set_clock} so span durations are
    deterministic (exactly the simulated seconds slept). When metrics
    are disabled ({!Metrics.set_enabled}[ false]) spans cost one atomic
    read and no clock calls. *)

val set_clock : Clock.t -> unit
(** Install the clock used by all spans (process-wide). *)

val clock : unit -> Clock.t
(** The currently installed span clock — the canonical way for
    instrumented code to read time without touching
    [Unix.gettimeofday]. *)

val with_ : name:string -> (unit -> 'a) -> 'a

val current : unit -> string list
(** Active span names in this domain, outermost first. *)
