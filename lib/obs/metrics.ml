(* Process-wide metrics registry: Atomic-backed counters and gauges plus
   log-bucketed latency histograms. Everything is lock-free on the hot
   path; the registry itself (name -> metric) takes a mutex only on
   first registration / snapshot. *)

let enabled_flag = Atomic.make true
let set_enabled b = Atomic.set enabled_flag b
let is_enabled () = Atomic.get enabled_flag

(* ---- histogram bucket geometry ------------------------------------- *)

(* Geometric buckets: bucket 0 holds everything <= [lo]; bucket i (i >= 1)
   holds (lo * gamma^(i-1), lo * gamma^i]; the last bucket is an overflow
   bucket. With lo = 1 ns and gamma = sqrt 2, 96 buckets reach ~2 days, so
   any latency this system can produce lands in a real bucket and a
   quantile estimate is off by at most a factor of sqrt 2 (one bucket). *)
let bucket_lo = 1e-9
let bucket_gamma = sqrt 2.
let n_buckets = 96
let log_gamma = log bucket_gamma

let bucket_index v =
  if not (Float.is_finite v) || v <= bucket_lo then 0
  else
    let i = 1 + int_of_float (Float.floor (log (v /. bucket_lo) /. log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else i

(* Inclusive upper edge of bucket [i]; the overflow bucket reports +inf. *)
let bucket_upper i =
  if i >= n_buckets - 1 then Float.infinity
  else bucket_lo *. (bucket_gamma ** float_of_int i)

(* Representative value reported for a quantile landing in bucket [i]:
   the geometric midpoint of the bucket's edges. *)
let bucket_mid i =
  if i = 0 then bucket_lo
  else bucket_lo *. (bucket_gamma ** (float_of_int i -. 0.5))

(* ---- metric kinds --------------------------------------------------- *)

type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  buckets : int Atomic.t array;
  hcount : int Atomic.t;
  hsum : float Atomic.t;
  hmax : float Atomic.t;
}

let rec atomic_add_float cell d =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. d)) then
    atomic_add_float cell d

let rec atomic_max_float cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then
    atomic_max_float cell v

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c 1)

let add c n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c
let set g v = if Atomic.get enabled_flag then Atomic.set g v
let gauge_value g = Atomic.get g

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_index v) 1);
    ignore (Atomic.fetch_and_add h.hcount 1);
    atomic_add_float h.hsum v;
    atomic_max_float h.hmax v
  end

let hist_count h = Atomic.get h.hcount
let hist_sum h = Atomic.get h.hsum
let hist_max h = if Atomic.get h.hcount = 0 then 0. else Atomic.get h.hmax

let fresh_histogram () =
  {
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    hcount = Atomic.make 0;
    hsum = Atomic.make 0.;
    hmax = Atomic.make 0.;
  }

let scratch_histogram = fresh_histogram

(* Histogram merge: bucketing is deterministic, so adding [src]'s bucket
   counts into [into] yields exactly the histogram that would have
   resulted from observing both sample streams into one histogram — no
   bucket counts are lost or re-binned. Aggregation is not gated on
   [is_enabled]: merging reads recorded state, it doesn't record. *)
let merge_into ~into src =
  if into == src then invalid_arg "Lw_obs.Metrics.merge_into: cannot merge a histogram into itself";
  Array.iteri
    (fun i b ->
      let c = Atomic.get b in
      if c > 0 then ignore (Atomic.fetch_and_add into.buckets.(i) c))
    src.buckets;
  let c = Atomic.get src.hcount in
  if c > 0 then begin
    ignore (Atomic.fetch_and_add into.hcount c);
    atomic_add_float into.hsum (Atomic.get src.hsum);
    atomic_max_float into.hmax (Atomic.get src.hmax)
  end

(* Nearest-rank quantile from the buckets. The estimate is the geometric
   midpoint of the bucket the rank falls in, clamped to the observed max
   (which necessarily lies in the last non-empty bucket). *)
let quantile h q =
  let total = Atomic.get h.hcount in
  if total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let acc = ref 0 and found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + Atomic.get h.buckets.(i);
         if !acc >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min (bucket_mid !found) (hist_max h)
  end

(* ---- registry ------------------------------------------------------- *)

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some _ ->
          invalid_arg
            ("Lw_obs.Metrics: " ^ name ^ " already registered with a different kind (wanted counter)")
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add registry name (C c);
          c)

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (G g) -> g
      | Some _ ->
          invalid_arg
            ("Lw_obs.Metrics: " ^ name ^ " already registered with a different kind (wanted gauge)")
      | None ->
          let g = Atomic.make 0. in
          Hashtbl.add registry name (G g);
          g)

let histogram name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> h
      | Some _ ->
          invalid_arg
            ("Lw_obs.Metrics: " ^ name ^ " already registered with a different kind (wanted histogram)")
      | None ->
          let h = fresh_histogram () in
          Hashtbl.add registry name (H h);
          h)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0.
          | H h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.hcount 0;
              Atomic.set h.hsum 0.;
              Atomic.set h.hmax 0.)
        registry)

(* ---- snapshot (for the exporters) ----------------------------------- *)

type hist_snapshot = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  nonzero_buckets : (float * int) list;
      (* (inclusive upper edge, count), ascending, empty buckets elided *)
}

type snapshot_item =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * hist_snapshot

let snapshot_hist h =
  let nonzero = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(i) in
    if c > 0 then nonzero := (bucket_upper i, c) :: !nonzero
  done;
  {
    count = hist_count h;
    sum = hist_sum h;
    max = hist_max h;
    p50 = quantile h 0.50;
    p95 = quantile h 0.95;
    p99 = quantile h 0.99;
    nonzero_buckets = !nonzero;
  }

let snapshot () =
  let items =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            (match m with
            | C c -> Counter (name, Atomic.get c)
            | G g -> Gauge (name, Atomic.get g)
            | H h -> Histogram (name, snapshot_hist h))
            :: acc)
          registry [])
  in
  List.sort
    (fun a b ->
      let name = function
        | Counter (n, _) | Gauge (n, _) | Histogram (n, _) -> n
      in
      String.compare (name a) (name b))
    items
