(** Process-wide metrics registry.

    Three metric kinds, all safe under domain/thread concurrency:

    - {b counters}: monotone [int Atomic.t] increments — exact even when
      bumped from several [Domain]s at once;
    - {b gauges}: last-writer-wins [float Atomic.t];
    - {b histograms}: log-bucketed latency distributions. Only bucket
      counts, a running sum and the max are retained — {e no raw
      samples} — so an exported dump can never replay the exact timing
      sequence of an individual query (privacy hygiene, see DESIGN.md),
      and memory stays O(1) per histogram.

    Metrics are registered by name on first use and live for the whole
    process; handles are cheap to cache in module-level [let]s. All
    mutation is gated on {!is_enabled}, so benchmarks can measure the
    instrumented code path with recording off ([set_enabled false]). *)

val set_enabled : bool -> unit
(** Globally enable/disable recording (default: enabled). Disabling
    makes every [incr]/[add]/[set]/[observe] a single atomic read. *)

val is_enabled : unit -> bool

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one sample (seconds, bytes, …; any non-negative float). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_max : histogram -> float
(** Largest observed sample; [0.] when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: nearest-rank quantile estimated
    from the buckets — the geometric midpoint of the bucket the rank
    falls in, clamped to the observed max. Off from the exact sample
    quantile by at most one bucket (a factor of [sqrt 2]). [0.] when
    empty. *)

val scratch_histogram : unit -> histogram
(** A fresh histogram {e outside} the registry — an aggregation target
    for {!merge_into} (e.g. folding per-shard histograms into one fleet
    view) that never shows up in {!snapshot} and needs no name. *)

val merge_into : into:histogram -> histogram -> unit
(** [merge_into ~into src] adds [src]'s bucket counts, count, sum and max
    into [into], leaving [src] untouched. Bucketing is deterministic, so
    the result is exactly the histogram that would have come from
    observing both sample streams into one histogram — no counts are
    lost or re-binned (the QCheck property in [test_obs] holds this
    exactly, not approximately). Safe under concurrent [observe]s on
    either side; not gated on {!is_enabled}. Raises [Invalid_argument]
    when [into == src]. *)

(** {2 Bucket geometry} (exposed for the exporters and property tests) *)

val n_buckets : int

val bucket_index : float -> int
(** Bucket a sample lands in: bucket 0 is everything [<= 1e-9] s, then
    geometric buckets with ratio [sqrt 2]; the last bucket overflows. *)

val bucket_upper : int -> float
(** Inclusive upper edge of a bucket; [infinity] for the overflow
    bucket. *)

(** {2 Registry} *)

val reset : unit -> unit
(** Zero every registered metric (handles stay valid). For tests and
    benchmark isolation. *)

type hist_snapshot = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  nonzero_buckets : (float * int) list;
      (** (inclusive upper edge, count), ascending; empty buckets elided *)
}

val snapshot_hist : histogram -> hist_snapshot
(** Point-in-time view of one histogram (registered or scratch). *)

type snapshot_item =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * hist_snapshot

val snapshot : unit -> snapshot_item list
(** Consistent-enough point-in-time view of every metric, sorted by
    name. (Individual metrics are read atomically; the set is not a
    cross-metric transaction.) *)
