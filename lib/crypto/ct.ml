(* Constant-time primitives. Nothing in this module may branch on, or
   index by, the values it protects. lw-lint enforces that mechanically:
   the flags below mark the sensitive parameters, and rules ct-equality /
   secret-branch fail the build on any if/match/(=) over them. *)
(* lw-lint: secret cond bit mask *)

let equal a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       for i = 0 to String.length a - 1 do
         acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
       done;
       !acc = 0
     end

(* 0x00 for bit = 0, 0xff for bit = 1, derived arithmetically: two's
   complement negation of the low bit smears it across the byte. *)
let mask_of_bit bit = (0 - (bit land 1)) land 0xff

let select_int bit a b =
  if String.length a <> String.length b then invalid_arg "Ct.select_int: length mismatch";
  let mask = mask_of_bit bit in
  String.init (String.length a) (fun i ->
      Char.chr
        ((Char.code a.[i] land mask) lor (Char.code b.[i] land (lnot mask land 0xff))))

let select cond a b = select_int (Bool.to_int cond) a b
