(* GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b). *)

let xtime b =
  let b2 = b lsl 1 in
  if b2 land 0x100 <> 0 then (b2 lxor 0x11b) land 0xff else b2

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
    end
  in
  go a b 0

(* S-box: multiplicative inverse followed by the affine transform. *)
let sbox =
  let inv = Array.make 256 0 in
  (* brute-force inverses; 256x256 is trivial at init time *)
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gf_mul a b = 1 then inv.(a) <- b
    done
  done;
  let affine x =
    let rot x k = ((x lsl k) lor (x lsr (8 - k))) land 0xff in
    x lxor rot x 1 lxor rot x 2 lxor rot x 3 lxor rot x 4 lxor 0x63
  in
  Array.init 256 (fun i -> affine inv.(i))

(* All 32-bit words live in the low bits of native [int]s (OCaml's int is
   at least 63 bits on every supported target). The boxed [Int32]
   formulation this replaces allocated a box per temporary; at ~2 AES
   calls per DPF tree node that was megabytes of minor-heap traffic per
   full-domain evaluation, and the GC pressure leaked into the scan phase
   sharing the loop. Immediate ints allocate nothing. *)

(* T-tables: te0.(x) = [S(x)*2, S(x), S(x), S(x)*3] packed big-endian;
   te1..te3 are byte rotations of te0. *)
let pack a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let te0 = Array.init 256 (fun i ->
    let s = sbox.(i) in
    pack (gf_mul s 2) s s (gf_mul s 3))

let rotr32_8 x = (x lsr 8) lor ((x lsl 24) land 0xffffffff)

let te1 = Array.map rotr32_8 te0
let te2 = Array.map rotr32_8 te1
let te3 = Array.map rotr32_8 te2

type key = int array
(* 44 round words for AES-128 (10 rounds + initial whitening). *)

let sub_word w =
  let b k = (w lsr k) land 0xff in
  pack sbox.(b 24) sbox.(b 16) sbox.(b 8) sbox.(b 0)

let rot_word w = ((w lsl 8) land 0xffffffff) lor (w lsr 24)

let rcon =
  let r = Array.make 11 0 in
  r.(1) <- 1;
  for i = 2 to 10 do
    r.(i) <- xtime r.(i - 1)
  done;
  r

let expand_key k =
  if String.length k <> 16 then invalid_arg "Aes128.expand_key: key must be 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <- pack (Char.code k.[4 * i]) (Char.code k.[(4 * i) + 1])
        (Char.code k.[(4 * i) + 2]) (Char.code k.[(4 * i) + 3])
  done;
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then sub_word (rot_word temp) lxor (rcon.(i / 4) lsl 24)
      else temp
    in
    w.(i) <- w.(i - 4) lxor temp
  done;
  w

let byte32 x k = (x lsr k) land 0xff

let get32_be b off =
  (Char.code (Bytes.unsafe_get b off) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (off + 3))

let set32_be b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (byte32 v 24));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr (byte32 v 16));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr (byte32 v 8));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr (byte32 v 0))

(* final round: SubBytes + ShiftRows, no MixColumns *)
let final_word a b c d rk =
  pack sbox.(byte32 a 24) sbox.(byte32 b 16) sbox.(byte32 c 8) sbox.(byte32 d 0) lxor rk

(* The round state travels as int arguments of a fully-applied top-level
   tail-recursive loop: no ref cells, no closures — this path must not
   allocate (~2 AES calls per DPF tree node, and a local [let rec] here
   would cost a 7-word closure per block). *)
let rec rounds w dst dst_pos round s0 s1 s2 s3 =
  if round > 9 then begin
    set32_be dst dst_pos (final_word s0 s1 s2 s3 (Array.unsafe_get w 40));
    set32_be dst (dst_pos + 4) (final_word s1 s2 s3 s0 (Array.unsafe_get w 41));
    set32_be dst (dst_pos + 8) (final_word s2 s3 s0 s1 (Array.unsafe_get w 42));
    set32_be dst (dst_pos + 12) (final_word s3 s0 s1 s2 (Array.unsafe_get w 43))
  end
  else
    let t0 =
      te0.(byte32 s0 24) lxor te1.(byte32 s1 16) lxor te2.(byte32 s2 8)
      lxor te3.(byte32 s3 0) lxor Array.unsafe_get w (4 * round)
    and t1 =
      te0.(byte32 s1 24) lxor te1.(byte32 s2 16) lxor te2.(byte32 s3 8)
      lxor te3.(byte32 s0 0) lxor Array.unsafe_get w ((4 * round) + 1)
    and t2 =
      te0.(byte32 s2 24) lxor te1.(byte32 s3 16) lxor te2.(byte32 s0 8)
      lxor te3.(byte32 s1 0) lxor Array.unsafe_get w ((4 * round) + 2)
    and t3 =
      te0.(byte32 s3 24) lxor te1.(byte32 s0 16) lxor te2.(byte32 s1 8)
      lxor te3.(byte32 s2 0) lxor Array.unsafe_get w ((4 * round) + 3)
    in
    rounds w dst dst_pos (round + 1) t0 t1 t2 t3

let encrypt_block_into w ~src ~src_pos ~dst ~dst_pos =
  rounds w dst dst_pos 1
    (get32_be src src_pos lxor Array.unsafe_get w 0)
    (get32_be src (src_pos + 4) lxor Array.unsafe_get w 1)
    (get32_be src (src_pos + 8) lxor Array.unsafe_get w 2)
    (get32_be src (src_pos + 12) lxor Array.unsafe_get w 3)

let encrypt_block w block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  let dst = Bytes.create 16 in
  encrypt_block_into w ~src:(Bytes.unsafe_of_string block) ~src_pos:0 ~dst ~dst_pos:0;
  dst |> Bytes.unsafe_to_string

let mmo_fixed_key = expand_key (String.sub "lightweb-mmo-key!" 0 16)

let mmo_hash_into w ~tweak ~src ~src_pos ~dst ~dst_pos =
  (* dst := AES(src ^ tweak) ^ (src ^ tweak), tweak folded into byte 0 *)
  let x0 = Bytes.get src src_pos in
  Bytes.set src src_pos (Char.unsafe_chr (Char.code x0 lxor (tweak land 0xff)));
  encrypt_block_into w ~src ~src_pos ~dst ~dst_pos;
  Lw_util.Xorbuf.xor_into ~src ~src_pos ~dst ~dst_pos ~len:16;
  Bytes.set src src_pos x0

let mmo_hash w ~tweak s =
  if String.length s <> 16 then invalid_arg "Aes128.mmo_hash: input must be 16 bytes";
  let x = Bytes.of_string s in
  let out = Bytes.create 16 in
  mmo_hash_into w ~tweak ~src:x ~src_pos:0 ~dst:out ~dst_pos:0;
  Bytes.unsafe_to_string out
