(** Constant-time byte-string operations. *)

val equal : string -> string -> bool
(** [equal a b] compares without early exit; strings of different lengths
    compare unequal (length is not secret). *)

val mask_of_bit : int -> int
(** [mask_of_bit bit] is [0xff] when the low bit of [bit] is set, [0x00]
    otherwise, derived arithmetically — the building block for branch-free
    selection. *)

val select_int : int -> string -> string -> string
(** [select_int bit a b] is [a] when the low bit of [bit] is 1 else [b],
    reading both and branching on neither. Lengths must match. *)

val select : bool -> string -> string -> string
(** [select cond a b] is [a] when [cond] else [b], via {!select_int}.
    Lengths must match. *)
