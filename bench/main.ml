(* The lightweb benchmark harness: regenerates every quantitative result
   in the paper's evaluation (§4, §5, Table 2).

     dune exec bench/main.exe            full run (a few minutes)
     dune exec bench/main.exe -- --fast  reduced sizes for CI

   Experiment ids follow DESIGN.md: E1 server computation, E2 batching,
   E3 communication, E4 Table 2, E5 monthly user cost, E6 collisions,
   E7 distributed DPF evaluation, E8 PIR vs enclave ablation, E9 cost
   projection, E10 traffic-analysis attack. Paper numbers are printed
   beside measurements; EXPERIMENTS.md records the comparison. *)

module Json = Lw_json.Json

(* E25 spawns shard processes by re-execing this very binary; when argv
   carries the worker marker, dive into the shard loop before any
   benchmark machinery looks at argv. *)
let () = Lw_cluster.Worker.run_if_worker ()

let fast = Array.exists (fun a -> a = "--fast") Sys.argv

let rng () = Lw_crypto.Drbg.create ~seed:"bench"
let det = Lw_util.Det_rng.of_string_seed

let section id title =
  Printf.printf "\n%s\n%s — %s\n%s\n" (String.make 78 '=') id title (String.make 78 '=')

let row fmt = Printf.printf fmt

(* median-of-reps wall timing for composite experiments *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let time_median ?(reps = 5) f =
  let samples = Array.init reps (fun _ -> snd (time_once f)) in
  (* polymorphic compare mis-sorts NaN; insist on finite samples and
     order with the float-aware comparison *)
  Array.iter (fun s -> assert (Float.is_finite s)) samples;
  Array.sort Float.compare samples;
  samples.(reps / 2)

(* Every BENCH_*.json embeds the machine it was produced on, so numbers
   from different checkouts are never compared blind: core count decides
   whether the domain-parallel results mean anything (on 1 core the
   wall-clock "speedup" is noise and only the critical-path figure is
   informative), and the compiler/word size pin down the codegen. *)
let machine_meta () =
  Json.Obj
    [
      ("cores", Json.Number (float_of_int (Domain.recommended_domain_count ())));
      ("ocaml_version", Json.String Sys.ocaml_version);
      ("word_size", Json.Number (float_of_int Sys.word_size));
      ("os_type", Json.String Sys.os_type);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel kernels                                                    *)
(* ------------------------------------------------------------------ *)

let bechamel_kernels () =
  let open Bechamel in
  let open Toolkit in
  let seed16 = Bytes.of_string (String.sub (Lw_crypto.Sha256.digest "kernel") 0 16) in
  let out32 = Bytes.create 32 in
  let drbg = rng () in
  let dpf22_0, _ = Lw_dpf.Dpf.gen ~domain_bits:22 ~alpha:123456 drbg in
  let small_db = Lw_pir.Bucket_db.create ~domain_bits:10 ~bucket_size:4096 in
  Lw_pir.Bucket_db.fill_random small_db (det "kern-db");
  let small_server = Lw_pir.Server.create small_db in
  let dpf10_0, _ = Lw_dpf.Dpf.gen ~domain_bits:10 ~alpha:77 drbg in
  let tests =
    [
      Test.make ~name:"prg.aes-mmo.expand"
        (Staged.stage (fun () ->
             ignore
               (Lw_dpf.Prg.expand_into Lw_dpf.Prg.Aes_mmo ~src:seed16 ~src_pos:0 ~dst:out32
                  ~dst_pos:0)));
      Test.make ~name:"prg.chacha8.expand"
        (Staged.stage (fun () ->
             ignore
               (Lw_dpf.Prg.expand_into (Lw_dpf.Prg.Chacha 8) ~src:seed16 ~src_pos:0 ~dst:out32
                  ~dst_pos:0)));
      Test.make ~name:"dpf.gen.d22"
        (Staged.stage (fun () -> ignore (Lw_dpf.Dpf.gen ~domain_bits:22 ~alpha:1 drbg)));
      Test.make ~name:"dpf.eval_point.d22"
        (Staged.stage (fun () -> ignore (Lw_dpf.Dpf.eval_bit dpf22_0 987654)));
      Test.make ~name:"dpf.eval_all.d10"
        (Staged.stage (fun () -> Lw_dpf.Dpf.eval_all_bits dpf10_0 (fun _ _ -> ())));
      Test.make ~name:"pir.answer.d10x4KiB"
        (Staged.stage (fun () -> ignore (Lw_pir.Server.answer small_server dpf10_0)));
    ]
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if fast then 0.25 else 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  Hashtbl.fold
    (fun name ols_result acc ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns :: _) -> (name, ns) :: acc
      | _ -> acc)
    clock []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* E1: server computation (§5.1)                                       *)
(* ------------------------------------------------------------------ *)

(* measured rates, reused by E4's "our hardware" variant *)
let measured = ref None

let e1_server_computation () =
  section "E1" "server computation per private-GET (§5.1 microbenchmark)";
  Printf.printf
    "paper (c5.large, AVX, 1 GiB shard, 2^22 domain): 167 ms/request = 64 ms DPF + 103 ms scan\n\n";
  let domains = if fast then [ 10; 12 ] else [ 10; 12; 14 ] in
  let bucket_size = 4096 in
  row "%-8s %-12s %-12s %-12s %-12s %-14s %-14s\n" "domain" "db size" "DPF eval" "scan"
    "fused" "total/request" "scan rate";
  let last = ref (0., 0., 0., 0) in
  List.iter
    (fun d ->
      let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
      Lw_pir.Bucket_db.fill_random db (det "e1");
      let server = Lw_pir.Server.create db in
      let key, _ = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha:(1 lsl (d - 1)) (rng ()) in
      let reps = if fast then 3 else 5 in
      let eval_s = time_median ~reps (fun () -> ignore (Lw_pir.Server.eval_bits server key)) in
      let bits = Lw_pir.Server.eval_bits server key in
      let scan_s = time_median ~reps (fun () -> ignore (Lw_pir.Server.scan server bits)) in
      (* the production path: eval and scan fused into one blocked pass *)
      let fused_s = time_median ~reps (fun () -> ignore (Lw_pir.Server.answer server key)) in
      let db_bytes = float_of_int (Lw_pir.Bucket_db.total_bytes db) in
      let scan_rate = db_bytes /. scan_s /. 1e9 in
      row "2^%-6d %-12s %9.2f ms %9.2f ms %9.2f ms %11.2f ms %10.2f GB/s\n" d
        (Printf.sprintf "%.0f MiB" (db_bytes /. 1048576.))
        (1000. *. eval_s) (1000. *. scan_s) (1000. *. fused_s)
        (1000. *. fused_s)
        scan_rate;
      last := (eval_s, scan_s, fused_s, d))
    domains;
  (* extrapolate the largest measurement to the paper's shard geometry;
     the §5.1 cost-model constants track the fused production kernel, so
     its scan component is fused total minus the (shared) eval phase *)
  let eval_s, scan_s, fused_s, d = !last in
  let gib = 1073741824. in
  let db_bytes = float_of_int ((1 lsl d) * bucket_size) in
  let eval_2_22 = eval_s *. float_of_int (1 lsl 22) /. float_of_int (1 lsl d) in
  let scan_1gib = scan_s *. gib /. db_bytes in
  let fused_scan_1gib = Float.max 0. (fused_s -. eval_s) *. gib /. db_bytes in
  Printf.printf
    "\nextrapolated to the paper's shard (2^22 domain, 1 GiB): %.0f ms DPF + %.0f ms fused scan = %.0f ms\n"
    (1000. *. eval_2_22) (1000. *. fused_scan_1gib)
    (1000. *. (eval_2_22 +. fused_scan_1gib));
  Printf.printf
    "two-pass reference at the same geometry:                 %.0f ms DPF + %.0f ms scan = %.0f ms\n"
    (1000. *. eval_2_22) (1000. *. scan_1gib)
    (1000. *. (eval_2_22 +. scan_1gib));
  Printf.printf
    "paper:                                                   64 ms DPF + 103 ms scan = 167 ms\n";
  Printf.printf
    "(pure OCaml vs AES-NI+AVX C++; the split and scaling shape are the comparable part)\n";
  measured :=
    Some
      (Lw_sim.Cost_model.shard_of_measurement ~dpf_seconds:eval_2_22
         ~scan_seconds:fused_scan_1gib ())

(* ------------------------------------------------------------------ *)
(* E2: batching (§5.1)                                                 *)
(* ------------------------------------------------------------------ *)

let e2_batching () =
  section "E2" "request batching: latency vs throughput (§5.1)";
  Printf.printf
    "paper: batch 1 -> 0.51 s latency, 2 req/s;  batch 16 -> 2.6 s latency, 6 req/s\n\n";
  (* the amortisation is a memory-bandwidth effect: the batch shares one
     stream over the data, so the database must exceed the cache for the
     effect to be visible (the paper's shard is 1 GiB) *)
  let d = if fast then 13 else 15 in
  let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size:4096 in
  Lw_pir.Bucket_db.fill_random db (det "e2");
  let server = Lw_pir.Server.create db in
  Printf.printf "database: 2^%d buckets x 4 KiB = %d MiB\n\n" d
    (Lw_pir.Bucket_db.total_bytes db / 1048576);
  let batches = [ 1; 2; 4; 8; 16; 32 ] in
  row "%-8s %-14s %-16s %-16s %-12s\n" "batch" "latency" "per-request" "throughput" "speedup";
  let base = ref 0. in
  List.iter
    (fun n ->
      let keys =
        Array.init n (fun i ->
            fst (Lw_dpf.Dpf.gen ~domain_bits:d ~alpha:(i * 37 mod (1 lsl d)) (rng ())))
      in
      let m = Lightweb.Zltp_batch.measure server keys in
      if n = 1 then base := m.Lightweb.Zltp_batch.per_request_s;
      row "%-8d %9.2f ms %13.2f ms %10.1f req/s %9.2fx\n" n
        (1000. *. m.Lightweb.Zltp_batch.latency_s)
        (1000. *. m.Lightweb.Zltp_batch.per_request_s)
        m.Lightweb.Zltp_batch.throughput_rps
        (!base /. m.Lightweb.Zltp_batch.per_request_s))
    batches;
  Printf.printf
    "\nshape check: latency grows with batch size while per-request cost falls (the\n\
     batch shares one pass over the data). The paper's AVX scan is purely\n\
     memory-bound, so its amortisation (3x) is larger than pure OCaml's, where\n\
     per-query XOR compute still dominates; the direction matches.\n"

(* ------------------------------------------------------------------ *)
(* E3: communication (§5.1)                                            *)
(* ------------------------------------------------------------------ *)

let e3_communication () =
  section "E3" "communication per private-GET (§5.1)";
  Printf.printf "paper at d=22, 4 KiB buckets: 5.6 KiB up + 8 KiB down = 13.6 KiB per request\n\n";
  let bucket = 4096 in
  row "%-8s %-22s %-26s %-14s\n" "domain" "real keys (2 servers)" "paper formula (2 keys)" "download";
  List.iter
    (fun d ->
      let real = 2 * Lw_dpf.Dpf.serialized_size ~domain_bits:d ~value_len:0 in
      let paper = 2 * Lw_dpf.Dpf.paper_key_size ~domain_bits:d in
      row "%-8d %14d B %19d B (%4.1f KiB) %9d B\n" d real paper
        (float_of_int paper /. 1024.)
        (2 * bucket))
    [ 12; 16; 22; 26 ];
  (* measured on the wire: one end-to-end GET through the ZLTP stack *)
  let u = Lightweb.Universe.create ~name:"e3" Lightweb.Universe.default_geometry in
  ignore (Lightweb.Universe.claim_domain u ~publisher:"p" ~domain:"bench.example");
  ignore
    (Lightweb.Universe.push_data u ~publisher:"p" ~path:"bench.example/x"
       ~value:(Json.String "payload"));
  let d0, d1 = Lightweb.Universe.data_servers u in
  let e0, c0 = Lw_net.Endpoint.with_counters (Lightweb.Zltp_server.endpoint d0) in
  let e1, c1 = Lw_net.Endpoint.with_counters (Lightweb.Zltp_server.endpoint d1) in
  (match Lightweb.Zltp_client.connect ~rng:(rng ()) [ e0; e1 ] with
  | Ok client ->
      let base_up = c0.Lw_net.Endpoint.sent_bytes + c1.Lw_net.Endpoint.sent_bytes in
      let base_down = c0.Lw_net.Endpoint.recv_bytes + c1.Lw_net.Endpoint.recv_bytes in
      ignore (Lightweb.Zltp_client.get client "bench.example/x");
      let up = c0.Lw_net.Endpoint.sent_bytes + c1.Lw_net.Endpoint.sent_bytes - base_up in
      let down = c0.Lw_net.Endpoint.recv_bytes + c1.Lw_net.Endpoint.recv_bytes - base_down in
      Printf.printf
        "\nmeasured on the wire (this repo, d=%d, %d B buckets): %d B up + %d B down\n"
        Lightweb.Universe.default_geometry.Lightweb.Universe.data_domain_bits
        Lightweb.Universe.default_geometry.Lightweb.Universe.data_blob_size up down
  | Error e -> Printf.printf "wire measurement failed: %s\n" e);
  Printf.printf
    "\nnote: our real BGI16 keys are (16 B seed + 1 B ctrl)/level; the paper's \"(λ+2)d\"\n\
     arithmetic only reproduces its 5.6 KiB upload if read in bytes — the cost model\n\
     uses the paper formula for Table 2 fidelity and the real size for this repo.\n"

(* ------------------------------------------------------------------ *)
(* E4: Table 2                                                         *)
(* ------------------------------------------------------------------ *)

let print_table2 label shard =
  let open Lw_sim in
  Printf.printf "\n[%s: %.0f ms DPF + %.0f ms scan per 1 GiB shard]\n" label
    (1000. *. shard.Cost_model.dpf_seconds)
    (1000. *. shard.Cost_model.scan_seconds);
  row "%-11s %-10s %-8s %-10s %-8s %-10s %-12s %-10s\n" "Dataset" "Total" "#pages" "Avg page"
    "shards" "vCPU sec" "Request $" "Comm";
  List.iter
    (fun (profile, policy) ->
      let ds = Cost_model.of_profile profile in
      let e = Cost_model.estimate ~policy ds shard Cost_model.c5_large in
      row "%-11s %7.0fGiB %6.0fM %7.1fKiB %-8d %-10.0f $%-11.4f %.1f KiB\n" e.Cost_model.dataset
        (ds.Cost_model.total_bytes /. Corpus.gib)
        (ds.Cost_model.pages /. 1e6)
        (ds.Cost_model.avg_page_bytes /. 1024.)
        e.Cost_model.shards e.Cost_model.vcpu_seconds e.Cost_model.request_cost_usd
        e.Cost_model.total_comm_kib)
    [ (Corpus.c4, Cost_model.Storage_driven); (Corpus.wikipedia, Cost_model.Domain_driven) ]

(* The same Table-2 point priced under every deployment model the modes
   negotiate: the C1-C4 columns (compute, dollars, communication, latency
   floor) per Zltp_mode, so the paper's trade-off argument is one table. *)
let print_three_way label shard =
  let open Lw_sim in
  Printf.printf "\n[three-way deployment comparison: %s]\n" label;
  List.iter
    (fun (profile, policy) ->
      let ds = Cost_model.of_profile profile in
      Printf.printf "%s:\n" ds.Cost_model.name;
      List.iter
        (fun mc -> Format.printf "  %a\n" Cost_model.pp_mode_cost mc)
        (Cost_model.three_way ~policy ds shard Cost_model.c5_large);
      Format.print_flush ())
    [ (Corpus.c4, Cost_model.Storage_driven); (Corpus.wikipedia, Cost_model.Domain_driven) ]

let e4_table2 () =
  section "E4" "Table 2: estimated costs of running ZLTP on C4 and Wikipedia";
  Printf.printf
    "paper:    C4:        305 GiB, 360M pages, 0.9 KiB, 204 vCPU-s, $0.002,  15.9 KiB\n";
  Printf.printf
    "          Wikipedia:  21 GiB,  60M pages, 0.4 KiB,  10 vCPU-s, $0.0001, 14.9 KiB\n";
  print_table2 "paper's measured shard" Lw_sim.Cost_model.paper_shard;
  (match !measured with
  | Some shard -> print_table2 "this repo's measured shard (E1, pure OCaml)" shard
  | None -> ());
  Printf.printf
    "\nnote: the Wikipedia row matches the paper only under domain-driven sharding\n\
     (⌈60M/2^22⌉ = 15 shards -> 10.0 vCPU-s); storage-driven gives 21 shards / 14 vCPU-s.\n\
     The C4 row is storage-driven (305 shards). See EXPERIMENTS.md.\n";
  print_three_way "paper's measured shard" Lw_sim.Cost_model.paper_shard;
  Printf.printf
    "\nsingle re-shards at the LWE noise cap (2^%d pages/shard) and every shard answers\n\
     every query, so its C3 column is selection-vector-dominated; the per-epoch hint is\n\
     amortized across all clients and reported beside C3, not in it. enclave pays an\n\
     ORAM path on one trusted machine. E27 measures the Single column end to end.\n"
    Lw_pir.Spir.max_domain_bits

(* ------------------------------------------------------------------ *)
(* E5: §4 who pays                                                     *)
(* ------------------------------------------------------------------ *)

let e5_monthly_cost () =
  section "E5" "per-user monthly cost (§4)";
  let open Lw_sim in
  Printf.printf "paper: 50 pages/day x 5 GETs at 360M-page scale ~= $15/month\n\n";
  let e =
    Cost_model.estimate (Cost_model.of_profile Corpus.c4) Cost_model.paper_shard
      Cost_model.c5_large
  in
  let cost = e.Cost_model.request_cost_usd in
  row "%-34s %10s %14s\n" "user profile" "GETs/month" "monthly cost";
  List.iter
    (fun (label, (u : Cost_model.user_profile)) ->
      row "%-34s %10.0f %13.2f$\n" label (Workload.gets_per_month u)
        (Cost_model.monthly_user_cost u ~request_cost_usd:cost))
    [
      ("paper user (50 pages/day, 5 GETs)", Cost_model.paper_user);
      ("light reader (10 pages/day)", { Cost_model.pages_per_day = 10.; gets_per_page = 5 });
      ("heavy reader (150 pages/day)", { Cost_model.pages_per_day = 150.; gets_per_page = 5 });
      ("3 GETs/page universe", { Cost_model.pages_per_day = 50.; gets_per_page = 3 });
    ];
  (* cross-check with a generated browsing session: code fetches add a
     little on top of the 5-GET budget *)
  let visits = Workload.generate Workload.default_params (det "e5") in
  let data_gets = 5 * List.length visits in
  let code_gets = Workload.code_fetches visits in
  Printf.printf
    "\nworkload cross-check: %d visits -> %d data GETs + %d code fetches (%.1f%% overhead)\n"
    (List.length visits) data_gets code_gets
    (100. *. float_of_int code_gets /. float_of_int data_gets);
  Printf.printf
    "Google Fi comparison (§5.2): NYT homepage (22.4 MiB) = $%.3f; one 4 KiB blob = $%.6f\n"
    (Cost_model.fi_cost ~bytes:Cost_model.nytimes_homepage_bytes)
    (Cost_model.fi_cost ~bytes:4096.);
  Printf.printf
    "ZLTP 4 KiB private-GET = $%.4f, %.0fx the non-private transfer\n\
     (paper: $0.002 vs $0.000038, \"roughly two orders of magnitude\")\n"
    cost
    (cost /. Cost_model.fi_cost ~bytes:4096.)

(* ------------------------------------------------------------------ *)
(* E6: collisions and cuckoo hashing (§5.1)                            *)
(* ------------------------------------------------------------------ *)

let e6_collisions () =
  section "E6" "keyword collisions at capacity (§5.1) and the cuckoo alternative";
  Printf.printf
    "paper: 2^20 keys in a 2^22 domain -> new-key collision probability <= 1/4\n\n";
  let open Lw_pir in
  row "%-22s %-12s %-12s %-12s\n" "load (keys/domain)" "analytic" "monte carlo" "birthday(any)";
  List.iter
    (fun (keys_bits, domain_bits) ->
      let n = 1 lsl keys_bits in
      let analytic = Keymap.new_key_collision_probability ~n_keys:n ~domain_bits in
      let km = Keymap.create ~hash_key:(String.make 16 'e') ~domain_bits in
      let trials = if fast then 1500 else 6000 in
      let mc = Keymap.monte_carlo_new_key_collision km ~n_keys:n ~trials (det "e6") in
      row "2^%-2d in 2^%-11d %9.3f %12.3f %12.3f\n" keys_bits domain_bits analytic mc
        (Keymap.any_collision_probability ~n_keys:n ~domain_bits))
    [ (12, 16); (14, 16); (12, 14); (14, 17) ];
  Printf.printf "\npaper's point (2^20 in 2^22): analytic %.3f\n"
    (Keymap.new_key_collision_probability ~n_keys:(1 lsl 20) ~domain_bits:22);
  (* cuckoo: same load, publish failures vs stash. 2-choice cuckoo is
     reliable below its 50% load threshold, so compare at 45%. *)
  let domain_bits = 12 in
  let n = 45 * (1 lsl domain_bits) / 100 in
  let single = Store.create ~domain_bits ~bucket_size:64 () in
  let rejected = ref 0 in
  for i = 0 to n - 1 do
    match Store.insert single ~key:(Printf.sprintf "k%d" i) ~value:"v" with
    | Ok () -> ()
    | Error _ -> incr rejected
  done;
  let cuckoo = Cuckoo.create ~domain_bits ~bucket_size:64 () in
  for i = 0 to n - 1 do
    ignore (Cuckoo.insert cuckoo ~key:(Printf.sprintf "k%d" i) ~value:"v")
  done;
  Printf.printf
    "\nat 45%% load (2^%d domain, %d keys):\n\
    \  single-hash store: %d publish failures (%.1f%%) -> renames\n\
    \  cuckoo (2 probes/query): %d stored, stash=%d, 0 failures\n"
    domain_bits n !rejected
    (100. *. float_of_int !rejected /. float_of_int n)
    (Cuckoo.count cuckoo) (Cuckoo.stash_size cuckoo)

(* ------------------------------------------------------------------ *)
(* E7: distributed DPF evaluation (§5.2)                               *)
(* ------------------------------------------------------------------ *)

let e7_distributed () =
  section "E7" "distributing DPF evaluation across shards (§5.2)";
  Printf.printf
    "paper: the front-end expands the top of the tree; each shard pays only the\n\
     small-domain evaluation cost, so per-shard time is flat as the fleet grows.\n\n";
  let d = if fast then 12 else 14 in
  let bucket_size = 1024 in
  let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (det "e7");
  let flat = Lw_pir.Server.create db in
  let key, _ = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha:((1 lsl d) - 3) (rng ()) in
  let flat_s = time_median (fun () -> ignore (Lw_pir.Server.answer flat key)) in
  let flat_answer = Lw_pir.Server.answer flat key in
  row "%-10s %-10s %-16s %-18s %-10s\n" "shards" "split" "max shard time" "sum shard time" "correct";
  row "%-10s %-10s %13.2f ms %15.2f ms %-10s\n" "1 (flat)" "-" (1000. *. flat_s) (1000. *. flat_s)
    "ref";
  List.iter
    (fun shard_bits ->
      let fe = Lightweb.Zltp_frontend.of_db db ~shard_bits in
      let answer, timings = Lightweb.Zltp_frontend.answer_timed fe key in
      let per_shard =
        List.map
          (fun t -> t.Lightweb.Zltp_frontend.eval_s +. t.Lightweb.Zltp_frontend.scan_s)
          timings
      in
      let mx = List.fold_left Float.max 0. per_shard in
      let sum = List.fold_left ( +. ) 0. per_shard in
      row "%-10d %-10d %13.2f ms %15.2f ms %-10s\n" (1 lsl shard_bits) shard_bits (1000. *. mx)
        (1000. *. sum)
        (if String.equal answer flat_answer then "yes" else "NO!"))
    [ 1; 2; 3; 4 ];
  Printf.printf
    "\nmax-shard time (the fleet's critical path) drops ~2x per split level while the\n\
     total work stays ~flat: the paper's scale-out assumption holds.\n"

(* ------------------------------------------------------------------ *)
(* E8: PIR vs enclave mode (§2.2 ablation)                             *)
(* ------------------------------------------------------------------ *)

let e8_mode_ablation () =
  section "E8" "modes of operation: PIR linear scan vs enclave+ORAM polylog (§2.2)";
  let sizes = if fast then [ 8; 10; 12 ] else [ 8; 10; 12; 14 ] in
  row "%-10s %-18s %-18s %-16s %-14s\n" "N pairs" "PIR answer" "enclave get" "PIR buckets"
    "ORAM buckets";
  List.iter
    (fun d ->
      let n = 1 lsl d in
      let bucket_size = 256 in
      let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
      Lw_pir.Bucket_db.fill_random db (det "e8");
      let server = Lw_pir.Server.create db in
      let key, _ = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha:(n / 2) (rng ()) in
      let pir_s = time_median ~reps:3 (fun () -> ignore (Lw_pir.Server.answer server key)) in
      let enclave = Lw_oram.Enclave.create ~capacity:n ~value_size:64 () in
      for i = 0 to min 511 (n - 1) do
        ignore (Lw_oram.Enclave.put enclave ~key:(Printf.sprintf "k%d" i) ~value:"v")
      done;
      let enc_s =
        time_median ~reps:3 (fun () ->
            for i = 0 to 49 do
              ignore (Lw_oram.Enclave.get enclave (Printf.sprintf "k%d" (i mod 512)))
            done)
        /. 50.
      in
      row "2^%-8d %13.3f ms %15.4f ms %13d %13d\n" d (1000. *. pir_s) (1000. *. enc_s) n
        (4 * Lw_oram.Enclave.accesses_per_get enclave))
    sizes;
  Printf.printf
    "\nPIR cost grows linearly with N; enclave cost grows with log N (tree height).\n\
     The price: trusting the enclave vendor (§2.2 lists the attack literature).\n"

(* ------------------------------------------------------------------ *)
(* E9: looking forward (§5.2)                                          *)
(* ------------------------------------------------------------------ *)

let e9_projection () =
  section "E9" "cost projection: 16x per 5 years of compute deflation (§5.2)";
  let open Lw_sim in
  let e =
    Cost_model.estimate (Cost_model.of_profile Corpus.c4) Cost_model.paper_shard
      Cost_model.c5_large
  in
  let c0 = e.Cost_model.request_cost_usd in
  row "%-8s %-16s %-16s\n" "years" "request cost" "monthly user";
  List.iter
    (fun y ->
      let c = Cost_model.projected_cost ~years:(float_of_int y) c0 in
      row "%-8d $%-15.6f $%-15.3f\n" y c
        (Cost_model.monthly_user_cost Cost_model.paper_user ~request_cost_usd:c))
    [ 0; 5; 10; 15 ];
  Printf.printf
    "\npaper: \"in 5 years ... the dollar cost of a ZLTP request [could] drop by an\n\
     order of magnitude\" — at 16x/5yr the factor is %.0fx.\n"
    (c0 /. Cost_model.projected_cost ~years:5. c0)

(* ------------------------------------------------------------------ *)
(* E10: traffic analysis (§1 motivation)                               *)
(* ------------------------------------------------------------------ *)

let e10_traffic_analysis () =
  section "E10" "website fingerprinting: traditional web vs lightweb (§1)";
  let open Lw_sim in
  let labelled ~sites ~per_site ~seed ~traditional =
    let r = det seed in
    List.concat_map
      (fun site ->
        List.init per_site (fun i ->
            ( site,
              if traditional then Fingerprint.traditional_trace ~sites ~site r
              else Fingerprint.lightweb_trace ~code_fetch:(i = 0) r )))
      (List.init sites (fun s -> s))
  in
  row "%-14s %-8s %-12s %-12s %-10s\n" "traffic" "sites" "accuracy" "chance" "advantage";
  let bars = ref [] in
  List.iter
    (fun (name, traditional) ->
      List.iter
        (fun sites ->
          let train =
            labelled ~sites ~per_site:(if fast then 20 else 40) ~seed:"tr" ~traditional
          in
          let test = labelled ~sites ~per_site:10 ~seed:"te" ~traditional in
          let model = Fingerprint.train ~classes:sites train in
          let acc = Fingerprint.accuracy model test in
          let chance = Fingerprint.chance ~classes:sites in
          bars := (Printf.sprintf "%s/%d sites" name sites, 100. *. acc) :: !bars;
          row "%-14s %-8d %9.1f%% %10.1f%% %9.1fx\n" name sites (100. *. acc) (100. *. chance)
            (acc /. chance))
        [ 10; 25 ])
    [ ("traditional", true); ("lightweb", false) ];
  Printf.printf "\nclassifier accuracy (%%):\n%s" (Lw_util.Ascii_chart.bar ~unit_:"%" (List.rev !bars))

(* ------------------------------------------------------------------ *)
(* E11: PIR scheme ablation — DPF vs bit-vector vs trivial             *)
(* ------------------------------------------------------------------ *)

let e11_scheme_ablation () =
  section "E11" "ablation: DPF PIR vs bit-vector PIR vs trivial download";
  Printf.printf
    "why DPFs: same scan and download, logarithmic upload. (The paper's choice of\n\
     [12] over earlier 2-server schemes.)\n\n";
  let d = if fast then 10 else 12 in
  let bucket_size = 4096 in
  let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (det "e11");
  let server = Lw_pir.Server.create db in
  let index = (1 lsl d) / 3 in
  let dpf_key, _ = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha:index (rng ()) in
  let bv = Lw_pir.Bitvec_pir.query ~domain_bits:d ~index (rng ()) in
  let t_dpf = time_median (fun () -> ignore (Lw_pir.Server.answer server dpf_key)) in
  let t_bv = time_median (fun () -> ignore (Lw_pir.Bitvec_pir.answer db bv.Lw_pir.Bitvec_pir.q0)) in
  let t_triv = time_median (fun () -> ignore (Lw_pir.Baselines.trivial_fetch db index)) in
  let n = 1 lsl d in
  row "%-22s %-14s %-16s %-16s %-10s\n" "scheme" "server time" "upload" "download" "private";
  row "%-22s %9.2f ms %12d B %12d B %-10s\n" "two-server DPF" (1000. *. t_dpf)
    (2 * Lw_dpf.Dpf.serialized_size ~domain_bits:d ~value_len:0)
    (2 * bucket_size) "yes";
  row "%-22s %9.2f ms %12d B %12d B %-10s\n" "two-server bit-vector" (1000. *. t_bv)
    (2 * Lw_pir.Bitvec_pir.upload_bytes ~domain_bits:d)
    (2 * bucket_size) "yes";
  row "%-22s %9.2f ms %12d B %12d B %-10s\n" "trivial (download all)" (1000. *. t_triv) 0
    (n * bucket_size) "yes";
  row "%-22s %9.2f ms %12d B %12d B %-10s\n" "direct GET" 0.0 8 bucket_size "NO";
  (* at the paper's scale the gap is decisive *)
  Printf.printf
    "\nat the paper's d=22: DPF upload %d B vs bit-vector %d B per server (%.0fx)\n"
    (Lw_dpf.Dpf.serialized_size ~domain_bits:22 ~value_len:0)
    (Lw_pir.Bitvec_pir.upload_bytes ~domain_bits:22)
    (float_of_int (Lw_pir.Bitvec_pir.upload_bytes ~domain_bits:22)
    /. float_of_int (Lw_dpf.Dpf.serialized_size ~domain_bits:22 ~value_len:0))

(* ------------------------------------------------------------------ *)
(* E12: PRG ablation inside the DPF                                    *)
(* ------------------------------------------------------------------ *)

let e12_prg_ablation () =
  section "E12" "ablation: DPF PRG construction (AES-MMO vs reduced-round ChaCha)";
  Printf.printf
    "the paper's prototype uses AES-NI; in pure OCaml the trade-offs differ, which\n\
     is exactly what a cost model consumer needs to know.\n\n";
  let d = if fast then 10 else 12 in
  row "%-12s %-16s %-18s %-16s\n" "prg" "expand (1 node)" "eval_all 2^\u{2009}d" "keygen d=22";
  List.iter
    (fun prg ->
      let seed = Bytes.of_string (String.sub (Lw_crypto.Sha256.digest "e12") 0 16) in
      let out = Bytes.create 32 in
      let t_expand =
        time_median ~reps:5 (fun () ->
            for _ = 1 to 1000 do
              ignore (Lw_dpf.Prg.expand_into prg ~src:seed ~src_pos:0 ~dst:out ~dst_pos:0)
            done)
        /. 1000.
      in
      let key, _ = Lw_dpf.Dpf.gen ~prg ~domain_bits:d ~alpha:7 (rng ()) in
      let t_eval = time_median ~reps:3 (fun () -> Lw_dpf.Dpf.eval_all_bits key (fun _ _ -> ())) in
      let t_gen = time_median ~reps:3 (fun () -> ignore (Lw_dpf.Dpf.gen ~prg ~domain_bits:22 ~alpha:1 (rng ()))) in
      row "%-12s %11.0f ns %13.2f ms %12.3f ms\n" (Lw_dpf.Prg.name prg) (1e9 *. t_expand)
        (1000. *. t_eval) (1000. *. t_gen))
    [ Lw_dpf.Prg.Aes_mmo; Lw_dpf.Prg.Chacha 8; Lw_dpf.Prg.Chacha 12; Lw_dpf.Prg.Chacha 20 ]

(* ------------------------------------------------------------------ *)
(* E13: cover-traffic cost (closing the timing side channel)           *)
(* ------------------------------------------------------------------ *)

let e13_cover_traffic () =
  section "E13" "extension: constant-rate cover traffic vs the timing leak (§2.1 non-goal)";
  Printf.printf
    "ZLTP leaves request count/timing visible; a pacer closes that channel for a\n\
     dummy-traffic budget. Cost curve for a day of the paper-user's browsing:\n\n";
  let u = Lw_sim.Cost_model.paper_user in
  let horizon_s = 86400. in
  (* 50 pages spread over 16 active hours *)
  let det_rng = det "e13" in
  let visits =
    List.init (int_of_float u.Lw_sim.Cost_model.pages_per_day) (fun i ->
        (Lw_util.Det_rng.float det_rng (16. *. 3600.), Printf.sprintf "page-%d" i))
  in
  let e =
    Lw_sim.Cost_model.estimate
      (Lw_sim.Cost_model.of_profile Lw_sim.Corpus.c4)
      Lw_sim.Cost_model.paper_shard Lw_sim.Cost_model.c5_large
  in
  row "%-14s %-10s %-10s %-14s %-14s %-16s\n" "slot" "real" "dummies" "mean delay" "max delay"
    "monthly cost";
  List.iter
    (fun slot_s ->
      let schedule = Lightweb.Pacer.pace ~slot_s ~horizon_s visits in
      let st = Lightweb.Pacer.stats ~slot_s visits schedule in
      let monthly =
        float_of_int st.Lightweb.Pacer.slots *. 30.
        *. float_of_int u.Lw_sim.Cost_model.gets_per_page
        *. e.Lw_sim.Cost_model.request_cost_usd
      in
      row "%9.0f s   %-10d %-10d %10.1f s %11.1f s $%-15.2f\n" slot_s st.Lightweb.Pacer.real
        st.Lightweb.Pacer.dummies st.Lightweb.Pacer.mean_delay_s st.Lightweb.Pacer.max_delay_s
        monthly)
    [ 120.; 300.; 600.; 900. ];
  Printf.printf
    "\nperfect timing privacy at a 10-min slot costs ~%.1fx the unpadded bill — the\n\
     quantified version of the paper's \"even this leakage is modest\" discussion.\n\
     (slot rates must stay above the request rate or the queue saturates)\n"
    (86400. /. 600. *. 30. *. 5. *. e.Lw_sim.Cost_model.request_cost_usd
    /. Lw_sim.Cost_model.monthly_user_cost u
         ~request_cost_usd:e.Lw_sim.Cost_model.request_cost_usd)

(* ------------------------------------------------------------------ *)
(* E14: recursive ORAM overhead                                        *)
(* ------------------------------------------------------------------ *)

let e14_recursive_oram () =
  section "E14" "extension: recursive position map (real enclave memory budgets)";
  Printf.printf
    "flat Path ORAM needs O(N) private memory for the position map; recursion\n\
     trades that for one extra path per level.\n\n";
  row "%-10s %-10s %-14s %-14s %-16s\n" "N" "levels" "paths/access" "flat get" "recursive get";
  List.iter
    (fun cap_bits ->
      let n = 1 lsl cap_bits in
      let flat = Lw_oram.Path_oram.create ~capacity:n ~block_size:32 (rng ()) in
      let rec_o = Lw_oram.Recursive_oram.create ~top_threshold:16 ~capacity:n ~block_size:32 (rng ()) in
      for i = 0 to min 255 (n - 1) do
        Lw_oram.Path_oram.write flat i "x";
        Lw_oram.Recursive_oram.write rec_o i "x"
      done;
      let t_flat =
        time_median ~reps:3 (fun () ->
            for i = 0 to 49 do
              ignore (Lw_oram.Path_oram.read flat (i mod 256))
            done)
        /. 50.
      in
      let t_rec =
        time_median ~reps:3 (fun () ->
            for i = 0 to 49 do
              ignore (Lw_oram.Recursive_oram.read rec_o (i mod 256))
            done)
        /. 50.
      in
      row "2^%-8d %-10d %-14d %11.4f ms %13.4f ms\n" cap_bits
        (Lw_oram.Recursive_oram.levels rec_o)
        (Lw_oram.Recursive_oram.paths_per_access rec_o)
        (1000. *. t_flat) (1000. *. t_rec))
    (if fast then [ 8; 10 ] else [ 8; 10; 12 ])

(* ------------------------------------------------------------------ *)
(* E15: page-load latency at fleet scale (§5.2's caveat, quantified)    *)
(* ------------------------------------------------------------------ *)

let e15_latency () =
  section "E15" "page-load latency with stragglers and queueing (§5.2)";
  Printf.printf
    "paper: \"request latency ... is lower-bounded by 2.6 s ... but would likely be\n\
     higher due to network latency, front-end server latency, and data-server\n\
     stragglers.\" Monte-Carlo over the 305-shard fleet:\n\n";
  let open Lw_sim in
  row "%-34s %-10s %-10s %-10s %-10s\n" "scenario" "mean" "p50" "p95" "p99";
  let show label p ~code_fetch =
    let d = Latency_model.simulate ~samples:(if fast then 500 else 2000) p ~code_fetch (det "e15") in
    row "%-34s %7.2f s %7.2f s %7.2f s %7.2f s\n" label d.Latency_model.mean_s
      d.Latency_model.p50_s d.Latency_model.p95_s d.Latency_model.p99_s
  in
  show "warm cache, parallel GETs" Latency_model.paper_params ~code_fetch:false;
  show "cold cache (+ code fetch)" Latency_model.paper_params ~code_fetch:true;
  show "no stragglers (sigma=0)"
    { Latency_model.paper_params with Latency_model.straggler_sigma = 0. }
    ~code_fetch:false;
  show "heavy stragglers (sigma=0.5)"
    { Latency_model.paper_params with Latency_model.straggler_sigma = 0.5 }
    ~code_fetch:false;
  show "sequential GETs"
    { Latency_model.paper_params with Latency_model.parallel_gets = false }
    ~code_fetch:false;
  show "small fleet (15 shards, wiki)"
    { Latency_model.paper_params with Latency_model.shards = 15 }
    ~code_fetch:false;
  (* the "figure": the warm-cache page-load CDF *)
  let rng' = det "e15-cdf" in
  let samples =
    Array.init (if fast then 400 else 1500) (fun _ ->
        Latency_model.page_load Latency_model.paper_params ~code_fetch:false rng')
  in
  Printf.printf "\nwarm-cache page-load CDF (x in seconds):\n%s"
    (Lw_util.Ascii_chart.cdf ~width:60 ~height:10 samples);
  Printf.printf
    "\nthe 2.6 s floor is indeed the right order; the max-over-305-shards barrier\n\
     adds a straggler tail exactly as the paper anticipates.\n"

(* ------------------------------------------------------------------ *)
(* E16: private per-domain billing statistics (§4)                     *)
(* ------------------------------------------------------------------ *)

let e16_heavy_hitters () =
  section "E16" "private aggregate statistics for billing (§4)";
  Printf.printf
    "the CDN bills publishers by query volume without seeing queries: clients\n\
     submit incremental-DPF shares; two aggregation servers descend the prefix\n\
     tree on combined counts only.\n\n";
  let open Lw_sim in
  let d = if fast then 8 else 10 in
  let sites = 40 in
  let zipf = Zipf.create ~n:sites () in
  let hash = Lw_pir.Keymap.create ~hash_key:(String.make 16 'b') ~domain_bits:d in
  let r = det "e16" in
  let n_clients = if fast then 120 else 300 in
  let queries =
    List.init n_clients (fun _ ->
        Lw_pir.Keymap.index_of_key hash (Printf.sprintf "site-%d.example" (Zipf.sample zipf r)))
  in
  let crng = rng () in
  let t0 = Unix.gettimeofday () in
  let contributions =
    List.map (fun alpha -> Heavy_hitters.contribute ~domain_bits:d ~alpha crng) queries
  in
  let t1 = Unix.gettimeofday () in
  let threshold = Int64.of_int (n_clients / 20) in
  let hitters = Heavy_hitters.collect ~domain_bits:d ~threshold contributions in
  let t2 = Unix.gettimeofday () in
  let lv = Heavy_hitters.leaves ~domain_bits:d hitters in
  Printf.printf "%d clients, 2^%d key domain, threshold %Ld:\n" n_clients d threshold;
  row "%-14s %-10s\n" "domain hash" "queries";
  List.iter
    (fun h -> row "0x%-12x %-10Ld\n" h.Heavy_hitters.prefix h.Heavy_hitters.count)
    (List.sort (fun a b -> compare b.Heavy_hitters.count a.Heavy_hitters.count) lv);
  let truth = Hashtbl.create 16 in
  List.iter (fun q -> Hashtbl.replace truth q (1 + Option.value ~default:0 (Hashtbl.find_opt truth q))) queries;
  let exact =
    List.for_all
      (fun h -> Hashtbl.find_opt truth h.Heavy_hitters.prefix = Some (Int64.to_int h.Heavy_hitters.count))
      lv
  in
  Printf.printf
    "\ncounts exact: %b | keygen %.1f ms/client | descent %.0f ms total (%d prefixes kept)\n"
    exact
    (1000. *. (t1 -. t0) /. float_of_int n_clients)
    (1000. *. (t2 -. t1))
    (List.length hitters)

(* ------------------------------------------------------------------ *)
(* E17: the batch-queue operating curve (§5.1's batching, under load)  *)
(* ------------------------------------------------------------------ *)

let e17_queue () =
  section "E17" "batch-service queue: the §5.1 server under offered load";
  let open Lw_sim in
  let cap = Queue_sim.capacity_rps (Queue_sim.paper_server ~arrival_rps:1.) in
  Printf.printf
    "service model fitted to the paper's measurements (0.51 s unbatched, 2.67 s per\n\
     16-batch) -> capacity %.1f req/s, the paper's batch-16 throughput.\n\n"
    cap;
  row "%-12s %-12s %-12s %-12s %-12s %-12s\n" "load (rps)" "throughput" "p50 lat" "p95 lat"
    "batch fill" "state";
  let curve = ref [] in
  List.iter
    (fun rps ->
      let r = Queue_sim.run (Queue_sim.paper_server ~arrival_rps:rps) (det "e17") in
      if not r.Queue_sim.saturated then curve := (rps, r.Queue_sim.p50_latency_s) :: !curve;
      row "%-12.1f %8.2f rps %9.2f s %9.2f s %10.1f %-12s\n" rps r.Queue_sim.throughput_rps
        r.Queue_sim.p50_latency_s r.Queue_sim.p95_latency_s r.Queue_sim.mean_batch_fill
        (if r.Queue_sim.saturated then "SATURATED" else "stable"))
    [ 0.5; 1.; 2.; 3.; 4.; 5.; 5.5; 5.8; 7.; 10. ];
  Printf.printf "\np50 latency vs offered load (stable region):\n%s"
    (Lw_util.Ascii_chart.line ~width:60 ~height:10 ~x_label:"offered load (req/s)"
       ~y_label:"p50 latency (s)" (List.rev !curve));
  Printf.printf
    "\nthe classic batch-queue shape: a ~3 s latency floor from the batch window at\n\
     low load, graceful filling up to the %.1f req/s ceiling, then saturation —\n\
     matching the paper's latency/throughput trade-off discussion.\n"
    cap

(* ------------------------------------------------------------------ *)
(* E18: cost of the lw_analysis lint pass over the repo's own sources  *)
(* ------------------------------------------------------------------ *)

let e18_lint_cost () =
  section "E18" "lw_analysis lint pass: scan cost over the repo's own lib/";
  match Lw_analysis.Analyzer.resolve_dir "lib" with
  | None -> Printf.printf "lib/ sources not reachable from cwd; skipping.\n"
  | Some lib ->
      let reps = if fast then 1 else 3 in
      let best = ref None in
      for _ = 1 to reps do
        let r = Lw_analysis.Analyzer.scan_paths [ lib ] in
        match !best with
        | Some (b : Lw_analysis.Report.t) when b.elapsed_s <= r.elapsed_s -> ()
        | _ -> best := Some r
      done;
      let r = Option.get !best in
      row "%-20s %8d\n" "files scanned" r.Lw_analysis.Report.files_scanned;
      row "%-20s %8d\n" "findings" (List.length r.findings);
      row "%-20s %8d\n" "suppressed" r.suppressed;
      row "%-20s %8.1f ms (best of %d)\n" "wall-clock" (1000. *. r.elapsed_s) reps;
      Printf.printf "\njson: %s\n"
        (Lw_json.Json.to_string (Lw_analysis.Report.to_json r))

(* ------------------------------------------------------------------ *)
(* E19: fused single-pass answer kernel + bit-packed batching          *)
(* ------------------------------------------------------------------ *)

(* Machine noise on shared hardware swings memory bandwidth between
   runs, so old/new pairs are timed interleaved — every repetition times
   each contender once, back to back — and the best repetition of each
   is reported. The comparison is the seed's two-pass path (eval_bits
   into a full-domain buffer, then the masked scalar scan) against the
   production kernels: the fused blocked single pass behind
   [Server.answer] and the bit-packed batch scan behind
   [Server.answer_batch]. *)
let best_interleaved reps fs =
  let best = Array.make (Array.length fs) infinity in
  for _ = 1 to reps do
    Array.iteri
      (fun i f ->
        let t = snd (time_once f) in
        if t < best.(i) then best.(i) <- t)
      fs
  done;
  best

let e19_scan_kernels ?(write_json = true) ?geometry () =
  section "E19" "fused single-pass answer kernel + bit-packed batching";
  let d, bucket_size, reps =
    match geometry with
    | Some g -> g
    | None -> if fast then (10, 1024, 3) else (12, 8192, 5)
  in
  let widths = [ 1; 4; 8; 16 ] in
  let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (det "e19");
  let server = Lw_pir.Server.create db in
  let drbg = rng () in
  let keys =
    Array.init (List.fold_left max 1 widths) (fun i ->
        let alpha = (i * 37) land ((1 lsl d) - 1) in
        let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha drbg in
        if i land 1 = 0 then k0 else k1)
  in
  let db_mb = float_of_int (Lw_pir.Bucket_db.total_bytes db) /. 1048576. in
  let two_pass k = ignore (Lw_pir.Server.scan server (Lw_pir.Server.eval_bits server k)) in
  row "geometry: 2^%d buckets x %d B = %.0f MiB, best of %d interleaved reps\n\n" d
    bucket_size db_mb reps;

  (* single query: two-pass reference vs fused one-pass *)
  let t = best_interleaved reps [| (fun () -> two_pass keys.(0));
                                   (fun () -> ignore (Lw_pir.Server.answer server keys.(0))) |] in
  let old_s = t.(0) and fused_s = t.(1) in
  row "%-22s %10s %14s %10s\n" "single query" "time" "scan rate" "speedup";
  row "%-22s %7.2f ms %9.0f MB/s %10s\n" "two-pass reference" (1000. *. old_s) (db_mb /. old_s) "1.00x";
  row "%-22s %7.2f ms %9.0f MB/s %9.2fx\n" "fused one-pass" (1000. *. fused_s)
    (db_mb /. fused_s) (old_s /. fused_s);

  (* batches: naive per-query two-pass loop vs bit-packed batched scan *)
  row "\n%-8s %-14s %-14s %-18s %-10s\n" "width" "naive loop" "batched" "effective rate" "speedup";
  let batch_rows =
    List.map
      (fun w ->
        let ks = Array.sub keys 0 w in
        let t =
          best_interleaved reps
            [| (fun () -> Array.iter two_pass ks);
               (fun () -> ignore (Lw_pir.Server.answer_batch server ks)) |]
        in
        let naive_s = t.(0) and batched_s = t.(1) in
        let eff = db_mb *. float_of_int w /. batched_s in
        row "%-8d %9.2f ms %9.2f ms %12.0f MB/s %8.2fx\n" w (1000. *. naive_s)
          (1000. *. batched_s) eff (naive_s /. batched_s);
        (w, naive_s, batched_s, eff))
      widths
  in
  Printf.printf
    "\nthe fused kernel streams each database block as its DPF leaf bits are produced\n\
     (no full-domain bits buffer); batching packs 8 queries' bits per byte and feeds\n\
     8 accumulators from one streamed pass. Effective rate = width x DB size / time.\n";
  if write_json then begin
    let open Json in
    let j =
      Obj
        [
          ("experiment", String "E19");
          ("machine", machine_meta ());
          ("domain_bits", Number (float_of_int d));
          ("bucket_size", Number (float_of_int bucket_size));
          ("db_mib", Number db_mb);
          ("reps", Number (float_of_int reps));
          ( "single",
            Obj
              [
                ("two_pass_ms", Number (1000. *. old_s));
                ("fused_ms", Number (1000. *. fused_s));
                ("two_pass_mb_s", Number (db_mb /. old_s));
                ("fused_mb_s", Number (db_mb /. fused_s));
                ("fused_speedup", Number (old_s /. fused_s));
              ] );
          ( "batch",
            List
              (List.map
                 (fun (w, naive_s, batched_s, eff) ->
                   Obj
                     [
                       ("width", Number (float_of_int w));
                       ("naive_ms", Number (1000. *. naive_s));
                       ("batched_ms", Number (1000. *. batched_s));
                       ("effective_mb_s", Number eff);
                       ("speedup", Number (naive_s /. batched_s));
                     ])
                 batch_rows) );
        ]
    in
    let oc = open_out "BENCH_scan.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_scan.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E20: retry-induced tail latency under fault injection (PR3)          *)
(* ------------------------------------------------------------------ *)

(* Everything runs on ONE virtual clock: an endpoint wrapper charges a
   nominal RTT per successful reply and a full receive-timeout when the
   fault schedule swallows one, and the same clock drives the client's
   backoff sleeps. Per-op latency is then simply the clock delta around
   the private-GET — deterministic, seed-replayable, and finished in
   milliseconds of real time even for thousands of simulated seconds. *)
let e20_chaos_tail_latency ?(write_json = true) () =
  section "E20" "retry tail latency under injected faults (virtual time)";
  let domain_bits = 8 and bucket_size = 256 and shard_bits = 2 in
  let ops = if fast then 200 else 1000 in
  let rtt_s = 0.030 and timeout_s = 0.250 in
  let db = Lw_pir.Bucket_db.create ~domain_bits ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (det "e20-db");
  let policy =
    {
      Lightweb.Zltp_client.attempts = 4;
      base_backoff_s = 0.05;
      max_backoff_s = 1.0;
      deadline_s = 30.0;
    }
  in
  let charge_latency clock (ep : Lw_net.Endpoint.t) =
    {
      ep with
      Lw_net.Endpoint.recv =
        (fun () ->
          match ep.Lw_net.Endpoint.recv () with
          | msg ->
              Lw_obs.Clock.sleep clock rtt_s;
              msg
          | exception Lw_net.Endpoint.Timeout ->
              Lw_obs.Clock.sleep clock timeout_s;
              raise Lw_net.Endpoint.Timeout);
    }
  in
  (* [dead_first] prepends a permanently unreachable replica to role 0,
     so every dial walks past it — the kill-one-replica failover run *)
  let run_world ~label ~rate ~dead_first =
    let clock = Lw_obs.Clock.virtual_ () in
    let dials = Array.make_matrix 2 2 0 in
    let mk_replica role i =
      Lightweb.Zltp_client.replica
        ~name:(Printf.sprintf "r%d-%d" role i)
        (fun () ->
          let d = dials.(role).(i) in
          dials.(role).(i) <- d + 1;
          let fe = Lightweb.Zltp_frontend.of_db db ~shard_bits in
          let srv =
            Lightweb.Zltp_server.create ~blob_size:bucket_size
              (Lightweb.Zltp_backend.sharded fe)
          in
          let sched =
            if rate = 0.0 then Lw_net.Faulty.none
            else
              Lw_net.Faulty.bernoulli
                ~seed:(Printf.sprintf "e20-%s/r%d-%d/d%d" label role i d)
                ~rate
          in
          let faulty, _ = Lw_net.Faulty.wrap ~clock sched (Lightweb.Zltp_server.endpoint srv) in
          Ok (charge_latency clock faulty))
    in
    let dead =
      Lightweb.Zltp_client.replica ~name:"r0-dead" (fun () -> Error "connection refused")
    in
    let role0 = List.init 2 (mk_replica 0) in
    let roles = [ (if dead_first then dead :: role0 else role0); List.init 2 (mk_replica 1) ] in
    match
      Lightweb.Zltp_client.connect_replicated ~policy ~clock
        ~rng:(Lw_crypto.Drbg.create ~seed:("e20-" ^ label))
        roles
    with
    | Error e -> failwith (Printf.sprintf "E20 %s: connect failed: %s" label e)
    | Ok client ->
        let lat = Array.make ops 0.0 in
        let errors = ref 0 in
        for i = 0 to ops - 1 do
          let idx = (i * 37 + 11) mod (1 lsl domain_bits) in
          let t0 = Lw_obs.Clock.now clock in
          (match Lightweb.Zltp_client.get_raw_index client idx with
          | Ok b -> assert (String.equal b (Lw_pir.Bucket_db.get db idx))
          | Error _ -> incr errors);
          lat.(i) <- (Lw_obs.Clock.now clock -. t0) *. 1000.
        done;
        let retries = Lightweb.Zltp_client.retries client in
        let failovers = Lightweb.Zltp_client.failovers client in
        Lightweb.Zltp_client.close client;
        Array.iter (fun x -> assert (Float.is_finite x)) lat;
        let p q = Lw_util.Stats.percentile lat q in
        row "%-12s %6.1f%% faults %8.1f ms p50 %8.1f ms p99 %5d retries %3d failovers %3d errors\n"
          label (100. *. rate) (p 50.) (p 99.) retries failovers !errors;
        ( label,
          rate,
          [
            ("rate", Json.Number rate);
            ("ops", Json.Number (float_of_int ops));
            ("p50_ms", Json.Number (p 50.));
            ("p99_ms", Json.Number (p 99.));
            ("mean_ms", Json.Number (Lw_util.Stats.mean lat));
            ("retries", Json.Number (float_of_int retries));
            ("failovers", Json.Number (float_of_int failovers));
            ("errors", Json.Number (float_of_int !errors));
          ] )
  in
  Printf.printf "(%d ops/run, rtt %.0f ms, recv timeout %.0f ms, virtual time)\n\n" ops
    (1000. *. rtt_s) (1000. *. timeout_s);
  let r0 = run_world ~label:"fault-0pct" ~rate:0.0 ~dead_first:false in
  let r1 = run_world ~label:"fault-1pct" ~rate:0.01 ~dead_first:false in
  let r5 = run_world ~label:"fault-5pct" ~rate:0.05 ~dead_first:false in
  let rates = [ r0; r1; r5 ] in
  let kill = run_world ~label:"kill-replica" ~rate:0.01 ~dead_first:true in
  Printf.printf
    "\nfault-free p99 is one RTT; each injected fault adds a timeout plus backoff, so\n\
     the p99/p50 gap is the paper's tail-latency cost of self-healing. kill-replica\n\
     shows failover past a dead replica completing every operation.\n";
  if write_json then begin
    let open Json in
    let entry (label, _, fields) = (label, Obj fields) in
    let j =
      Obj
        ([
           ("experiment", String "E20");
           ("machine", machine_meta ());
           ("ops_per_run", Number (float_of_int ops));
           ("rtt_ms", Number (1000. *. rtt_s));
           ("recv_timeout_ms", Number (1000. *. timeout_s));
           ("attempts", Number (float_of_int policy.Lightweb.Zltp_client.attempts));
         ]
        @ List.map entry rates
        @ [ entry kill ])
    in
    let oc = open_out "BENCH_chaos.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_chaos.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E21: observability overhead on the fused scan (lw_obs)              *)
(* ------------------------------------------------------------------ *)

(* The contenders are the same production kernels with metric recording
   globally disabled vs enabled, interleaved per repetition exactly like
   E19. With recording disabled every metric op collapses to one atomic
   read, so the "off" side reproduces the PR 2 fused numbers
   (BENCH_scan.json) and the on/off delta is precisely what the
   instrumentation — two counter bumps per answer plus the per-shard
   histogram path — costs. The budget is <2%. *)
let e21_obs_overhead ?(write_json = true) ?geometry () =
  section "E21" "observability overhead on the fused scan (lw_obs)";
  let d, bucket_size, reps =
    match geometry with
    | Some g -> g
    | None -> if fast then (10, 1024, 3) else (12, 8192, 5)
  in
  let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (det "e21");
  let server = Lw_pir.Server.create db in
  let drbg = rng () in
  let keys =
    Array.init 8 (fun i ->
        let alpha = (i * 53) land ((1 lsl d) - 1) in
        let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha drbg in
        if i land 1 = 0 then k0 else k1)
  in
  let db_mb = float_of_int (Lw_pir.Bucket_db.total_bytes db) /. 1048576. in
  let off f () =
    Lw_obs.Metrics.set_enabled false;
    f ();
    Lw_obs.Metrics.set_enabled true
  in
  (* the delta under test is ~ns of atomic ops against ms of scan, far
     below single-shot jitter on shared hardware — so each timed sample
     amortises enough answers to span tens of milliseconds, calibrated
     per kernel, and we take more reps than E19 uses *)
  let reps = 2 * reps - 1 in
  let sample_target_s = if fast then 0.05 else 0.08 in
  let repeat n f () =
    for _ = 1 to n do
      f ()
    done
  in
  let single () = ignore (Lw_pir.Server.answer server keys.(0)) in
  let batch () = ignore (Lw_pir.Server.answer_batch server keys) in
  (* warmup: bring the database and code paths into cache before timing *)
  single ();
  batch ();
  row "geometry: 2^%d buckets x %d B = %.0f MiB, %d paired reps, ~%.0f ms samples\n\n" d
    bucket_size db_mb reps (1000. *. sample_target_s);
  let overhead s_off s_on = 100. *. (s_on -. s_off) /. s_off in
  let report label w s_off s_on =
    let mb = db_mb *. float_of_int w in
    row "%-22s %9.2f ms off %9.2f ms on %9.0f / %-6.0f MB/s %+6.2f%%\n" label
      (1000. *. s_off) (1000. *. s_on) (mb /. s_off) (mb /. s_on)
      (overhead s_off s_on)
  in
  (* drift-robust estimator: each rep times off/on/on/off back to back
     and yields one paired ratio, so slow throughput drift (turbo,
     noisy neighbours) cancels within the rep; the overhead is the
     median ratio and the on-side time is derived from it, keeping the
     reported numbers mutually consistent *)
  let median a =
    let s = Array.copy a in
    Array.sort Float.compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))
  in
  let pair one =
    let t1 = Float.max 1e-6 (snd (time_once one)) in
    let inner = max 3 (int_of_float (Float.ceil (sample_target_s /. t1))) in
    let f = repeat inner one in
    let per x = x /. float_of_int inner in
    let offs = Array.make reps 0. and ratios = Array.make reps 0. in
    for r = 0 to reps - 1 do
      (* alternate ABBA / BAAB so the rep-boundary slot (GC, cache
         refill from between-rep work) is charged to each side equally *)
      let t () = snd (time_once f) and t_off () = snd (time_once (off f)) in
      let o, n =
        if r land 1 = 0 then begin
          let o1 = t_off () in
          let n1 = t () in
          let n2 = t () in
          let o2 = t_off () in
          (o1 +. o2, n1 +. n2)
        end
        else begin
          let n1 = t () in
          let o1 = t_off () in
          let o2 = t_off () in
          let n2 = t () in
          (o1 +. o2, n1 +. n2)
        end
      in
      offs.(r) <- o /. 2.;
      ratios.(r) <- n /. o
    done;
    let s_off = per (median offs) in
    (s_off, s_off *. median ratios)
  in
  let single_off, single_on = pair single in
  report "fused single query" 1 single_off single_on;
  let batch_off, batch_on = pair batch in
  report "bit-packed batch (w=8)" 8 batch_off batch_on;
  Lw_obs.Metrics.set_enabled true;
  let answers =
    Lw_obs.Metrics.counter_value (Lw_obs.Metrics.counter "pir.server.answers")
  in
  let scan_bytes =
    Lw_obs.Metrics.counter_value (Lw_obs.Metrics.counter "pir.server.scan_bytes")
  in
  row "\nlive registry after this experiment: pir.server.answers=%d scan_bytes=%d\n"
    answers scan_bytes;
  let within = overhead single_off single_on <= 2.0 in
  row "single-query overhead %+0.2f%% — %s the <2%% budget\n"
    (overhead single_off single_on)
    (if within then "within" else "OVER");
  if write_json then begin
    let open Json in
    let entry w s_off s_on =
      let mb = db_mb *. float_of_int w in
      Obj
        [
          ("metrics_off_ms", Number (1000. *. s_off));
          ("metrics_on_ms", Number (1000. *. s_on));
          ("metrics_off_mb_s", Number (mb /. s_off));
          ("metrics_on_mb_s", Number (mb /. s_on));
          ("overhead_pct", Number (overhead s_off s_on));
          ("within_2pct", Bool (overhead s_off s_on <= 2.0));
        ]
    in
    let j =
      Obj
        [
          ("experiment", String "E21");
          ("machine", machine_meta ());
          ("domain_bits", Number (float_of_int d));
          ("bucket_size", Number (float_of_int bucket_size));
          ("db_mib", Number db_mb);
          ("reps", Number (float_of_int reps));
          ("single", entry 1 single_off single_on);
          ("batch8", entry 8 batch_off batch_on);
          ("counters_after",
           Obj
             [
               ("pir_server_answers", Number (float_of_int answers));
               ("pir_server_scan_bytes", Number (float_of_int scan_bytes));
             ]);
        ]
    in
    let oc = open_out "BENCH_obs.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_obs.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E22: publisher updates while serving (epoch-versioned store)        *)
(* ------------------------------------------------------------------ *)

(* The epoch engine's two promises, measured. (1) Sealing a low-churn
   epoch copies only its dirty copy-on-write blocks: at 1% churn the
   publish must cost <5% of a full database copy, which is what makes
   continuous publishing affordable (the cost model's update-bandwidth
   term predicts the same ratio analytically — both are printed). (2)
   Query latency holds while a publisher seals epochs underneath the
   readers, because every answer pins an immutable snapshot instead of
   locking the store: p99 with a concurrent sealer must stay within
   1.5x the quiet baseline. *)
let e22_store_updates ?(write_json = true) () =
  section "E22" "publisher updates while serving (epoch-versioned store)";
  let domain_bits, bucket_size = if fast then (10, 1024) else (12, 4096) in
  let size = 1 lsl domain_bits in
  (* Block size is the CoW-granularity knob: with uniform churn c a
     block of b buckets is dirtied with probability 1-(1-c)^b, so the
     publish cost only stays proportional to churn while c·b << 1.
     Serve-side cost is unaffected — the scan kernels split bucket runs
     at block boundaries whatever the block size — so E22 runs the
     engine at 4 buckets/block, the regime a churn-sensitive deployment
     would pick, rather than the 256 KiB streaming default. *)
  let st = Lw_store.create ~block_bytes:(4 * bucket_size) ~domain_bits ~bucket_size () in
  let fill = Lw_store.writer st in
  let r0 = det "e22-fill" in
  for i = 0 to size - 1 do
    Lw_store.Writer.set fill i (Lw_util.Det_rng.bytes r0 bucket_size)
  done;
  ignore (Lw_store.Writer.seal fill);
  let total = Lw_store.total_bytes st in
  let db_mb = float_of_int total /. 1048576. in
  row "geometry: 2^%d buckets x %d B = %.1f MiB, %d B CoW blocks (%d buckets/block)\n\n"
    domain_bits bucket_size db_mb (Lw_store.block_bytes st) (Lw_store.block_buckets st);
  (* --- CoW publish cost vs churn --- *)
  let ds =
    {
      Lw_sim.Cost_model.name = "bench";
      total_bytes = float_of_int total;
      pages = float_of_int size;
      avg_page_bytes = float_of_int bucket_size;
    }
  in
  row "%-8s %-10s %-12s %-12s %-12s %-12s %-10s\n" "churn" "mutations" "dirty blocks"
    "cow bytes" "measured" "predicted" "seal ms";
  let gen = ref 0 in
  let churn_rows =
    List.map
      (fun churn ->
        incr gen;
        let n_mut = max 1 (int_of_float (Float.round (churn *. float_of_int size))) in
        let r = det (Printf.sprintf "e22-churn-%d" !gen) in
        let w = Lw_store.writer st in
        let (dirty, cow), seal_s =
          time_once (fun () ->
              for _ = 1 to n_mut do
                let i = Lw_util.Det_rng.int r size in
                Lw_store.Writer.set w i (Lw_util.Det_rng.bytes r bucket_size)
              done;
              let dirty = Lw_store.Writer.dirty_blocks w in
              let cow = Lw_store.Writer.cow_bytes w in
              ignore (Lw_store.Writer.seal w);
              (dirty, cow))
        in
        let ratio = float_of_int cow /. float_of_int total in
        let model =
          Lw_sim.Cost_model.update_estimate ~bucket_bytes:bucket_size
            ~block_bytes:(Lw_store.block_bytes st) ~churn ds
        in
        row "%-8.3f %-10d %-12d %-12d %11.2f%% %11.2f%% %8.2f\n" churn n_mut dirty cow
          (100. *. ratio)
          (100. *. model.Lw_sim.Cost_model.cow_ratio)
          (1000. *. seal_s);
        (churn, n_mut, dirty, cow, ratio, model.Lw_sim.Cost_model.cow_ratio, seal_s))
      [ 0.001; 0.01; 0.1 ]
  in
  let ratio_at_1pct =
    List.find_map (fun (c, _, _, _, r, _, _) -> if c = 0.01 then Some r else None) churn_rows
    |> Option.value ~default:1.
  in
  let cow_ok = ratio_at_1pct < 0.05 in
  row "\n1%% churn seals %.2f%% of the database — %s the <5%% budget\n"
    (100. *. ratio_at_1pct)
    (if cow_ok then "within" else "OVER");
  (* --- serving latency under concurrent sealing --- *)
  let answers = if fast then 400 else 600 in
  let drbg = rng () in
  let keys =
    Array.init 16 (fun i ->
        let alpha = (i * 37) land (size - 1) in
        fst (Lw_dpf.Dpf.gen ~domain_bits ~alpha drbg))
  in
  let measure ~updating =
    let stop = Atomic.make false in
    let sealed = Atomic.make 0 in
    let sealer =
      if not updating then None
      else
        Some
          (Domain.spawn (fun () ->
               let r = det "e22-sealer" in
               let n_mut = max 1 (size / 100) in
               (* pre-generate payloads: the cost under test is the
                  engine's CoW + seal, not the RNG's allocation rate *)
               let payloads =
                 Array.init 8 (fun _ -> Lw_util.Det_rng.bytes r bucket_size)
               in
               let g = ref 0 in
               while not (Atomic.get stop) do
                 let w = Lw_store.writer st in
                 for _ = 1 to n_mut do
                   incr g;
                   let i = Lw_util.Det_rng.int r size in
                   Lw_store.Writer.set w i payloads.(!g land 7)
                 done;
                 ignore (Lw_store.Writer.seal w);
                 Atomic.incr sealed;
                 (* a paced publisher, not a tight seal loop: epochs land
                    every couple of ms, several per measured answer run *)
                 Unix.sleepf 0.002
               done))
    in
    let lat = Array.make answers 0. in
    for i = 0 to answers - 1 do
      let t0 = Unix.gettimeofday () in
      let snap = Lw_store.pin_latest st in
      Fun.protect
        ~finally:(fun () -> Lw_store.unpin st snap)
        (fun () ->
          let srv = Lw_pir.Server.of_snapshot snap in
          ignore (Lw_pir.Server.answer srv keys.(i land 15)));
      lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
    done;
    Atomic.set stop true;
    Option.iter Domain.join sealer;
    let p q = Lw_util.Stats.percentile lat q in
    (p 50., p 99., Atomic.get sealed)
  in
  (* warmup both code paths before timing *)
  ignore (measure ~updating:false);
  Gc.major ();
  let base_p50, base_p99, _ = measure ~updating:false in
  Gc.major ();
  let upd_p50, upd_p99, sealed = measure ~updating:true in
  let p99_ratio = if base_p99 > 0. then upd_p99 /. base_p99 else 1. in
  let lat_ok = p99_ratio <= 1.5 in
  row "\n%-26s %10s %10s\n" "" "p50 ms" "p99 ms";
  row "%-26s %10.2f %10.2f\n" "quiet baseline" base_p50 base_p99;
  row "%-26s %10.2f %10.2f   (%d epochs sealed concurrently)\n" "1%-churn sealer running"
    upd_p50 upd_p99 sealed;
  row "p99 under updates is %.2fx baseline — %s the 1.5x budget\n" p99_ratio
    (if lat_ok then "within" else "OVER");
  row "epochs now live: [%s] (keep window + pins)\n"
    (String.concat "; " (List.map string_of_int (Lw_store.live_epochs st)));
  if write_json then begin
    let open Json in
    let j =
      Obj
        [
          ("experiment", String "E22");
          ("machine", machine_meta ());
          ("domain_bits", Number (float_of_int domain_bits));
          ("bucket_size", Number (float_of_int bucket_size));
          ("db_mib", Number db_mb);
          ("block_bytes", Number (float_of_int (Lw_store.block_bytes st)));
          ( "churn",
            List
              (List.map
                 (fun (churn, n_mut, dirty, cow, ratio, model_ratio, seal_s) ->
                   Obj
                     [
                       ("churn", Number churn);
                       ("mutations", Number (float_of_int n_mut));
                       ("dirty_blocks", Number (float_of_int dirty));
                       ("cow_bytes", Number (float_of_int cow));
                       ("cow_ratio", Number ratio);
                       ("model_ratio", Number model_ratio);
                       ("seal_ms", Number (1000. *. seal_s));
                     ])
                 churn_rows) );
          ("cow_ratio_at_1pct", Number ratio_at_1pct);
          ("cow_within_5pct", Bool cow_ok);
          ( "serving",
            Obj
              [
                ("answers", Number (float_of_int answers));
                ("baseline_p50_ms", Number base_p50);
                ("baseline_p99_ms", Number base_p99);
                ("updating_p50_ms", Number upd_p50);
                ("updating_p99_ms", Number upd_p99);
                ("epochs_sealed", Number (float_of_int sealed));
                ("p99_ratio", Number p99_ratio);
                ("within_1_5x", Bool lat_ok);
              ] );
        ]
    in
    let oc = open_out "BENCH_store.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_store.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E23: the full static pass — lexer rules plus the AST taint, race    *)
(* and balance analyses — over lib/ bin/ bench/, checked against the   *)
(* committed baseline and a 10 s wall-clock budget. This is the cost   *)
(* every CI run and every `dune build @lint` pays.                     *)
(* ------------------------------------------------------------------ *)

let e23_full_lint ?(write_json = true) () =
  section "E23" "full AST lint (taint + race + balance) over lib/ bin/ bench/";
  let roots =
    List.filter_map Lw_analysis.Analyzer.resolve_dir [ "lib"; "bin"; "bench" ]
  in
  if roots = [] then Printf.printf "sources not reachable from cwd; skipping.\n"
  else begin
    let reps = if fast then 1 else 3 in
    let best = ref None in
    for _ = 1 to reps do
      let r = Lw_analysis.Analyzer.scan_paths roots in
      match !best with
      | Some (b : Lw_analysis.Report.t) when b.elapsed_s <= r.elapsed_s -> ()
      | _ -> best := Some r
    done;
    let r = Option.get !best in
    let baseline =
      match Lw_analysis.Analyzer.resolve_file "lint_baseline.txt" with
      | Some f -> Lw_analysis.Baseline.load f
      | None -> []
    in
    let fresh, accepted = Lw_analysis.Baseline.apply baseline r.findings in
    let budget_ms = 10_000. in
    let elapsed_ms = 1000. *. r.elapsed_s in
    let within = elapsed_ms < budget_ms in
    row "%-20s %8d (over %d root dirs)\n" "files scanned"
      r.Lw_analysis.Report.files_scanned (List.length roots);
    row "%-20s %8d\n" "findings" (List.length r.findings);
    row "%-20s %8d\n" "fresh vs baseline" (List.length fresh);
    row "%-20s %8d\n" "baselined" accepted;
    row "%-20s %8d\n" "suppressed" r.suppressed;
    row "%-20s %8.1f ms (best of %d) — %s the %.0f s budget\n" "wall-clock"
      elapsed_ms reps
      (if within then "within" else "OVER")
      (budget_ms /. 1000.);
    if write_json then begin
      let open Json in
      let j =
        Obj
          [
            ("experiment", String "E23");
            ("machine", machine_meta ());
            ("files", Number (float_of_int r.files_scanned));
            ("findings", Number (float_of_int (List.length r.findings)));
            ("fresh", Number (float_of_int (List.length fresh)));
            ("baselined", Number (float_of_int accepted));
            ("suppressed", Number (float_of_int r.suppressed));
            ("elapsed_ms", Number elapsed_ms);
            ("budget_ms", Number budget_ms);
            ("within_budget", Bool within);
          ]
      in
      let oc = open_out "BENCH_lint.json" in
      output_string oc (to_string ~pretty:true j);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote BENCH_lint.json\n"
    end
  end

(* ------------------------------------------------------------------ *)
(* E24: fleet-scale serving — multi-core scans + closed-loop fleet sim *)
(* ------------------------------------------------------------------ *)

(* Two claims, measured. (1) Scan scaling: partitioning one shard's fused
   scan across OCaml domains leaves the answer bit-identical while the
   critical path — the slowest partition, timed on the deterministic
   serial schedule [answer_partitioned_timed] — shrinks near-linearly.
   The wall clock only follows where the machine actually has cores, so
   both are reported and the JSON carries the core count; compare
   wall-clock numbers across checkouts only with matching "machine"
   stanzas. (2) Fleet behaviour: [Fleet_sim] stands up a real sharded
   frontend, replays a Zipf page mix as a Poisson stream, and reports
   measured p50/p99 sojourn vs offered load next to the three models the
   repo already has (Queue_sim's fitted service law, Latency_model's
   straggler tail, Cost_model's Table-2 arithmetic). *)
let e24_fleet ?(write_json = true) ?(smoke = false) () =
  section "E24" "fleet-scale serving: domain-parallel scan + closed-loop shard fleet";
  let cores = Domain.recommended_domain_count () in
  (* ---- part 1: domain-partitioned scan scaling on one shard -------- *)
  let d, bucket_size, reps =
    if smoke then (9, 64, 1) else if fast then (11, 512, 3) else (12, 1024, 5)
  in
  let db = Lw_pir.Bucket_db.create ~domain_bits:d ~bucket_size in
  Lw_pir.Bucket_db.fill_random db (det "e24-db");
  let server = Lw_pir.Server.create db in
  let key, _ = Lw_dpf.Dpf.gen ~domain_bits:d ~alpha:(1 lsl (d - 1)) (rng ()) in
  let db_mb = float_of_int (Lw_pir.Bucket_db.total_bytes db) /. 1048576. in
  let expect = Lw_pir.Server.answer server key in
  let serial_s = time_median ~reps (fun () -> ignore (Lw_pir.Server.answer server key)) in
  row "scan shard: 2^%d buckets x %d B = %.2f MiB; %d core(s) on this machine\n" d
    bucket_size db_mb cores;
  row "serial fused answer: %.2f ms (%.0f MB/s)\n\n" (1000. *. serial_s) (db_mb /. serial_s);
  row "%-8s %12s %14s %16s %18s\n" "domains" "wall" "wall speedup" "crit-path"
    "crit-path speedup";
  let scaling_rows =
    List.map
      (fun nd ->
        let run_wall () =
          Lw_pir.Server.answer_domains ~cutoff_bytes:0 ~domains:nd server key
        in
        if not (String.equal (run_wall ()) expect) then
          failwith "E24: answer_domains disagrees with the serial answer";
        let wall_s = time_median ~reps (fun () -> ignore (run_wall ())) in
        (* critical path = slowest partition of an [nd]-way split on the
           deterministic serial schedule: the wall clock a machine with
           [nd] free cores would show, minus spawn/join overhead *)
        let cp_s =
          if nd = 1 then serial_s
          else begin
            let best = ref infinity in
            for _ = 1 to reps do
              let out, times =
                Lw_pir.Server.answer_partitioned_timed ~partitions:nd server key
              in
              (* bench harness validates/times key-derived answers; the
                 driver holds both DPF shares by design *)
              (* lw-lint: allow taint lines=4 *)
              if not (String.equal out expect) then
                failwith "E24: answer_partitioned disagrees with the serial answer";
              let slowest = Array.fold_left Float.max 0. times in
              if slowest < !best then best := slowest
            done;
            !best
          end
        in
        row "%-8d %9.2f ms %13.2fx %13.2f ms %17.2fx\n" nd (1000. *. wall_s)
          (serial_s /. wall_s) (1000. *. cp_s) (serial_s /. cp_s);
        (nd, wall_s, cp_s))
      [ 1; 2; 4; 8 ]
  in
  let cp8_speedup =
    (* lw-lint: allow taint lines=1 *)
    match List.rev scaling_rows with (_, _, cp8) :: _ -> serial_s /. cp8 | [] -> 0.
  in
  row "\ncritical-path speedup at 8 domains: %.2fx (target >= 3x)\n" cp8_speedup;
  (* ---- part 2: closed-loop fleet simulation ------------------------ *)
  let open Lw_sim in
  let fleets =
    if smoke then [ ("16-shard smoke", Fleet_sim.smoke) ]
    else if fast then [ ("64-shard", Fleet_sim.default) ]
    else
      [
        ("64-shard", Fleet_sim.default);
        ("256-shard", { Fleet_sim.default with shard_bits = 8; seed = "fleet-256" });
      ]
  in
  let results =
    List.map
      (fun (label, (p : Fleet_sim.params)) ->
        row "\nfleet %s: closed loop, batch %d, load points [%s]\n" label
          p.Fleet_sim.batch_size
          (String.concat "; "
             (List.map (Printf.sprintf "%.2f") p.Fleet_sim.load_fractions));
        let r = Fleet_sim.run ~progress:(fun s -> row "  %s\n" s) p in
        row "  %d shards, %.2f MiB total database\n" r.Fleet_sim.shards
          (float_of_int r.Fleet_sim.db_bytes /. 1048576.);
        row "  batch service: mean %.2f ms, p99 %.2f ms -> capacity %.1f req/s\n"
          (1000. *. r.Fleet_sim.service_batch_mean_s)
          (1000. *. r.Fleet_sim.service_batch_p99_s)
          r.Fleet_sim.capacity_rps;
        row "  single key: flat fan-out %.2f ms, tree %.2f ms (depth %d, %d nodes)\n"
          (1000. *. r.Fleet_sim.direct_single_s)
          (1000. *. r.Fleet_sim.tree_single_s)
          r.Fleet_sim.tree_depth r.Fleet_sim.tree_nodes;
        row "  %-6s %10s %10s %10s %6s %7s %12s %12s\n" "load" "offered/s" "p50"
          "p99" "util" "L=λW" "qmodel p50" "qmodel p95";
        List.iter
          (fun (pt : Fleet_sim.point) ->
            row "  %-6.2f %10.1f %7.2f ms %7.2f ms %5.0f%% %7.2f %9.2f ms %9.2f ms\n"
              pt.Fleet_sim.fraction pt.Fleet_sim.offered_rps
              (1000. *. pt.Fleet_sim.p50_s)
              (1000. *. pt.Fleet_sim.p99_s)
              (100. *. pt.Fleet_sim.utilization)
              pt.Fleet_sim.littles_lambda_w
              (1000. *. pt.Fleet_sim.queue_model_p50_s)
              (1000. *. pt.Fleet_sim.queue_model_p95_s))
          r.Fleet_sim.points;
        let m = r.Fleet_sim.model in
        row
          "  Table-2 check: model %d shards, %.2f ms/request, floor %.2f ms/batch,\n\
          \    $%.6f/request; measured batch %.2f ms -> floor ratio %.2f\n"
          m.Fleet_sim.model_shards
          (1000. *. m.Fleet_sim.model_request_s)
          (1000. *. m.Fleet_sim.model_latency_floor_s)
          m.Fleet_sim.model_request_cost_usd
          (1000. *. m.Fleet_sim.measured_batch_service_s)
          m.Fleet_sim.floor_ratio;
        let tm = r.Fleet_sim.tail_model in
        row "  straggler tail model (sigma %.2f): p50 %.2f ms, p99 %.2f ms\n"
          p.Fleet_sim.straggler_sigma
          (1000. *. tm.Latency_model.p50_s)
          (1000. *. tm.Latency_model.p99_s);
        row
          "  SPIR probe: hint %.2f ms/epoch, answer %.2f ms -> mul-acc/XOR ratio %.1fx;\n\
          \    three-way at this geometry (Single seeded from the measured ratio):\n"
          (1000. *. r.Fleet_sim.spir_hint_s)
          (1000. *. r.Fleet_sim.spir_answer_s)
          r.Fleet_sim.spir_scan_ratio;
        List.iter
          (fun mc -> Format.printf "    %a\n" Lw_sim.Cost_model.pp_mode_cost mc)
          r.Fleet_sim.three_way;
        Format.print_flush ();
        (label, p, r))
      fleets
  in
  Printf.printf
    "\na floor ratio < 1 means the bit-packed batch kernel amortises the scan across\n\
     the batch, beating the Table-2 batch x request floor; the Little's-law column\n\
     (L = λW vs time-average N) is a bookkeeping cross-check on the event loop.\n";
  if write_json then begin
    let open Json in
    let scaling_json =
      List
        (List.map
           (fun (nd, wall_s, cp_s) ->
             Obj
               [
                 ("domains", Number (float_of_int nd));
                 ("wall_ms", Number (1000. *. wall_s));
                 ("wall_speedup", Number (serial_s /. wall_s));
                 ("critical_path_ms", Number (1000. *. cp_s));
                 ("critical_path_speedup", Number (serial_s /. cp_s));
               ])
           scaling_rows)
    in
    let point_json (pt : Fleet_sim.point) =
      Obj
        [
          ("load_fraction", Number pt.Fleet_sim.fraction);
          ("offered_rps", Number pt.Fleet_sim.offered_rps);
          ("offered", Number (float_of_int pt.Fleet_sim.offered));
          ("served", Number (float_of_int pt.Fleet_sim.served));
          ("mean_sojourn_ms", Number (1000. *. pt.Fleet_sim.mean_sojourn_s));
          ("p50_ms", Number (1000. *. pt.Fleet_sim.p50_s));
          ("p99_ms", Number (1000. *. pt.Fleet_sim.p99_s));
          ("mean_batch_fill", Number pt.Fleet_sim.mean_batch_fill);
          ("utilization", Number pt.Fleet_sim.utilization);
          ("mean_in_system", Number pt.Fleet_sim.mean_in_system);
          ("littles_lambda_w", Number pt.Fleet_sim.littles_lambda_w);
          ("queue_model_p50_ms", Number (1000. *. pt.Fleet_sim.queue_model_p50_s));
          ("queue_model_p95_ms", Number (1000. *. pt.Fleet_sim.queue_model_p95_s));
        ]
    in
    let fleet_json (label, (p : Fleet_sim.params), (r : Fleet_sim.result)) =
      let m = r.Fleet_sim.model in
      let h = r.Fleet_sim.fleet_hist in
      let tm = r.Fleet_sim.tail_model in
      Obj
        [
          ("label", String label);
          ("shards", Number (float_of_int r.Fleet_sim.shards));
          ("scan_domains", Number (float_of_int p.Fleet_sim.scan_domains));
          ("batch_size", Number (float_of_int p.Fleet_sim.batch_size));
          ("db_bytes", Number (float_of_int r.Fleet_sim.db_bytes));
          ("service_batch_mean_ms", Number (1000. *. r.Fleet_sim.service_batch_mean_s));
          ("service_batch_p99_ms", Number (1000. *. r.Fleet_sim.service_batch_p99_s));
          ("fitted_scan_ms", Number (1000. *. r.Fleet_sim.fitted_scan_s));
          ("fitted_per_request_ms", Number (1000. *. r.Fleet_sim.fitted_per_request_s));
          ("capacity_rps", Number r.Fleet_sim.capacity_rps);
          ("direct_single_ms", Number (1000. *. r.Fleet_sim.direct_single_s));
          ("tree_single_ms", Number (1000. *. r.Fleet_sim.tree_single_s));
          ("tree_depth", Number (float_of_int r.Fleet_sim.tree_depth));
          ("tree_nodes", Number (float_of_int r.Fleet_sim.tree_nodes));
          ("points", List (List.map point_json r.Fleet_sim.points));
          ( "shard_hist",
            Obj
              [
                ("count", Number (float_of_int h.Lw_obs.Metrics.count));
                ("p50_ms", Number (1000. *. h.Lw_obs.Metrics.p50));
                ("p95_ms", Number (1000. *. h.Lw_obs.Metrics.p95));
                ("p99_ms", Number (1000. *. h.Lw_obs.Metrics.p99));
                ("max_ms", Number (1000. *. h.Lw_obs.Metrics.max));
              ] );
          ( "tail_model",
            Obj
              [
                ("p50_ms", Number (1000. *. tm.Latency_model.p50_s));
                ("p99_ms", Number (1000. *. tm.Latency_model.p99_s));
              ] );
          ( "cost_model",
            Obj
              [
                ("model_shards", Number (float_of_int m.Fleet_sim.model_shards));
                ("model_request_ms", Number (1000. *. m.Fleet_sim.model_request_s));
                ( "model_latency_floor_ms",
                  Number (1000. *. m.Fleet_sim.model_latency_floor_s) );
                ("model_vcpu_s", Number m.Fleet_sim.model_vcpu_s);
                ("model_request_cost_usd", Number m.Fleet_sim.model_request_cost_usd);
                ( "measured_batch_service_ms",
                  Number (1000. *. m.Fleet_sim.measured_batch_service_s) );
                ("measured_capacity_rps", Number m.Fleet_sim.measured_capacity_rps);
                ("floor_ratio", Number m.Fleet_sim.floor_ratio);
              ] );
          ( "spir_probe",
            Obj
              [
                ("hint_ms", Number (1000. *. r.Fleet_sim.spir_hint_s));
                ("answer_ms", Number (1000. *. r.Fleet_sim.spir_answer_s));
                ("scan_ratio", Number r.Fleet_sim.spir_scan_ratio);
              ] );
          ( "three_way",
            List
              (List.map
                 (fun mc ->
                   Obj
                     [
                       ("mode", String (Lightweb.Zltp_mode.name mc.Lw_sim.Cost_model.mode));
                       ("servers", Number (float_of_int mc.Lw_sim.Cost_model.mc_servers));
                       ("shards", Number (float_of_int mc.Lw_sim.Cost_model.mc_shards));
                       ("vcpu_seconds", Number mc.Lw_sim.Cost_model.mc_vcpu_seconds);
                       ("request_cost_usd", Number mc.Lw_sim.Cost_model.mc_request_cost_usd);
                       ("upload_kib", Number mc.Lw_sim.Cost_model.mc_upload_kib);
                       ("download_kib", Number mc.Lw_sim.Cost_model.mc_download_kib);
                       ("latency_floor_s", Number mc.Lw_sim.Cost_model.mc_latency_floor_s);
                       ("hint_mib_per_epoch", Number mc.Lw_sim.Cost_model.mc_hint_mib_per_epoch);
                     ])
                 r.Fleet_sim.three_way) );
        ]
    in
    let j =
      Obj
        [
          ("experiment", String "E24");
          ("machine", machine_meta ());
          ( "scan_scaling",
            Obj
              [
                ("domain_bits", Number (float_of_int d));
                ("bucket_size", Number (float_of_int bucket_size));
                ("db_mib", Number db_mb);
                ("serial_fused_ms", Number (1000. *. serial_s));
                ("rows", scaling_json);
                ("critical_path_speedup_at_8", Number cp8_speedup);
                ("meets_3x_target", Bool (cp8_speedup >= 3.0));
              ] );
          ("fleets", List (List.map fleet_json results));
        ]
    in
    let oc = open_out "BENCH_fleet.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_fleet.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E25: supervised multi-process fleet                                 *)
(* ------------------------------------------------------------------ *)

(* E24 simulates the fleet; E25 runs it for real: lw_cluster spawns the
   shards as OS processes (this very binary, re-execed), a PIR client
   reads over loopback TCP, epochs roll out live, and a shard takes a
   real SIGKILL mid-run. Reported: quiet vs during-rollout client
   latency (the cost of live updates), and MTTR for the kill —
   death-detected to caught-up-and-activated, from the supervisor's
   [lw_cluster.mttr_seconds] histogram. Wall-clock, not virtual time:
   process spawn, waitpid and restart backoff are the phenomena. *)
let e25_cluster ?(write_json = true) ?(smoke = false) () =
  section "E25" "multi-process fleet: live rollout latency + kill -9 recovery";
  let module Sup = Lw_cluster.Supervisor in
  let module Metrics = Lw_obs.Metrics in
  let shards, domain_bits, bucket_size, rollouts, reads =
    if smoke then (4, 6, 256, 1, 64)
    else if fast then (4, 8, 512, 3, 200)
    else (8, 9, 1024, 5, 400)
  in
  let n_buckets = 1 lsl domain_bits in
  let state_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lw_cluster_bench_%d" (Unix.getpid ()))
  in
  let cfg =
    {
      (Sup.default_config ~state_dir ()) with
      Sup.shards;
      domain_bits;
      bucket_size;
      ctl_timeout_s = 2.0;
      health_period_s = 0.2;
      health_timeout_s = 0.5;
    }
  in
  Printf.printf "(%d shard processes, 2^%d buckets x %d B, %d rollouts, %d reads/phase)\n\n"
    shards domain_bits bucket_size rollouts reads;
  let sup = Sup.start cfg in
  Fun.protect ~finally:(fun () -> Sup.shutdown sup) @@ fun () ->
  let muts epoch =
    List.init n_buckets (fun i ->
        (i, String.init bucket_size (fun k -> Char.chr (((epoch * 31) + (i * 7) + k) land 0xff))))
  in
  let publish () =
    match Sup.publish sup (muts (Sup.fleet_epoch sup + 1)) with
    | Sup.Rolled_out { epoch; _ } -> epoch
    | Sup.Rolled_back { reason; _ } -> failwith ("E25 rollout failed: " ^ reason)
  in
  let e1 = publish () in
  if not (Sup.await_fleet sup ~epoch:e1) then failwith "E25: fleet never converged on seed";
  let client =
    match Lightweb.Zltp_client.connect_replicated (Sup.replicas sup) with
    | Ok c -> c
    | Error e -> failwith ("E25 client connect: " ^ e)
  in
  Fun.protect ~finally:(fun () -> Lightweb.Zltp_client.close client) @@ fun () ->
  let read_phase label n =
    let lat = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let idx = ((i * 37) + 11) mod n_buckets in
      let t0 = Unix.gettimeofday () in
      (match Lightweb.Zltp_client.get_raw_index client idx with
      | Ok _ -> ()
      | Error e -> failwith (Printf.sprintf "E25 %s read %d: %s" label i e));
      lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
    done;
    lat
  in
  (* phase 1: quiet fleet *)
  let quiet = read_phase "quiet" reads in
  (* phase 2: the same reads while a publisher thread rolls epochs *)
  let publisher =
    Thread.create
      (fun () ->
        for _ = 1 to rollouts do
          ignore (publish ());
          Thread.delay 0.02
        done)
      ()
  in
  let busy = read_phase "during-rollout" reads in
  Thread.join publisher;
  (* phase 3: SIGKILL a shard, time the fleet back to convergence *)
  let epoch_now = Sup.activated_epoch sup in
  let mttr_h = Metrics.histogram "lw_cluster.mttr_seconds" in
  let mttr_before = Metrics.hist_count mttr_h in
  let t_kill = Unix.gettimeofday () in
  Sup.kill sup 0;
  if not (Sup.await_states ~deadline_s:5. sup 0 [ Sup.Down; Sup.Starting ]) then
    failwith "E25: SIGKILL never noticed";
  if not (Sup.await_fleet ~deadline_s:15. sup ~epoch:epoch_now) then
    failwith "E25: fleet never recovered from SIGKILL";
  let recovery_wall_s = Unix.gettimeofday () -. t_kill in
  if Metrics.hist_count mttr_h <= mttr_before then failwith "E25: no MTTR sample recorded";
  let mttr_s = Metrics.hist_max mttr_h in
  let after = read_phase "post-recovery" (min reads 64) in
  ignore after;
  let view = Sup.scrape sup in
  let p a q = Lw_util.Stats.percentile a q in
  let inflation = p busy 99. /. Float.max (p quiet 99.) 1e-9 in
  row "%-16s %8.2f ms p50 %8.2f ms p99\n" "quiet" (p quiet 50.) (p quiet 99.);
  row "%-16s %8.2f ms p50 %8.2f ms p99   (p99 inflation %.2fx)\n" "during-rollout"
    (p busy 50.) (p busy 99.) inflation;
  row "%-16s %8.0f ms MTTR (supervisor) %8.0f ms wall-to-convergence\n" "kill -9 shard 0"
    (1000. *. mttr_s) (1000. *. recovery_wall_s);
  row "%-16s %d restarts, %d rollouts, %d shard refreshes across %d processes\n" "fleet totals"
    (Lw_cluster.Fleet_view.counter view "lw_cluster.restarts_total")
    (Lw_cluster.Fleet_view.counter view "lw_cluster.rollouts_total")
    (Lw_cluster.Fleet_view.counter view "lw_cluster.shard.refreshes_total")
    (Lw_cluster.Fleet_view.sources view);
  Printf.printf
    "\nlive rollouts cost at most a modest p99 inflation (epoch pinning keeps in-flight\n\
     queries on the old snapshot), and a SIGKILLed shard rejoins from its manifest and\n\
     diff catch-up well inside the 2 s recovery budget.\n";
  if mttr_s >= 2.0 then Printf.printf "WARNING: MTTR %.2f s exceeds the 2 s budget\n" mttr_s;
  if write_json then begin
    let open Json in
    let j =
      Obj
        [
          ("experiment", String "E25");
          ("machine", machine_meta ());
          ("shards", Number (float_of_int shards));
          ("domain_bits", Number (float_of_int domain_bits));
          ("bucket_size", Number (float_of_int bucket_size));
          ("rollouts", Number (float_of_int rollouts));
          ("reads_per_phase", Number (float_of_int reads));
          ( "quiet",
            Obj [ ("p50_ms", Number (p quiet 50.)); ("p99_ms", Number (p quiet 99.)) ] );
          ( "during_rollout",
            Obj
              [
                ("p50_ms", Number (p busy 50.));
                ("p99_ms", Number (p busy 99.));
                ("p99_inflation", Number inflation);
              ] );
          ( "kill_recovery",
            Obj
              [
                ("mttr_s", Number mttr_s);
                ("wall_to_convergence_s", Number recovery_wall_s);
                ("meets_2s_budget", Bool (mttr_s < 2.0));
              ] );
          ( "fleet_totals",
            Obj
              [
                ( "restarts",
                  Number
                    (float_of_int (Lw_cluster.Fleet_view.counter view "lw_cluster.restarts_total"))
                );
                ( "rollouts",
                  Number
                    (float_of_int (Lw_cluster.Fleet_view.counter view "lw_cluster.rollouts_total"))
                );
                ( "shard_refreshes",
                  Number
                    (float_of_int
                       (Lw_cluster.Fleet_view.counter view "lw_cluster.shard.refreshes_total")) );
                ("processes_scraped", Number (float_of_int (Lw_cluster.Fleet_view.sources view)));
              ] );
          ("client_failovers", Number (float_of_int (Lightweb.Zltp_client.failovers client)));
        ]
    in
    let oc = open_out "BENCH_cluster.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_cluster.json\n"
  end

(* ------------------------------------------------------------------ *)

let e26_keyword ?(write_json = true) ?(smoke = false) () =
  section "E26" "keyword GET vs index GET: the wire-v4 two-probe verb, end to end";
  let sites, n_pages, ops, clusters, k =
    if smoke then (4, 48, 24, 8, 3)
    else if fast then (8, 160, 96, 16, 4)
    else (12, 320, 192, 24, 5)
  in
  (* Deployment point: the paper's serving regime is scan-dominated
     (§5.1: 103 ms scan vs 64 ms DPF per GiB shard), which is exactly
     where the width-2 shared-scan kernel pays off — so the keyword
     store is sized with large buckets over a modest domain (16 MiB
     total, like-for-like with the data store) rather than a tiny
     eval-dominated geometry that would under-credit the shared pass. *)
  let geometry =
    {
      Lightweb.Universe.default_geometry with
      Lightweb.Universe.data_blob_size = (if smoke then 8192 else 16384);
      data_domain_bits = (if smoke then 8 else 10);
    }
  in
  (* a small-page synthetic corpus published through the real universe:
     every page lands in both the data store (single-probe path GET) and
     the cuckoo keyword store (two-probe keyword GET) *)
  let profile =
    {
      Lw_sim.Corpus.name = "e26-synthetic";
      total_bytes = float_of_int n_pages *. 160.;
      pages = float_of_int n_pages;
      avg_page_bytes = 160.;
    }
  in
  let corpus = Lw_sim.Corpus.generate ~sites ~sigma:0.4 profile ~n_pages (det "e26-corpus") in
  let u = Lightweb.Universe.create ~name:"e26" geometry in
  Array.iter
    (fun site ->
      match Lightweb.Universe.claim_domain u ~publisher:"bench" ~domain:site with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "E26 claim %s: %s" site e))
    corpus.Lw_sim.Corpus.sites;
  let published = ref [] and skipped = ref 0 in
  Array.iter
    (fun (pg : Lw_sim.Corpus.page) ->
      match
        Lightweb.Universe.push_data u ~publisher:"bench" ~path:pg.Lw_sim.Corpus.path
          ~value:(Json.String pg.Lw_sim.Corpus.body)
      with
      | Ok () -> published := pg.Lw_sim.Corpus.path :: !published
      | Error _ -> incr skipped (* index collision at bench density: skip, count *))
    corpus.Lw_sim.Corpus.pages;
  ignore (Lightweb.Universe.publish_updates u);
  let paths = Array.of_list (List.rev !published) in
  if Array.length paths = 0 then failwith "E26: nothing published";
  let kw_store = Lightweb.Universe.keyword_store u in
  Printf.printf "(%d pages published, %d skipped; cuckoo load %.2f, stash %d; %d ops/path)\n\n"
    (Array.length paths) !skipped
    (Lw_pir.Kw_store.load_factor kw_store)
    (Lw_pir.Kw_store.stash_size kw_store)
    ops;
  let connect label (s0, s1) =
    match
      Lightweb.Zltp_client.connect
        [ Lightweb.Zltp_server.endpoint s0; Lightweb.Zltp_server.endpoint s1 ]
    with
    | Ok c -> c
    | Error e -> failwith (Printf.sprintf "E26 connect %s: %s" label e)
  in
  let data_client = connect "data" (Lightweb.Universe.data_servers u) in
  let kw_client = connect "keyword" (Lightweb.Universe.keyword_servers u) in
  Fun.protect ~finally:(fun () ->
      Lightweb.Zltp_client.close data_client;
      Lightweb.Zltp_client.close kw_client)
  @@ fun () ->
  (* the oracle: for EVERY published path, the keyword GET must return
     byte-identical content to the single-probe path GET *)
  Array.iter
    (fun path ->
      let via label r =
        match r with
        | Ok (Some v) -> v
        | Ok None -> failwith (Printf.sprintf "E26 %s GET lost %s" label path)
        | Error e -> failwith (Printf.sprintf "E26 %s GET %s: %s" label path e)
      in
      let by_path = via "path" (Lightweb.Zltp_client.get data_client path) in
      let by_keyword = via "keyword" (Lightweb.Zltp_client.keyword_get kw_client path) in
      if not (String.equal by_path by_keyword) then
        failwith (Printf.sprintf "E26: keyword GET diverged from path GET at %s" path))
    paths;
  row "%-24s all %d published keys byte-identical to path GET\n" "oracle" (Array.length paths);
  (* latency: the same Zipf-free round-robin mix through both verbs.
     The two verbs are timed INTERLEAVED (index, keyword, keyword,
     index, ...) so machine drift, GC pacing and cache warmth hit both
     distributions equally — a back-to-back A-then-B loop biases the
     ratio whichever way the machine wanders between the two loops. *)
  let index_lat = Array.make ops 0.0 in
  let kw_lat = Array.make ops 0.0 in
  let timed f path =
    let t0 = Unix.gettimeofday () in
    (match f path with
    | Ok (Some _) -> ()
    | Ok None -> failwith (Printf.sprintf "E26: missing record for %s" path)
    | Error e -> failwith (Printf.sprintf "E26: %s" e));
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  (* warm both paths before the measured window *)
  for i = 0 to 7 do
    let path = paths.(i mod Array.length paths) in
    ignore (timed (Lightweb.Zltp_client.get data_client) path);
    ignore (timed (Lightweb.Zltp_client.keyword_get kw_client) path)
  done;
  Gc.major ();
  for i = 0 to ops - 1 do
    let path = paths.(((i * 7) + 3) mod Array.length paths) in
    if i land 1 = 0 then begin
      index_lat.(i) <- timed (Lightweb.Zltp_client.get data_client) path;
      kw_lat.(i) <- timed (Lightweb.Zltp_client.keyword_get kw_client) path
    end
    else begin
      kw_lat.(i) <- timed (Lightweb.Zltp_client.keyword_get kw_client) path;
      index_lat.(i) <- timed (Lightweb.Zltp_client.get data_client) path
    end
  done;
  let p a q = Lw_util.Stats.percentile a q in
  let p50_ratio = p kw_lat 50. /. Float.max (p index_lat 50.) 1e-9 in
  row "%-24s %8.3f ms p50 %8.3f ms p99\n" "index GET (1 probe)" (p index_lat 50.)
    (p index_lat 99.);
  row "%-24s %8.3f ms p50 %8.3f ms p99   (p50 ratio %.2fx, budget 1.5x)\n"
    "keyword GET (2 probes)" (p kw_lat 50.) (p kw_lat 99.) p50_ratio;
  (* the 1.5x budget describes the scan-dominated full geometry; the
     tiny smoke database is fixed-cost-dominated (two DPF evals + double
     wire framing against a near-free scan), so only the full run warns *)
  if (not smoke) && p50_ratio > 1.5 then
    Printf.printf "WARNING: keyword p50 exceeds the 1.5x single-GET budget\n";
  (* correlated cluster retrieval: Retrieval's feature-hash buckets served
     as one keyword_get_batch per query — the PIR-RAG traffic family *)
  let retr = Lw_sim.Retrieval.build ~clusters corpus in
  let bursts = if smoke then 8 else 24 in
  let burst_lat = Array.make bursts 0.0 in
  let fetched = ref 0 in
  for i = 0 to bursts - 1 do
    let query = paths.((i * 13) mod Array.length paths) in
    let members =
      (* retrieval is over the corpus; keep only keys that survived publish *)
      List.filter
        (fun m -> Array.exists (String.equal m) paths)
        (Lw_sim.Retrieval.retrieve retr ~query ~k)
    in
    let members = if members = [] then [ query ] else members in
    let t0 = Unix.gettimeofday () in
    (match Lightweb.Zltp_client.keyword_get_batch kw_client members with
    | Ok vs ->
        List.iter2
          (fun m v ->
            match v with
            | Some _ -> incr fetched
            | None -> failwith (Printf.sprintf "E26: cluster member %s lost" m))
          members vs
    | Error e -> failwith (Printf.sprintf "E26 cluster batch: %s" e));
    burst_lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
  done;
  row "%-24s %8.3f ms p50 %8.3f ms p99   (%d bursts, %d members, %d clusters used)\n"
    (Printf.sprintf "cluster retrieve (k=%d)" k)
    (p burst_lat 50.) (p burst_lat 99.) bursts !fetched
    (Lw_sim.Retrieval.non_empty retr);
  (* the cost-model keyword column at the paper's Table-2 point *)
  let kwe =
    Lw_sim.Cost_model.keyword_estimate
      (Lw_sim.Cost_model.of_profile Lw_sim.Corpus.c4)
      Lw_sim.Cost_model.paper_shard Lw_sim.Cost_model.c5_large
  in
  Format.printf "%a\n" Lw_sim.Cost_model.pp_keyword kwe;
  Printf.printf
    "\nthe two cuckoo probes ride ONE batched bit-packed scan, so keyword GET pays two\n\
     DPF evaluations but a single memory pass — compute overhead %.2fx, not 2x — and\n\
     communication doubles exactly (the two-probe shape is query-independent).\n"
    kwe.Lw_sim.Cost_model.compute_overhead;
  if write_json then begin
    let open Json in
    let j =
      Obj
        [
          ("experiment", String "E26");
          ("machine", machine_meta ());
          ("pages_published", Number (float_of_int (Array.length paths)));
          ("pages_skipped", Number (float_of_int !skipped));
          ("cuckoo_load_factor", Number (Lw_pir.Kw_store.load_factor kw_store));
          ("cuckoo_stash", Number (float_of_int (Lw_pir.Kw_store.stash_size kw_store)));
          ("ops", Number (float_of_int ops));
          ( "index_get",
            Obj [ ("p50_ms", Number (p index_lat 50.)); ("p99_ms", Number (p index_lat 99.)) ] );
          ( "keyword_get",
            Obj
              [
                ("p50_ms", Number (p kw_lat 50.));
                ("p99_ms", Number (p kw_lat 99.));
                ("p50_ratio", Number p50_ratio);
                ("meets_1_5x_budget", Bool (p50_ratio <= 1.5));
              ] );
          ( "cluster_retrieval",
            Obj
              [
                ("bursts", Number (float_of_int bursts));
                ("k", Number (float_of_int k));
                ("members_fetched", Number (float_of_int !fetched));
                ("clusters_non_empty", Number (float_of_int (Lw_sim.Retrieval.non_empty retr)));
                ("p50_ms", Number (p burst_lat 50.));
                ("p99_ms", Number (p burst_lat 99.));
              ] );
          ( "cost_model_c4",
            Obj
              [
                ("kw_vcpu_seconds", Number kwe.Lw_sim.Cost_model.kw_vcpu_seconds);
                ("kw_request_cost_usd", Number kwe.Lw_sim.Cost_model.kw_request_cost_usd);
                ("kw_upload_kib", Number kwe.Lw_sim.Cost_model.kw_upload_kib);
                ("kw_download_kib", Number kwe.Lw_sim.Cost_model.kw_download_kib);
                ("compute_overhead", Number kwe.Lw_sim.Cost_model.compute_overhead);
              ] );
        ]
    in
    let oc = open_out "BENCH_keyword.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_keyword.json\n"
  end

(* ------------------------------------------------------------------ *)
(* E27: single-server PIR (Single mode) vs two-server Pir2              *)
(* ------------------------------------------------------------------ *)

let e27_single ?(write_json = true) ?(smoke = false) () =
  section "E27" "Single mode (LWE single-server PIR) vs Pir2: latency, hint, wire bytes";
  let sites, n_pages, ops = if smoke then (4, 48, 24) else if fast then (8, 160, 96) else (12, 320, 192) in
  (* A Single answer is one multiply-accumulate pass over the whole
     store, and the per-epoch hint costs n passes — size the geometry so
     the full run measures a scan-dominated point without minutes of
     hint computation (smoke: 256 KiB database, full: 4 MiB). *)
  let geometry =
    {
      Lightweb.Universe.default_geometry with
      Lightweb.Universe.data_blob_size = (if smoke then 1024 else 4096);
      data_domain_bits = (if smoke then 8 else 10);
    }
  in
  let profile =
    {
      Lw_sim.Corpus.name = "e27-synthetic";
      total_bytes = float_of_int n_pages *. 160.;
      pages = float_of_int n_pages;
      avg_page_bytes = 160.;
    }
  in
  let corpus = Lw_sim.Corpus.generate ~sites ~sigma:0.4 profile ~n_pages (det "e27-corpus") in
  let u = Lightweb.Universe.create ~name:"e27" geometry in
  Array.iter
    (fun site ->
      match Lightweb.Universe.claim_domain u ~publisher:"bench" ~domain:site with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "E27 claim %s: %s" site e))
    corpus.Lw_sim.Corpus.sites;
  let published = ref [] and skipped = ref 0 in
  Array.iter
    (fun (pg : Lw_sim.Corpus.page) ->
      match
        Lightweb.Universe.push_data u ~publisher:"bench" ~path:pg.Lw_sim.Corpus.path
          ~value:(Json.String pg.Lw_sim.Corpus.body)
      with
      | Ok () -> published := pg.Lw_sim.Corpus.path :: !published
      | Error _ -> incr skipped)
    corpus.Lw_sim.Corpus.pages;
  (* stand up the Single server BEFORE publish so the hint is warmed
     (sealed alongside the epoch) rather than computed on first query *)
  let single_srv = Lightweb.Universe.single_data_server u in
  ignore (Lightweb.Universe.publish_updates u);
  let paths = Array.of_list (List.rev !published) in
  if Array.length paths = 0 then failwith "E27: nothing published";
  let hint_formula_bytes =
    Lw_pir.Spir.hint_bytes Lw_pir.Spir.default_params
      ~bucket_size:geometry.Lightweb.Universe.data_blob_size
  in
  Printf.printf "(%d pages published, %d skipped; d=%d, %d B buckets; hint %d B = n=%d rows)\n\n"
    (Array.length paths) !skipped geometry.Lightweb.Universe.data_domain_bits
    geometry.Lightweb.Universe.data_blob_size hint_formula_bytes
    Lw_pir.Spir.default_params.Lw_pir.Spir.n;
  let d0, d1 = Lightweb.Universe.data_servers u in
  let pe0, pc0 = Lw_net.Endpoint.with_counters (Lightweb.Zltp_server.endpoint d0) in
  let pe1, pc1 = Lw_net.Endpoint.with_counters (Lightweb.Zltp_server.endpoint d1) in
  let se, sc = Lw_net.Endpoint.with_counters (Lightweb.Zltp_server.endpoint single_srv) in
  let pir2_client =
    match Lightweb.Zltp_client.connect ~rng:(rng ()) [ pe0; pe1 ] with
    | Ok c -> c
    | Error e -> failwith (Printf.sprintf "E27 pir2 connect: %s" e)
  in
  let single_client =
    match
      Lightweb.Zltp_client.connect ~prefer:[ Lightweb.Zltp_mode.Single ] ~rng:(rng ()) [ se ]
    with
    | Ok c -> c
    | Error e -> failwith (Printf.sprintf "E27 single connect: %s" e)
  in
  Fun.protect ~finally:(fun () ->
      Lightweb.Zltp_client.close pir2_client;
      Lightweb.Zltp_client.close single_client)
  @@ fun () ->
  if Lightweb.Zltp_client.mode single_client <> Lightweb.Zltp_mode.Single then
    failwith "E27: client did not negotiate Single";
  (* oracle: every published path byte-identical under both deployments *)
  Array.iter
    (fun path ->
      let via label r =
        match r with
        | Ok (Some v) -> v
        | Ok None -> failwith (Printf.sprintf "E27 %s GET lost %s" label path)
        | Error e -> failwith (Printf.sprintf "E27 %s GET %s: %s" label path e)
      in
      let two = via "pir2" (Lightweb.Zltp_client.get pir2_client path) in
      let one = via "single" (Lightweb.Zltp_client.get single_client path) in
      if not (String.equal two one) then
        failwith (Printf.sprintf "E27: Single diverged from Pir2 at %s" path))
    paths;
  row "%-24s all %d published paths byte-identical across deployments\n" "oracle"
    (Array.length paths);
  (* per-query wire bytes, measured: the oracle pass above already paid
     the handshake and the per-epoch hint fetch, so one more GET is the
     steady-state query shape *)
  let wire_delta up_c down_c f =
    let base_up = List.fold_left (fun a c -> a + c.Lw_net.Endpoint.sent_bytes) 0 up_c in
    let base_down = List.fold_left (fun a c -> a + c.Lw_net.Endpoint.recv_bytes) 0 down_c in
    f ();
    ( List.fold_left (fun a c -> a + c.Lw_net.Endpoint.sent_bytes) 0 up_c - base_up,
      List.fold_left (fun a c -> a + c.Lw_net.Endpoint.recv_bytes) 0 down_c - base_down )
  in
  let probe = paths.(Array.length paths / 2) in
  let pir2_up, pir2_down =
    wire_delta [ pc0; pc1 ] [ pc0; pc1 ] (fun () ->
        ignore (Lightweb.Zltp_client.get pir2_client probe))
  in
  let single_up, single_down =
    wire_delta [ sc ] [ sc ] (fun () -> ignore (Lightweb.Zltp_client.get single_client probe))
  in
  row "%-24s %8d B up %8d B down   (2 servers, 2 DPF keys)\n" "pir2 per-query wire" pir2_up
    pir2_down;
  row "%-24s %8d B up %8d B down   (1 server, selection vector; hint %d B/epoch amortized)\n"
    "single per-query wire" single_up single_down hint_formula_bytes;
  (* latency: interleaved so drift hits both distributions equally *)
  let pir2_lat = Array.make ops 0.0 in
  let single_lat = Array.make ops 0.0 in
  let timed c path =
    let t0 = Unix.gettimeofday () in
    (match Lightweb.Zltp_client.get c path with
    | Ok (Some _) -> ()
    | Ok None -> failwith (Printf.sprintf "E27: missing record for %s" path)
    | Error e -> failwith (Printf.sprintf "E27: %s" e));
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  Gc.major ();
  for i = 0 to ops - 1 do
    let path = paths.(((i * 7) + 3) mod Array.length paths) in
    if i land 1 = 0 then begin
      pir2_lat.(i) <- timed pir2_client path;
      single_lat.(i) <- timed single_client path
    end
    else begin
      single_lat.(i) <- timed single_client path;
      pir2_lat.(i) <- timed pir2_client path
    end
  done;
  let p a q = Lw_util.Stats.percentile a q in
  let p50_ratio = p single_lat 50. /. Float.max (p pir2_lat 50.) 1e-9 in
  row "%-24s %8.3f ms p50 %8.3f ms p99\n" "pir2 GET" (p pir2_lat 50.) (p pir2_lat 99.);
  row "%-24s %8.3f ms p50 %8.3f ms p99   (p50 ratio %.2fx)\n" "single GET" (p single_lat 50.)
    (p single_lat 99.) p50_ratio;
  (* the three-way C1-C4 columns at the paper's Table-2 point *)
  let three_way =
    Lw_sim.Cost_model.three_way
      (Lw_sim.Cost_model.of_profile Lw_sim.Corpus.c4)
      Lw_sim.Cost_model.paper_shard Lw_sim.Cost_model.c5_large
  in
  List.iter (fun mc -> Format.printf "%a\n" Lw_sim.Cost_model.pp_mode_cost mc) three_way;
  Format.print_flush ();
  Printf.printf
    "\none cryptographic assumption (decision-LWE), one server, no client state beyond a\n\
     public per-epoch hint — paid for in upload bytes and a mul-acc (not XOR) scan.\n";
  if write_json then begin
    let open Json in
    let mode_row mc =
      Obj
        [
          ("mode", String (Lightweb.Zltp_mode.name mc.Lw_sim.Cost_model.mode));
          ("servers", Number (float_of_int mc.Lw_sim.Cost_model.mc_servers));
          ("shards", Number (float_of_int mc.Lw_sim.Cost_model.mc_shards));
          ("vcpu_seconds", Number mc.Lw_sim.Cost_model.mc_vcpu_seconds);
          ("request_cost_usd", Number mc.Lw_sim.Cost_model.mc_request_cost_usd);
          ("upload_kib", Number mc.Lw_sim.Cost_model.mc_upload_kib);
          ("download_kib", Number mc.Lw_sim.Cost_model.mc_download_kib);
          ("latency_floor_s", Number mc.Lw_sim.Cost_model.mc_latency_floor_s);
          ("hint_mib_per_epoch", Number mc.Lw_sim.Cost_model.mc_hint_mib_per_epoch);
        ]
    in
    let j =
      Obj
        [
          ("experiment", String "E27");
          ("machine", machine_meta ());
          ("pages_published", Number (float_of_int (Array.length paths)));
          ("ops", Number (float_of_int ops));
          ( "geometry",
            Obj
              [
                ( "domain_bits",
                  Number (float_of_int geometry.Lightweb.Universe.data_domain_bits) );
                ("bucket_bytes", Number (float_of_int geometry.Lightweb.Universe.data_blob_size));
              ] );
          ("hint_bytes_per_epoch", Number (float_of_int hint_formula_bytes));
          ( "pir2_get",
            Obj
              [
                ("p50_ms", Number (p pir2_lat 50.));
                ("p99_ms", Number (p pir2_lat 99.));
                ("query_up_bytes", Number (float_of_int pir2_up));
                ("query_down_bytes", Number (float_of_int pir2_down));
              ] );
          ( "single_get",
            Obj
              [
                ("p50_ms", Number (p single_lat 50.));
                ("p99_ms", Number (p single_lat 99.));
                ("query_up_bytes", Number (float_of_int single_up));
                ("query_down_bytes", Number (float_of_int single_down));
                ("p50_ratio_vs_pir2", Number p50_ratio);
              ] );
          ("three_way_c4", List (List.map mode_row three_way));
        ]
    in
    let oc = open_out "BENCH_single.json" in
    output_string oc (to_string ~pretty:true j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_single.json\n"
  end

(* ------------------------------------------------------------------ *)

(* `--metrics` (combinable with any mode) ends the run with a Prometheus
   text dump of the whole lw_obs registry — after `--chaos` it shows the
   injected-fault, retry and per-shard scan histograms with real counts. *)
let dump_metrics_if_asked () =
  if Array.exists (fun a -> a = "--metrics") Sys.argv then begin
    Printf.printf "\n%s\nmetrics dump (lw_obs, Prometheus text)\n%s\n" (String.make 78 '=')
      (String.make 78 '=');
    print_string (Lw_obs.Export.to_prometheus ())
  end

(* `--smoke` (the @bench-smoke alias, attached to `dune runtest`) runs
   only E19 at a tiny geometry: it proves the bench harness and both
   kernels execute, without the minutes-long full run. *)
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

(* `--chaos` runs only E20 and writes BENCH_chaos.json — the whole run is
   virtual-time, so it completes in well under a second *)
let chaos_only = Array.exists (fun a -> a = "--chaos") Sys.argv

(* `--obs` runs only E21 and writes BENCH_obs.json *)
let obs_only = Array.exists (fun a -> a = "--obs") Sys.argv

(* `--store` runs only E22 and writes BENCH_store.json *)
let store_only = Array.exists (fun a -> a = "--store") Sys.argv

(* `--lint` runs only E23 and writes BENCH_lint.json *)
let lint_only = Array.exists (fun a -> a = "--lint") Sys.argv

(* `--fleet` runs only E24 and writes BENCH_fleet.json *)
let fleet_only = Array.exists (fun a -> a = "--fleet") Sys.argv

(* `--fleet-smoke` (the @fleet alias, attached to `dune runtest`) runs
   E24 at a tiny deterministic geometry without writing JSON: the
   domain-parallel scan, the fan-out tree and the closed-loop fleet
   simulator all execute end to end in seconds *)
let fleet_smoke = Array.exists (fun a -> a = "--fleet-smoke") Sys.argv

(* `--cluster` runs only E25 and writes BENCH_cluster.json *)
let cluster_only = Array.exists (fun a -> a = "--cluster") Sys.argv

(* `--cluster-smoke` (the @cluster-smoke alias, part of the @bench-smoke
   gate) runs E25 tiny — 4 shard processes, 1 rollout, 1 kill — without
   writing JSON: it proves the real-process fleet path end to end in a
   couple of seconds *)
let cluster_smoke = Array.exists (fun a -> a = "--cluster-smoke") Sys.argv

(* `--keyword` runs only E26 and writes BENCH_keyword.json *)
let keyword_only = Array.exists (fun a -> a = "--keyword") Sys.argv

(* `--keyword-smoke` (the @keyword-smoke alias, part of the @bench-smoke
   gate) runs E26 tiny — the keyword-GET oracle, both latency columns and
   one cluster-retrieval burst mix — without writing JSON *)
let keyword_smoke = Array.exists (fun a -> a = "--keyword-smoke") Sys.argv

(* `--single` runs only E27 and writes BENCH_single.json *)
let single_only = Array.exists (fun a -> a = "--single") Sys.argv

(* `--single-smoke` (the @single-smoke alias, part of the @bench-smoke
   gate) runs E27 tiny — the Single/Pir2 deployment oracle, both latency
   columns and the per-query wire shapes — without writing JSON *)
let single_smoke = Array.exists (fun a -> a = "--single-smoke") Sys.argv

let () =
  if smoke then begin
    Printf.printf "lightweb benchmark harness (--smoke: E19 only, tiny geometry)\n";
    e19_scan_kernels ~write_json:false ~geometry:(6, 96, 2) ();
    dump_metrics_if_asked ()
  end
  else if chaos_only then begin
    Printf.printf "lightweb benchmark harness (--chaos: E20 only)\n";
    e20_chaos_tail_latency ();
    dump_metrics_if_asked ()
  end
  else if obs_only then begin
    Printf.printf "lightweb benchmark harness (--obs: E21 only)\n";
    e21_obs_overhead ();
    dump_metrics_if_asked ()
  end
  else if store_only then begin
    Printf.printf "lightweb benchmark harness (--store: E22 only)\n";
    e22_store_updates ();
    dump_metrics_if_asked ()
  end
  else if lint_only then begin
    Printf.printf "lightweb benchmark harness (--lint: E23 only)\n";
    e23_full_lint ();
    dump_metrics_if_asked ()
  end
  else if fleet_only then begin
    Printf.printf "lightweb benchmark harness (--fleet: E24 only)\n";
    e24_fleet ();
    dump_metrics_if_asked ()
  end
  else if fleet_smoke then begin
    Printf.printf "lightweb benchmark harness (--fleet-smoke: E24, tiny geometry)\n";
    e24_fleet ~write_json:false ~smoke:true ();
    dump_metrics_if_asked ()
  end
  else if cluster_only then begin
    Printf.printf "lightweb benchmark harness (--cluster: E25 only)\n";
    e25_cluster ();
    dump_metrics_if_asked ()
  end
  else if cluster_smoke then begin
    Printf.printf "lightweb benchmark harness (--cluster-smoke: E25, tiny geometry)\n";
    e25_cluster ~write_json:false ~smoke:true ();
    dump_metrics_if_asked ()
  end
  else if keyword_only then begin
    Printf.printf "lightweb benchmark harness (--keyword: E26 only)\n";
    e26_keyword ();
    dump_metrics_if_asked ()
  end
  else if keyword_smoke then begin
    Printf.printf "lightweb benchmark harness (--keyword-smoke: E26, tiny geometry)\n";
    e26_keyword ~write_json:false ~smoke:true ();
    dump_metrics_if_asked ()
  end
  else if single_only then begin
    Printf.printf "lightweb benchmark harness (--single: E27 only)\n";
    e27_single ();
    dump_metrics_if_asked ()
  end
  else if single_smoke then begin
    Printf.printf "lightweb benchmark harness (--single-smoke: E27, tiny geometry)\n";
    e27_single ~write_json:false ~smoke:true ();
    dump_metrics_if_asked ()
  end
  else begin
  Printf.printf "lightweb benchmark harness%s\n" (if fast then " (--fast)" else "");
  Printf.printf
    "reproducing: §5.1 microbenchmarks, Table 2, §4 economics, §5.2 scale-up, §1 attack\n";

  Printf.printf "\n%s\nkernel microbenchmarks (bechamel, ns/op)\n%s\n" (String.make 78 '=')
    (String.make 78 '=');
  (try
     List.iter
       (fun (name, ns) -> Printf.printf "%-28s %12.1f ns %12.3f us\n" name ns (ns /. 1000.))
       (bechamel_kernels ())
   with e -> Printf.printf "bechamel kernels skipped: %s\n" (Printexc.to_string e));

  e1_server_computation ();
  e2_batching ();
  e3_communication ();
  e4_table2 ();
  e5_monthly_cost ();
  e6_collisions ();
  e7_distributed ();
  e8_mode_ablation ();
  e9_projection ();
  e10_traffic_analysis ();
  e11_scheme_ablation ();
  e12_prg_ablation ();
  e13_cover_traffic ();
  e14_recursive_oram ();
  e15_latency ();
  e16_heavy_hitters ();
  e17_queue ();
  e18_lint_cost ();
  e19_scan_kernels ();
  e20_chaos_tail_latency ();
  e21_obs_overhead ();
  e22_store_updates ();
  e23_full_lint ();
  e24_fleet ();
  e25_cluster ();
  e26_keyword ();
  e27_single ();
  dump_metrics_if_asked ();
  Printf.printf "\nall experiments complete.\n"
  end
