(* ZLTP's second mode of operation (§2.2): a hardware enclave running
   Path ORAM, reached through an authenticated encrypted channel that
   terminates inside the enclave. The untrusted host — played here by a
   real TCP relay — sees only an ephemeral public key and ciphertext,
   while the enclave's memory accesses are oblivious.

   Run with: dune exec examples/enclave_mode.exe *)

module Json = Lw_json.Json
open Lightweb

let () =
  (* the CDN loads content into the enclave's oblivious store *)
  let universe = Universe.create ~name:"enclave-demo" Universe.default_geometry in
  ignore (Universe.claim_domain universe ~publisher:"pub" ~domain:"vault.example");
  List.iter
    (fun (path, body) ->
      match
        Universe.push_data universe ~publisher:"pub" ~path
          ~value:(Json.Obj [ ("body", Json.String body) ])
      with
      | Ok () -> ()
      | Error e -> failwith e)
    [
      ("vault.example/a", "document A");
      ("vault.example/b", "document B");
      ("vault.example/c", "document C");
    ];
  let enclave_server = Universe.enclave_data_server universe in

  (* enclave provisioning: a static identity keypair whose public half the
     client pins (in SGX terms: from the attestation report) *)
  let identity = Lw_net.Secure_channel.keypair (Lw_crypto.Drbg.system ()) in
  Printf.printf "enclave identity (attested): %s...\n"
    (String.sub (Lw_util.Hex.encode identity.Lw_crypto.X25519.public) 0 16);

  (* the untrusted host: a TCP server that terminates the socket and hands
     the bytes to the "enclave" (which unwraps the secure channel) *)
  let tcp =
    Lw_net.Tcp.serve ~host:"127.0.0.1" ~port:0 (fun ep ->
        match Lw_net.Secure_channel.server ~secret:identity.Lw_crypto.X25519.secret ep with
        | Ok inside_enclave -> Zltp_server.serve enclave_server inside_enclave
        | Error e -> Printf.eprintf "handshake failed: %s\n" e)
  in
  Printf.printf "untrusted host listening on 127.0.0.1:%d\n\n" (Lw_net.Tcp.port tcp);

  (* the client: TCP -> secure channel -> ZLTP session (enclave mode) *)
  let raw = Lw_net.Tcp.connect ~host:"127.0.0.1" ~port:(Lw_net.Tcp.port tcp) () in
  let counted, counters = Lw_net.Endpoint.with_counters raw in
  let secured =
    match
      Lw_net.Secure_channel.client ~server_public:identity.Lw_crypto.X25519.public
        ~rng:(Lw_crypto.Drbg.system ()) counted
    with
    | Ok ep -> ep
    | Error e -> failwith e
  in
  let client =
    match Zltp_client.connect ~prefer:[ Zltp_mode.Enclave ] [ secured ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  Printf.printf "negotiated mode: %s\n" (Zltp_mode.name (Zltp_client.mode client));
  List.iter
    (fun a -> Printf.printf "  assumption: %s\n" a)
    (Zltp_mode.assumptions (Zltp_client.mode client));

  List.iter
    (fun key ->
      match Zltp_client.get client key with
      | Ok (Some v) -> Printf.printf "\nGET %-18s -> %s" key v
      | Ok None -> Printf.printf "\nGET %-18s -> (absent)" key
      | Error e -> Printf.printf "\nGET %-18s -> error: %s" key e)
    [ "vault.example/b"; "vault.example/a"; "vault.example/nope" ];

  Printf.printf
    "\n\nwhat the untrusted host saw: %d messages, %d bytes up / %d bytes down —\n\
     all ciphertext. Hits and misses cost the same single ORAM path, so even the\n\
     enclave's memory bus reveals nothing about the keys.\n"
    counters.Lw_net.Endpoint.messages counters.Lw_net.Endpoint.sent_bytes
    counters.Lw_net.Endpoint.recv_bytes;
  Zltp_client.close client;
  Lw_net.Tcp.shutdown tcp
