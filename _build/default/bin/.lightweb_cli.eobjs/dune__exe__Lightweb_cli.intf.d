bin/lightweb_cli.mli:
