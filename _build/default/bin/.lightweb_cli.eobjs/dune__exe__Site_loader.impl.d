bin/site_loader.ml: Array Filename Lightweb List Lw_json Printf String Sys
