(* Load publisher sites from a directory tree:

     <root>/<domain>/code.ls          Lightscript for the code blob
     <root>/<domain>/pages/**/*.json  data blobs; the path under pages/
                                      becomes the page suffix

   Used by the CLI's `serve` command so a universe can be assembled from
   plain files. *)

module Json = Lw_json.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk dir =
  (* all regular files under [dir], relative paths *)
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun entry ->
         let full = Filename.concat dir entry in
         if Sys.is_directory full then List.map (fun p -> Filename.concat entry p) (walk full)
         else [ entry ])
  |> List.sort String.compare

let load_site ~root domain =
  let dir = Filename.concat root domain in
  let code_path = Filename.concat dir "code.ls" in
  if not (Sys.file_exists code_path) then Error (Printf.sprintf "%s: missing code.ls" domain)
  else begin
    let code = read_file code_path in
    let pages_dir = Filename.concat dir "pages" in
    let pages =
      if not (Sys.file_exists pages_dir) then []
      else
        List.filter_map
          (fun rel ->
            let full = Filename.concat pages_dir rel in
            match Json.of_string_opt (read_file full) with
            | Some v -> Some ("/" ^ rel, v)
            | None ->
                Printf.eprintf "warning: %s is not valid JSON, skipped\n%!" full;
                None)
          (walk pages_dir)
    in
    Ok { Lightweb.Publisher.domain; code; pages }
  end

let load_all root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    Error (Printf.sprintf "%s is not a directory" root)
  else begin
    let domains =
      Sys.readdir root |> Array.to_list
      |> List.filter (fun d -> Sys.is_directory (Filename.concat root d))
      |> List.sort String.compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | d :: rest -> (
          match load_site ~root d with Ok s -> go (s :: acc) rest | Error e -> Error e)
    in
    go [] domains
  end
