(** AES-128 block cipher (FIPS-197), encryption direction only.

    The DPF uses AES as a fixed-key hash (Matyas–Meyer–Oseas) to mirror the
    AES-NI construction in the paper's C++ prototype, so only the forward
    permutation is required. The implementation is the classic 32-bit
    T-table formulation; the S-box and tables are derived from the GF(2^8)
    arithmetic at module initialisation rather than embedded as literals. *)

type key
(** An expanded 128-bit key schedule. *)

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key. Raises [Invalid_argument]
    otherwise. *)

val encrypt_block : key -> string -> string
(** [encrypt_block k block] encrypts one 16-byte block. *)

val encrypt_block_into : key -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> unit
(** Allocation-free variant used inside the DPF hot loop. *)

val mmo_fixed_key : key
(** The fixed key (the AES-128 expansion of the bytes of pi used by
    standard FSS implementations is not canonical; we fix the expansion of
    ["lightweb-mmo-key!"] truncated to 16 bytes) backing {!mmo_hash}. *)

val mmo_hash_into :
  key -> tweak:int -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> unit
(** Allocation-free {!mmo_hash} over 16-byte regions; [src] and [dst]
    regions must not overlap. Used by the DPF tree expansion, which is the
    hottest loop in the system. *)

val mmo_hash : key -> tweak:int -> string -> string
(** [mmo_hash k ~tweak s] is the Matyas–Meyer–Oseas compression
    [AES_k(s XOR t) XOR (s XOR t)] where [t] encodes [tweak] in the first
    byte; [s] must be 16 bytes. Used as the DPF length-doubling PRG:
    [G(s) = mmo 0 s || mmo 1 s || ...]. *)
