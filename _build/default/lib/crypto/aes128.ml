(* GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b). *)

let xtime b =
  let b2 = b lsl 1 in
  if b2 land 0x100 <> 0 then (b2 lxor 0x11b) land 0xff else b2

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
    end
  in
  go a b 0

(* S-box: multiplicative inverse followed by the affine transform. *)
let sbox =
  let inv = Array.make 256 0 in
  (* brute-force inverses; 256x256 is trivial at init time *)
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gf_mul a b = 1 then inv.(a) <- b
    done
  done;
  let affine x =
    let rot x k = ((x lsl k) lor (x lsr (8 - k))) land 0xff in
    x lxor rot x 1 lxor rot x 2 lxor rot x 3 lxor rot x 4 lxor 0x63
  in
  Array.init 256 (fun i -> affine inv.(i))

(* T-tables: te0.(x) = [S(x)*2, S(x), S(x), S(x)*3] packed big-endian into
   an int32; te1..te3 are byte rotations of te0. *)
let pack a b c d =
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let te0 = Array.init 256 (fun i ->
    let s = sbox.(i) in
    pack (gf_mul s 2) s s (gf_mul s 3))

let rotr32_8 x =
  Int32.logor (Int32.shift_right_logical x 8) (Int32.shift_left x 24)

let te1 = Array.map rotr32_8 te0
let te2 = Array.map rotr32_8 te1
let te3 = Array.map rotr32_8 te2

type key = int32 array
(* 44 round words for AES-128 (10 rounds + initial whitening). *)

let sub_word w =
  let b k = Int32.to_int (Int32.shift_right_logical w k) land 0xff in
  pack sbox.(b 24) sbox.(b 16) sbox.(b 8) sbox.(b 0)

let rot_word w =
  Int32.logor (Int32.shift_left w 8) (Int32.shift_right_logical w 24)

let rcon =
  let r = Array.make 11 0 in
  r.(1) <- 1;
  for i = 2 to 10 do
    r.(i) <- xtime r.(i - 1)
  done;
  r

let expand_key k =
  if String.length k <> 16 then invalid_arg "Aes128.expand_key: key must be 16 bytes";
  let w = Array.make 44 0l in
  for i = 0 to 3 do
    w.(i) <- pack (Char.code k.[4 * i]) (Char.code k.[(4 * i) + 1])
        (Char.code k.[(4 * i) + 2]) (Char.code k.[(4 * i) + 3])
  done;
  for i = 4 to 43 do
    let temp = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then
        Int32.logxor (sub_word (rot_word temp)) (Int32.shift_left (Int32.of_int rcon.(i / 4)) 24)
      else temp
    in
    w.(i) <- Int32.logxor w.(i - 4) temp
  done;
  w

let byte32 x k = Int32.to_int (Int32.shift_right_logical x k) land 0xff

let get32_be b off =
  let g i = Int32.of_int (Char.code (Bytes.unsafe_get b (off + i))) in
  Int32.logor
    (Int32.shift_left (g 0) 24)
    (Int32.logor (Int32.shift_left (g 1) 16) (Int32.logor (Int32.shift_left (g 2) 8) (g 3)))

let set32_be b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (byte32 v 24));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr (byte32 v 16));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr (byte32 v 8));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr (byte32 v 0))

let encrypt_block_into w ~src ~src_pos ~dst ~dst_pos =
  let ( ^! ) = Int32.logxor in
  let s0 = ref (get32_be src src_pos ^! w.(0))
  and s1 = ref (get32_be src (src_pos + 4) ^! w.(1))
  and s2 = ref (get32_be src (src_pos + 8) ^! w.(2))
  and s3 = ref (get32_be src (src_pos + 12) ^! w.(3)) in
  for round = 1 to 9 do
    let t0 =
      te0.(byte32 !s0 24) ^! te1.(byte32 !s1 16) ^! te2.(byte32 !s2 8)
      ^! te3.(byte32 !s3 0) ^! w.(4 * round)
    and t1 =
      te0.(byte32 !s1 24) ^! te1.(byte32 !s2 16) ^! te2.(byte32 !s3 8)
      ^! te3.(byte32 !s0 0) ^! w.((4 * round) + 1)
    and t2 =
      te0.(byte32 !s2 24) ^! te1.(byte32 !s3 16) ^! te2.(byte32 !s0 8)
      ^! te3.(byte32 !s1 0) ^! w.((4 * round) + 2)
    and t3 =
      te0.(byte32 !s3 24) ^! te1.(byte32 !s0 16) ^! te2.(byte32 !s1 8)
      ^! te3.(byte32 !s2 0) ^! w.((4 * round) + 3)
    in
    s0 := t0;
    s1 := t1;
    s2 := t2;
    s3 := t3
  done;
  (* final round: SubBytes + ShiftRows, no MixColumns *)
  let final a b c d rk =
    pack sbox.(byte32 a 24) sbox.(byte32 b 16) sbox.(byte32 c 8) sbox.(byte32 d 0) ^! rk
  in
  set32_be dst dst_pos (final !s0 !s1 !s2 !s3 w.(40));
  set32_be dst (dst_pos + 4) (final !s1 !s2 !s3 !s0 w.(41));
  set32_be dst (dst_pos + 8) (final !s2 !s3 !s0 !s1 w.(42));
  set32_be dst (dst_pos + 12) (final !s3 !s0 !s1 !s2 w.(43))

let encrypt_block w block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: block must be 16 bytes";
  let dst = Bytes.create 16 in
  encrypt_block_into w ~src:(Bytes.unsafe_of_string block) ~src_pos:0 ~dst ~dst_pos:0;
  dst |> Bytes.unsafe_to_string

let mmo_fixed_key = expand_key (String.sub "lightweb-mmo-key!" 0 16)

let mmo_hash_into w ~tweak ~src ~src_pos ~dst ~dst_pos =
  (* dst := AES(src ^ tweak) ^ (src ^ tweak), tweak folded into byte 0 *)
  let x0 = Bytes.get src src_pos in
  Bytes.set src src_pos (Char.chr (Char.code x0 lxor (tweak land 0xff)));
  encrypt_block_into w ~src ~src_pos ~dst ~dst_pos;
  Lw_util.Xorbuf.xor_into ~src ~src_pos ~dst ~dst_pos ~len:16;
  Bytes.set src src_pos x0

let mmo_hash w ~tweak s =
  if String.length s <> 16 then invalid_arg "Aes128.mmo_hash: input must be 16 bytes";
  let x = Bytes.of_string s in
  let out = Bytes.create 16 in
  mmo_hash_into w ~tweak ~src:x ~src_pos:0 ~dst:out ~dst_pos:0;
  Bytes.unsafe_to_string out
