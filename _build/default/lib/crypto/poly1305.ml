let tag_len = 16

(* 130-bit arithmetic with five 26-bit limbs in OCaml's 63-bit ints.
   Limb products are <= 52 bits and the five-term sums stay well under 62
   bits, so no overflow is possible. *)

let load32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let mac ~key msg =
  if String.length key <> 32 then invalid_arg "Poly1305.mac: key must be 32 bytes";
  (* r is clamped per the RFC *)
  let r0 = load32 key 0 land 0x3ffffff in
  let r1 = (load32 key 3 lsr 2) land 0x3ffff03 in
  let r2 = (load32 key 6 lsr 4) land 0x3ffc0ff in
  let r3 = (load32 key 9 lsr 6) land 0x3f03fff in
  let r4 = (load32 key 12 lsr 8) land 0x00fffff in
  let s1 = r1 * 5 and s2 = r2 * 5 and s3 = r3 * 5 and s4 = r4 * 5 in
  let h0 = ref 0 and h1 = ref 0 and h2 = ref 0 and h3 = ref 0 and h4 = ref 0 in
  let n = String.length msg in
  let block = Bytes.make 17 '\x00' in
  let pos = ref 0 in
  while !pos < n do
    let len = min 16 (n - !pos) in
    Bytes.fill block 0 17 '\x00';
    Bytes.blit_string msg !pos block 0 len;
    Bytes.set block len '\x01';
    let b = Bytes.unsafe_to_string block in
    let t0 = load32 b 0
    and t1 = load32 b 3
    and t2 = load32 b 6
    and t3 = load32 b 9
    and t4 = load32 b 12
    and hibit = Char.code b.[16] in
    let m0 = !h0 + (t0 land 0x3ffffff) in
    let m1 = !h1 + ((t1 lsr 2) land 0x3ffffff) in
    let m2 = !h2 + ((t2 lsr 4) land 0x3ffffff) in
    let m3 = !h3 + ((t3 lsr 6) land 0x3ffffff) in
    let m4 = !h4 + ((t4 lsr 8) land 0xffffff) + (hibit lsl 24) in
    let d0 = (m0 * r0) + (m1 * s4) + (m2 * s3) + (m3 * s2) + (m4 * s1) in
    let d1 = (m0 * r1) + (m1 * r0) + (m2 * s4) + (m3 * s3) + (m4 * s2) in
    let d2 = (m0 * r2) + (m1 * r1) + (m2 * r0) + (m3 * s4) + (m4 * s3) in
    let d3 = (m0 * r3) + (m1 * r2) + (m2 * r1) + (m3 * r0) + (m4 * s4) in
    let d4 = (m0 * r4) + (m1 * r3) + (m2 * r2) + (m3 * r1) + (m4 * r0) in
    (* carry propagation *)
    let c = d0 lsr 26 in
    let d0 = d0 land 0x3ffffff in
    let d1 = d1 + c in
    let c = d1 lsr 26 in
    let d1 = d1 land 0x3ffffff in
    let d2 = d2 + c in
    let c = d2 lsr 26 in
    let d2 = d2 land 0x3ffffff in
    let d3 = d3 + c in
    let c = d3 lsr 26 in
    let d3 = d3 land 0x3ffffff in
    let d4 = d4 + c in
    let c = d4 lsr 26 in
    let d4 = d4 land 0x3ffffff in
    let d0 = d0 + (c * 5) in
    let c = d0 lsr 26 in
    h0 := d0 land 0x3ffffff;
    h1 := d1 + c;
    h2 := d2;
    h3 := d3;
    h4 := d4;
    pos := !pos + len
  done;
  (* full carry, then reduce mod 2^130-5 *)
  let c = !h1 lsr 26 in
  h1 := !h1 land 0x3ffffff;
  h2 := !h2 + c;
  let c = !h2 lsr 26 in
  h2 := !h2 land 0x3ffffff;
  h3 := !h3 + c;
  let c = !h3 lsr 26 in
  h3 := !h3 land 0x3ffffff;
  h4 := !h4 + c;
  let c = !h4 lsr 26 in
  h4 := !h4 land 0x3ffffff;
  h0 := !h0 + (c * 5);
  let c = !h0 lsr 26 in
  h0 := !h0 land 0x3ffffff;
  h1 := !h1 + c;
  (* compute h + -p and select *)
  let g0 = !h0 + 5 in
  let c = g0 lsr 26 in
  let g0 = g0 land 0x3ffffff in
  let g1 = !h1 + c in
  let c = g1 lsr 26 in
  let g1 = g1 land 0x3ffffff in
  let g2 = !h2 + c in
  let c = g2 lsr 26 in
  let g2 = g2 land 0x3ffffff in
  let g3 = !h3 + c in
  let c = g3 lsr 26 in
  let g3 = g3 land 0x3ffffff in
  let g4 = !h4 + c - (1 lsl 26) in
  let mask = if g4 lsr 62 land 1 = 1 then 0 else -1 in
  (* mask = all-ones when h >= p (g4 non-negative) *)
  let sel h g = (h land (lnot mask)) lor (g land mask) in
  let f0 = sel !h0 g0
  and f1 = sel !h1 g1
  and f2 = sel !h2 g2
  and f3 = sel !h3 g3
  and f4 = sel !h4 (g4 land 0x3ffffff) in
  (* serialize to 128 bits and add s (the second key half) mod 2^128 *)
  let u0 = f0 lor (f1 lsl 26) land 0xffffffff in
  let u1 = (f1 lsr 6) lor (f2 lsl 20) land 0xffffffff in
  let u2 = (f2 lsr 12) lor (f3 lsl 14) land 0xffffffff in
  let u3 = (f3 lsr 18) lor (f4 lsl 8) land 0xffffffff in
  let k0 = load32 key 16 and k1 = load32 key 20 and k2 = load32 key 24 and k3 = load32 key 28 in
  let t0 = u0 + k0 in
  let t1 = u1 + k1 + (t0 lsr 32) in
  let t2 = u2 + k2 + (t1 lsr 32) in
  let t3 = u3 + k3 + (t2 lsr 32) in
  let out = Bytes.create 16 in
  let set32 off v =
    Bytes.set out off (Char.chr (v land 0xff));
    Bytes.set out (off + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (off + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (off + 3) (Char.chr ((v lsr 24) land 0xff))
  in
  set32 0 (t0 land 0xffffffff);
  set32 4 (t1 land 0xffffffff);
  set32 8 (t2 land 0xffffffff);
  set32 12 (t3 land 0xffffffff);
  Bytes.unsafe_to_string out
