let key_len = 32
let nonce_len = 12
let block_len = 64

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let rotl = Lw_util.Bitops.rotl32

(* The ChaCha state is 16 32-bit words:
     0..3   constants "expa" "nd 3" "2-by" "te k"
     4..11  key
     12     counter
     13..15 nonce *)
let sigma0 = 0x61707865l
let sigma1 = 0x3320646el
let sigma2 = 0x79622d32l
let sigma3 = 0x6b206574l

let quarter_round st a b c d =
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl (st.(d) ^% st.(a)) 16;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl (st.(b) ^% st.(c)) 12;
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl (st.(d) ^% st.(a)) 8;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl (st.(b) ^% st.(c)) 7

let double_round st =
  quarter_round st 0 4 8 12;
  quarter_round st 1 5 9 13;
  quarter_round st 2 6 10 14;
  quarter_round st 3 7 11 15;
  quarter_round st 0 5 10 15;
  quarter_round st 1 6 11 12;
  quarter_round st 2 7 8 13;
  quarter_round st 3 4 9 14

let load32 s off =
  let b i = Int32.of_int (Char.code (String.unsafe_get s (off + i))) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let init_state ~key ~nonce ~counter =
  let st = Array.make 16 0l in
  st.(0) <- sigma0;
  st.(1) <- sigma1;
  st.(2) <- sigma2;
  st.(3) <- sigma3;
  for i = 0 to 7 do
    st.(4 + i) <- load32 key (4 * i)
  done;
  st.(12) <- counter;
  for i = 0 to 2 do
    st.(13 + i) <- load32 nonce (4 * i)
  done;
  st

let block ?(rounds = 20) ~key ~nonce ~counter out =
  if String.length key <> key_len then invalid_arg "Chacha20.block: key must be 32 bytes";
  if String.length nonce <> nonce_len then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  if Bytes.length out < block_len then invalid_arg "Chacha20.block: output too small";
  if rounds <= 0 || rounds mod 2 <> 0 then invalid_arg "Chacha20.block: rounds must be even";
  let init = init_state ~key ~nonce ~counter in
  let st = Array.copy init in
  for _ = 1 to rounds / 2 do
    double_round st
  done;
  for i = 0 to 15 do
    Bytes.set_int32_le out (4 * i) (st.(i) +% init.(i))
  done

let encrypt ?(rounds = 20) ~key ~nonce ?(counter = 0l) msg =
  let n = String.length msg in
  let out = Bytes.of_string msg in
  let ks = Bytes.create block_len in
  let blocks = (n + block_len - 1) / block_len in
  for b = 0 to blocks - 1 do
    block ~rounds ~key ~nonce ~counter:(Int32.add counter (Int32.of_int b)) ks;
    let off = b * block_len in
    let len = min block_len (n - off) in
    Lw_util.Xorbuf.xor_into ~src:ks ~src_pos:0 ~dst:out ~dst_pos:off ~len
  done;
  Bytes.unsafe_to_string out

let zero_nonce = String.make nonce_len '\x00'

let expand_double ?(rounds = 20) seed =
  if String.length seed <> key_len then
    invalid_arg "Chacha20.expand_double: seed must be 32 bytes";
  let out = Bytes.create block_len in
  block ~rounds ~key:seed ~nonce:zero_nonce ~counter:0l out;
  (Bytes.sub_string out 0 32, Bytes.sub_string out 32 32)
