(** Poly1305 one-time authenticator (RFC 8439). *)

val tag_len : int
(** 16 bytes. *)

val mac : key:string -> string -> string
(** [mac ~key msg] computes the 16-byte tag; [key] is the 32-byte one-time
    key (r || s). Raises [Invalid_argument] on a bad key length. *)
