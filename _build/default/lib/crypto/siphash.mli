(** SipHash-2-4 (Aumasson–Bernstein), a keyed 64-bit PRF.

    The PIR keyword layer hashes arbitrary path strings into the DPF output
    domain with SipHash; the key is per-universe so publishers cannot grind
    collisions offline. *)

val hash : key:string -> string -> int64
(** [hash ~key msg] with a 16-byte key. Raises [Invalid_argument] on a bad
    key length. *)

val to_domain : key:string -> domain_bits:int -> string -> int
(** [to_domain ~key ~domain_bits msg] maps [msg] into [[0, 2^domain_bits)]
    by truncating {!hash}. [domain_bits] must be in [1..62]. *)
