(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

    Used for the access-control key schedule (§3.3): per-publisher epoch
    keys are derived with HKDF and rotated to revoke readers. *)

val hmac_sha256 : key:string -> string -> string
(** [hmac_sha256 ~key msg] is the 32-byte MAC of [msg]. Keys of any length
    are accepted (hashed down when longer than the block size). *)

val hkdf_extract : ?salt:string -> string -> string
(** [hkdf_extract ?salt ikm] is the 32-byte pseudorandom key. The default
    salt is 32 zero bytes, per RFC 5869. *)

val hkdf_expand : prk:string -> info:string -> len:int -> string
(** [hkdf_expand ~prk ~info ~len] derives [len] bytes
    (len <= 255 * 32). *)

val hkdf : ?salt:string -> info:string -> len:int -> string -> string
(** [hkdf ?salt ~info ~len ikm] is extract-then-expand in one call. *)
