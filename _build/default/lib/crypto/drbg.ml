type t = { mutable key : string; mutable counter : int64 }

let create ~seed = { key = Sha256.digest ("lightweb-drbg-v1" ^ seed); counter = 0L }

let system () =
  let entropy =
    try
      let ic = open_in_bin "/dev/urandom" in
      let buf = really_input_string ic 32 in
      close_in ic;
      buf
    with Sys_error _ | End_of_file ->
      Printf.sprintf "%f|%d|%d" (Unix.gettimeofday ()) (Unix.getpid ()) (Hashtbl.hash (Sys.argv))
  in
  create ~seed:entropy

let nonce_of_counter c =
  let b = Bytes.make Chacha20.nonce_len '\x00' in
  Bytes.set_int64_le b 0 c;
  Bytes.unsafe_to_string b

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate: negative length";
  let nonce = nonce_of_counter t.counter in
  t.counter <- Int64.add t.counter 1L;
  (* one extra block becomes the next key: a simple ratchet *)
  let total = n + 32 in
  let out = Chacha20.encrypt ~key:t.key ~nonce (String.make total '\x00') in
  t.key <- String.sub out n 32;
  String.sub out 0 n

let uniform_int t bound =
  if bound <= 0 then invalid_arg "Drbg.uniform_int: bound must be positive";
  let rec go () =
    let raw = generate t 8 in
    let v = Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le (Bytes.of_string raw) 0) 2) in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then go () else r
  in
  go ()

let reseed t entropy = t.key <- Sha256.digest (t.key ^ entropy)
