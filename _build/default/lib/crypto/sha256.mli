(** SHA-256 (FIPS 180-4). *)

val digest_len : int
(** 32 bytes. *)

type ctx
(** A streaming hash context. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val update_bytes : ctx -> Bytes.t -> pos:int -> len:int -> unit

val final : ctx -> string
(** [final ctx] returns the 32-byte digest. The context must not be used
    again afterwards. *)

val digest : string -> string
(** [digest s] is the one-shot SHA-256 of [s]. *)

val hexdigest : string -> string
(** [hexdigest s] is [digest s] rendered as lowercase hex. *)
