let equal a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       for i = 0 to String.length a - 1 do
         acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
       done;
       !acc = 0
     end

let select cond a b =
  if String.length a <> String.length b then invalid_arg "Ct.select: length mismatch";
  let mask = if cond then 0xff else 0 in
  String.init (String.length a) (fun i ->
      Char.chr
        ((Char.code a.[i] land mask) lor (Char.code b.[i] land (lnot mask land 0xff))))
