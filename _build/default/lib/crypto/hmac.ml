let block_size = 64

let pad_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let hmac_sha256 ~key msg =
  let padded = pad_key key in
  let with_byte b =
    String.init block_size (fun i -> Char.chr (Char.code (Bytes.get padded i) lxor b))
  in
  let ipad = with_byte 0x36 and opad = with_byte 0x5c in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update inner msg;
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer (Sha256.final inner);
  Sha256.final outer

let hkdf_extract ?salt ikm =
  let salt = match salt with Some s -> s | None -> String.make 32 '\x00' in
  hmac_sha256 ~key:salt ikm

let hkdf_expand ~prk ~info ~len =
  if len < 0 || len > 255 * 32 then invalid_arg "Hmac.hkdf_expand: bad length";
  let buf = Buffer.create len in
  let rec go prev counter =
    if Buffer.length buf < len then begin
      let block = hmac_sha256 ~key:prk (prev ^ info ^ String.make 1 (Char.chr counter)) in
      Buffer.add_string buf block;
      go block (counter + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 len

let hkdf ?salt ~info ~len ikm = hkdf_expand ~prk:(hkdf_extract ?salt ikm) ~info ~len
