(* Field elements are 16 limbs of 16 bits over 2^255 - 19, following
   TweetNaCl's representation. Limbs live in OCaml native ints (63-bit);
   the largest intermediates (multiplication accumulators plus the 38x
   fold) stay under 2^45, so no overflow is possible. Signed limbs appear
   transiently after subtraction; carries use arithmetic shifts. *)

let key_len = 32

type gf = int array (* length 16 *)

let gf () : gf = Array.make 16 0

let _121665 : gf =
  let o = gf () in
  o.(0) <- 0xDB41;
  o.(1) <- 1;
  o

let car (o : gf) =
  for i = 0 to 15 do
    o.(i) <- o.(i) + (1 lsl 16);
    let c = o.(i) asr 16 in
    if i < 15 then o.(i + 1) <- o.(i + 1) + (c - 1) else o.(0) <- o.(0) + (38 * (c - 1));
    o.(i) <- o.(i) - (c lsl 16)
  done

(* constant-time conditional swap: b must be 0 or 1 *)
let sel (p : gf) (q : gf) b =
  let mask = -b in
  for i = 0 to 15 do
    let t = mask land (p.(i) lxor q.(i)) in
    p.(i) <- p.(i) lxor t;
    q.(i) <- q.(i) lxor t
  done

let add (o : gf) (a : gf) (b : gf) =
  for i = 0 to 15 do
    o.(i) <- a.(i) + b.(i)
  done

let sub (o : gf) (a : gf) (b : gf) =
  for i = 0 to 15 do
    o.(i) <- a.(i) - b.(i)
  done

let mul (o : gf) (a : gf) (b : gf) =
  let t = Array.make 31 0 in
  for i = 0 to 15 do
    for j = 0 to 15 do
      t.(i + j) <- t.(i + j) + (a.(i) * b.(j))
    done
  done;
  for i = 0 to 14 do
    t.(i) <- t.(i) + (38 * t.(i + 16))
  done;
  Array.blit t 0 o 0 16;
  car o;
  car o

let square (o : gf) (a : gf) = mul o a a

let inv (o : gf) (i : gf) =
  let c = Array.copy i in
  for a = 253 downto 0 do
    square c c;
    if a <> 2 && a <> 4 then mul c c i
  done;
  Array.blit c 0 o 0 16

let unpack (n : string) : gf =
  let o = gf () in
  for i = 0 to 15 do
    o.(i) <- Char.code n.[2 * i] + (Char.code n.[(2 * i) + 1] lsl 8)
  done;
  o.(15) <- o.(15) land 0x7fff;
  o

let pack (n : gf) : string =
  let t = Array.copy n in
  car t;
  car t;
  car t;
  let m = gf () in
  for _ = 0 to 1 do
    m.(0) <- t.(0) - 0xffed;
    for i = 1 to 14 do
      m.(i) <- t.(i) - 0xffff - ((m.(i - 1) asr 16) land 1);
      m.(i - 1) <- m.(i - 1) land 0xffff
    done;
    m.(15) <- t.(15) - 0x7fff - ((m.(14) asr 16) land 1);
    let b = (m.(15) asr 16) land 1 in
    m.(14) <- m.(14) land 0xffff;
    sel t m (1 - b)
  done;
  let out = Bytes.create 32 in
  for i = 0 to 15 do
    Bytes.set out (2 * i) (Char.chr (t.(i) land 0xff));
    Bytes.set out ((2 * i) + 1) (Char.chr ((t.(i) lsr 8) land 0xff))
  done;
  Bytes.unsafe_to_string out

let scalarmult ~scalar ~point =
  if String.length scalar <> 32 then invalid_arg "X25519.scalarmult: scalar must be 32 bytes";
  if String.length point <> 32 then invalid_arg "X25519.scalarmult: point must be 32 bytes";
  let z = Bytes.of_string scalar in
  Bytes.set z 31 (Char.chr ((Char.code (Bytes.get z 31) land 127) lor 64));
  Bytes.set z 0 (Char.chr (Char.code (Bytes.get z 0) land 248));
  let x = unpack point in
  let a = gf () and b = Array.copy x and c = gf () and d = gf () in
  let e = gf () and f = gf () in
  a.(0) <- 1;
  d.(0) <- 1;
  for i = 254 downto 0 do
    let r = (Char.code (Bytes.get z (i lsr 3)) lsr (i land 7)) land 1 in
    sel a b r;
    sel c d r;
    add e a c;
    sub a a c;
    add c b d;
    sub b b d;
    square d e;
    square f a;
    mul a c a;
    mul c b e;
    add e a c;
    sub a a c;
    square b a;
    sub c d f;
    mul a c _121665;
    add a a d;
    mul c c a;
    mul a d f;
    mul d b x;
    square b e;
    sel a b r;
    sel c d r
  done;
  let c_inv = gf () in
  inv c_inv c;
  let out = gf () in
  mul out a c_inv;
  pack out

let base_point =
  let b = Bytes.make 32 '\x00' in
  Bytes.set b 0 '\x09';
  Bytes.unsafe_to_string b

let public_of_secret secret = scalarmult ~scalar:secret ~point:base_point

type keypair = { secret : string; public : string }

let keypair rng =
  let secret = Drbg.generate rng 32 in
  { secret; public = public_of_secret secret }

let shared_secret ~secret ~public =
  let shared = scalarmult ~scalar:secret ~point:public in
  if Lw_util.Xorbuf.is_zero shared then Error "low-order public key (all-zero shared secret)"
  else Ok shared
