(** X25519 Diffie–Hellman (RFC 7748), a port of TweetNaCl's
    [crypto_scalarmult] to OCaml's 63-bit native ints (16 limbs of 16
    bits; all intermediates stay below 2^45).

    Backs {!Secure_channel}: the client of an enclave-mode ZLTP server
    encrypts to the enclave's public key, so the untrusted host relaying
    the bytes learns nothing — the "attested TLS channel terminating
    inside the enclave" of §2.2. *)

val key_len : int
(** 32 bytes. *)

val scalarmult : scalar:string -> point:string -> string
(** [scalarmult ~scalar ~point] is RFC 7748 X25519(k, u); both arguments
    and the result are 32-byte little-endian strings. The scalar is
    clamped internally. *)

val base_point : string

val public_of_secret : string -> string
(** [scalarmult ~scalar ~point:base_point]. *)

type keypair = { secret : string; public : string }

val keypair : Drbg.t -> keypair
(** Fresh keypair from the DRBG. *)

val shared_secret : secret:string -> public:string -> (string, string) result
(** DH with contributory-behaviour check: rejects the all-zero shared
    secret produced by low-order points. *)
