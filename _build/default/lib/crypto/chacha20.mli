(** ChaCha20 stream cipher (RFC 8439), plus reduced-round variants.

    The DPF tree expansion is PRG-bound, so {!block} is also exposed with a
    configurable round count: ChaCha8/12 remain unbroken and run ~2x faster
    in pure OCaml, which matters for the linear-scan benchmarks. *)

val key_len : int
(** 32 bytes. *)

val nonce_len : int
(** 12 bytes. *)

val block_len : int
(** 64 bytes. *)

val block : ?rounds:int -> key:string -> nonce:string -> counter:int32 -> Bytes.t -> unit
(** [block ~key ~nonce ~counter out] writes one 64-byte keystream block
    into [out] (which must be at least 64 bytes). [rounds] defaults to 20
    and must be a positive even number. Raises [Invalid_argument] on bad
    key/nonce/output sizes. *)

val encrypt : ?rounds:int -> key:string -> nonce:string -> ?counter:int32 -> string -> string
(** [encrypt ~key ~nonce msg] XORs [msg] with the keystream starting at
    block [counter] (default 0). Encryption and decryption are the same
    operation. *)

val expand_double : ?rounds:int -> string -> string * string
(** [expand_double seed] is the length-doubling PRG used by the GGM tree:
    a 32-byte seed expands to two 32-byte seeds via a single keystream
    block keyed by [seed] with a zero nonce. *)
