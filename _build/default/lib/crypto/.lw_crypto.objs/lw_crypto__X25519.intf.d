lib/crypto/x25519.mli: Drbg
