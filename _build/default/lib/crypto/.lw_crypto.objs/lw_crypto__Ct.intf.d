lib/crypto/ct.mli:
