lib/crypto/drbg.ml: Bytes Chacha20 Hashtbl Int64 Printf Sha256 String Sys Unix
