lib/crypto/drbg.mli:
