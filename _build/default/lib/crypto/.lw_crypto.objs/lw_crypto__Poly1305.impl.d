lib/crypto/poly1305.ml: Bytes Char String
