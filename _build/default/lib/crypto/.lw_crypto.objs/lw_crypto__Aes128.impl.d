lib/crypto/aes128.ml: Array Bytes Char Int32 Lw_util String
