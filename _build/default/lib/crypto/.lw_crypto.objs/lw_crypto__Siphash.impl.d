lib/crypto/siphash.ml: Char Int64 Lw_util String
