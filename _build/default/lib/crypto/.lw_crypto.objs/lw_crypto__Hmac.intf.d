lib/crypto/hmac.mli:
