lib/crypto/x25519.ml: Array Bytes Char Drbg Lw_util String
