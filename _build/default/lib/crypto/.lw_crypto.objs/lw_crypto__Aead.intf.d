lib/crypto/aead.mli:
