lib/crypto/siphash.mli:
