lib/crypto/aead.ml: Buffer Bytes Chacha20 Ct Int64 Poly1305 String
