(** A deterministic random bit generator built on the ChaCha20 keystream,
    with forward secrecy via key ratcheting.

    This is the protocol stack's source of key material (DPF randomness,
    AEAD nonces, session ids). Seed it from the OS for real use, or from a
    fixed string for reproducible tests. *)

type t

val create : seed:string -> t
(** [create ~seed] derives the initial key from [seed] with SHA-256; any
    seed length is accepted. *)

val system : unit -> t
(** [system ()] seeds from [/dev/urandom]; falls back to a time/pid mix if
    the device is unavailable (e.g. exotic sandboxes). *)

val generate : t -> int -> string
(** [generate t n] produces [n] pseudorandom bytes and ratchets the key, so
    compromise of the current state does not reveal past output. *)

val uniform_int : t -> int -> int
(** [uniform_int t bound] is uniform in [[0, bound)] without modulo bias.
    Requires [bound > 0]. *)

val reseed : t -> string -> unit
(** [reseed t entropy] mixes additional entropy into the state. *)
