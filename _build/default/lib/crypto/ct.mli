(** Constant-time byte-string operations. *)

val equal : string -> string -> bool
(** [equal a b] compares without early exit; strings of different lengths
    compare unequal (length is not secret). *)

val select : bool -> string -> string -> string
(** [select cond a b] is [a] when [cond] else [b], reading both. Lengths
    must match. *)
