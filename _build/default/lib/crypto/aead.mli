(** ChaCha20-Poly1305 AEAD (RFC 8439).

    Backs lightweb access control (§3.3): publishers encrypt blobs under
    rotating epoch keys so the CDN never sees protected content. *)

val key_len : int
(** 32 bytes. *)

val nonce_len : int
(** 12 bytes. *)

val tag_len : int
(** 16 bytes. *)

val seal : key:string -> nonce:string -> ?aad:string -> string -> string
(** [seal ~key ~nonce ~aad pt] is [ciphertext || tag]. *)

val open_ : key:string -> nonce:string -> ?aad:string -> string -> string option
(** [open_ ~key ~nonce ~aad ct_and_tag] is [Some plaintext] when the tag
    verifies (constant-time comparison) and [None] otherwise. *)
