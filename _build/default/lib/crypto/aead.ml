let key_len = 32
let nonce_len = 12
let tag_len = 16

let poly_key ~key ~nonce =
  let block = Bytes.create Chacha20.block_len in
  Chacha20.block ~key ~nonce ~counter:0l block;
  Bytes.sub_string block 0 32

let pad16 buf n =
  let r = n mod 16 in
  if r <> 0 then Buffer.add_string buf (String.make (16 - r) '\x00')

let le64 n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Bytes.unsafe_to_string b

let compute_tag ~key ~nonce ~aad ct =
  let otk = poly_key ~key ~nonce in
  let buf = Buffer.create (String.length aad + String.length ct + 48) in
  Buffer.add_string buf aad;
  pad16 buf (String.length aad);
  Buffer.add_string buf ct;
  pad16 buf (String.length ct);
  Buffer.add_string buf (le64 (String.length aad));
  Buffer.add_string buf (le64 (String.length ct));
  Poly1305.mac ~key:otk (Buffer.contents buf)

let seal ~key ~nonce ?(aad = "") pt =
  if String.length key <> key_len then invalid_arg "Aead.seal: key must be 32 bytes";
  if String.length nonce <> nonce_len then invalid_arg "Aead.seal: nonce must be 12 bytes";
  let ct = Chacha20.encrypt ~key ~nonce ~counter:1l pt in
  ct ^ compute_tag ~key ~nonce ~aad ct

let open_ ~key ~nonce ?(aad = "") ct_and_tag =
  if String.length key <> key_len then invalid_arg "Aead.open_: key must be 32 bytes";
  if String.length nonce <> nonce_len then invalid_arg "Aead.open_: nonce must be 12 bytes";
  let n = String.length ct_and_tag in
  if n < tag_len then None
  else begin
    let ct = String.sub ct_and_tag 0 (n - tag_len) in
    let tag = String.sub ct_and_tag (n - tag_len) tag_len in
    let expected = compute_tag ~key ~nonce ~aad ct in
    if Ct.equal tag expected then Some (Chacha20.encrypt ~key ~nonce ~counter:1l ct) else None
  end
