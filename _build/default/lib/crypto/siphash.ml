let rotl = Lw_util.Bitops.rotl64
let ( +% ) = Int64.add
let ( ^% ) = Int64.logxor

type state = { mutable v0 : int64; mutable v1 : int64; mutable v2 : int64; mutable v3 : int64 }

let sipround st =
  st.v0 <- st.v0 +% st.v1;
  st.v1 <- rotl st.v1 13;
  st.v1 <- st.v1 ^% st.v0;
  st.v0 <- rotl st.v0 32;
  st.v2 <- st.v2 +% st.v3;
  st.v3 <- rotl st.v3 16;
  st.v3 <- st.v3 ^% st.v2;
  st.v0 <- st.v0 +% st.v3;
  st.v3 <- rotl st.v3 21;
  st.v3 <- st.v3 ^% st.v0;
  st.v2 <- st.v2 +% st.v1;
  st.v1 <- rotl st.v1 17;
  st.v1 <- st.v1 ^% st.v2;
  st.v2 <- rotl st.v2 32

let load64_le s off =
  let b i = Int64.of_int (Char.code s.[off + i]) in
  let r = ref 0L in
  for i = 7 downto 0 do
    r := Int64.logor (Int64.shift_left !r 8) (b i)
  done;
  !r

let hash ~key msg =
  if String.length key <> 16 then invalid_arg "Siphash.hash: key must be 16 bytes";
  let k0 = load64_le key 0 and k1 = load64_le key 8 in
  let st =
    {
      v0 = k0 ^% 0x736f6d6570736575L;
      v1 = k1 ^% 0x646f72616e646f6dL;
      v2 = k0 ^% 0x6c7967656e657261L;
      v3 = k1 ^% 0x7465646279746573L;
    }
  in
  let n = String.length msg in
  let full = n / 8 in
  for i = 0 to full - 1 do
    let m = load64_le msg (8 * i) in
    st.v3 <- st.v3 ^% m;
    sipround st;
    sipround st;
    st.v0 <- st.v0 ^% m
  done;
  (* final block: remaining bytes plus the length byte in the top position *)
  let last = ref (Int64.shift_left (Int64.of_int (n land 0xff)) 56) in
  for i = 0 to (n mod 8) - 1 do
    last := Int64.logor !last (Int64.shift_left (Int64.of_int (Char.code msg.[(8 * full) + i])) (8 * i))
  done;
  st.v3 <- st.v3 ^% !last;
  sipround st;
  sipround st;
  st.v0 <- st.v0 ^% !last;
  st.v2 <- st.v2 ^% 0xffL;
  sipround st;
  sipround st;
  sipround st;
  sipround st;
  st.v0 ^% st.v1 ^% st.v2 ^% st.v3

let to_domain ~key ~domain_bits msg =
  if domain_bits < 1 || domain_bits > 62 then invalid_arg "Siphash.to_domain: bad domain_bits";
  let h = hash ~key msg in
  Int64.to_int (Int64.shift_right_logical h (64 - domain_bits))
