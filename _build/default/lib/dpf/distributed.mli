(** Distributed DPF evaluation (§5.2 of the paper).

    A front-end server receives the client's DPF key for the full domain,
    expands only the top of the GGM tree, and hands each data shard the
    sub-tree root falling in its index range. Completing the evaluation at
    a shard then costs exactly as much as evaluating a DPF over the
    smaller per-shard domain — the property the paper's scale-up estimate
    relies on. *)

val split : Dpf.key -> shard_bits:int -> Dpf.key array
(** [split k ~shard_bits] derives [2^shard_bits] sub-keys, one per shard;
    sub-key [i] covers global indices [[i·2^r, (i+1)·2^r)] where
    [r = domain_bits k - shard_bits]. Requires
    [0 < shard_bits < domain_bits k]. *)

val global_index : rem_bits:int -> shard:int -> int -> int
(** [global_index ~rem_bits ~shard j] maps shard-local index [j] back to
    the full-domain index; [rem_bits] is the sub-keys' domain width. *)
