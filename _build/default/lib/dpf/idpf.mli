(** Incremental DPFs (hierarchical point functions), after the Google
    library the paper's prototype builds on [28].

    An incremental DPF shares one GGM tree across a hierarchy of domains:
    the keys encode, for {e every} prefix length [l], the point function
    that is [values.(l-1)] at the length-[l] prefix of [alpha] and zero at
    every other length-[l] string. One key pair therefore answers queries
    at any granularity — the building block for private hierarchical
    statistics (per-TLD, per-domain, per-path billing counts; prefix-based
    heavy hitters).

    Construction: the standard BGI16 tree, plus one value correction word
    per level computed from the on-path seeds, exactly like the leaf
    correction word of a value-carrying DPF. *)

type key

val gen :
  ?prg:Prg.t -> domain_bits:int -> alpha:int -> values:string array -> Lw_crypto.Drbg.t -> key * key
(** [values] has one entry per level (length [domain_bits]); entries may
    have different lengths but each must be non-empty. *)

val party : key -> int
val domain_bits : key -> int
val value_len : key -> level:int -> int

val eval_prefix : key -> level:int -> int -> string
(** [eval_prefix k ~level p] is this party's share for the length-[level]
    prefix [p] ([1 <= level <= domain_bits], [0 <= p < 2^level]). The two
    parties' shares XOR to [values.(level-1)] iff [p] is the prefix of
    [alpha], else to zeros. *)

val eval_all_level : key -> level:int -> (int -> string -> unit) -> unit
(** Full expansion of one level in prefix order (≈2 PRG calls per node of
    that level). *)

(** {2 Additive (counting) outputs}

    XOR shares cannot be summed across clients, so hierarchical {e counting}
    (heavy hitters, per-prefix billing) uses a parallel additive output
    channel: the two parties' {!eval_prefix_count} values sum (mod 2^64)
    to 1 at the on-path prefix of each level and to 0 elsewhere. An
    aggregation server adds up its own shares over many clients — a
    uniformly random total in isolation — and only the two servers'
    combined totals reveal the per-prefix counts. *)

val eval_prefix_count : key -> level:int -> int -> int64
(** This party's additive share for a prefix. *)

val eval_all_level_counts : key -> level:int -> (int -> int64 -> unit) -> unit
