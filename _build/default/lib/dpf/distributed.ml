let split k ~shard_bits =
  let d = Dpf.domain_bits k in
  if shard_bits <= 0 || shard_bits >= d then invalid_arg "Distributed.split: bad shard_bits";
  let shards = Array.make (1 lsl shard_bits) None in
  Dpf.eval_prefixes k ~levels:shard_bits (fun prefix t seed_buf pos ->
      shards.(prefix) <-
        Some (Dpf.make_subkey k ~root_seed:seed_buf ~root_pos:pos ~root_t:t ~levels:shard_bits));
  Array.map
    (function
      | Some sub -> sub
      | None -> assert false (* eval_prefixes visits every prefix *))
    shards

let global_index ~rem_bits ~shard j = (shard lsl rem_bits) lor j
