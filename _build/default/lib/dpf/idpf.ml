type key = {
  party : int;
  domain_bits : int;
  prg : Prg.t;
  root_seed : Bytes.t;
  root_t : int;
  cw_seeds : Bytes.t; (* 16 bytes per level *)
  cw_bits : Bytes.t; (* tl lor (tr lsl 1), one byte per level *)
  cw_values : string array; (* one XOR value correction word per level *)
  cw_counts : int64 array; (* one additive correction word per level *)
}

let party k = k.party
let domain_bits k = k.domain_bits
let value_len k ~level =
  if level < 1 || level > k.domain_bits then invalid_arg "Idpf.value_len: level out of range";
  String.length k.cw_values.(level - 1)

(* interpret 8 pseudorandom bytes of the seed's conversion as an int64 *)
let conv_int prg s =
  let bytes = Prg.convert prg ~seed:s ~pos:0 ~len:8 in
  String.get_int64_le bytes 0

let gen ?(prg = Prg.default) ~domain_bits ~alpha ~values rng =
  if domain_bits < 1 || domain_bits > 30 then invalid_arg "Idpf.gen: domain_bits out of range";
  if alpha < 0 || alpha >= 1 lsl domain_bits then invalid_arg "Idpf.gen: alpha out of domain";
  if Array.length values <> domain_bits then invalid_arg "Idpf.gen: need one value per level";
  Array.iter (fun v -> if String.length v = 0 then invalid_arg "Idpf.gen: empty value") values;
  let d = domain_bits in
  let clear_low b = Bytes.set b 15 (Char.chr (Char.code (Bytes.get b 15) land 0xfe)) in
  let s0 = Bytes.of_string (Lw_crypto.Drbg.generate rng 16) in
  let s1 = Bytes.of_string (Lw_crypto.Drbg.generate rng 16) in
  clear_low s0;
  clear_low s1;
  let root0 = Bytes.copy s0 and root1 = Bytes.copy s1 in
  let t0 = ref 0 and t1 = ref 1 in
  let cw_seeds = Bytes.create (16 * d) in
  let cw_bits = Bytes.create d in
  let cw_values = Array.make d "" in
  let cw_counts = Array.make d 0L in
  let c0 = Bytes.create 32 and c1 = Bytes.create 32 in
  for level = 0 to d - 1 do
    let bits0 = Prg.expand_into prg ~src:s0 ~src_pos:0 ~dst:c0 ~dst_pos:0 in
    let bits1 = Prg.expand_into prg ~src:s1 ~src_pos:0 ~dst:c1 ~dst_pos:0 in
    let tl0 = bits0 land 1 and tr0 = bits0 lsr 1 in
    let tl1 = bits1 land 1 and tr1 = bits1 lsr 1 in
    let alpha_bit = Lw_util.Bitops.bit_msb alpha ~width:d level in
    let keep_off = if alpha_bit = 0 then 0 else 16 in
    let lose_off = 16 - keep_off in
    for i = 0 to 15 do
      Bytes.set cw_seeds ((16 * level) + i)
        (Char.unsafe_chr
           (Char.code (Bytes.get c0 (lose_off + i)) lxor Char.code (Bytes.get c1 (lose_off + i))))
    done;
    let tl_cw = tl0 lxor tl1 lxor alpha_bit lxor 1 in
    let tr_cw = tr0 lxor tr1 lxor alpha_bit in
    Bytes.set cw_bits level (Char.chr (tl_cw lor (tr_cw lsl 1)));
    let tkeep_cw = if alpha_bit = 0 then tl_cw else tr_cw in
    let step s c t tkeep =
      Bytes.blit c keep_off s 0 16;
      if t = 1 then
        Lw_util.Xorbuf.xor_into ~src:cw_seeds ~src_pos:(16 * level) ~dst:s ~dst_pos:0 ~len:16;
      tkeep lxor (t land tkeep_cw)
    in
    let tkeep0 = if alpha_bit = 0 then tl0 else tr0 in
    let tkeep1 = if alpha_bit = 0 then tl1 else tr1 in
    let t0' = step s0 c0 !t0 tkeep0 in
    let t1' = step s1 c1 !t1 tkeep1 in
    t0 := t0';
    t1 := t1';
    (* per-level value correction word from the fresh on-path seeds *)
    let len = String.length values.(level) in
    let conv s = Prg.convert prg ~seed:s ~pos:0 ~len in
    cw_values.(level) <- Lw_util.Xorbuf.xor (Lw_util.Xorbuf.xor values.(level) (conv s0)) (conv s1);
    (* additive correction word: with out_b = (-1)^b (conv_int_b + t_b*CW)
       and CW = (-1)^{t1} (1 - conv_int(s0) + conv_int(s1)), the shares sum
       to 1 on-path and 0 elsewhere (BGI16's group-output conversion) *)
    let ci = Int64.sub (Int64.sub 1L (conv_int prg s0)) (Int64.neg (conv_int prg s1)) in
    cw_counts.(level) <- (if !t1 = 1 then Int64.neg ci else ci)
  done;
  let mk party root_seed =
    {
      party;
      domain_bits = d;
      prg;
      root_seed;
      root_t = party;
      cw_seeds;
      cw_bits;
      cw_values;
      cw_counts;
    }
  in
  (mk 0 root0, mk 1 root1)

let expand_node k ~level ~seed ~seed_pos ~t ~children =
  let bits = Prg.expand_into k.prg ~src:seed ~src_pos:seed_pos ~dst:children ~dst_pos:0 in
  if t = 1 then begin
    Lw_util.Xorbuf.xor_into ~src:k.cw_seeds ~src_pos:(16 * level) ~dst:children ~dst_pos:0 ~len:16;
    Lw_util.Xorbuf.xor_into ~src:k.cw_seeds ~src_pos:(16 * level) ~dst:children ~dst_pos:16 ~len:16;
    bits lxor Char.code (Bytes.get k.cw_bits level)
  end
  else bits

let share_of k ~level ~seed ~pos ~t =
  let len = String.length k.cw_values.(level - 1) in
  let share = Prg.convert k.prg ~seed ~pos ~len in
  if t = 1 then Lw_util.Xorbuf.xor share k.cw_values.(level - 1) else share

let eval_prefix k ~level p =
  if level < 1 || level > k.domain_bits then invalid_arg "Idpf.eval_prefix: level out of range";
  if p < 0 || p >= 1 lsl level then invalid_arg "Idpf.eval_prefix: prefix out of range";
  let seed = Bytes.copy k.root_seed in
  let children = Bytes.create 32 in
  let t = ref k.root_t in
  for l = 0 to level - 1 do
    let bits = expand_node k ~level:l ~seed ~seed_pos:0 ~t:!t ~children in
    let b = Lw_util.Bitops.bit_msb p ~width:level l in
    Bytes.blit children (16 * b) seed 0 16;
    t := (bits lsr b) land 1
  done;
  share_of k ~level ~seed ~pos:0 ~t:!t

let count_share_of k ~level ~seed ~pos ~t =
  (* out_b = (-1)^b (conv_int + t * CW) *)
  let tmp = Bytes.create 16 in
  Bytes.blit seed pos tmp 0 16;
  let base = conv_int k.prg tmp in
  let v =
    if t = 1 then Int64.add base k.cw_counts.(level - 1) else base
  in
  if k.party = 1 then Int64.neg v else v

let eval_prefix_count k ~level p =
  if level < 1 || level > k.domain_bits then invalid_arg "Idpf.eval_prefix: level out of range";
  if p < 0 || p >= 1 lsl level then invalid_arg "Idpf.eval_prefix: prefix out of range";
  let seed = Bytes.copy k.root_seed in
  let children = Bytes.create 32 in
  let t = ref k.root_t in
  for l = 0 to level - 1 do
    let bits = expand_node k ~level:l ~seed ~seed_pos:0 ~t:!t ~children in
    let b = Lw_util.Bitops.bit_msb p ~width:level l in
    Bytes.blit children (16 * b) seed 0 16;
    t := (bits lsr b) land 1
  done;
  count_share_of k ~level ~seed ~pos:0 ~t:!t

let eval_all_level k ~level f =
  if level < 1 || level > k.domain_bits then invalid_arg "Idpf.eval_all_level: level out of range";
  let bufs = Array.init level (fun _ -> Bytes.create 32) in
  let rec go l seed_buf seed_pos prefix t =
    if l = level then f prefix (share_of k ~level ~seed:seed_buf ~pos:seed_pos ~t)
    else begin
      let children = bufs.(l) in
      let bits = expand_node k ~level:l ~seed:seed_buf ~seed_pos ~t ~children in
      go (l + 1) children 0 (2 * prefix) (bits land 1);
      go (l + 1) children 16 ((2 * prefix) + 1) (bits lsr 1)
    end
  in
  go 0 (Bytes.copy k.root_seed) 0 0 k.root_t

let eval_all_level_counts k ~level f =
  if level < 1 || level > k.domain_bits then invalid_arg "Idpf.eval_all_level: level out of range";
  let bufs = Array.init level (fun _ -> Bytes.create 32) in
  let rec go l seed_buf seed_pos prefix t =
    if l = level then f prefix (count_share_of k ~level ~seed:seed_buf ~pos:seed_pos ~t)
    else begin
      let children = bufs.(l) in
      let bits = expand_node k ~level:l ~seed:seed_buf ~seed_pos ~t ~children in
      go (l + 1) children 0 (2 * prefix) (bits land 1);
      go (l + 1) children 16 ((2 * prefix) + 1) (bits lsr 1)
    end
  in
  go 0 (Bytes.copy k.root_seed) 0 0 k.root_t
