type t = Aes_mmo | Chacha of int

let default = Aes_mmo

let name = function
  | Aes_mmo -> "aes-mmo"
  | Chacha r -> Printf.sprintf "chacha%d" r

let of_tag = function
  | 0 -> Some Aes_mmo
  | 1 -> Some (Chacha 8)
  | 2 -> Some (Chacha 12)
  | 3 -> Some (Chacha 20)
  | _ -> None

let to_tag = function
  | Aes_mmo -> 0
  | Chacha 8 -> 1
  | Chacha 12 -> 2
  | Chacha 20 -> 3
  | Chacha r -> invalid_arg (Printf.sprintf "Prg.to_tag: unsupported chacha%d" r)

(* Extract the control bit from the last byte of a 16-byte child seed and
   clear it, so seeds are independent of the bit channel. *)
let take_bit dst pos =
  let b = Char.code (Bytes.get dst (pos + 15)) in
  Bytes.set dst (pos + 15) (Char.unsafe_chr (b land 0xfe));
  b land 1

let chacha_nonce = "dpf-expand!!" (* 12 bytes *)
let convert_nonce = "dpf-convert!" (* 12 bytes *)

let expand_aes ~src ~src_pos ~dst ~dst_pos =
  let key = Lw_crypto.Aes128.mmo_fixed_key in
  Lw_crypto.Aes128.mmo_hash_into key ~tweak:1 ~src ~src_pos ~dst ~dst_pos;
  Lw_crypto.Aes128.mmo_hash_into key ~tweak:2 ~src ~src_pos ~dst ~dst_pos:(dst_pos + 16)

let expand_chacha rounds ~src ~src_pos ~dst ~dst_pos =
  (* seed padded to a 32-byte key; one block covers both children *)
  let key = Bytes.create 32 in
  Bytes.blit src src_pos key 0 16;
  Bytes.blit src src_pos key 16 16;
  let block = Bytes.create Lw_crypto.Chacha20.block_len in
  Lw_crypto.Chacha20.block ~rounds
    ~key:(Bytes.unsafe_to_string key)
    ~nonce:chacha_nonce ~counter:0l block;
  Bytes.blit block 0 dst dst_pos 32

let expand_into t ~src ~src_pos ~dst ~dst_pos =
  (match t with
  | Aes_mmo -> expand_aes ~src ~src_pos ~dst ~dst_pos
  | Chacha rounds -> expand_chacha rounds ~src ~src_pos ~dst ~dst_pos);
  let tl = take_bit dst dst_pos in
  let tr = take_bit dst (dst_pos + 16) in
  tl lor (tr lsl 1)

let convert t ~seed ~pos ~len =
  let rounds = match t with Aes_mmo -> 20 | Chacha r -> r in
  let key = Bytes.create 32 in
  Bytes.blit seed pos key 0 16;
  Bytes.blit seed pos key 16 16;
  Lw_crypto.Chacha20.encrypt ~rounds
    ~key:(Bytes.unsafe_to_string key)
    ~nonce:convert_nonce (String.make len '\x00')
