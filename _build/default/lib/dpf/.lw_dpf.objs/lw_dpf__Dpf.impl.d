lib/dpf/dpf.ml: Array Buffer Bytes Char Int32 List Lw_crypto Lw_util Prg String
