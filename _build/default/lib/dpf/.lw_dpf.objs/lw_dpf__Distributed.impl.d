lib/dpf/distributed.ml: Array Dpf
