lib/dpf/distributed.mli: Dpf
