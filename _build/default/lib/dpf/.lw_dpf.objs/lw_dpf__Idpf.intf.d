lib/dpf/idpf.mli: Lw_crypto Prg
