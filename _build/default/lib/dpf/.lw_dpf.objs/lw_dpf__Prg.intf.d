lib/dpf/prg.mli: Bytes
