lib/dpf/prg.ml: Bytes Char Lw_crypto Printf String
