lib/dpf/dpf.mli: Bytes Lw_crypto Prg
