lib/dpf/idpf.ml: Array Bytes Char Int64 Lw_crypto Lw_util Prg String
