(** Length-doubling pseudorandom generators for the DPF tree.

    A PRG expands a 16-byte seed into two 16-byte child seeds plus two
    control bits (BGI16's G : {0,1}^λ → {0,1}^(2λ+2)). Two constructions
    are provided:

    - {!Aes_mmo}: two fixed-key AES calls in the Matyas–Meyer–Oseas mode,
      matching the AES-NI construction used by the paper's C++ prototype.
    - {!Chacha} [r]: one r-round ChaCha block; one call yields both
      children, which is faster in pure OCaml.

    Control bits are taken from (and then cleared in) the low bit of each
    child's last byte. *)

type t = Aes_mmo | Chacha of int

val default : t
(** [Aes_mmo], mirroring the paper's prototype. *)

val name : t -> string

val of_tag : int -> t option
val to_tag : t -> int
(** Stable one-byte identifiers for serialised DPF keys. *)

val expand_into :
  t -> src:Bytes.t -> src_pos:int -> dst:Bytes.t -> dst_pos:int -> int
(** [expand_into prg ~src ~src_pos ~dst ~dst_pos] expands the 16-byte seed
    at [src_pos] into 32 bytes at [dst_pos] (left child then right child)
    and returns the control bits packed as [tl lor (tr lsl 1)]. The [src]
    and [dst] regions must not overlap. *)

val convert : t -> seed:Bytes.t -> pos:int -> len:int -> string
(** [convert prg ~seed ~pos ~len] expands the 16-byte seed at [pos] into a
    [len]-byte leaf value share (BGI16's Convert for value-carrying
    DPFs). *)
