module Json = Lw_json.Json

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | KW_FN | KW_LET | KW_IF | KW_ELSE | KW_FOR | KW_IN | KW_WHILE | KW_RETURN
  | KW_TRUE | KW_FALSE | KW_NULL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ASSIGN | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

type error = { line : int; message : string }

exception Syntax of error

let syntax line fmt = Printf.ksprintf (fun message -> raise (Syntax { line; message })) fmt

let keyword = function
  | "fn" -> Some KW_FN
  | "let" -> Some KW_LET
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "for" -> Some KW_FOR
  | "while" -> Some KW_WHILE
  | "in" -> Some KW_IN
  | "return" -> Some KW_RETURN
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "null" -> Some KW_NULL
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let emit t = tokens := (t, !line) :: !tokens in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      emit (match keyword word with Some kw -> kw | None -> IDENT word)
    end
    else if is_digit c then begin
      let start = !pos in
      while
        !pos < n
        && (is_digit src.[!pos] || src.[!pos] = '.'
           || ((src.[!pos] = 'e' || src.[!pos] = 'E') && !pos > start)
           || ((src.[!pos] = '-' || src.[!pos] = '+')
              && !pos > start
              && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
      do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f)
      | None -> syntax !line "bad number literal %S" text
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then syntax !line "unterminated string"
        else begin
          let c = src.[!pos] in
          incr pos;
          if c = '"' then ()
          else if c = '\\' then begin
            if !pos >= n then syntax !line "unterminated escape";
            let e = src.[!pos] in
            incr pos;
            (match e with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | _ -> syntax !line "unknown escape \\%c" e);
            go ()
          end
          else begin
            if c = '\n' then incr line;
            Buffer.add_char buf c;
            go ()
          end
        end
      in
      go ();
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two t =
        emit t;
        pos := !pos + 2
      in
      let one t =
        emit t;
        incr pos
      in
      match (c, peek 1) with
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '=', _ -> one ASSIGN
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | '.', _ -> one DOT
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | _ -> syntax !line "unexpected character %C" c
    end
  done;
  emit EOF;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* AST and parser                                                      *)
(* ------------------------------------------------------------------ *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr =
  | Lit of Json.t
  | Var of string
  | ListE of expr list
  | ObjE of (string * expr) list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Index of expr * expr

type stmt =
  | SLet of string * expr
  | SAssign of string * expr
  | SIf of expr * block * block
  | SFor of string * expr * block
  | SWhile of expr * block
  | SReturn of expr
  | SExpr of expr

and block = stmt list

type fn_def = { params : string list; body : block }

type program = (string * fn_def) list

type parser_state = { mutable toks : (token * int) list }

let cur p = match p.toks with [] -> (EOF, 0) | t :: _ -> t
let cur_line p = snd (cur p)
let advance p = match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let eat p tok name =
  let t, line = cur p in
  if t = tok then advance p else syntax line "expected %s" name

let eat_ident p what =
  match cur p with
  | IDENT name, _ ->
      advance p;
      name
  | _, line -> syntax line "expected %s" what

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = ref (parse_and p) in
  while fst (cur p) = OROR do
    advance p;
    lhs := Binop (Or, !lhs, parse_and p)
  done;
  !lhs

and parse_and p =
  let lhs = ref (parse_equality p) in
  while fst (cur p) = ANDAND do
    advance p;
    lhs := Binop (And, !lhs, parse_equality p)
  done;
  !lhs

and parse_equality p =
  let lhs = ref (parse_comparison p) in
  let rec go () =
    match fst (cur p) with
    | EQEQ ->
        advance p;
        lhs := Binop (Eq, !lhs, parse_comparison p);
        go ()
    | NEQ ->
        advance p;
        lhs := Binop (Ne, !lhs, parse_comparison p);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_comparison p =
  let lhs = ref (parse_additive p) in
  let rec go () =
    let op =
      match fst (cur p) with
      | LT -> Some Lt
      | LE -> Some Le
      | GT -> Some Gt
      | GE -> Some Ge
      | _ -> None
    in
    match op with
    | Some op ->
        advance p;
        lhs := Binop (op, !lhs, parse_additive p);
        go ()
    | None -> ()
  in
  go ();
  !lhs

and parse_additive p =
  let lhs = ref (parse_multiplicative p) in
  let rec go () =
    match fst (cur p) with
    | PLUS ->
        advance p;
        lhs := Binop (Add, !lhs, parse_multiplicative p);
        go ()
    | MINUS ->
        advance p;
        lhs := Binop (Sub, !lhs, parse_multiplicative p);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative p =
  let lhs = ref (parse_unary p) in
  let rec go () =
    let op =
      match fst (cur p) with STAR -> Some Mul | SLASH -> Some Div | PERCENT -> Some Mod | _ -> None
    in
    match op with
    | Some op ->
        advance p;
        lhs := Binop (op, !lhs, parse_unary p);
        go ()
    | None -> ()
  in
  go ();
  !lhs

and parse_unary p =
  match fst (cur p) with
  | BANG ->
      advance p;
      Unop (Not, parse_unary p)
  | MINUS ->
      advance p;
      Unop (Neg, parse_unary p)
  | _ -> parse_postfix p

and parse_postfix p =
  let base = parse_primary p in
  let rec go e =
    match fst (cur p) with
    | LBRACKET ->
        advance p;
        let idx = parse_expr p in
        eat p RBRACKET "']'";
        go (Index (e, idx))
    | DOT ->
        advance p;
        let field = eat_ident p "field name after '.'" in
        go (Index (e, Lit (Json.String field)))
    | LPAREN -> (
        match e with
        | Var name ->
            advance p;
            let args = parse_args p in
            go (Call (name, args))
        | _ -> syntax (cur_line p) "only named functions can be called")
    | _ -> e
  in
  go base

and parse_args p =
  if fst (cur p) = RPAREN then begin
    advance p;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr p in
      match fst (cur p) with
      | COMMA ->
          advance p;
          go (e :: acc)
      | RPAREN ->
          advance p;
          List.rev (e :: acc)
      | _ -> syntax (cur_line p) "expected ',' or ')' in arguments"
    in
    go []
  end

and parse_primary p =
  let t, line = cur p in
  match t with
  | NUMBER f ->
      advance p;
      Lit (Json.Number f)
  | STRING s ->
      advance p;
      Lit (Json.String s)
  | KW_TRUE ->
      advance p;
      Lit (Json.Bool true)
  | KW_FALSE ->
      advance p;
      Lit (Json.Bool false)
  | KW_NULL ->
      advance p;
      Lit Json.Null
  | IDENT name ->
      advance p;
      Var name
  | LPAREN ->
      advance p;
      let e = parse_expr p in
      eat p RPAREN "')'";
      e
  | LBRACKET ->
      advance p;
      if fst (cur p) = RBRACKET then begin
        advance p;
        ListE []
      end
      else begin
        let rec go acc =
          let e = parse_expr p in
          match fst (cur p) with
          | COMMA ->
              advance p;
              go (e :: acc)
          | RBRACKET ->
              advance p;
              ListE (List.rev (e :: acc))
          | _ -> syntax (cur_line p) "expected ',' or ']' in list"
        in
        go []
      end
  | LBRACE ->
      advance p;
      if fst (cur p) = RBRACE then begin
        advance p;
        ObjE []
      end
      else begin
        let field () =
          let key =
            match cur p with
            | STRING s, _ ->
                advance p;
                s
            | IDENT s, _ ->
                advance p;
                s
            | _, line -> syntax line "expected object key"
          in
          eat p COLON "':'";
          (key, parse_expr p)
        in
        let rec go acc =
          let f = field () in
          match fst (cur p) with
          | COMMA ->
              advance p;
              go (f :: acc)
          | RBRACE ->
              advance p;
              ObjE (List.rev (f :: acc))
          | _ -> syntax (cur_line p) "expected ',' or '}' in object"
        in
        go []
      end
  | _ -> syntax line "expected an expression"

let rec parse_block p =
  eat p LBRACE "'{'";
  let rec go acc =
    if fst (cur p) = RBRACE then begin
      advance p;
      List.rev acc
    end
    else go (parse_stmt p :: acc)
  in
  go []

and parse_stmt p =
  match cur p with
  | KW_LET, _ ->
      advance p;
      let name = eat_ident p "variable name" in
      eat p ASSIGN "'='";
      let e = parse_expr p in
      eat p SEMI "';'";
      SLet (name, e)
  | KW_RETURN, _ ->
      advance p;
      let e = parse_expr p in
      eat p SEMI "';'";
      SReturn e
  | KW_IF, _ ->
      advance p;
      eat p LPAREN "'('";
      let cond = parse_expr p in
      eat p RPAREN "')'";
      let then_b = parse_block p in
      let else_b =
        if fst (cur p) = KW_ELSE then begin
          advance p;
          if fst (cur p) = KW_IF then [ parse_stmt p ] else parse_block p
        end
        else []
      in
      SIf (cond, then_b, else_b)
  | KW_WHILE, _ ->
      advance p;
      eat p LPAREN "'('";
      let cond = parse_expr p in
      eat p RPAREN "')'";
      SWhile (cond, parse_block p)
  | KW_FOR, _ ->
      advance p;
      eat p LPAREN "'('";
      let var = eat_ident p "loop variable" in
      eat p KW_IN "'in'";
      let e = parse_expr p in
      eat p RPAREN "')'";
      SFor (var, e, parse_block p)
  | IDENT name, _ when (match p.toks with _ :: (ASSIGN, _) :: _ -> true | _ -> false) ->
      advance p;
      advance p;
      let e = parse_expr p in
      eat p SEMI "';'";
      SAssign (name, e)
  | _ ->
      let e = parse_expr p in
      eat p SEMI "';'";
      SExpr e

let parse_fn p =
  eat p KW_FN "'fn'";
  let name = eat_ident p "function name" in
  eat p LPAREN "'('";
  let params =
    if fst (cur p) = RPAREN then begin
      advance p;
      []
    end
    else begin
      let rec go acc =
        let x = eat_ident p "parameter name" in
        match fst (cur p) with
        | COMMA ->
            advance p;
            go (x :: acc)
        | RPAREN ->
            advance p;
            List.rev (x :: acc)
        | _ -> syntax (cur_line p) "expected ',' or ')' in parameters"
      in
      go []
    end
  in
  (name, { params; body = parse_block p })

let parse src =
  match
    let p = { toks = lex src } in
    let rec go acc =
      match fst (cur p) with
      | EOF -> List.rev acc
      | KW_FN ->
          let name, def = parse_fn p in
          if List.mem_assoc name acc then syntax (cur_line p) "duplicate function %s" name;
          go ((name, def) :: acc)
      | _ -> syntax (cur_line p) "expected 'fn' at top level"
    in
    go []
  with
  | fns -> Ok fns
  | exception Syntax e -> Error e

let function_names p = List.map fst p
let has_function p name = List.mem_assoc name p

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

type effect_ = Store of string * Json.t

exception Runtime_error of string
exception Out_of_gas
exception Return_exc of Json.t

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type state = {
  program : program;
  mutable gas : int;
  mutable effects : effect_ list; (* reversed *)
  mutable depth : int;
}

let burn st =
  st.gas <- st.gas - 1;
  if st.gas <= 0 then raise Out_of_gas

type scope = (string, Json.t) Hashtbl.t

let lookup scopes name =
  let rec go = function
    | [] -> fail "unbound variable %s" name
    | (s : scope) :: rest -> ( match Hashtbl.find_opt s name with Some v -> v | None -> go rest)
  in
  go scopes

let assign scopes name v =
  let rec go = function
    | [] -> fail "assignment to undeclared variable %s" name
    | (s : scope) :: rest -> if Hashtbl.mem s name then Hashtbl.replace s name v else go rest
  in
  go scopes

let type_name = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Number _ -> "number"
  | Json.String _ -> "string"
  | Json.List _ -> "list"
  | Json.Obj _ -> "object"

let as_number = function Json.Number f -> f | v -> fail "expected number, got %s" (type_name v)
let as_string = function Json.String s -> s | v -> fail "expected string, got %s" (type_name v)
let as_bool = function Json.Bool b -> b | v -> fail "expected bool, got %s" (type_name v)
let as_list = function Json.List l -> l | v -> fail "expected list, got %s" (type_name v)
let as_obj = function Json.Obj o -> o | v -> fail "expected object, got %s" (type_name v)

let as_int v =
  let f = as_number v in
  if Float.is_integer f then int_of_float f else fail "expected integer, got %g" f

let to_display = function
  | Json.String s -> s
  | Json.Number f -> if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f else Printf.sprintf "%g" f
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | (Json.List _ | Json.Obj _) as v -> Json.to_string v

let num_binop op a b =
  match op with
  | Add -> Json.Number (a +. b)
  | Sub -> Json.Number (a -. b)
  | Mul -> Json.Number (a *. b)
  | Div -> if b = 0. then fail "division by zero" else Json.Number (a /. b)
  | Mod -> if b = 0. then fail "modulo by zero" else Json.Number (Float.rem a b)
  | Lt -> Json.Bool (a < b)
  | Le -> Json.Bool (a <= b)
  | Gt -> Json.Bool (a > b)
  | Ge -> Json.Bool (a >= b)
  | Eq | Ne | And | Or -> assert false

(* ---- builtins ---- *)

let substr s start len =
  let n = String.length s in
  let start = max 0 (min start n) in
  let len = max 0 (min len (n - start)) in
  String.sub s start len

let builtin st name args =
  let arity k = if List.length args <> k then fail "%s expects %d argument(s)" name k in
  let arg i = List.nth args i in
  match name with
  | "len" -> (
      arity 1;
      match arg 0 with
      | Json.String s -> Json.Number (float_of_int (String.length s))
      | Json.List l -> Json.Number (float_of_int (List.length l))
      | Json.Obj o -> Json.Number (float_of_int (List.length o))
      | v -> fail "len of %s" (type_name v))
  | "str" ->
      arity 1;
      Json.String (to_display (arg 0))
  | "num" -> (
      arity 1;
      match arg 0 with
      | Json.Number _ as v -> v
      | Json.String s -> (
          match float_of_string_opt (String.trim s) with
          | Some f -> Json.Number f
          | None -> Json.Null)
      | v -> fail "num of %s" (type_name v))
  | "floor" ->
      arity 1;
      Json.Number (Float.floor (as_number (arg 0)))
  | "abs" ->
      arity 1;
      Json.Number (Float.abs (as_number (arg 0)))
  | "min" ->
      arity 2;
      Json.Number (Float.min (as_number (arg 0)) (as_number (arg 1)))
  | "max" ->
      arity 2;
      Json.Number (Float.max (as_number (arg 0)) (as_number (arg 1)))
  | "split" ->
      arity 2;
      let s = as_string (arg 0) and sep = as_string (arg 1) in
      if String.length sep <> 1 then fail "split expects a 1-character separator";
      Json.List (List.map (fun x -> Json.String x) (String.split_on_char sep.[0] s))
  | "join" ->
      arity 2;
      Json.String (String.concat (as_string (arg 1)) (List.map as_string (as_list (arg 0))))
  | "contains" -> (
      arity 2;
      match arg 0 with
      | Json.List l -> Json.Bool (List.exists (Json.equal (arg 1)) l)
      | Json.String s ->
          let sub = as_string (arg 1) in
          let n = String.length s and m = String.length sub in
          let rec go i = if i + m > n then false else String.sub s i m = sub || go (i + 1) in
          Json.Bool (m = 0 || go 0)
      | v -> fail "contains on %s" (type_name v))
  | "starts_with" ->
      arity 2;
      let s = as_string (arg 0) and p = as_string (arg 1) in
      Json.Bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | "ends_with" ->
      arity 2;
      let s = as_string (arg 0) and p = as_string (arg 1) in
      let n = String.length s and m = String.length p in
      Json.Bool (m <= n && String.sub s (n - m) m = p)
  | "lower" ->
      arity 1;
      Json.String (String.lowercase_ascii (as_string (arg 0)))
  | "upper" ->
      arity 1;
      Json.String (String.uppercase_ascii (as_string (arg 0)))
  | "trim" ->
      arity 1;
      Json.String (String.trim (as_string (arg 0)))
  | "substr" ->
      arity 3;
      Json.String (substr (as_string (arg 0)) (as_int (arg 1)) (as_int (arg 2)))
  | "replace" ->
      arity 3;
      let s = as_string (arg 0) and a = as_string (arg 1) and b = as_string (arg 2) in
      if a = "" then fail "replace of empty string";
      let buf = Buffer.create (String.length s) in
      let m = String.length a in
      let i = ref 0 in
      while !i < String.length s do
        if !i + m <= String.length s && String.sub s !i m = a then begin
          Buffer.add_string buf b;
          i := !i + m
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      Json.String (Buffer.contents buf)
  | "json_parse" -> (
      arity 1;
      match Json.of_string_opt (as_string (arg 0)) with Some v -> v | None -> Json.Null)
  | "json_str" ->
      arity 1;
      Json.String (Json.to_string (arg 0))
  | "keys" ->
      arity 1;
      Json.List (List.map (fun (k, _) -> Json.String k) (as_obj (arg 0)))
  | "has" ->
      arity 2;
      Json.Bool (List.mem_assoc (as_string (arg 1)) (as_obj (arg 0)))
  | "get" -> (
      arity 3;
      match arg 0 with
      | Json.Obj o -> (
          match List.assoc_opt (as_string (arg 1)) o with
          | Some Json.Null | None -> arg 2
          | Some v -> v)
      | Json.Null -> arg 2
      | v -> fail "get on %s" (type_name v))
  | "set" ->
      arity 3;
      let o = as_obj (arg 0) and k = as_string (arg 1) in
      Json.Obj ((k, arg 2) :: List.remove_assoc k o)
  | "push" ->
      arity 2;
      Json.List (as_list (arg 0) @ [ arg 1 ])
  | "concat" ->
      arity 2;
      Json.List (as_list (arg 0) @ as_list (arg 1))
  | "slice" ->
      arity 3;
      let l = as_list (arg 0) and start = as_int (arg 1) and len = as_int (arg 2) in
      let a = Array.of_list l in
      let n = Array.length a in
      let start = max 0 (min start n) in
      let len = max 0 (min len (n - start)) in
      Json.List (Array.to_list (Array.sub a start len))
  | "range" ->
      arity 1;
      let n = as_int (arg 0) in
      if n < 0 || n > 100000 then fail "range out of bounds";
      Json.List (List.init n (fun i -> Json.Number (float_of_int i)))
  | "reverse" ->
      arity 1;
      Json.List (List.rev (as_list (arg 0)))
  | "sort" -> (
      arity 1;
      (* homogeneous lists of numbers or strings, ascending *)
      match as_list (arg 0) with
      | [] -> Json.List []
      | Json.Number _ :: _ as items ->
          Json.List
            (List.sort compare (List.map (fun v -> Json.Number (as_number v)) items))
      | Json.String _ :: _ as items ->
          Json.List
            (List.map
               (fun s -> Json.String s)
               (List.sort String.compare (List.map as_string items)))
      | v :: _ -> fail "sort expects numbers or strings, got %s" (type_name v))
  | "index_of" ->
      arity 2;
      let rec find i = function
        | [] -> Json.Number (-1.)
        | x :: rest -> if Json.equal x (arg 1) then Json.Number (float_of_int i) else find (i + 1) rest
      in
      find 0 (as_list (arg 0))
  | "first" -> (
      arity 1;
      match as_list (arg 0) with [] -> Json.Null | x :: _ -> x)
  | "last" -> (
      arity 1;
      match List.rev (as_list (arg 0)) with [] -> Json.Null | x :: _ -> x)
  | "typeof" ->
      arity 1;
      Json.String (type_name (arg 0))
  | "store" ->
      arity 2;
      st.effects <- Store (as_string (arg 0), arg 1) :: st.effects;
      Json.Null
  | _ -> fail "unknown function %s" name

(* ---- expression / statement evaluation ---- *)

let max_call_depth = 64

let rec eval st scopes expr =
  burn st;
  match expr with
  | Lit v -> v
  | Var name -> lookup scopes name
  | ListE items -> Json.List (List.map (eval st scopes) items)
  | ObjE fields -> Json.Obj (List.map (fun (k, e) -> (k, eval st scopes e)) fields)
  | Unop (Not, e) -> Json.Bool (not (as_bool (eval st scopes e)))
  | Unop (Neg, e) -> Json.Number (-.as_number (eval st scopes e))
  | Binop (And, a, b) ->
      if as_bool (eval st scopes a) then Json.Bool (as_bool (eval st scopes b)) else Json.Bool false
  | Binop (Or, a, b) ->
      if as_bool (eval st scopes a) then Json.Bool true else Json.Bool (as_bool (eval st scopes b))
  | Binop (Eq, a, b) -> Json.Bool (Json.equal (eval st scopes a) (eval st scopes b))
  | Binop (Ne, a, b) -> Json.Bool (not (Json.equal (eval st scopes a) (eval st scopes b)))
  | Binop (Add, a, b) -> (
      let va = eval st scopes a and vb = eval st scopes b in
      match (va, vb) with
      | Json.Number x, Json.Number y -> Json.Number (x +. y)
      | (Json.String _, _ | _, Json.String _) -> Json.String (to_display va ^ to_display vb)
      | _ -> fail "cannot add %s and %s" (type_name va) (type_name vb))
  | Binop (((Sub | Mul | Div | Mod | Lt | Le | Gt | Ge) as op), a, b) -> (
      let va = eval st scopes a and vb = eval st scopes b in
      match (op, va, vb) with
      | (Lt | Le | Gt | Ge), Json.String x, Json.String y ->
          let c = String.compare x y in
          Json.Bool
            (match op with
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0
            | _ -> assert false)
      | _ -> num_binop op (as_number va) (as_number vb))
  | Index (e, idx) -> (
      let v = eval st scopes e and i = eval st scopes idx in
      match (v, i) with
      | Json.List l, Json.Number _ ->
          let i = as_int i in
          if i >= 0 && i < List.length l then List.nth l i else Json.Null
      | Json.Obj o, Json.String k -> ( match List.assoc_opt k o with Some v -> v | None -> Json.Null)
      | Json.Null, _ -> Json.Null
      | _ -> fail "cannot index %s with %s" (type_name v) (type_name i))
  | Call (name, args) ->
      let vals = List.map (eval st scopes) args in
      call st name vals

and call st name vals =
  match List.assoc_opt name st.program with
  | Some def ->
      if List.length vals <> List.length def.params then
        fail "%s expects %d argument(s), got %d" name (List.length def.params) (List.length vals);
      if st.depth >= max_call_depth then fail "call depth exceeded";
      st.depth <- st.depth + 1;
      let scope : scope = Hashtbl.create 8 in
      List.iter2 (fun p v -> Hashtbl.replace scope p v) def.params vals;
      let result =
        match exec_block st [ scope ] def.body with
        | () -> Json.Null
        | exception Return_exc v -> v
      in
      st.depth <- st.depth - 1;
      result
  | None -> builtin st name vals

and exec_block st scopes block =
  let scope : scope = Hashtbl.create 8 in
  let scopes = scope :: scopes in
  List.iter (exec_stmt st scopes) block

and exec_stmt st scopes stmt =
  burn st;
  match stmt with
  | SLet (name, e) -> (
      match scopes with
      | scope :: _ -> Hashtbl.replace scope name (eval st scopes e)
      | [] -> assert false)
  | SAssign (name, e) -> assign scopes name (eval st scopes e)
  | SReturn e -> raise (Return_exc (eval st scopes e))
  | SExpr e -> ignore (eval st scopes e)
  | SIf (cond, then_b, else_b) ->
      if as_bool (eval st scopes cond) then exec_block st scopes then_b
      else exec_block st scopes else_b
  | SWhile (cond, body) ->
      (* gas bounds the iteration count, so hostile code cannot spin *)
      while as_bool (eval st scopes cond) do
        burn st;
        exec_block st scopes body
      done
  | SFor (var, e, body) ->
      let items = as_list (eval st scopes e) in
      List.iter
        (fun item ->
          burn st;
          let scope : scope = Hashtbl.create 4 in
          Hashtbl.replace scope var item;
          exec_block st (scope :: scopes) body)
        items

let run ?(gas = 200_000) program ~fn ~args =
  if not (has_function program fn) then Error (Printf.sprintf "no function %s" fn)
  else begin
    let st = { program; gas; effects = []; depth = 0 } in
    match call st fn args with
    | v -> Ok (v, List.rev st.effects)
    | exception Runtime_error m -> Error m
    | exception Out_of_gas -> Error "out of gas"
  end
