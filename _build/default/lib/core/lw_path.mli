(** Lightweb paths (§3.1): every data blob has a unique path whose
    top-level component must be a valid domain —
    ["nytimes.com/world/africa/2023/06/headlines.json"]. Beyond the
    domain, any format goes. *)

type t

val parse : string -> (t, string) result
(** Accepts ["domain"] or ["domain/anything..."]. The domain must be
    dot-separated LDH labels with at least two labels, each 1..63 chars,
    total ≤ 253. *)

val of_parts : domain:string -> rest:string -> (t, string) result

val domain : t -> string
val rest : t -> string
(** Either [""] or a string starting with ['/']. *)

val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val valid_domain : string -> bool

val in_domain : t -> string -> bool
(** [in_domain p d]: does [p] live under domain [d]? The browser enforces
    this on every key a code blob plans to fetch (domain separation). *)
