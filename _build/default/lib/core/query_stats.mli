(** Private per-domain query counting for billing (§4).

    CDNs want to "charge publishers proportionally to the number of
    queries received for their domain" without learning which user queried
    what; the paper points to Prio-style private aggregation. This module
    implements the additive-secret-sharing core of such a system:

    each client splits its one-hot "I queried domain i" vector into two
    random shares that sum (mod 2^64) to the vector, and submits one share
    to each of two non-colluding aggregation servers. Each server's view is
    a uniformly random vector; only the {e sum of totals} across both
    servers — the per-domain aggregate the CDN bills from — carries any
    information. *)

type report = { share0 : int64 array; share1 : int64 array }

val report : domains:int -> domain_index:int -> Lw_crypto.Drbg.t -> report
(** A contribution of 1 to [domain_index]. Raises [Invalid_argument] on a
    bad index. *)

val dummy_report : domains:int -> Lw_crypto.Drbg.t -> report
(** A contribution of 0 everywhere — cover traffic so that {e whether} a
    user reports is also uninformative. *)

type aggregator

val aggregator : domains:int -> aggregator
val absorb : aggregator -> int64 array -> unit
(** Raises [Invalid_argument] on a length mismatch. *)

val reports_absorbed : aggregator -> int
val share_totals : aggregator -> int64 array
(** One server's running totals — uniformly random in isolation. *)

val combine : aggregator -> aggregator -> (int64 array, string) result
(** The billing totals; fails if the aggregators saw different report
    counts (a malformed-submission tell). *)
