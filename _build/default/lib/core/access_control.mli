(** Access control and paywalls (§3.3–3.4).

    The CDN stores only ciphertext; a publisher hands paying subscribers
    the current epoch key out-of-band. Revocation = advancing the epoch
    and re-encrypting: subscribers renew their key with the publisher,
    revoked readers cannot, and because epoch keys are derived
    independently from the publisher's master secret (not from each
    other), an old key gives nothing about the new one. The CDN and the
    network learn only that a user has {e some} relationship with the
    publisher — never which pages they read. *)

type master
(** Publisher-held secret. *)

val master : seed:string -> master

val epoch_key : master -> epoch:int -> string
(** 32-byte AEAD key for an epoch; requires [epoch >= 0]. *)

type subscription = { mutable epoch : int; mutable key : string }
(** What a subscriber holds: the current epoch and its key. *)

val subscribe : master -> epoch:int -> subscription

val renew : master -> epoch:int -> subscription -> unit
(** Publisher-side: move a still-authorised subscriber to [epoch]. *)

(** {2 Sealed blob format} *)

val seal : master -> epoch:int -> path:string -> Lw_json.Json.t -> Lw_json.Json.t
(** [seal m ~epoch ~path v] wraps the page data for storage at [path]; the
    path is bound as AEAD associated data, so ciphertext cannot be
    replayed at a different path. The result is a small JSON envelope
    (storable like any data blob). *)

val open_ : subscription -> path:string -> Lw_json.Json.t -> (Lw_json.Json.t, string) result
(** Subscriber-side decryption. Fails for the wrong epoch (stale key after
    a rotation) or a forged/mismatched ciphertext. *)

val is_sealed : Lw_json.Json.t -> bool
val sealed_epoch : Lw_json.Json.t -> int option
