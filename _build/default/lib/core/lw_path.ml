type t = { domain : string; rest : string }

let valid_label l =
  let n = String.length l in
  n >= 1 && n <= 63
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-') l
  && l.[0] <> '-'
  && l.[n - 1] <> '-'

let valid_domain d =
  String.length d <= 253
  &&
  let labels = String.split_on_char '.' d in
  List.length labels >= 2 && List.for_all valid_label labels

let of_parts ~domain ~rest =
  if not (valid_domain domain) then Error (Printf.sprintf "invalid domain %S" domain)
  else if rest <> "" && rest.[0] <> '/' then Error "path rest must start with '/'"
  else if String.exists (fun c -> c = '\x00') rest then Error "NUL in path"
  else Ok { domain; rest }

let parse s =
  match String.index_opt s '/' with
  | None -> of_parts ~domain:s ~rest:""
  | Some i -> of_parts ~domain:(String.sub s 0 i) ~rest:(String.sub s i (String.length s - i))

let domain t = t.domain
let rest t = t.rest
let to_string t = t.domain ^ t.rest
let equal a b = String.equal a.domain b.domain && String.equal a.rest b.rest
let pp fmt t = Format.pp_print_string fmt (to_string t)
let in_domain t d = String.equal t.domain d
