type size_class = Small | Medium | Large

let class_name = function Small -> "small" | Medium -> "medium" | Large -> "large"

let default_class_geometry cls =
  let open Universe in
  match cls with
  | Small ->
      { default_geometry with data_blob_size = 512; code_blob_size = 8 * 1024 }
  | Medium -> default_geometry
  | Large ->
      { default_geometry with data_blob_size = 4096; code_blob_size = 32 * 1024 }

type registry = { owners : (string, string) Hashtbl.t }

let registry () = { owners = Hashtbl.create 64 }

let register r ~publisher ~domain =
  if not (Lw_path.valid_domain domain) then Error (Printf.sprintf "invalid domain %S" domain)
  else begin
    match Hashtbl.find_opt r.owners domain with
    | Some owner when not (String.equal owner publisher) ->
        Error (Printf.sprintf "domain %s is registered to %s" domain owner)
    | Some _ -> Ok ()
    | None ->
        Hashtbl.replace r.owners domain publisher;
        Ok ()
  end

let registered_owner r domain = Hashtbl.find_opt r.owners domain

type cdn = {
  name : string;
  registry : registry;
  universes : (size_class * Universe.t) list;
  mutable peer_list : cdn list;
}

let create_cdn ?(seed = "lightweb") ?classes ~name registry =
  let classes =
    match classes with
    | Some cs -> cs
    | None -> List.map (fun c -> (c, default_class_geometry c)) [ Small; Medium; Large ]
  in
  let universes =
    List.map
      (fun (cls, geometry) ->
        (cls, Universe.create ~seed ~name:(Printf.sprintf "%s/%s" name (class_name cls)) geometry))
      classes
  in
  { name; registry; universes; peer_list = [] }

let cdn_name c = c.name
let universes c = c.universes
let universe c cls = List.assoc_opt cls c.universes
let peers c = List.map (fun p -> p.name) c.peer_list

let peer a b =
  if a != b then begin
    if not (List.memq b a.peer_list) then a.peer_list <- b :: a.peer_list;
    if not (List.memq a b.peer_list) then b.peer_list <- a :: b.peer_list
  end

let push_to_cdn cdn ~publisher cls site =
  match universe cdn cls with
  | None -> Ok 0 (* this CDN does not carry the class *)
  | Some u -> (
      match Publisher.push u ~publisher site with
      | Ok _ -> Ok 1
      | Error e -> Error (Printf.sprintf "%s: %s" cdn.name e))

let publish cdn ~publisher cls site =
  (* global ownership first: every universe must agree on the owner *)
  match register cdn.registry ~publisher ~domain:site.Publisher.domain with
  | Error _ as e -> e
  | Ok () ->
      let targets = cdn :: cdn.peer_list in
      List.fold_left
        (fun acc target ->
          match acc with
          | Error _ as e -> e
          | Ok n -> (
              match push_to_cdn target ~publisher cls site with
              | Ok m -> Ok (n + m)
              | Error _ as e -> e))
        (Ok 0) targets
