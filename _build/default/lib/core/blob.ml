let overhead = 4
let max_content ~size = size - overhead

let pad ~size content =
  let n = String.length content in
  if size < overhead then Error "blob size too small for framing"
  else if n > max_content ~size then
    Error (Printf.sprintf "content of %d bytes exceeds blob capacity %d" n (max_content ~size))
  else begin
    let b = Bytes.make size '\x00' in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.blit_string content 0 b overhead n;
    Ok (Bytes.unsafe_to_string b)
  end

let unpad blob =
  let total = String.length blob in
  if total < overhead then None
  else begin
    let n = Int32.to_int (String.get_int32_be blob 0) in
    if n < 0 || n > total - overhead then None else Some (String.sub blob overhead n)
  end
