module Json = Lw_json.Json

type master = { secret : string }

let master ~seed = { secret = Lw_crypto.Sha256.digest ("lw-paywall-master/" ^ seed) }

let epoch_key m ~epoch =
  if epoch < 0 then invalid_arg "Access_control.epoch_key: negative epoch";
  (* independent per-epoch keys: one-way in the master, not chained *)
  Lw_crypto.Hmac.hkdf ~info:(Printf.sprintf "epoch/%d" epoch) ~len:32 m.secret

type subscription = { mutable epoch : int; mutable key : string }

let subscribe m ~epoch = { epoch; key = epoch_key m ~epoch }

let renew m ~epoch sub =
  sub.epoch <- epoch;
  sub.key <- epoch_key m ~epoch

let nonce_for ~epoch ~path =
  String.sub (Lw_crypto.Sha256.digest (Printf.sprintf "nonce/%d/%s" epoch path)) 0 12

let seal m ~epoch ~path value =
  let key = epoch_key m ~epoch in
  let nonce = nonce_for ~epoch ~path in
  let ct = Lw_crypto.Aead.seal ~key ~nonce ~aad:path (Json.to_string value) in
  Json.Obj
    [
      ("_sealed", Json.Number 1.);
      ("epoch", Json.Number (float_of_int epoch));
      ("ct", Json.String (Lw_util.Hex.encode ct));
    ]

let is_sealed v =
  match v with Json.Obj fields -> List.mem_assoc "_sealed" fields | _ -> false

let sealed_epoch v =
  if not (is_sealed v) then None
  else
    match Json.member_opt "epoch" v with
    | Some (Json.Number f) when Float.is_integer f -> Some (int_of_float f)
    | Some _ | None -> None

let open_ sub ~path v =
  if not (is_sealed v) then Error "not a sealed blob"
  else begin
    match (sealed_epoch v, Json.member_opt "ct" v) with
    | Some epoch, Some (Json.String hex) -> (
        if epoch <> sub.epoch then
          Error
            (Printf.sprintf "content is sealed for epoch %d but subscription key is epoch %d"
               epoch sub.epoch)
        else
          match Lw_util.Hex.decode_opt hex with
          | None -> Error "corrupt ciphertext encoding"
          | Some ct -> (
              let nonce = nonce_for ~epoch ~path in
              match Lw_crypto.Aead.open_ ~key:sub.key ~nonce ~aad:path ct with
              | None -> Error "decryption failed (wrong key or tampered content)"
              | Some pt -> (
                  match Json.of_string_opt pt with
                  | Some v -> Ok v
                  | None -> Error "sealed payload is not JSON")))
    | _ -> Error "malformed sealed blob"
  end
