(** Fixed-size blob framing (§3.1): "all code blobs in the universe must
    have a single fixed size... and all data blobs... as well". Content is
    length-prefixed and zero-padded so the stored object is always exactly
    the universe's blob size; padding is stripped on read. *)

val overhead : int
(** 4 bytes of length framing. *)

val pad : size:int -> string -> (string, string) result
(** [pad ~size content] frames and pads to exactly [size] bytes. *)

val unpad : string -> string option
(** Inverse of {!pad}; [None] on corrupt framing. *)

val max_content : size:int -> int
