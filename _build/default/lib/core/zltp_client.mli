(** The ZLTP client session (§2, §3.2).

    In PIR mode the client holds connections to the {e two} non-colluding
    logical servers, generates a fresh DPF key pair per private-GET, and
    XORs the two response shares. In enclave mode a single connection
    carries the request key (inside the simulated attested channel).

    Either way the application-facing operation is the paper's single
    primitive: [GET(key) -> value]. *)

type t

val connect :
  ?prefer:Zltp_mode.t list ->
  ?rng:Lw_crypto.Drbg.t ->
  Lw_net.Endpoint.t list ->
  (t, string) result
(** [connect endpoints] performs Hello/Welcome on each endpoint and checks
    the servers agree on parameters. PIR mode needs exactly two endpoints,
    enclave mode one; a mismatch is an [Error]. *)

val mode : t -> Zltp_mode.t
val blob_size : t -> int
val domain_bits : t -> int

val get : t -> string -> (string option, string) result
(** [get t key] is the private-GET: [Ok None] when no record exists under
    [key] (or a hash collision handed back someone else's record). *)

val get_raw_index : t -> int -> (string, string) result
(** PIR mode only: fetch bucket [index] without keyword hashing (cuckoo
    probing and tests use this). *)

val get_batch : t -> string list -> (string option list, string) result
(** Batched private-GETs (one round trip, server-side fused scan). *)

val queries_sent : t -> int

val close : t -> unit
(** Sends [Bye] best-effort and closes the endpoints. *)
