type client_msg =
  | Hello of { version : int; modes : Zltp_mode.t list }
  | Pir_query of { dpf_key : string }
  | Pir_batch of { dpf_keys : string list }
  | Enclave_get of { key : string }
  | Bye

type server_msg =
  | Welcome of {
      version : int;
      mode : Zltp_mode.t;
      domain_bits : int;
      blob_size : int;
      hash_key : string;
      server_id : string;
    }
  | Answer of { share : string }
  | Batch_answer of { shares : string list }
  | Enclave_answer of { value : string option }
  | Err of { code : int; message : string }

let protocol_version = 1
let err_not_negotiated = 1
let err_bad_request = 2
let err_wrong_mode = 3
let err_internal = 4

(* ---- primitive writers/readers: tag byte, u8, u32-be, length-prefixed
   strings and lists ---- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let add_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_list buf xs add =
  add_u32 buf (List.length xs);
  List.iter (add buf) xs

type reader = { src : string; mutable pos : int }

exception Decode of string

let need r n = if r.pos + n > String.length r.src then raise (Decode "truncated message")

let u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_be r.src r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then raise (Decode "negative length");
  v

let str r =
  let n = u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let list r elt =
  let n = u32 r in
  if n > 1 lsl 20 then raise (Decode "list too long");
  List.init n (fun _ -> elt r)

let finish r v =
  if r.pos <> String.length r.src then raise (Decode "trailing bytes");
  v

let run_decoder f s = try Ok (f { src = s; pos = 0 }) with Decode e -> Error e

(* ---- client messages ---- *)

let encode_client msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Hello { version; modes } ->
      add_u8 buf 1;
      add_u8 buf version;
      add_list buf modes (fun b m -> add_u8 b (Zltp_mode.to_tag m))
  | Pir_query { dpf_key } ->
      add_u8 buf 2;
      add_str buf dpf_key
  | Pir_batch { dpf_keys } ->
      add_u8 buf 3;
      add_list buf dpf_keys add_str
  | Enclave_get { key } ->
      add_u8 buf 4;
      add_str buf key
  | Bye -> add_u8 buf 5);
  Buffer.contents buf

let mode_of_tag r =
  match Zltp_mode.of_tag (u8 r) with
  | Some m -> m
  | None -> raise (Decode "unknown mode tag")

let decode_client s =
  run_decoder
    (fun r ->
      match u8 r with
      | 1 ->
          let version = u8 r in
          let modes = list r mode_of_tag in
          finish r (Hello { version; modes })
      | 2 -> finish r (Pir_query { dpf_key = str r })
      | 3 -> finish r (Pir_batch { dpf_keys = list r str })
      | 4 -> finish r (Enclave_get { key = str r })
      | 5 -> finish r Bye
      | t -> raise (Decode (Printf.sprintf "unknown client tag %d" t)))
    s

(* ---- server messages ---- *)

let encode_server msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Welcome { version; mode; domain_bits; blob_size; hash_key; server_id } ->
      add_u8 buf 1;
      add_u8 buf version;
      add_u8 buf (Zltp_mode.to_tag mode);
      add_u8 buf domain_bits;
      add_u32 buf blob_size;
      add_str buf hash_key;
      add_str buf server_id
  | Answer { share } ->
      add_u8 buf 2;
      add_str buf share
  | Batch_answer { shares } ->
      add_u8 buf 3;
      add_list buf shares add_str
  | Enclave_answer { value } -> (
      add_u8 buf 4;
      match value with
      | None -> add_u8 buf 0
      | Some v ->
          add_u8 buf 1;
          add_str buf v)
  | Err { code; message } ->
      add_u8 buf 5;
      add_u8 buf code;
      add_str buf message);
  Buffer.contents buf

let decode_server s =
  run_decoder
    (fun r ->
      match u8 r with
      | 1 ->
          let version = u8 r in
          let mode = mode_of_tag r in
          let domain_bits = u8 r in
          let blob_size = u32 r in
          let hash_key = str r in
          let server_id = str r in
          finish r (Welcome { version; mode; domain_bits; blob_size; hash_key; server_id })
      | 2 -> finish r (Answer { share = str r })
      | 3 -> finish r (Batch_answer { shares = list r str })
      | 4 -> (
          match u8 r with
          | 0 -> finish r (Enclave_answer { value = None })
          | 1 -> finish r (Enclave_answer { value = Some (str r) })
          | _ -> raise (Decode "bad option tag"))
      | 5 ->
          let code = u8 r in
          let message = str r in
          finish r (Err { code; message })
      | t -> raise (Decode (Printf.sprintf "unknown server tag %d" t)))
    s
