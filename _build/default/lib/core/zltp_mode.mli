(** ZLTP modes of operation (§2.2) and session negotiation.

    - [Pir2]: two-server private information retrieval. Strongest
      assumptions (cryptographic + non-collusion), linear-scan cost.
    - [Enclave]: hardware enclave + oblivious RAM. Polylog cost, but the
      client must trust the enclave vendor. *)

type t = Pir2 | Enclave

val name : t -> string
val to_tag : t -> int
val of_tag : int -> t option

val all : t list

val negotiate : client:t list -> server:t list -> t option
(** First mode in the client's preference order that the server supports
    (§2: "the client and server negotiate which cryptographic mode of
    operation they will use"). *)

val assumptions : t -> string list
(** The trust assumptions the mode's security rests on, for docs and the
    CLI's [info] output. *)
