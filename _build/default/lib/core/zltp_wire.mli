(** The ZLTP wire protocol: message types and binary codec.

    A session opens with [Hello]/[Welcome] (parameter discovery + mode
    negotiation, §2), then carries private-GET exchanges. PIR-mode queries
    carry a serialised DPF key share; enclave-mode queries carry the
    request key itself, which in a real deployment travels inside the
    attested TLS channel that terminates {e inside} the enclave — the
    untrusted host never sees it. *)

type client_msg =
  | Hello of { version : int; modes : Zltp_mode.t list }
  | Pir_query of { dpf_key : string }
  | Pir_batch of { dpf_keys : string list }
  | Enclave_get of { key : string }
  | Bye

type server_msg =
  | Welcome of {
      version : int;
      mode : Zltp_mode.t;
      domain_bits : int;
      blob_size : int;
      hash_key : string; (** keyword→index SipHash key (public) *)
      server_id : string;
    }
  | Answer of { share : string }
  | Batch_answer of { shares : string list }
  | Enclave_answer of { value : string option }
  | Err of { code : int; message : string }

val protocol_version : int

(** Error codes carried by [Err]. *)

val err_not_negotiated : int
val err_bad_request : int
val err_wrong_mode : int
val err_internal : int

val encode_client : client_msg -> string
val decode_client : string -> (client_msg, string) result
val encode_server : server_msg -> string
val decode_server : string -> (server_msg, string) result
