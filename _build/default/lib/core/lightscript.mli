(** Lightscript: the sandboxed scripting runtime that plays the role of
    the JavaScript inside a domain's code blob (§3.2).

    A code blob is a Lightscript program defining (at least) two
    functions:

    - [plan(path, state)] — given the requested path (relative to the
      domain) and the domain's local-storage object, return the list of
      data-blob keys to fetch. The browser pads/truncates the list to the
      universe's fixed fetch count, so [plan] cannot leak through request
      counts.
    - [render(path, state, data)] — given the fetched data blobs (JSON
      values, [null] for missing), return the page text.

    The language is expression-oriented over JSON values: literals, lists,
    objects, arithmetic/comparison/boolean operators, [let]/assignment,
    [if]/[else], [for ... in], [return], user function calls and a fixed
    builtin library. There is no I/O, no recursion-unsafe ambient
    authority, and every evaluation step burns gas, so a hostile
    publisher's code cannot hang the browser. Local-storage writes are
    returned as effects for the browser to apply ([store(key, value)]),
    never applied directly.

    Syntax example:
    {[
      fn plan(path, state) {
        let zip = get(state, "zip", "00000");
        return ["weather.com/by-zip/" + zip + ".json"];
      }
      fn render(path, state, data) {
        if (data[0] == null) { return "no forecast"; }
        return "Forecast: " + get(data[0], "summary", "?");
      }
    ]} *)

type program

type error = { line : int; message : string }

val parse : string -> (program, error) result

val function_names : program -> string list
val has_function : program -> string -> bool

type effect_ = Store of string * Lw_json.Json.t

exception Runtime_error of string
exception Out_of_gas

val run :
  ?gas:int ->
  program ->
  fn:string ->
  args:Lw_json.Json.t list ->
  (Lw_json.Json.t * effect_ list, string) result
(** [run p ~fn ~args] calls function [fn]; default gas budget 200_000
    steps. All failure modes (unknown function, arity, runtime type
    errors, gas exhaustion) come back as [Error]. *)

val pp_error : Format.formatter -> error -> unit
