(** Request batching (§5.1): the scan dominates per-request cost, so the
    server accumulates up to [batch_size] queries and answers them with a
    single fused pass over the data — higher latency (a request waits for
    its batch), higher throughput (the scan is paid once per batch).

    The scheduler is synchronous: callers {!submit} queries and the batch
    is answered when full or explicitly {!flush}ed, mirroring a
    fixed-batch server loop. {!measure} drives the latency/throughput
    sweep of E2. *)

type t

val create : ?batch_size:int -> Lw_pir.Server.t -> t
(** Default batch size 16, the paper's operating point. *)

val batch_size : t -> int
val pending : t -> int

val submit : t -> Lw_dpf.Dpf.key -> (string -> unit) -> unit
(** [submit t key deliver] enqueues a query; [deliver] receives the answer
    share when the batch executes (immediately if this fills it). *)

val flush : t -> unit
(** Execute a partial batch now. *)

val batches_executed : t -> int
val queries_answered : t -> int

type measurement = {
  batch_size : int;
  total_s : float; (** wall time to answer the whole batch *)
  latency_s : float; (** completion time of a request in the batch *)
  per_request_s : float; (** total_s / batch_size *)
  throughput_rps : float;
}

val measure : Lw_pir.Server.t -> Lw_dpf.Dpf.key array -> measurement
(** Time one fused batch over the given keys. *)
