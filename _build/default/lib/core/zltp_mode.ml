type t = Pir2 | Enclave

let name = function Pir2 -> "pir2" | Enclave -> "enclave"
let to_tag = function Pir2 -> 1 | Enclave -> 2
let of_tag = function 1 -> Some Pir2 | 2 -> Some Enclave | _ -> None
let all = [ Pir2; Enclave ]

let negotiate ~client ~server =
  List.find_opt (fun m -> List.mem m server) client

let assumptions = function
  | Pir2 ->
      [
        "cryptographic: a length-doubling PRG is secure";
        "non-collusion: at most 1 of the 2 servers is compromised";
      ]
  | Enclave -> [ "hardware: the enclave protects its private memory" ]
