type action = Real of string | Dummy

type slot = { time_s : float; action : action }

let pace ~slot_s ~horizon_s visits =
  if slot_s <= 0. || horizon_s <= 0. then invalid_arg "Pacer.pace: slot and horizon must be positive";
  let queue = Queue.create () in
  let pending = ref (List.sort (fun (a, _) (b, _) -> compare a b) visits) in
  let n_slots = int_of_float (Float.ceil (horizon_s /. slot_s)) in
  List.init n_slots (fun i ->
      let time_s = float_of_int i *. slot_s in
      (* admit every request that has arrived by this slot *)
      let rec admit () =
        match !pending with
        | (t, page) :: rest when t <= time_s ->
            Queue.push (t, page) queue;
            pending := rest;
            admit ()
        | _ -> ()
      in
      admit ();
      let action =
        if Queue.is_empty queue then Dummy
        else begin
          let _, page = Queue.pop queue in
          Real page
        end
      in
      { time_s; action })

type stats = {
  slots : int;
  real : int;
  dummies : int;
  max_delay_s : float;
  mean_delay_s : float;
  overhead : float;
}

let stats ~slot_s visits schedule =
  ignore slot_s;
  (* recover per-request delays by replaying the FIFO order *)
  let arrivals =
    List.sort compare (List.map fst visits) |> Array.of_list
  in
  let real_times =
    List.filter_map (fun s -> match s.action with Real _ -> Some s.time_s | Dummy -> None) schedule
    |> Array.of_list
  in
  let served = min (Array.length arrivals) (Array.length real_times) in
  let delays = Array.init served (fun i -> real_times.(i) -. arrivals.(i)) in
  let real = Array.length real_times in
  let dummies = List.length schedule - real in
  {
    slots = List.length schedule;
    real;
    dummies;
    max_delay_s = (if served = 0 then 0. else Array.fold_left Float.max 0. delays);
    mean_delay_s =
      (if served = 0 then 0.
       else Array.fold_left ( +. ) 0. delays /. float_of_int served);
    overhead = float_of_int dummies /. float_of_int (max 1 real);
  }
