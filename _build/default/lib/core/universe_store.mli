(** Universe persistence: a whole universe (geometry, keyword-hash seed,
    domain registry, code blobs, data blobs) serialises to one JSON
    document, so the CLI can snapshot a CDN's state and reload it with
    identical keyword-to-bucket placement (the hash seed travels with the
    snapshot — clients that cached indices stay correct). *)

val format_version : int

val export : Universe.t -> Lw_json.Json.t

val import : Lw_json.Json.t -> (Universe.t, string) result
(** Rebuilds the universe; code is re-validated, data paths are restored
    verbatim (collision renames that happened at original publish time are
    already materialised in the stored paths). *)

val save : Universe.t -> path:string -> (unit, string) result
val load : path:string -> (Universe.t, string) result
