(** Splitting long content across fixed-size data blobs (§5.1: "any values
    longer than this can be broken up and retrieved separately (i.e. the
    user can click a 'next' link if she wants to read more)").

    {!split} turns one long text into a chain of blob-sized JSON values
    with [part]/[parts]/[next] fields; a site's render code shows
    [body] and links to [next]. {!reassemble} is the inverse (used by
    tests and by readers that want the whole document). *)

val split :
  capacity:int -> suffix:string -> text:string -> ((string * Lw_json.Json.t) list, string) result
(** [split ~capacity ~suffix ~text] produces [(suffix_i, value_i)] pages
    whose serialised JSON each fits in [capacity] bytes. Part 1 keeps the
    original [suffix]; continuations get [suffix ^ "~pN"]. Fails when
    [capacity] cannot fit even a one-character body. *)

val next_suffix : Lw_json.Json.t -> string option
(** The [next] pointer of a page produced by {!split}, if any. *)

val body : Lw_json.Json.t -> string

val reassemble : (string -> Lw_json.Json.t option) -> string -> (string, string) result
(** [reassemble fetch suffix] follows the chain starting at [suffix]
    through [fetch] and concatenates the bodies. Detects cycles and
    missing parts. *)
