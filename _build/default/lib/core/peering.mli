(** Multiple universes and peering (§3.5).

    A CDN may run several universes in different size classes (small /
    medium / large blob geometry), trading per-request cost against the
    largest page it can carry — the attacker learns only {e which class} a
    user fetched from. CDNs peer: content published to one propagates to
    every peer carrying the same class, and a shared domain registry keeps
    each domain under one owner everywhere. *)

type size_class = Small | Medium | Large

val class_name : size_class -> string
val default_class_geometry : size_class -> Universe.geometry

(** {2 Shared domain registry} *)

type registry

val registry : unit -> registry
val register : registry -> publisher:string -> domain:string -> (unit, string) result
val registered_owner : registry -> string -> string option

(** {2 CDNs} *)

type cdn

val create_cdn :
  ?seed:string ->
  ?classes:(size_class * Universe.geometry) list ->
  name:string ->
  registry ->
  cdn
(** Default classes: all three, with {!default_class_geometry}. *)

val cdn_name : cdn -> string
val universes : cdn -> (size_class * Universe.t) list
val universe : cdn -> size_class -> Universe.t option

val peer : cdn -> cdn -> unit
(** Symmetric, idempotent. *)

val peers : cdn -> string list

val publish :
  cdn -> publisher:string -> size_class -> Publisher.site -> (int, string) result
(** Register the domain globally, push to this CDN's universe of the given
    class, then propagate to every peer carrying that class. Returns the
    number of universes now serving the site. *)
