type report = { share0 : int64 array; share1 : int64 array }

let random_vector ~domains rng =
  let bytes = Lw_crypto.Drbg.generate rng (8 * domains) in
  Array.init domains (fun i -> String.get_int64_le bytes (8 * i))

let split ~domains ~value_at rng =
  let share0 = random_vector ~domains rng in
  let share1 =
    Array.init domains (fun i ->
        let v = match value_at with Some j when j = i -> 1L | _ -> 0L in
        Int64.sub v share0.(i))
  in
  { share0; share1 }

let report ~domains ~domain_index rng =
  if domain_index < 0 || domain_index >= domains then
    invalid_arg "Query_stats.report: domain index out of range";
  split ~domains ~value_at:(Some domain_index) rng

let dummy_report ~domains rng = split ~domains ~value_at:None rng

type aggregator = { totals : int64 array; mutable count : int }

let aggregator ~domains =
  if domains < 1 then invalid_arg "Query_stats.aggregator: domains must be positive";
  { totals = Array.make domains 0L; count = 0 }

let absorb t share =
  if Array.length share <> Array.length t.totals then
    invalid_arg "Query_stats.absorb: share length mismatch";
  Array.iteri (fun i v -> t.totals.(i) <- Int64.add t.totals.(i) v) share;
  t.count <- t.count + 1

let reports_absorbed t = t.count
let share_totals t = Array.copy t.totals

let combine a b =
  if Array.length a.totals <> Array.length b.totals then Error "domain count mismatch"
  else if a.count <> b.count then
    Error (Printf.sprintf "report count mismatch (%d vs %d)" a.count b.count)
  else Ok (Array.init (Array.length a.totals) (fun i -> Int64.add a.totals.(i) b.totals.(i)))
