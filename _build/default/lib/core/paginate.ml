module Json = Lw_json.Json

let page_value ~body ~part ~parts ~next =
  Json.Obj
    ([ ("body", Json.String body); ("part", Json.Number (float_of_int part));
       ("parts", Json.Number (float_of_int parts)) ]
    @ match next with None -> [] | Some n -> [ ("next", Json.String n) ])

let envelope_overhead ~suffix ~parts =
  (* worst-case framing: empty body, a next pointer to the longest suffix *)
  let next = Some (Printf.sprintf "%s~p%d" suffix parts) in
  String.length (Json.to_string (page_value ~body:"" ~part:parts ~parts ~next))

(* JSON string escaping can inflate the body; chunk on a budget measured
   against the real serialised size, shrinking on overflow. *)
let split ~capacity ~suffix ~text =
  if suffix = "" then Error "empty suffix"
  else begin
    (* a conservative framing bound: no run can produce more parts than
       characters, so sizing the part/parts/next digits for that worst
       case guarantees every real envelope fits the budget *)
    let parts_bound = max 2 (String.length text + 1) in
    let overhead = envelope_overhead ~suffix ~parts:parts_bound in
    let budget = capacity - overhead in
    if budget < 1 then Error (Printf.sprintf "capacity %d cannot fit pagination framing" capacity)
    else begin
      (* cut into chunks whose *serialised* size fits; JSON escaping at
         most doubles common text, so halve on overflow *)
      let chunks = ref [] in
      let pos = ref 0 in
      let n = String.length text in
      (try
         while !pos < n do
           let rec try_len len =
             if len < 1 then failwith "capacity too small for content"
             else begin
               let candidate = String.sub text !pos (min len (n - !pos)) in
               let serialised = String.length (Json.to_string (Json.String candidate)) - 2 in
               if serialised <= budget then candidate else try_len (len / 2)
             end
           in
           let chunk = try_len budget in
           chunks := chunk :: !chunks;
           pos := !pos + String.length chunk
         done
       with Failure _ -> ());
      if !pos < n then Error (Printf.sprintf "capacity %d cannot fit pagination framing" capacity)
      else begin
        let chunks = Array.of_list (List.rev !chunks) in
        let chunks = if Array.length chunks = 0 then [| "" |] else chunks in
        let parts = Array.length chunks in
        let suffix_of i = if i = 0 then suffix else Printf.sprintf "%s~p%d" suffix (i + 1) in
        Ok
          (Array.to_list
             (Array.mapi
                (fun i chunk ->
                  let next = if i + 1 < parts then Some (suffix_of (i + 1)) else None in
                  (suffix_of i, page_value ~body:chunk ~part:(i + 1) ~parts ~next))
                chunks))
      end
    end
  end

let next_suffix v =
  match Json.member_opt "next" v with Some (Json.String s) -> Some s | _ -> None

let body v = match Json.member_opt "body" v with Some (Json.String s) -> s | _ -> ""

let reassemble fetch suffix =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 8 in
  let rec go suffix =
    if Hashtbl.mem seen suffix then Error (Printf.sprintf "pagination cycle at %s" suffix)
    else begin
      Hashtbl.replace seen suffix ();
      match fetch suffix with
      | None -> Error (Printf.sprintf "missing part %s" suffix)
      | Some v -> (
          Buffer.add_string buf (body v);
          match next_suffix v with
          | None -> Ok (Buffer.contents buf)
          | Some next -> go next)
    end
  in
  go suffix
