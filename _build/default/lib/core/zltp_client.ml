type session = { ep : Lw_net.Endpoint.t; welcome : Zltp_wire.server_msg }

type t = {
  mode : Zltp_mode.t;
  blob_size : int;
  domain_bits : int;
  keymap : Lw_pir.Keymap.t option; (* PIR mode *)
  sessions : session list;
  rng : Lw_crypto.Drbg.t;
  mutable queries : int;
}

let mode t = t.mode
let blob_size t = t.blob_size
let domain_bits t = t.domain_bits
let queries_sent t = t.queries

let roundtrip ep msg =
  ep.Lw_net.Endpoint.send (Zltp_wire.encode_client msg);
  match Zltp_wire.decode_server (ep.Lw_net.Endpoint.recv ()) with
  | Ok reply -> Ok reply
  | Error e -> Error (Printf.sprintf "undecodable server reply: %s" e)
  | exception Lw_net.Endpoint.Closed -> Error "connection closed"

let connect ?(prefer = [ Zltp_mode.Pir2; Zltp_mode.Enclave ]) ?rng endpoints =
  let rng = match rng with Some r -> r | None -> Lw_crypto.Drbg.system () in
  let hello ep =
    match roundtrip ep (Zltp_wire.Hello { version = Zltp_wire.protocol_version; modes = prefer }) with
    | Ok (Zltp_wire.Welcome _ as w) -> Ok { ep; welcome = w }
    | Ok (Zltp_wire.Err { message; _ }) -> Error (Printf.sprintf "server refused: %s" message)
    | Ok _ -> Error "protocol violation: expected Welcome"
    | Error e -> Error e
  in
  let rec hello_all acc = function
    | [] -> Ok (List.rev acc)
    | ep :: rest -> ( match hello ep with Ok s -> hello_all (s :: acc) rest | Error e -> Error e)
  in
  match hello_all [] endpoints with
  | Error e -> Error e
  | Ok [] -> Error "no endpoints given"
  | Ok (first :: _ as sessions) -> (
      let params s =
        match s.welcome with
        | Zltp_wire.Welcome { mode; domain_bits; blob_size; hash_key; _ } ->
            (mode, domain_bits, blob_size, hash_key)
        | _ -> assert false
      in
      let m, d, b, hk = params first in
      let consistent =
        List.for_all
          (fun s ->
            let m', d', b', hk' = params s in
            m = m' && d = d' && b = b' && String.equal hk hk')
          sessions
      in
      if not consistent then Error "servers disagree on session parameters"
      else
        match (m, List.length sessions) with
        | Zltp_mode.Pir2, 2 ->
            Ok
              {
                mode = m;
                blob_size = b;
                domain_bits = d;
                keymap = Some (Lw_pir.Keymap.create ~hash_key:hk ~domain_bits:d);
                sessions;
                rng;
                queries = 0;
              }
        | Zltp_mode.Pir2, n ->
            Error (Printf.sprintf "PIR mode requires exactly 2 non-colluding servers, got %d" n)
        | Zltp_mode.Enclave, 1 ->
            Ok
              {
                mode = m;
                blob_size = b;
                domain_bits = d;
                keymap = None;
                sessions;
                rng;
                queries = 0;
              }
        | Zltp_mode.Enclave, n ->
            Error (Printf.sprintf "enclave mode uses exactly 1 server, got %d" n))

let expect_answer = function
  | Ok (Zltp_wire.Answer { share }) -> Ok share
  | Ok (Zltp_wire.Err { message; _ }) -> Error message
  | Ok _ -> Error "protocol violation: expected Answer"
  | Error e -> Error e

let pir_fetch_index t index =
  match t.sessions with
  | [ s0; s1 ] -> (
      let key0, key1 = Lw_dpf.Dpf.gen ~domain_bits:t.domain_bits ~alpha:index t.rng in
      let q k = Zltp_wire.Pir_query { dpf_key = Lw_dpf.Dpf.serialize k } in
      match (expect_answer (roundtrip s0.ep (q key0)), expect_answer (roundtrip s1.ep (q key1))) with
      | Ok r0, Ok r1 ->
          t.queries <- t.queries + 1;
          Ok (Lw_pir.Client.combine ~resp0:r0 ~resp1:r1)
      | Error e, _ | _, Error e -> Error e)
  | _ -> Error "not a PIR session"

let get_raw_index t index =
  match t.mode with
  | Zltp_mode.Pir2 ->
      if index < 0 || index >= 1 lsl t.domain_bits then Error "index out of domain"
      else pir_fetch_index t index
  | Zltp_mode.Enclave -> Error "raw index fetch is PIR-only"

let get t key =
  match t.mode with
  | Zltp_mode.Pir2 -> (
      let keymap = Option.get t.keymap in
      match pir_fetch_index t (Lw_pir.Keymap.index_of_key keymap key) with
      | Ok bucket -> Ok (Lw_pir.Record.decode_for_key ~key bucket)
      | Error e -> Error e)
  | Zltp_mode.Enclave -> (
      match t.sessions with
      | [ s ] -> (
          match roundtrip s.ep (Zltp_wire.Enclave_get { key }) with
          | Ok (Zltp_wire.Enclave_answer { value }) ->
              t.queries <- t.queries + 1;
              Ok value
          | Ok (Zltp_wire.Err { message; _ }) -> Error message
          | Ok _ -> Error "protocol violation: expected Enclave_answer"
          | Error e -> Error e)
      | _ -> Error "not an enclave session")

let get_batch t keys =
  match t.mode with
  | Zltp_mode.Enclave ->
      (* no server-side batch primitive needed: polylog per-op cost *)
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | k :: rest -> ( match get t k with Ok v -> go (v :: acc) rest | Error e -> Error e)
      in
      go [] keys
  | Zltp_mode.Pir2 -> (
      match t.sessions with
      | [ s0; s1 ] -> (
          let keymap = Option.get t.keymap in
          let queries =
            List.map
              (fun key ->
                let index = Lw_pir.Keymap.index_of_key keymap key in
                let k0, k1 = Lw_dpf.Dpf.gen ~domain_bits:t.domain_bits ~alpha:index t.rng in
                (key, k0, k1))
              keys
          in
          let batch which =
            Zltp_wire.Pir_batch
              {
                dpf_keys =
                  List.map (fun (_, k0, k1) -> Lw_dpf.Dpf.serialize (which k0 k1)) queries;
              }
          in
          let expect_batch = function
            | Ok (Zltp_wire.Batch_answer { shares }) -> Ok shares
            | Ok (Zltp_wire.Err { message; _ }) -> Error message
            | Ok _ -> Error "protocol violation: expected Batch_answer"
            | Error e -> Error e
          in
          match
            ( expect_batch (roundtrip s0.ep (batch (fun a _ -> a))),
              expect_batch (roundtrip s1.ep (batch (fun _ b -> b))) )
          with
          | Ok shares0, Ok shares1 ->
              if List.length shares0 <> List.length keys || List.length shares1 <> List.length keys
              then Error "batch answer length mismatch"
              else begin
                t.queries <- t.queries + List.length keys;
                let values =
                  List.map2
                    (fun (key, _, _) (r0, r1) ->
                      Lw_pir.Record.decode_for_key ~key (Lw_pir.Client.combine ~resp0:r0 ~resp1:r1))
                    queries
                    (List.combine shares0 shares1)
                in
                Ok values
              end
          | Error e, _ | _, Error e -> Error e)
      | _ -> Error "not a PIR session")

let close t =
  List.iter
    (fun s ->
      (try s.ep.Lw_net.Endpoint.send (Zltp_wire.encode_client Zltp_wire.Bye)
       with Lw_net.Endpoint.Closed -> ());
      s.ep.Lw_net.Endpoint.close ())
    t.sessions
