module Json = Lw_json.Json

type event = Code_fetch | Data_fetch

type page = {
  path : string;
  text : string;
  code_cache_hit : bool;
  planned : int;
  fetched : int;
}

type t = {
  code : Zltp_client.t;
  data : Zltp_client.t;
  fetches_per_page : int;
  gas : int;
  rng : Lw_crypto.Drbg.t;
  code_cache : (string, Lightscript.program) Hashtbl.t;
  storage : (string, (string, Json.t) Hashtbl.t) Hashtbl.t;
  subscriptions : (string, Access_control.subscription) Hashtbl.t;
  mutable events : event list; (* reversed *)
  mutable pages : int;
}

let create ?(fetches_per_page = 5) ?(gas = 200_000) ?rng ~code ~data () =
  if fetches_per_page < 1 then invalid_arg "Browser.create: fetches_per_page < 1";
  let rng = match rng with Some r -> r | None -> Lw_crypto.Drbg.system () in
  {
    code;
    data;
    fetches_per_page;
    gas;
    rng;
    code_cache = Hashtbl.create 16;
    storage = Hashtbl.create 16;
    subscriptions = Hashtbl.create 4;
    events = [];
    pages = 0;
  }

let events t = List.rev t.events
let clear_events t = t.events <- []
let pages_visited t = t.pages
let cached_domains t = Hashtbl.fold (fun d _ acc -> d :: acc) t.code_cache []
let evict_code t domain = Hashtbl.remove t.code_cache domain
let add_subscription t ~domain sub = Hashtbl.replace t.subscriptions domain sub

let domain_storage t domain =
  match Hashtbl.find_opt t.storage domain with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.storage domain tbl;
      tbl

let storage_get t ~domain key = Hashtbl.find_opt (domain_storage t domain) key
let storage_set t ~domain key v = Hashtbl.replace (domain_storage t domain) key v

let state_object t domain =
  Json.Obj (Hashtbl.fold (fun k v acc -> (k, v) :: acc) (domain_storage t domain) [])

let apply_effects t domain effects =
  List.iter (fun (Lightscript.Store (k, v)) -> storage_set t ~domain k v) effects

let ( let* ) = Result.bind

let fetch_program t domain =
  match Hashtbl.find_opt t.code_cache domain with
  | Some program -> Ok (program, true)
  | None -> (
      let* source_opt = Zltp_client.get t.code domain in
      t.events <- Code_fetch :: t.events;
      match source_opt with
      | None -> Error (Printf.sprintf "no lightweb site at domain %s" domain)
      | Some source -> (
          match Lightscript.parse source with
          | Error e -> Error (Format.asprintf "code blob does not parse: %a" Lightscript.pp_error e)
          | Ok program ->
              Hashtbl.replace t.code_cache domain program;
              Ok (program, false)))

(* The plan must name paths inside the code's own domain: a malicious code
   blob cannot use the client to probe other publishers' content. *)
let validate_plan domain keys =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Json.String key :: rest -> (
        match Lw_path.parse key with
        | Ok p when Lw_path.in_domain p domain -> go (key :: acc) rest
        | Ok _ -> Error (Printf.sprintf "plan escapes its domain: %s" key)
        | Error e -> Error (Printf.sprintf "plan produced invalid path %S: %s" key e))
    | v :: _ -> Error (Printf.sprintf "plan produced a non-string entry (%s)" (Json.to_string v))
  in
  go [] keys

let dummy_key t domain =
  Printf.sprintf "%s/__pad__/%s" domain (Lw_util.Hex.encode (Lw_crypto.Drbg.generate t.rng 8))

let unseal_if_subscribed t domain ~path v =
  if not (Access_control.is_sealed v) then v
  else
    match Hashtbl.find_opt t.subscriptions domain with
    | None -> v (* script renders the sealed envelope, e.g. a subscribe prompt *)
    | Some sub -> ( match Access_control.open_ sub ~path v with Ok pt -> pt | Error _ -> v)

let fetch_data t domain key ~dummy =
  let* value_opt = Zltp_client.get t.data key in
  t.events <- Data_fetch :: t.events;
  if dummy then Ok Json.Null
  else
    match value_opt with
    | None -> Ok Json.Null
    | Some text -> (
        match Json.of_string_opt text with
        | None -> Ok Json.Null
        | Some v -> Ok (unseal_if_subscribed t domain ~path:key v))

let browse t path_str =
  let* path = Lw_path.parse path_str in
  let domain = Lw_path.domain path in
  let* program, code_cache_hit = fetch_program t domain in
  let state = state_object t domain in
  let* plan_result =
    match
      Lightscript.run ~gas:t.gas program ~fn:"plan"
        ~args:[ Json.String (Lw_path.rest path); state ]
    with
    | Ok (Json.List keys, effects) ->
        apply_effects t domain effects;
        Ok keys
    | Ok (v, _) -> Error (Printf.sprintf "plan must return a list, got %s" (Json.to_string v))
    | Error e -> Error (Printf.sprintf "plan failed: %s" e)
  in
  let* planned_keys = validate_plan domain plan_result in
  let planned = List.length planned_keys in
  (* fixed fetch count: truncate long plans, pad short ones with dummies *)
  let k = t.fetches_per_page in
  let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest in
  let real = take k planned_keys in
  let slots =
    List.map (fun key -> (key, false)) real
    @ List.init (k - List.length real) (fun _ -> (dummy_key t domain, true))
  in
  let* data =
    List.fold_left
      (fun acc (key, dummy) ->
        let* values = acc in
        let* v = fetch_data t domain key ~dummy in
        Ok (v :: values))
      (Ok []) slots
  in
  let data = List.rev data in
  (* only the genuinely planned values are handed to render *)
  let real_data = take (List.length real) data in
  let state = state_object t domain in
  let* text =
    match
      Lightscript.run ~gas:t.gas program ~fn:"render"
        ~args:[ Json.String (Lw_path.rest path); state; Json.List real_data ]
    with
    | Ok (Json.String text, effects) ->
        apply_effects t domain effects;
        Ok text
    | Ok (v, _) -> Error (Printf.sprintf "render must return a string, got %s" (Json.to_string v))
    | Error e -> Error (Printf.sprintf "render failed: %s" e)
  in
  t.pages <- t.pages + 1;
  Ok { path = path_str; text; code_cache_hit; planned; fetched = k }
