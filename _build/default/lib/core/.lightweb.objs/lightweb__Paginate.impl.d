lib/core/paginate.ml: Array Buffer Hashtbl List Lw_json Printf String
