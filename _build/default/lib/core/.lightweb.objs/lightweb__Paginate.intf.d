lib/core/paginate.mli: Lw_json
