lib/core/zltp_batch.ml: Array List Lw_dpf Lw_pir Unix
