lib/core/blob.ml: Bytes Int32 Printf String
