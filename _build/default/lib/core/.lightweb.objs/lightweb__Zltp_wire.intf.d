lib/core/zltp_wire.mli: Zltp_mode
