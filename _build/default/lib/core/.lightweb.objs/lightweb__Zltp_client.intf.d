lib/core/zltp_client.mli: Lw_crypto Lw_net Zltp_mode
