lib/core/peering.mli: Publisher Universe
