lib/core/access_control.mli: Lw_json
