lib/core/query_stats.mli: Lw_crypto
