lib/core/browser.mli: Access_control Lw_crypto Lw_json Zltp_client
