lib/core/universe_store.mli: Lw_json Universe
