lib/core/pacer.ml: Array Float List Queue
