lib/core/lw_path.mli: Format
