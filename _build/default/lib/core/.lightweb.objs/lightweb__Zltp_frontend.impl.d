lib/core/zltp_frontend.ml: Array Atomic Bytes Domain List Lw_dpf Lw_pir Lw_util Unix
