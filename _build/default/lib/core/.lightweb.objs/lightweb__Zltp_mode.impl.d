lib/core/zltp_mode.ml: List
