lib/core/zltp_frontend.mli: Lw_dpf Lw_pir
