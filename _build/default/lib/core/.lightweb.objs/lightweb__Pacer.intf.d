lib/core/pacer.mli:
