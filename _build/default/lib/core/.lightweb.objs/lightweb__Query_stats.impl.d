lib/core/query_stats.ml: Array Int64 Lw_crypto Printf String
