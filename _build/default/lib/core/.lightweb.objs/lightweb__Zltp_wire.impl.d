lib/core/zltp_wire.ml: Buffer Char Int32 List Printf String Zltp_mode
