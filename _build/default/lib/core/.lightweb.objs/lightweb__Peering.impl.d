lib/core/peering.ml: Hashtbl List Lw_path Printf Publisher String Universe
