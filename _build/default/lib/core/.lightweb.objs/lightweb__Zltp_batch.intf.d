lib/core/zltp_batch.mli: Lw_dpf Lw_pir
