lib/core/zltp_mode.mli:
