lib/core/lightscript.ml: Array Buffer Float Format Hashtbl List Lw_json Printf String
