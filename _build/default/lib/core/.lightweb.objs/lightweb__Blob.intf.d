lib/core/blob.mli:
