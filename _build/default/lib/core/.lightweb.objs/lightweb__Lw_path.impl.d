lib/core/lw_path.ml: Format List Printf String
