lib/core/universe.mli: Lw_json Zltp_server
