lib/core/lightscript.mli: Format Lw_json
