lib/core/universe.ml: Format Hashtbl Lightscript List Lw_crypto Lw_json Lw_oram Lw_path Lw_pir Printf String Zltp_frontend Zltp_server
