lib/core/publisher.mli: Lw_json Universe
