lib/core/browser.ml: Access_control Format Hashtbl Lightscript List Lw_crypto Lw_json Lw_path Lw_util Printf Result Zltp_client
