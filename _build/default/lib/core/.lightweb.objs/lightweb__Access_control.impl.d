lib/core/access_control.ml: Float List Lw_crypto Lw_json Lw_util Printf String
