lib/core/publisher.ml: Format Hashtbl Lightscript List Lw_json Lw_path Printf String Universe
