lib/core/zltp_server.mli: Lw_net Lw_oram Lw_pir Zltp_frontend Zltp_mode Zltp_wire
