lib/core/zltp_client.ml: List Lw_crypto Lw_dpf Lw_net Lw_pir Option Printf String Zltp_mode Zltp_wire
