lib/core/zltp_server.ml: List Logs Lw_crypto Lw_dpf Lw_net Lw_oram Lw_pir Option Printf String Zltp_frontend Zltp_mode Zltp_wire
