lib/core/universe_store.ml: Float List Lw_json Lw_path Option Printf Result Universe
