(** The lightweb browser (§3.2): a minimal client that speaks ZLTP and
    enforces the traffic discipline that makes browsing unobservable.

    Per page view the browser performs {e at most} one code-blob fetch
    (cache miss on a new domain) and {e exactly}
    [fetches_per_page] data-blob fetches — the plan returned by the
    domain's code is truncated or padded with dummy fetches to the fixed
    count. Domain separation is enforced twice: code may only plan fetches
    inside its own domain, and local storage is partitioned per domain.

    {!events} is the traffic shape an on-path attacker sees: which session
    (code/data) carried an exchange, and nothing else. The invariance
    tests assert it is identical for any two pages in a universe. *)

type event = Code_fetch | Data_fetch

type page = {
  path : string;
  text : string; (** rendered page text *)
  code_cache_hit : bool;
  planned : int; (** fetches the code asked for (before padding) *)
  fetched : int; (** always the universe's fixed count *)
}

type t

val create :
  ?fetches_per_page:int ->
  ?gas:int ->
  ?rng:Lw_crypto.Drbg.t ->
  code:Zltp_client.t ->
  data:Zltp_client.t ->
  unit ->
  t
(** [fetches_per_page] defaults to 5 (the paper's example); [gas] bounds
    each script invocation. *)

val browse : t -> string -> (page, string) result

(** {2 Local state} *)

val storage_get : t -> domain:string -> string -> Lw_json.Json.t option
val storage_set : t -> domain:string -> string -> Lw_json.Json.t -> unit
(** User-initiated writes (e.g. typing a postal code into weather.com). *)

val cached_domains : t -> string list
val evict_code : t -> string -> unit

(** {2 Paywalls} *)

val add_subscription : t -> domain:string -> Access_control.subscription -> unit
(** Sealed data blobs from [domain] are transparently unsealed before
    being handed to [render]; without a subscription the script sees the
    sealed envelope. *)

(** {2 Observability} *)

val events : t -> event list
val clear_events : t -> unit
val pages_visited : t -> int
