(** Path ORAM (Stefanov et al., CCS'13) — the oblivious-RAM scheme behind
    ZLTP's hardware-enclave mode of operation (§2.2).

    The enclave keeps the position map and stash in private memory and
    stores the bucket tree in untrusted memory. Every logical access reads
    and rewrites one uniformly random root-to-leaf path, so the untrusted
    memory's view — the sequence of paths — is independent of which blocks
    the clients asked for. The {!access_log} records exactly that view,
    and the obliviousness tests assert its input-independence.

    The position map is pluggable: the default is a private array, and
    {!Recursive_oram} supplies one backed by a smaller ORAM, giving the
    textbook recursive construction for enclaves with little private
    memory. *)

type t

type position_map = { get_and_set : int -> int -> int }
(** [get_and_set block_id new_leaf] returns the block's previous leaf (or
    [-1] if it never had one) and installs [new_leaf] — one combined
    operation so a recursive map pays exactly one access per lookup. *)

val array_position_map : int -> position_map
(** The default in-enclave array of [n] positions. *)

val create :
  ?bucket_capacity:int -> capacity:int -> block_size:int -> Lw_crypto.Drbg.t -> t
(** [create ~capacity ~block_size rng] holds up to [capacity] logical
    blocks of [block_size] bytes. [bucket_capacity] is Z (default 4).
    The tree has [2^ceil(log2 (max capacity 2))] leaves. *)

val create_with_position_map :
  ?bucket_capacity:int ->
  capacity:int ->
  block_size:int ->
  position_map ->
  Lw_crypto.Drbg.t ->
  t

val capacity : t -> int
val block_size : t -> int
val tree_height : t -> int
(** Levels from root (0) to leaf. *)

val bucket_count : t -> int

val write : t -> int -> string -> unit
(** [write t id data] stores [data] (at most [block_size] bytes,
    zero-padded) as logical block [id in \[0, capacity)]. One oblivious
    access. *)

val read : t -> int -> string option
(** [read t id] is the block's contents, or [None] if never written. One
    oblivious access either way. *)

val update : t -> int -> (string option -> string) -> unit
(** [update t id f] reads, transforms and rewrites block [id] in a single
    oblivious access ([f] sees [None] when the block was never written).
    The recursive position map is built on this. *)

val stash_size : t -> int
(** Blocks currently overflowing into the private stash; stays small with
    overwhelming probability (Z = 4). *)

val access_count : t -> int

val access_log : t -> int list
(** The untrusted memory's view: the leaf index of every path touched, in
    order. This is the {e complete} trace — bucket reads/writes are a fixed
    function of each leaf. *)

val clear_access_log : t -> unit
