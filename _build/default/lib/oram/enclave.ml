type t = {
  oram : Path_oram.t;
  directory : (string, int) Hashtbl.t; (* enclave-private: key -> block id *)
  mutable free_ids : int list;
  value_size : int;
  rng : Lw_crypto.Drbg.t;
}

let record_overhead = Lw_pir.Record.overhead

let create ?(seed = "enclave") ~capacity ~value_size () =
  if capacity < 1 then invalid_arg "Enclave.create: capacity must be positive";
  if value_size < 1 then invalid_arg "Enclave.create: value_size must be positive";
  let rng = Lw_crypto.Drbg.create ~seed in
  (* block must hold key (<= 255 bytes by convention) + value + framing *)
  let block_size = record_overhead + 255 + value_size in
  {
    oram = Path_oram.create ~capacity ~block_size:(Lw_util.Bitops.round_up block_size ~multiple:8) rng;
    directory = Hashtbl.create capacity;
    free_ids = List.init capacity (fun i -> i);
    value_size;
    rng;
  }

let capacity t = Path_oram.capacity t.oram
let count t = Hashtbl.length t.directory
let observed_trace t = Path_oram.access_log t.oram
let clear_trace t = Path_oram.clear_access_log t.oram
let accesses_per_get t = Path_oram.tree_height t.oram + 1

let encode t ~key ~value =
  Lw_pir.Record.encode ~bucket_size:(Path_oram.block_size t.oram) ~key ~value

let put t ~key ~value =
  if String.length key = 0 || String.length key > 255 || String.length value > t.value_size then
    Error `Too_large
  else begin
    match Hashtbl.find_opt t.directory key with
    | Some id ->
        Path_oram.write t.oram id (encode t ~key ~value);
        Ok ()
    | None -> (
        match t.free_ids with
        | [] -> Error `Full
        | id :: rest ->
            t.free_ids <- rest;
            Hashtbl.replace t.directory key id;
            Path_oram.write t.oram id (encode t ~key ~value);
            Ok ())
  end

(* A miss still touches the ORAM once, on a uniformly random block, so the
   trace never reveals whether the key exists. *)
let dummy_access t =
  ignore (Path_oram.read t.oram (Lw_crypto.Drbg.uniform_int t.rng (capacity t)))

let get t key =
  match Hashtbl.find_opt t.directory key with
  | None ->
      dummy_access t;
      None
  | Some id -> (
      match Path_oram.read t.oram id with
      | None -> None
      | Some block -> Lw_pir.Record.decode_for_key ~key block)

let remove t key =
  match Hashtbl.find_opt t.directory key with
  | None ->
      dummy_access t;
      false
  | Some id ->
      Hashtbl.remove t.directory key;
      t.free_ids <- id :: t.free_ids;
      (* overwrite with an empty block; one access, like any other op *)
      Path_oram.write t.oram id "";
      true
