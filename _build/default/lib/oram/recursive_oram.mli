(** Path ORAM with a recursive position map.

    The flat {!Path_oram} keeps one position word per block in enclave
    private memory — fine for benchmarks, but a real SGX enclave has tiny
    protected memory, so deployments store the position map itself in a
    smaller ORAM, recursively, until the top map fits ({!Path_oram} cites
    the same construction). Each level packs [pack] positions per block,
    shrinking the map by that factor per level.

    One logical access costs one path per level — still polylogarithmic,
    and the access trace of {e every} level is position-map lookups on
    uniformly random leaves, so obliviousness is preserved (tested). *)

type t

val create :
  ?pack:int ->
  ?top_threshold:int ->
  capacity:int ->
  block_size:int ->
  Lw_crypto.Drbg.t ->
  t
(** [pack] positions per map block (default 4); recursion stops when a map
    has at most [top_threshold] entries (default 64, kept in private
    memory). *)

val capacity : t -> int
val block_size : t -> int
val levels : t -> int
(** Number of ORAMs: 1 data ORAM + (levels-1) position-map ORAMs. *)

val write : t -> int -> string -> unit
val read : t -> int -> string option

val paths_per_access : t -> int
(** Total root-to-leaf paths touched per logical access (one per level). *)

val access_log : t -> int list
(** Concatenated leaf log across all levels, in access order. *)

val clear_access_log : t -> unit
val total_stash : t -> int
