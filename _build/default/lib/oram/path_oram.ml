(* Tree layout: heap order, bucket 0 is the root; leaf l (0-based) lives at
   node [2^height - 1 + l]. A "path" is the node set from root to a leaf.

   Untrusted memory = [tree]. Private (enclave) memory = the position map,
   [stash], and the RNG. [leaf_log] records what untrusted memory
   observes.

   Blocks carry their assigned leaf with them (in the stash and in tree
   buckets), so eviction never needs to consult the position map: the map
   is read exactly once per access, which is what lets [Recursive_oram]
   back it with another ORAM at one extra path per level. A block's leaf
   only changes while it sits in the stash of an access that targets it,
   so the carried copy can never go stale. *)

type block = { id : int; leaf : int; data : Bytes.t }

type position_map = { get_and_set : int -> int -> int }

let array_position_map n =
  let a = Array.make n (-1) in
  {
    get_and_set =
      (fun i v ->
        let old = a.(i) in
        a.(i) <- v;
        old);
  }

type stash_entry = { mutable s_leaf : int; s_data : Bytes.t }

type t = {
  capacity : int;
  block_size : int;
  bucket_capacity : int;
  height : int; (* root level 0 .. leaf level height *)
  leaves : int;
  tree : block list array; (* per bucket, at most bucket_capacity blocks *)
  posmap : position_map;
  stash : (int, stash_entry) Hashtbl.t;
  rng : Lw_crypto.Drbg.t;
  mutable accesses : int;
  mutable leaf_log : int list; (* reversed *)
}

let create_with_position_map ?(bucket_capacity = 4) ~capacity ~block_size posmap rng =
  if capacity < 1 then invalid_arg "Path_oram.create: capacity must be positive";
  if block_size < 1 then invalid_arg "Path_oram.create: block_size must be positive";
  if bucket_capacity < 2 then invalid_arg "Path_oram.create: bucket_capacity too small";
  let height = Lw_util.Bitops.log2_ceil (max capacity 2) in
  let leaves = 1 lsl height in
  {
    capacity;
    block_size;
    bucket_capacity;
    height;
    leaves;
    tree = Array.make ((2 * leaves) - 1) [];
    posmap;
    stash = Hashtbl.create 16;
    rng;
    accesses = 0;
    leaf_log = [];
  }

let create ?bucket_capacity ~capacity ~block_size rng =
  create_with_position_map ?bucket_capacity ~capacity ~block_size (array_position_map capacity)
    rng

let capacity t = t.capacity
let block_size t = t.block_size
let tree_height t = t.height
let bucket_count t = Array.length t.tree
let stash_size t = Hashtbl.length t.stash
let access_count t = t.accesses
let access_log t = List.rev t.leaf_log
let clear_access_log t = t.leaf_log <- []

(* node index of leaf [leaf]'s ancestor at [level] (root = level 0) *)
let node_at t ~leaf ~level =
  let path_bits = leaf lsr (t.height - level) in
  (1 lsl level) - 1 + path_bits

let random_leaf t = Lw_crypto.Drbg.uniform_int t.rng t.leaves

let check_id t id =
  if id < 0 || id >= t.capacity then invalid_arg "Path_oram: block id out of range"

(* One oblivious access: remap, read path into stash, mutate, evict.
   [mutate] maps the current contents (None if absent) to the contents to
   store; returning None leaves the block as it was. *)
let access t id ~mutate =
  check_id t id;
  let new_leaf = random_leaf t in
  let prior = t.posmap.get_and_set id new_leaf in
  let old_leaf = if prior >= 0 then prior else random_leaf t in
  t.accesses <- t.accesses + 1;
  t.leaf_log <- old_leaf :: t.leaf_log;
  (* read the whole path into the stash *)
  for level = 0 to t.height do
    let node = node_at t ~leaf:old_leaf ~level in
    List.iter
      (fun b -> Hashtbl.replace t.stash b.id { s_leaf = b.leaf; s_data = b.data })
      t.tree.(node);
    t.tree.(node) <- []
  done;
  (* the target's carried leaf follows the remap *)
  (match Hashtbl.find_opt t.stash id with
  | Some entry -> entry.s_leaf <- new_leaf
  | None -> ());
  let current = Option.map (fun e -> e.s_data) (Hashtbl.find_opt t.stash id) in
  (match mutate current with
  | Some data ->
      let padded = Bytes.make t.block_size '\x00' in
      Bytes.blit data 0 padded 0 (Bytes.length data);
      Hashtbl.replace t.stash id { s_leaf = new_leaf; s_data = padded }
  | None -> ());
  (* evict: deepest level first, greedily placing stash blocks whose
     assigned path shares this node with the accessed path *)
  for level = t.height downto 0 do
    let node = node_at t ~leaf:old_leaf ~level in
    let placed = ref [] in
    let count = ref 0 in
    Hashtbl.iter
      (fun bid entry ->
        if !count < t.bucket_capacity && node_at t ~leaf:entry.s_leaf ~level = node then begin
          placed := { id = bid; leaf = entry.s_leaf; data = entry.s_data } :: !placed;
          incr count
        end)
      t.stash;
    List.iter (fun b -> Hashtbl.remove t.stash b.id) !placed;
    t.tree.(node) <- !placed
  done;
  current

let write t id data =
  if String.length data > t.block_size then invalid_arg "Path_oram.write: data exceeds block";
  ignore (access t id ~mutate:(fun _ -> Some (Bytes.of_string data)))

let read t id =
  match access t id ~mutate:(fun _ -> None) with
  | Some data -> Some (Bytes.to_string data)
  | None -> None

let update t id f =
  ignore
    (access t id ~mutate:(fun cur ->
         Some (Bytes.of_string (f (Option.map Bytes.to_string cur)))))
