(** A simulated hardware enclave serving private key-value lookups over
    Path ORAM — ZLTP's second mode of operation (§2.2).

    The simulation draws the trust boundary explicitly: everything inside
    {!t} except the ORAM bucket tree is "enclave private memory" (key
    directory, position map, stash); the ORAM tree plays untrusted host
    memory, and {!observed_trace} is exactly what a compromised host OS
    would see. Lookups for absent keys still perform a real (dummy) ORAM
    access, so hit/miss is not leaked either.

    Against the PIR mode this trades the linear scan for polylogarithmic
    work per request — the E8 ablation — at the price of trusting the
    hardware vendor (§2.2 lists the known enclave attacks). *)

type t

val create : ?seed:string -> capacity:int -> value_size:int -> unit -> t
(** [create ~capacity ~value_size ()] serves up to [capacity] records with
    values up to [value_size] bytes. [seed] fixes the enclave's internal
    randomness for reproducible tests. *)

val capacity : t -> int
val count : t -> int

val put : t -> key:string -> value:string -> (unit, [ `Full | `Too_large ]) result
(** Publisher-side ingest (one oblivious access). *)

val get : t -> string -> string option
(** Client-facing private lookup: always exactly one oblivious access. *)

val remove : t -> string -> bool

val observed_trace : t -> int list
(** Leaf indices of every ORAM path touched so far — the adversary's whole
    view of memory. *)

val clear_trace : t -> unit

val accesses_per_get : t -> int
(** Physical buckets touched per lookup, [tree_height + 1]: the polylog
    cost that E8 compares against the PIR linear scan. *)
