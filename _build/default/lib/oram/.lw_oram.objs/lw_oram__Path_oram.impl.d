lib/oram/path_oram.ml: Array Bytes Hashtbl List Lw_crypto Lw_util Option String
