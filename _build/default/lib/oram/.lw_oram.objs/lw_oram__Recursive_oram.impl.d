lib/oram/recursive_oram.ml: Bytes Int32 List Lw_util Path_oram
