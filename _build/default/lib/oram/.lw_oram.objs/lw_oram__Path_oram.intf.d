lib/oram/path_oram.mli: Lw_crypto
