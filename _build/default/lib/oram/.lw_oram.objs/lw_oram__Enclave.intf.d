lib/oram/enclave.mli:
