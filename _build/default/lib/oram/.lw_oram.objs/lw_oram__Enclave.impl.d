lib/oram/enclave.ml: Hashtbl List Lw_crypto Lw_pir Lw_util Path_oram String
