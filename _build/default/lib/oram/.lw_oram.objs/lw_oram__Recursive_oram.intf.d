lib/oram/recursive_oram.mli: Lw_crypto
