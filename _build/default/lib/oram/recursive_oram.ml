(* Positions are packed [pack] per map block, each as a 4-byte big-endian
   word storing (leaf + 1), so an all-zero (absent/padded) block decodes
   every slot as "no position yet" (-1). *)

type t = {
  data : Path_oram.t;
  maps : Path_oram.t list; (* innermost (largest) first *)
  pack : int;
  top_entries : int;
}

let slot_get block slot =
  let v = Int32.to_int (Bytes.get_int32_be block (4 * slot)) in
  v - 1

let slot_set block slot leaf = Bytes.set_int32_be block (4 * slot) (Int32.of_int (leaf + 1))

(* A position-map provider for [n] entries: a private array when small
   enough, otherwise an ORAM of packed blocks whose own map recurses. *)
let rec make_posmap ~pack ~threshold ~rng n =
  if n <= threshold then (Path_oram.array_position_map n, [], n)
  else begin
    let blocks = Lw_util.Bitops.ceil_div n pack in
    let inner, deeper, top_entries = make_posmap ~pack ~threshold ~rng blocks in
    let oram =
      Path_oram.create_with_position_map ~capacity:blocks ~block_size:(4 * pack) inner rng
    in
    let get_and_set i v =
      let old = ref (-1) in
      Path_oram.update oram (i / pack) (fun cur ->
          let block =
            match cur with
            | Some s -> Bytes.of_string s
            | None -> Bytes.make (4 * pack) '\x00'
          in
          old := slot_get block (i mod pack);
          slot_set block (i mod pack) v;
          Bytes.to_string block);
      !old
    in
    ({ Path_oram.get_and_set }, oram :: deeper, top_entries)
  end

let create ?(pack = 4) ?(top_threshold = 64) ~capacity ~block_size rng =
  if pack < 2 then invalid_arg "Recursive_oram.create: pack must be >= 2";
  if top_threshold < 1 then invalid_arg "Recursive_oram.create: top_threshold must be positive";
  let posmap, maps, top_entries = make_posmap ~pack ~threshold:top_threshold ~rng capacity in
  let data = Path_oram.create_with_position_map ~capacity ~block_size posmap rng in
  { data; maps; pack; top_entries }

let capacity t = Path_oram.capacity t.data
let block_size t = Path_oram.block_size t.data
let levels t = 1 + List.length t.maps
let write t id data = Path_oram.write t.data id data
let read t id = Path_oram.read t.data id
let paths_per_access t = levels t

let access_log t =
  Path_oram.access_log t.data @ List.concat_map Path_oram.access_log t.maps

let clear_access_log t =
  Path_oram.clear_access_log t.data;
  List.iter Path_oram.clear_access_log t.maps

let total_stash t =
  Path_oram.stash_size t.data
  + List.fold_left (fun acc m -> acc + Path_oram.stash_size m) 0 t.maps
