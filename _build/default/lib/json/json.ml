type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string with an index cursor.       *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | Some x -> fail cur (Printf.sprintf "expected %c, found %c" c x)
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | Some _ | None -> ()

let expect_keyword cur kw value =
  let n = String.length kw in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = kw then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" kw)

let hex_value cur c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail cur "invalid \\u escape"

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_u16 cur =
  if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek cur with
    | Some c -> v := (!v lsl 4) lor hex_value cur c
    | None -> fail cur "truncated \\u escape");
    advance cur
  done;
  !v

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
        advance cur;
        Buffer.contents buf
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\x0c'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let hi = parse_u16 cur in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* surrogate pair *)
                  expect cur '\\';
                  expect cur 'u';
                  let lo = parse_u16 cur in
                  if lo < 0xDC00 || lo > 0xDFFF then fail cur "invalid low surrogate";
                  let code = 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00) in
                  add_utf8 buf code
                end
                else add_utf8 buf hi
            | _ -> fail cur "invalid escape character"));
        go ()
    | Some c when Char.code c < 0x20 -> fail cur "control character in string"
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_number_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec consume () =
    match peek cur with
    | Some c when is_number_char c ->
        advance cur;
        consume ()
    | Some _ | None -> ()
  in
  consume ();
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail cur (Printf.sprintf "invalid number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' -> parse_obj cur
  | Some '[' -> parse_list cur
  | Some '"' ->
      advance cur;
      String (parse_string_body cur)
  | Some 't' -> expect_keyword cur "true" (Bool true)
  | Some 'f' -> expect_keyword cur "false" (Bool false)
  | Some 'n' -> expect_keyword cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %c" c)

and parse_obj cur =
  expect cur '{';
  skip_ws cur;
  match peek cur with
  | Some '}' ->
      advance cur;
      Obj []
  | _ ->
      let rec fields acc =
        skip_ws cur;
        expect cur '"';
        let key = parse_string_body cur in
        skip_ws cur;
        expect cur ':';
        let value = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
            advance cur;
            fields ((key, value) :: acc)
        | Some '}' ->
            advance cur;
            Obj (List.rev ((key, value) :: acc))
        | Some c -> fail cur (Printf.sprintf "expected , or } in object, found %c" c)
        | None -> fail cur "unterminated object"
      in
      fields []

and parse_list cur =
  expect cur '[';
  skip_ws cur;
  match peek cur with
  | Some ']' ->
      advance cur;
      List []
  | _ ->
      let rec elements acc =
        let value = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
            advance cur;
            elements (value :: acc)
        | Some ']' ->
            advance cur;
            List (List.rev (value :: acc))
        | Some c -> fail cur (Printf.sprintf "expected , or ] in array, found %c" c)
        | None -> fail cur "unterminated array"
      in
      elements []

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage after value";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\x0c' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec render depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            render (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            escape_string buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            render (depth + 1) item)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf '}'
  in
  render 0 v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string ~pretty:true v)

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member k v =
  match v with
  | Obj fields -> ( match List.assoc_opt k fields with Some x -> x | None -> Null)
  | _ -> invalid_arg "Json.member: not an object"

let member_opt k v = match v with Obj fields -> List.assoc_opt k fields | _ -> None

let get_string = function String s -> s | _ -> invalid_arg "Json.get_string"
let get_number = function Number f -> f | _ -> invalid_arg "Json.get_number"

let get_int = function
  | Number f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Json.get_int"

let get_bool = function Bool b -> b | _ -> invalid_arg "Json.get_bool"
let get_list = function List l -> l | _ -> invalid_arg "Json.get_list"
let get_obj = function Obj o -> o | _ -> invalid_arg "Json.get_obj"

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> x = y
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      let sort = List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) in
      let xs = sort xs and ys = sort ys in
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | (Null | Bool _ | Number _ | String _ | List _ | Obj _), _ -> false
