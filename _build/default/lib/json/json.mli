(** A small JSON library.

    Lightweb data blobs carry "relatively small JSON data objects" (§3.1),
    and the container ships no JSON package, so this module provides the
    value type, a recursive-descent parser and a printer. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a human-readable position message. *)

val of_string : string -> t
(** [of_string s] parses a single JSON value (surrounding whitespace
    allowed; trailing garbage rejected). Raises {!Parse_error}. *)

val of_string_opt : string -> t option

val to_string : ?pretty:bool -> t -> string
(** [to_string v] renders [v] compactly; [~pretty:true] indents with two
    spaces. Output re-parses to an equal value. *)

val pp : Format.formatter -> t -> unit

(** {2 Accessors} — all raise [Invalid_argument] on a type mismatch. *)

val member : string -> t -> t
(** [member k obj] is the value bound to [k], or [Null] when absent. *)

val member_opt : string -> t -> t option
val get_string : t -> string
val get_number : t -> float
val get_int : t -> int
val get_bool : t -> bool
val get_list : t -> t list
val get_obj : t -> (string * t) list

val equal : t -> t -> bool
(** Structural equality; object fields compare order-insensitively. *)
