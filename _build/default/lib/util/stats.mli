(** Summary statistics for benchmark and simulation results. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** [summarize xs] computes the summary of a non-empty sample. Raises
    [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation on the sorted sample. *)

val pp_summary : Format.formatter -> summary -> unit

type histogram

val histogram : buckets:int -> lo:float -> hi:float -> histogram
val hist_add : histogram -> float -> unit
val hist_counts : histogram -> int array
val hist_total : histogram -> int
