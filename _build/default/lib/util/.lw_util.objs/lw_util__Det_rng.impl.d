lib/util/det_rng.ml: Array Bytes Char Int64 String
