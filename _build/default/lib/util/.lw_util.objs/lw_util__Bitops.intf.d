lib/util/bitops.mli:
