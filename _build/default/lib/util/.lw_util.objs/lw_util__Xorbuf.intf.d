lib/util/xorbuf.mli: Bytes
