lib/util/bitops.ml: Int32 Int64
