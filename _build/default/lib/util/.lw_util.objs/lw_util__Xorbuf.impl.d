lib/util/xorbuf.ml: Bytes Char Int64 Printf String
