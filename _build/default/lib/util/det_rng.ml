type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let of_string_seed s =
  (* FNV-1a folded to 64 bits; deterministic across runs. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  create !h

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Det_rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = max_int in
  let rec go () =
    let r = Int64.to_int (next_int64 t) land mask in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t bound =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let out = Bytes.create n in
  let words = n / 8 in
  for i = 0 to words - 1 do
    Bytes.set_int64_le out (8 * i) (next_int64 t)
  done;
  if n mod 8 <> 0 then begin
    let last = next_int64 t in
    for i = 8 * words to n - 1 do
      let shift = 8 * (i - (8 * words)) in
      Bytes.set out i (Char.chr (Int64.to_int (Int64.shift_right_logical last shift) land 0xff))
    done
  end;
  Bytes.unsafe_to_string out

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Det_rng.pick: empty array";
  a.(int t (Array.length a))
