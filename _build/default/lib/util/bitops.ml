let rotl32 x k =
  if k = 0 then x
  else Int32.logor (Int32.shift_left x k) (Int32.shift_right_logical x (32 - k))

let rotl64 x k =
  if k = 0 then x
  else Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let log2_ceil n =
  if n < 1 then invalid_arg "Bitops.log2_ceil";
  let rec go d p = if p >= n then d else go (d + 1) (p * 2) in
  go 0 1

let log2_floor n =
  if n < 1 then invalid_arg "Bitops.log2_floor";
  let rec go d p = if 2 * p > n then d else go (d + 1) (p * 2) in
  go 0 1

let is_power_of_two n = n > 0 && n land (n - 1) = 0
let bit x i = (x lsr i) land 1
let bit_msb x ~width i = (x lsr (width - 1 - i)) land 1

let ceil_div a b =
  if b <= 0 || a < 0 then invalid_arg "Bitops.ceil_div";
  (a + b - 1) / b

let round_up n ~multiple = ceil_div n multiple * multiple
