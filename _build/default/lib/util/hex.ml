let hex_digits = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code (String.unsafe_get s i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (b lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1) (String.unsafe_get hex_digits (b land 0xf))
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd-length input";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = nibble h.[2 * i] and lo = nibble h.[(2 * i) + 1] in
    Bytes.unsafe_set out i (Char.unsafe_chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string out

let decode_opt h = try Some (decode h) with Invalid_argument _ -> None
let pp fmt s = Format.pp_print_string fmt (encode s)

let dump ?(width = 16) fmt s =
  let n = String.length s in
  let printable c = if c >= ' ' && c < '\x7f' then c else '.' in
  let rec line off =
    if off < n then begin
      let len = min width (n - off) in
      Format.fprintf fmt "%08x  " off;
      for i = 0 to width - 1 do
        if i < len then Format.fprintf fmt "%02x " (Char.code s.[off + i])
        else Format.fprintf fmt "   "
      done;
      Format.fprintf fmt " |";
      for i = 0 to len - 1 do
        Format.pp_print_char fmt (printable s.[off + i])
      done;
      Format.fprintf fmt "|@.";
      line (off + width)
    end
  in
  line 0
