(** Deterministic, seedable random number generator (SplitMix64).

    Used for reproducible workloads, synthetic corpora and property tests.
    It is {b not} a cryptographic generator — the protocol stack uses
    [Lw_crypto.Drbg] for key material. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator with the given seed. *)

val of_string_seed : string -> t
(** [of_string_seed s] derives a seed from an arbitrary label, so tests can
    write [of_string_seed "dpf/eval_all"]. *)

val split : t -> t
(** [split t] derives an independent generator stream and advances [t]. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bytes : t -> int -> string
(** [bytes t n] is [n] uniformly random bytes. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element. Requires [a] non-empty. *)
