let bar ?(width = 40) ?(unit_ = "") rows =
  match rows with
  | [] -> "(no data)\n"
  | _ ->
      let max_v = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. rows in
      let max_label =
        List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
      in
      let buf = Buffer.create 256 in
      List.iter
        (fun (label, v) ->
          let filled =
            if max_v <= 0. then 0 else int_of_float (Float.round (v /. max_v *. float_of_int width))
          in
          Buffer.add_string buf
            (Printf.sprintf "%-*s |%s%s %g%s\n" max_label label (String.make filled '#')
               (String.make (width - filled) ' ')
               v unit_))
        rows;
      Buffer.contents buf

let line ?(width = 60) ?(height = 12) ?(x_label = "") ?(y_label = "") points =
  match points with
  | [] -> "(no data)\n"
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let x_min = List.fold_left Float.min (List.hd xs) xs in
      let x_max = List.fold_left Float.max (List.hd xs) xs in
      let y_min = List.fold_left Float.min (List.hd ys) ys in
      let y_max = List.fold_left Float.max (List.hd ys) ys in
      let x_span = if x_max = x_min then 1. else x_max -. x_min in
      let y_span = if y_max = y_min then 1. else y_max -. y_min in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y) ->
          let col =
            min (width - 1) (int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1)))
          in
          let row =
            min (height - 1) (int_of_float ((y -. y_min) /. y_span *. float_of_int (height - 1)))
          in
          grid.(height - 1 - row).(col) <- '*')
        points;
      let buf = Buffer.create 1024 in
      if y_label <> "" then Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
      Array.iteri
        (fun i row ->
          let annot =
            if i = 0 then Printf.sprintf " %g" y_max
            else if i = height - 1 then Printf.sprintf " %g" y_min
            else ""
          in
          Buffer.add_string buf (Printf.sprintf "|%s%s\n" (String.init width (Array.get row)) annot))
        grid;
      Buffer.add_string buf (Printf.sprintf "+%s\n" (String.make width '-'));
      Buffer.add_string buf
        (Printf.sprintf " %-*g%*g  %s\n" (width / 2) x_min (width - (width / 2)) x_max x_label);
      Buffer.contents buf

let cdf ?(width = 60) ?(height = 12) samples =
  match Array.length samples with
  | 0 -> "(no data)\n"
  | n ->
      let sorted = Array.copy samples in
      Array.sort compare sorted;
      let points =
        Array.to_list (Array.mapi (fun i v -> (v, float_of_int (i + 1) /. float_of_int n)) sorted)
      in
      line ~width ~height ~y_label:"P(X<=x)" points
