let check_bounds name pos len total =
  if pos < 0 || len < 0 || pos + len > total then
    invalid_arg (Printf.sprintf "Xorbuf.%s: range out of bounds" name)

(* The 64-bit inner loop reads/writes unaligned native-endian words; the
   scalar tail handles the last [len mod 8] bytes. *)
let xor_into ~src ~src_pos ~dst ~dst_pos ~len =
  check_bounds "xor_into(src)" src_pos len (Bytes.length src);
  check_bounds "xor_into(dst)" dst_pos len (Bytes.length dst);
  let words = len / 8 in
  for i = 0 to words - 1 do
    let s = Bytes.get_int64_ne src (src_pos + (8 * i)) in
    let d = Bytes.get_int64_ne dst (dst_pos + (8 * i)) in
    Bytes.set_int64_ne dst (dst_pos + (8 * i)) (Int64.logxor s d)
  done;
  for i = 8 * words to len - 1 do
    let s = Char.code (Bytes.unsafe_get src (src_pos + i)) in
    let d = Char.code (Bytes.unsafe_get dst (dst_pos + i)) in
    Bytes.unsafe_set dst (dst_pos + i) (Char.unsafe_chr (s lxor d))
  done

let xor_string_into ~src ~src_pos ~dst ~dst_pos ~len =
  xor_into ~src:(Bytes.unsafe_of_string src) ~src_pos ~dst ~dst_pos ~len

let xor a b =
  let n = String.length a in
  if String.length b <> n then invalid_arg "Xorbuf.xor: length mismatch";
  let out = Bytes.of_string a in
  xor_string_into ~src:b ~src_pos:0 ~dst:out ~dst_pos:0 ~len:n;
  Bytes.unsafe_to_string out

let is_zero s =
  let acc = ref 0 in
  String.iter (fun c -> acc := !acc lor Char.code c) s;
  !acc = 0
