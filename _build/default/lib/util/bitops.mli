(** Small integer and bit-manipulation helpers shared across the tree
    algorithms (DPF, ORAM) and the cost model. *)

val rotl32 : int32 -> int -> int32
(** [rotl32 x k] rotates the 32-bit value [x] left by [k] (0 <= k < 32). *)

val rotl64 : int64 -> int -> int64
(** [rotl64 x k] rotates the 64-bit value [x] left by [k] (0 <= k < 64). *)

val popcount : int -> int
(** [popcount x] is the number of set bits in the non-negative int [x]. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the least [d] with [2^d >= n]. Requires [n >= 1]. *)

val log2_floor : int -> int
(** [log2_floor n] is the greatest [d] with [2^d <= n]. Requires [n >= 1]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] holds iff [n] is a positive power of two. *)

val bit : int -> int -> int
(** [bit x i] is bit [i] of [x] (0 = least significant), as 0 or 1. *)

val bit_msb : int -> width:int -> int -> int
(** [bit_msb x ~width i] is bit [i] of [x] counting from the most
    significant of a [width]-bit value: [bit_msb x ~width 0] is the top
    bit. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded up. Requires [b > 0], [a >= 0]. *)

val round_up : int -> multiple:int -> int
(** [round_up n ~multiple] is the least multiple of [multiple] >= [n]. *)
