(** Terminal charts for the benchmark harness: the paper's "figures" are
    regenerated as data rows plus these plots, so a bench run is
    self-contained evidence without a plotting stack. *)

val bar :
  ?width:int ->
  ?unit_:string ->
  (string * float) list ->
  string
(** [bar rows] renders one horizontal bar per (label, value), scaled to
    the maximum value; [width] is the bar column width (default 40). *)

val line :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) list ->
  string
(** [line points] renders a scatter/line plot on a [width] x [height]
    character grid (defaults 60x12) with min/max axis annotations. Points
    need not be sorted. *)

val cdf : ?width:int -> ?height:int -> float array -> string
(** [cdf samples] plots the empirical distribution function of a sample
    (x: value, y: fraction ≤ x). *)
