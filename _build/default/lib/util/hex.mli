(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]. *)

val decode : string -> string
(** [decode h] parses a hexadecimal string (upper or lower case, no
    separators). Raises [Invalid_argument] on odd length or non-hex
    characters. *)

val decode_opt : string -> string option
(** [decode_opt h] is [Some (decode h)], or [None] if [h] is malformed. *)

val pp : Format.formatter -> string -> unit
(** [pp fmt s] prints [s] as hex on [fmt]. *)

val dump : ?width:int -> Format.formatter -> string -> unit
(** [dump fmt s] prints a classic offset/hex/ASCII dump, [width] bytes per
    line (default 16). *)
