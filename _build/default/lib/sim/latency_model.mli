(** Monte-Carlo page-load latency for a sharded ZLTP fleet.

    The paper lower-bounds request latency by the 2.6 s batch window and
    notes the real number "would likely be higher due to network latency,
    front-end server latency, and data-server stragglers" (§5.2). This
    model quantifies that sentence: a private-GET must wait for {e every}
    shard (an XOR barrier over [shards] machines), so its compute time is
    the {e maximum} of [shards] straggler-inflated draws — the classic
    tail-at-scale effect — plus batch queueing and round trips; a page is
    one optional code fetch plus [gets_per_page] data fetches. *)

type params = {
  shards : int;
  base_shard_s : float; (** per-request compute on a well-behaved shard *)
  straggler_sigma : float; (** log-normal dispersion of shard times *)
  batch_window_s : float; (** a request waits Uniform(0, window) to join a batch *)
  rtt_s : float; (** client <-> front-end round trip *)
  frontend_s : float; (** key split + response combine *)
  gets_per_page : int;
  parallel_gets : bool; (** true: the k GETs ride one batch; false: sequential *)
}

val paper_params : params
(** 305 shards, 167 ms base, 2.6 s batch window, 40 ms RTT, 5 parallel
    GETs, moderate stragglers (sigma 0.25). *)

type distribution = {
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
}

val get_latency : params -> Lw_util.Det_rng.t -> float
(** One private-GET. *)

val page_load : params -> code_fetch:bool -> Lw_util.Det_rng.t -> float

val simulate :
  ?samples:int -> params -> code_fetch:bool -> Lw_util.Det_rng.t -> distribution
(** Default 2000 samples. *)
