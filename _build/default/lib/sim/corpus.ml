type profile = { name : string; total_bytes : float; pages : float; avg_page_bytes : float }

let gib = 1073741824.

let c4 = { name = "C4"; total_bytes = 305. *. gib; pages = 360e6; avg_page_bytes = 0.9 *. 1024. }

let wikipedia =
  { name = "Wikipedia"; total_bytes = 21. *. gib; pages = 60e6; avg_page_bytes = 0.4 *. 1024. }

type page = { path : string; body : string }

type t = { profile : profile; sites : string array; pages : page array }

(* Box-Muller on the deterministic RNG *)
let gaussian rng =
  let u1 = max 1e-12 (Lw_util.Det_rng.float rng 1.0) in
  let u2 = Lw_util.Det_rng.float rng 1.0 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let sample_page_size profile ~sigma rng =
  (* log-normal with arithmetic mean = avg_page_bytes: mu = ln(mean) - sigma^2/2 *)
  let mu = log profile.avg_page_bytes -. (sigma *. sigma /. 2.) in
  let size = exp (mu +. (sigma *. gaussian rng)) in
  let lo = 32. and hi = 16. *. profile.avg_page_bytes in
  int_of_float (Float.min hi (Float.max lo size))

let lorem =
  "the quick brown fox jumps over the lazy dog while the private web waits for nobody "

let body_of_size rng size =
  let buf = Buffer.create size in
  while Buffer.length buf < size do
    let start = Lw_util.Det_rng.int rng (String.length lorem - 1) in
    Buffer.add_string buf (String.sub lorem start (String.length lorem - start))
  done;
  String.sub (Buffer.contents buf) 0 size

let generate ?(sites = 50) ?(sigma = 0.7) profile ~n_pages rng =
  if sites < 1 || n_pages < 1 then invalid_arg "Corpus.generate: need sites, pages >= 1";
  let site_names = Array.init sites (fun i -> Printf.sprintf "site-%03d.example" i) in
  let site_zipf = Zipf.create ~n:sites () in
  let counters = Array.make sites 0 in
  let pages =
    Array.init n_pages (fun _ ->
        let s = Zipf.sample site_zipf rng in
        let idx = counters.(s) in
        counters.(s) <- idx + 1;
        let size = sample_page_size profile ~sigma rng in
        {
          path = Printf.sprintf "%s/articles/%05d.json" site_names.(s) idx;
          body = body_of_size rng size;
        })
  in
  { profile; sites = site_names; pages }

let mean_page_size t =
  Array.fold_left (fun acc p -> acc +. float_of_int (String.length p.body)) 0. t.pages
  /. float_of_int (Array.length t.pages)

let total_bytes t = Array.fold_left (fun acc p -> acc + String.length p.body) 0 t.pages

let to_sites t =
  let tbl = Hashtbl.create (Array.length t.sites) in
  Array.iter
    (fun page ->
      let domain =
        match String.index_opt page.path '/' with
        | Some i -> String.sub page.path 0 i
        | None -> page.path
      in
      let existing = try Hashtbl.find tbl domain with Not_found -> [] in
      Hashtbl.replace tbl domain (page :: existing))
    t.pages;
  Hashtbl.fold (fun d ps acc -> (d, List.rev ps) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
