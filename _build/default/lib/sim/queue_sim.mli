(** A batch-service queue simulation of one ZLTP data server (§5.1).

    The server accumulates private-GETs and answers up to [batch_size] of
    them with one fused scan; a partial batch is released [batch_window_s]
    after its oldest request arrived. Requests arrive Poisson. This is the
    queueing system implied by the paper's "batching requests to increase
    throughput" — the simulation exposes the whole operating curve: the
    throughput ceiling [batch / (scan + batch·per_request)], the latency
    cliff as offered load approaches it, and the latency floor the batch
    window sets at low load. *)

type params = {
  arrival_rps : float; (** Poisson offered load *)
  batch_size : int;
  batch_window_s : float;
  scan_s : float; (** per-batch cost paid once (the shared data scan) *)
  per_request_s : float; (** per-request cost inside a batch (DPF eval etc.) *)
  duration_s : float;
}

val paper_server : arrival_rps:float -> params
(** Service parameters fitted to the paper's two measured operating points
    (0.51 s unbatched, 2.67 s for a 16-batch): 366 ms shared scan + 144 ms
    per request, batch 16, 2.6 s window, 600 s horizon. The resulting
    capacity is the paper's 6 req/s. *)

type result = {
  offered : int; (** requests that arrived *)
  served : int;
  throughput_rps : float;
  mean_latency_s : float;
  p50_latency_s : float;
  p95_latency_s : float;
  mean_batch_fill : float; (** average requests per executed batch *)
  utilization : float; (** fraction of time the server was scanning *)
  saturated : bool; (** backlog still growing at the end of the run *)
}

val capacity_rps : params -> float
(** The analytic ceiling [batch / (scan + batch·per_request)]. *)

val run : params -> Lw_util.Det_rng.t -> result
