lib/sim/heavy_hitters.mli: Lw_crypto Lw_dpf
