lib/sim/zipf.mli: Lw_util
