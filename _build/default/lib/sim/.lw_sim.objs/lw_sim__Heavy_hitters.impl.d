lib/sim/heavy_hitters.ml: Array Int64 List Lw_dpf
