lib/sim/corpus.ml: Array Buffer Float Hashtbl List Lw_util Printf String Zipf
