lib/sim/fingerprint.ml: Array Float Hashtbl List Lw_util Printf
