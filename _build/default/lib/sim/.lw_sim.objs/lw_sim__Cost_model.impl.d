lib/sim/cost_model.ml: Corpus Float Format Lw_util
