lib/sim/zipf.ml: Array Float Lw_util
