lib/sim/workload.mli: Cost_model Lw_util
