lib/sim/queue_sim.mli: Lw_util
