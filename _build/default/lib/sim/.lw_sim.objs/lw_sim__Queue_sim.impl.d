lib/sim/queue_sim.ml: Array Float List Lw_util Queue
