lib/sim/corpus.mli: Lw_util
