lib/sim/fingerprint.mli: Lw_util
