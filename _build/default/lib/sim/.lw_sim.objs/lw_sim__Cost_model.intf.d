lib/sim/cost_model.mli: Corpus Format
