lib/sim/latency_model.mli: Lw_util
