lib/sim/latency_model.ml: Array Float Lw_util
