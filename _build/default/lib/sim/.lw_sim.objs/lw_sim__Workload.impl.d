lib/sim/workload.ml: Cost_model Hashtbl List Lw_util Zipf
