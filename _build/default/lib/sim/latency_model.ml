type params = {
  shards : int;
  base_shard_s : float;
  straggler_sigma : float;
  batch_window_s : float;
  rtt_s : float;
  frontend_s : float;
  gets_per_page : int;
  parallel_gets : bool;
}

let paper_params =
  {
    shards = 305;
    base_shard_s = 0.167;
    straggler_sigma = 0.25;
    batch_window_s = 2.6;
    rtt_s = 0.040;
    frontend_s = 0.010;
    gets_per_page = 5;
    parallel_gets = true;
  }

type distribution = {
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  min_s : float;
  max_s : float;
}

let gaussian rng =
  let u1 = max 1e-12 (Lw_util.Det_rng.float rng 1.0) in
  let u2 = Lw_util.Det_rng.float rng 1.0 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

(* log-normal with median = base: a straggler factor of e^{sigma*g} *)
let shard_time p rng = p.base_shard_s *. exp (p.straggler_sigma *. gaussian rng)

let slowest_shard p rng =
  let m = ref 0. in
  for _ = 1 to p.shards do
    m := Float.max !m (shard_time p rng)
  done;
  !m

let get_latency p rng =
  let queue = Lw_util.Det_rng.float rng p.batch_window_s in
  p.rtt_s +. p.frontend_s +. queue +. slowest_shard p rng

let page_load p ~code_fetch rng =
  let code = if code_fetch then get_latency p rng else 0. in
  let data =
    if p.parallel_gets then
      (* the k GETs join the same batch; the page waits for the slowest *)
      let m = ref 0. in
      let shared_queue = Lw_util.Det_rng.float rng p.batch_window_s in
      for _ = 1 to p.gets_per_page do
        m := Float.max !m (p.rtt_s +. p.frontend_s +. shared_queue +. slowest_shard p rng)
      done;
      !m
    else begin
      let total = ref 0. in
      for _ = 1 to p.gets_per_page do
        total := !total +. get_latency p rng
      done;
      !total
    end
  in
  code +. data

let simulate ?(samples = 2000) p ~code_fetch rng =
  if samples < 1 then invalid_arg "Latency_model.simulate: samples < 1";
  let xs = Array.init samples (fun _ -> page_load p ~code_fetch rng) in
  let s = Lw_util.Stats.summarize xs in
  {
    mean_s = s.Lw_util.Stats.mean;
    p50_s = s.Lw_util.Stats.p50;
    p95_s = s.Lw_util.Stats.p95;
    p99_s = s.Lw_util.Stats.p99;
    min_s = s.Lw_util.Stats.min;
    max_s = s.Lw_util.Stats.max;
  }
