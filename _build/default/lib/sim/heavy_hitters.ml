type contribution = { key0 : Lw_dpf.Idpf.key; key1 : Lw_dpf.Idpf.key }

let contribute ~domain_bits ~alpha rng =
  let values = Array.make domain_bits "\x01" in
  let key0, key1 = Lw_dpf.Idpf.gen ~domain_bits ~alpha ~values rng in
  { key0; key1 }

type hitter = { prefix : int; level : int; count : int64 }

let server_sum ~party ~level ~prefix contributions =
  List.fold_left
    (fun acc c ->
      let k = if party = 0 then c.key0 else c.key1 in
      Int64.add acc (Lw_dpf.Idpf.eval_prefix_count k ~level prefix))
    0L contributions

let combined_count ~level ~prefix contributions =
  Int64.add
    (server_sum ~party:0 ~level ~prefix contributions)
    (server_sum ~party:1 ~level ~prefix contributions)

let collect ~domain_bits ~threshold contributions =
  if domain_bits < 1 then invalid_arg "Heavy_hitters.collect: bad domain";
  if Int64.compare threshold 1L < 0 then invalid_arg "Heavy_hitters.collect: threshold < 1";
  (* level-by-level descent: only children of surviving prefixes are
     counted, so a non-heavy subtree is abandoned after one probe *)
  let rec descend level candidates acc =
    if level > domain_bits || candidates = [] then List.rev acc
    else begin
      let survivors =
        List.filter_map
          (fun prefix ->
            let count = combined_count ~level ~prefix contributions in
            if Int64.compare count threshold >= 0 then Some { prefix; level; count } else None)
          candidates
      in
      let next = List.concat_map (fun h -> [ 2 * h.prefix; (2 * h.prefix) + 1 ]) survivors in
      descend (level + 1) next (List.rev_append survivors acc)
    end
  in
  descend 1 [ 0; 1 ] []

let leaves ~domain_bits hitters = List.filter (fun h -> h.level = domain_bits) hitters
