type t = { n : int; cdf : float array }

let create ?(exponent = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) exponent) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.;
  { n; cdf }

let n t = t.n

let sample t rng =
  let u = Lw_util.Det_rng.float rng 1.0 in
  (* first index with cdf >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
