type trace = int list

(* ---------------- traffic models ---------------- *)

(* Per-site parameters derived deterministically from the site id: object
   count (Poisson-ish) and a log-normal size scale. Sites therefore have
   stable, distinguishable signatures — which is the whole problem. *)
let site_params ~sites ~site =
  if site < 0 || site >= sites then invalid_arg "Fingerprint: site out of range";
  let r = Lw_util.Det_rng.of_string_seed (Printf.sprintf "site-params/%d" site) in
  let mean_objects = 5 + Lw_util.Det_rng.int r 60 in
  let size_scale = 400. *. exp (Lw_util.Det_rng.float r 3.5) in
  (mean_objects, size_scale)

let gaussian rng =
  let u1 = max 1e-12 (Lw_util.Det_rng.float rng 1.0) in
  let u2 = Lw_util.Det_rng.float rng 1.0 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let traditional_trace ~sites ~site rng =
  let mean_objects, size_scale = site_params ~sites ~site in
  (* per-visit noise around the site signature *)
  let n_objects =
    max 1 (mean_objects + int_of_float (float_of_int mean_objects *. 0.15 *. gaussian rng))
  in
  List.init n_objects (fun _ ->
      let s = size_scale *. exp (0.8 *. gaussian rng) in
      max 64 (int_of_float s))

let lightweb_trace ?(fetches_per_page = 5) ?(data_exchange_bytes = 13927)
    ?(code_exchange_bytes = 2 * 1024 * 1024) ~code_fetch _rng =
  (if code_fetch then [ code_exchange_bytes ] else [])
  @ List.init fetches_per_page (fun _ -> data_exchange_bytes)

(* ---------------- multinomial naive Bayes ---------------- *)

type model = {
  bucket : float;
  classes : int;
  (* log P(bucket | class), Laplace-smoothed, plus log priors *)
  log_prior : float array;
  log_likelihood : (int, float) Hashtbl.t array;
  default_ll : float array; (* smoothed mass for unseen buckets *)
}

let bucket_of ~bucket size = int_of_float (Float.log (float_of_int (max 1 size)) /. Float.log bucket)

let train ?(bucket = 1.3) ~classes examples =
  if classes < 1 then invalid_arg "Fingerprint.train: classes < 1";
  let counts = Array.init classes (fun _ -> Hashtbl.create 32) in
  let totals = Array.make classes 0 in
  let class_examples = Array.make classes 0 in
  List.iter
    (fun (cls, trace) ->
      if cls < 0 || cls >= classes then invalid_arg "Fingerprint.train: class out of range";
      class_examples.(cls) <- class_examples.(cls) + 1;
      List.iter
        (fun size ->
          let b = bucket_of ~bucket size in
          let c = try Hashtbl.find counts.(cls) b with Not_found -> 0 in
          Hashtbl.replace counts.(cls) b (c + 1);
          totals.(cls) <- totals.(cls) + 1)
        trace)
    examples;
  let n_examples = List.length examples in
  let vocab = 64 in
  (* Laplace smoothing over a nominal vocabulary of size buckets *)
  let log_likelihood =
    Array.init classes (fun cls ->
        let tbl = Hashtbl.create 32 in
        Hashtbl.iter
          (fun b c ->
            Hashtbl.replace tbl b
              (log (float_of_int (c + 1) /. float_of_int (totals.(cls) + vocab))))
          counts.(cls);
        tbl)
  in
  let default_ll =
    Array.init classes (fun cls -> log (1. /. float_of_int (totals.(cls) + vocab)))
  in
  let log_prior =
    Array.init classes (fun cls ->
        log (float_of_int (class_examples.(cls) + 1) /. float_of_int (n_examples + classes)))
  in
  { bucket; classes; log_prior; log_likelihood; default_ll }

let classify m trace =
  let best = ref 0 and best_score = ref neg_infinity in
  for cls = 0 to m.classes - 1 do
    let score = ref m.log_prior.(cls) in
    List.iter
      (fun size ->
        let b = bucket_of ~bucket:m.bucket size in
        let ll =
          match Hashtbl.find_opt m.log_likelihood.(cls) b with
          | Some v -> v
          | None -> m.default_ll.(cls)
        in
        score := !score +. ll)
      trace;
    if !score > !best_score then begin
      best_score := !score;
      best := cls
    end
  done;
  !best

let accuracy m examples =
  match examples with
  | [] -> invalid_arg "Fingerprint.accuracy: no examples"
  | _ ->
      let correct =
        List.fold_left
          (fun acc (cls, trace) -> if classify m trace = cls then acc + 1 else acc)
          0 examples
      in
      float_of_int correct /. float_of_int (List.length examples)

let chance ~classes = 1. /. float_of_int classes
