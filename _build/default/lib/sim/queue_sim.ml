type params = {
  arrival_rps : float;
  batch_size : int;
  batch_window_s : float;
  scan_s : float;
  per_request_s : float;
  duration_s : float;
}

(* Fitting service(B) = scan + B·per_request to the paper's two measured
   points — 0.51 s at B=1 and 16 x 0.167 = 2.67 s at B=16 — gives
   per_request = 144 ms and a shared scan of 366 ms, and a capacity of
   16/2.67 = 6.0 req/s: exactly the paper's reported batch-16 throughput. *)
let paper_server ~arrival_rps =
  {
    arrival_rps;
    batch_size = 16;
    batch_window_s = 2.6;
    scan_s = 0.366;
    per_request_s = 0.144;
    duration_s = 600.;
  }

type result = {
  offered : int;
  served : int;
  throughput_rps : float;
  mean_latency_s : float;
  p50_latency_s : float;
  p95_latency_s : float;
  mean_batch_fill : float;
  utilization : float;
  saturated : bool;
}

let capacity_rps p =
  float_of_int p.batch_size /. (p.scan_s +. (float_of_int p.batch_size *. p.per_request_s))

let run p rng =
  if p.arrival_rps <= 0. || p.duration_s <= 0. || p.batch_size < 1 then
    invalid_arg "Queue_sim.run: bad parameters";
  (* Poisson arrivals over the horizon *)
  let arrivals = ref [] in
  let t = ref 0. in
  let n = ref 0 in
  let draw () = -.log (max 1e-12 (Lw_util.Det_rng.float rng 1.0)) /. p.arrival_rps in
  t := draw ();
  while !t < p.duration_s do
    arrivals := !t :: !arrivals;
    incr n;
    t := !t +. draw ()
  done;
  let arrivals = Array.of_list (List.rev !arrivals) in
  let total = Array.length arrivals in
  (* batch-service loop: admit arrivals up to the moment service could
     start, then run one batch *)
  let i = ref 0 in
  let pending = Queue.create () in
  let server_free = ref 0. in
  let busy = ref 0. in
  let latencies = ref [] in
  let served = ref 0 in
  let batches = ref 0 in
  let horizon = p.duration_s +. (20. *. p.batch_window_s) in
  let exception Done in
  (try
     while !i < total || not (Queue.is_empty pending) do
       if Queue.is_empty pending then begin
         Queue.push arrivals.(!i) pending;
         incr i
       end
       else begin
         let first = Queue.peek pending in
         (* earliest service start given what is pending now *)
         let rec settle () =
           let start_candidate =
             if Queue.length pending >= p.batch_size then
               (* batch already full: go as soon as the server frees up *)
               Float.max !server_free first
             else Float.max !server_free (first +. p.batch_window_s)
           in
           if !i < total && arrivals.(!i) <= start_candidate then begin
             Queue.push arrivals.(!i) pending;
             incr i;
             settle ()
           end
           else start_candidate
         in
         let t_start = settle () in
         if t_start > horizon then raise Done;
         let take = min p.batch_size (Queue.length pending) in
         let service = p.scan_s +. (float_of_int take *. p.per_request_s) in
         let t_done = t_start +. service in
         for _ = 1 to take do
           let a = Queue.pop pending in
           latencies := (t_done -. a) :: !latencies;
           incr served
         done;
         incr batches;
         busy := !busy +. service;
         server_free := t_done
       end
     done
   with Done -> ());
  let ls = Array.of_list !latencies in
  let summary =
    if Array.length ls = 0 then None else Some (Lw_util.Stats.summarize ls)
  in
  {
    offered = total;
    served = !served;
    throughput_rps = (if !server_free > 0. then float_of_int !served /. !server_free else 0.);
    mean_latency_s = (match summary with Some s -> s.Lw_util.Stats.mean | None -> 0.);
    p50_latency_s = (match summary with Some s -> s.Lw_util.Stats.p50 | None -> 0.);
    p95_latency_s = (match summary with Some s -> s.Lw_util.Stats.p95 | None -> 0.);
    mean_batch_fill =
      (if !batches = 0 then 0. else float_of_int !served /. float_of_int !batches);
    utilization = (if !server_free > 0. then !busy /. !server_free else 0.);
    saturated = !served < total;
  }
