(** Dataset profiles and synthetic corpora.

    The paper sizes lightweb against the C4 crawl (305 GiB compressed,
    360M pages, 0.9 KiB average) and Wikipedia (21 GiB, 60M pages,
    0.4 KiB). The cost model consumes the {!profile} numbers directly;
    the end-to-end experiments run on {!generate}d corpora with the same
    size geometry (log-normal page sizes, Zipf site popularity) — server
    cost depends only on geometry, never on page text. *)

type profile = {
  name : string;
  total_bytes : float;
  pages : float;
  avg_page_bytes : float;
}

val c4 : profile
val wikipedia : profile

val gib : float
(** 2^30. *)

(** {2 Synthetic corpora} *)

type page = { path : string; body : string }

type t = {
  profile : profile;
  sites : string array;
  pages : page array;
}

val generate :
  ?sites:int -> ?sigma:float -> profile -> n_pages:int -> Lw_util.Det_rng.t -> t
(** [generate profile ~n_pages rng] draws [n_pages] pages across [sites]
    (default 50) synthetic domains. Page sizes are log-normal with mean
    [profile.avg_page_bytes] and shape [sigma] (default 0.7), truncated to
    [[32, 16 * avg]]. *)

val sample_page_size : profile -> sigma:float -> Lw_util.Det_rng.t -> int

val mean_page_size : t -> float
val total_bytes : t -> int

val to_sites : t -> (string * page list) list
(** Pages grouped per site (for publishing through the real pipeline). *)
